// Command datagen synthesizes the drainage-crossing corpus and prints its
// Table 1 inventory plus per-band statistics. With -full it generates the
// paper's full 12,068 chips; the default scale produces a miniature corpus
// with the same structure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"drainnas/internal/geodata"
)

func main() {
	var (
		chipSize = flag.Int("size", 64, "chip side length in pixels")
		scale    = flag.Int("scale", 50, "divide Table 1 counts by this factor")
		full     = flag.Bool("full", false, "generate the full 12,068-chip corpus (overrides -scale)")
		seed     = flag.Uint64("seed", 1, "generation seed")
		stats    = flag.Bool("stats", false, "print per-band statistics of a sample chip")
		pngDir   = flag.String("png", "", "write sample chip PNGs (RGB/DEM/NDVI/NDWI/false-color) to this directory")
		savePath = flag.String("save", "", "cache the generated corpus to this file (reload with geodata.LoadCorpus)")
	)
	flag.Parse()

	if *full {
		*scale = 1
	}
	fmt.Printf("Generating corpus: chip %dx%d px, scale 1/%d, seed %d\n\n",
		*chipSize, *chipSize, *scale, *seed)
	corpus := geodata.GenerateCorpus(geodata.CorpusOptions{
		ChipSize: *chipSize, Scale: *scale, Seed: *seed,
	})
	fmt.Println(corpus.Table1(nil))
	fmt.Printf("balance: %.1f%% positive\n", 100*corpus.Balance())

	if *stats {
		if len(corpus.Chips) == 0 {
			fmt.Fprintln(os.Stderr, "datagen: empty corpus")
			os.Exit(1)
		}
		chip := corpus.Chips[0]
		fmt.Printf("\nSample chip (%s, label %d) band statistics:\n", chip.Region, chip.Label)
		for b := 0; b < geodata.NumBands; b++ {
			mean, std := chip.Stats(b)
			fmt.Printf("  %-6s mean %+.3f  std %.3f\n", geodata.BandNames[b], mean, std)
		}
	}

	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		if err := corpus.SaveCorpus(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("corpus cached to %s\n", *savePath)
	}

	if *pngDir != "" {
		if err := writeSamplePNGs(corpus, *pngDir); err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
	}

	fmt.Printf("\nPaper Table 1 totals: %d chips across %d regions (reproduced at scale 1/%d)\n",
		geodata.TotalSamples(), len(geodata.StudyRegions), *scale)
}

// writeSamplePNGs renders the first positive and first negative chip in
// every available mode.
func writeSamplePNGs(corpus *geodata.Corpus, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	modes := map[string]geodata.RenderMode{
		"rgb": geodata.RenderRGB, "dem": geodata.RenderDEM,
		"ndvi": geodata.RenderNDVI, "ndwi": geodata.RenderNDWI,
		"falsecolor": geodata.RenderFalseColor,
	}
	wrote := 0
	for _, label := range []int{1, 0} {
		for _, chip := range corpus.Chips {
			if chip.Label != label {
				continue
			}
			for name, mode := range modes {
				path := filepath.Join(dir, fmt.Sprintf("chip_label%d_%s.png", label, name))
				f, err := os.Create(path)
				if err != nil {
					return err
				}
				if err := geodata.ChipPNG(chip, mode, f); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
				wrote++
			}
			break
		}
	}
	fmt.Printf("wrote %d sample PNGs to %s\n", wrote, dir)
	return nil
}
