// Command scan runs a whole-watershed streaming inference job and renders
// the resulting drainage-crossing heat map. The watershed is synthesized
// deterministically from (region, tile size, seed), walked in a locality-
// preserving order, and every chip-sized window is classified through one
// of three serving paths:
//
//	-url     a running servd or router: the job runs remotely through the
//	         POST /v1/scan job API and this command streams its NDJSON
//	         events (resumable, cancellable with ctrl-C)
//	-models  an in-process serving core over a .dnnx model directory — the
//	         same batching path servd uses, without the HTTP hop
//	-device  a latmeter-simulated fleet: tiles are "served" by the paper's
//	         cost model for that device, so scan scheduling and ordering
//	         can be studied without trained models
//
// The heat map is printed as ASCII (one glyph per tile, score deciles) and
// optionally written as a binary PGM with -pgm; the final line is the
// exact-count summary against the synthesized ground truth. Two runs of
// the same scan produce byte-identical heat maps.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"drainnas/internal/api"
	"drainnas/internal/latmeter"
	"drainnas/internal/metrics"
	"drainnas/internal/resnet"
	"drainnas/internal/scan"
	"drainnas/internal/serve"
)

func main() {
	var (
		url    = flag.String("url", "", "base URL of a running servd or router; runs the scan through its job API")
		models = flag.String("models", "", "directory of exported .dnnx containers; runs the scan on an in-process serving core")
		device = flag.String("device", "", "latmeter device name (e.g. cortexA76cpu); simulates the fleet with the paper's cost model")

		model     = flag.String("model", "paper", "model to classify chips with (serving key; \"paper\" for the simulated baseline)")
		precision = flag.String("precision", "", "deployment arithmetic (\"int8\" for the quantized form)")
		slo       = flag.String("slo", "batch", "SLO class for router dispatch (batch, standard, interactive)")
		apiKey    = flag.String("api-key", "", "tenant API key for a key-gated remote tier")

		region    = flag.String("region", "Nebraska", "study region (Nebraska, Illinois, North Dakota, California)")
		tileSize  = flag.Int("tile", 256, "watershed raster side in cells")
		chipSize  = flag.Int("chip", 64, "model input side (one tile of the scan grid)")
		stride    = flag.Int("stride", 0, "grid stride (0 = chip size, non-overlapping)")
		channels  = flag.Int("channels", 5, "model input depth (5 or 7)")
		seed      = flag.Uint64("seed", 1, "watershed synthesis seed")
		order     = flag.String("order", api.ScanOrderHilbert, "tile walk: row-major or hilbert")
		window    = flag.Int("window", 8, "in-flight tile window")
		retries   = flag.Int("retries", 3, "per-tile retries of transient serving errors")
		threshold = flag.Float64("threshold", 0.5, "positive-score cutoff for the crossing count")

		pgmOut   = flag.String("pgm", "", "also write the heat map as a binary PGM to this file")
		noASCII  = flag.Bool("no-ascii", false, "suppress the ASCII heat map (summary only)")
		simScale = flag.Float64("sim-scale", 0, "with -device: scale modeled latency into real sleep time (0 = as fast as possible)")
	)
	flag.Parse()

	req := api.ScanRequest{
		Model: *model, Precision: *precision, SLO: *slo,
		Region: *region, TileSize: *tileSize, ChipSize: *chipSize, Stride: *stride,
		Channels: *channels, Seed: *seed, Order: *order, Window: *window,
		MaxRetries: *retries, Threshold: *threshold,
	}.WithDefaults()
	if err := req.Validate(); err != nil {
		log.Fatalf("scan: %v", err)
	}

	modes := 0
	for _, set := range []bool{*url != "", *models != "", *device != ""} {
		if set {
			modes++
		}
	}
	if modes != 1 {
		log.Fatalf("scan: pick exactly one of -url, -models or -device")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var (
		job api.ScanJob
		hm  *scan.HeatMap
		err error
	)
	switch {
	case *url != "":
		job, hm, err = runRemote(ctx, stop, *url, *apiKey, req)
	case *models != "":
		job, hm, err = runLocal(ctx, *models, req)
	default:
		job, hm, err = runSim(ctx, *device, *simScale, req)
	}
	if err != nil {
		log.Fatalf("scan: %v", err)
	}

	if !*noASCII {
		fmt.Print(hm.ASCII())
	}
	if *pgmOut != "" {
		if err := os.WriteFile(*pgmOut, hm.PGM(), 0o644); err != nil {
			log.Fatalf("scan: writing %s: %v", *pgmOut, err)
		}
		fmt.Fprintf(os.Stderr, "scan: wrote %s (%dx%d)\n", *pgmOut, hm.W, hm.H)
	}
	fmt.Println(hm.Summary(job))
	if job.State == api.ScanStateFailed {
		os.Exit(1)
	}
}

// progress prints one status line per progress event.
func progress(j api.ScanJob) {
	fmt.Fprintf(os.Stderr, "scan %s: %d/%d tiles, %d crossings, %d retries, %d failed (%.0f ms)\n",
		j.ID, j.DoneTiles+j.FailedTiles, j.TotalTiles, j.Crossings, j.Retries, j.FailedTiles, j.ElapsedMS)
}

// runRemote drives the job API of a running tier: start, stream, and on the
// first interrupt cancel the job (the stream then ends with the canceled
// terminal event).
func runRemote(ctx context.Context, stop func(), url, apiKey string, req api.ScanRequest) (api.ScanJob, *scan.HeatMap, error) {
	c := api.NewClient(url, api.ClientOptions{APIKey: apiKey})
	job, err := c.StartScan(context.Background(), req)
	if err != nil {
		return job, nil, err
	}
	fmt.Fprintf(os.Stderr, "scan %s: started on %s (%s, seed %d)\n", job.ID, url, req.Region, req.Seed)

	go func() {
		<-ctx.Done()
		stop() // a second interrupt kills outright
		cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if _, err := c.CancelScan(cctx, job.ID); err != nil {
			log.Printf("scan: cancel: %v", err)
		}
	}()

	// Stream on a background context: after a cancel we still want the
	// drained tail and the terminal event.
	stream, err := c.ScanEvents(context.Background(), job.ID, 0)
	if err != nil {
		return job, nil, err
	}
	defer stream.Close()
	var hm *scan.HeatMap
	final := job
	for {
		ev, err := stream.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return final, hm, err
		}
		switch ev.Type {
		case api.ScanEventTile:
			if hm == nil {
				// Grid dims arrive with the first job-carrying event; poll
				// once if a tile somehow lands first.
				doc, perr := c.ScanStatus(context.Background(), job.ID)
				if perr != nil {
					return final, nil, perr
				}
				hm = scan.NewHeatMap(doc.GridW, doc.GridH, req.Threshold)
			}
			hm.SetTile(*ev.Tile)
		case api.ScanEventProgress, api.ScanEventDone:
			if hm == nil {
				hm = scan.NewHeatMap(ev.Job.GridW, ev.Job.GridH, req.Threshold)
			}
			final = *ev.Job
			if ev.Type == api.ScanEventProgress {
				progress(final)
			}
		}
	}
	if hm == nil {
		hm = scan.NewHeatMap(final.GridW, final.GridH, req.Threshold)
	}
	return final, hm, nil
}

// runDirect executes the scan in-process against a backend, streaming the
// ordered events straight into the heat map.
func runDirect(ctx context.Context, req api.ScanRequest, be scan.Backend, key string) (api.ScanJob, *scan.HeatMap, error) {
	var hm *scan.HeatMap
	job := scan.Run(ctx, scan.Config{
		Req: req, Model: key, Backend: be, Stats: &metrics.ScanStats{},
		Job: api.ScanJob{ID: "local", Model: key, Region: req.Region, Order: req.Order, Seed: req.Seed},
	}, func(ev api.ScanEvent, cur api.ScanJob) {
		if hm == nil && cur.GridW > 0 {
			hm = scan.NewHeatMap(cur.GridW, cur.GridH, req.Threshold)
		}
		switch ev.Type {
		case api.ScanEventTile:
			hm.SetTile(*ev.Tile)
		case api.ScanEventProgress:
			progress(cur)
		}
	})
	if hm == nil {
		hm = scan.NewHeatMap(job.GridW, job.GridH, req.Threshold)
	}
	if job.State == api.ScanStateFailed {
		return job, hm, fmt.Errorf("scan failed: %s", job.Error)
	}
	return job, hm, nil
}

// runLocal serves tiles from an in-process batching core over a model
// directory — servd's serving path without the HTTP hop.
func runLocal(ctx context.Context, dir string, req api.ScanRequest) (api.ScanJob, *scan.HeatMap, error) {
	key, err := api.ResolveServingKey(req.Model, req.Precision)
	if err != nil {
		return api.ScanJob{}, nil, err
	}
	srv := serve.NewServer(serve.DirLoader(dir), serve.Options{})
	defer srv.Close()
	return runDirect(ctx, req, scan.ServerBackend{S: srv}, key)
}

// runSim serves tiles from the paper's latmeter cost model for the named
// device: classification comes from the deterministic terrain heuristic,
// latency from the device's batch-1 service time.
func runSim(ctx context.Context, deviceName string, scale float64, req api.ScanRequest) (api.ScanJob, *scan.HeatMap, error) {
	dev, err := latmeter.DeviceByName(deviceName)
	if err != nil {
		return api.ScanJob{}, nil, err
	}
	g, err := latmeter.Decompose(resnet.StockResNet18(req.Channels, 1), req.ChipSize)
	if err != nil {
		return api.ScanJob{}, nil, err
	}
	if req.Precision == "int8" {
		g.CostScale = latmeter.Int8CostScale
	}
	be := scan.SimBackend{Service: dev.Service(g), Replica: deviceName, SleepScale: scale}
	fmt.Fprintf(os.Stderr, "scan: simulating %s (%.2f ms per chip at batch 1)\n",
		deviceName, be.Service.BatchMS(1))
	return runDirect(ctx, req, be, req.Model)
}
