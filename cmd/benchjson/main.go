// Command benchjson turns `go test -bench` text (read from stdin) into a
// JSON benchmark trajectory. Each invocation appends one run record — with
// timestamp, toolchain, CPU model, GOMAXPROCS, the active GEMM kernel, and
// every parsed benchmark's ns/op plus custom metrics (gflops, MB/s, ...) —
// to the `runs` array of the output file, so the checked-in file accumulates
// the performance history across commits instead of overwriting it.
//
// Usage:
//
//	go test -run='^$' -bench . ./internal/tensor | go run ./cmd/benchjson -out BENCH_kernels.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"drainnas/internal/tensor"
)

type benchResult struct {
	Name    string             `json:"name"`
	Pkg     string             `json:"pkg,omitempty"`
	Iters   int64              `json:"iterations"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type run struct {
	Timestamp  string        `json:"timestamp"`
	GoVersion  string        `json:"go"`
	CPU        string        `json:"cpu,omitempty"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	GemmKernel string        `json:"gemm_kernel"`
	Note       string        `json:"note,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
}

type trajectory struct {
	Runs []run `json:"runs"`
}

func main() {
	out := flag.String("out", "BENCH_kernels.json", "trajectory file to append the run to")
	note := flag.String("note", "", "free-form label stored with the run")
	kernel := flag.String("kernel", "", "override the recorded GEMM kernel name (for replaying output captured from another build)")
	flag.Parse()

	rec := run{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GemmKernel: tensor.GemmKernelName(),
		Note:       *note,
	}
	if *kernel != "" {
		rec.GemmKernel = *kernel
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw output through for the operator
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rec.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if br, ok := parseBenchLine(line, pkg); ok {
				rec.Benchmarks = append(rec.Benchmarks, br)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatalf("reading stdin: %v", err)
	}
	if len(rec.Benchmarks) == 0 {
		fatalf("no benchmark lines found on stdin")
	}

	var traj trajectory
	if raw, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(raw, &traj); err != nil {
			fatalf("existing %s is not a trajectory file: %v", *out, err)
		}
	} else if !os.IsNotExist(err) {
		fatalf("reading %s: %v", *out, err)
	}
	traj.Runs = append(traj.Runs, rec)

	enc, err := json.MarshalIndent(&traj, "", "  ")
	if err != nil {
		fatalf("encoding: %v", err)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fatalf("writing %s: %v", *out, err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: recorded %d benchmarks as run %d of %s\n",
		len(rec.Benchmarks), len(traj.Runs), *out)
}

// parseBenchLine decodes one testing.B result line:
//
//	BenchmarkMM512-4   100   4961234 ns/op   423.5 MB/s   54.04 gflops
//
// The name keeps sub-benchmark paths and drops the Benchmark prefix and the
// -GOMAXPROCS suffix; every trailing value/unit pair lands in Metrics except
// ns/op, which is promoted to its own field.
func parseBenchLine(line, pkg string) (benchResult, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return benchResult{}, false
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	br := benchResult{Name: name, Pkg: pkg, Iters: iters}
	for i := 2; i+1 < len(f); i += 2 {
		val, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		if f[i+1] == "ns/op" {
			br.NsPerOp = val
			continue
		}
		if br.Metrics == nil {
			br.Metrics = map[string]float64{}
		}
		br.Metrics[f[i+1]] = val
	}
	return br, true
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
