package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	br, ok := parseBenchLine(
		"BenchmarkMM512-4   \t     100\t   4961234 ns/op\t 423.50 MB/s\t  54.04 gflops",
		"drainnas/internal/tensor")
	if !ok {
		t.Fatal("line not parsed")
	}
	if br.Name != "MM512" || br.Pkg != "drainnas/internal/tensor" || br.Iters != 100 {
		t.Fatalf("header fields: %+v", br)
	}
	if br.NsPerOp != 4961234 {
		t.Fatalf("ns/op = %g", br.NsPerOp)
	}
	if br.Metrics["MB/s"] != 423.5 || br.Metrics["gflops"] != 54.04 {
		t.Fatalf("metrics: %v", br.Metrics)
	}
}

func TestParseBenchLineSubBench(t *testing.T) {
	br, ok := parseBenchLine(
		"BenchmarkAblation_ConvParallelism/batch1-1 \t 792\t 1500000 ns/op\t 25.13 gflops", "")
	if !ok {
		t.Fatal("line not parsed")
	}
	if br.Name != "Ablation_ConvParallelism/batch1" {
		t.Fatalf("name = %q", br.Name)
	}
	if br.Metrics["gflops"] != 25.13 {
		t.Fatalf("metrics: %v", br.Metrics)
	}
}

func TestParseBenchLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"BenchmarkBroken",
		"BenchmarkBroken-1 notanint 12 ns/op",
		"BenchmarkBroken-1 10 twelve ns/op",
	} {
		if _, ok := parseBenchLine(line, ""); ok {
			t.Fatalf("parsed garbage line %q", line)
		}
	}
}
