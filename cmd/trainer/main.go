// Command trainer trains one ResNet configuration end to end on the
// synthetic drainage-crossing corpus and reports train/validation accuracy,
// or with -describe prints the architecture (the textual Figure 1).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"drainnas/internal/dataset"
	"drainnas/internal/geodata"
	"drainnas/internal/metrics"
	"drainnas/internal/nn"
	"drainnas/internal/resnet"
	"drainnas/internal/tensor"
)

func main() {
	var (
		channels = flag.Int("channels", 5, "input channels (5 or 7)")
		batch    = flag.Int("batch", 8, "batch size")
		kernel   = flag.Int("kernel", 3, "stem kernel size")
		stride   = flag.Int("stride", 2, "stem stride")
		padding  = flag.Int("padding", 1, "stem padding")
		pool     = flag.Int("pool", 0, "stem max-pool choice (0/1)")
		poolK    = flag.Int("pool-kernel", 3, "stem pool kernel")
		poolS    = flag.Int("pool-stride", 2, "stem pool stride")
		width    = flag.Int("width", 32, "initial output feature width")
		epochs   = flag.Int("epochs", 5, "training epochs")
		lr       = flag.Float64("lr", 0.02, "SGD learning rate")
		chip     = flag.Int("chip", 32, "chip size in pixels")
		scale    = flag.Int("scale", 120, "corpus scale divisor")
		seed     = flag.Uint64("seed", 7, "seed")
		describe = flag.Bool("describe", false, "print the architecture and exit")
	)
	flag.Parse()

	cfg := resnet.Config{
		Channels: *channels, Batch: *batch,
		KernelSize: *kernel, Stride: *stride, Padding: *padding,
		PoolChoice: *pool, KernelSizePool: *poolK, StridePool: *poolS,
		InitialOutputFeature: *width, NumClasses: 2,
	}
	if err := cfg.Validate(); err != nil {
		log.Fatalf("trainer: %v", err)
	}
	rng := tensor.NewRNG(*seed)
	model, err := resnet.New(cfg, rng)
	if err != nil {
		log.Fatalf("trainer: %v", err)
	}
	if *describe {
		fmt.Print(model.Describe())
		return
	}
	if _, err := cfg.CheckSpatial(*chip); err != nil {
		log.Fatalf("trainer: %v", err)
	}

	fmt.Printf("Generating corpus (chip %d px, scale 1/%d)...\n", *chip, *scale)
	corpus := geodata.GenerateCorpus(geodata.CorpusOptions{ChipSize: *chip, Scale: *scale, Seed: *seed})
	x, labels := corpus.Tensors(*channels)
	data := dataset.New(x, labels)
	trainIdx, valIdx := dataset.TrainTestSplit(labels, 0.2, rng)
	train := data.Subset(trainIdx)
	val := data.Subset(valIdx)
	stats := train.ComputeStats()
	train.Normalize(stats)
	val.Normalize(stats)
	fmt.Printf("train %d / val %d samples, %d channels\n", train.Len(), val.Len(), *channels)
	fmt.Printf("model: %d parameters\n\n", model.NumParams())

	opt := nn.NewSGD(model.Params(), *lr, 0.9, 1e-4)
	sched := nn.CosineLRSchedule(*lr, *lr/10, *epochs)
	for epoch := 0; epoch < *epochs; epoch++ {
		opt.SetLR(sched(epoch))
		start := time.Now()
		totalLoss, batches := 0.0, 0
		for _, idxs := range train.Batches(cfg.Batch, rng) {
			bx, by := train.Batch(idxs)
			logits := model.Forward(bx, true)
			loss, grad := nn.CrossEntropy(logits, by)
			nn.ZeroGrad(model.Params())
			model.Backward(grad)
			nn.ClipGradNorm(model.Params(), 5)
			opt.Step()
			totalLoss += loss
			batches++
		}
		fmt.Printf("epoch %d: loss %.4f  val acc %.2f%%  (%.1fs, lr %.4f)\n",
			epoch+1, totalLoss/float64(batches), 100*accuracy(model, val, cfg.Batch),
			time.Since(start).Seconds(), opt.LR())
	}
	fmt.Printf("\nfinal: train acc %.2f%%  val acc %.2f%%\n",
		100*accuracy(model, train, cfg.Batch), 100*accuracy(model, val, cfg.Batch))

	// Full classification report on the validation split: a culvert
	// detector is judged on recall and AUC, not accuracy alone.
	scores, valLabels := positiveScores(model, val, cfg.Batch)
	rep := metrics.Evaluate(scores, valLabels, 0.5)
	fmt.Printf("validation report: %s\n", rep)
}

// positiveScores collects the softmax probability of the positive class
// for every sample of d.
func positiveScores(m *resnet.Model, d *dataset.Dataset, batch int) ([]float64, []int) {
	var scores []float64
	var labels []int
	for _, idxs := range d.Batches(batch, nil) {
		x, by := d.Batch(idxs)
		probs := tensor.SoftmaxRows(m.Forward(x, false))
		for r := 0; r < len(by); r++ {
			scores = append(scores, float64(probs.At(r, 1)))
			labels = append(labels, by[r])
		}
	}
	return scores, labels
}

func accuracy(m *resnet.Model, d *dataset.Dataset, batch int) float64 {
	correct, total := 0, 0
	for _, idxs := range d.Batches(batch, nil) {
		x, labels := d.Batch(idxs)
		preds := tensor.ArgMaxRows(m.Forward(x, false))
		for i, p := range preds {
			if p == labels[i] {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
