package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestDeployBinarySmoke builds the real binary and runs the full
// train → export → reload → verify → load-test pipeline at the smallest
// scale, asserting the output is well-formed at every stage.
func TestDeployBinarySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "deploy")
	build := exec.Command("go", "build", "-o", bin, "drainnas/cmd/deploy")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	outFile := filepath.Join(dir, "model.dnnx")
	cmd := exec.Command(bin,
		"-epochs", "1", "-scale", "600", "-chip", "32", "-width", "8",
		"-out", outFile,
		"-load", "24", "-load-clients", "4")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("deploy run: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{
		"exported container:",
		"plan compiled:",
		"prediction agreement (runtime vs training model):",
		"host CPU inference",
		"load test: 24 requests",
		"served 24/24",
		"client-observed latency  (n=24)",
		"p50 ",
		"p99 ",
		"mean batch",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
}
