// Command deploy exercises the edge-deployment path end to end: train a
// configuration briefly on the synthetic corpus, export it to the
// ONNX-like container, reload it with the standalone inference runtime,
// verify prediction agreement, and time CPU inference next to the
// per-device latency predictions. With -load N it additionally drives the
// batching serving layer (internal/serve) with N concurrent requests and
// reports throughput, latency percentiles and batching efficiency — the
// serving-side counterpart of the paper's per-device latency tables.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"drainnas/internal/api"
	"drainnas/internal/dataset"
	"drainnas/internal/geodata"
	"drainnas/internal/infer"
	"drainnas/internal/latmeter"
	"drainnas/internal/metrics"
	"drainnas/internal/nn"
	"drainnas/internal/onnxsize"
	"drainnas/internal/report"
	"drainnas/internal/resnet"
	"drainnas/internal/serve"
	"drainnas/internal/tensor"
)

func main() {
	var (
		channels = flag.Int("channels", 5, "input channels (5 or 7)")
		kernel   = flag.Int("kernel", 3, "stem kernel size")
		stride   = flag.Int("stride", 2, "stem stride")
		padding  = flag.Int("padding", 1, "stem padding")
		pool     = flag.Int("pool", 1, "stem max-pool choice (0/1)")
		width    = flag.Int("width", 32, "initial output feature width")
		epochs   = flag.Int("epochs", 4, "training epochs before export")
		chip     = flag.Int("chip", 32, "chip size")
		scale    = flag.Int("scale", 150, "corpus scale divisor")
		out      = flag.String("out", "", "also write the container to this file")

		load         = flag.Int("load", 0, "after deployment checks, drive the serving layer with this many requests (0 = skip)")
		loadClients  = flag.Int("load-clients", 8, "concurrent clients for the load drive")
		loadBatch    = flag.Int("load-max-batch", 8, "serving MaxBatch during the load drive")
		loadDelay    = flag.Duration("load-max-delay", 2*time.Millisecond, "serving MaxDelay during the load drive")
		loadQueueCap = flag.Int("load-queue", 256, "serving queue capacity during the load drive")

		url         = flag.String("url", "", "drive a running servd/router tier at this base URL instead of an in-process server (the tier must already serve -model)")
		remoteModel = flag.String("model", "", "model key to request in remote mode (default: the trained config's key)")
		apiKey      = flag.String("api-key", "", "API key for a remote tier running with -keys")
		slo         = flag.String("slo", "", "SLO class for remote requests through a router (batch, standard, interactive)")
		precision   = flag.String("precision", "", "precision selector for remote requests (fp32, int8)")
	)
	flag.Parse()

	cfg := resnet.Config{
		Channels: *channels, Batch: 8,
		KernelSize: *kernel, Stride: *stride, Padding: *padding,
		PoolChoice: *pool, KernelSizePool: 3, StridePool: 2,
		InitialOutputFeature: *width, NumClasses: 2,
	}
	if err := cfg.Validate(); err != nil {
		log.Fatalf("deploy: %v", err)
	}

	fmt.Printf("training %s for %d epochs on a miniature corpus...\n", cfg.Key(), *epochs)
	corpus := geodata.GenerateCorpus(geodata.CorpusOptions{ChipSize: *chip, Scale: *scale, Seed: 9})
	x, labels := corpus.Tensors(*channels)
	data := dataset.New(x, labels)
	stats := data.ComputeStats()
	data.Normalize(stats)

	rng := tensor.NewRNG(9)
	model, err := resnet.New(cfg, rng)
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	opt := nn.NewSGD(model.Params(), 0.02, 0.9, 1e-4)
	for e := 0; e < *epochs; e++ {
		for _, idxs := range data.Batches(cfg.Batch, rng) {
			bx, by := data.Batch(idxs)
			logits := model.Forward(bx, true)
			_, grad := nn.CrossEntropy(logits, by)
			nn.ZeroGrad(model.Params())
			model.Backward(grad)
			opt.Step()
		}
	}

	var buf bytes.Buffer
	n, err := onnxsize.Export(model, &buf)
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	fmt.Printf("exported container: %.2f MB (%d bytes)\n", float64(n)/1e6, n)
	if *out != "" {
		if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
			log.Fatalf("deploy: %v", err)
		}
		fmt.Printf("written to %s\n", *out)
	}

	plan, err := infer.LoadPlan(bytes.NewReader(buf.Bytes()))
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	fmt.Printf("plan compiled: %s (%d input channels, %d ops)\n\n",
		plan.Name(), plan.InputChannels(), plan.OpCount())
	sess := plan.NewSession()

	// Agreement check over a batch spread across the corpus (it is ordered
	// by region and label, so strided sampling mixes both classes).
	var probeIdx []int
	strideN := data.Len() / 8
	if strideN < 1 {
		strideN = 1
	}
	for i := 0; i < data.Len() && len(probeIdx) < 8; i += strideN {
		probeIdx = append(probeIdx, i)
	}
	probe, probeLabels := data.Batch(probeIdx)
	modelPreds := tensor.ArgMaxRows(model.Forward(probe, false))
	rtPreds, err := sess.Classify(probe)
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	agree := 0
	for i := range modelPreds {
		if modelPreds[i] == rtPreds[i] {
			agree++
		}
	}
	fmt.Printf("prediction agreement (runtime vs training model): %d/%d\n", agree, len(modelPreds))
	correct := 0
	for i, p := range rtPreds {
		if p == probeLabels[i] {
			correct++
		}
	}
	fmt.Printf("runtime accuracy on probe batch: %d/%d\n\n", correct, len(rtPreds))

	// Batch-1 CPU timing next to the device predictions. The session's
	// activation arena is warm after the first rep, so this measures the
	// zero-alloc steady state a pinned edge deployment sees.
	single, _ := data.Batch([]int{0})
	const reps = 10
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := sess.Forward(single); err != nil {
			log.Fatalf("deploy: %v", err)
		}
	}
	hostMS := float64(time.Since(start).Microseconds()) / 1000 / reps
	fmt.Printf("host CPU inference (batch 1, %dpx): %.2f ms\n", *chip, hostMS)
	pred, err := latmeter.Predict(cfg, *chip)
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	fmt.Printf("predicted edge-device latency at %dpx:\n", *chip)
	for _, d := range latmeter.Devices() {
		fmt.Printf("  %-14s %8.2f ms\n", d.Name, pred.PerDevice[d.Name])
	}
	fmt.Printf("  mean %.2f ms  std %.2f ms\n", pred.MeanMS, pred.StdMS)

	if *load > 0 {
		opts := loadOptions{
			requests: *load, clients: *loadClients,
			maxBatch: *loadBatch, maxDelay: *loadDelay, queueCap: *loadQueueCap,
		}
		if *url != "" {
			key := *remoteModel
			if key == "" {
				key = cfg.Key()
			}
			driveRemote(data, opts, remoteOptions{
				url: *url, model: key, apiKey: *apiKey, slo: *slo, precision: *precision,
			})
		} else {
			driveLoad(buf.Bytes(), cfg, data, opts)
		}
	}
}

type loadOptions struct {
	requests, clients int
	maxBatch          int
	maxDelay          time.Duration
	queueCap          int
}

// driveLoad stands up the batching serving layer over the exported
// container and fires a concurrent request stream at it, reporting the
// metrics that matter for deployment sizing: throughput, latency
// percentiles, achieved batch size and backpressure counts. Client-side
// latencies stream into a lock-free metrics.Histogram — the same machinery
// servd exports on /metrics — so the drive itself adds no mutex contention
// to the measured path.
func driveLoad(container []byte, cfg resnet.Config, data *dataset.Dataset, opts loadOptions) {
	fmt.Printf("\nload test: %d requests, %d clients (max-batch %d, max-delay %s)\n",
		opts.requests, opts.clients, opts.maxBatch, opts.maxDelay)
	stats := &metrics.ServingStats{}
	srv := serve.NewServer(
		func(key string) (*infer.Plan, error) { return infer.LoadPlan(bytes.NewReader(container)) },
		serve.Options{
			MaxBatch: opts.maxBatch, MaxDelay: opts.maxDelay,
			QueueCap: opts.queueCap, Stats: stats,
		})
	defer srv.Close()

	// Pre-slice single-sample inputs so client goroutines only submit.
	inputs := make([]*tensor.Tensor, opts.clients)
	for i := range inputs {
		x, _ := data.Batch([]int{i % data.Len()})
		inputs[i] = x
	}

	hist := metrics.NewHistogram()
	var served, rejected, failed atomic.Int64
	var wg sync.WaitGroup
	next := make(chan int)
	start := time.Now()
	for c := 0; c < opts.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for range next {
				t0 := time.Now()
				_, err := srv.Submit(context.Background(), cfg.Key(), inputs[c])
				switch {
				case err == nil:
					served.Add(1)
					hist.Observe(time.Since(t0))
				case errors.Is(err, serve.ErrQueueFull):
					rejected.Add(1)
				default:
					failed.Add(1)
				}
			}
		}(c)
	}
	for i := 0; i < opts.requests; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	wall := time.Since(start)

	snap := stats.Snapshot()
	fmt.Printf("  served %d/%d in %s (%.1f req/s), rejected %d, failed %d\n",
		served.Load(), opts.requests, wall.Round(time.Millisecond),
		float64(served.Load())/wall.Seconds(), rejected.Load(), failed.Load())
	fmt.Printf("  batches %d  mean batch %.2f  max queue depth %d  queue wait p99 %.2fms\n",
		snap.Batches, snap.MeanBatch, snap.MaxQueueDepth, snap.QueueWait.P99MS)
	fmt.Print(report.LatencyBars("  client-observed latency", hist.Snapshot(), 40))
}

type remoteOptions struct {
	url, model, apiKey, slo, precision string
}

// driveRemote fires the same concurrent request stream at a running tier
// over HTTP through the typed api.Client — the deployment-sizing drill for a
// fleet you cannot link into the process. The client retries transient
// capacity rejections (queue_full, throttled, quota_exceeded) twice with
// backoff, so the reported rejection count is what survives the retry
// policy, matching what a production caller would see.
func driveRemote(data *dataset.Dataset, opts loadOptions, remote remoteOptions) {
	client := api.NewClient(remote.url, api.ClientOptions{
		APIKey: remote.apiKey, Retries: 2, RetryBackoff: 50 * time.Millisecond,
	})
	ctx := context.Background()
	health, err := client.Health(ctx)
	if err != nil {
		log.Fatalf("deploy: remote health check: %v", err)
	}
	fmt.Printf("\nremote tier %s: status=%s models=%v\n", client.Base(), health.Status, health.Models)

	fmt.Printf("remote load test: %d requests, %d clients against %q\n",
		opts.requests, opts.clients, remote.model)
	reqs := make([]api.PredictRequest, opts.clients)
	for i := range reqs {
		x, _ := data.Batch([]int{i % data.Len()})
		reqs[i] = api.PredictRequest{
			Model: remote.model, Shape: x.Shape()[1:], Data: x.Data(),
			SLO: remote.slo, Precision: remote.precision,
		}
	}

	hist := metrics.NewHistogram()
	var served, rejected, failed atomic.Int64
	var wg sync.WaitGroup
	next := make(chan int)
	start := time.Now()
	for c := 0; c < opts.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for range next {
				t0 := time.Now()
				_, err := client.Predict(ctx, reqs[c])
				switch code := api.ErrorCode(err); {
				case err == nil:
					served.Add(1)
					hist.Observe(time.Since(t0))
				case code == api.CodeQueueFull || code == api.CodeThrottled || code == api.CodeQuotaExceeded:
					rejected.Add(1)
				default:
					failed.Add(1)
				}
			}
		}(c)
	}
	for i := 0; i < opts.requests; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	wall := time.Since(start)

	fmt.Printf("  served %d/%d in %s (%.1f req/s), rejected %d, failed %d\n",
		served.Load(), opts.requests, wall.Round(time.Millisecond),
		float64(served.Load())/wall.Seconds(), rejected.Load(), failed.Load())
	fmt.Print(report.LatencyBars("  client-observed latency", hist.Snapshot(), 40))
}
