// Command latpred predicts a configuration's inference latency on the four
// nn-Meter-style device predictors, optionally with a per-kernel breakdown
// (-breakdown <device>) or a predictor-accuracy validation reproducing
// Table 2 (-validate).
package main

import (
	"flag"
	"fmt"
	"log"

	"drainnas/internal/latmeter"
	"drainnas/internal/resnet"
)

func main() {
	var (
		channels  = flag.Int("channels", 5, "input channels")
		kernel    = flag.Int("kernel", 7, "stem kernel size")
		stride    = flag.Int("stride", 2, "stem stride")
		padding   = flag.Int("padding", 3, "stem padding")
		pool      = flag.Int("pool", 1, "stem max-pool choice (0/1)")
		poolK     = flag.Int("pool-kernel", 3, "stem pool kernel")
		poolS     = flag.Int("pool-stride", 2, "stem pool stride")
		width     = flag.Int("width", 64, "initial output feature width")
		inputSize = flag.Int("input", latmeter.DefaultInputSize, "input image side")
		breakdown = flag.String("breakdown", "", "print per-kernel latency for this device")
		validate  = flag.Bool("validate", false, "validate predictors against the device simulator (Table 2)")
		samples   = flag.Int("samples", 20000, "validation sample count")
	)
	flag.Parse()

	cfg := resnet.Config{
		Channels: *channels, Batch: 1,
		KernelSize: *kernel, Stride: *stride, Padding: *padding,
		PoolChoice: *pool, KernelSizePool: *poolK, StridePool: *poolS,
		InitialOutputFeature: *width, NumClasses: 2,
	}

	if *validate {
		runValidation(*inputSize, *samples)
		return
	}

	pred, err := latmeter.Predict(cfg, *inputSize)
	if err != nil {
		log.Fatalf("latpred: %v", err)
	}
	g, _ := latmeter.Decompose(cfg, *inputSize)
	fmt.Printf("config: %s  (input %dx%d, %d kernels, %.2f GFLOPs, %.1f MB traffic)\n\n",
		cfg.Key(), *inputSize, *inputSize, len(g.Kernels),
		g.TotalFLOPs()/1e9, g.TotalBytes()/1e6)
	for _, d := range latmeter.Devices() {
		fmt.Printf("  %-14s %8.2f ms   (%s, %s)\n", d.Name, pred.PerDevice[d.Name], d.HW, d.Framework)
	}
	fmt.Printf("\n  mean %.2f ms   std %.2f ms\n", pred.MeanMS, pred.StdMS)

	if *breakdown != "" {
		names, lats, err := latmeter.Breakdown(cfg, *inputSize, *breakdown)
		if err != nil {
			log.Fatalf("latpred: %v", err)
		}
		fmt.Printf("\nper-kernel breakdown on %s:\n", *breakdown)
		for i, n := range names {
			fmt.Printf("  %-44s %8.3f ms\n", n, lats[i])
		}
	}
}

// runValidation reproduces Table 2: each predictor versus its simulated
// physical device over a sample of search-space models.
func runValidation(inputSize, samples int) {
	// Validate over the full per-combo search space so the accuracy figure
	// averages over many per-model bias draws, like nn-Meter's published
	// corpus-level numbers.
	var space []resnet.Config
	for _, ks := range []int{3, 7} {
		for _, st := range []int{1, 2} {
			for _, pad := range []int{1, 2, 3} {
				for _, pool := range []int{0, 1} {
					for _, kp := range []int{2, 3} {
						for _, sp := range []int{1, 2} {
							for _, f := range []int{32, 48, 64} {
								space = append(space, resnet.Config{
									Channels: 5, Batch: 1, KernelSize: ks, Stride: st, Padding: pad,
									PoolChoice: pool, KernelSizePool: kp, StridePool: sp,
									InitialOutputFeature: f, NumClasses: 2,
								})
							}
						}
					}
				}
			}
		}
	}
	var graphs []latmeter.Graph
	var keys []string
	for _, cfg := range space {
		g, err := latmeter.Decompose(cfg, inputSize)
		if err != nil {
			log.Fatalf("latpred: %v", err)
		}
		graphs = append(graphs, g)
		keys = append(keys, cfg.Key())
	}
	fmt.Printf("validating 4 predictors over %d models x %d measurements\n\n", len(graphs), samples)
	fmt.Printf("%-14s %-26s %-16s %s\n", "Hardware name", "Device", "Framework", "±10% Accuracy")
	for _, d := range latmeter.Devices() {
		sim := latmeter.NewDeviceSimulator(d, 2023)
		res := sim.Validate(graphs, keys, samples, 7)
		fmt.Printf("%-14s %-26s %-16s %.2f%%\n", d.Name, d.HW, d.Framework, 100*res.Within10Pct)
	}
	fmt.Println("\npaper Table 2: 99.00% / 99.10% / 99.00% / 83.40%")
}
