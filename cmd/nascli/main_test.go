package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"drainnas/internal/nas"
	"drainnas/internal/resnet"
	"drainnas/internal/surrogate"
)

func surrogateEval() nas.Evaluator {
	return nas.SurrogateEvaluator{Model: surrogate.Default()}
}

// TestSelectConfigsLimitAppliesToEveryStrategy pins the -limit fix: the cap
// used to be applied to the enumerated grid before random/evolution rebuilt
// the config list, so it silently did nothing for those strategies.
func TestSelectConfigsLimitAppliesToEveryStrategy(t *testing.T) {
	space := nas.PaperSpace()
	combos := []nas.InputCombo{{Channels: 5, Batch: 8}}
	for _, tc := range []struct {
		strategy string
		n        int
	}{
		{"grid", 0},
		{"random", 40},
		{"evolution", 20},
	} {
		configs, err := selectConfigs(space, tc.strategy, combos, surrogateEval(), tc.n, 7)
		if err != nil {
			t.Fatalf("%s: %v", tc.strategy, err)
		}
		if len(configs) != 7 {
			t.Fatalf("%s: -limit=7 produced %d configs", tc.strategy, len(configs))
		}
	}
	if _, err := selectConfigs(space, "bogus", combos, surrogateEval(), 0, 0); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	// No limit: the full selection comes back.
	configs, err := selectConfigs(space, "random", combos, surrogateEval(), 40, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(configs) != 40 {
		t.Fatalf("random without limit produced %d configs", len(configs))
	}
}

// TestOpenJournalRepairsTruncatedTail covers the resume path against a
// crash-truncated file: the bad tail is cut off at the reported offset and
// appends continue on a clean line boundary.
func TestOpenJournalRepairsTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")

	cfgs := nas.PaperSpace().Enumerate(nas.InputCombo{Channels: 5, Batch: 8})[:6]
	results := nas.Experiment(cfgs, surrogateEval(), nas.ExperimentOptions{Workers: 1})
	var buf bytes.Buffer
	if err := nas.WriteJournal(&buf, results); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if err := os.WriteFile(path, full[:len(full)-20], 0o644); err != nil {
		t.Fatal(err)
	}

	jw, prior, err := openJournal(path, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != len(results)-1 {
		t.Fatalf("recovered %d entries, want %d", len(prior), len(results)-1)
	}
	// Re-append the lost trial; the journal must read back clean and whole.
	if err := jw.Append(results[len(results)-1]); err != nil {
		t.Fatal(err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	back, err := nas.ReadJournal(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("repaired journal unreadable: %v", err)
	}
	if len(back) != len(results) {
		t.Fatalf("repaired journal has %d entries, want %d", len(back), len(results))
	}
}

func TestOpenJournalResumeWithoutFileStartsFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "missing.jsonl")
	jw, prior, err := openJournal(path, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != 0 {
		t.Fatalf("prior entries from a missing file: %d", len(prior))
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
}

func buildNascli(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "nascli")
	build := exec.Command("go", "build", "-o", bin, "drainnas/cmd/nascli")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func journalLines(t *testing.T, path string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0
	}
	if err != nil {
		t.Fatal(err)
	}
	return bytes.Count(data, []byte("\n"))
}

// TestNascliInterruptThenResume is the binary-level acceptance check:
// SIGINT mid-sweep exits 130 with a valid journal of everything that
// completed, and a -resume run finishes the plan with results identical to
// an uninterrupted sweep.
func TestNascliInterruptThenResume(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test skipped in -short mode")
	}
	bin := buildNascli(t)
	dir := t.TempDir()
	journal := filepath.Join(dir, "sweep.jsonl")
	sweepArgs := []string{"-strategy=random", "-n=40", "-channels=5", "-batch=8", "-workers=2", "-journal=" + journal}

	// Phase 1: start a slow sweep, interrupt once it has journaled a few
	// trials.
	var out1 bytes.Buffer
	cmd := exec.Command(bin, append(sweepArgs, "-trial-delay=100ms")...)
	cmd.Stdout, cmd.Stderr = &out1, &out1
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for journalLines(t, journal) < 5 {
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("journal never grew; output:\n%s", out1.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	if err == nil || cmd.ProcessState.ExitCode() != 130 {
		t.Fatalf("interrupted run: err=%v exit=%d\n%s", err, cmd.ProcessState.ExitCode(), out1.String())
	}
	if !strings.Contains(out1.String(), "-resume") {
		t.Fatalf("interrupt output does not point at -resume:\n%s", out1.String())
	}
	data, rerr := os.ReadFile(journal)
	if rerr != nil {
		t.Fatal(rerr)
	}
	partial, rerr := nas.ReadJournal(bytes.NewReader(data))
	if rerr != nil {
		t.Fatalf("post-interrupt journal not clean: %v", rerr)
	}
	if len(partial) < 5 || len(partial) >= 40 {
		t.Fatalf("post-interrupt journal has %d trials", len(partial))
	}

	// Phase 2: resume (full speed) and finish.
	out2, rerr2 := exec.Command(bin, append(sweepArgs, "-resume")...).CombinedOutput()
	if rerr2 != nil {
		t.Fatalf("resume run: %v\n%s", rerr2, out2)
	}
	for _, want := range []string{"resuming:", "reused from journal", "sweep complete:", "journal written to"} {
		if !strings.Contains(string(out2), want) {
			t.Fatalf("resume output missing %q:\n%s", want, out2)
		}
	}

	// Phase 3: an uninterrupted reference sweep; the surrogate is
	// deterministic, so per-config accuracies must match exactly.
	refJournal := filepath.Join(dir, "ref.jsonl")
	refArgs := []string{"-strategy=random", "-n=40", "-channels=5", "-batch=8", "-workers=2", "-journal=" + refJournal}
	if out, err := exec.Command(bin, refArgs...).CombinedOutput(); err != nil {
		t.Fatalf("reference run: %v\n%s", err, out)
	}
	// Map by the raw config struct: Key() collapses no-pool variants, but
	// the plan is defined over raw configurations.
	readByConfig := func(path string) map[resnet.Config]float64 {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		entries, err := nas.ReadJournal(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		m := map[resnet.Config]float64{}
		for _, r := range entries {
			if r.Status == nas.TrialSucceeded {
				m[r.Config] = r.Accuracy
			}
		}
		return m
	}
	got, want := readByConfig(journal), readByConfig(refJournal)
	if len(got) != len(want) || len(want) != 40 {
		t.Fatalf("resumed sweep covered %d configs, reference %d, want 40", len(got), len(want))
	}
	for k, acc := range want {
		if got[k] != acc {
			t.Fatalf("config %+v: resumed %.4f vs reference %.4f", k, got[k], acc)
		}
	}
}
