// Command nascli runs the NAS experiment: enumerate the search space
// (-enumerate, the textual Figure 2), run the full surrogate-backed sweep
// (default), or run real training on a miniature corpus (-backend=train).
//
// Trials stream to a JSON-lines journal as they complete, so an
// interrupted sweep keeps everything it finished: SIGINT stops handing out
// trials, drains the in-flight ones, flushes the journal and exits 130;
// rerunning with -resume reuses the journaled successes and completes the
// plan. Transient evaluator failures retry with exponential backoff
// (-retries) before landing in the journal as failed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"drainnas/internal/dataset"
	"drainnas/internal/geodata"
	"drainnas/internal/metrics"
	"drainnas/internal/nas"
	"drainnas/internal/resnet"
	"drainnas/internal/surrogate"
)

// runMultiFidelity executes the successive-halving or Hyperband strategy,
// which manage their own budgets, and prints the outcome.
func runMultiFidelity(strategy string, combos []nas.InputCombo, eval nas.Evaluator, workers int) {
	be, ok := eval.(nas.BudgetedEvaluator)
	if !ok {
		log.Fatalf("nascli: %s needs a budget-capable evaluator (surrogate backend)", strategy)
	}
	for _, combo := range combos {
		switch strategy {
		case "sh":
			space := nas.PaperSpace()
			sh, err := nas.SuccessiveHalving(space.Enumerate(combo), be, nas.SHOptions{Eta: 2, MinBudget: 0.25, Workers: workers})
			if err != nil {
				log.Fatalf("nascli: %v", err)
			}
			fmt.Printf("%dch/b%d successive halving: best %.2f%%  %s  (budget %.1f full evals vs 288 grid)\n",
				combo.Channels, combo.Batch, sh.Survivors[0].Accuracy, sh.Survivors[0].Config.Key(), sh.TotalBudget)
		case "hyperband":
			hb, err := nas.Hyperband(be, nas.HyperbandOptions{Combo: combo, Seed: 1, Workers: workers})
			if err != nil {
				log.Fatalf("nascli: %v", err)
			}
			fmt.Printf("%dch/b%d hyperband: best %.2f%%  %s  (%d brackets, budget %.1f full evals)\n",
				combo.Channels, combo.Batch, hb.Best.Accuracy, hb.Best.Config.Key(), len(hb.Brackets), hb.TotalBudget)
		}
	}
}

// selectConfigs applies the search strategy over every input combination
// and only then the trial cap, so -limit means the same thing for every
// strategy (it used to be applied to the enumerated grid before random and
// evolution rebuilt the list, silently ignoring it).
func selectConfigs(space nas.Space, strategy string, combos []nas.InputCombo, eval nas.Evaluator, n, limit int) ([]resnet.Config, error) {
	var configs []resnet.Config
	switch strategy {
	case "grid":
		configs = space.EnumerateAll(combos)
	case "random":
		for _, c := range combos {
			configs = append(configs, nas.RandomStrategy{N: n, Seed: 1}.Select(space, c)...)
		}
	case "evolution":
		for _, c := range combos {
			evo := nas.EvolutionStrategy{Population: 12, Cycles: n, SampleSize: 3, Seed: 1, Evaluator: eval}
			configs = append(configs, evo.Select(space, c)...)
		}
	default:
		return nil, fmt.Errorf("unknown strategy %q", strategy)
	}
	if limit > 0 && len(configs) > limit {
		configs = configs[:limit]
	}
	return configs, nil
}

// openJournal prepares the trial journal for streaming appends. In resume
// mode it loads prior entries first, repairing a crash-truncated tail by
// truncating the file at the reported offset so appends start on a clean
// line boundary; otherwise the file is created fresh.
func openJournal(path string, resume bool, syncEvery int) (*nas.JournalWriter, []nas.TrialResult, error) {
	var prior []nas.TrialResult
	flags := os.O_WRONLY | os.O_CREATE | os.O_TRUNC
	if resume {
		flags = os.O_WRONLY | os.O_CREATE | os.O_APPEND
		f, err := os.Open(path)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// Nothing journaled yet; -resume degrades to a fresh sweep.
		case err != nil:
			return nil, nil, err
		default:
			prior, err = nas.ReadJournal(f)
			f.Close()
			var tail *nas.JournalTailError
			if errors.As(err, &tail) {
				fmt.Printf("journal %s: truncated tail at byte %d, repairing (%d trials recovered)\n",
					path, tail.Offset, len(prior))
				if err := os.Truncate(path, tail.Offset); err != nil {
					return nil, nil, err
				}
			} else if err != nil {
				return nil, nil, err
			}
		}
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return nas.NewJournalWriter(f, nas.JournalWriterOptions{SyncEvery: syncEvery}), prior, nil
}

// delayEvaluator stretches every trial by a fixed delay, simulating the
// expensive evaluations of a real sweep so drain/resume behaviour can be
// exercised (and demoed) at surrogate cost.
type delayEvaluator struct {
	inner nas.Evaluator
	d     time.Duration
}

func (e delayEvaluator) Evaluate(cfg resnet.Config) (float64, error) {
	time.Sleep(e.d)
	return e.inner.Evaluate(cfg)
}

func main() {
	var (
		enumerate  = flag.Bool("enumerate", false, "print the search space (Figure 2) and exit")
		backend    = flag.String("backend", "surrogate", "accuracy backend: surrogate | train")
		strategy   = flag.String("strategy", "grid", "search strategy: grid | random | evolution | hyperband | sh")
		budgetN    = flag.Int("n", 60, "random strategy: sample count; evolution: cycles")
		channels   = flag.Int("channels", 0, "restrict to one channel count (0 = both)")
		batch      = flag.Int("batch", 0, "restrict to one batch size (0 = all)")
		limit      = flag.Int("limit", 0, "cap the number of trials (0 = all)")
		journal    = flag.String("journal", "", "stream the trial journal to this file (one JSON line per trial)")
		resume     = flag.Bool("resume", false, "reuse successful trials from the -journal file and append new ones")
		syncEvery  = flag.Int("journal-sync", 32, "fsync the journal every N trials (0 = only at exit)")
		retries    = flag.Int("retries", 2, "retry attempts for transient trial failures (exponential backoff)")
		trialDelay = flag.Duration("trial-delay", 0, "artificial per-trial delay (drain/resume demos and tests)")
		workers    = flag.Int("workers", 0, "trial parallelism (0 = GOMAXPROCS)")
		chip       = flag.Int("chip", 32, "train backend: chip size")
		scale      = flag.Int("scale", 300, "train backend: corpus scale divisor")
		epochs     = flag.Int("epochs", 2, "train backend: epochs per fold")
		folds      = flag.Int("folds", 2, "train backend: cross-validation folds")
	)
	flag.Parse()

	space := nas.PaperSpace()
	if *enumerate {
		fmt.Println(space.Describe())
		all := space.EnumerateAll(nas.PaperInputCombos())
		uniq := nas.UniqueConfigs(all)
		valid, failed := nas.ValidTrials(all)
		fmt.Printf("\nraw trials: %d (6 input combos x %d)\n", len(all), space.RawSize())
		fmt.Printf("distinct networks: %d\n", len(uniq))
		fmt.Printf("valid outcomes after attrition: %d (%d lost; paper: %d)\n",
			len(valid), len(failed), nas.PaperValidTrialCount)
		return
	}
	if *resume && *journal == "" {
		log.Fatal("nascli: -resume needs -journal")
	}

	combos := nas.PaperInputCombos()
	var filtered []nas.InputCombo
	for _, c := range combos {
		if (*channels == 0 || c.Channels == *channels) && (*batch == 0 || c.Batch == *batch) {
			filtered = append(filtered, c)
		}
	}

	var eval nas.Evaluator
	switch *backend {
	case "surrogate":
		eval = nas.SurrogateEvaluator{Model: surrogate.Default()}
	case "train":
		if *channels == 0 {
			log.Fatal("nascli: -backend=train requires -channels=5 or 7 (one corpus per channel count)")
		}
		fmt.Printf("generating corpus (chip %d, scale 1/%d)...\n", *chip, *scale)
		corpus := geodata.GenerateCorpus(geodata.CorpusOptions{ChipSize: *chip, Scale: *scale, Seed: 1})
		x, labels := corpus.Tensors(*channels)
		eval = nas.TrainEvaluator{Data: dataset.New(x, labels), Opts: nas.TrainOptions{
			Epochs: *epochs, Folds: *folds, LR: 0.02, Momentum: 0.9, WeightDecay: 1e-4, Seed: 1,
		}}
	default:
		log.Fatalf("nascli: unknown backend %q", *backend)
	}

	if *strategy == "hyperband" || *strategy == "sh" {
		runMultiFidelity(*strategy, filtered, eval, *workers)
		return
	}
	configs, err := selectConfigs(space, *strategy, filtered, eval, *budgetN, *limit)
	if err != nil {
		log.Fatalf("nascli: %v", err)
	}

	// Durability plumbing: streamed journal, prior entries on resume.
	var jw *nas.JournalWriter
	var prior []nas.TrialResult
	if *journal != "" {
		jw, prior, err = openJournal(*journal, *resume, *syncEvery)
		if err != nil {
			log.Fatalf("nascli: opening journal: %v", err)
		}
	}
	remaining, reused := nas.FilterCompleted(configs, prior)
	if *resume {
		fmt.Printf("resuming: %d/%d trials reused from journal, %d to run\n",
			len(reused), len(configs), len(remaining))
	}

	// SIGINT/SIGTERM cancels the sweep context: no new trials start, the
	// in-flight ones drain and reach the journal. A second signal falls
	// through to the runtime's default handling (immediate death).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	sweepDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			fmt.Fprintln(os.Stderr, "\nnascli: interrupt — draining in-flight trials (press again to kill)")
			stop()
		case <-sweepDone:
		}
	}()

	stats := &metrics.SweepStats{}
	stats.Begin(len(configs), len(reused))
	runEval := eval
	if *trialDelay > 0 {
		runEval = delayEvaluator{inner: runEval, d: *trialDelay}
	}
	runEval = nas.RetryEvaluator{
		Inner:       runEval,
		MaxAttempts: *retries + 1,
		OnRetry:     func(int, error) { stats.Retried() },
	}

	opts := nas.ExperimentOptions{
		Workers:           *workers,
		SimulateAttrition: *backend == "surrogate" && *strategy == "grid",
		Stats:             stats,
		ProgressOffset:    len(reused),
		ProgressTotal:     len(configs),
		Progress: func(done, total int) {
			if done%200 == 0 || done == total {
				if eta := stats.Snapshot().ETA; eta > 0 {
					fmt.Printf("  %d/%d trials (eta %s)\n", done, total, eta.Round(time.Second))
				} else {
					fmt.Printf("  %d/%d trials\n", done, total)
				}
			}
		},
	}
	if jw != nil {
		opts.Journal = jw
	}

	fmt.Printf("running %d trials (%s backend, %s strategy)...\n", len(remaining), *backend, *strategy)
	start := time.Now()
	fresh, runErr := nas.ExperimentContext(ctx, remaining, runEval, opts)
	elapsed := time.Since(start)
	close(sweepDone)
	results := nas.MergeResults(configs, reused, fresh)

	// The journal must land on disk before the run is declared good: a
	// deferred, unchecked Close would report a truncated journal (ENOSPC)
	// as "journal written".
	if jw != nil {
		if cerr := jw.Close(); cerr != nil {
			log.Fatalf("nascli: %v", cerr)
		}
	}

	if runErr != nil && errors.Is(runErr, context.Canceled) {
		fmt.Printf("\ninterrupted: %s\n", stats.Snapshot())
		fmt.Printf("%d/%d trials have journaled outcomes — rerun with -resume -journal=%s to finish\n",
			len(results), len(configs), *journal)
		os.Exit(130)
	}
	if runErr != nil {
		log.Fatalf("nascli: %v", runErr)
	}

	ok := nas.Succeeded(results)
	rate := 0.0
	if elapsed > 0 {
		rate = float64(len(fresh)) / elapsed.Seconds()
	}
	fmt.Printf("\nsweep complete: %d/%d trials succeeded in %s (%.1f fresh trials/s)\n",
		len(ok), len(results), elapsed.Round(time.Millisecond), rate)
	snap := stats.Snapshot()
	fmt.Printf("counters: %s\n", snap)
	if snap.Trials.Count > 0 {
		fmt.Printf("trial wall time: p50 %.2fms  p95 %.2fms  p99 %.2fms  max %.2fms\n",
			snap.Trials.P50MS, snap.Trials.P95MS, snap.Trials.P99MS, snap.Trials.MaxMS)
	}
	best, found := nas.BestByAccuracy(results)
	if found {
		fmt.Printf("best: %.2f%%  %s\n", best.Accuracy, best.Config.Key())
	}
	fmt.Println("\ntop 5 trials:")
	for _, r := range nas.TopK(results, 5) {
		fmt.Printf("  %.2f%%  %s\n", r.Accuracy, r.Config.Key())
	}
	if jw != nil {
		fmt.Printf("\njournal written to %s (%d trials this run)\n", *journal, jw.Count())
	}
}
