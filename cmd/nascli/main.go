// Command nascli runs the NAS experiment: enumerate the search space
// (-enumerate, the textual Figure 2), run the full surrogate-backed sweep
// (default), or run real training on a miniature corpus (-backend=train).
// Results stream to a JSON-lines journal.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"drainnas/internal/dataset"
	"drainnas/internal/geodata"
	"drainnas/internal/nas"
	"drainnas/internal/surrogate"
)

// runMultiFidelity executes the successive-halving or Hyperband strategy,
// which manage their own budgets, and prints the outcome.
func runMultiFidelity(strategy string, combos []nas.InputCombo, eval nas.Evaluator, workers int) {
	be, ok := eval.(nas.BudgetedEvaluator)
	if !ok {
		log.Fatalf("nascli: %s needs a budget-capable evaluator (surrogate backend)", strategy)
	}
	for _, combo := range combos {
		switch strategy {
		case "sh":
			space := nas.PaperSpace()
			sh, err := nas.SuccessiveHalving(space.Enumerate(combo), be, nas.SHOptions{Eta: 2, MinBudget: 0.25, Workers: workers})
			if err != nil {
				log.Fatalf("nascli: %v", err)
			}
			fmt.Printf("%dch/b%d successive halving: best %.2f%%  %s  (budget %.1f full evals vs 288 grid)\n",
				combo.Channels, combo.Batch, sh.Survivors[0].Accuracy, sh.Survivors[0].Config.Key(), sh.TotalBudget)
		case "hyperband":
			hb, err := nas.Hyperband(be, nas.HyperbandOptions{Combo: combo, Seed: 1, Workers: workers})
			if err != nil {
				log.Fatalf("nascli: %v", err)
			}
			fmt.Printf("%dch/b%d hyperband: best %.2f%%  %s  (%d brackets, budget %.1f full evals)\n",
				combo.Channels, combo.Batch, hb.Best.Accuracy, hb.Best.Config.Key(), len(hb.Brackets), hb.TotalBudget)
		}
	}
}

func main() {
	var (
		enumerate = flag.Bool("enumerate", false, "print the search space (Figure 2) and exit")
		backend   = flag.String("backend", "surrogate", "accuracy backend: surrogate | train")
		strategy  = flag.String("strategy", "grid", "search strategy: grid | random | evolution | hyperband | sh")
		budgetN   = flag.Int("n", 60, "random strategy: sample count; evolution: cycles")
		channels  = flag.Int("channels", 0, "restrict to one channel count (0 = both)")
		batch     = flag.Int("batch", 0, "restrict to one batch size (0 = all)")
		limit     = flag.Int("limit", 0, "cap the number of trials (0 = all)")
		journal   = flag.String("journal", "", "write the trial journal to this file")
		workers   = flag.Int("workers", 0, "trial parallelism (0 = GOMAXPROCS)")
		chip      = flag.Int("chip", 32, "train backend: chip size")
		scale     = flag.Int("scale", 300, "train backend: corpus scale divisor")
		epochs    = flag.Int("epochs", 2, "train backend: epochs per fold")
		folds     = flag.Int("folds", 2, "train backend: cross-validation folds")
	)
	flag.Parse()

	space := nas.PaperSpace()
	if *enumerate {
		fmt.Println(space.Describe())
		all := space.EnumerateAll(nas.PaperInputCombos())
		uniq := nas.UniqueConfigs(all)
		valid, failed := nas.ValidTrials(all)
		fmt.Printf("\nraw trials: %d (6 input combos x %d)\n", len(all), space.RawSize())
		fmt.Printf("distinct networks: %d\n", len(uniq))
		fmt.Printf("valid outcomes after attrition: %d (%d lost; paper: %d)\n",
			len(valid), len(failed), nas.PaperValidTrialCount)
		return
	}

	combos := nas.PaperInputCombos()
	var filtered []nas.InputCombo
	for _, c := range combos {
		if (*channels == 0 || c.Channels == *channels) && (*batch == 0 || c.Batch == *batch) {
			filtered = append(filtered, c)
		}
	}
	configs := space.EnumerateAll(filtered)
	if *limit > 0 && len(configs) > *limit {
		configs = configs[:*limit]
	}

	var eval nas.Evaluator
	switch *backend {
	case "surrogate":
		eval = nas.SurrogateEvaluator{Model: surrogate.Default()}
	case "train":
		if *channels == 0 {
			log.Fatal("nascli: -backend=train requires -channels=5 or 7 (one corpus per channel count)")
		}
		fmt.Printf("generating corpus (chip %d, scale 1/%d)...\n", *chip, *scale)
		corpus := geodata.GenerateCorpus(geodata.CorpusOptions{ChipSize: *chip, Scale: *scale, Seed: 1})
		x, labels := corpus.Tensors(*channels)
		eval = nas.TrainEvaluator{Data: dataset.New(x, labels), Opts: nas.TrainOptions{
			Epochs: *epochs, Folds: *folds, LR: 0.02, Momentum: 0.9, WeightDecay: 1e-4, Seed: 1,
		}}
	default:
		log.Fatalf("nascli: unknown backend %q", *backend)
	}

	// Non-grid strategies operate per input combination.
	switch *strategy {
	case "grid":
		// keep the enumerated configs
	case "random":
		configs = nil
		for _, c := range filtered {
			configs = append(configs, nas.RandomStrategy{N: *budgetN, Seed: 1}.Select(space, c)...)
		}
	case "evolution":
		configs = nil
		for _, c := range filtered {
			evo := nas.EvolutionStrategy{Population: 12, Cycles: *budgetN, SampleSize: 3, Seed: 1, Evaluator: eval}
			configs = append(configs, evo.Select(space, c)...)
		}
	case "hyperband", "sh":
		runMultiFidelity(*strategy, filtered, eval, *workers)
		return
	default:
		log.Fatalf("nascli: unknown strategy %q", *strategy)
	}

	fmt.Printf("running %d trials (%s backend, %s strategy)...\n", len(configs), *backend, *strategy)
	start := time.Now()
	results := nas.Experiment(configs, eval, nas.ExperimentOptions{
		Workers:           *workers,
		SimulateAttrition: *backend == "surrogate" && *strategy == "grid",
		Progress: func(done, total int) {
			if done%200 == 0 || done == total {
				fmt.Printf("  %d/%d trials\n", done, total)
			}
		},
	})
	elapsed := time.Since(start)

	ok := nas.Succeeded(results)
	fmt.Printf("\n%d/%d trials succeeded in %s (%.1f trials/s)\n",
		len(ok), len(results), elapsed.Round(time.Millisecond), float64(len(results))/elapsed.Seconds())
	best, found := nas.BestByAccuracy(results)
	if found {
		fmt.Printf("best: %.2f%%  %s\n", best.Accuracy, best.Config.Key())
	}
	fmt.Println("\ntop 5 trials:")
	for _, r := range nas.TopK(results, 5) {
		fmt.Printf("  %.2f%%  %s\n", r.Accuracy, r.Config.Key())
	}

	if *journal != "" {
		f, err := os.Create(*journal)
		if err != nil {
			log.Fatalf("nascli: %v", err)
		}
		defer f.Close()
		if err := nas.WriteJournal(f, results); err != nil {
			log.Fatalf("nascli: %v", err)
		}
		fmt.Printf("\njournal written to %s\n", *journal)
	}
}
