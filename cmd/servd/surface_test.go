package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"drainnas/internal/api"
	"drainnas/internal/serve"
	"drainnas/internal/tenant"
)

// TestAPISurfaceRoutes walks every route internal/api registers for the
// servd tier against the real mux and asserts each one is actually
// mounted: a path drifting out of newAPIWithTenant would come back as
// ServeMux's plain-text 404/405 instead of a handler response. Deprecated
// aliases must carry the Deprecation header and a successor Link; /v1/
// routes must not.
func TestAPISurfaceRoutes(t *testing.T) {
	dir := t.TempDir()
	writeTinyModel(t, dir)
	srv := serve.NewServer(newDirLoader(dir), serve.Options{MaxDelay: time.Millisecond})
	defer srv.Close()
	ts := httptest.NewServer(newAPI(srv, dir))
	defer ts.Close()

	for _, rt := range api.RoutesFor("servd") {
		path := strings.ReplaceAll(rt.Path, "{id}", "scan-surface-0")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		var body *strings.Reader
		if rt.Method == http.MethodPost {
			body = strings.NewReader("{}")
		} else {
			body = strings.NewReader("")
		}
		req, err := http.NewRequestWithContext(ctx, rt.Method, ts.URL+path, body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			cancel()
			t.Fatalf("%s %s: %v", rt.Method, rt.Path, err)
		}
		ct := resp.Header.Get("Content-Type")
		if resp.StatusCode == http.StatusNotFound && strings.HasPrefix(ct, "text/plain") {
			t.Errorf("%s %s: not mounted (mux 404)", rt.Method, rt.Path)
		}
		if resp.StatusCode == http.StatusMethodNotAllowed {
			t.Errorf("%s %s: method not allowed — registry and mux disagree", rt.Method, rt.Path)
		}
		dep := resp.Header.Get("Deprecation")
		if rt.Deprecated {
			if dep != "true" {
				t.Errorf("%s %s: deprecated alias missing Deprecation header (got %q)", rt.Method, rt.Path, dep)
			}
			if link := resp.Header.Get("Link"); !strings.Contains(link, rt.Successor) {
				t.Errorf("%s %s: Link %q does not name successor %s", rt.Method, rt.Path, link, rt.Successor)
			}
		} else if dep != "" {
			t.Errorf("%s %s: unexpected Deprecation header %q on a current route", rt.Method, rt.Path, dep)
		}
		// Streaming endpoints (dashboard SSE) never end on their own;
		// cancel instead of draining the body.
		cancel()
		resp.Body.Close()
	}
}

// checkEnvelope pins the JSON error envelope against internal/api: the
// body must be exactly {"error": {code, message, request_id?}}, the code
// must be registered in api.KnownCodes, and the HTTP status must be the
// one the registry pins for that code.
func checkEnvelope(t *testing.T, name string, resp *http.Response, wantCode string) {
	t.Helper()
	defer resp.Body.Close()
	var top map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&top); err != nil {
		t.Fatalf("%s: decoding envelope: %v", name, err)
	}
	if len(top) != 1 || top["error"] == nil {
		t.Fatalf("%s: top-level keys %v, want exactly [error]", name, keysOf(top))
	}
	var errBody map[string]json.RawMessage
	if err := json.Unmarshal(top["error"], &errBody); err != nil {
		t.Fatalf("%s: decoding error body: %v", name, err)
	}
	for k := range errBody {
		switch k {
		case "code", "message", "request_id":
		default:
			t.Errorf("%s: unexpected error field %q", name, k)
		}
	}
	var code, msg string
	if err := json.Unmarshal(errBody["code"], &code); err != nil {
		t.Fatalf("%s: error.code: %v", name, err)
	}
	if err := json.Unmarshal(errBody["message"], &msg); err != nil {
		t.Fatalf("%s: error.message: %v", name, err)
	}
	if msg == "" {
		t.Errorf("%s: empty error.message", name)
	}
	wantStatus, known := api.KnownCodes[code]
	if !known {
		t.Fatalf("%s: code %q not in api.KnownCodes", name, code)
	}
	if resp.StatusCode != wantStatus {
		t.Errorf("%s: status %d, but api.KnownCodes pins %q to %d", name, resp.StatusCode, code, wantStatus)
	}
	if code != wantCode {
		t.Errorf("%s: code %q, want %q", name, code, wantCode)
	}
}

func keysOf(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestAPISurfaceErrorEnvelopes drives every cheaply reachable error code
// through the open (no edge tier) servd mux and pins the envelope.
func TestAPISurfaceErrorEnvelopes(t *testing.T) {
	dir := t.TempDir()
	cfg := writeTinyModel(t, dir)
	srv := serve.NewServer(newDirLoader(dir), serve.Options{MaxDelay: time.Millisecond})
	defer srv.Close()
	ts := httptest.NewServer(newAPI(srv, dir))
	defer ts.Close()

	scanBody := func(region string) string {
		return `{"model":"tiny","region":"` + region + `","tile_size":64,"chip_size":16}`
	}
	cases := []struct {
		name, method, path, body, code string
	}{
		{"predict garbage body", "POST", "/v1/predict", "{", api.CodeBadInput},
		{"predict unknown model", "POST", "/v1/predict", string(predictBody(t, cfg, "ghost")), api.CodeModelNotFound},
		{"scan start garbage body", "POST", "/v1/scan", "not json", api.CodeBadInput},
		{"scan start unknown region", "POST", "/v1/scan", scanBody("Atlantis"), api.CodeBadInput},
		{"scan status unknown id", "GET", "/v1/scan/scan-404", "", api.CodeScanNotFound},
		{"scan cancel unknown id", "DELETE", "/v1/scan/scan-404", "", api.CodeScanNotFound},
		{"scan events unknown id", "GET", "/v1/scan/scan-404/events", "", api.CodeScanNotFound},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		checkEnvelope(t, tc.name, resp, tc.code)
	}
}

// TestAPISurfaceUnauthorizedEnvelope repeats the envelope check for the
// 401 path, which only exists once the edge tier is mounted.
func TestAPISurfaceUnauthorizedEnvelope(t *testing.T) {
	dir := t.TempDir()
	writeTinyModel(t, dir)
	srv := serve.NewServer(newDirLoader(dir), serve.Options{MaxDelay: time.Millisecond})
	defer srv.Close()

	keyPath := filepath.Join(dir, "keys.json")
	keyJSON := `{"tenants": [{"name": "acme", "key": "acme-secret-key"}]}`
	if err := os.WriteFile(keyPath, []byte(keyJSON), 0o600); err != nil {
		t.Fatal(err)
	}
	edge, err := tenant.LoadTier(keyPath, time.Minute, 2, "servd-surface")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newAPIWithTenant(srv, dir, nil, edge, time.Second))
	defer ts.Close()

	for _, tc := range []struct{ name, method, path, body string }{
		{"predict without key", "POST", "/v1/predict", "{}"},
		{"scan start without key", "POST", "/v1/scan", "{}"},
		{"scan status without key", "GET", "/v1/scan/scan-404", ""},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		checkEnvelope(t, tc.name, resp, api.CodeUnauthorized)
	}
}
