// Command servd serves exported model containers over HTTP with dynamic
// micro-batching: the production-shaped front end for the Pareto-front
// models the NAS pipeline selects. Containers live in a model directory
// (one .dnnx file per model, written by cmd/deploy -out or any
// onnxsize.Export caller); requests are admitted into internal/serve's
// bounded queue, batched per (model, spatial size), and executed on a
// worker pool through the standalone inference runtime.
//
// API (canonical paths under /v1/; the unversioned /healthz and /metrics
// aliases are deprecated — responses carry a Deprecation header and a Link
// to the successor, and the aliases are scheduled for removal, see README):
//
//	POST /v1/predict   {"model":"name","shape":[C,H,W],"data":[...],
//	                    "precision":"int8"?}
//	                   -> {"model","precision","class","logits",
//	                       "batch_size","queued_ms","total_ms"}
//	                   precision selects the deployment arithmetic: "int8"
//	                   serves the post-training-quantized form of the same
//	                   container (equivalently, model "name@int8")
//	POST /v1/scan      start a whole-watershed scan job: every chip-sized
//	                   window of a synthesized watershed is classified
//	                   through the batcher and reassembled into an ordered
//	                   crossing heat map (202 + job document)
//	GET  /v1/scan/{id}        poll the job document
//	GET  /v1/scan/{id}/events NDJSON event stream, ?from=<seq> resumes
//	DELETE /v1/scan/{id}      cancel; in-flight tiles drain first
//	GET  /v1/stats     serving counters + model cache + infer plan/session
//	                   counters + GEMM kernel counters
//	GET  /v1/metrics   the same counters in Prometheus text exposition
//	                   format, including latency histograms and quantiles
//	GET  /v1/healthz   liveness + available models; 503 "degraded" when the
//	                   model directory is unreadable
//	GET  /v1/dashboard live dashboard (HTML); /v1/dashboard/ws streams
//	                   snapshots over WebSocket, /v1/dashboard/events over
//	                   SSE for clients that cannot upgrade
//	GET  /debug/pprof/ runtime profiles (only with -pprof)
//
// With -keys the multi-tenant edge tier fronts /v1/predict: requests carry
// an API key (Authorization: Bearer or X-API-Key), pass their tenant's
// token-bucket quota, and wait their weighted-fair turn (-tenant-inflight
// slots) before reaching the batcher. The key file hot-reloads, /v1/stats
// and /metrics grow per-tenant sections, the dashboard becomes
// key-gated, and every authenticated request leaves an audit log line.
//
// Errors share one JSON envelope with a stable machine-readable code:
//
//	{"error":{"code":"queue_full","message":"...","request_id":"..."}}
//
// Codes: bad_input (400), unauthorized (401), model_not_found (404),
// queue_full and quota_exceeded (429, with Retry-After), shutting_down
// (503), canceled (503), internal (500). Every response carries an
// X-Request-ID (honoring a well-formed incoming one) and is access-logged
// with its latency.
//
// On SIGINT/SIGTERM the server stops accepting connections, drains in-flight
// requests for up to -drain, closes the serving core (flushing pending
// batches) and exits 0.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"drainnas/internal/api"
	"drainnas/internal/httpx"
	"drainnas/internal/infer"
	"drainnas/internal/metrics"
	"drainnas/internal/scan"
	"drainnas/internal/serve"
	"drainnas/internal/sim"
	"drainnas/internal/tenant"
	"drainnas/internal/tensor"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address")
		models    = flag.String("models", ".", "directory of exported .dnnx model containers")
		maxBatch  = flag.Int("max-batch", 8, "flush a batch at this many requests")
		maxDelay  = flag.Duration("max-delay", 2*time.Millisecond, "flush a non-empty batch after this delay")
		queueCap  = flag.Int("queue", 256, "bounded admission queue capacity")
		workers   = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		cacheCap  = flag.Int("cache", 4, "resident model cache capacity")
		drain     = flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
		pprofFlag = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		traceOut  = flag.String("trace", "", "record arrivals (t_ms, model, slo, shape) as JSONL to this file for capsim replay")

		keys           = flag.String("keys", "", "tenant API key file (JSON); enables the multi-tenant edge tier on /v1/predict")
		keysRecheck    = flag.Duration("keys-recheck", 5*time.Second, "how often to re-stat the key file for hot reload")
		tenantInflight = flag.Int("tenant-inflight", 0, "weighted-fair admission slots across tenants (0 = auth+quota only)")
		dashInterval   = flag.Duration("dashboard-interval", time.Second, "live dashboard push interval")
	)
	flag.Parse()

	var edge *tenant.Tier
	if *keys != "" {
		var err error
		if edge, err = tenant.LoadTier(*keys, *keysRecheck, *tenantInflight, "servd"); err != nil {
			log.Fatalf("servd: %v", err)
		}
		log.Printf("servd: tenant tier enabled (%d tenants, fair slots %d)", edge.TenantCount(), *tenantInflight)
	}

	var rec *sim.TraceWriter
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatalf("servd: opening trace file: %v", err)
		}
		rec = sim.NewTraceWriter(f)
		log.Printf("servd: recording serving trace to %s", *traceOut)
	}

	srv := serve.NewServer(newDirLoader(*models), serve.Options{
		MaxBatch: *maxBatch, MaxDelay: *maxDelay,
		QueueCap: *queueCap, Workers: *workers, CacheCap: *cacheCap,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("servd: %v", err)
	}

	mux := newAPIWithTenant(srv, *models, rec, edge, *dashInterval)
	if *pprofFlag {
		registerPprof(mux)
	}
	hs := &http.Server{
		Handler: withAccessLog(mux),
		// A predict request can legitimately sit in the batching queue, so the
		// write timeout is generous; the read timeouts bound slow-loris bodies
		// and idle keep-alives.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	log.Printf("servd: listening on %s (models from %s)", ln.Addr(), *models)
	if *pprofFlag {
		log.Printf("servd: pprof enabled under /debug/pprof/")
	}

	select {
	case err := <-serveErr:
		// The listener failed outright; nothing is draining.
		srv.Close()
		closeTrace(rec)
		log.Fatalf("servd: %v", err)
	case <-ctx.Done():
		stop() // a second signal kills immediately instead of re-draining
		log.Printf("servd: shutdown signal; draining for up to %s", *drain)
		shCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			log.Printf("servd: drain incomplete: %v", err)
		}
		// The HTTP side is quiet (or timed out); flush the batcher so every
		// admitted request is answered before the process exits.
		srv.Close()
		closeTrace(rec)
		log.Printf("servd: drained, exiting")
	}
}

// closeTrace flushes the recorded trace, if recording; a truncated trace is
// worth a log line because replay determinism depends on the file.
func closeTrace(rec *sim.TraceWriter) {
	if rec == nil {
		return
	}
	if err := rec.Close(); err != nil {
		log.Printf("servd: flushing trace: %v", err)
	} else {
		log.Printf("servd: trace flushed (%d events)", rec.Count())
	}
}

// withAccessLog tags servd's access log lines; the middleware itself
// (request-ID minting/propagation, status/bytes/latency capture) lives in
// internal/httpx, shared with cmd/router.
func withAccessLog(h http.Handler) http.Handler { return httpx.AccessLog("servd", h) }

// registerPprof wires the net/http/pprof handlers onto mux explicitly — the
// server never exposes http.DefaultServeMux, so the package's init-time
// registrations alone would be unreachable.
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// newDirLoader keeps servd's historical constructor name over the shared
// directory loader in internal/serve.
func newDirLoader(dir string) func(key string) (*infer.Plan, error) { return serve.DirLoader(dir) }

// listModels returns the model keys available in dir, or the directory
// error so /healthz can surface it.
func listModels(dir string) ([]string, error) { return serve.ListModels(dir) }

// The predict wire types and error envelope are shared with cmd/router via
// internal/httpx; the aliases keep servd's handlers and tests on their
// historical names.
type (
	predictRequest  = api.PredictRequest
	predictResponse = api.PredictResponse
	errorEnvelope   = api.ErrorEnvelope
)

// newAPI builds the HTTP handler over a serving core. Split from main so
// tests drive it in-process. Canonical paths live under /v1/; /healthz and
// /metrics are kept as aliases so existing probes and scrape configs keep
// working.
func newAPI(srv *serve.Server, modelDir string) *http.ServeMux {
	return newAPIWithTrace(srv, modelDir, nil)
}

// newAPIWithTrace is newAPI plus optional arrival recording: every predict
// that resolves to a valid serving key is appended to rec before admission,
// so the trace captures offered load (including requests the queue later
// rejects), which is what capacity replay needs.
func newAPIWithTrace(srv *serve.Server, modelDir string, rec *sim.TraceWriter) *http.ServeMux {
	return newAPIWithTenant(srv, modelDir, rec, nil, 0)
}

// newAPIWithTenant is the full assembly: when edge is non-nil, /v1/predict
// sits behind the multi-tenant tier (API-key auth, per-tenant quotas,
// weighted-fair admission) and /v1/stats and /metrics grow per-tenant
// sections. The live dashboard is always mounted; it is auth-gated exactly
// when the tier is on.
func newAPIWithTenant(srv *serve.Server, modelDir string, rec *sim.TraceWriter, edge *tenant.Tier, dashInterval time.Duration) *http.ServeMux {
	mux := http.NewServeMux()

	var predict http.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req predictRequest
		body := http.MaxBytesReader(w, r.Body, api.MaxPredictBodyBytes)
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, codeBadInput, fmt.Sprintf("bad request body: %v", err))
			return
		}
		input, err := req.Tensor()
		if err != nil {
			httpError(w, http.StatusBadRequest, codeBadInput, err.Error())
			return
		}
		key, err := req.ResolveKey()
		if err != nil {
			httpError(w, http.StatusBadRequest, codeBadInput, err.Error())
			return
		}
		if rec != nil {
			rec.Record(key, req.SLO, req.Shape)
		}
		resp, err := srv.Submit(r.Context(), key, input)
		if err != nil {
			status, code := http.StatusInternalServerError, codeInternal
			switch {
			case errors.Is(err, serve.ErrQueueFull):
				status, code = http.StatusTooManyRequests, codeQueueFull
				w.Header().Set("Retry-After", "1")
			case errors.Is(err, serve.ErrClosed):
				status, code = http.StatusServiceUnavailable, codeShuttingDown
			case errors.Is(err, serve.ErrModelNotFound):
				status, code = http.StatusNotFound, codeModelNotFound
			case errors.Is(err, r.Context().Err()):
				// Client went away; the status is moot but 503 is honest.
				status, code = http.StatusServiceUnavailable, codeCanceled
			}
			httpError(w, status, code, err.Error())
			return
		}
		model, precision := api.SplitServedModel(resp.Model)
		writeJSON(w, http.StatusOK, predictResponse{
			Model:     model,
			Precision: precision,
			Class:     resp.Class,
			Logits:    resp.Logits,
			BatchSize: resp.BatchSize,
			QueuedMS:  float64(resp.Queued) / float64(time.Millisecond),
			TotalMS:   float64(resp.Total) / float64(time.Millisecond),
		})
	})
	if edge != nil {
		predict = edge.Wrap(predict)
	}
	mux.Handle("POST /v1/predict", predict)

	// Whole-watershed scan jobs run against this process's serving core.
	scanStats := &metrics.ScanStats{}
	scans := scan.NewManager(scanStats, scan.DefaultMaxRunning)
	scan.Register(mux, scans, edge, func(api.ScanRequest) (scan.Backend, error) {
		return scan.ServerBackend{S: srv}, nil
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		stats := api.ServdStats{
			Serving: srv.Stats().Snapshot(),
			Cache:   srv.Cache().Stats(),
			Queue:   srv.QueueDepth(),
			Infer:   metrics.Infer.Snapshot(),
			Kernel:  metrics.Kernel.Snapshot(),
			Gemm:    tensor.GemmKernelName(),
			QGemm:   tensor.QGemmKernelName(),
		}
		sc := scanStats.Snapshot()
		stats.Scan = &sc
		if edge != nil {
			tn := edge.Stats().Snapshot()
			fair := edge.Fair().SnapshotFair()
			stats.Tenant, stats.Fair = &tn, &fair
		}
		writeJSON(w, http.StatusOK, stats)
	})

	tenant.NewDashboard(edge, dashInterval, func() tenant.DashboardSnapshot {
		return tenant.DashboardSnapshot{
			Service: "servd",
			Serving: srv.Stats().Snapshot(),
			Tenants: edge.Stats().Snapshot(),
			Fair:    edge.Fair().SnapshotFair(),
		}
	}).Register(mux)

	handleMetrics := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		e := metrics.NewExpositionWriter(w)
		srv.Stats().Snapshot().WriteProm(e)
		writeCacheProm(e, srv.Cache().Stats())
		metrics.Infer.Snapshot().WriteProm(e)
		metrics.Kernel.Snapshot().WriteProm(e)
		scanStats.Snapshot().WriteProm(e)
		if edge != nil {
			edge.Stats().Snapshot().WriteProm(e)
		}
		if err := e.Flush(); err != nil {
			log.Printf("servd: writing /metrics: %v", err)
		}
	}
	mux.HandleFunc("GET /v1/metrics", handleMetrics)
	mux.HandleFunc("GET /metrics", httpx.Deprecated("servd", "/metrics", "/v1/metrics", handleMetrics))

	handleHealthz := func(w http.ResponseWriter, r *http.Request) {
		keys, err := listModels(modelDir)
		if err != nil {
			// An unreadable model directory means every predict will 404 or
			// 500: say so instead of reporting ok with zero models.
			writeJSON(w, http.StatusServiceUnavailable, api.HealthResponse{
				Status: "degraded",
				Error:  err.Error(),
			})
			return
		}
		writeJSON(w, http.StatusOK, api.HealthResponse{
			Status: "ok",
			Models: keys,
		})
	}
	mux.HandleFunc("GET /v1/healthz", handleHealthz)
	mux.HandleFunc("GET /healthz", httpx.Deprecated("servd", "/healthz", "/v1/healthz", handleHealthz))

	return mux
}

// writeCacheProm exports the model-cache counters; the cache lives in
// internal/serve (which imports metrics), so the exposition mapping sits
// here rather than creating an import cycle.
func writeCacheProm(e *metrics.ExpositionWriter, cs serve.CacheStats) {
	e.Gauge("drainnas_model_cache_resident", "Resident model runtimes.", float64(cs.Len))
	e.Gauge("drainnas_model_cache_capacity", "Model cache capacity.", float64(cs.Capacity))
	e.Counter("drainnas_model_cache_hits_total", "Model lookups served from cache.", float64(cs.Hits))
	e.Counter("drainnas_model_cache_misses_total", "Model lookups that loaded from disk.", float64(cs.Misses))
	e.Counter("drainnas_model_cache_evictions_total", "Models evicted to respect capacity.", float64(cs.Evictions))
}

// The stable error codes and the envelope writer live in internal/httpx,
// shared with cmd/router; the aliases keep servd's handlers on their
// historical names.
const (
	codeBadInput      = api.CodeBadInput
	codeModelNotFound = api.CodeModelNotFound
	codeQueueFull     = api.CodeQueueFull
	codeShuttingDown  = api.CodeShuttingDown
	codeCanceled      = api.CodeCanceled
	codeInternal      = api.CodeInternal
)

func httpError(w http.ResponseWriter, status int, code, msg string) {
	httpx.Error(w, status, code, msg)
}

func writeJSON(w http.ResponseWriter, status int, v any) { httpx.WriteJSON(w, status, v) }
