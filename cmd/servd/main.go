// Command servd serves exported model containers over HTTP with dynamic
// micro-batching: the production-shaped front end for the Pareto-front
// models the NAS pipeline selects. Containers live in a model directory
// (one .dnnx file per model, written by cmd/deploy -out or any
// onnxsize.Export caller); requests are admitted into internal/serve's
// bounded queue, batched per (model, spatial size), and executed on a
// worker pool through the standalone inference runtime.
//
// API:
//
//	POST /v1/predict   {"model":"name","shape":[C,H,W],"data":[...]}
//	                   -> {"model","class","logits","batch_size",
//	                       "queued_ms","total_ms"}
//	GET  /v1/stats     serving counters + model cache + GEMM kernel counters
//	GET  /healthz      liveness + available models
//
// Backpressure maps to transport codes: a full queue answers 429, a closed
// server 503, an unknown model 404.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"drainnas/internal/infer"
	"drainnas/internal/metrics"
	"drainnas/internal/serve"
	"drainnas/internal/tensor"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		models   = flag.String("models", ".", "directory of exported .dnnx model containers")
		maxBatch = flag.Int("max-batch", 8, "flush a batch at this many requests")
		maxDelay = flag.Duration("max-delay", 2*time.Millisecond, "flush a non-empty batch after this delay")
		queueCap = flag.Int("queue", 256, "bounded admission queue capacity")
		workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		cacheCap = flag.Int("cache", 4, "resident model cache capacity")
	)
	flag.Parse()

	srv := serve.NewServer(newDirLoader(*models), serve.Options{
		MaxBatch: *maxBatch, MaxDelay: *maxDelay,
		QueueCap: *queueCap, Workers: *workers, CacheCap: *cacheCap,
	})
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("servd: %v", err)
	}
	log.Printf("servd: listening on %s (models from %s)", ln.Addr(), *models)
	log.Fatal(http.Serve(ln, newAPI(srv, *models)))
}

// newDirLoader maps model keys to container files under dir. A key is the
// file's base name with or without the .dnnx extension; path traversal is
// rejected.
func newDirLoader(dir string) func(key string) (*infer.Runtime, error) {
	return func(key string) (*infer.Runtime, error) {
		if key == "" {
			return nil, fmt.Errorf("empty model key: %w", fs.ErrNotExist)
		}
		if strings.ContainsAny(key, `/\`) || strings.Contains(key, "..") {
			return nil, fmt.Errorf("model key %q: %w", key, fs.ErrNotExist)
		}
		name := key
		if !strings.HasSuffix(name, ".dnnx") {
			name += ".dnnx"
		}
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return infer.Load(f)
	}
}

// listModels returns the model keys (base names without extension)
// available in dir.
func listModels(dir string) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var keys []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".dnnx") {
			keys = append(keys, strings.TrimSuffix(e.Name(), ".dnnx"))
		}
	}
	return keys
}

type predictRequest struct {
	Model string    `json:"model"`
	Shape []int     `json:"shape"` // (C, H, W)
	Data  []float32 `json:"data"`
}

type predictResponse struct {
	Model     string    `json:"model"`
	Class     int       `json:"class"`
	Logits    []float32 `json:"logits"`
	BatchSize int       `json:"batch_size"`
	QueuedMS  float64   `json:"queued_ms"`
	TotalMS   float64   `json:"total_ms"`
}

// maxBodyBytes bounds a predict request body; a 7x512x512 fp32 chip is
// ~7.3 MB of floats, JSON-encoded ≈5x that, so 64 MB is generous.
const maxBodyBytes = 64 << 20

// newAPI builds the HTTP handler over a serving core. Split from main so
// tests drive it in-process.
func newAPI(srv *serve.Server, modelDir string) *http.ServeMux {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/predict", func(w http.ResponseWriter, r *http.Request) {
		var req predictRequest
		body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
			return
		}
		input, err := requestTensor(req)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		resp, err := srv.Submit(r.Context(), req.Model, input)
		if err != nil {
			status := http.StatusInternalServerError
			switch {
			case errors.Is(err, serve.ErrQueueFull):
				status = http.StatusTooManyRequests
				w.Header().Set("Retry-After", "1")
			case errors.Is(err, serve.ErrClosed):
				status = http.StatusServiceUnavailable
			case errors.Is(err, fs.ErrNotExist):
				status = http.StatusNotFound
			case errors.Is(err, r.Context().Err()):
				// Client went away; the status is moot but 503 is honest.
				status = http.StatusServiceUnavailable
			}
			httpError(w, status, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, predictResponse{
			Model:     resp.Model,
			Class:     resp.Class,
			Logits:    resp.Logits,
			BatchSize: resp.BatchSize,
			QueuedMS:  float64(resp.Queued) / float64(time.Millisecond),
			TotalMS:   float64(resp.Total) / float64(time.Millisecond),
		})
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"serving": srv.Stats().Snapshot(),
			"cache":   srv.Cache().Stats(),
			"queue":   srv.QueueDepth(),
			"kernel":  metrics.Kernel.Snapshot(),
			"gemm":    tensor.GemmKernelName(),
		})
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "ok",
			"models": listModels(modelDir),
		})
	})

	return mux
}

func requestTensor(req predictRequest) (*tensor.Tensor, error) {
	if len(req.Shape) != 3 {
		return nil, fmt.Errorf("shape must be (C,H,W), got %v", req.Shape)
	}
	numel := 1
	for _, d := range req.Shape {
		if d <= 0 {
			return nil, fmt.Errorf("shape %v has non-positive dim", req.Shape)
		}
		numel *= d
		if numel > 1<<26 {
			return nil, fmt.Errorf("shape %v too large", req.Shape)
		}
	}
	if len(req.Data) != numel {
		return nil, fmt.Errorf("data has %d values, shape %v implies %d", len(req.Data), req.Shape, numel)
	}
	return tensor.FromSlice(req.Data, req.Shape...), nil
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("servd: encoding response: %v", err)
	}
}
