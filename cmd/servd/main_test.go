package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"

	"testing"
	"time"

	"drainnas/internal/metrics"
	"drainnas/internal/onnxsize"
	"drainnas/internal/resnet"
	"drainnas/internal/serve"
	"drainnas/internal/sim"
	"drainnas/internal/tensor"
)

// writeTinyModel trains nothing — it just builds and exports a minimal
// model container named tiny.dnnx into dir, returning its config.
func writeTinyModel(t *testing.T, dir string) resnet.Config {
	t.Helper()
	cfg := resnet.Config{
		Channels: 3, Batch: 4, KernelSize: 3, Stride: 2, Padding: 1,
		PoolChoice: 0, InitialOutputFeature: 4, NumClasses: 2,
	}
	m, err := resnet.New(cfg, tensor.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := onnxsize.Export(m, &buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "tiny.dnnx"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return cfg
}

func predictBody(t *testing.T, cfg resnet.Config, model string) []byte {
	t.Helper()
	x := tensor.RandNormal(tensor.NewRNG(5), 1, cfg.Channels, 16, 16)
	req := predictRequest{Model: model, Shape: []int{cfg.Channels, 16, 16}, Data: x.Data()}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestAPIPredictStatsHealth(t *testing.T) {
	dir := t.TempDir()
	cfg := writeTinyModel(t, dir)
	srv := serve.NewServer(newDirLoader(dir), serve.Options{MaxDelay: time.Millisecond})
	defer srv.Close()
	ts := httptest.NewServer(newAPI(srv, dir))
	defer ts.Close()

	// Well-formed prediction.
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
		bytes.NewReader(predictBody(t, cfg, "tiny")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d", resp.StatusCode)
	}
	var pr predictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Model != "tiny" || len(pr.Logits) != cfg.NumClasses || pr.Class < 0 || pr.Class >= cfg.NumClasses {
		t.Fatalf("malformed prediction %+v", pr)
	}
	if pr.BatchSize < 1 || pr.TotalMS <= 0 {
		t.Fatalf("missing serving metadata %+v", pr)
	}

	// Stats reflect the served request.
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats struct {
		Serving struct {
			Completed uint64 `json:"completed"`
			Latency   struct {
				Count uint64 `json:"count"`
			} `json:"latency"`
			PerModel map[string]struct {
				Completed uint64 `json:"completed"`
			} `json:"per_model"`
		} `json:"serving"`
		Cache struct {
			Len int `json:"len"`
		} `json:"cache"`
		Kernel struct {
			GemmCalls  uint64 `json:"gemm_calls"`
			NaiveCalls uint64 `json:"naive_calls"`
		} `json:"kernel"`
		Gemm string `json:"gemm"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Serving.Completed != 1 || stats.Cache.Len != 1 {
		t.Fatalf("stats %+v", stats)
	}
	// The latency histogram and per-model breakdown ride in the same payload.
	if stats.Serving.Latency.Count != 1 || stats.Serving.PerModel["tiny"].Completed != 1 {
		t.Fatalf("histogram/per-model stats missing: %+v", stats.Serving)
	}
	// The served forward pass must have gone through the GEMM dispatcher
	// (either path counts, depending on the model's layer sizes), and the
	// active kernel name must be reported.
	if stats.Kernel.GemmCalls+stats.Kernel.NaiveCalls == 0 {
		t.Fatalf("kernel counters did not move: %+v", stats.Kernel)
	}
	if stats.Gemm == "" {
		t.Fatal("missing gemm kernel name")
	}

	// Health lists the model.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var health struct {
		Status string   `json:"status"`
		Models []string `json:"models"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || len(health.Models) != 1 || health.Models[0] != "tiny" {
		t.Fatalf("health %+v", health)
	}
}

func TestAPIErrorMapping(t *testing.T) {
	dir := t.TempDir()
	cfg := writeTinyModel(t, dir)
	srv := serve.NewServer(newDirLoader(dir), serve.Options{MaxDelay: time.Millisecond})
	ts := httptest.NewServer(newAPI(srv, dir))
	defer ts.Close()

	post := func(body []byte) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := post([]byte("{not json")); got != http.StatusBadRequest {
		t.Fatalf("bad json -> %d", got)
	}
	bad := predictRequest{Model: "tiny", Shape: []int{3, 16}, Data: make([]float32, 48)}
	b, _ := json.Marshal(bad)
	if got := post(b); got != http.StatusBadRequest {
		t.Fatalf("bad shape -> %d", got)
	}
	mismatch := predictRequest{Model: "tiny", Shape: []int{3, 16, 16}, Data: make([]float32, 7)}
	b, _ = json.Marshal(mismatch)
	if got := post(b); got != http.StatusBadRequest {
		t.Fatalf("data/shape mismatch -> %d", got)
	}
	if got := post(predictBody(t, cfg, "ghost")); got != http.StatusNotFound {
		t.Fatalf("unknown model -> %d", got)
	}
	if got := post(predictBody(t, cfg, "../escape")); got != http.StatusNotFound {
		t.Fatalf("path traversal -> %d", got)
	}
	srv.Close()
	if got := post(predictBody(t, cfg, "tiny")); got != http.StatusServiceUnavailable {
		t.Fatalf("closed server -> %d", got)
	}
}

// TestErrorEnvelope pins the unified error body: every failure mode answers
// {"error":{"code","message","request_id"}} with a stable machine-readable
// code and the same request ID the X-Request-ID response header carries.
func TestErrorEnvelope(t *testing.T) {
	dir := t.TempDir()
	cfg := writeTinyModel(t, dir)
	srv := serve.NewServer(newDirLoader(dir), serve.Options{MaxDelay: time.Millisecond})
	ts := httptest.NewServer(withAccessLog(newAPI(srv, dir)))
	defer ts.Close()

	postEnvelope := func(body []byte) (int, http.Header, errorEnvelope) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env errorEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatalf("error body is not the envelope: %v", err)
		}
		if env.Error.Message == "" {
			t.Fatalf("envelope without message: %+v", env)
		}
		if env.Error.RequestID == "" || env.Error.RequestID != resp.Header.Get("X-Request-ID") {
			t.Fatalf("envelope request_id %q vs header %q", env.Error.RequestID, resp.Header.Get("X-Request-ID"))
		}
		return resp.StatusCode, resp.Header, env
	}

	if status, _, env := postEnvelope([]byte("{not json")); status != http.StatusBadRequest || env.Error.Code != "bad_input" {
		t.Fatalf("bad json -> %d %q", status, env.Error.Code)
	}
	if status, _, env := postEnvelope(predictBody(t, cfg, "ghost")); status != http.StatusNotFound || env.Error.Code != "model_not_found" {
		t.Fatalf("unknown model -> %d %q", status, env.Error.Code)
	}
	srv.Close()
	if status, _, env := postEnvelope(predictBody(t, cfg, "tiny")); status != http.StatusServiceUnavailable || env.Error.Code != "shutting_down" {
		t.Fatalf("closed server -> %d %q", status, env.Error.Code)
	}
}

// TestErrorEnvelopeQueueFull fills a capacity-1 queue and checks the
// overflow answer: 429, code queue_full, and a Retry-After hint.
func TestErrorEnvelopeQueueFull(t *testing.T) {
	dir := t.TempDir()
	cfg := writeTinyModel(t, dir)
	// MaxDelay/MaxBatch hold the first request in the queue for the test's
	// lifetime; srv.Close flushes it so the blocked poster below finishes.
	srv := serve.NewServer(newDirLoader(dir), serve.Options{
		MaxBatch: 64, MaxDelay: time.Minute, QueueCap: 1,
	})
	ts := httptest.NewServer(withAccessLog(newAPI(srv, dir)))
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
			bytes.NewReader(predictBody(t, cfg, "tiny")))
		if err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(15 * time.Second)
	for srv.QueueDepth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first request never queued")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
		bytes.NewReader(predictBody(t, cfg, "tiny")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow -> %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var env errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "queue_full" {
		t.Fatalf("overflow code %q, want queue_full", env.Error.Code)
	}
	srv.Close()
	<-done
}

// TestV1Aliases checks the canonical /v1/ paths and their unversioned
// aliases serve identical content.
func TestV1Aliases(t *testing.T) {
	dir := t.TempDir()
	writeTinyModel(t, dir)
	srv := serve.NewServer(newDirLoader(dir), serve.Options{MaxDelay: time.Millisecond})
	defer srv.Close()
	ts := httptest.NewServer(newAPI(srv, dir))
	defer ts.Close()

	for _, paths := range [][2]string{
		{"/v1/healthz", "/healthz"},
		{"/v1/metrics", "/metrics"},
	} {
		var bodies [2][]byte
		for i, p := range paths {
			resp, err := http.Get(ts.URL + p)
			if err != nil {
				t.Fatal(err)
			}
			b, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s -> %d", p, resp.StatusCode)
			}
			bodies[i] = b
		}
		if !bytes.Equal(bodies[0], bodies[1]) {
			t.Fatalf("%s and %s disagree:\n%s\n---\n%s", paths[0], paths[1], bodies[0], bodies[1])
		}
	}
}

// TestHealthzDegradedOnUnreadableModels is the regression test for /healthz
// reporting ok when the model directory cannot be read: that server answers
// 404/500 to every predict and must not pass a readiness probe.
func TestHealthzDegradedOnUnreadableModels(t *testing.T) {
	dir := t.TempDir()
	srv := serve.NewServer(newDirLoader(dir), serve.Options{MaxDelay: time.Millisecond})
	defer srv.Close()
	gone := filepath.Join(dir, "does-not-exist")
	ts := httptest.NewServer(newAPI(srv, gone))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with unreadable dir -> %d, want 503", resp.StatusCode)
	}
	var health struct {
		Status string `json:"status"`
		Error  string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" || health.Error == "" {
		t.Fatalf("degraded health payload %+v", health)
	}
}

// TestMetricsEndpoint drives the in-process handler and holds the /metrics
// page to the same validator make obs-smoke uses.
func TestMetricsEndpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := writeTinyModel(t, dir)
	srv := serve.NewServer(newDirLoader(dir), serve.Options{MaxDelay: time.Millisecond})
	defer srv.Close()
	ts := httptest.NewServer(newAPI(srv, dir))
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
			bytes.NewReader(predictBody(t, cfg, "tiny")))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	page, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.ValidateExposition(bytes.NewReader(page)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, page)
	}
	for _, want := range []string{
		`drainnas_serving_requests_total{outcome="completed"} 3`,
		"drainnas_serving_latency_seconds_bucket{",
		`drainnas_serving_latency_quantile_seconds{quantile="0.99"}`,
		`drainnas_serving_model_requests_total{model="tiny",outcome="completed"} 3`,
		"drainnas_model_cache_resident 1",
		"drainnas_model_cache_misses_total 1",
		"drainnas_kernel_gemm_calls_total",
	} {
		if !bytes.Contains(page, []byte(want)) {
			t.Fatalf("metrics page missing %q:\n%s", want, page)
		}
	}
}

func TestAccessLogRequestID(t *testing.T) {
	dir := t.TempDir()
	srv := serve.NewServer(newDirLoader(dir), serve.Options{MaxDelay: time.Millisecond})
	defer srv.Close()
	ts := httptest.NewServer(withAccessLog(newAPI(srv, dir)))
	defer ts.Close()

	// A fresh ID is minted when the client sends none.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-ID"); id == "" {
		t.Fatal("no X-Request-ID minted")
	}

	// An incoming ID is honored and echoed, so traces survive proxies.
	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "trace-me-42")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if id := resp2.Header.Get("X-Request-ID"); id != "trace-me-42" {
		t.Fatalf("incoming request ID not echoed: %q", id)
	}

	// IDs are unique across requests.
	seen := map[string]bool{}
	for i := 0; i < 5; i++ {
		r, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		id := r.Header.Get("X-Request-ID")
		if seen[id] {
			t.Fatalf("duplicate request ID %q", id)
		}
		seen[id] = true
	}
}

// --- binary-level tests -------------------------------------------------

// buildServd compiles the real binary once per test that needs it.
func buildServd(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "servd")
	build := exec.Command("go", "build", "-o", bin, "drainnas/cmd/servd")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// syncBuffer collects a child process's stderr for concurrent inspection.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var addrRe = regexp.MustCompile(`listening on (\S+)`)

// startServd launches the built binary on an ephemeral port and waits for
// its logged listen address. The caller owns shutdown.
func startServd(t *testing.T, bin string, args ...string) (*exec.Cmd, string, *syncBuffer) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	logs := &syncBuffer{}
	cmd.Stderr = logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if m := addrRe.FindStringSubmatch(logs.String()); m != nil {
			return cmd, "http://" + m[1], logs
		}
		time.Sleep(20 * time.Millisecond)
	}
	cmd.Process.Kill()
	cmd.Wait()
	t.Fatalf("servd never reported its listen address; log:\n%s", logs.String())
	return nil, "", nil
}

// TestServdBinarySmoke builds the real binary, points it at a tiny exported
// model, and asserts a well-formed prediction over actual HTTP.
func TestServdBinarySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test skipped in -short mode")
	}
	dir := t.TempDir()
	cfg := writeTinyModel(t, dir)
	bin := buildServd(t, dir)
	cmd, url, _ := startServd(t, bin, "-models", dir)
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	waitForHealthy(t, url)
	resp, err := http.Post(url+"/v1/predict", "application/json",
		bytes.NewReader(predictBody(t, cfg, "tiny")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d", resp.StatusCode)
	}
	var pr predictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Logits) != cfg.NumClasses || pr.Class < 0 || pr.Class >= cfg.NumClasses {
		t.Fatalf("malformed prediction %+v", pr)
	}
}

// TestServdGracefulShutdown is the acceptance test for the SIGTERM path:
// a request admitted before the signal must still get its 200, and the
// process must exit 0 after draining (the old log.Fatal(http.Serve(...))
// skipped all of that).
func TestServdGracefulShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("binary test skipped in -short mode")
	}
	dir := t.TempDir()
	cfg := writeTinyModel(t, dir)
	bin := buildServd(t, dir)
	// A large MaxBatch and long MaxDelay hold the request in the batching
	// queue, so SIGTERM provably lands while it is in flight.
	cmd, url, logs := startServd(t, bin, "-models", dir, "-max-batch", "64", "-max-delay", "1s", "-drain", "20s")
	killed := false
	defer func() {
		if !killed {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	waitForHealthy(t, url)
	type predictResult struct {
		status int
		err    error
	}
	got := make(chan predictResult, 1)
	go func() {
		resp, err := http.Post(url+"/v1/predict", "application/json",
			bytes.NewReader(predictBody(t, cfg, "tiny")))
		if err != nil {
			got <- predictResult{err: err}
			return
		}
		defer resp.Body.Close()
		var pr predictResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			got <- predictResult{status: resp.StatusCode, err: err}
			return
		}
		got <- predictResult{status: resp.StatusCode}
	}()

	// Wait until the request is provably admitted, then signal.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("request never showed up in /v1/stats")
		}
		resp, err := http.Get(url + "/v1/stats")
		if err == nil {
			var stats struct {
				Serving struct {
					Accepted uint64 `json:"accepted"`
				} `json:"serving"`
			}
			dec := json.NewDecoder(resp.Body)
			decErr := dec.Decode(&stats)
			resp.Body.Close()
			if decErr == nil && stats.Serving.Accepted >= 1 {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	select {
	case r := <-got:
		if r.err != nil || r.status != http.StatusOK {
			t.Fatalf("in-flight predict across SIGTERM: status=%d err=%v", r.status, r.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("in-flight predict never completed after SIGTERM")
	}

	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		killed = true
		if err != nil {
			t.Fatalf("servd exited non-zero after SIGTERM: %v\nlog:\n%s", err, logs.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("servd never exited after SIGTERM; log:\n%s", logs.String())
	}
	if out := logs.String(); !strings.Contains(out, "drained, exiting") {
		t.Fatalf("no drain log line; log:\n%s", out)
	}
}

// TestServdMetricsSmoke is the binary-level scrape make obs-smoke runs: an
// empty model directory, one scrape, and full exposition validation.
func TestServdMetricsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("binary test skipped in -short mode")
	}
	dir := t.TempDir()
	bin := buildServd(t, dir)
	cmd, url, _ := startServd(t, bin, "-models", dir)
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	waitForHealthy(t, url)
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	page, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.ValidateExposition(bytes.NewReader(page)); err != nil {
		t.Fatalf("live scrape invalid: %v\n%s", err, page)
	}
	for _, want := range []string{
		"drainnas_serving_requests_total",
		"drainnas_serving_latency_seconds_bucket",
		"drainnas_model_cache_capacity",
	} {
		if !bytes.Contains(page, []byte(want)) {
			t.Fatalf("scrape missing %q:\n%s", want, page)
		}
	}
}

// TestServdPprofFlag checks the profile endpoints are reachable only when
// asked for.
func TestServdPprofFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("binary test skipped in -short mode")
	}
	dir := t.TempDir()
	bin := buildServd(t, dir)

	withFlag, urlOn, _ := startServd(t, bin, "-models", dir, "-pprof")
	defer func() {
		withFlag.Process.Kill()
		withFlag.Wait()
	}()
	waitForHealthy(t, urlOn)
	resp, err := http.Get(urlOn + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof with -pprof -> %d", resp.StatusCode)
	}

	without, urlOff, _ := startServd(t, bin, "-models", dir)
	defer func() {
		without.Process.Kill()
		without.Wait()
	}()
	waitForHealthy(t, urlOff)
	resp2, err := http.Get(urlOff + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode == http.StatusOK {
		t.Fatal("pprof reachable without -pprof")
	}
}

func waitForHealthy(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("server never became healthy")
}

// TestAPIPredictPrecision exercises the int8 deployment path end to end:
// the precision field and the "@int8" key suffix select the quantized form
// of the same container, the response reports the precision it ran at, and
// /v1/stats names the active int8 kernel.
func TestAPIPredictPrecision(t *testing.T) {
	dir := t.TempDir()
	cfg := writeTinyModel(t, dir)
	srv := serve.NewServer(newDirLoader(dir), serve.Options{MaxDelay: time.Millisecond})
	defer srv.Close()
	ts := httptest.NewServer(newAPI(srv, dir))
	defer ts.Close()

	post := func(body []byte) (*http.Response, predictResponse) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var pr predictResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
				t.Fatal(err)
			}
		}
		return resp, pr
	}

	// Precision via the request field.
	x := tensor.RandNormal(tensor.NewRNG(5), 1, cfg.Channels, 16, 16)
	body, err := json.Marshal(predictRequest{
		Model: "tiny", Precision: "int8",
		Shape: []int{cfg.Channels, 16, 16}, Data: x.Data(),
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, pr := post(body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("int8 predict status %d", resp.StatusCode)
	}
	if pr.Model != "tiny" || pr.Precision != "int8" || len(pr.Logits) != cfg.NumClasses {
		t.Fatalf("malformed int8 prediction %+v", pr)
	}

	// The same selection via the key suffix.
	resp, pr = post(predictBody(t, cfg, "tiny@int8"))
	if resp.StatusCode != http.StatusOK || pr.Precision != "int8" || pr.Model != "tiny" {
		t.Fatalf("suffixed int8 predict: status %d, %+v", resp.StatusCode, pr)
	}

	// An fp32 request reports its precision too.
	resp, pr = post(predictBody(t, cfg, "tiny"))
	if resp.StatusCode != http.StatusOK || pr.Precision != "fp32" {
		t.Fatalf("fp32 predict: status %d, %+v", resp.StatusCode, pr)
	}

	// Conflicting selectors are a client error.
	body, err = json.Marshal(predictRequest{
		Model: "tiny@int8", Precision: "fp32",
		Shape: []int{cfg.Channels, 16, 16}, Data: x.Data(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp, _ := post(body); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("conflicting precision status %d, want 400", resp.StatusCode)
	}

	// Stats carry both kernel names and the cache holds both forms.
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats struct {
		Cache struct {
			Len int `json:"len"`
		} `json:"cache"`
		Gemm  string `json:"gemm"`
		QGemm string `json:"qgemm"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Cache.Len != 2 {
		t.Fatalf("cache holds %d entries, want the fp32 and int8 forms", stats.Cache.Len)
	}
	if stats.Gemm == "" || stats.QGemm == "" {
		t.Fatalf("kernel names missing from stats: gemm=%q qgemm=%q", stats.Gemm, stats.QGemm)
	}
}

// TestAPITraceRecording checks the -trace path: every predict that resolves
// to a serving key is recorded — including precision-suffixed keys and
// requests that later fail (offered load, not served load) — and the file
// replays into simulator arrivals.
func TestAPITraceRecording(t *testing.T) {
	dir := t.TempDir()
	cfg := writeTinyModel(t, dir)
	srv := serve.NewServer(newDirLoader(dir), serve.Options{MaxDelay: time.Millisecond})
	defer srv.Close()

	var buf bytes.Buffer
	rec := sim.NewTraceWriter(&buf)
	ts := httptest.NewServer(newAPIWithTrace(srv, dir, rec))
	defer ts.Close()

	post := func(body []byte) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}

	if st := post(predictBody(t, cfg, "tiny")); st != http.StatusOK {
		t.Fatalf("fp32 predict status %d", st)
	}
	if st := post(predictBody(t, cfg, "tiny@int8")); st != http.StatusOK {
		t.Fatalf("int8 predict status %d", st)
	}
	// A missing model still resolves to a key, so it is offered load and
	// must be recorded even though serving 404s.
	if st := post(predictBody(t, cfg, "ghost")); st != http.StatusNotFound {
		t.Fatalf("ghost predict status %d, want 404", st)
	}
	// A malformed body never reaches key resolution: not recorded.
	if st := post([]byte("{nope")); st != http.StatusBadRequest {
		t.Fatalf("malformed predict status %d, want 400", st)
	}

	if err := rec.Close(); err != nil {
		t.Fatalf("closing trace: %v", err)
	}
	events, err := sim.ReadTrace(&buf)
	if err != nil {
		t.Fatalf("reading recorded trace: %v", err)
	}
	if len(events) != 3 {
		t.Fatalf("recorded %d events, want 3", len(events))
	}
	wantModels := []string{"tiny", "tiny@int8", "ghost"}
	for i, ev := range events {
		if ev.Model != wantModels[i] {
			t.Fatalf("event %d model %q, want %q", i, ev.Model, wantModels[i])
		}
		if ev.C != cfg.Channels || ev.H != 16 || ev.W != 16 {
			t.Fatalf("event %d shape %dx%dx%d, want %dx16x16", i, ev.C, ev.H, ev.W, cfg.Channels)
		}
	}
	if arr, err := sim.TraceArrivals(events); err != nil || len(arr) != 3 {
		t.Fatalf("recorded trace does not replay: %v (%d arrivals)", err, len(arr))
	}
}
