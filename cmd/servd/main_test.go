package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"

	"testing"
	"time"

	"drainnas/internal/onnxsize"
	"drainnas/internal/resnet"
	"drainnas/internal/serve"
	"drainnas/internal/tensor"
)

// writeTinyModel trains nothing — it just builds and exports a minimal
// model container named tiny.dnnx into dir, returning its config.
func writeTinyModel(t *testing.T, dir string) resnet.Config {
	t.Helper()
	cfg := resnet.Config{
		Channels: 3, Batch: 4, KernelSize: 3, Stride: 2, Padding: 1,
		PoolChoice: 0, InitialOutputFeature: 4, NumClasses: 2,
	}
	m, err := resnet.New(cfg, tensor.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := onnxsize.Export(m, &buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "tiny.dnnx"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return cfg
}

func predictBody(t *testing.T, cfg resnet.Config, model string) []byte {
	t.Helper()
	x := tensor.RandNormal(tensor.NewRNG(5), 1, cfg.Channels, 16, 16)
	req := predictRequest{Model: model, Shape: []int{cfg.Channels, 16, 16}, Data: x.Data()}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestAPIPredictStatsHealth(t *testing.T) {
	dir := t.TempDir()
	cfg := writeTinyModel(t, dir)
	srv := serve.NewServer(newDirLoader(dir), serve.Options{MaxDelay: time.Millisecond})
	defer srv.Close()
	ts := httptest.NewServer(newAPI(srv, dir))
	defer ts.Close()

	// Well-formed prediction.
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
		bytes.NewReader(predictBody(t, cfg, "tiny")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d", resp.StatusCode)
	}
	var pr predictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Model != "tiny" || len(pr.Logits) != cfg.NumClasses || pr.Class < 0 || pr.Class >= cfg.NumClasses {
		t.Fatalf("malformed prediction %+v", pr)
	}
	if pr.BatchSize < 1 || pr.TotalMS <= 0 {
		t.Fatalf("missing serving metadata %+v", pr)
	}

	// Stats reflect the served request.
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats struct {
		Serving struct {
			Completed uint64 `json:"completed"`
		} `json:"serving"`
		Cache struct {
			Len int `json:"len"`
		} `json:"cache"`
		Kernel struct {
			GemmCalls  uint64 `json:"gemm_calls"`
			NaiveCalls uint64 `json:"naive_calls"`
		} `json:"kernel"`
		Gemm string `json:"gemm"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Serving.Completed != 1 || stats.Cache.Len != 1 {
		t.Fatalf("stats %+v", stats)
	}
	// The served forward pass must have gone through the GEMM dispatcher
	// (either path counts, depending on the model's layer sizes), and the
	// active kernel name must be reported.
	if stats.Kernel.GemmCalls+stats.Kernel.NaiveCalls == 0 {
		t.Fatalf("kernel counters did not move: %+v", stats.Kernel)
	}
	if stats.Gemm == "" {
		t.Fatal("missing gemm kernel name")
	}

	// Health lists the model.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var health struct {
		Status string   `json:"status"`
		Models []string `json:"models"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || len(health.Models) != 1 || health.Models[0] != "tiny" {
		t.Fatalf("health %+v", health)
	}
}

func TestAPIErrorMapping(t *testing.T) {
	dir := t.TempDir()
	cfg := writeTinyModel(t, dir)
	srv := serve.NewServer(newDirLoader(dir), serve.Options{MaxDelay: time.Millisecond})
	ts := httptest.NewServer(newAPI(srv, dir))
	defer ts.Close()

	post := func(body []byte) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := post([]byte("{not json")); got != http.StatusBadRequest {
		t.Fatalf("bad json -> %d", got)
	}
	bad := predictRequest{Model: "tiny", Shape: []int{3, 16}, Data: make([]float32, 48)}
	b, _ := json.Marshal(bad)
	if got := post(b); got != http.StatusBadRequest {
		t.Fatalf("bad shape -> %d", got)
	}
	mismatch := predictRequest{Model: "tiny", Shape: []int{3, 16, 16}, Data: make([]float32, 7)}
	b, _ = json.Marshal(mismatch)
	if got := post(b); got != http.StatusBadRequest {
		t.Fatalf("data/shape mismatch -> %d", got)
	}
	if got := post(predictBody(t, cfg, "ghost")); got != http.StatusNotFound {
		t.Fatalf("unknown model -> %d", got)
	}
	if got := post(predictBody(t, cfg, "../escape")); got != http.StatusNotFound {
		t.Fatalf("path traversal -> %d", got)
	}
	srv.Close()
	if got := post(predictBody(t, cfg, "tiny")); got != http.StatusServiceUnavailable {
		t.Fatalf("closed server -> %d", got)
	}
}

// TestServdBinarySmoke is the end-to-end smoke test the issue asks for:
// build the real binary, point it at a tiny exported model, and assert a
// well-formed prediction over actual HTTP.
func TestServdBinarySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test skipped in -short mode")
	}
	dir := t.TempDir()
	cfg := writeTinyModel(t, dir)
	bin := filepath.Join(dir, "servd")
	build := exec.Command("go", "build", "-o", bin, "drainnas/cmd/servd")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-models", dir)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// The binary logs its bound address; parse it to find the port.
	addrRe := regexp.MustCompile(`listening on (\S+)`)
	var addr string
	scanner := bufio.NewScanner(stderr)
	deadline := time.After(30 * time.Second)
	found := make(chan string, 1)
	go func() {
		for scanner.Scan() {
			if m := addrRe.FindStringSubmatch(scanner.Text()); m != nil {
				found <- m[1]
				return
			}
		}
	}()
	select {
	case addr = <-found:
	case <-deadline:
		t.Fatal("servd never reported its listen address")
	}

	url := "http://" + addr
	waitForHealthy(t, url)
	resp, err := http.Post(url+"/v1/predict", "application/json",
		bytes.NewReader(predictBody(t, cfg, "tiny")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d", resp.StatusCode)
	}
	var pr predictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Logits) != cfg.NumClasses || pr.Class < 0 || pr.Class >= cfg.NumClasses {
		t.Fatalf("malformed prediction %+v", pr)
	}
}

func waitForHealthy(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("server never became healthy")
}
