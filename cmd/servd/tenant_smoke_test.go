package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"drainnas/internal/api"
	"drainnas/internal/tenant"
)

// smokeKeys is the key file the tenant smoke boots with: two equal-weight
// unlimited tenants for the fairness check, plus one with a 1-request
// bucket to provoke quota_exceeded.
const smokeKeys = `{"tenants": [
	{"name": "alpha", "key": "alpha-secret-key"},
	{"name": "bravo", "key": "bravo-secret-key"},
	{"name": "capped", "key": "capped-secret-key", "rate_rps": 0.001, "burst": 1}
]}`

// buildServdRace builds the binary with the race detector, so the smoke
// exercises the real multi-tenant admission path under -race.
func buildServdRace(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "servd-race")
	build := exec.Command("go", "build", "-race", "-o", bin, "drainnas/cmd/servd")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build -race: %v\n%s", err, out)
	}
	return bin
}

func authedPredict(t *testing.T, url, key string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/predict", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func envelopeCode(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var env errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	return env.Error.Code
}

// TestServdTenantSmoke boots the real binary with a key file and walks the
// whole edge tier over actual HTTP: 401 for bad keys, 429 quota_exceeded
// for a dry bucket, fair-share goodput for a compliant tenant under a
// concurrent flood, and a live dashboard handshake over both WebSocket and
// SSE.
func TestServdTenantSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test skipped in -short mode")
	}
	dir := t.TempDir()
	cfg := writeTinyModel(t, dir)
	keyPath := filepath.Join(dir, "keys.json")
	if err := os.WriteFile(keyPath, []byte(smokeKeys), 0o600); err != nil {
		t.Fatal(err)
	}
	bin := buildServdRace(t, dir)
	cmd, url, logs := startServd(t, bin,
		"-models", dir, "-keys", keyPath, "-tenant-inflight", "2", "-dashboard-interval", "50ms")
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	waitForHealthy(t, url)
	body := predictBody(t, cfg, "tiny")

	// --- 401: no key, then a wrong key. ---
	for _, key := range []string{"", "not-a-real-key"} {
		resp := authedPredict(t, url, key, body)
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("key %q: status %d, want 401", key, resp.StatusCode)
		}
		if code := envelopeCode(t, resp); code != api.CodeUnauthorized {
			t.Fatalf("key %q: code %q, want unauthorized", key, code)
		}
	}

	// --- 429: the capped tenant's single-token bucket runs dry. ---
	resp := authedPredict(t, url, "capped-secret-key", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("capped tenant's first request: status %d, want 200", resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	resp = authedPredict(t, url, "capped-secret-key", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	if code := envelopeCode(t, resp); code != api.CodeQuotaExceeded {
		t.Fatalf("over-quota code %q, want quota_exceeded", code)
	}

	// --- Fair share: bravo floods concurrently; every one of alpha's
	// sequential requests must still complete successfully. ---
	stopFlood := make(chan struct{})
	var flood sync.WaitGroup
	for i := 0; i < 6; i++ {
		flood.Add(1)
		go func() {
			defer flood.Done()
			for {
				select {
				case <-stopFlood:
					return
				default:
				}
				resp, err := http.DefaultClient.Do(mustRequest(url+"/v1/predict", "bravo-secret-key", body))
				if err != nil {
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	const alphaReqs = 10
	alphaOK := 0
	for i := 0; i < alphaReqs; i++ {
		resp := authedPredict(t, url, "alpha-secret-key", body)
		if resp.StatusCode == http.StatusOK {
			alphaOK++
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	close(stopFlood)
	flood.Wait()
	if alphaOK != alphaReqs {
		t.Fatalf("compliant tenant completed %d/%d requests under flood; log:\n%s",
			alphaOK, alphaReqs, logs.String())
	}

	// --- Dashboard: WebSocket handshake (gated by key). ---
	conn, err := net.Dial("tcp", strings.TrimPrefix(url, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	handshake := "GET /v1/dashboard/ws?key=alpha-secret-key HTTP/1.1\r\n" +
		"Host: servd\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Key: dGhlIHNhbXBsZSBub25jZQ==\r\n" +
		"Sec-WebSocket-Version: 13\r\n\r\n"
	if _, err := conn.Write([]byte(handshake)); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	status, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(status, "101") {
		t.Fatalf("dashboard handshake status %q, want 101", strings.TrimSpace(status))
	}
	sawAccept := false
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if line == "\r\n" {
			break
		}
		if strings.HasPrefix(line, "Sec-WebSocket-Accept: s3pPLMBiTxaQ9kYGzzhZRbK+xOo=") {
			sawAccept = true
		}
	}
	if !sawAccept {
		t.Fatal("handshake missing the RFC 6455 accept value")
	}
	// First frame: a JSON snapshot that has seen our traffic.
	var hdr [2]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		t.Fatal(err)
	}
	length := int(hdr[1] & 0x7f)
	if length == 126 {
		var ext [2]byte
		if _, err := io.ReadFull(br, ext[:]); err != nil {
			t.Fatal(err)
		}
		length = int(ext[0])<<8 | int(ext[1])
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(br, payload); err != nil {
		t.Fatal(err)
	}
	var snap tenant.DashboardSnapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		t.Fatalf("dashboard frame is not a snapshot: %v\n%s", err, payload)
	}
	if snap.Service != "servd" || snap.Tenants.PerTenant["alpha"].Completed == 0 {
		t.Fatalf("dashboard snapshot missing tenant traffic: %+v", snap.Tenants)
	}

	// --- Dashboard gate: no key means 401, and the SSE fallback streams. ---
	respNoKey, err := http.Get(url + "/v1/dashboard/events")
	if err != nil {
		t.Fatal(err)
	}
	if respNoKey.StatusCode != http.StatusUnauthorized {
		t.Fatalf("ungated dashboard: status %d, want 401", respNoKey.StatusCode)
	}
	respNoKey.Body.Close()

	sseReq := mustRequest(url+"/v1/dashboard/events", "alpha-secret-key", nil)
	sseReq.Method = http.MethodGet
	sseResp, err := http.DefaultClient.Do(sseReq)
	if err != nil {
		t.Fatal(err)
	}
	defer sseResp.Body.Close()
	if sseResp.StatusCode != http.StatusOK {
		t.Fatalf("sse status %d", sseResp.StatusCode)
	}
	sbr := bufio.NewReader(sseResp.Body)
	for {
		line, err := sbr.ReadString('\n')
		if err != nil {
			t.Fatalf("sse stream ended before a snapshot arrived: %v", err)
		}
		if strings.HasPrefix(line, "data: ") {
			if err := json.Unmarshal([]byte(strings.TrimPrefix(strings.TrimSpace(line), "data: ")), &snap); err != nil {
				t.Fatalf("sse event is not a snapshot: %v", err)
			}
			break
		}
	}

	// The audit trail recorded both denials and admits.
	out := logs.String()
	for _, want := range []string{"decision=deny_auth", "decision=deny_quota", "tenant=alpha decision=admit"} {
		if !strings.Contains(out, want) {
			t.Fatalf("audit log missing %q:\n%s", want, out)
		}
	}
}

func mustRequest(url, key string, body []byte) *http.Request {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(http.MethodPost, url, rd)
	if err != nil {
		panic(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Authorization", "Bearer "+key)
	return req
}
