package main

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"drainnas/internal/api"
	"drainnas/internal/onnxsize"
	"drainnas/internal/resnet"
	"drainnas/internal/scan"
	"drainnas/internal/tensor"
)

// writeScanModel exports a 5-channel container (the scan corpus depth)
// named wet.dnnx into dir, so synthesized watershed chips feed it without
// a shape mismatch.
func writeScanModel(t *testing.T, dir string) {
	t.Helper()
	cfg := resnet.Config{
		Channels: 5, Batch: 4, KernelSize: 3, Stride: 2, Padding: 1,
		PoolChoice: 0, InitialOutputFeature: 4, NumClasses: 2,
	}
	m, err := resnet.New(cfg, tensor.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := onnxsize.Export(m, &buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "wet.dnnx"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// buildRaceBinary builds pkg with the race detector into dir.
func buildRaceBinary(t *testing.T, dir, name, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	build := exec.Command("go", "build", "-race", "-o", bin, pkg)
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build -race %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// streamScan starts req and consumes its full event stream, returning the
// final job document, the heat map assembled from the streamed tiles, and
// the tile IDs in arrival order.
func streamScan(t *testing.T, c *api.Client, req api.ScanRequest) (api.ScanJob, *scan.HeatMap, []int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	job, err := c.StartScan(ctx, req)
	if err != nil {
		t.Fatalf("StartScan: %v", err)
	}
	side := 1 + (req.TileSize-req.ChipSize)/req.Stride
	hm := scan.NewHeatMap(side, side, req.Threshold)
	stream, err := c.ScanEvents(ctx, job.ID, 0)
	if err != nil {
		t.Fatalf("ScanEvents: %v", err)
	}
	defer stream.Close()
	final := job
	var order []int
	wantSeq := 0
	for {
		ev, err := stream.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
		if ev.Seq != wantSeq {
			t.Fatalf("event seq %d, want %d (stream must be gapless)", ev.Seq, wantSeq)
		}
		wantSeq++
		switch ev.Type {
		case api.ScanEventTile:
			hm.SetTile(*ev.Tile)
			order = append(order, ev.Tile.ID)
		case api.ScanEventProgress, api.ScanEventDone:
			final = *ev.Job
		}
	}
	return final, hm, order
}

// TestRouterScanSmoke is the CI gate (make scan-smoke): a race-built servd
// replica behind a race-built router, a small synthetic watershed scanned
// end to end through the job API. It requires ordered completion (tile
// events arrive in exact walk order, gapless), nonzero detected crossings,
// a byte-identical heat map across two runs, a clean drain after a
// mid-scan cancel, and a clean SIGTERM exit for both binaries.
func TestRouterScanSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test skipped in -short mode")
	}
	dir := t.TempDir()
	writeScanModel(t, dir)
	servdBin := buildRaceBinary(t, dir, "servd-race", "drainnas/cmd/servd")
	routerBin := buildRaceBinary(t, dir, "router-race", "drainnas/cmd/router")

	// startRouter only execs the binary and parses the logged listen
	// address, so it boots servd just as well.
	servdCmd, servdURL, servdLogs := startRouter(t, servdBin, "-models", dir)
	defer func() {
		servdCmd.Process.Kill()
		servdCmd.Wait()
	}()
	waitForHealthy(t, servdURL)

	routerCmd, routerURL, routerLogs := startRouter(t, routerBin,
		"-replicas", "0", "-backends", servdURL, "-models", dir)
	defer func() {
		routerCmd.Process.Kill()
		routerCmd.Wait()
	}()
	waitForHealthy(t, routerURL)

	c := api.NewClient(routerURL, api.ClientOptions{Retries: 2})
	req := api.ScanRequest{
		Model: "wet", SLO: "batch", Region: "Nebraska",
		TileSize: 64, ChipSize: 16, Seed: 7,
		Order: api.ScanOrderHilbert, Threshold: 0.05,
	}.WithDefaults()

	// --- Run 1: ordered completion and nonzero crossings. ---
	job1, hm1, order1 := streamScan(t, c, req)
	if job1.State != api.ScanStateDone {
		t.Fatalf("scan state %q, want done (error %q)", job1.State, job1.Error)
	}
	if job1.DoneTiles != job1.TotalTiles || job1.FailedTiles != 0 {
		t.Fatalf("completion %d/%d done, %d failed", job1.DoneTiles, job1.TotalTiles, job1.FailedTiles)
	}
	cells, err := scan.Walk(req.Order, job1.GridW, job1.GridH)
	if err != nil {
		t.Fatal(err)
	}
	if len(order1) != len(cells) {
		t.Fatalf("streamed %d tile events, want %d", len(order1), len(cells))
	}
	for i, cell := range cells {
		if want := cell.Y*job1.GridW + cell.X; order1[i] != want {
			t.Fatalf("tile event %d is tile %d, walk order says %d — results must stream in walk order", i, order1[i], want)
		}
	}
	if job1.Crossings == 0 {
		t.Fatalf("no crossings detected at threshold %g:\n%s", req.Threshold, hm1.ASCII())
	}

	// --- Run 2: the heat map must be byte-identical. ---
	job2, hm2, _ := streamScan(t, c, req)
	if job2.State != api.ScanStateDone {
		t.Fatalf("second scan state %q, want done", job2.State)
	}
	if hm1.ASCII() != hm2.ASCII() {
		t.Fatalf("ASCII heat maps differ across identical runs:\n--- run 1\n%s--- run 2\n%s", hm1.ASCII(), hm2.ASCII())
	}
	if !bytes.Equal(hm1.PGM(), hm2.PGM()) {
		t.Fatal("PGM heat maps differ across identical runs")
	}

	// --- Cancel mid-scan: a contiguous walk-order prefix must drain,
	// ending with the canceled terminal event. ---
	big := req
	big.TileSize = 256 // 16x16 = 256 tiles; plenty of runway to cancel into
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	job, err := c.StartScan(ctx, big)
	if err != nil {
		t.Fatalf("StartScan (big): %v", err)
	}
	stream, err := c.ScanEvents(ctx, job.ID, 0)
	if err != nil {
		t.Fatalf("ScanEvents (big): %v", err)
	}
	defer stream.Close()
	// The immediate StartScan snapshot may predate the run goroutine
	// setting grid dims; derive them from the request.
	side := 1 + (big.TileSize-big.ChipSize)/big.Stride
	bigCells, err := scan.Walk(big.Order, side, side)
	if err != nil {
		t.Fatal(err)
	}
	var (
		tiles    int
		terminal *api.ScanJob
	)
	for {
		ev, err := stream.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("stream (big): %v", err)
		}
		switch ev.Type {
		case api.ScanEventTile:
			if want := bigCells[tiles].Y*side + bigCells[tiles].X; ev.Tile.ID != want {
				t.Fatalf("canceled scan tile %d is %d, walk order says %d — drain must stay a contiguous prefix",
					tiles, ev.Tile.ID, want)
			}
			tiles++
			if tiles == 5 {
				if _, err := c.CancelScan(ctx, job.ID); err != nil {
					t.Fatalf("CancelScan: %v", err)
				}
			}
		case api.ScanEventDone:
			terminal = ev.Job
		}
	}
	if terminal == nil {
		t.Fatal("canceled scan's stream ended without a terminal event")
	}
	if terminal.State != api.ScanStateCanceled {
		t.Fatalf("terminal state %q, want canceled", terminal.State)
	}
	if tiles >= terminal.TotalTiles {
		t.Fatalf("cancel landed after all %d tiles completed; not a mid-scan cancel", terminal.TotalTiles)
	}

	// --- Both binaries drain cleanly on SIGTERM. ---
	for _, p := range []struct {
		name string
		cmd  *exec.Cmd
		logs *syncBuffer
	}{{"router", routerCmd, routerLogs}, {"servd", servdCmd, servdLogs}} {
		if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatalf("SIGTERM %s: %v", p.name, err)
		}
		done := make(chan error, 1)
		go func() { done <- p.cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("%s exited uncleanly after SIGTERM: %v\nlog:\n%s", p.name, err, p.logs.String())
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("%s did not exit within 30s of SIGTERM; log:\n%s", p.name, p.logs.String())
		}
	}
}
