package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"drainnas/internal/api"
	"drainnas/internal/httpx"
	"drainnas/internal/route"
	"drainnas/internal/tenant"
)

// TestRouterTenantTier drives the router's /v1/predict through the
// multi-tenant edge tier in-process: auth, quota, per-tenant stats section,
// tenant Prometheus families, and the gated dashboard.
func TestRouterTenantTier(t *testing.T) {
	dir := t.TempDir()
	writeModels(t, dir)
	router, serving, _ := testFleet(t, dir, 2, route.Options{})

	keyPath := filepath.Join(dir, "keys.json")
	keyJSON := `{"tenants": [
		{"name": "acme", "key": "acme-secret-key", "weight": 2},
		{"name": "capped", "key": "capped-secret-key", "rate_rps": 0.001, "burst": 1}
	]}`
	if err := os.WriteFile(keyPath, []byte(keyJSON), 0o600); err != nil {
		t.Fatal(err)
	}
	edge, err := tenant.LoadTier(keyPath, time.Minute, 2, "router-test")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(httpx.AccessLog("router-test",
		newAPIWithTenant(router, serving, dir, edge, 20*time.Millisecond)))
	defer ts.Close()

	do := func(key string, body []byte) *http.Response {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/predict", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if key != "" {
			req.Header.Set("X-API-Key", key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	body := predictBody(t, "tiny", "interactive")

	// Unauthenticated and misauthenticated requests never reach the fleet.
	resp := do("", body)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("status %d, want 401", resp.StatusCode)
	}
	var env api.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if env.Error.Code != api.CodeUnauthorized {
		t.Fatalf("code %q, want unauthorized", env.Error.Code)
	}

	// An authenticated predict flows through to a replica.
	resp = do("acme-secret-key", body)
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("authed predict status %d: %s", resp.StatusCode, b)
	}
	var pr api.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if pr.Model != "tiny" || pr.Replica == "" {
		t.Fatalf("predict response %+v", pr)
	}

	// The capped tenant hits quota_exceeded on its second request.
	resp = do("capped-secret-key", body)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("capped first request status %d", resp.StatusCode)
	}
	resp = do("capped-secret-key", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status %d, want 429", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if env.Error.Code != api.CodeQuotaExceeded {
		t.Fatalf("code %q, want quota_exceeded", env.Error.Code)
	}

	// /v1/stats grew the tenant and fair sections.
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, section := range []string{"tenant", "fair", "router", "serving"} {
		if _, ok := stats[section]; !ok {
			t.Fatalf("/v1/stats missing %q section", section)
		}
	}
	var tsnap struct {
		PerTenant map[string]struct {
			Admitted      uint64 `json:"admitted"`
			QuotaExceeded uint64 `json:"quota_exceeded"`
		} `json:"per_tenant"`
	}
	if err := json.Unmarshal(stats["tenant"], &tsnap); err != nil {
		t.Fatal(err)
	}
	if tsnap.PerTenant["acme"].Admitted != 1 || tsnap.PerTenant["capped"].QuotaExceeded != 1 {
		t.Fatalf("tenant stats %+v", tsnap.PerTenant)
	}

	// /metrics exposes the tenant families alongside the router's.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"drainnas_tenant_unauthorized_total 1",
		`drainnas_tenant_requests_total{tenant="capped",outcome="quota_exceeded"} 1`,
	} {
		if !strings.Contains(string(page), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}

	// The dashboard is key-gated and streams.
	resp, err = http.Get(ts.URL + "/v1/dashboard/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("ungated dashboard status %d, want 401", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/dashboard/events?key=acme-secret-key")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dashboard sse status %d", resp.StatusCode)
	}
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("dashboard stream yielded nothing: %v", err)
	}
}
