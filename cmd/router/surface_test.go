package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"drainnas/internal/api"
	"drainnas/internal/metrics"
	"drainnas/internal/route"
	"drainnas/internal/tenant"
)

// TestRouterAPISurfaceRoutes walks every route internal/api registers for
// the router tier against the real mux: each must be mounted (no
// ServeMux-level plain-text 404/405), deprecated aliases must carry the
// Deprecation header and successor Link, and current routes must not.
func TestRouterAPISurfaceRoutes(t *testing.T) {
	dir := t.TempDir()
	writeModels(t, dir)
	router, serving, _ := testFleet(t, dir, 1, route.Options{})
	ts := httptest.NewServer(newAPI(router, serving, dir))
	defer ts.Close()

	for _, rt := range api.RoutesFor("router") {
		path := strings.ReplaceAll(rt.Path, "{id}", "scan-surface-0")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		var body *strings.Reader
		if rt.Method == http.MethodPost {
			body = strings.NewReader("{}")
		} else {
			body = strings.NewReader("")
		}
		req, err := http.NewRequestWithContext(ctx, rt.Method, ts.URL+path, body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			cancel()
			t.Fatalf("%s %s: %v", rt.Method, rt.Path, err)
		}
		ct := resp.Header.Get("Content-Type")
		if resp.StatusCode == http.StatusNotFound && strings.HasPrefix(ct, "text/plain") {
			t.Errorf("%s %s: not mounted (mux 404)", rt.Method, rt.Path)
		}
		if resp.StatusCode == http.StatusMethodNotAllowed {
			t.Errorf("%s %s: method not allowed — registry and mux disagree", rt.Method, rt.Path)
		}
		dep := resp.Header.Get("Deprecation")
		if rt.Deprecated {
			if dep != "true" {
				t.Errorf("%s %s: deprecated alias missing Deprecation header (got %q)", rt.Method, rt.Path, dep)
			}
			if link := resp.Header.Get("Link"); !strings.Contains(link, rt.Successor) {
				t.Errorf("%s %s: Link %q does not name successor %s", rt.Method, rt.Path, link, rt.Successor)
			}
		} else if dep != "" {
			t.Errorf("%s %s: unexpected Deprecation header %q on a current route", rt.Method, rt.Path, dep)
		}
		cancel()
		resp.Body.Close()
	}
}

// checkRouterEnvelope pins the JSON error envelope against internal/api:
// exactly {"error": {code, message, request_id?}}, a code from
// api.KnownCodes, and the HTTP status that registry pins for it.
func checkRouterEnvelope(t *testing.T, name string, resp *http.Response, wantCode string) {
	t.Helper()
	defer resp.Body.Close()
	var top map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&top); err != nil {
		t.Fatalf("%s: decoding envelope: %v", name, err)
	}
	if len(top) != 1 || top["error"] == nil {
		t.Fatalf("%s: top-level envelope has %d keys, want exactly [error]", name, len(top))
	}
	var errBody map[string]json.RawMessage
	if err := json.Unmarshal(top["error"], &errBody); err != nil {
		t.Fatalf("%s: decoding error body: %v", name, err)
	}
	for k := range errBody {
		switch k {
		case "code", "message", "request_id":
		default:
			t.Errorf("%s: unexpected error field %q", name, k)
		}
	}
	var code, msg string
	if err := json.Unmarshal(errBody["code"], &code); err != nil {
		t.Fatalf("%s: error.code: %v", name, err)
	}
	if err := json.Unmarshal(errBody["message"], &msg); err != nil {
		t.Fatalf("%s: error.message: %v", name, err)
	}
	if msg == "" {
		t.Errorf("%s: empty error.message", name)
	}
	wantStatus, known := api.KnownCodes[code]
	if !known {
		t.Fatalf("%s: code %q not in api.KnownCodes", name, code)
	}
	if resp.StatusCode != wantStatus {
		t.Errorf("%s: status %d, but api.KnownCodes pins %q to %d", name, resp.StatusCode, code, wantStatus)
	}
	if code != wantCode {
		t.Errorf("%s: code %q, want %q", name, code, wantCode)
	}
}

// TestRouterAPISurfaceErrorEnvelopes drives every cheaply reachable error
// code through the open router mux, including the router-only paths: a bad
// SLO class (rejected by the scan backend factory and the predict
// dispatcher alike) and an empty fleet's no_replicas.
func TestRouterAPISurfaceErrorEnvelopes(t *testing.T) {
	dir := t.TempDir()
	writeModels(t, dir)
	router, serving, _ := testFleet(t, dir, 1, route.Options{})
	ts := httptest.NewServer(newAPI(router, serving, dir))
	defer ts.Close()

	scanBody := `{"model":"tiny","slo":"warp-speed","region":"Nebraska","tile_size":64,"chip_size":16}`
	cases := []struct {
		name, method, path, body, code string
	}{
		{"predict garbage body", "POST", "/v1/predict", "{", api.CodeBadInput},
		{"predict bad slo", "POST", "/v1/predict", string(predictBody(t, "tiny", "warp-speed")), api.CodeBadInput},
		{"predict unknown model", "POST", "/v1/predict", string(predictBody(t, "ghost", "batch")), api.CodeModelNotFound},
		{"scan start bad slo", "POST", "/v1/scan", scanBody, api.CodeBadInput},
		{"scan status unknown id", "GET", "/v1/scan/scan-404", "", api.CodeScanNotFound},
		{"scan cancel unknown id", "DELETE", "/v1/scan/scan-404", "", api.CodeScanNotFound},
		{"scan events unknown id", "GET", "/v1/scan/scan-404/events", "", api.CodeScanNotFound},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		checkRouterEnvelope(t, tc.name, resp, tc.code)
	}

	// An empty fleet rejects a well-formed predict with no_replicas; that
	// is a router-tier-only code.
	empty := route.New(route.Options{})
	defer empty.Close()
	ts2 := httptest.NewServer(newAPI(empty, &metrics.ServingStats{}, dir))
	defer ts2.Close()
	resp, err := http.Post(ts2.URL+"/v1/predict", "application/json",
		strings.NewReader(string(predictBody(t, "tiny", "batch"))))
	if err != nil {
		t.Fatal(err)
	}
	checkRouterEnvelope(t, "predict with empty fleet", resp, api.CodeNoReplicas)
}

// TestRouterAPISurfaceUnauthorized pins the 401 envelope once the edge
// tier is mounted in front of the router mux.
func TestRouterAPISurfaceUnauthorized(t *testing.T) {
	dir := t.TempDir()
	writeModels(t, dir)
	router, serving, _ := testFleet(t, dir, 1, route.Options{})

	keyPath := filepath.Join(dir, "keys.json")
	keyJSON := `{"tenants": [{"name": "acme", "key": "acme-secret-key"}]}`
	if err := os.WriteFile(keyPath, []byte(keyJSON), 0o600); err != nil {
		t.Fatal(err)
	}
	edge, err := tenant.LoadTier(keyPath, time.Minute, 2, "router-surface")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newAPIWithTenant(router, serving, dir, edge, time.Second))
	defer ts.Close()

	for _, tc := range []struct{ name, method, path, body string }{
		{"predict without key", "POST", "/v1/predict", "{}"},
		{"scan start without key", "POST", "/v1/scan", "{}"},
		{"scan status without key", "GET", "/v1/scan/scan-404", ""},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		checkRouterEnvelope(t, tc.name, resp, api.CodeUnauthorized)
	}
}
