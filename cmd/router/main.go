// Command router is the cluster-scale front tier over the batching
// inference servers: it spreads /v1/predict traffic across a replica fleet
// through a pluggable placement policy, with token-bucket admission, SLO-
// class-aware dispatch ordering, and hedged retries that cancel the losing
// attempt. Replicas are either in-process serving cores sharing this
// process (-replicas N over one model directory) or remote servd instances
// reached over HTTP (-backends url,url,...), interchangeable behind the
// same routing tier.
//
// The API mirrors servd's /v1/ surface so clients and probes move between
// tiers unchanged:
//
//	POST /v1/predict   {"model","shape","data","slo"?,"precision"?} ->
//	                   {"model","precision","class","logits","batch_size",
//	                    "queued_ms","total_ms","replica","hedged"?}
//	POST /v1/scan      start a whole-watershed scan job whose tiles fan
//	                   across the fleet under the request's SLO class;
//	                   GET /v1/scan/{id} polls, GET /v1/scan/{id}/events
//	                   streams NDJSON (?from= resumes), DELETE cancels
//	GET  /v1/stats     routing counters (per policy/class/replica) plus the
//	                   fleet's aggregated serving counters
//	GET  /v1/metrics   the same in Prometheus text exposition format
//	GET  /v1/healthz   liveness + replica fleet size and policy
//	GET  /v1/dashboard live dashboard (WebSocket at /v1/dashboard/ws, SSE
//	                   fallback at /v1/dashboard/events)
//
// The unversioned /healthz and /metrics aliases are deprecated: responses
// carry a Deprecation header and a Link to the successor, and the aliases
// are scheduled for removal (see README).
//
// Errors reuse the shared envelope; the router adds two codes on top of
// servd's set: throttled (429, token-bucket admission) and no_replicas
// (503, empty fleet). With -keys the multi-tenant edge tier (shared with
// servd) fronts /v1/predict, adding unauthorized (401) and quota_exceeded
// (429) plus weighted-fair admission across tenants.
//
// With -sched sjf the dispatch order needs per-model latency estimates
// before any traffic has flowed; the router seeds them by lowering each
// deployed model's compiled plan into latmeter's kernel graph and pricing
// it on the -predict-device cost model, then refines with a measured EWMA.
//
// On SIGINT/SIGTERM the router stops accepting connections, drains
// in-flight requests for up to -drain, closes the routing tier and the
// local replicas' serving cores, and exits 0.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"drainnas/internal/api"
	"drainnas/internal/httpx"
	"drainnas/internal/infer"
	"drainnas/internal/latmeter"
	"drainnas/internal/metrics"
	"drainnas/internal/route"
	"drainnas/internal/scan"
	"drainnas/internal/serve"
	"drainnas/internal/tenant"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8090", "listen address")
		models      = flag.String("models", ".", "directory of exported .dnnx model containers (local replicas)")
		replicas    = flag.Int("replicas", 3, "in-process serving replicas (0 with -backends for a pure proxy tier)")
		backends    = flag.String("backends", "", "comma-separated base URLs of remote servd replicas")
		policyName  = flag.String("policy", route.PolicyRoundRobin, "placement policy: round-robin, least-loaded or affinity")
		schedName   = flag.String("sched", "fcfs", "dispatch order under -max-inflight: fcfs, priority or sjf")
		maxInflight = flag.Int("max-inflight", 0, "bound on concurrently dispatched requests (0 = unlimited)")
		hedgeAfter  = flag.Duration("hedge-after", 0, "launch a hedge attempt on a second replica after this long (0 = off)")
		retryErr    = flag.Bool("retry-on-error", false, "redispatch retryable replica errors to an untried replica")
		rate        = flag.Float64("rate", 0, "token-bucket admission rate in requests/second (0 = unlimited)")
		burst       = flag.Float64("burst", 1, "token-bucket burst capacity")
		device      = flag.String("predict-device", "", "latmeter device for seeding sjf latency estimates (empty = no seed)")
		predictSize = flag.Int("predict-size", latmeter.DefaultInputSize, "image side assumed for latency seeding")
		maxBatch    = flag.Int("max-batch", 8, "per-replica: flush a batch at this many requests")
		maxDelay    = flag.Duration("max-delay", 2*time.Millisecond, "per-replica: flush a non-empty batch after this delay")
		queueCap    = flag.Int("queue", 256, "per-replica: bounded admission queue capacity")
		workers     = flag.Int("workers", 0, "per-replica: worker pool size (0 = GOMAXPROCS)")
		cacheCap    = flag.Int("cache", 4, "per-replica: resident model cache capacity")
		drain       = flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")

		keys           = flag.String("keys", "", "tenant API key file (JSON); enables the multi-tenant edge tier on /v1/predict")
		keysRecheck    = flag.Duration("keys-recheck", 5*time.Second, "how often to re-stat the key file for hot reload")
		tenantInflight = flag.Int("tenant-inflight", 0, "weighted-fair admission slots across tenants (0 = auth+quota only)")
		dashInterval   = flag.Duration("dashboard-interval", time.Second, "live dashboard push interval")
	)
	flag.Parse()

	var edge *tenant.Tier
	if *keys != "" {
		var err error
		if edge, err = tenant.LoadTier(*keys, *keysRecheck, *tenantInflight, "router"); err != nil {
			log.Fatalf("router: %v", err)
		}
		log.Printf("router: tenant tier enabled (%d tenants, fair slots %d)", edge.TenantCount(), *tenantInflight)
	}

	policy, err := route.PolicyByName(*policyName)
	if err != nil {
		log.Fatalf("router: %v", err)
	}
	sched, err := route.ParseSchedMode(*schedName)
	if err != nil {
		log.Fatalf("router: %v", err)
	}

	// Local replicas share one ServingStats so the fleet's serving counters
	// aggregate into a single exposition (per-replica traffic split comes
	// from the router's own per-replica counters instead).
	serving := &metrics.ServingStats{}
	var (
		reps   []route.Replica
		locals []*route.LocalReplica
	)
	for i := 0; i < *replicas; i++ {
		srv := serve.NewServer(serve.DirLoader(*models), serve.Options{
			MaxBatch: *maxBatch, MaxDelay: *maxDelay,
			QueueCap: *queueCap, Workers: *workers, CacheCap: *cacheCap,
			Stats: serving,
		})
		lr := route.NewLocalReplica(fmt.Sprintf("local-%d", i), srv)
		locals = append(locals, lr)
		reps = append(reps, lr)
	}
	for _, base := range strings.Split(*backends, ",") {
		base = strings.TrimSpace(strings.TrimSuffix(base, "/"))
		if base != "" {
			reps = append(reps, route.NewHTTPReplica("", base, nil))
		}
	}
	if len(reps) == 0 {
		log.Fatalf("router: no replicas (-replicas 0 and no -backends)")
	}

	seeds, err := seedEstimates(*device, *models, *predictSize)
	if err != nil {
		log.Fatalf("router: %v", err)
	}

	router := route.New(route.Options{
		Policy:         policy,
		Sched:          sched,
		MaxInFlight:    *maxInflight,
		HedgeAfter:     *hedgeAfter,
		RetryOnError:   *retryErr,
		Rate:           *rate,
		Burst:          *burst,
		EstimateSeedMS: seeds,
	}, reps...)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("router: %v", err)
	}
	hs := &http.Server{
		Handler:           httpx.AccessLog("router", newAPIWithTenant(router, serving, *models, edge, *dashInterval)),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	log.Printf("router: listening on %s (%d local + %d remote replicas, policy %s, sched %s)",
		ln.Addr(), len(locals), len(reps)-len(locals), policy.Name(), sched)

	closeFleet := func() {
		router.Close()
		for _, lr := range locals {
			lr.Server().Close()
		}
	}
	select {
	case err := <-serveErr:
		closeFleet()
		log.Fatalf("router: %v", err)
	case <-ctx.Done():
		stop() // a second signal kills immediately instead of re-draining
		log.Printf("router: shutdown signal; draining for up to %s", *drain)
		shCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			log.Printf("router: drain incomplete: %v", err)
		}
		closeFleet()
		log.Printf("router: drained, exiting")
	}
}

// seedEstimates prices every deployed model's compiled plan on the named
// latmeter device, giving the SJF scheduler latency estimates before the
// first request. Each model is seeded in both precisions — the fp32 key
// from its cost graph directly, and the "@int8" key from the same graph
// under latmeter's int8 cost scale — so a quantized request is ordered by
// its cheaper cost from the first dispatch. An empty device name disables
// seeding (estimates then start at 0 and come entirely from the measured
// EWMA).
func seedEstimates(device, modelDir string, inputSize int) (map[string]float64, error) {
	if device == "" {
		return nil, nil
	}
	dev, err := latmeter.DeviceByName(device)
	if err != nil {
		return nil, err
	}
	keys, err := serve.ListModels(modelDir)
	if err != nil {
		return nil, fmt.Errorf("seeding estimates: %w", err)
	}
	loader := serve.DirLoader(modelDir)
	seeds := make(map[string]float64, 2*len(keys))
	for _, key := range keys {
		plan, err := loader(key)
		if err != nil {
			return nil, fmt.Errorf("seeding estimates: %s: %w", key, err)
		}
		g, err := plan.CostGraph(inputSize)
		if err != nil {
			// A model that cannot run at this input size simply goes
			// unseeded; the EWMA takes over once real traffic sizes it.
			log.Printf("router: not seeding %s: %v", key, err)
			continue
		}
		seeds[key] = dev.LatencyMS(g)
		qg := g
		qg.CostScale = latmeter.Int8CostScale
		seeds[infer.ModelKey(key, infer.PrecisionInt8)] = dev.LatencyMS(qg)
	}
	return seeds, nil
}

// newAPI builds the HTTP handler over the routing tier. Split from main so
// tests drive it in-process.
func newAPI(router *route.Router, serving *metrics.ServingStats, modelDir string) *http.ServeMux {
	return newAPIWithTenant(router, serving, modelDir, nil, 0)
}

// newAPIWithTenant is newAPI plus the optional multi-tenant edge tier in
// front of /v1/predict, mirroring servd's assembly so clients see the same
// auth and quota surface at either tier.
func newAPIWithTenant(router *route.Router, serving *metrics.ServingStats, modelDir string, edge *tenant.Tier, dashInterval time.Duration) *http.ServeMux {
	mux := http.NewServeMux()

	var predict http.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req api.PredictRequest
		body := http.MaxBytesReader(w, r.Body, api.MaxPredictBodyBytes)
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			httpx.Error(w, http.StatusBadRequest, api.CodeBadInput, fmt.Sprintf("bad request body: %v", err))
			return
		}
		class, err := route.ParseClass(req.SLO)
		if err != nil {
			httpx.Error(w, http.StatusBadRequest, api.CodeBadInput, err.Error())
			return
		}
		input, err := req.Tensor()
		if err != nil {
			httpx.Error(w, http.StatusBadRequest, api.CodeBadInput, err.Error())
			return
		}
		key, err := req.ResolveKey()
		if err != nil {
			httpx.Error(w, http.StatusBadRequest, api.CodeBadInput, err.Error())
			return
		}
		resp, err := router.SubmitClass(r.Context(), class, key, input)
		if err != nil {
			status, code := http.StatusInternalServerError, api.CodeInternal
			switch {
			case errors.Is(err, route.ErrThrottled):
				status, code = http.StatusTooManyRequests, api.CodeThrottled
				w.Header().Set("Retry-After", "1")
			case errors.Is(err, route.ErrNoReplicas):
				status, code = http.StatusServiceUnavailable, api.CodeNoReplicas
			case errors.Is(err, route.ErrClosed), errors.Is(err, serve.ErrClosed):
				status, code = http.StatusServiceUnavailable, api.CodeShuttingDown
			case errors.Is(err, serve.ErrQueueFull):
				status, code = http.StatusTooManyRequests, api.CodeQueueFull
				w.Header().Set("Retry-After", "1")
			case errors.Is(err, serve.ErrModelNotFound):
				status, code = http.StatusNotFound, api.CodeModelNotFound
			case errors.Is(err, r.Context().Err()):
				status, code = http.StatusServiceUnavailable, api.CodeCanceled
			}
			httpx.Error(w, status, code, err.Error())
			return
		}
		model, precision := api.SplitServedModel(resp.Model)
		httpx.WriteJSON(w, http.StatusOK, api.PredictResponse{
			Model:     model,
			Precision: precision,
			Class:     resp.Class,
			Logits:    resp.Logits,
			BatchSize: resp.BatchSize,
			QueuedMS:  float64(resp.Queued) / float64(time.Millisecond),
			TotalMS:   float64(resp.Total) / float64(time.Millisecond),
			Replica:   resp.Replica,
			Hedged:    resp.Hedged,
		})
	})
	if edge != nil {
		predict = edge.Wrap(predict)
	}
	mux.Handle("POST /v1/predict", predict)

	// Whole-watershed scan jobs fan their tiles across the replica fleet;
	// the job's SLO string picks the dispatch class (batch is the natural
	// choice for a bulk scan).
	scanStats := &metrics.ScanStats{}
	scans := scan.NewManager(scanStats, scan.DefaultMaxRunning)
	scan.Register(mux, scans, edge, func(req api.ScanRequest) (scan.Backend, error) {
		class, err := route.ParseClass(req.SLO)
		if err != nil {
			return nil, err
		}
		return scan.RouterBackend{R: router, Class: class}, nil
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		ids := make([]string, 0, 8)
		for _, rep := range router.Replicas() {
			ids = append(ids, rep.ID())
		}
		stats := api.RouterStats{
			Router:   router.Stats().Snapshot(),
			Serving:  serving.Snapshot(),
			Replicas: ids,
			Policy:   router.Policy().Name(),
			Waiting:  router.Waiting(),
		}
		sc := scanStats.Snapshot()
		stats.Scan = &sc
		if edge != nil {
			tn := edge.Stats().Snapshot()
			fair := edge.Fair().SnapshotFair()
			stats.Tenant, stats.Fair = &tn, &fair
		}
		httpx.WriteJSON(w, http.StatusOK, stats)
	})

	tenant.NewDashboard(edge, dashInterval, func() tenant.DashboardSnapshot {
		return tenant.DashboardSnapshot{
			Service: "router",
			Serving: serving.Snapshot(),
			Tenants: edge.Stats().Snapshot(),
			Fair:    edge.Fair().SnapshotFair(),
		}
	}).Register(mux)

	handleMetrics := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		e := metrics.NewExpositionWriter(w)
		router.Stats().Snapshot().WriteProm(e)
		serving.Snapshot().WriteProm(e)
		scanStats.Snapshot().WriteProm(e)
		if edge != nil {
			edge.Stats().Snapshot().WriteProm(e)
		}
		if err := e.Flush(); err != nil {
			log.Printf("router: writing /metrics: %v", err)
		}
	}
	mux.HandleFunc("GET /v1/metrics", handleMetrics)
	mux.HandleFunc("GET /metrics", httpx.Deprecated("router", "/metrics", "/v1/metrics", handleMetrics))

	handleHealthz := func(w http.ResponseWriter, r *http.Request) {
		reps := router.Replicas()
		if len(reps) == 0 {
			httpx.WriteJSON(w, http.StatusServiceUnavailable, api.HealthResponse{
				Status: "degraded",
				Error:  "no replicas",
			})
			return
		}
		keys, err := serve.ListModels(modelDir)
		if err != nil {
			keys = nil // a pure proxy tier has no local model directory
		}
		httpx.WriteJSON(w, http.StatusOK, api.HealthResponse{
			Status:   "ok",
			Replicas: len(reps),
			Policy:   router.Policy().Name(),
			Models:   keys,
		})
	}
	mux.HandleFunc("GET /v1/healthz", handleHealthz)
	mux.HandleFunc("GET /healthz", httpx.Deprecated("router", "/healthz", "/v1/healthz", handleHealthz))

	return mux
}
