package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"drainnas/internal/api"
	"drainnas/internal/httpx"
	"drainnas/internal/metrics"
	"drainnas/internal/onnxsize"
	"drainnas/internal/resnet"
	"drainnas/internal/route"
	"drainnas/internal/serve"
	"drainnas/internal/tensor"
)

// writeModels exports two small model containers (tiny.dnnx, wide.dnnx)
// into dir so routing tests have mixed-model traffic.
func writeModels(t *testing.T, dir string) resnet.Config {
	t.Helper()
	cfg := resnet.Config{
		Channels: 3, Batch: 4, KernelSize: 3, Stride: 2, Padding: 1,
		PoolChoice: 0, InitialOutputFeature: 4, NumClasses: 2,
	}
	wide := cfg
	wide.InitialOutputFeature = 8
	for name, c := range map[string]resnet.Config{"tiny": cfg, "wide": wide} {
		m, err := resnet.New(c, tensor.NewRNG(11))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := onnxsize.Export(m, &buf); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name+".dnnx"), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return cfg
}

func predictBody(t *testing.T, model, slo string) []byte {
	t.Helper()
	x := tensor.RandNormal(tensor.NewRNG(5), 1, 3, 16, 16)
	b, err := json.Marshal(api.PredictRequest{Model: model, Shape: []int{3, 16, 16}, Data: x.Data(), SLO: slo})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// testFleet builds a router over n real in-process serving replicas sharing
// one ServingStats, mirroring main's wiring.
func testFleet(t *testing.T, dir string, n int, opts route.Options) (*route.Router, *metrics.ServingStats, []*route.LocalReplica) {
	t.Helper()
	serving := &metrics.ServingStats{}
	var (
		reps   []route.Replica
		locals []*route.LocalReplica
	)
	for i := 0; i < n; i++ {
		srv := serve.NewServer(serve.DirLoader(dir), serve.Options{MaxDelay: time.Millisecond, Stats: serving})
		lr := route.NewLocalReplica(fmt.Sprintf("local-%d", i), srv)
		locals = append(locals, lr)
		reps = append(reps, lr)
	}
	r := route.New(opts, reps...)
	t.Cleanup(func() {
		r.Close()
		for _, lr := range locals {
			lr.Server().Close()
		}
	})
	return r, serving, locals
}

func TestRouterAPIPredictStatsHealth(t *testing.T) {
	dir := t.TempDir()
	writeModels(t, dir)
	router, serving, _ := testFleet(t, dir, 2, route.Options{})
	ts := httptest.NewServer(newAPI(router, serving, dir))
	defer ts.Close()

	seen := map[string]int{}
	for i := 0; i < 4; i++ {
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
			bytes.NewReader(predictBody(t, "tiny", "interactive")))
		if err != nil {
			t.Fatal(err)
		}
		var pr api.PredictResponse
		err = json.NewDecoder(resp.Body).Decode(&pr)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict status %d", resp.StatusCode)
		}
		if pr.Model != "tiny" || len(pr.Logits) != 2 || pr.TotalMS <= 0 {
			t.Fatalf("malformed prediction %+v", pr)
		}
		if pr.Replica == "" {
			t.Fatalf("prediction without replica attribution: %+v", pr)
		}
		seen[pr.Replica]++
	}
	// Round-robin over two replicas: both served.
	if seen["local-0"] != 2 || seen["local-1"] != 2 {
		t.Fatalf("replica spread %v, want 2 each", seen)
	}

	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats struct {
		Router struct {
			Submitted uint64 `json:"submitted"`
			Completed uint64 `json:"completed"`
			PerClass  map[string]struct {
				Completed uint64 `json:"completed"`
			} `json:"per_class"`
			PerReplica map[string]struct {
				Picked uint64 `json:"picked"`
			} `json:"per_replica"`
		} `json:"router"`
		Serving struct {
			Completed uint64 `json:"completed"`
		} `json:"serving"`
		Replicas []string `json:"replicas"`
		Policy   string   `json:"policy"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Router.Submitted != 4 || stats.Router.Completed != 4 {
		t.Fatalf("router stats %+v", stats.Router)
	}
	if stats.Router.PerClass["interactive"].Completed != 4 {
		t.Fatalf("per-class stats %+v", stats.Router.PerClass)
	}
	if stats.Router.PerReplica["local-0"].Picked != 2 || stats.Router.PerReplica["local-1"].Picked != 2 {
		t.Fatalf("per-replica stats %+v", stats.Router.PerReplica)
	}
	// The fleet shares one serving sink: the aggregate sees all four.
	if stats.Serving.Completed != 4 {
		t.Fatalf("serving aggregate %+v", stats.Serving)
	}
	if len(stats.Replicas) != 2 || stats.Policy != route.PolicyRoundRobin {
		t.Fatalf("fleet descriptor %+v / %q", stats.Replicas, stats.Policy)
	}

	hresp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var health struct {
		Status   string   `json:"status"`
		Replicas int      `json:"replicas"`
		Models   []string `json:"models"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Replicas != 2 || len(health.Models) != 2 {
		t.Fatalf("health %+v", health)
	}
}

func TestRouterAPIErrorMapping(t *testing.T) {
	dir := t.TempDir()
	writeModels(t, dir)
	router, serving, _ := testFleet(t, dir, 1, route.Options{})
	ts := httptest.NewServer(httpx.AccessLog("router", newAPI(router, serving, dir)))
	defer ts.Close()

	postEnvelope := func(body []byte) (int, api.ErrorEnvelope) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env api.ErrorEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatalf("error body is not the envelope: %v", err)
		}
		if env.Error.RequestID == "" || env.Error.RequestID != resp.Header.Get("X-Request-ID") {
			t.Fatalf("envelope request_id %q vs header %q", env.Error.RequestID, resp.Header.Get("X-Request-ID"))
		}
		return resp.StatusCode, env
	}

	if status, env := postEnvelope([]byte("{not json")); status != http.StatusBadRequest || env.Error.Code != "bad_input" {
		t.Fatalf("bad json -> %d %q", status, env.Error.Code)
	}
	bad, _ := json.Marshal(api.PredictRequest{Model: "tiny", Shape: []int{3, 16, 16}, Data: make([]float32, 768), SLO: "turbo"})
	if status, env := postEnvelope(bad); status != http.StatusBadRequest || env.Error.Code != "bad_input" {
		t.Fatalf("unknown slo -> %d %q", status, env.Error.Code)
	}
	if status, env := postEnvelope(predictBody(t, "ghost", "")); status != http.StatusNotFound || env.Error.Code != "model_not_found" {
		t.Fatalf("unknown model -> %d %q", status, env.Error.Code)
	}
	router.Close()
	if status, env := postEnvelope(predictBody(t, "tiny", "")); status != http.StatusServiceUnavailable || env.Error.Code != "shutting_down" {
		t.Fatalf("closed router -> %d %q", status, env.Error.Code)
	}
}

// TestRouterAPIThrottledAndNoReplicas pins the router's two new error codes
// on the wire: token-bucket rejection answers 429/throttled with a
// Retry-After hint, and an empty fleet answers 503/no_replicas.
func TestRouterAPIThrottledAndNoReplicas(t *testing.T) {
	dir := t.TempDir()
	writeModels(t, dir)
	router, serving, _ := testFleet(t, dir, 1, route.Options{Rate: 0.001, Burst: 1})
	ts := httptest.NewServer(newAPI(router, serving, dir))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
		bytes.NewReader(predictBody(t, "tiny", "")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("burst predict -> %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/predict", "application/json",
		bytes.NewReader(predictBody(t, "tiny", "")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("throttled predict -> %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var env api.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "throttled" {
		t.Fatalf("throttle code %q, want throttled", env.Error.Code)
	}

	empty := route.New(route.Options{})
	defer empty.Close()
	ts2 := httptest.NewServer(newAPI(empty, &metrics.ServingStats{}, dir))
	defer ts2.Close()
	resp2, err := http.Post(ts2.URL+"/v1/predict", "application/json",
		bytes.NewReader(predictBody(t, "tiny", "")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty-fleet predict -> %d, want 503", resp2.StatusCode)
	}
	var env2 api.ErrorEnvelope
	if err := json.NewDecoder(resp2.Body).Decode(&env2); err != nil {
		t.Fatal(err)
	}
	if env2.Error.Code != "no_replicas" {
		t.Fatalf("empty-fleet code %q, want no_replicas", env2.Error.Code)
	}
}

// TestRouterMetricsEndpoint holds the /v1/metrics page — router counters
// plus the fleet's aggregated serving counters in one exposition — to the
// same validator make obs-smoke uses.
func TestRouterMetricsEndpoint(t *testing.T) {
	dir := t.TempDir()
	writeModels(t, dir)
	router, serving, _ := testFleet(t, dir, 2, route.Options{})
	ts := httptest.NewServer(newAPI(router, serving, dir))
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
			bytes.NewReader(predictBody(t, "tiny", "batch")))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	page, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.ValidateExposition(bytes.NewReader(page)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, page)
	}
	for _, want := range []string{
		`drainnas_router_requests_total{outcome="completed"} 3`,
		`drainnas_router_decisions_total{policy="round-robin"} 3`,
		`drainnas_router_class_requests_total{class="batch",outcome="completed"} 3`,
		`drainnas_router_replica_attempts_total{replica="local-0",outcome="picked"}`,
		`drainnas_serving_requests_total{outcome="completed"} 3`,
	} {
		if !bytes.Contains(page, []byte(want)) {
			t.Fatalf("metrics page missing %q:\n%s", want, page)
		}
	}
}

// --- binary-level tests -------------------------------------------------

func buildRouter(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "router")
	build := exec.Command("go", "build", "-o", bin, "drainnas/cmd/router")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var addrRe = regexp.MustCompile(`listening on (\S+)`)

func startRouter(t *testing.T, bin string, args ...string) (*exec.Cmd, string, *syncBuffer) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	logs := &syncBuffer{}
	cmd.Stderr = logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if m := addrRe.FindStringSubmatch(logs.String()); m != nil {
			return cmd, "http://" + m[1], logs
		}
		time.Sleep(20 * time.Millisecond)
	}
	cmd.Process.Kill()
	cmd.Wait()
	t.Fatalf("router never reported its listen address; log:\n%s", logs.String())
	return nil, "", nil
}

func waitForHealthy(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("router never became healthy")
}

// TestRouterSmoke is the CI gate (make router-smoke): boot the real binary
// over three in-process replicas, push 200 mixed-model mixed-SLO requests
// through it, require non-zero traffic on every replica, then drain cleanly
// on SIGTERM.
func TestRouterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test skipped in -short mode")
	}
	dir := t.TempDir()
	writeModels(t, dir)
	bin := buildRouter(t, dir)
	cmd, url, logs := startRouter(t, bin,
		"-models", dir, "-replicas", "3", "-policy", "round-robin",
		"-sched", "priority", "-max-inflight", "16", "-drain", "20s")
	killed := false
	defer func() {
		if !killed {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()
	waitForHealthy(t, url)

	models := []string{"tiny", "wide"}
	slos := []string{"", "interactive", "batch", "standard"}
	for i := 0; i < 200; i++ {
		resp, err := http.Post(url+"/v1/predict", "application/json",
			bytes.NewReader(predictBody(t, models[i%2], slos[i%4])))
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		var pr api.PredictResponse
		err = json.NewDecoder(resp.Body).Decode(&pr)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d err %v", i, resp.StatusCode, err)
		}
		if pr.Replica == "" {
			t.Fatalf("request %d: no replica attribution", i)
		}
	}

	sresp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Router struct {
			Completed  uint64 `json:"completed"`
			PerReplica map[string]struct {
				Picked    uint64 `json:"picked"`
				Completed uint64 `json:"completed"`
			} `json:"per_replica"`
		} `json:"router"`
		Serving struct {
			Completed uint64 `json:"completed"`
		} `json:"serving"`
	}
	err = json.NewDecoder(sresp.Body).Decode(&stats)
	sresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Router.Completed != 200 || stats.Serving.Completed != 200 {
		t.Fatalf("completed router=%d serving=%d, want 200/200", stats.Router.Completed, stats.Serving.Completed)
	}
	if len(stats.Router.PerReplica) != 3 {
		t.Fatalf("per-replica breakdown %v, want 3 replicas", stats.Router.PerReplica)
	}
	for id, pr := range stats.Router.PerReplica {
		if pr.Picked == 0 || pr.Completed == 0 {
			t.Fatalf("replica %s saw no traffic: %+v (full: %v)", id, pr, stats.Router.PerReplica)
		}
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		killed = true
		if err != nil {
			t.Fatalf("router exited non-zero after SIGTERM: %v\nlog:\n%s", err, logs.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("router never exited after SIGTERM; log:\n%s", logs.String())
	}
	if out := logs.String(); !strings.Contains(out, "drained, exiting") {
		t.Fatalf("no drain log line; log:\n%s", out)
	}
}

// TestRouterBinarySJFSeeding boots the binary with -sched sjf and a
// -predict-device, exercising the plan→cost-graph→latency seeding path end
// to end (a bad device name must fail fast instead).
func TestRouterBinarySJFSeeding(t *testing.T) {
	if testing.Short() {
		t.Skip("binary test skipped in -short mode")
	}
	dir := t.TempDir()
	writeModels(t, dir)
	bin := buildRouter(t, dir)
	cmd, url, _ := startRouter(t, bin,
		"-models", dir, "-replicas", "2", "-sched", "sjf",
		"-max-inflight", "1", "-predict-device", "cortexA76cpu")
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	waitForHealthy(t, url)
	for _, model := range []string{"tiny", "wide"} {
		resp, err := http.Post(url+"/v1/predict", "application/json",
			bytes.NewReader(predictBody(t, model, "")))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s predict -> %d", model, resp.StatusCode)
		}
	}

	bad := exec.Command(bin, "-models", dir, "-predict-device", "no-such-device")
	out, err := bad.CombinedOutput()
	if err == nil {
		bad.Process.Kill()
		t.Fatalf("router accepted an unknown predict device:\n%s", out)
	}
}

// TestSeedEstimatesIncludeInt8Keys pins the precision-aware SJF seeding:
// every deployed model gets an estimate in both precisions, with the int8
// form strictly cheaper by the cost scale.
func TestSeedEstimatesIncludeInt8Keys(t *testing.T) {
	dir := t.TempDir()
	writeModels(t, dir)
	seeds, err := seedEstimates("cortexA76cpu", dir, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"tiny", "wide"} {
		f, ok := seeds[name]
		if !ok {
			t.Fatalf("no fp32 seed for %s: %v", name, seeds)
		}
		q, ok := seeds[name+"@int8"]
		if !ok {
			t.Fatalf("no int8 seed for %s: %v", name, seeds)
		}
		if !(q < f) {
			t.Fatalf("%s: int8 seed %.4f not below fp32 %.4f", name, q, f)
		}
	}
}

// TestRouterServesInt8Precision routes an int8 request across the fleet and
// checks the response attribution carries the precision.
func TestRouterServesInt8Precision(t *testing.T) {
	dir := t.TempDir()
	writeModels(t, dir)
	router, serving, _ := testFleet(t, dir, 2, route.Options{})
	ts := httptest.NewServer(newAPI(router, serving, dir))
	defer ts.Close()

	x := tensor.RandNormal(tensor.NewRNG(5), 1, 3, 16, 16)
	body, err := json.Marshal(api.PredictRequest{
		Model: "tiny", Precision: "int8",
		Shape: []int{3, 16, 16}, Data: x.Data(),
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("int8 predict status %d", resp.StatusCode)
	}
	var pr api.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Model != "tiny" || pr.Precision != "int8" || len(pr.Logits) != 2 || pr.Replica == "" {
		t.Fatalf("malformed int8 routed prediction %+v", pr)
	}
}
