package main

import (
	"bytes"
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
	"testing"
)

func capsim(t *testing.T, args ...string) string {
	t.Helper()
	var out, errb bytes.Buffer
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("capsim %v: %v\n%s", args, err, errb.String())
	}
	return out.String()
}

// TestCapsimDeterministic is the CLI-level acceptance property: identical
// invocations print identical bytes, and a different seed prints different
// ones.
func TestCapsimDeterministic(t *testing.T) {
	args := []string{"-seed", "9", "-rate", "150", "-duration", "1s",
		"-replicas", "2", "-sched", "priority", "-slo", "interactive=0.5,batch=0.5",
		"-max-inflight", "32", "-admit-rate", "400"}
	a := capsim(t, args...)
	b := capsim(t, args...)
	if a != b {
		t.Fatalf("same invocation printed different bytes:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	c := capsim(t, append(args[2:], "-seed", "10")...)
	if a == c {
		t.Fatal("different seeds printed identical reports")
	}
	if !strings.Contains(a, "model paper@int8") || !strings.Contains(a, "class interactive") {
		t.Fatalf("report missing per-model/per-class sections:\n%s", a)
	}

	// JSON mode is deterministic too and decodes.
	ja := capsim(t, append(args, "-json")...)
	if jb := capsim(t, append(args, "-json")...); ja != jb {
		t.Fatal("JSON output not deterministic")
	}
	var rep struct {
		Completed uint64 `json:"completed"`
	}
	if err := json.Unmarshal([]byte(ja), &rep); err != nil || rep.Completed == 0 {
		t.Fatalf("JSON report malformed (%v): %s", err, ja)
	}
}

// TestCapsimSweepFrontier checks the capacity question end to end: the
// sweep prints one line per fleet size, p99 does not degrade as replicas
// are added, and the verdict names the smallest size meeting the target.
func TestCapsimSweepFrontier(t *testing.T) {
	out := capsim(t, "-seed", "3", "-rate", "120", "-duration", "1s",
		"-device", "adreno640gpu", "-mix", "paper@int8=1",
		"-sweep", "replicas=1..6", "-target-p99", "500ms")
	if !strings.Contains(out, "capacity frontier") {
		t.Fatalf("missing frontier header:\n%s", out)
	}
	lines := 0
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "1 ") || strings.HasPrefix(l, "2 ") ||
			strings.HasPrefix(l, "3 ") || strings.HasPrefix(l, "4 ") ||
			strings.HasPrefix(l, "5 ") || strings.HasPrefix(l, "6 ") {
			lines++
		}
	}
	if lines != 6 {
		t.Fatalf("frontier printed %d rows, want 6:\n%s", lines, out)
	}
	if !strings.Contains(out, "verdict:") {
		t.Fatalf("missing verdict:\n%s", out)
	}

	// The JSON frontier carries the same answer machine-readably.
	jout := capsim(t, "-seed", "3", "-rate", "120", "-duration", "1s",
		"-device", "adreno640gpu", "-mix", "paper@int8=1",
		"-sweep", "replicas=1..6", "-target-p99", "500ms", "-json")
	var doc struct {
		Frontier []struct {
			Replicas int     `json:"replicas"`
			P99MS    float64 `json:"p99_ms"`
			Goodput  float64 `json:"goodput"`
		} `json:"frontier"`
		Verdict int `json:"verdict_replicas"`
	}
	if err := json.Unmarshal([]byte(jout), &doc); err != nil {
		t.Fatalf("sweep JSON: %v", err)
	}
	if len(doc.Frontier) != 6 {
		t.Fatalf("JSON frontier has %d rows, want 6", len(doc.Frontier))
	}
	// Larger fleets must not be slower at the tail (monotone frontier).
	for i := 1; i < len(doc.Frontier); i++ {
		if doc.Frontier[i].P99MS > doc.Frontier[i-1].P99MS*1.001 {
			t.Fatalf("frontier p99 degraded from %.2f to %.2f at %d replicas",
				doc.Frontier[i-1].P99MS, doc.Frontier[i].P99MS, doc.Frontier[i].Replicas)
		}
	}
	if doc.Verdict > 0 {
		for _, row := range doc.Frontier {
			if row.Replicas == doc.Verdict && row.P99MS > 500 {
				t.Fatalf("verdict %d replicas has p99 %.2fms over the 500ms target", doc.Verdict, row.P99MS)
			}
			if row.Replicas < doc.Verdict && row.P99MS <= 500 && row.Goodput >= 0.999 {
				t.Fatalf("verdict %d is not the smallest passing size (%d also passes)", doc.Verdict, row.Replicas)
			}
		}
	}
}

// TestCapsimRecordReplay checks -record then -trace reproduces the exact
// generated workload: the replayed report equals the directly simulated one.
func TestCapsimRecordReplay(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "wl.jsonl")
	rec := capsim(t, "-seed", "21", "-rate", "100", "-duration", "1s", "-record", trace)
	if !strings.Contains(rec, "recorded") {
		t.Fatalf("record mode output: %s", rec)
	}

	direct := capsim(t, "-seed", "21", "-rate", "100", "-duration", "1s", "-replicas", "2")
	replayed := capsim(t, "-trace", trace, "-duration", "1s", "-replicas", "2")
	// The replay banner differs; the report body must not.
	body := func(s string) string {
		i := strings.Index(s, "simulated ")
		if i < 0 {
			t.Fatalf("no report in output:\n%s", s)
		}
		return s[i:]
	}
	if body(direct) != body(replayed) {
		t.Fatalf("replayed report differs from direct:\n--- direct ---\n%s--- replay ---\n%s",
			body(direct), body(replayed))
	}
}

// TestCapsimCalibrateFlag runs the calibration path against the sim
// package's checked-in fixture and checks the fitted scales are reported
// and applied.
func TestCapsimCalibrateFlag(t *testing.T) {
	out := capsim(t,
		"-trace", "../../internal/sim/testdata/fixture_trace.jsonl",
		"-calibrate", "../../internal/sim/testdata/fixture_stats.json",
		"-duration", "4s", "-replicas", "2",
		// The fixture was produced by hand-written service models, not the
		// built-in cost graphs; scales absorb the difference. What matters
		// here is the wiring: fit, report, then simulate.
	)
	if !strings.Contains(out, "calibration: work-scale") ||
		!strings.Contains(out, "MAPE") || !strings.Contains(out, "pearson r") {
		t.Fatalf("calibration report missing:\n%s", out)
	}
	if !strings.Contains(out, "simulated ") {
		t.Fatalf("no simulation after calibration:\n%s", out)
	}
}

// TestCapsimFlagErrors checks the CLI rejects malformed inputs with
// actionable errors instead of simulating garbage.
func TestCapsimFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-chip", "5x128"},
		{"-chip", "5x128x0"},
		{"-mix", "paper"},
		{"-mix", ""},
		{"-slo", "urgent=1"},
		{"-dist", "zipf"},
		{"-sweep", "replicas=8..1"},
		{"-sweep", "workers=1..4"},
		{"-sweep", "replicas=1..200"},
		{"-sched", "wfq"},
		{"-policy", "random"},
		{"-mix", "ghost=1"}, // not in the built-in model set
		{"-trace", "does-not-exist.jsonl"},
		{"-device", "tpu9000"},
	}
	for _, args := range cases {
		full := append([]string{"-duration", "200ms", "-rate", "50"}, args...)
		if err := run(full, io.Discard, io.Discard); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}
