// Command capsim answers serving capacity questions without hardware: it
// simulates the servd/router pipeline (admission, SLO scheduling, batching,
// plan execution) over a synthetic workload or a recorded -trace file, using
// internal/latmeter's analytic cost models for service times, and prints
// latency quantiles, goodput and per-replica utilization — deterministically,
// so the same seed always prints the same bytes.
//
//	capsim -rate 200 -duration 5s -replicas 2
//	capsim -sweep replicas=1..8 -target-p99 50ms
//	capsim -trace served.jsonl -calibrate stats.json -sweep replicas=1..4
//
// The capacity sweep prints one frontier line per fleet size and a verdict:
// the smallest fleet meeting the p99 target with (effectively) no load
// shedding. -calibrate fits the simulator's two service-time scales to a
// measured /v1/stats document first, reporting MAPE and Pearson r of
// simulated vs measured p50/p95/p99, then runs the sweep with the fitted
// scales.
//
// Models come from -models (a directory of exported .dnnx containers, each
// contributing its fp32 and @int8 serving keys via the compiled plan's cost
// graph) or default to the paper's stock ResNet-18 baseline as "paper" and
// "paper@int8".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"drainnas/internal/latmeter"
	"drainnas/internal/resnet"
	"drainnas/internal/route"
	"drainnas/internal/serve"
	"drainnas/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "capsim: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("capsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed     = fs.Uint64("seed", 1, "workload RNG seed (same seed, same report bytes)")
		duration = fs.Duration("duration", 5*time.Second, "workload horizon")
		rate     = fs.Float64("rate", 100, "total offered load, requests/second")
		distName = fs.String("dist", "poisson", "interarrival distribution: poisson, gamma or weibull")
		shape    = fs.Float64("shape", 1, "gamma/weibull shape (ignored for poisson)")
		mix      = fs.String("mix", "paper=0.7,paper@int8=0.3", "model mix as key=weight,...")
		sloMix   = fs.String("slo", "standard=1", "SLO class mix as class=weight,... (interactive, standard, batch)")
		chip     = fs.String("chip", "5x128x128", "chip shape CxHxW submitted by every client")

		tracePath  = fs.String("trace", "", "replay this recorded JSONL trace instead of generating a workload")
		recordPath = fs.String("record", "", "save the generated workload as a JSONL trace and exit")

		scanTiles  = fs.Int("scan-tiles", 0, "generate a scan-shaped workload of this many tiles instead of random traffic (first -mix model, first -slo class)")
		scanWindow = fs.Int("scan-window", 8, "with -scan-tiles: the scan's in-flight tile window")
		scanPace   = fs.Duration("scan-pace", 2*time.Millisecond, "with -scan-tiles: per-tile completion pace once the window is full")

		modelDir = fs.String("models", "", "directory of .dnnx containers (default: built-in stock ResNet-18 as \"paper\")")
		device   = fs.String("device", "cortexA76cpu", "latmeter device predictor for service times")

		calibrate = fs.String("calibrate", "", "fit service-time scales to this measured /v1/stats JSON before simulating")
		workScale = fs.Float64("work-scale", 1, "per-item service-time scale (overridden by -calibrate)")
		overScale = fs.Float64("overhead-scale", 1, "per-batch overhead scale (overridden by -calibrate)")

		replicas  = fs.Int("replicas", 1, "fleet size (ignored when -sweep is set)")
		sweep     = fs.String("sweep", "", "capacity sweep, e.g. replicas=1..8")
		targetP99 = fs.Duration("target-p99", 0, "p99 target for the sweep verdict, e.g. 50ms")

		workers     = fs.Int("workers", 1, "per-replica worker pool size")
		maxBatch    = fs.Int("max-batch", 8, "flush a batch at this many requests")
		maxDelay    = fs.Duration("max-delay", 2*time.Millisecond, "flush a non-empty batch after this delay")
		queueCap    = fs.Int("queue", 256, "per-replica admission queue capacity")
		maxInFlight = fs.Int("max-inflight", 0, "router dispatch concurrency bound (0 = unlimited)")
		schedName   = fs.String("sched", "fcfs", "gate scheduling: fcfs, priority or sjf")
		policyName  = fs.String("policy", "round-robin", "placement: round-robin or least-loaded")
		admitRate   = fs.Float64("admit-rate", 0, "token-bucket admission rate, req/s (0 = off)")
		admitBurst  = fs.Float64("admit-burst", 0, "token-bucket burst (default: admit-rate)")
		networkMS   = fs.Float64("network-ms", 0, "fixed per-request network overhead, milliseconds")

		jsonOut = fs.Bool("json", false, "emit the report as JSON instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	c, h, w, err := parseChip(*chip)
	if err != nil {
		return err
	}
	shares, err := parseShares(*mix)
	if err != nil {
		return fmt.Errorf("-mix: %w", err)
	}
	classShares, err := parseShares(*sloMix)
	if err != nil {
		return fmt.Errorf("-slo: %w", err)
	}
	dist, err := sim.ParseDist(*distName)
	if err != nil {
		return err
	}
	sched, err := route.ParseSchedMode(*schedName)
	if err != nil {
		return err
	}
	policy, err := sim.ParsePolicy(*policyName)
	if err != nil {
		return err
	}

	// The arrival stream: replayed from a trace, or generated per -slo with
	// one client per class so each carries its own class and stream.
	var arrivals []sim.Arrival
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		events, rerr := sim.ReadTrace(f)
		f.Close()
		if rerr != nil {
			return rerr
		}
		if arrivals, err = sim.TraceArrivals(events); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "replaying %d recorded arrivals from %s\n", len(arrivals), *tracePath)
	} else if *scanTiles > 0 {
		class, err := route.ParseClass(classShares[0].Key)
		if err != nil {
			return fmt.Errorf("-slo: %w", err)
		}
		sw := sim.ScanWorkload{
			Model: shares[0].Key, Class: class,
			Tiles: *scanTiles, Window: *scanWindow, Pace: *scanPace,
			C: c, S: h,
		}
		if arrivals, err = sw.Arrivals(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "scan workload: %d tiles of %s, window %d, pace %s\n",
			*scanTiles, sw.Model, *scanWindow, *scanPace)
	} else {
		var clients []sim.Client
		for _, cs := range classShares {
			class, err := route.ParseClass(cs.Key)
			if err != nil {
				return fmt.Errorf("-slo: %w", err)
			}
			clients = append(clients, sim.Client{
				Name: cs.Key, RateRPS: *rate * cs.Weight, Dist: dist, Shape: *shape,
				Class: class, Models: shares, C: c, H: h, W: w,
			})
		}
		wl := sim.Workload{Clients: clients, Duration: *duration, Seed: *seed}
		if arrivals, err = wl.Arrivals(); err != nil {
			return err
		}
	}

	if *recordPath != "" {
		f, err := os.Create(*recordPath)
		if err != nil {
			return err
		}
		if err := sim.WriteTrace(f, sim.EventsFromArrivals(arrivals)); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "recorded %d arrivals to %s\n", len(arrivals), *recordPath)
		return nil
	}

	// Price cost graphs at the chip size the traffic actually carries: the
	// -chip flag for generated workloads, the recorded shape for replays.
	inputSize := h
	if *tracePath != "" && len(arrivals) > 0 {
		inputSize = arrivals[0].H
	}
	models, err := buildModels(*modelDir, *device, inputSize, arrivals)
	if err != nil {
		return err
	}

	cfg := sim.Config{
		Replicas: *replicas, Workers: *workers,
		MaxBatch: *maxBatch, MaxDelay: *maxDelay, QueueCap: *queueCap,
		Policy: policy, Sched: sched, MaxInFlight: *maxInFlight,
		AdmitRate: *admitRate, AdmitBurst: *admitBurst,
		Models: models, WorkScale: *workScale, OverheadScale: *overScale,
		NetworkMS: *networkMS, Horizon: *duration,
	}

	if *calibrate != "" {
		f, err := os.Open(*calibrate)
		if err != nil {
			return err
		}
		measured, perr := sim.ParseStatsQuantiles(f)
		f.Close()
		if perr != nil {
			return perr
		}
		cal, err := sim.Calibrate(cfg, arrivals, measured)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "calibration: work-scale %.3f, overhead-scale %.3f -> MAPE %.2f%%, pearson r %.4f over %d quantile points\n",
			cal.WorkScale, cal.OverheadScale, cal.MAPEPercent, cal.PearsonR, cal.Points)
		cfg.WorkScale, cfg.OverheadScale = cal.WorkScale, cal.OverheadScale
	}

	if *sweep != "" {
		lo, hi, err := parseSweep(*sweep)
		if err != nil {
			return err
		}
		return runSweep(stdout, cfg, arrivals, lo, hi, *targetP99, *jsonOut)
	}

	rep, err := sim.Run(cfg, arrivals)
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Fprint(stdout, rep.Render())
	if *targetP99 > 0 {
		printVerdict(stdout, rep.Replicas, rep, *targetP99)
	}
	return nil
}

// frontierRow is one sweep point, also the -json sweep element.
type frontierRow struct {
	Replicas      int     `json:"replicas"`
	ThroughputRPS float64 `json:"throughput_rps"`
	Goodput       float64 `json:"goodput"`
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
	P99MS         float64 `json:"p99_ms"`
	MeanUtil      float64 `json:"mean_utilization"`
	Meets         bool    `json:"meets_target,omitempty"`
}

// runSweep simulates each fleet size in [lo, hi] over the same arrival
// stream and prints the capacity frontier plus the verdict for -target-p99.
func runSweep(stdout io.Writer, cfg sim.Config, arrivals []sim.Arrival, lo, hi int, target time.Duration, jsonOut bool) error {
	var rows []frontierRow
	verdict := 0
	for n := lo; n <= hi; n++ {
		c := cfg
		c.Replicas = n
		rep, err := sim.Run(c, arrivals)
		if err != nil {
			return err
		}
		util := 0.0
		for _, r := range rep.ReplicaStats {
			util += r.Utilization
		}
		if len(rep.ReplicaStats) > 0 {
			util /= float64(len(rep.ReplicaStats))
		}
		row := frontierRow{
			Replicas: n, ThroughputRPS: rep.ThroughputRPS, Goodput: rep.GoodputFraction(),
			P50MS: rep.Latency.P50MS, P95MS: rep.Latency.P95MS, P99MS: rep.Latency.P99MS,
			MeanUtil: util,
		}
		row.Meets = meetsTarget(rep, target)
		if row.Meets && verdict == 0 {
			verdict = n
		}
		rows = append(rows, row)
	}

	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]any{"frontier": rows, "verdict_replicas": verdict})
	}
	fmt.Fprintf(stdout, "capacity frontier (%d arrivals over %s):\n", len(arrivals), time.Duration(cfg.Horizon).String())
	fmt.Fprintf(stdout, "%-9s %10s %9s %10s %10s %10s %7s\n",
		"replicas", "rps", "goodput", "p50", "p95", "p99", "util")
	for _, r := range rows {
		mark := " "
		if target > 0 && r.Meets {
			mark = "*"
		}
		fmt.Fprintf(stdout, "%-9d %10.1f %8.1f%% %8.2fms %8.2fms %8.2fms %6.1f%% %s\n",
			r.Replicas, r.ThroughputRPS, 100*r.Goodput, r.P50MS, r.P95MS, r.P99MS, 100*r.MeanUtil, mark)
	}
	if target > 0 {
		targetMS := float64(target) / float64(time.Millisecond)
		if verdict > 0 {
			fmt.Fprintf(stdout, "verdict: %d replica(s) meet p99 <= %.0fms with full goodput\n", verdict, targetMS)
		} else {
			fmt.Fprintf(stdout, "verdict: no fleet size in %d..%d meets p99 <= %.0fms\n", lo, hi, targetMS)
		}
	}
	return nil
}

// meetsTarget is the verdict predicate: p99 under target with effectively
// no shedding (allowing one-in-a-thousand rejects under bursty admission).
func meetsTarget(rep sim.Report, target time.Duration) bool {
	if target <= 0 {
		return false
	}
	return rep.Completed > 0 &&
		rep.Latency.P99MS <= float64(target)/float64(time.Millisecond) &&
		rep.GoodputFraction() >= 0.999
}

func printVerdict(stdout io.Writer, replicas int, rep sim.Report, target time.Duration) {
	targetMS := float64(target) / float64(time.Millisecond)
	if meetsTarget(rep, target) {
		fmt.Fprintf(stdout, "verdict: %d replica(s) meet p99 <= %.0fms with full goodput\n", replicas, targetMS)
	} else {
		fmt.Fprintf(stdout, "verdict: %d replica(s) do NOT meet p99 <= %.0fms (p99 %.2fms, goodput %.1f%%)\n",
			replicas, targetMS, rep.Latency.P99MS, 100*rep.GoodputFraction())
	}
}

// buildModels assembles the service-model table the arrival stream needs:
// from a model directory (each container's compiled cost graph, fp32 and
// @int8) or the built-in paper baseline. Only keys the stream references
// are required, so a trace recorded against a larger fleet still replays.
func buildModels(dir, deviceName string, inputSize int, arrivals []sim.Arrival) (map[string]latmeter.ServiceModel, error) {
	dev, err := latmeter.DeviceByName(deviceName)
	if err != nil {
		return nil, err
	}
	models := make(map[string]latmeter.ServiceModel)
	if dir == "" {
		g, err := latmeter.Decompose(resnet.StockResNet18(5, 1), inputSize)
		if err != nil {
			return nil, err
		}
		models["paper"] = dev.Service(g)
		gi := g
		gi.CostScale = latmeter.Int8CostScale
		models["paper@int8"] = dev.Service(gi)
	} else {
		keys, err := serve.ListModels(dir)
		if err != nil {
			return nil, err
		}
		load := serve.DirLoader(dir)
		for _, key := range keys {
			for _, k := range []string{key, key + "@int8"} {
				plan, err := load(k)
				if err != nil {
					return nil, fmt.Errorf("loading %s: %w", k, err)
				}
				g, err := plan.CostGraph(inputSize)
				if err != nil {
					return nil, fmt.Errorf("cost graph for %s: %w", k, err)
				}
				models[k] = dev.Service(g)
			}
		}
	}
	for _, a := range arrivals {
		if _, ok := models[a.Model]; !ok {
			return nil, fmt.Errorf("workload references model %q not in the model set (have %s)",
				a.Model, strings.Join(sortedModelKeys(models), ", "))
		}
	}
	return models, nil
}

func sortedModelKeys(m map[string]latmeter.ServiceModel) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// parseChip parses "CxHxW".
func parseChip(s string) (c, h, w int, err error) {
	parts := strings.Split(s, "x")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("-chip %q: want CxHxW", s)
	}
	dims := make([]int, 3)
	for i, p := range parts {
		dims[i], err = strconv.Atoi(p)
		if err != nil || dims[i] < 1 {
			return 0, 0, 0, fmt.Errorf("-chip %q: bad dimension %q", s, p)
		}
	}
	return dims[0], dims[1], dims[2], nil
}

// parseShares parses "key=weight,key=weight" into normalized shares.
func parseShares(s string) ([]sim.ModelShare, error) {
	var out []sim.ModelShare
	total := 0.0
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 || kv[0] == "" {
			return nil, fmt.Errorf("bad share %q: want key=weight", part)
		}
		wt, err := strconv.ParseFloat(kv[1], 64)
		if err != nil || wt < 0 {
			return nil, fmt.Errorf("bad weight in %q", part)
		}
		out = append(out, sim.ModelShare{Key: kv[0], Weight: wt})
		total += wt
	}
	if len(out) == 0 || total <= 0 {
		return nil, fmt.Errorf("empty share list %q", s)
	}
	for i := range out {
		out[i].Weight /= total
	}
	return out, nil
}

// parseSweep parses "replicas=LO..HI".
func parseSweep(s string) (lo, hi int, err error) {
	val, ok := strings.CutPrefix(s, "replicas=")
	if !ok {
		return 0, 0, fmt.Errorf("-sweep %q: want replicas=LO..HI", s)
	}
	bounds := strings.SplitN(val, "..", 2)
	if len(bounds) != 2 {
		return 0, 0, fmt.Errorf("-sweep %q: want replicas=LO..HI", s)
	}
	if lo, err = strconv.Atoi(bounds[0]); err != nil || lo < 1 {
		return 0, 0, fmt.Errorf("-sweep %q: bad lower bound", s)
	}
	if hi, err = strconv.Atoi(bounds[1]); err != nil || hi < lo {
		return 0, 0, fmt.Errorf("-sweep %q: bad upper bound", s)
	}
	if hi-lo > 63 {
		return 0, 0, fmt.Errorf("-sweep %q: spans %d sizes, max 64", s, hi-lo+1)
	}
	return lo, hi, nil
}
