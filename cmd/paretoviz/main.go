// Command paretoviz runs the full pipeline (1,717 valid trials with the
// surrogate backend) and regenerates the paper's result tables and figures:
// Table 3 (objective ranges), Table 4 (non-dominated solutions), Table 5
// (stock ResNet-18 variants), Figure 3 (scatter + front) and Figure 4
// (radar data). Individual artifacts can be selected with flags; the
// default prints everything.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"drainnas/internal/core"
	"drainnas/internal/nas"
	"drainnas/internal/pareto"
	"drainnas/internal/report"
	"drainnas/internal/surrogate"
)

func main() {
	var (
		table3  = flag.Bool("table3", false, "print only Table 3")
		table4  = flag.Bool("table4", false, "print only Table 4")
		table5  = flag.Bool("table5", false, "print only Table 5")
		figure3 = flag.Bool("figure3", false, "print only Figure 3 (ASCII scatter)")
		figure4 = flag.Bool("figure4", false, "print only Figure 4 (radar data)")
		quality = flag.Bool("quality", false, "print only front-quality indicators (hypervolume, knee point, energy front)")
		csvPath = flag.String("csv", "", "also write Figure 3 data as CSV to this file")
		workers = flag.Int("workers", 0, "trial parallelism (0 = GOMAXPROCS)")
	)
	flag.Parse()
	all := !(*table3 || *table4 || *table5 || *figure3 || *figure4 || *quality)

	eval := nas.SurrogateEvaluator{Model: surrogate.Default()}
	res, err := core.Run(core.Options{
		Evaluator:         eval,
		Workers:           *workers,
		SimulateAttrition: true,
	})
	if err != nil {
		log.Fatalf("paretoviz: %v", err)
	}
	fmt.Printf("pipeline: %d raw trials, %d valid outcomes, %d non-dominated\n\n",
		res.RawTrials, len(res.Trials), len(res.FrontIdx))

	if all || *table3 {
		fmt.Println(report.Table3(res).Render())
	}
	if all || *table4 {
		fmt.Println(report.Table4(res).Render())
	}
	if all || *table5 {
		baselines, err := core.Baselines(nil, eval, 0)
		if err != nil {
			log.Fatalf("paretoviz: %v", err)
		}
		fmt.Println(report.Table5(baselines).Render())
		front := res.NonDominated()
		flags := core.DominatesBaseline(front, baselines, 1.5)
		wins := 0
		for _, ok := range flags {
			if ok {
				wins++
			}
		}
		fmt.Printf("%d/%d non-dominated models beat their stock baseline on latency+memory at comparable accuracy\n\n",
			wins, len(front))
	}
	if all || *figure3 {
		fmt.Println(report.Figure3Scatter(res))
	}
	if all || *figure4 {
		for _, r := range report.Figure4Radars(res) {
			fmt.Println(r.Render())
		}
	}
	if all || *quality {
		pts := res.Points()
		ref := pareto.ReferenceFromWorst(pts, core.Objectives, 0.05)
		var frontPts []pareto.Point
		for _, i := range res.FrontIdx {
			frontPts = append(frontPts, pts[i])
		}
		hv := pareto.Hypervolume(frontPts, core.Objectives, ref)
		knee := pareto.KneePoint(pts, res.FrontIdx, core.Objectives)
		fmt.Printf("front quality: hypervolume %.1f (ref at worst+5%%)\n", hv)
		if knee >= 0 {
			kt := res.Trials[knee]
			fmt.Printf("knee point: acc %.2f%%  lat %.2f ms  mem %.2f MB  (%s)\n",
				kt.Accuracy, kt.LatencyMS, kt.MemoryMB, kt.Config.Key())
		}
		front4 := res.NonDominatedWithEnergy()
		fmt.Printf("energy-extended (4-objective) front: %d members; energy range on 3-obj front: ", len(front4))
		loE, hiE := res.Trials[res.FrontIdx[0]].EnergyMJ, res.Trials[res.FrontIdx[0]].EnergyMJ
		for _, i := range res.FrontIdx {
			e := res.Trials[i].EnergyMJ
			if e < loE {
				loE = e
			}
			if e > hiE {
				hiE = e
			}
		}
		fmt.Printf("%.1f-%.1f mJ\n\n", loE, hiE)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatalf("paretoviz: %v", err)
		}
		defer f.Close()
		if _, err := f.WriteString(report.Figure3Data(res).CSV()); err != nil {
			log.Fatalf("paretoviz: %v", err)
		}
		fmt.Printf("Figure 3 data written to %s\n", *csvPath)
	}
}
