// Quickstart: the full hardware-aware NAS pipeline in one page.
//
// Runs a pruned search space (the paper's §5 suggestion: padding fixed to 1)
// with the surrogate accuracy backend, predicts latency on the four device
// profiles, measures ONNX memory, and prints the Pareto-optimal solutions
// next to the stock ResNet-18 baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"drainnas/internal/core"
	"drainnas/internal/nas"
	"drainnas/internal/report"
	"drainnas/internal/surrogate"
)

func main() {
	// 1. A pruned search space keeps the quickstart fast: one input combo,
	//    padding fixed to 1 → 96 raw trials.
	space := nas.PaperSpace()
	space.Paddings = []int{1}
	combos := []nas.InputCombo{{Channels: 7, Batch: 16}}

	// 2. The surrogate evaluator scores candidate accuracy; swap in
	//    nas.TrainEvaluator to train for real (see examples/nas_search).
	eval := nas.SurrogateEvaluator{Model: surrogate.Default()}

	// 3. Run the pipeline: NAS sweep → latency prediction → memory
	//    measurement → Pareto front.
	res, err := core.Run(core.Options{Space: space, Combos: combos, Evaluator: eval})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evaluated %d trials, %d valid, %d non-dominated\n\n",
		res.RawTrials, len(res.Trials), len(res.FrontIdx))

	// 4. The non-dominated solutions: the models worth deploying.
	fmt.Println(report.Table4(res).Render())

	// 5. Compare against the conventional ResNet-18.
	baselines, err := core.Baselines(combos, eval, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.Table5(baselines).Render())

	// Among the front members with baseline-comparable accuracy, pick the
	// fastest and report its win over the stock model.
	b := baselines[0]
	var best *core.Trial
	for i := range res.NonDominated() {
		t := res.NonDominated()[i]
		if t.Accuracy >= b.Accuracy-0.5 && (best == nil || t.LatencyMS < best.LatencyMS) {
			tt := t
			best = &tt
		}
	}
	if best == nil {
		fmt.Println("no front member matches the baseline's accuracy")
		return
	}
	fmt.Printf("best efficient front member vs stock ResNet-18: %.2fx faster, %.2fx smaller, %+.2f accuracy points\n",
		b.LatencyMS/best.LatencyMS, b.MemoryMB/best.MemoryMB, best.Accuracy-b.Accuracy)
}
