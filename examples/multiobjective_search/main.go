// Multi-objective search: instead of the paper's exhaustive 288-trial grid
// plus post-hoc Pareto extraction, search the space directly with NSGA-II
// and compare fronts and budgets. Also demonstrates the energy-extended
// 4-objective analysis for battery-powered deployments.
//
//	go run ./examples/multiobjective_search
package main

import (
	"fmt"
	"log"

	"drainnas/internal/core"
	"drainnas/internal/nas"
	"drainnas/internal/pareto"
	"drainnas/internal/surrogate"
)

func main() {
	combo := nas.InputCombo{Channels: 7, Batch: 16}
	eval := nas.SurrogateEvaluator{Model: surrogate.Default()}

	// Reference: the exhaustive grid for this input combination.
	grid, err := core.Run(core.Options{Combos: []nas.InputCombo{combo}, Evaluator: eval})
	if err != nil {
		log.Fatal(err)
	}
	gridFront := grid.NonDominated()

	// NSGA-II with a fraction of the evaluations.
	nsga, err := core.NSGA2(core.NSGA2Options{
		Combo: combo, Evaluator: eval,
		Population: 24, Generations: 10, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("grid:    %d evaluations -> %d-point front, best %.2f%%\n",
		grid.RawTrials, len(gridFront), gridFront[0].Accuracy)
	fmt.Printf("NSGA-II: %d evaluations -> %d-point front, best %.2f%%\n\n",
		nsga.Evaluated, len(nsga.Front), nsga.Front[0].Accuracy)

	// Front quality under a shared hypervolume reference.
	gridPts := grid.Points()
	ref := pareto.ReferenceFromWorst(gridPts, core.Objectives, 0.05)
	toPoints := func(trials []core.Trial) []pareto.Point {
		pts := make([]pareto.Point, len(trials))
		for i, t := range trials {
			pts[i] = pareto.Point{ID: i, Values: []float64{t.Accuracy, t.LatencyMS, t.MemoryMB}}
		}
		return pts
	}
	hvGrid := pareto.Hypervolume(toPoints(gridFront), core.Objectives, ref)
	hvNSGA := pareto.Hypervolume(toPoints(nsga.Front), core.Objectives, ref)
	fmt.Printf("hypervolume: grid %.1f, NSGA-II %.1f (%.1f%% captured with %.1f%% of the budget)\n\n",
		hvGrid, hvNSGA, 100*hvNSGA/hvGrid, 100*float64(nsga.Evaluated)/float64(grid.RawTrials))

	fmt.Println("NSGA-II front:")
	for _, t := range nsga.Front {
		c := t.Config
		fmt.Printf("  acc %.2f%%  lat %6.2f ms  mem %.2f MB  energy %6.1f mJ   k=%d s=%d p=%d pool=%d f=%d\n",
			t.Accuracy, t.LatencyMS, t.MemoryMB, t.EnergyMJ,
			c.KernelSize, c.Stride, c.Padding, c.PoolChoice, c.InitialOutputFeature)
	}

	// Knee point: the conventional single pick from the front.
	pts := toPoints(nsga.Front)
	all := make([]int, len(pts))
	for i := range all {
		all[i] = i
	}
	knee := pareto.KneePoint(pts, all, core.Objectives)
	fmt.Printf("\nknee point (best compromise): acc %.2f%%, lat %.2f ms, mem %.2f MB\n",
		nsga.Front[knee].Accuracy, nsga.Front[knee].LatencyMS, nsga.Front[knee].MemoryMB)

	// Energy-extended analysis over the grid's trials.
	front4 := grid.NonDominatedWithEnergy()
	fmt.Printf("\n4-objective (adding energy) front over the grid: %d members (3-objective front: %d)\n",
		len(front4), len(gridFront))
}
