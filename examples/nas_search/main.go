// NAS with real training: synthesizes a miniature drainage-crossing corpus
// (the same four study regions as the paper's Table 1, scaled down), then
// runs architecture search where every candidate is actually trained with
// k-fold cross-validation on the pure-Go CNN engine — the paper's NNI
// protocol end to end, at laptop scale.
//
// The search compares three stem variants and two widths (12 candidates)
// and prints their measured accuracies, then cross-checks the surrogate's
// ordering against the real training results.
//
//	go run ./examples/nas_search
package main

import (
	"fmt"
	"log"
	"time"

	"drainnas/internal/dataset"
	"drainnas/internal/geodata"
	"drainnas/internal/nas"
	"drainnas/internal/resnet"
	"drainnas/internal/surrogate"
)

func main() {
	const channels = 5
	fmt.Println("synthesizing corpus (32px chips, Table 1 counts / 150)...")
	corpus := geodata.GenerateCorpus(geodata.CorpusOptions{ChipSize: 32, Scale: 150, Seed: 42})
	fmt.Print(corpus.Table1(nil))
	x, labels := corpus.Tensors(channels)
	data := dataset.New(x, labels)

	eval := nas.TrainEvaluator{Data: data, Opts: nas.TrainOptions{
		Epochs: 3, Folds: 3, LR: 0.02, Momentum: 0.9, WeightDecay: 1e-4, Seed: 7,
	}}

	// Candidate stems: the paper's non-dominated family (3x3 stride-2),
	// the stock 7x7 stem, and a pooled 3x3 — at two widths.
	var candidates []resnet.Config
	for _, stem := range []struct {
		k, s, p, pool int
	}{
		{3, 2, 1, 0},
		{3, 2, 1, 1},
		{7, 2, 3, 1},
	} {
		for _, width := range []int{16, 32} {
			candidates = append(candidates, resnet.Config{
				Channels: channels, Batch: 16,
				KernelSize: stem.k, Stride: stem.s, Padding: stem.p,
				PoolChoice: stem.pool, KernelSizePool: 3, StridePool: 2,
				InitialOutputFeature: width, NumClasses: 2,
			})
		}
	}

	fmt.Printf("\ntraining %d candidates (3 epochs x 3 folds each)...\n\n", len(candidates))
	start := time.Now()
	results := nas.Experiment(candidates, eval, nas.ExperimentOptions{
		Workers: 2,
		Progress: func(done, total int) {
			fmt.Printf("  trial %d/%d done\n", done, total)
		},
	})
	fmt.Printf("\nsearch finished in %s\n\n", time.Since(start).Round(time.Second))

	fmt.Printf("%-44s %9s %10s\n", "config", "accuracy", "surrogate")
	surro := surrogate.Default()
	for _, r := range results {
		if r.Status != nas.TrialSucceeded {
			log.Printf("trial %d failed: %s", r.ID, r.Err)
			continue
		}
		fmt.Printf("%-44s %8.2f%% %9.2f%%\n", r.Config.Key(), r.Accuracy, surro.Mean(r.Config))
	}

	best, _ := nas.BestByAccuracy(results)
	fmt.Printf("\nbest: %.2f%%  %s\n", best.Accuracy, best.Config.Key())

	// Calibrate the surrogate's linear terms from these measurements — the
	// workflow that produced the library's default coefficients.
	var points []surrogate.CalPoint
	for _, r := range nas.Succeeded(results) {
		points = append(points, surrogate.CalPoint{Config: r.Config, Accuracy: r.Accuracy})
	}
	fitted := surrogate.Model{}.Calibrate(points)
	fmt.Printf("\nsurrogate refit on these runs: base %.2f, K3 effect %+.2f, RMSE %.2f points\n",
		fitted.Base, fitted.K3, fitted.RMSE(points))
}
