// Latency comparison: decomposes the paper's best non-dominated model and
// the stock ResNet-18 into their execution kernels and compares predicted
// latency per device and per kernel — the analysis behind Table 4's
// latency column and the lat_std spread.
//
//	go run ./examples/latency_compare
package main

import (
	"fmt"
	"log"

	"drainnas/internal/latmeter"
	"drainnas/internal/resnet"
)

func main() {
	stock := resnet.StockResNet18(7, 16)
	// The paper's top non-dominated solution (Table 4, row 1 family):
	// 3x3 stride-2 stem, no pooling, width 32.
	lean := resnet.Config{
		Channels: 7, Batch: 16,
		KernelSize: 3, Stride: 2, Padding: 1,
		PoolChoice: 0, InitialOutputFeature: 32, NumClasses: 2,
	}

	fmt.Println("== per-device latency ==")
	fmt.Printf("%-14s %14s %14s %8s\n", "device", "stock (ms)", "lean (ms)", "speedup")
	pStock, err := latmeter.Predict(stock, 0)
	if err != nil {
		log.Fatal(err)
	}
	pLean, err := latmeter.Predict(lean, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range latmeter.Devices() {
		s, l := pStock.PerDevice[d.Name], pLean.PerDevice[d.Name]
		fmt.Printf("%-14s %14.2f %14.2f %7.2fx\n", d.Name, s, l, s/l)
	}
	fmt.Printf("%-14s %14.2f %14.2f %7.2fx\n", "mean", pStock.MeanMS, pLean.MeanMS, pStock.MeanMS/pLean.MeanMS)
	fmt.Printf("%-14s %14.2f %14.2f\n\n", "std", pStock.StdMS, pLean.StdMS)

	gS, _ := latmeter.Decompose(stock, latmeter.DefaultInputSize)
	gL, _ := latmeter.Decompose(lean, latmeter.DefaultInputSize)
	fmt.Printf("== model cost summary ==\n")
	fmt.Printf("%-8s %10s %12s %12s\n", "model", "kernels", "GFLOPs", "MB moved")
	fmt.Printf("%-8s %10d %12.3f %12.1f\n", "stock", len(gS.Kernels), gS.TotalFLOPs()/1e9, gS.TotalBytes()/1e6)
	fmt.Printf("%-8s %10d %12.3f %12.1f\n\n", "lean", len(gL.Kernels), gL.TotalFLOPs()/1e9, gL.TotalBytes()/1e6)

	fmt.Println("== per-kernel breakdown on cortexA76cpu (stock) ==")
	names, lats, err := latmeter.Breakdown(stock, 0, "cortexA76cpu")
	if err != nil {
		log.Fatal(err)
	}
	printTop(names, lats, 8)

	fmt.Println("\n== per-kernel breakdown on cortexA76cpu (lean) ==")
	names, lats, err = latmeter.Breakdown(lean, 0, "cortexA76cpu")
	if err != nil {
		log.Fatal(err)
	}
	printTop(names, lats, 8)
}

// printTop lists the most expensive kernels with their share of the total.
func printTop(names []string, lats []float64, k int) {
	total := 0.0
	for _, l := range lats {
		total += l
	}
	type kv struct {
		name string
		ms   float64
	}
	rows := make([]kv, len(names))
	for i := range names {
		rows[i] = kv{names[i], lats[i]}
	}
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			if rows[j].ms > rows[i].ms {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
	}
	if k > len(rows) {
		k = len(rows)
	}
	for _, r := range rows[:k] {
		fmt.Printf("  %-46s %8.3f ms  (%4.1f%%)\n", r.name, r.ms, 100*r.ms/total)
	}
	fmt.Printf("  total: %.2f ms\n", total)
}
