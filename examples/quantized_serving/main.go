// Quantized serving: compile one PaperSpace model into a float32 plan and
// its int8 post-training-quantized form, run both through warm sessions, and
// print the measured latency distributions (report.LatencyBars) with the
// int8 speedup. The -precision flag selects which plan a serving tier would
// deploy — the same "model@int8" selector servd and the router accept on
// /v1/predict.
//
//	go run ./examples/quantized_serving            # compare fp32 vs int8
//	go run ./examples/quantized_serving -precision int8
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"time"

	"drainnas/internal/infer"
	"drainnas/internal/metrics"
	"drainnas/internal/onnxsize"
	"drainnas/internal/report"
	"drainnas/internal/resnet"
	"drainnas/internal/tensor"
)

const (
	inputSize = 32
	rounds    = 400
)

func main() {
	precision := flag.String("precision", "", `serve only one precision ("fp32" or "int8"); empty compares both`)
	flag.Parse()
	if *precision != "" {
		if _, err := infer.ParsePrecision(*precision); err != nil {
			log.Fatal(err)
		}
	}

	// One of the paper's lean non-dominated configurations, exported to the
	// .dnnx container format the serving tier loads.
	cfg := resnet.Config{
		Channels: 5, Batch: 8,
		KernelSize: 7, Stride: 2, Padding: 3,
		PoolChoice: 1, KernelSizePool: 3, StridePool: 2,
		InitialOutputFeature: 16, NumClasses: 2,
	}
	m, err := resnet.New(cfg, tensor.NewRNG(41))
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := onnxsize.Export(m, &buf); err != nil {
		log.Fatal(err)
	}

	// Compile the float plan, then derive the int8 plan from it: per-channel
	// weight scales, activation ranges calibrated on synthetic geodata chips.
	fplan, err := infer.LoadPlan(bytes.NewReader(buf.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	qplan, err := fplan.QuantizeSynthetic(inputSize)
	if err != nil {
		log.Fatal(err)
	}

	x := tensor.RandNormal(tensor.NewRNG(9), 1, 1, cfg.Channels, inputSize, inputSize)
	means := map[infer.Precision]float64{}
	for _, plan := range []*infer.Plan{fplan, qplan} {
		prec := plan.Precision()
		if *precision != "" && string(prec) != *precision {
			continue
		}
		snap, mean := measure(plan, x)
		means[prec] = mean
		fmt.Println(report.LatencyBars(fmt.Sprintf("model@%s batch-1 forward", prec), snap, 40))
	}
	if f, q := means[infer.PrecisionFP32], means[infer.PrecisionInt8]; f > 0 && q > 0 {
		fmt.Printf("int8 speedup: %.2fx (fp32 %.3fms -> int8 %.3fms per forward)\n", f/q, f, q)
	}
}

// measure runs warm batch-1 forwards and returns the latency histogram the
// serving tier would export on /metrics, plus the mean in milliseconds.
func measure(plan *infer.Plan, x *tensor.Tensor) (metrics.HistogramSnapshot, float64) {
	sess := plan.NewSession()
	if _, err := sess.Forward(x); err != nil {
		log.Fatal(err)
	}
	hist := metrics.NewHistogram()
	var total time.Duration
	for i := 0; i < rounds; i++ {
		start := time.Now()
		if _, err := sess.Forward(x); err != nil {
			log.Fatal(err)
		}
		d := time.Since(start)
		hist.Observe(d)
		total += d
	}
	return hist.Snapshot(), total.Seconds() * 1000 / rounds
}
