// Pareto analysis: the full paper reproduction in one program. Runs all
// 1,728 raw trials (1,717 valid after simulated attrition) with the
// surrogate backend, measures the three objectives, and prints Tables 3-5
// plus the Figure 3 scatter and Figure 4 radar data, together with the
// paper-vs-measured comparison.
//
//	go run ./examples/pareto_analysis
package main

import (
	"fmt"
	"log"
	"time"

	"drainnas/internal/core"
	"drainnas/internal/nas"
	"drainnas/internal/pareto"
	"drainnas/internal/report"
	"drainnas/internal/surrogate"
)

func main() {
	eval := nas.SurrogateEvaluator{Model: surrogate.Default()}
	start := time.Now()
	res, err := core.Run(core.Options{Evaluator: eval, SimulateAttrition: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full sweep: %d raw trials -> %d valid outcomes -> %d non-dominated (%s)\n",
		res.RawTrials, len(res.Trials), len(res.FrontIdx), time.Since(start).Round(time.Millisecond))
	fmt.Printf("paper:      1728 raw trials -> 1717 valid outcomes -> 5 non-dominated\n\n")

	fmt.Println(report.Table3(res).Render())
	fmt.Println("paper Table 3: accuracy 76.19-96.13 %, latency 8.13-249.56 ms, memory 11.18-44.69 MB")
	fmt.Println()
	fmt.Println(report.Table4(res).Render())

	baselines, err := core.Baselines(nil, eval, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.Table5(baselines).Render())

	front := res.NonDominated()
	flags := core.DominatesBaseline(front, baselines, 1.5)
	for i, f := range front {
		verdict := "trade-off vs baseline"
		if flags[i] {
			verdict = "beats baseline on latency+memory at comparable accuracy"
		}
		fmt.Printf("  front[%d] ch=%d b=%d: %s\n", i, f.Config.Channels, f.Config.Batch, verdict)
	}
	fmt.Println()

	fmt.Println(report.Figure3Scatter(res))

	fmt.Println("Figure 4 radar data (normalized axes):")
	for _, r := range report.Figure4Radars(res) {
		fmt.Println(r.Render())
	}

	// Successive fronts: how deep the dominance structure goes beyond the
	// paper's single front.
	fronts := pareto.Fronts(res.Points(), core.Objectives)
	fmt.Printf("dominance depth: %d successive fronts; first three sizes: ", len(fronts))
	for i := 0; i < 3 && i < len(fronts); i++ {
		fmt.Printf("%d ", len(fronts[i]))
	}
	fmt.Println()
}
