module drainnas

go 1.22
