// Benchmark harness: one benchmark per table and figure of the paper, plus
// ablations for the design choices called out in DESIGN.md. Paper-shaped
// quantities (objective ranges, front size, predictor accuracy) are emitted
// as custom benchmark metrics so `go test -bench` output doubles as the
// reproduction record consumed by EXPERIMENTS.md.
package drainnas

import (
	"testing"

	"drainnas/internal/core"
	"drainnas/internal/dataset"
	"drainnas/internal/geodata"
	"drainnas/internal/latmeter"
	"drainnas/internal/nas"
	"drainnas/internal/nn"
	"drainnas/internal/pareto"
	"drainnas/internal/report"
	"drainnas/internal/resnet"
	"drainnas/internal/surrogate"
	"drainnas/internal/tensor"
)

func surrogateEval() nas.Evaluator {
	return nas.SurrogateEvaluator{Model: surrogate.Default()}
}

func fullSweep(b *testing.B) *core.Result {
	b.Helper()
	res, err := core.Run(core.Options{Evaluator: surrogateEval(), SimulateAttrition: true})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTable1_DatasetGeneration regenerates the Table 1 corpus
// (scaled 1/50) and reports its per-class balance.
func BenchmarkTable1_DatasetGeneration(b *testing.B) {
	var corpus *geodata.Corpus
	for i := 0; i < b.N; i++ {
		corpus = geodata.GenerateCorpus(geodata.CorpusOptions{ChipSize: 64, Scale: 50, Seed: 1})
	}
	counts := corpus.CountByRegion()
	b.ReportMetric(float64(len(corpus.Chips)), "chips")
	b.ReportMetric(float64(counts["Nebraska"][0]), "nebraska_true")
	b.ReportMetric(100*corpus.Balance(), "balance_pct")
	b.ReportMetric(float64(geodata.TotalSamples()), "paper_total_chips")
}

// BenchmarkFigure1_ModelBuild constructs the two Figure 1 input variants
// of the stock ResNet-18 and reports their parameter counts.
func BenchmarkFigure1_ModelBuild(b *testing.B) {
	rng := tensor.NewRNG(1)
	var m5, m7 *resnet.Model
	for i := 0; i < b.N; i++ {
		var err error
		if m5, err = resnet.New(resnet.StockResNet18(5, 8), rng); err != nil {
			b.Fatal(err)
		}
		if m7, err = resnet.New(resnet.StockResNet18(7, 8), rng); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m5.NumParams()), "params_5ch")
	b.ReportMetric(float64(m7.NumParams()), "params_7ch")
}

// BenchmarkFigure2_SearchSpace enumerates the full search space and
// reports the paper's counting invariants (288 per combo, 1,728 raw,
// 1,717 valid).
func BenchmarkFigure2_SearchSpace(b *testing.B) {
	space := nas.PaperSpace()
	combos := nas.PaperInputCombos()
	var raw []resnet.Config
	var valid []resnet.Config
	for i := 0; i < b.N; i++ {
		raw = space.EnumerateAll(combos)
		valid, _ = nas.ValidTrials(raw)
	}
	b.ReportMetric(float64(space.RawSize()), "per_combo")
	b.ReportMetric(float64(len(raw)), "raw_trials")
	b.ReportMetric(float64(len(valid)), "valid_trials")
	b.ReportMetric(float64(nas.PaperValidTrialCount), "paper_valid_trials")
}

// BenchmarkTable2_PredictorAccuracy validates the four latency predictors
// against their simulated devices and reports the within-±10% rates
// (paper: 99.00 / 99.10 / 99.00 / 83.40 %).
func BenchmarkTable2_PredictorAccuracy(b *testing.B) {
	var graphs []latmeter.Graph
	var keys []string
	for _, cfg := range nas.PaperSpace().Enumerate(nas.InputCombo{Channels: 5, Batch: 8}) {
		g, err := latmeter.Decompose(cfg, latmeter.DefaultInputSize)
		if err != nil {
			b.Fatal(err)
		}
		graphs = append(graphs, g)
		keys = append(keys, cfg.Key())
	}
	within := map[string]float64{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range latmeter.Devices() {
			sim := latmeter.NewDeviceSimulator(d, 2023)
			within[d.Name] = sim.Validate(graphs, keys, 8000, 7).Within10Pct
		}
	}
	b.ReportMetric(100*within["cortexA76cpu"], "cortexA76cpu_pct")
	b.ReportMetric(100*within["adreno640gpu"], "adreno640gpu_pct")
	b.ReportMetric(100*within["adreno630gpu"], "adreno630gpu_pct")
	b.ReportMetric(100*within["myriadvpu"], "myriadvpu_pct")
}

// BenchmarkTable3_ObjectiveRanges runs the full 1,717-trial pipeline and
// reports the objective ranges (paper: acc 76.19-96.13 %, lat 8.13-249.56
// ms, mem 11.18-44.69 MB).
func BenchmarkTable3_ObjectiveRanges(b *testing.B) {
	var mins, maxs []float64
	for i := 0; i < b.N; i++ {
		res := fullSweep(b)
		mins, maxs = res.ObjectiveRanges()
	}
	b.ReportMetric(mins[0], "acc_min_pct")
	b.ReportMetric(maxs[0], "acc_max_pct")
	b.ReportMetric(mins[1], "lat_min_ms")
	b.ReportMetric(maxs[1], "lat_max_ms")
	b.ReportMetric(mins[2], "mem_min_mb")
	b.ReportMetric(maxs[2], "mem_max_mb")
}

// BenchmarkTable4_NonDominated reports the non-dominated set of the full
// sweep (paper: 5 solutions, all kernel 3, width 32, memory 11.18 MB).
func BenchmarkTable4_NonDominated(b *testing.B) {
	var front []core.Trial
	for i := 0; i < b.N; i++ {
		front = fullSweep(b).NonDominated()
	}
	b.ReportMetric(float64(len(front)), "front_size")
	b.ReportMetric(5, "paper_front_size")
	allK3, allW32 := 1.0, 1.0
	for _, f := range front {
		if f.Config.KernelSize != 3 {
			allK3 = 0
		}
		if f.Config.InitialOutputFeature != 32 {
			allW32 = 0
		}
	}
	b.ReportMetric(allK3, "all_kernel3")
	b.ReportMetric(allW32, "all_width32")
	b.ReportMetric(front[0].Accuracy, "best_acc_pct")
	b.ReportMetric(front[0].MemoryMB, "front_mem_mb")
}

// BenchmarkTable5_BaselineVariants evaluates the six stock ResNet-18
// variants (paper: acc 89.67-95.37 %, lat 31.91/32.46 ms, mem
// 44.71/44.73 MB).
func BenchmarkTable5_BaselineVariants(b *testing.B) {
	var baselines []core.Trial
	for i := 0; i < b.N; i++ {
		var err error
		baselines, err = core.Baselines(nil, surrogateEval(), 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(baselines[0].LatencyMS, "lat5ch_ms")
	b.ReportMetric(baselines[3].LatencyMS, "lat7ch_ms")
	b.ReportMetric(baselines[0].LatStdMS, "latstd5ch_ms")
	b.ReportMetric(baselines[0].MemoryMB, "mem5ch_mb")
	b.ReportMetric(baselines[3].MemoryMB, "mem7ch_mb")
	b.ReportMetric(baselines[4].Accuracy, "acc7ch_b16_pct")
}

// BenchmarkFigure3_ParetoFront times the Pareto front extraction over the
// full sweep's 1,717 points and reports the scatter's front share.
func BenchmarkFigure3_ParetoFront(b *testing.B) {
	res := fullSweep(b)
	pts := res.Points()
	var front []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		front = pareto.NonDominated(pts, core.Objectives)
	}
	b.ReportMetric(float64(len(pts)), "points")
	b.ReportMetric(float64(len(front)), "front_size")
}

// BenchmarkFigure4_RadarData builds the radar-plot data of the
// non-dominated solutions.
func BenchmarkFigure4_RadarData(b *testing.B) {
	res := fullSweep(b)
	b.ResetTimer()
	var radars []report.Radar
	for i := 0; i < b.N; i++ {
		radars = report.Figure4Radars(res)
	}
	b.ReportMetric(float64(len(radars)), "radars")
	b.ReportMetric(float64(len(radars[0].Axes)), "axes")
}

// BenchmarkNASTrialThroughput measures the parallel experiment runner's
// trial throughput with the surrogate backend (§5's wall-time discussion:
// the paper's NNI runs took 9-29 hours on an A100).
func BenchmarkNASTrialThroughput(b *testing.B) {
	configs := nas.PaperSpace().EnumerateAll(nas.PaperInputCombos())
	eval := surrogateEval()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nas.Experiment(configs, eval, nas.ExperimentOptions{})
	}
	b.ReportMetric(float64(len(configs)), "trials")
}

// BenchmarkAblation_PrunedSearchSpace reruns the sweep with padding fixed
// to 1 (the paper's §5 pruning suggestion) and reports how much of the
// front survives.
func BenchmarkAblation_PrunedSearchSpace(b *testing.B) {
	space := nas.PaperSpace()
	space.Paddings = []int{1}
	var res *core.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.Run(core.Options{Space: space, Evaluator: surrogateEval()})
		if err != nil {
			b.Fatal(err)
		}
	}
	full := fullSweep(b)
	b.ReportMetric(float64(res.RawTrials), "pruned_trials")
	b.ReportMetric(float64(full.RawTrials), "full_trials")
	b.ReportMetric(float64(len(res.FrontIdx)), "pruned_front")
	b.ReportMetric(res.NonDominated()[0].Accuracy, "pruned_best_acc")
	b.ReportMetric(full.NonDominated()[0].Accuracy, "full_best_acc")
}

// BenchmarkAblation_Strategies compares grid, random, and regularized
// evolution on best-accuracy-found per evaluation budget.
func BenchmarkAblation_Strategies(b *testing.B) {
	space := nas.PaperSpace()
	combo := nas.InputCombo{Channels: 7, Batch: 16}
	eval := surrogateEval()
	bestOf := func(cfgs []resnet.Config) float64 {
		res := nas.Experiment(cfgs, eval, nas.ExperimentOptions{})
		best, _ := nas.BestByAccuracy(res)
		return best.Accuracy
	}
	var gridBest, randBest, evoBest float64
	var randN, evoN int
	for i := 0; i < b.N; i++ {
		gridCfgs := nas.GridStrategy{}.Select(space, combo)
		gridBest = bestOf(gridCfgs)
		randCfgs := nas.RandomStrategy{N: 60, Seed: 9}.Select(space, combo)
		randN = len(randCfgs)
		randBest = bestOf(randCfgs)
		evo := nas.EvolutionStrategy{Population: 12, Cycles: 48, SampleSize: 3, Seed: 9, Evaluator: eval}
		evoCfgs := evo.Select(space, combo)
		evoN = len(evoCfgs)
		evoBest = bestOf(evoCfgs)
	}
	b.ReportMetric(gridBest, "grid288_best")
	b.ReportMetric(randBest, "random_best")
	b.ReportMetric(float64(randN), "random_trials")
	b.ReportMetric(evoBest, "evolution_best")
	b.ReportMetric(float64(evoN), "evolution_trials")
}

// BenchmarkAblation_NDSNaiveVsFast compares the naive O(n²) front
// extraction with the NSGA-II fast non-dominated sort on the sweep's
// points.
func BenchmarkAblation_NDSNaiveVsFast(b *testing.B) {
	res := fullSweep(b)
	pts := res.Points()
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pareto.NonDominated(pts, core.Objectives)
		}
	})
	b.Run("fast-fronts", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pareto.Fronts(pts, core.Objectives)
		}
	})
}

// BenchmarkAblation_ConvParallelism measures the training engine's
// convolution against its serial lower bound, the design choice behind the
// goroutine-parallel batch loop.
func BenchmarkAblation_ConvParallelism(b *testing.B) {
	rng := tensor.NewRNG(1)
	in := tensor.RandNormal(rng, 1, 16, 32, 32, 32)
	w := tensor.RandNormal(rng, 0.1, 64, 32, 3, 3)
	// Per conv: 2*C*KH*KW flops for each of N*OC*OH*OW outputs.
	convGF := func(n int) float64 { return 2 * float64(n) * 64 * 32 * 32 * 32 * 3 * 3 / 1e9 }
	b.Run("batch16", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.Conv2D(in, w, nil, 1, 1)
		}
		b.ReportMetric(convGF(16)*float64(b.N)/b.Elapsed().Seconds(), "gflops")
	})
	single := tensor.RandNormal(rng, 1, 1, 32, 32, 32)
	b.Run("batch1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.Conv2D(single, w, nil, 1, 1)
		}
		b.ReportMetric(convGF(1)*float64(b.N)/b.Elapsed().Seconds(), "gflops")
	})
}

// BenchmarkTrainingStep measures one full forward+backward+update step of
// the paper's best non-dominated architecture on a synthetic batch — the
// unit of work the NAS training backend repeats.
func BenchmarkTrainingStep(b *testing.B) {
	cfg := resnet.Config{Channels: 5, Batch: 8, KernelSize: 3, Stride: 2, Padding: 1,
		PoolChoice: 0, InitialOutputFeature: 32, NumClasses: 2}
	rng := tensor.NewRNG(1)
	model, err := resnet.New(cfg, rng)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.RandNormal(rng, 1, cfg.Batch, cfg.Channels, 32, 32)
	labels := []int{0, 1, 0, 1, 0, 1, 0, 1}
	opt := nn.NewSGD(model.Params(), 0.01, 0.9, 1e-4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logits := model.Forward(x, true)
		_, grad := nn.CrossEntropy(logits, labels)
		nn.ZeroGrad(model.Params())
		model.Backward(grad)
		opt.Step()
	}
	b.ReportMetric(float64(model.NumParams()), "params")
}

// BenchmarkLatencyPrediction measures single-model latency prediction cost
// (all four devices), the inner operation of the Table 3/4 measurement
// phase.
func BenchmarkLatencyPrediction(b *testing.B) {
	cfg := resnet.StockResNet18(5, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := latmeter.Predict(cfg, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCorpusTraining measures a one-epoch real-training pass over a
// miniature corpus — the cost unit behind the paper's 9h20m / 29h3m NNI
// wall times (§5), at our reduced scale.
func BenchmarkCorpusTraining(b *testing.B) {
	corpus := geodata.GenerateCorpus(geodata.CorpusOptions{ChipSize: 32, Scale: 400, Seed: 3})
	x, labels := corpus.Tensors(5)
	data := dataset.New(x, labels)
	stats := data.ComputeStats()
	data.Normalize(stats)
	cfg := resnet.Config{Channels: 5, Batch: 8, KernelSize: 3, Stride: 2, Padding: 1,
		PoolChoice: 1, KernelSizePool: 3, StridePool: 2, InitialOutputFeature: 16, NumClasses: 2}
	rng := tensor.NewRNG(2)
	model, err := resnet.New(cfg, rng)
	if err != nil {
		b.Fatal(err)
	}
	opt := nn.NewSGD(model.Params(), 0.02, 0.9, 1e-4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, idxs := range data.Batches(cfg.Batch, rng) {
			bx, by := data.Batch(idxs)
			logits := model.Forward(bx, true)
			_, grad := nn.CrossEntropy(logits, by)
			nn.ZeroGrad(model.Params())
			model.Backward(grad)
			opt.Step()
		}
	}
	b.ReportMetric(float64(data.Len()), "samples_per_epoch")
}

// BenchmarkHypervolume measures the WFG hypervolume of the full sweep's
// Pareto front, the scalar front-quality indicator, and reports it.
func BenchmarkHypervolume(b *testing.B) {
	res := fullSweep(b)
	pts := res.Points()
	ref := pareto.ReferenceFromWorst(pts, core.Objectives, 0.05)
	var frontPts []pareto.Point
	for _, i := range res.FrontIdx {
		frontPts = append(frontPts, pts[i])
	}
	var hv float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hv = pareto.Hypervolume(frontPts, core.Objectives, ref)
	}
	b.ReportMetric(hv, "front_hv")
	b.ReportMetric(float64(len(frontPts)), "front_size")
}

// BenchmarkAblation_BNFolding compares eval-mode inference of the training
// model against its BN-folded deployment form — the transform the fused
// conv-bn latency kernels assume.
func BenchmarkAblation_BNFolding(b *testing.B) {
	cfg := resnet.Config{Channels: 5, Batch: 8, KernelSize: 3, Stride: 2, Padding: 1,
		PoolChoice: 0, InitialOutputFeature: 32, NumClasses: 2}
	rng := tensor.NewRNG(1)
	model, err := resnet.New(cfg, rng)
	if err != nil {
		b.Fatal(err)
	}
	fused, err := resnet.Fuse(model)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.RandNormal(rng, 1, 1, 5, 64, 64)
	b.Run("training-model-eval", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			model.Forward(x, false)
		}
	})
	b.Run("fused-deployment", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fused.Forward(x)
		}
	})
}

// BenchmarkAblation_SuccessiveHalving compares grid search with
// multi-fidelity successive halving on found-accuracy per budget.
func BenchmarkAblation_SuccessiveHalving(b *testing.B) {
	space := nas.PaperSpace()
	combo := nas.InputCombo{Channels: 7, Batch: 16}
	configs := space.Enumerate(combo)
	eval := nas.SurrogateEvaluator{Model: surrogate.Default()}
	var sh nas.SHResult
	for i := 0; i < b.N; i++ {
		var err error
		sh, err = nas.SuccessiveHalving(configs, eval, nas.SHOptions{Eta: 2, MinBudget: 0.25})
		if err != nil {
			b.Fatal(err)
		}
	}
	grid := nas.Experiment(configs, eval, nas.ExperimentOptions{})
	gridBest, _ := nas.BestByAccuracy(grid)
	b.ReportMetric(sh.TotalBudget, "sh_budget_fullevals")
	b.ReportMetric(float64(len(configs)), "grid_budget_fullevals")
	b.ReportMetric(sh.Survivors[0].Accuracy, "sh_best")
	b.ReportMetric(gridBest.Accuracy, "grid_best")
}

// BenchmarkTileSegmentation measures the region-tile workflow: synthesize
// a watershed raster, compute its hydrography, and segment chips — the
// paper's data-preparation pipeline.
func BenchmarkTileSegmentation(b *testing.B) {
	var nPos, nNeg int
	for i := 0; i < b.N; i++ {
		rng := tensor.NewRNG(uint64(i) + 1)
		tile := geodata.GenerateTile(geodata.StudyRegions[0], 192, 3, 2, rng)
		pos, neg := tile.ExtractChips(48, 8, rng)
		nPos, nNeg = len(pos), len(neg)
	}
	b.ReportMetric(float64(nPos), "positives")
	b.ReportMetric(float64(nNeg), "negatives")
}
