package drainnas

import (
	"bytes"
	"math"
	"testing"

	"drainnas/internal/core"
	"drainnas/internal/dataset"
	"drainnas/internal/geodata"
	"drainnas/internal/latmeter"
	"drainnas/internal/nas"
	"drainnas/internal/nn"
	"drainnas/internal/onnxsize"
	"drainnas/internal/pareto"
	"drainnas/internal/profiler"
	"drainnas/internal/resnet"
	"drainnas/internal/surrogate"
	"drainnas/internal/tensor"
)

// TestEndToEndTrainingPipeline runs the complete system with the real
// training backend at miniature scale: synthesize a corpus, search a tiny
// space with k-fold training, attach latency and memory objectives, and
// extract the Pareto front. This is the integration path the paper's whole
// methodology describes, exercised for real.
func TestEndToEndTrainingPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("real training is slow")
	}
	corpus := geodata.GenerateCorpus(geodata.CorpusOptions{ChipSize: 32, Scale: 150, Seed: 5})
	x, labels := corpus.Tensors(5)
	data := dataset.New(x, labels)

	eval := nas.TrainEvaluator{Data: data, Opts: nas.TrainOptions{
		Epochs: 3, Folds: 2, LR: 0.02, Momentum: 0.9, WeightDecay: 1e-4, Seed: 3,
		Augment: dataset.AugmentOptions{FlipH: true, FlipV: true},
	}}
	space := nas.Space{
		KernelSizes: []int{3, 7}, Strides: []int{2}, Paddings: []int{1},
		PoolChoices: []int{1}, KernelSizePools: []int{3}, StridePools: []int{2},
		InitialFeatures: []int{16}, NumClasses: 2,
	}
	prof := profiler.New()
	configs := space.Enumerate(nas.InputCombo{Channels: 5, Batch: 16})
	if len(configs) != 2 {
		t.Fatalf("tiny space size %d", len(configs))
	}
	results := nas.Experiment(configs, eval, nas.ExperimentOptions{Workers: 2, Profiler: prof})

	// Plumbing assertions per trial; the learning assertion applies to the
	// best trial only (the 7x7 stem underfits badly at this tiny budget,
	// which is itself the paper's point about lean stems).
	best, ok := nas.BestByAccuracy(results)
	if !ok || best.Accuracy < 60 {
		t.Errorf("best trained config only reached %.1f%%", best.Accuracy)
	}
	var trials []core.Trial
	for _, r := range nas.Succeeded(results) {
		trial, err := core.Measure(r.Config, r.Accuracy, 0)
		if err != nil {
			t.Fatal(err)
		}
		if trial.LatencyMS <= 0 || trial.MemoryMB <= 0 {
			t.Fatalf("objectives missing: %+v", trial)
		}
		trials = append(trials, trial)
	}
	if len(trials) != 2 {
		t.Fatalf("trials %d", len(trials))
	}
	pts := make([]pareto.Point, len(trials))
	for i, tr := range trials {
		pts[i] = pareto.Point{ID: i, Values: []float64{tr.Accuracy, tr.LatencyMS, tr.MemoryMB}}
	}
	if front := pareto.NonDominated(pts, core.Objectives); len(front) == 0 {
		t.Fatal("empty front")
	}
	// Profiler saw both trials.
	sum := prof.Summary()
	if len(sum) == 0 || sum[0].Count != 2 {
		t.Fatalf("profiler summary %+v", sum)
	}
}

// TestTrainedModelDeploymentPath trains one model briefly, fuses its BNs,
// exports it through the ONNX-like container, decodes it back, and checks
// the file size matches the memory objective — the full deployment story.
func TestTrainedModelDeploymentPath(t *testing.T) {
	if testing.Short() {
		t.Skip("training is slow")
	}
	corpus := geodata.GenerateCorpus(geodata.CorpusOptions{ChipSize: 32, Scale: 400, Seed: 6})
	x, labels := corpus.Tensors(5)
	data := dataset.New(x, labels)
	stats := data.ComputeStats()
	data.Normalize(stats)

	cfg := resnet.Config{Channels: 5, Batch: 8, KernelSize: 3, Stride: 2, Padding: 1,
		PoolChoice: 1, KernelSizePool: 3, StridePool: 2, InitialOutputFeature: 16, NumClasses: 2}
	rng := tensor.NewRNG(7)
	model, err := resnet.New(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	trainBatches(t, model, data, cfg.Batch, 8, rng)

	fused, err := resnet.Fuse(model)
	if err != nil {
		t.Fatal(err)
	}
	xb, _ := data.Batch([]int{0, 1, 2})
	want := model.Forward(xb, false)
	got := fused.Forward(xb)
	for i := range got.Data() {
		if math.Abs(float64(got.Data()[i]-want.Data()[i])) > 1e-2*(1+math.Abs(float64(want.Data()[i]))) {
			t.Fatalf("fused logit %d: %v vs %v", i, got.Data()[i], want.Data()[i])
		}
	}

	var buf bytes.Buffer
	n, err := onnxsize.Export(model, &buf)
	if err != nil {
		t.Fatal(err)
	}
	sz, _ := onnxsize.SizeBytes(cfg)
	if n != sz {
		t.Fatalf("export %d bytes, SizeBytes %d", n, sz)
	}
	dec, err := onnxsize.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Graph.Nodes) == 0 {
		t.Fatal("decoded graph empty")
	}
}

// TestSurrogateAgreesWithLatencyOrdering cross-checks the two measurement
// axes: the latency predictor and the memory measure must order the
// paper's lean vs stock models the same way on every device.
func TestSurrogateAgreesWithLatencyOrdering(t *testing.T) {
	lean := resnet.Config{Channels: 5, Batch: 8, KernelSize: 3, Stride: 2, Padding: 1,
		PoolChoice: 0, InitialOutputFeature: 32, NumClasses: 2}
	stock := resnet.StockResNet18(5, 8)
	pLean, err := latmeter.Predict(lean, 0)
	if err != nil {
		t.Fatal(err)
	}
	pStock, _ := latmeter.Predict(stock, 0)
	for _, d := range latmeter.Devices() {
		if pLean.PerDevice[d.Name] >= pStock.PerDevice[d.Name] {
			t.Fatalf("%s: lean %.2f not faster than stock %.2f",
				d.Name, pLean.PerDevice[d.Name], pStock.PerDevice[d.Name])
		}
	}
	mLean, _ := onnxsize.SizeMB(lean)
	mStock, _ := onnxsize.SizeMB(stock)
	if mLean >= mStock {
		t.Fatal("lean model not smaller")
	}
	sLean := surrogate.Default().Mean(lean)
	sStock := surrogate.Default().Mean(stock)
	if sLean <= sStock-2 {
		t.Fatalf("surrogate puts lean far below stock: %.2f vs %.2f", sLean, sStock)
	}
}

// trainBatches runs a few SGD steps to move weights and BN stats.
func trainBatches(t *testing.T, m *resnet.Model, d *dataset.Dataset, batch, steps int, rng *tensor.RNG) {
	t.Helper()
	opt := nn.NewSGD(m.Params(), 0.02, 0.9, 1e-4)
	count := 0
	for _, idxs := range d.Batches(batch, rng) {
		if count >= steps {
			break
		}
		x, labels := d.Batch(idxs)
		logits := m.Forward(x, true)
		_, grad := nn.CrossEntropy(logits, labels)
		nn.ZeroGrad(m.Params())
		m.Backward(grad)
		opt.Step()
		count++
	}
}
