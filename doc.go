// Package drainnas reproduces "Pareto Optimization of CNN Models via
// Hardware-Aware Neural Architecture Search for Drainage Crossing
// Classification on Resource-Limited Devices" (SC-W 2023) as a pure-Go
// system: a parallel CNN training engine, a synthetic HRDEM/orthophoto
// drainage-crossing corpus, an NNI-style NAS driver, an nn-Meter-style
// kernel latency predictor for four edge devices, ONNX-size memory
// measurement, and three-objective Pareto front analysis.
//
// The root package holds the benchmark harness (bench_test.go) that
// regenerates every table and figure of the paper; the implementation
// lives under internal/ and the public entry points are the cmd/ tools and
// examples/.
package drainnas
