# Tier-1 verification plus the hardening suites added with the serving
# layer. `make ci` is the full gate; individual targets match its stages.

GO ?= go
FUZZTIME ?= 5s

.PHONY: ci vet build test race fuzz race-all

ci: vet build test race fuzz

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The packages with dedicated concurrency suites. `race-all` widens this to
# every internal package (slower; the numeric packages dominate).
race:
	$(GO) test -race ./internal/serve/... ./internal/profiler/... ./internal/parallel/... ./internal/metrics/...

race-all:
	$(GO) test -race ./internal/...

# Short fuzz smoke runs: the container decoder and the runtime loader must
# reject arbitrary input without panicking.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzDecode$$ -fuzztime=$(FUZZTIME) ./internal/onnxsize
	$(GO) test -run='^$$' -fuzz=FuzzDecodeRoundTrip -fuzztime=$(FUZZTIME) ./internal/onnxsize
	$(GO) test -run='^$$' -fuzz=FuzzLoad -fuzztime=$(FUZZTIME) ./internal/infer
