# Tier-1 verification plus the hardening suites added with the serving
# layer. `make ci` is the full gate; individual targets match its stages.

GO ?= go
FUZZTIME ?= 5s

.PHONY: ci vet build test race fuzz race-all crash-resume bench-kernels bench-infer bench-smoke obs-smoke router-smoke tenant-smoke scan-smoke quant-parity sim-replay

ci: vet build test race crash-resume fuzz bench-smoke obs-smoke router-smoke tenant-smoke scan-smoke quant-parity sim-replay

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The packages with dedicated concurrency suites. `race-all` widens this to
# every internal package (slower; the numeric packages dominate).
race:
	$(GO) test -race ./internal/serve/... ./internal/route/... ./internal/tenant/... ./internal/httpx/... ./internal/infer/... ./internal/profiler/... ./internal/parallel/... ./internal/metrics/... ./internal/tensor/... ./internal/scan/... ./cmd/servd/... ./cmd/router/...

race-all:
	$(GO) test -race ./internal/...

# Sweep durability gate: the crash/resume, streaming-journal, cancellation
# and retry suites under the race detector, including the binary-level
# SIGINT → drain → -resume test.
crash-resume:
	$(GO) test -race -run 'CrashResume|Journal|MapCtx|Retry|Resume|Sweep|Interrupt' \
		./internal/nas ./internal/parallel ./internal/metrics ./cmd/nascli

# Observability smoke: build the real servd binary, scrape GET /metrics over
# HTTP, and hold the page to the exposition validator (line grammar, family
# contiguity, histogram bucket invariants); also exercises the SIGTERM drain.
obs-smoke:
	$(GO) test -race -run 'ServdMetricsSmoke|ServdGracefulShutdown|MetricsEndpoint' ./cmd/servd

# Routing-tier smoke: build the real router binary over three in-process
# replicas, push 200 mixed-model requests through it, require non-zero
# traffic on every replica, and drain cleanly on SIGTERM. Also exercises
# the plan→cost-graph SJF seeding path end to end.
router-smoke:
	$(GO) test -race -count=1 -run 'RouterSmoke|RouterBinarySJFSeeding' ./cmd/router

# Multi-tenant edge gate: boot the real servd binary (built -race) with a
# key file, assert 401 for bad keys and 429 quota_exceeded for a dry
# bucket, require full compliant-tenant goodput under a two-tenant flood,
# complete a live-dashboard WebSocket handshake + SSE stream, and run the
# in-process tier suites (fairness pin included) under the race detector.
tenant-smoke:
	$(GO) test -race -count=1 -run 'ServdTenantSmoke|RouterTenantTier' ./cmd/servd ./cmd/router
	$(GO) test -race -count=1 ./internal/tenant

# Whole-watershed scan gate: a race-built servd replica behind a
# race-built router, a small synthetic watershed scanned end to end
# through the /v1/scan job API (ordered gapless event stream, nonzero
# crossings, byte-identical heat map across two runs, clean drain after a
# mid-scan cancel, clean SIGTERM exits), plus the in-process scan engine
# and API-surface golden suites under the race detector.
scan-smoke:
	$(GO) test -race -count=1 -run 'RouterScanSmoke|APISurface|Readme' ./cmd/router ./cmd/servd ./internal/api
	$(GO) test -race -count=1 ./internal/scan

# Simulator determinism + replay gate: a seeded simulation must render
# byte-identically across runs, a recorded trace must replay to the exact
# report of the run that produced it (in the sim package and through the
# capsim CLI and servd's -trace recorder), and calibrating against the
# checked-in /v1/stats fixture must land within 15% MAPE.
sim-replay:
	$(GO) test -race -count=1 \
		-run 'SimDeterminism|TraceRoundTrip|Replay|Calibration|Capsim|TraceRecording|Fixture' \
		./internal/sim ./cmd/capsim ./cmd/servd

# Int8 parity gate: randomized PaperSpace models trained on a miniature
# drainage corpus, quantized plans held to the documented logit-error and
# top-1-agreement bounds against the float oracle.
quant-parity:
	$(GO) test -count=1 -run 'TestQuantParity' ./internal/infer

# Short fuzz smoke runs: the container decoder and the runtime loader must
# reject arbitrary input without panicking, and the int8 quantizer must
# round-trip arbitrary (value, scale) pairs within its saturation bounds.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzDecode$$ -fuzztime=$(FUZZTIME) ./internal/onnxsize
	$(GO) test -run='^$$' -fuzz=FuzzDecodeRoundTrip -fuzztime=$(FUZZTIME) ./internal/onnxsize
	$(GO) test -run='^$$' -fuzz=FuzzLoad -fuzztime=$(FUZZTIME) ./internal/infer
	$(GO) test -run='^$$' -fuzz=FuzzQuantizeRoundTrip -fuzztime=$(FUZZTIME) ./internal/tensor

# Kernel benchmark selections: the GEMM shapes, the conv/training ablations,
# and the batch-1 fused-inference path.
KBENCH_TENSOR = ^(BenchmarkMM256|BenchmarkMM512|BenchmarkMMWide|BenchmarkGEMMKernelOnly)$$
KBENCH_ROOT   = ^(BenchmarkAblation_ConvParallelism|BenchmarkTrainingStep|BenchmarkAblation_BNFolding)$$
IBENCH        = ^(BenchmarkInterpretedBatch1|BenchmarkCompiledBatch1|BenchmarkQuantizedBatch1|BenchmarkInterpretedBatch8|BenchmarkCompiledBatch8|BenchmarkQuantizedBatch8)$$

# Appends one run record (ns/op + GFLOP/s per shape, plus machine/kernel
# metadata) to the checked-in BENCH_kernels.json trajectory.
bench-kernels:
	{ $(GO) test -run='^$$' -bench '$(KBENCH_TENSOR)' ./internal/tensor && \
	  $(GO) test -run='^$$' -bench '$(KBENCH_ROOT)' . ; } \
	  | $(GO) run ./cmd/benchjson -out BENCH_kernels.json

# Compiled-plan inference trajectory: interpreted vs compiled forwards at
# batch 1 and batch 8, with -benchmem so allocs/op and B/op land in the
# record (the compiled path's arena claim is "steady-state allocs ≈ 0").
bench-infer:
	$(GO) test -run='^$$' -bench '$(IBENCH)' -benchmem ./internal/infer \
	  | $(GO) run ./cmd/benchjson -out BENCH_infer.json

# CI stage: build the benchmarks and run each selected kernel benchmark once
# (-benchtime=1x), through the same JSON harness, without touching the
# checked-in trajectory.
bench-smoke:
	{ $(GO) test -run='^$$' -bench '$(KBENCH_TENSOR)' -benchtime=1x ./internal/tensor && \
	  $(GO) test -run='^$$' -bench '$(KBENCH_ROOT)' -benchtime=1x . && \
	  $(GO) test -run='^$$' -bench '$(IBENCH)' -benchtime=1x -benchmem ./internal/infer ; } \
	  | $(GO) run ./cmd/benchjson -out .bench_smoke.json -note ci-smoke
	rm -f .bench_smoke.json
