package route_test

import (
	"testing"
	"time"

	"drainnas/internal/route"
	"drainnas/internal/route/routetest"
)

// TestTokenBucketClockRegression is the regression test for the rewound
// last-refill timestamp: a clock that moves backward (FakeClock rewind, a
// non-monotonic wall source) must not rewind the bucket's refill anchor,
// because the subsequent forward reading would then credit the same
// interval's tokens a second time. With the bug, draining the bucket at T,
// rewinding 5s and returning to T minted 5 tokens out of thin air.
func TestTokenBucketClockRegression(t *testing.T) {
	clock := routetest.NewFakeClock()
	tb := route.NewTokenBucket(1, 10, clock)

	// Drain the full burst at T0.
	for i := 0; i < 10; i++ {
		if !tb.Allow() {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	if tb.Allow() {
		t.Fatal("drained bucket admitted an 11th request")
	}

	// Rewind the clock 5s and poke the bucket so it observes the regression.
	clock.Advance(-5 * time.Second)
	if tb.Allow() {
		t.Fatal("bucket admitted during clock regression")
	}

	// Return to T0: zero net time has passed, so zero tokens must exist.
	clock.Advance(5 * time.Second)
	if tb.Allow() {
		t.Fatal("double-credited refill: bucket admitted at T0 after a rewind/return with no net elapsed time")
	}

	// Genuine forward progress still refills at the configured rate.
	clock.Advance(3 * time.Second)
	for i := 0; i < 3; i++ {
		if !tb.Allow() {
			t.Fatalf("request %d after 3s refill rejected", i)
		}
	}
	if tb.Allow() {
		t.Fatal("more than 3 tokens after 3s at 1 rps")
	}
}

// TestTokenBucketRefillUnaffectedByFix pins ordinary monotonic behavior
// around the regression fix: partial refill accumulates across reads.
func TestTokenBucketRefillUnaffectedByFix(t *testing.T) {
	clock := routetest.NewFakeClock()
	tb := route.NewTokenBucket(2, 1, clock)
	if !tb.Allow() {
		t.Fatal("initial token rejected")
	}
	clock.Advance(250 * time.Millisecond) // 0.5 tokens
	if tb.Allow() {
		t.Fatal("admitted on half a token")
	}
	clock.Advance(250 * time.Millisecond) // accumulates to 1.0
	if !tb.Allow() {
		t.Fatal("full accumulated token rejected")
	}
}
