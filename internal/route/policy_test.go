package route_test

import (
	"testing"

	"drainnas/internal/route"
	"drainnas/internal/route/routetest"
)

func fakeFleet(clock *routetest.FakeClock, ids ...string) ([]route.Replica, []*routetest.FakeReplica) {
	reps := make([]route.Replica, len(ids))
	fakes := make([]*routetest.FakeReplica, len(ids))
	for i, id := range ids {
		fakes[i] = routetest.NewFakeReplica(id, clock)
		reps[i] = fakes[i]
	}
	return reps, fakes
}

func TestPolicyByName(t *testing.T) {
	cases := []struct {
		name string
		want string
	}{
		{"", route.PolicyRoundRobin},
		{"rr", route.PolicyRoundRobin},
		{"round-robin", route.PolicyRoundRobin},
		{"least-loaded", route.PolicyLeastLoaded},
		{"least_loaded", route.PolicyLeastLoaded},
		{"affinity", route.PolicyAffinity},
		{"model-affinity", route.PolicyAffinity},
	}
	for _, tc := range cases {
		p, err := route.PolicyByName(tc.name)
		if err != nil {
			t.Fatalf("PolicyByName(%q): %v", tc.name, err)
		}
		if p.Name() != tc.want {
			t.Errorf("PolicyByName(%q).Name() = %q, want %q", tc.name, p.Name(), tc.want)
		}
	}
	if _, err := route.PolicyByName("random"); err == nil {
		t.Fatal("PolicyByName(\"random\") succeeded, want error")
	}
}

// TestRoundRobinGolden pins the exact assignment cycle: strict rotation by
// arrival order, wrapping at fleet size, restarting cleanly when the fleet
// shrinks between picks.
func TestRoundRobinGolden(t *testing.T) {
	clock := routetest.NewFakeClock()
	reps, _ := fakeFleet(clock, "r0", "r1", "r2")
	p := &route.RoundRobin{}

	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if got := p.Pick("m", reps); got != w {
			t.Fatalf("pick %d = %d, want %d", i, got, w)
		}
	}
	// Counter is global, not per-fleet-size: pick 8 over 2 replicas lands on
	// 8 % 2 == 1 regardless of the earlier picks having seen 3 replicas.
	if got := p.Pick("m", reps[:2]); got != 1 {
		t.Fatalf("pick over shrunk fleet = %d, want 1", got)
	}
}

// TestLeastLoadedGolden pins the choice for scripted load shapes, including
// the lowest-index tie-break the deterministic tests rely on.
func TestLeastLoadedGolden(t *testing.T) {
	clock := routetest.NewFakeClock()
	reps, fakes := fakeFleet(clock, "r0", "r1", "r2")
	p := route.LeastLoaded{}

	cases := []struct {
		loads [3]int64
		want  int
	}{
		{[3]int64{0, 0, 0}, 0}, // all idle: lowest index
		{[3]int64{2, 1, 3}, 1},
		{[3]int64{1, 0, 0}, 1}, // tie between r1 and r2: lowest index
		{[3]int64{5, 5, 1}, 2},
		{[3]int64{0, 7, 7}, 0},
		{[3]int64{3, 3, 3}, 0},
	}
	for _, tc := range cases {
		for i, l := range tc.loads {
			fakes[i].SetLoad(l)
		}
		if got := p.Pick("m", reps); got != tc.want {
			t.Fatalf("loads %v: pick = %d, want %d", tc.loads, got, tc.want)
		}
	}
}

// TestModelAffinityGolden pins the rendezvous-hash assignment for a fixed
// fleet (computed once from the FNV-1a scores and hardcoded — any change to
// the hash input layout shows up here), plus the property that makes
// rendezvous worth its price: draining a replica remaps only the models that
// hashed to it.
func TestModelAffinityGolden(t *testing.T) {
	clock := routetest.NewFakeClock()
	reps, _ := fakeFleet(clock, "r0", "r1", "r2")
	p := route.ModelAffinity{}

	golden := map[string]int{
		"m0": 1, "m1": 2, "m2": 2, "m3": 0,
		"m4": 1, "m5": 2, "m6": 2, "m7": 0,
	}
	for model, want := range golden {
		if got := p.Pick(model, reps); got != want {
			t.Fatalf("affinity(%s) = %d, want %d", model, got, want)
		}
		// Placement is per-model state-free: repeat picks agree.
		if got := p.Pick(model, reps); got != want {
			t.Fatalf("affinity(%s) repeat = %d, want %d", model, got, want)
		}
	}

	// Drain r1: models that were on r0/r2 must not move.
	rest := []route.Replica{reps[0], reps[2]}
	wantAfter := map[string]string{
		"m0": "r0", "m1": "r2", "m2": "r2", "m3": "r0",
		"m4": "r0", "m5": "r2", "m6": "r2", "m7": "r0",
	}
	for model, want := range wantAfter {
		got := rest[p.Pick(model, rest)].ID()
		if got != want {
			t.Fatalf("affinity(%s) after drain = %s, want %s", model, got, want)
		}
		if before := golden[model]; before != 1 {
			// Model did not live on the drained replica: must be unmoved.
			if got != reps[before].ID() {
				t.Fatalf("affinity(%s) moved from %s to %s on unrelated drain",
					model, reps[before].ID(), got)
			}
		}
	}
}

// TestModelAffinitySpread sanity-checks the hash actually spreads distinct
// models over the fleet (a structural hash regression would collapse every
// model onto one replica and still pass per-model goldens if they were
// regenerated blindly).
func TestModelAffinitySpread(t *testing.T) {
	clock := routetest.NewFakeClock()
	reps, _ := fakeFleet(clock, "r0", "r1", "r2")
	p := route.ModelAffinity{}

	hit := map[int]int{}
	for _, m := range []string{"m0", "m1", "m2", "m3", "m4", "m5", "m6", "m7"} {
		hit[p.Pick(m, reps)]++
	}
	if len(hit) != 3 {
		t.Fatalf("8 models landed on only %d of 3 replicas: %v", len(hit), hit)
	}
}
