package route_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"drainnas/internal/api"
	"drainnas/internal/httpx"
	"drainnas/internal/route"
	"drainnas/internal/serve"
	"drainnas/internal/tensor"
)

// TestHTTPReplicaRoundTrip pins the wire adapter: the request body carries
// the flattened CHW payload, and the remote predict response maps back onto
// serve.Response with millisecond fields rehydrated to durations.
func TestHTTPReplicaRoundTrip(t *testing.T) {
	var got api.PredictRequest
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/predict" {
			t.Errorf("request = %s %s, want POST /v1/predict", r.Method, r.URL.Path)
		}
		if err := json.NewDecoder(r.Body).Decode(&got); err != nil {
			t.Errorf("decoding request: %v", err)
		}
		httpx.WriteJSON(w, http.StatusOK, api.PredictResponse{
			Model: got.Model, Class: 1, Logits: []float32{0.2, 0.8},
			BatchSize: 4, QueuedMS: 1.5, TotalMS: 12,
		})
	}))
	defer srv.Close()

	rep := route.NewHTTPReplica("remote-0", srv.URL, nil)
	if rep.ID() != "remote-0" {
		t.Fatalf("ID = %q", rep.ID())
	}
	in := tensor.New(1, 3, 4, 4) // batch form: must flatten to (3,4,4)
	resp, err := rep.Submit(context.Background(), "tiny", in)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if got.Model != "tiny" {
		t.Fatalf("wire model = %q", got.Model)
	}
	if len(got.Shape) != 3 || got.Shape[0] != 3 || got.Shape[1] != 4 || got.Shape[2] != 4 {
		t.Fatalf("wire shape = %v, want [3 4 4]", got.Shape)
	}
	if len(got.Data) != 48 {
		t.Fatalf("wire data length = %d, want 48", len(got.Data))
	}
	if resp.Class != 1 || resp.BatchSize != 4 {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Queued != 1500*time.Microsecond || resp.Total != 12*time.Millisecond {
		t.Fatalf("durations = queued %v total %v", resp.Queued, resp.Total)
	}
	if rep.InFlight() != 0 {
		t.Fatalf("InFlight after response = %d", rep.InFlight())
	}
}

// TestHTTPReplicaErrorMapping pins that the remote error envelope converts
// back to the same typed sentinels local submission raises, so router retry
// and front-end status mapping cannot tell the transports apart.
func TestHTTPReplicaErrorMapping(t *testing.T) {
	cases := []struct {
		status int
		code   string
		want   error
	}{
		{http.StatusTooManyRequests, api.CodeQueueFull, serve.ErrQueueFull},
		{http.StatusNotFound, api.CodeModelNotFound, serve.ErrModelNotFound},
		{http.StatusServiceUnavailable, api.CodeShuttingDown, serve.ErrClosed},
	}
	for _, tc := range cases {
		t.Run(tc.code, func(t *testing.T) {
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				httpx.WriteJSON(w, tc.status, api.ErrorEnvelope{
					Error: api.ErrorBody{Code: tc.code, Message: "injected"},
				})
			}))
			defer srv.Close()

			rep := route.NewHTTPReplica("", srv.URL, nil)
			if rep.ID() != srv.URL {
				t.Fatalf("default ID = %q, want base URL", rep.ID())
			}
			_, err := rep.Submit(context.Background(), "m", tensor.New(3, 4, 4))
			if !errors.Is(err, tc.want) {
				t.Fatalf("Submit: %v, want %v", err, tc.want)
			}
		})
	}

	// An unknown code stays an opaque error: not retry-exempt, not a sentinel.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		httpx.WriteJSON(w, http.StatusBadRequest, api.ErrorEnvelope{
			Error: api.ErrorBody{Code: api.CodeBadInput, Message: "bad"},
		})
	}))
	defer srv.Close()
	_, err := route.NewHTTPReplica("x", srv.URL, nil).Submit(context.Background(), "m", tensor.New(3, 4, 4))
	if err == nil || errors.Is(err, serve.ErrQueueFull) || errors.Is(err, serve.ErrModelNotFound) {
		t.Fatalf("unknown-code Submit: %v, want plain error", err)
	}
}

// TestHTTPReplicaCancellation pins the Replica contract on the HTTP
// transport: canceling the attempt context aborts the in-flight request
// promptly and surfaces ctx.Err, which is what hedging's loser cancellation
// leans on.
func TestHTTPReplicaCancellation(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	defer close(release)

	rep := route.NewHTTPReplica("remote", srv.URL, nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := rep.Submit(ctx, "m", tensor.New(3, 4, 4))
		done <- err
	}()
	<-entered
	if rep.InFlight() != 1 {
		t.Fatalf("InFlight during request = %d, want 1", rep.InFlight())
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Submit: %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Submit did not honor cancellation")
	}
	if rep.InFlight() != 0 {
		t.Fatalf("InFlight after cancel = %d, want 0", rep.InFlight())
	}
}

// TestHTTPReplicaBadInput pins payload validation before any bytes move: a
// batched tensor with batch != 1 cannot be flattened to the wire shape.
func TestHTTPReplicaBadInput(t *testing.T) {
	rep := route.NewHTTPReplica("remote", "http://127.0.0.1:0", nil)
	if _, err := rep.Submit(context.Background(), "m", tensor.New(2, 3, 4, 4)); err == nil {
		t.Fatal("Submit with batch 2 succeeded, want error")
	}
	if _, err := rep.Submit(context.Background(), "m", nil); err == nil {
		t.Fatal("Submit with nil input succeeded, want error")
	}
	if _, err := rep.Submit(context.Background(), "m", tensor.New(4, 4)); err == nil {
		t.Fatal("Submit with 2-d input succeeded, want error")
	}
}
