package route

import "sync"

// TokenBucket is the admission controller in front of the fleet: requests
// spend one token each, tokens refill at Rate per second up to Burst, and a
// request arriving to an empty bucket is rejected immediately (ErrThrottled
// from the router) instead of queueing — shedding overload before it can
// occupy dispatch slots or replica queues. Time comes from the injected
// clock, so refill behavior is testable without wall-clock sleeps.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <= 0 disables limiting
	burst  float64
	tokens float64
	last   int64 // clock.Now().UnixNano() of the last refill
	clock  Clock
}

// NewTokenBucket builds a bucket refilling at rate tokens/second with the
// given burst capacity (values < 1 are raised to 1 so a conforming request
// can ever pass). rate <= 0 returns a bucket that admits everything.
func NewTokenBucket(rate, burst float64, clock Clock) *TokenBucket {
	if clock == nil {
		clock = SystemClock
	}
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{
		rate: rate, burst: burst, tokens: burst,
		last: clock.Now().UnixNano(), clock: clock,
	}
}

// Allow spends one token if available. A nil or unlimited bucket always
// admits.
func (tb *TokenBucket) Allow() bool {
	if tb == nil || tb.rate <= 0 {
		return true
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	now := tb.clock.Now().UnixNano()
	if now > tb.last {
		// last only ever advances. Setting it unconditionally would let a
		// clock regression (a rewound fake clock, a non-monotonic wall
		// source) drag last backward, and the next forward reading would
		// re-credit the interval as refill a second time.
		tb.tokens += tb.rate * float64(now-tb.last) / 1e9
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
		tb.last = now
	}
	if tb.tokens < 1 {
		return false
	}
	tb.tokens--
	return true
}
