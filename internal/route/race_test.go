package route_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"drainnas/internal/route"
	"drainnas/internal/route/routetest"
)

// TestRouterConcurrentChurn is the race-detector suite: many goroutines
// hammer one router while the replica set mutates underneath them —
// replicas join and drain mid-flight — across all three policies. Three
// core replicas never leave, so every request must succeed; the test pins
// exact served accounting (N in, N completed, N attempts observed across
// the whole fleet including drained members).
func TestRouterConcurrentChurn(t *testing.T) {
	policies := []func() route.Policy{
		func() route.Policy { return &route.RoundRobin{} },
		func() route.Policy { return route.LeastLoaded{} },
		func() route.Policy { return route.ModelAffinity{} },
	}
	for _, mk := range policies {
		policy := mk()
		t.Run(policy.Name(), func(t *testing.T) {
			clock := routetest.NewFakeClock()
			core, coreFakes := fakeFleet(clock, "r0", "r1", "r2")
			r := route.New(route.Options{Clock: clock, Policy: policy}, core...)
			defer r.Close()

			const (
				goroutines = 8
				perG       = 200
			)
			var (
				wg      sync.WaitGroup
				served  atomic.Int64
				stop    = make(chan struct{})
				churned []*routetest.FakeReplica
			)

			// Churner: transient replicas join and drain while traffic flows.
			churnDone := make(chan struct{})
			go func() {
				defer close(churnDone)
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					rep := routetest.NewFakeReplica(fmt.Sprintf("churn-%d", i%4), clock)
					churned = append(churned, rep)
					r.AddReplica(rep)
					r.RemoveReplica(fmt.Sprintf("churn-%d", i%4))
				}
			}()

			models := []string{"m0", "m1", "m2", "m3", "m4"}
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						model := models[(g+i)%len(models)]
						if _, err := r.Submit(context.Background(), model, testInput()); err != nil {
							t.Errorf("goroutine %d request %d: %v", g, i, err)
							return
						}
						served.Add(1)
					}
				}(g)
			}
			wg.Wait()
			close(stop)
			<-churnDone

			const want = goroutines * perG
			if served.Load() != want {
				t.Fatalf("served %d of %d", served.Load(), want)
			}
			snap := r.Stats().Snapshot()
			if snap.Submitted != want || snap.Completed != want || snap.Failed != 0 {
				t.Fatalf("snapshot = %+v, want submitted=completed=%d failed=0", snap, want)
			}
			total := 0
			for _, f := range coreFakes {
				total += f.CallCount()
			}
			for _, f := range churned {
				total += f.CallCount()
			}
			if total != want {
				t.Fatalf("fleet observed %d attempts, want %d", total, want)
			}
		})
	}
}

// TestRouterConcurrentSchedGate runs the bounded-dispatch path under the
// race detector: a small gate, mixed SLO classes, and replica churn, all
// concurrent. The invariant is simply that everything completes — ordering
// under concurrency is the golden tests' job, not this one's.
func TestRouterConcurrentSchedGate(t *testing.T) {
	clock := routetest.NewFakeClock()
	core, _ := fakeFleet(clock, "r0", "r1")
	r := route.New(route.Options{
		Clock:          clock,
		Policy:         route.LeastLoaded{},
		MaxInFlight:    4,
		Sched:          route.Priority,
		EstimateSeedMS: map[string]float64{"m0": 1, "m1": 10},
	}, core...)
	defer r.Close()

	classes := []route.SLOClass{route.ClassBatch, route.ClassStandard, route.ClassInteractive}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				class := classes[(g+i)%len(classes)]
				model := fmt.Sprintf("m%d", i%2)
				if _, err := r.SubmitClass(context.Background(), class, model, testInput()); err != nil {
					t.Errorf("goroutine %d request %d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	snap := r.Stats().Snapshot()
	if snap.Completed != 600 || snap.Failed != 0 {
		t.Fatalf("snapshot = %+v, want completed=600 failed=0", snap)
	}
	for _, class := range []string{"batch", "standard", "interactive"} {
		if cs := snap.PerClass[class]; cs.Submitted != 200 || cs.Completed != 200 {
			t.Fatalf("class %s = %+v, want 200/200", class, cs)
		}
	}
}
