package route_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"drainnas/internal/route"
	"drainnas/internal/route/routetest"
	"drainnas/internal/serve"
	"drainnas/internal/tensor"
)

func testInput() *tensor.Tensor { return tensor.New(3, 8, 8) }

// waitUntil polls cond until it holds or the deadline passes. It is a
// quiescence wait used to sequence concurrent enqueues, never a timing
// assertion — all simulated time still moves only through the fake clock.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestSubmitRoutesAndRecords(t *testing.T) {
	clock := routetest.NewFakeClock()
	reps, fakes := fakeFleet(clock, "r0", "r1")
	r := route.New(route.Options{Clock: clock}, reps...)
	defer r.Close()

	resp, err := r.Submit(context.Background(), "m0", testInput())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if resp.Replica != "r0" || resp.Hedged {
		t.Fatalf("resp = {Replica:%s Hedged:%v}, want primary r0", resp.Replica, resp.Hedged)
	}
	if resp.Model != "m0" {
		t.Fatalf("resp.Model = %q, want m0", resp.Model)
	}
	// Round-robin: second request lands on r1.
	resp, err = r.Submit(context.Background(), "m1", testInput())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if resp.Replica != "r1" {
		t.Fatalf("second pick = %s, want r1", resp.Replica)
	}
	if got := fakes[0].Calls(); len(got) != 1 || got[0] != "m0" {
		t.Fatalf("r0 calls = %v, want [m0]", got)
	}

	snap := r.Stats().Snapshot()
	if snap.Submitted != 2 || snap.Completed != 2 || snap.Failed != 0 {
		t.Fatalf("snapshot = %+v, want 2 submitted, 2 completed", snap)
	}
	if snap.PerPolicy[route.PolicyRoundRobin] != 2 {
		t.Fatalf("per-policy = %v, want round-robin:2", snap.PerPolicy)
	}
	if snap.PerReplica["r0"].Picked != 1 || snap.PerReplica["r1"].Picked != 1 {
		t.Fatalf("per-replica = %v, want one pick each", snap.PerReplica)
	}
}

func TestSubmitNoReplicas(t *testing.T) {
	clock := routetest.NewFakeClock()
	r := route.New(route.Options{Clock: clock})
	defer r.Close()

	if _, err := r.Submit(context.Background(), "m", testInput()); !errors.Is(err, route.ErrNoReplicas) {
		t.Fatalf("Submit with empty fleet: %v, want ErrNoReplicas", err)
	}
	snap := r.Stats().Snapshot()
	if snap.NoReplicas != 1 || snap.Failed != 1 {
		t.Fatalf("snapshot = %+v, want no_replicas=1 failed=1", snap)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	clock := routetest.NewFakeClock()
	reps, _ := fakeFleet(clock, "r0")
	r := route.New(route.Options{Clock: clock}, reps...)
	r.Close()
	r.Close() // idempotent
	if _, err := r.Submit(context.Background(), "m", testInput()); !errors.Is(err, route.ErrClosed) {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
}

func TestCloseWaitsForInFlight(t *testing.T) {
	clock := routetest.NewFakeClock()
	reps, fakes := fakeFleet(clock, "r0")
	fakes[0].Gate = make(chan struct{})
	fakes[0].Received = make(chan string, 1)
	r := route.New(route.Options{Clock: clock}, reps...)

	done := make(chan error, 1)
	go func() {
		_, err := r.Submit(context.Background(), "m", testInput())
		done <- err
	}()
	<-fakes[0].Received

	closed := make(chan struct{})
	go func() { r.Close(); close(closed) }()
	select {
	case <-closed:
		t.Fatal("Close returned while a request was in flight")
	case <-time.After(10 * time.Millisecond):
	}
	close(fakes[0].Gate)
	if err := <-done; err != nil {
		t.Fatalf("in-flight Submit after Close: %v", err)
	}
	<-closed
}

func TestSubmitCanceledContext(t *testing.T) {
	clock := routetest.NewFakeClock()
	reps, fakes := fakeFleet(clock, "r0")
	r := route.New(route.Options{Clock: clock}, reps...)
	defer r.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Submit(ctx, "m", testInput()); !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit with canceled ctx: %v, want context.Canceled", err)
	}
	if n := fakes[0].CallCount(); n != 0 {
		t.Fatalf("replica saw %d calls for a pre-canceled request", n)
	}
}

// TestAdmissionThrottle pins token-bucket behavior against the fake clock:
// the burst admits, the next request bounces with ErrThrottled, and exactly
// one more token exists after exactly one second of refill.
func TestAdmissionThrottle(t *testing.T) {
	clock := routetest.NewFakeClock()
	reps, _ := fakeFleet(clock, "r0")
	r := route.New(route.Options{Clock: clock, Rate: 1, Burst: 2}, reps...)
	defer r.Close()

	for i := 0; i < 2; i++ {
		if _, err := r.Submit(context.Background(), "m", testInput()); err != nil {
			t.Fatalf("burst submit %d: %v", i, err)
		}
	}
	if _, err := r.Submit(context.Background(), "m", testInput()); !errors.Is(err, route.ErrThrottled) {
		t.Fatalf("over-burst submit: %v, want ErrThrottled", err)
	}

	clock.Advance(time.Second)
	if _, err := r.Submit(context.Background(), "m", testInput()); err != nil {
		t.Fatalf("submit after refill: %v", err)
	}
	if _, err := r.Submit(context.Background(), "m", testInput()); !errors.Is(err, route.ErrThrottled) {
		t.Fatalf("second submit after 1s refill: %v, want ErrThrottled (only 1 token refilled)", err)
	}

	snap := r.Stats().Snapshot()
	if snap.Throttled != 2 || snap.Completed != 3 {
		t.Fatalf("snapshot = %+v, want throttled=2 completed=3", snap)
	}
}

// TestSchedOrderGolden pins the exact dispatch order each scheduler produces
// for the same parked backlog: one dispatch slot, the replica gated shut, a
// head request occupying the slot, then three waiters enqueued in a known
// arrival order. Releasing the replica step by step reveals the order the
// gate granted slots in.
func TestSchedOrderGolden(t *testing.T) {
	type wreq struct {
		model string
		class route.SLOClass
	}
	waiters := []wreq{
		{"slow", route.ClassBatch},
		{"mid", route.ClassInteractive},
		{"fast", route.ClassStandard},
	}
	seeds := map[string]float64{"slow": 50, "mid": 5, "fast": 1, "head": 1}

	cases := []struct {
		mode route.SchedMode
		want []string
	}{
		{route.FCFS, []string{"slow", "mid", "fast"}},
		{route.Priority, []string{"mid", "fast", "slow"}}, // interactive > standard > batch
		{route.SJF, []string{"fast", "mid", "slow"}},      // smallest predicted latency first
	}
	for _, tc := range cases {
		t.Run(tc.mode.String(), func(t *testing.T) {
			clock := routetest.NewFakeClock()
			reps, fakes := fakeFleet(clock, "r0")
			rep := fakes[0]
			rep.Gate = make(chan struct{})
			rep.Received = make(chan string, 8)
			r := route.New(route.Options{
				Clock:          clock,
				MaxInFlight:    1,
				Sched:          tc.mode,
				EstimateSeedMS: seeds,
			}, reps...)
			defer r.Close()

			var wg sync.WaitGroup
			submit := func(model string, class route.SLOClass) {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if _, err := r.SubmitClass(context.Background(), class, model, testInput()); err != nil {
						t.Errorf("SubmitClass(%s): %v", model, err)
					}
				}()
			}

			submit("head", route.ClassStandard)
			if got := <-rep.Received; got != "head" {
				t.Fatalf("head arrival = %q", got)
			}
			for i, w := range waiters {
				submit(w.model, w.class)
				n := i + 1
				waitUntil(t, fmt.Sprintf("%d waiters parked", n), func() bool { return r.Waiting() == n })
			}

			var order []string
			for range waiters {
				rep.Gate <- struct{}{} // finish the current occupant
				order = append(order, <-rep.Received)
			}
			rep.Gate <- struct{}{} // finish the last one
			wg.Wait()

			for i, w := range tc.want {
				if order[i] != w {
					t.Fatalf("%s dispatch order = %v, want %v", tc.mode, order, tc.want)
				}
			}
		})
	}
}

// TestGateAbandonedWaiter pins the grant-vs-cancel handoff: a waiter whose
// context ends while parked releases its claim, and the slot still reaches
// the next waiter.
func TestGateAbandonedWaiter(t *testing.T) {
	clock := routetest.NewFakeClock()
	reps, fakes := fakeFleet(clock, "r0")
	rep := fakes[0]
	rep.Gate = make(chan struct{})
	rep.Received = make(chan string, 4)
	r := route.New(route.Options{Clock: clock, MaxInFlight: 1}, reps...)
	defer r.Close()

	head := make(chan error, 1)
	go func() {
		_, err := r.Submit(context.Background(), "head", testInput())
		head <- err
	}()
	<-rep.Received

	wctx, wcancel := context.WithCancel(context.Background())
	abandoned := make(chan error, 1)
	go func() {
		_, err := r.Submit(wctx, "abandoned", testInput())
		abandoned <- err
	}()
	waitUntil(t, "first waiter parked", func() bool { return r.Waiting() == 1 })

	last := make(chan error, 1)
	go func() {
		_, err := r.Submit(context.Background(), "last", testInput())
		last <- err
	}()
	waitUntil(t, "second waiter parked", func() bool { return r.Waiting() == 2 })

	wcancel()
	if err := <-abandoned; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned waiter: %v, want context.Canceled", err)
	}

	rep.Gate <- struct{}{} // finish head; slot must skip the abandoned waiter
	if got := <-rep.Received; got != "last" {
		t.Fatalf("next dispatch = %q, want last", got)
	}
	rep.Gate <- struct{}{}
	if err := <-head; err != nil {
		t.Fatalf("head: %v", err)
	}
	if err := <-last; err != nil {
		t.Fatalf("last: %v", err)
	}
	if n := rep.CallCount(); n != 2 {
		t.Fatalf("replica saw %d calls, want 2 (abandoned request never dispatched)", n)
	}
}

// staticPolicy always prefers the first replica of whatever subset it is
// offered, making primary/hedge/retry placement fully deterministic.
type staticPolicy struct{}

func (staticPolicy) Name() string                     { return "static" }
func (staticPolicy) Pick(string, []route.Replica) int { return 0 }

// TestErrorRetry pins immediate redispatch: a retryable primary failure goes
// to the next untried replica within the attempt budget; the original error
// surfaces if every attempt fails.
func TestErrorRetry(t *testing.T) {
	clock := routetest.NewFakeClock()
	reps, fakes := fakeFleet(clock, "r0", "r1")
	boom := errors.New("transient replica fault")
	fakes[0].Err = func(int, string) error { return boom }
	r := route.New(route.Options{Clock: clock, Policy: staticPolicy{}, RetryOnError: true}, reps...)
	defer r.Close()

	resp, err := r.Submit(context.Background(), "m", testInput())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if resp.Replica != "r1" || resp.Hedged {
		t.Fatalf("resp = {Replica:%s Hedged:%v}, want retry win on r1", resp.Replica, resp.Hedged)
	}
	snap := r.Stats().Snapshot()
	if snap.Retries != 1 || snap.Completed != 1 {
		t.Fatalf("snapshot = %+v, want retries=1 completed=1", snap)
	}
	if pr := snap.PerReplica["r0"]; pr.Failed != 1 {
		t.Fatalf("r0 stats = %+v, want failed=1", pr)
	}
	if pr := snap.PerReplica["r1"]; pr.Retries != 1 || pr.Completed != 1 {
		t.Fatalf("r1 stats = %+v, want retries=1 completed=1", pr)
	}

	// Both replicas failing: the first error comes back, attempts capped.
	fakes[1].Err = func(int, string) error { return errors.New("other fault") }
	_, err = r.Submit(context.Background(), "m", testInput())
	if !errors.Is(err, boom) {
		t.Fatalf("all-fail Submit: %v, want first error %v", err, boom)
	}
	if n := fakes[0].CallCount() + fakes[1].CallCount(); n != 4 {
		t.Fatalf("total attempts = %d, want 4 (2 per request, MaxAttempts=2)", n)
	}
}

// TestNoRetryOnModelNotFound pins that a uniform-fleet error is not
// redispatched: every replica would answer the same.
func TestNoRetryOnModelNotFound(t *testing.T) {
	clock := routetest.NewFakeClock()
	reps, fakes := fakeFleet(clock, "r0", "r1")
	fakes[0].Err = func(int, string) error { return serve.ErrModelNotFound }
	r := route.New(route.Options{Clock: clock, Policy: staticPolicy{}, RetryOnError: true}, reps...)
	defer r.Close()

	if _, err := r.Submit(context.Background(), "ghost", testInput()); !errors.Is(err, serve.ErrModelNotFound) {
		t.Fatalf("Submit: %v, want ErrModelNotFound", err)
	}
	if n := fakes[1].CallCount(); n != 0 {
		t.Fatalf("r1 saw %d calls, want 0 (not-found is not retryable)", n)
	}
}

// TestReplicaJoinDrain pins membership semantics: a joined replica is
// eligible for the very next pick; a drained one stops receiving new
// attempts while its in-flight request finishes normally.
func TestReplicaJoinDrain(t *testing.T) {
	clock := routetest.NewFakeClock()
	reps, fakes := fakeFleet(clock, "r0")
	r := route.New(route.Options{Clock: clock, Policy: route.LeastLoaded{}}, reps...)
	defer r.Close()

	if _, err := r.Submit(context.Background(), "m", testInput()); err != nil {
		t.Fatal(err)
	}

	joined := routetest.NewFakeReplica("r1", clock)
	fakes[0].SetLoad(5)
	r.AddReplica(joined)
	resp, err := r.Submit(context.Background(), "m", testInput())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Replica != "r1" {
		t.Fatalf("pick after join = %s, want r1 (least loaded)", resp.Replica)
	}

	// Drain r0 while a request is in flight on it.
	fakes[0].SetLoad(0)
	fakes[0].Gate = make(chan struct{})
	fakes[0].Received = make(chan string, 1)
	inflight := make(chan error, 1)
	go func() {
		_, err := r.Submit(context.Background(), "m", testInput())
		inflight <- err
	}()
	<-fakes[0].Received
	if !r.RemoveReplica("r0") {
		t.Fatal("RemoveReplica(r0) = false")
	}
	if r.RemoveReplica("r0") {
		t.Fatal("second RemoveReplica(r0) = true")
	}

	// New traffic only reaches r1 now.
	for i := 0; i < 3; i++ {
		resp, err := r.Submit(context.Background(), "m", testInput())
		if err != nil {
			t.Fatal(err)
		}
		if resp.Replica != "r1" {
			t.Fatalf("post-drain pick = %s, want r1", resp.Replica)
		}
	}
	// The drained replica's in-flight request still completes.
	close(fakes[0].Gate)
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight request on drained replica: %v", err)
	}
}

// TestSJFEstimatorLearns pins the EWMA overlay: after traffic, the measured
// latency (driven by the fake clock) overrides the static seed, reordering
// SJF dispatch.
func TestSJFEstimatorLearns(t *testing.T) {
	clock := routetest.NewFakeClock()
	reps, fakes := fakeFleet(clock, "r0")
	rep := fakes[0]
	// "claimed-fast" is seeded fast but actually takes 80ms of simulated
	// time; "honest" is seeded at 40ms and takes 0.
	rep.Latency = func(_ int, model string) time.Duration {
		if model == "claimed-fast" {
			return 80 * time.Millisecond
		}
		return 0
	}
	r := route.New(route.Options{
		Clock:          clock,
		MaxInFlight:    1,
		Sched:          route.SJF,
		EstimateSeedMS: map[string]float64{"claimed-fast": 1, "honest": 40},
	}, reps...)
	defer r.Close()

	// Prime the EWMA: one measured request for claimed-fast (80ms observed).
	done := make(chan error, 1)
	go func() {
		_, err := r.Submit(context.Background(), "claimed-fast", testInput())
		done <- err
	}()
	waitUntil(t, "latency timer armed", func() bool { return clock.Timers() >= 1 })
	clock.Advance(80 * time.Millisecond)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Park both models behind an occupied slot; SJF must now dispatch
	// "honest" (40ms seed) before "claimed-fast" (80ms measured EWMA),
	// the reverse of the seed order.
	rep.Latency = nil
	rep.Gate = make(chan struct{})
	rep.Received = make(chan string, 4)
	var wg sync.WaitGroup
	submit := func(model string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.Submit(context.Background(), model, testInput()); err != nil {
				t.Errorf("Submit(%s): %v", model, err)
			}
		}()
	}
	submit("head")
	<-rep.Received
	submit("claimed-fast")
	waitUntil(t, "first waiter", func() bool { return r.Waiting() == 1 })
	submit("honest")
	waitUntil(t, "second waiter", func() bool { return r.Waiting() == 2 })

	rep.Gate <- struct{}{}
	if got := <-rep.Received; got != "honest" {
		t.Fatalf("post-EWMA SJF dispatched %q first, want honest", got)
	}
	rep.Gate <- struct{}{}
	<-rep.Received
	rep.Gate <- struct{}{}
	wg.Wait()
}
