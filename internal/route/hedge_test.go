package route_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"drainnas/internal/route"
	"drainnas/internal/route/routetest"
)

// TestHedgeBeatsStraggler pins the headline hedging behavior: the primary
// hangs, the hedge deadline fires on the fake clock, the hedge attempt wins
// on a different replica, and the hung primary observes its context being
// canceled — the loser-cancellation half of the contract.
func TestHedgeBeatsStraggler(t *testing.T) {
	clock := routetest.NewFakeClock()
	reps, fakes := fakeFleet(clock, "r0", "r1")
	fakes[0].Hang = func(int, string) bool { return true }
	fakes[0].Received = make(chan string, 1)
	r := route.New(route.Options{
		Clock:      clock,
		Policy:     staticPolicy{},
		HedgeAfter: 50 * time.Millisecond,
	}, reps...)
	defer r.Close()

	done := make(chan route.Response, 1)
	go func() {
		resp, err := r.Submit(context.Background(), "m", testInput())
		if err != nil {
			t.Errorf("hedged Submit: %v", err)
		}
		done <- resp
	}()

	<-fakes[0].Received // primary is hanging on r0
	if !clock.AwaitTimers(1) {
		t.Fatal("hedge timer never armed")
	}
	clock.Advance(50 * time.Millisecond)

	resp := <-done
	if resp.Replica != "r1" || !resp.Hedged {
		t.Fatalf("resp = {Replica:%s Hedged:%v}, want hedge win on r1", resp.Replica, resp.Hedged)
	}
	waitUntil(t, "straggler cancellation", func() bool { return fakes[0].CanceledCount() == 1 })

	snap := r.Stats().Snapshot()
	if snap.HedgesLaunched != 1 || snap.HedgeWins != 1 || snap.LosersCanceled != 1 {
		t.Fatalf("snapshot = %+v, want hedges=1 wins=1 losers_canceled=1", snap)
	}
	if pr := snap.PerReplica["r1"]; pr.Hedges != 1 || pr.Completed != 1 {
		t.Fatalf("r1 stats = %+v, want hedges=1 completed=1", pr)
	}
}

// TestPrimaryBeatsHedge pins the other race outcome: the hedge launches but
// the primary answers first, so the response is not marked hedged and the
// hedge attempt is the one canceled.
func TestPrimaryBeatsHedge(t *testing.T) {
	clock := routetest.NewFakeClock()
	reps, fakes := fakeFleet(clock, "r0", "r1")
	fakes[0].Latency = func(int, string) time.Duration { return 30 * time.Millisecond }
	fakes[0].Received = make(chan string, 1)
	fakes[1].Hang = func(int, string) bool { return true } // hedge becomes the straggler
	fakes[1].Received = make(chan string, 1)
	r := route.New(route.Options{
		Clock:      clock,
		Policy:     staticPolicy{},
		HedgeAfter: 10 * time.Millisecond,
	}, reps...)
	defer r.Close()

	done := make(chan route.Response, 1)
	go func() {
		resp, err := r.Submit(context.Background(), "m", testInput())
		if err != nil {
			t.Errorf("Submit: %v", err)
		}
		done <- resp
	}()

	<-fakes[0].Received // primary waiting out its 30ms latency
	if !clock.AwaitTimers(2) {
		t.Fatal("hedge + latency timers never armed")
	}
	clock.Advance(10 * time.Millisecond) // hedge deadline fires
	<-fakes[1].Received                  // hedge is hanging on r1
	clock.Advance(20 * time.Millisecond) // primary's latency elapses

	resp := <-done
	if resp.Replica != "r0" || resp.Hedged {
		t.Fatalf("resp = {Replica:%s Hedged:%v}, want primary win on r0", resp.Replica, resp.Hedged)
	}
	waitUntil(t, "hedge cancellation", func() bool { return fakes[1].CanceledCount() == 1 })

	snap := r.Stats().Snapshot()
	if snap.HedgesLaunched != 1 || snap.HedgeWins != 0 || snap.LosersCanceled != 1 {
		t.Fatalf("snapshot = %+v, want hedges=1 wins=0 losers_canceled=1", snap)
	}
}

// TestHedgeSingleReplica pins that hedging degrades cleanly when there is
// nowhere else to go: with one replica the deadline is not even armed, and
// the request completes normally.
func TestHedgeSingleReplica(t *testing.T) {
	clock := routetest.NewFakeClock()
	reps, fakes := fakeFleet(clock, "r0")
	fakes[0].Latency = func(int, string) time.Duration { return 100 * time.Millisecond }
	fakes[0].Received = make(chan string, 1)
	r := route.New(route.Options{Clock: clock, HedgeAfter: 10 * time.Millisecond}, reps...)
	defer r.Close()

	done := make(chan error, 1)
	go func() {
		_, err := r.Submit(context.Background(), "m", testInput())
		done <- err
	}()
	<-fakes[0].Received
	if !clock.AwaitTimers(1) { // only the replica's latency timer
		t.Fatal("latency timer never armed")
	}
	clock.Advance(100 * time.Millisecond)
	if err := <-done; err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if snap := r.Stats().Snapshot(); snap.HedgesLaunched != 0 {
		t.Fatalf("hedges launched = %d on a single-replica fleet", snap.HedgesLaunched)
	}
}

// TestHedgeNoGoroutineLeak pins the leak guarantee from the Replica
// contract: a hung straggler's goroutine and context must be reclaimed once
// the hedge wins — across many requests, the goroutine count returns to
// baseline instead of growing by one hung attempt per request.
func TestHedgeNoGoroutineLeak(t *testing.T) {
	clock := routetest.NewFakeClock()
	reps, fakes := fakeFleet(clock, "r0", "r1")
	fakes[0].Hang = func(int, string) bool { return true }
	fakes[0].Received = make(chan string, 1)
	r := route.New(route.Options{
		Clock:      clock,
		Policy:     staticPolicy{},
		HedgeAfter: 50 * time.Millisecond,
	}, reps...)
	defer r.Close()

	runtime.GC()
	baseline := runtime.NumGoroutine()

	const requests = 25
	for i := 0; i < requests; i++ {
		done := make(chan error, 1)
		go func() {
			_, err := r.Submit(context.Background(), "m", testInput())
			done <- err
		}()
		<-fakes[0].Received
		if !clock.AwaitTimers(1) {
			t.Fatalf("request %d: hedge timer never armed", i)
		}
		clock.Advance(50 * time.Millisecond)
		if err := <-done; err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}

	waitUntil(t, "all stragglers canceled", func() bool {
		return fakes[0].CanceledCount() == requests
	})
	waitUntil(t, "goroutines back to baseline", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+2
	})
}

// TestHedgeRespectsMaxAttempts pins that an exhausted attempt budget stops
// hedging: MaxAttempts=1 with a hedge deadline configured never launches a
// second attempt, and the caller's cancellation is the only way out of a
// hung primary.
func TestHedgeRespectsMaxAttempts(t *testing.T) {
	clock := routetest.NewFakeClock()
	reps, fakes := fakeFleet(clock, "r0", "r1")
	fakes[0].Hang = func(int, string) bool { return true }
	fakes[0].Received = make(chan string, 1)
	r := route.New(route.Options{
		Clock:       clock,
		Policy:      staticPolicy{},
		HedgeAfter:  50 * time.Millisecond,
		MaxAttempts: 1,
	}, reps...)
	defer r.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := r.Submit(ctx, "m", testInput())
		done <- err
	}()
	<-fakes[0].Received
	clock.Advance(50 * time.Millisecond) // deadline passes; budget says no hedge
	if n := fakes[1].CallCount(); n != 0 {
		t.Fatalf("r1 saw %d calls with MaxAttempts=1", n)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit: %v, want context.Canceled", err)
	}
	waitUntil(t, "primary canceled", func() bool { return fakes[0].CanceledCount() == 1 })
}
