package route

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"drainnas/internal/api"
	"drainnas/internal/serve"
	"drainnas/internal/tensor"
)

// Replica is one serving backend the router can dispatch to — the
// transport-agnostic extraction of serve.Server's submit surface, so an
// in-process batching server and a remote servd instance are
// interchangeable behind one routing tier.
//
// Contract: Submit must honor ctx cancellation promptly — hedging relies on
// canceling the losing attempt, and a Submit that ignores its context turns
// every hedge into a leaked goroutine. InFlight must be cheap (it is read
// on every least-loaded pick); it reports the replica's
// admitted-but-unfinished request count.
type Replica interface {
	ID() string
	InFlight() int64
	Submit(ctx context.Context, model string, input *tensor.Tensor) (serve.Response, error)
}

// LocalReplica adapts an in-process serve.Server to the Replica interface.
type LocalReplica struct {
	id  string
	srv *serve.Server
}

// NewLocalReplica wraps srv under the given replica ID.
func NewLocalReplica(id string, srv *serve.Server) *LocalReplica {
	return &LocalReplica{id: id, srv: srv}
}

// ID implements Replica.
func (r *LocalReplica) ID() string { return r.id }

// InFlight implements Replica via the server's lock-free load counter.
func (r *LocalReplica) InFlight() int64 { return r.srv.Load() }

// Submit implements Replica.
func (r *LocalReplica) Submit(ctx context.Context, model string, input *tensor.Tensor) (serve.Response, error) {
	return r.srv.Submit(ctx, model, input)
}

// Server returns the wrapped server (for lifecycle and stats endpoints).
func (r *LocalReplica) Server() *serve.Server { return r.srv }

// HTTPReplica fans a request out to a remote servd instance over its
// /v1/predict endpoint, translating the shared error envelope back into the
// typed errors local submission would return — so the router's policy,
// hedging and error-mapping logic cannot tell local and remote replicas
// apart. In-flight load is tracked router-side (the remote's own queue
// depth is not consulted per pick; one atomic counter per replica is).
type HTTPReplica struct {
	id       string
	base     string
	client   *http.Client
	inflight atomic.Int64
}

// NewHTTPReplica builds a replica proxying to baseURL (e.g.
// "http://10.0.0.3:8080"); a nil client uses http.DefaultClient. The
// replica ID defaults to the base URL when id is empty.
func NewHTTPReplica(id, baseURL string, client *http.Client) *HTTPReplica {
	if id == "" {
		id = baseURL
	}
	if client == nil {
		client = http.DefaultClient
	}
	return &HTTPReplica{id: id, base: baseURL, client: client}
}

// ID implements Replica.
func (r *HTTPReplica) ID() string { return r.id }

// InFlight implements Replica.
func (r *HTTPReplica) InFlight() int64 { return r.inflight.Load() }

// Submit implements Replica.
func (r *HTTPReplica) Submit(ctx context.Context, model string, input *tensor.Tensor) (serve.Response, error) {
	shape, data, err := chwPayload(input)
	if err != nil {
		return serve.Response{}, err
	}
	body, err := json.Marshal(api.PredictRequest{Model: model, Shape: shape, Data: data})
	if err != nil {
		return serve.Response{}, fmt.Errorf("route: encoding predict request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+"/v1/predict", bytes.NewReader(body))
	if err != nil {
		return serve.Response{}, err
	}
	req.Header.Set("Content-Type", "application/json")

	r.inflight.Add(1)
	defer r.inflight.Add(-1)
	resp, err := r.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return serve.Response{}, ctx.Err()
		}
		return serve.Response{}, fmt.Errorf("route: replica %s: %w", r.id, err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()

	if resp.StatusCode != http.StatusOK {
		var env api.ErrorEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			return serve.Response{}, fmt.Errorf("route: replica %s: status %d", r.id, resp.StatusCode)
		}
		return serve.Response{}, replicaError(r.id, resp.StatusCode, env.Error)
	}
	var pr api.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return serve.Response{}, fmt.Errorf("route: replica %s: decoding response: %w", r.id, err)
	}
	return serve.Response{
		Model:     pr.Model,
		Class:     pr.Class,
		Logits:    pr.Logits,
		BatchSize: pr.BatchSize,
		Queued:    time.Duration(pr.QueuedMS * float64(time.Millisecond)),
		Total:     time.Duration(pr.TotalMS * float64(time.Millisecond)),
	}, nil
}

// replicaError maps a remote error envelope back onto the typed sentinels
// local submission produces, so the router (and its clients) get identical
// error semantics from both transports.
func replicaError(id string, status int, body api.ErrorBody) error {
	base := fmt.Errorf("route: replica %s: %s (%s)", id, body.Message, body.Code)
	switch body.Code {
	case api.CodeQueueFull:
		return errors.Join(serve.ErrQueueFull, base)
	case api.CodeModelNotFound:
		return errors.Join(serve.ErrModelNotFound, base)
	case api.CodeShuttingDown:
		return errors.Join(serve.ErrClosed, base)
	default:
		return base
	}
}

// chwPayload flattens a (C,H,W) or (1,C,H,W) tensor into the predict wire
// shape and data.
func chwPayload(input *tensor.Tensor) ([]int, []float32, error) {
	if input == nil {
		return nil, nil, fmt.Errorf("route: nil input")
	}
	switch input.NDim() {
	case 3:
		return []int{input.Dim(0), input.Dim(1), input.Dim(2)}, input.Data(), nil
	case 4:
		if input.Dim(0) != 1 {
			return nil, nil, fmt.Errorf("route: input batch dim %d, want 1", input.Dim(0))
		}
		return []int{input.Dim(1), input.Dim(2), input.Dim(3)}, input.Data(), nil
	default:
		return nil, nil, fmt.Errorf("route: input must be (C,H,W) or (1,C,H,W), got %v", input.Shape())
	}
}
