package route

import (
	"fmt"
	"hash/fnv"
	"sync/atomic"
)

// Policy chooses which replica serves a request. Pick receives a non-empty
// snapshot of the live replica set and returns an index into it (or -1 to
// signal no viable replica). Implementations must be safe for concurrent
// use; the replica slice is immutable for the duration of the call.
//
// The router also uses the policy for hedge and retry placement, calling
// Pick over the subset of replicas not yet tried for the request — so a
// policy expresses one preference function and the router derives "best",
// "second best", … from it.
type Policy interface {
	Name() string
	Pick(model string, replicas []Replica) int
}

// Policy names accepted by PolicyByName and the -policy flag.
const (
	PolicyRoundRobin  = "round-robin"
	PolicyLeastLoaded = "least-loaded"
	PolicyAffinity    = "affinity"
)

// PolicyByName builds a fresh policy instance from its flag name.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case PolicyRoundRobin, "rr", "":
		return &RoundRobin{}, nil
	case PolicyLeastLoaded, "least_loaded":
		return LeastLoaded{}, nil
	case PolicyAffinity, "model-affinity":
		return ModelAffinity{}, nil
	default:
		return nil, fmt.Errorf("route: unknown policy %q (want %s, %s or %s)",
			name, PolicyRoundRobin, PolicyLeastLoaded, PolicyAffinity)
	}
}

// RoundRobin spreads requests evenly in arrival order, ignoring load and
// model identity. It is the baseline policy and the one that guarantees
// every replica sees traffic (the router-smoke gate relies on that).
type RoundRobin struct {
	next atomic.Uint64
}

// Name implements Policy.
func (p *RoundRobin) Name() string { return PolicyRoundRobin }

// Pick implements Policy.
func (p *RoundRobin) Pick(model string, replicas []Replica) int {
	if len(replicas) == 0 {
		return -1
	}
	return int((p.next.Add(1) - 1) % uint64(len(replicas)))
}

// LeastLoaded picks the replica with the fewest in-flight requests (ties
// break to the lowest index, which keeps the assignment sequence exact for
// the golden tests). It reads each replica's Load-backed InFlight counter,
// which is why serve.Server grew a lock-free Load() accessor.
type LeastLoaded struct{}

// Name implements Policy.
func (LeastLoaded) Name() string { return PolicyLeastLoaded }

// Pick implements Policy.
func (LeastLoaded) Pick(model string, replicas []Replica) int {
	best := -1
	var bestLoad int64
	for i, r := range replicas {
		if load := r.InFlight(); best < 0 || load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best
}

// ModelAffinity routes each model to a stable replica via rendezvous
// (highest-random-weight) hashing over replica IDs, so a replica keeps
// serving the models whose compiled plans are warm in its cache, and a
// replica joining or draining only remaps the models that hashed to it —
// never reshuffling the whole fleet the way modulo hashing would.
type ModelAffinity struct{}

// Name implements Policy.
func (ModelAffinity) Name() string { return PolicyAffinity }

// Pick implements Policy.
func (ModelAffinity) Pick(model string, replicas []Replica) int {
	best := -1
	var bestScore uint64
	for i, r := range replicas {
		if score := rendezvousScore(model, r.ID()); best < 0 || score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// rendezvousScore is the pairwise weight of (model, replica). FNV-1a keeps
// it dependency-free and stable across processes, which the golden affinity
// test pins. The replica ID is hashed last: FNV-1a diffuses the bytes that
// differ between candidates only through the multiplies that follow them,
// so hashing a shared suffix after the discriminating bytes would make
// every model crown nearly the same winner.
func rendezvousScore(model, replicaID string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(model))
	h.Write([]byte{0})
	h.Write([]byte(replicaID))
	return h.Sum64()
}
