package route

import (
	"container/heap"
	"context"
	"fmt"
	"sync"

	"drainnas/internal/metrics"
)

// SLOClass is a request's service-level class. It orders dispatch under the
// Priority scheduler: Interactive preempts Standard preempts Batch when
// dispatch slots are scarce. The zero value is ClassStandard so an
// unannotated request gets middle-of-the-road treatment.
type SLOClass int

// The three classes, lowest priority first.
const (
	ClassStandard SLOClass = iota
	ClassBatch
	ClassInteractive
)

// String names the class as it appears on the wire ("slo" field) and in
// metrics labels.
func (c SLOClass) String() string {
	switch c {
	case ClassBatch:
		return "batch"
	case ClassInteractive:
		return "interactive"
	case ClassStandard:
		return "standard"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// priority is the dispatch rank under the Priority scheduler; larger wins.
func (c SLOClass) priority() int {
	switch c {
	case ClassInteractive:
		return 2
	case ClassStandard:
		return 1
	default:
		return 0
	}
}

// ParseClass maps the wire name to a class; empty means standard.
func ParseClass(s string) (SLOClass, error) {
	switch s {
	case "", "standard":
		return ClassStandard, nil
	case "batch":
		return ClassBatch, nil
	case "interactive":
		return ClassInteractive, nil
	default:
		return ClassStandard, fmt.Errorf("route: unknown SLO class %q (want batch, standard or interactive)", s)
	}
}

// SchedMode selects how waiting requests are ordered when dispatch slots
// free up.
type SchedMode int

const (
	// FCFS dispatches in arrival order.
	FCFS SchedMode = iota
	// Priority dispatches by SLO class (interactive > standard > batch),
	// FCFS within a class.
	Priority
	// SJF dispatches the request with the smallest predicted latency first
	// (estimates come from latmeter predictions seeded at startup, refined
	// by a measured EWMA), FCFS among equals. Classic shortest-job-first:
	// minimizes mean wait when job lengths differ by model.
	SJF
)

// String names the mode as accepted by -sched.
func (m SchedMode) String() string {
	switch m {
	case Priority:
		return "priority"
	case SJF:
		return "sjf"
	default:
		return "fcfs"
	}
}

// ParseSchedMode maps the flag name to a mode; empty means FCFS.
func ParseSchedMode(s string) (SchedMode, error) {
	switch s {
	case "", "fcfs":
		return FCFS, nil
	case "priority":
		return Priority, nil
	case "sjf":
		return SJF, nil
	default:
		return FCFS, fmt.Errorf("route: unknown scheduler %q (want fcfs, priority or sjf)", s)
	}
}

// waiter is one request parked at the dispatch gate.
type waiter struct {
	seq     uint64
	class   SLOClass
	estMS   float64
	ready   chan struct{}
	granted bool
	// index is the waiter's current position in the gate heap, maintained by
	// waiterHeap's Swap/Push/Pop so a canceled waiter can be heap.Removed
	// eagerly; -1 once it has left the heap (granted or removed).
	index int
}

// waiterHeap orders waiters by the gate's scheduling mode. It implements
// heap.Interface; ties always break by arrival sequence so every mode is a
// total, deterministic order — the property the golden scheduling tests pin.
type waiterHeap struct {
	mode SchedMode
	ws   []*waiter
}

func (h *waiterHeap) Len() int { return len(h.ws) }

func (h *waiterHeap) Less(i, j int) bool {
	a, b := h.ws[i], h.ws[j]
	switch h.mode {
	case Priority:
		if pa, pb := a.class.priority(), b.class.priority(); pa != pb {
			return pa > pb
		}
	case SJF:
		if a.estMS != b.estMS {
			return a.estMS < b.estMS
		}
	}
	return a.seq < b.seq
}

func (h *waiterHeap) Swap(i, j int) {
	h.ws[i], h.ws[j] = h.ws[j], h.ws[i]
	h.ws[i].index = i
	h.ws[j].index = j
}

func (h *waiterHeap) Push(x any) {
	w := x.(*waiter)
	w.index = len(h.ws)
	h.ws = append(h.ws, w)
}

func (h *waiterHeap) Pop() any {
	old := h.ws
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.index = -1
	h.ws = old[:n-1]
	return w
}

// gate is a counting semaphore whose waiters are granted in scheduler order
// rather than FIFO: this is where SLO classes and predicted latency shape
// the dispatch sequence ("priority batch formation" at the fleet tier —
// which requests reach the replicas' batchers first). A nil gate is
// unlimited.
type gate struct {
	mu       sync.Mutex
	capacity int
	inUse    int
	seq      uint64
	heap     waiterHeap
}

func newGate(capacity int, mode SchedMode) *gate {
	if capacity <= 0 {
		return nil
	}
	return &gate{capacity: capacity, heap: waiterHeap{mode: mode}}
}

// acquire blocks until the request is granted a dispatch slot in scheduler
// order, or ctx ends. A grant that races a cancellation is handed on to the
// next waiter, never lost.
func (g *gate) acquire(ctx context.Context, class SLOClass, estMS float64) error {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	if g.inUse < g.capacity && g.heap.Len() == 0 {
		g.inUse++
		g.mu.Unlock()
		return nil
	}
	w := &waiter{seq: g.seq, class: class, estMS: estMS, ready: make(chan struct{})}
	g.seq++
	heap.Push(&g.heap, w)
	g.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		g.mu.Lock()
		if w.granted {
			// The grant raced the cancellation: pass the slot on.
			g.mu.Unlock()
			g.release()
		} else {
			// Eagerly remove the waiter instead of marking it abandoned for a
			// lazy reap in release(): reaping only runs when a slot frees, so
			// with every slot stuck on hung replicas the heap grew without
			// bound under canceling clients. w.index is maintained by the
			// heap, and !granted (checked under the same mutex release()
			// grants under) means the waiter is still in it.
			heap.Remove(&g.heap, w.index)
			g.mu.Unlock()
		}
		return ctx.Err()
	}
}

// release returns a slot and grants it to the best waiter. Canceled waiters
// are never seen here: they remove themselves from the heap eagerly.
func (g *gate) release() {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.inUse--
	for g.inUse < g.capacity && g.heap.Len() > 0 {
		w := heap.Pop(&g.heap).(*waiter)
		w.granted = true
		g.inUse++
		close(w.ready)
	}
	g.mu.Unlock()
}

// waiting reports how many requests are parked at the gate.
func (g *gate) waiting() int {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.heap.Len()
}

// latencyEstimator supplies the SJF scheduler's per-model latency estimate:
// a static seed (typically latmeter predictions computed from each model's
// compiled plan at startup) overlaid by an exponentially-weighted moving
// average of measured end-to-end latency, so estimates self-correct as real
// traffic flows. Unknown models estimate 0, degrading SJF to FCFS for them.
//
// The EWMA map is keyed by client-supplied model names, so — exactly like
// the per-model serving stats — it is capped: once maxTrackedEstimates
// distinct names have been observed, further names share one overflow
// entry (metrics.OverflowModelKey) instead of growing the map forever
// under adversarial model names. The seed map is operator-provided at
// startup and needs no cap.
type latencyEstimator struct {
	mu   sync.Mutex
	seed map[string]float64
	ewma map[string]float64
}

// ewmaAlpha weights new observations; 0.2 smooths batch-size and cache
// noise while still tracking drift within a few dozen requests.
const ewmaAlpha = 0.2

// maxTrackedEstimates bounds the measured-EWMA map, matching the
// per-replica cap in metrics.RouterStats.
const maxTrackedEstimates = 64

func newLatencyEstimator(seed map[string]float64) *latencyEstimator {
	e := &latencyEstimator{seed: make(map[string]float64, len(seed)), ewma: map[string]float64{}}
	for k, v := range seed {
		e.seed[k] = v
	}
	return e
}

func (e *latencyEstimator) estimateMS(model string) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if ms, ok := e.ewma[model]; ok {
		return ms
	}
	if ms, ok := e.seed[model]; ok {
		// A real per-model prediction beats the blended overflow bucket.
		return ms
	}
	if len(e.ewma) >= maxTrackedEstimates {
		return e.ewma[metrics.OverflowModelKey]
	}
	return 0
}

func (e *latencyEstimator) observeMS(model string, ms float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := model
	if _, ok := e.ewma[key]; !ok && len(e.ewma) >= maxTrackedEstimates {
		key = metrics.OverflowModelKey
	}
	if prev, ok := e.ewma[key]; ok {
		e.ewma[key] = prev + ewmaAlpha*(ms-prev)
	} else {
		e.ewma[key] = ms
	}
}
