package route

import (
	"context"
	"fmt"
	"testing"
	"time"

	"drainnas/internal/metrics"
)

// TestGateCancelEagerlyRemovesWaiters pins the fix for the canceled-waiter
// leak: waiters used to be marked abandoned and reaped lazily in release(),
// so when every slot was stuck on hung replicas (no release ever ran) the
// heap grew without bound under canceling clients. Cancellation must now
// remove the waiter from the heap eagerly — with zero releases.
func TestGateCancelEagerlyRemovesWaiters(t *testing.T) {
	for _, mode := range []SchedMode{FCFS, Priority, SJF} {
		t.Run(mode.String(), func(t *testing.T) {
			g := newGate(2, mode)
			// Saturate the gate: both slots taken, never released (the
			// "every slot stuck on a hung replica" scenario).
			for i := 0; i < 2; i++ {
				if err := g.acquire(context.Background(), ClassStandard, 0); err != nil {
					t.Fatalf("filling slot %d: %v", i, err)
				}
			}

			const waiters = 10000
			ctx, cancel := context.WithCancel(context.Background())
			errs := make(chan error, waiters)
			for i := 0; i < waiters; i++ {
				class := SLOClass(i % 3)
				est := float64(i % 7)
				go func() { errs <- g.acquire(ctx, class, est) }()
			}
			// Quiescence wait: every waiter parked in the heap before the
			// cancellation storm.
			deadline := time.Now().Add(10 * time.Second)
			for g.waiting() < waiters {
				if time.Now().After(deadline) {
					t.Fatalf("only %d/%d waiters parked", g.waiting(), waiters)
				}
				time.Sleep(100 * time.Microsecond)
			}

			cancel()
			for i := 0; i < waiters; i++ {
				if err := <-errs; err != context.Canceled {
					t.Fatalf("waiter returned %v, want context.Canceled", err)
				}
			}

			// No release ever ran; the heap must still be empty.
			if n := g.waiting(); n != 0 {
				t.Fatalf("waiting() = %d after canceling every waiter, want 0", n)
			}
			g.mu.Lock()
			heapLen, inUse := len(g.heap.ws), g.inUse
			g.mu.Unlock()
			if heapLen != 0 {
				t.Fatalf("heap holds %d waiters after cancellation, want 0", heapLen)
			}
			if inUse != 2 {
				t.Fatalf("inUse = %d, want the 2 hung slots", inUse)
			}

			// The gate still works once the hung slots free up.
			done := make(chan error, 1)
			go func() { done <- g.acquire(context.Background(), ClassInteractive, 0) }()
			g.release()
			if err := <-done; err != nil {
				t.Fatalf("acquire after release: %v", err)
			}
		})
	}
}

// TestGateGrantRacingCancelHandsSlotOn keeps the grant-races-cancel
// hand-off honest next to the eager-removal path: a waiter granted between
// its cancellation firing and it taking the gate lock must pass the slot to
// the next waiter rather than leak it.
func TestGateGrantRacingCancelHandsSlotOn(t *testing.T) {
	g := newGate(1, FCFS)
	if err := g.acquire(context.Background(), ClassStandard, 0); err != nil {
		t.Fatalf("filling slot: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	first := make(chan error, 1)
	go func() { first <- g.acquire(ctx, ClassStandard, 0) }()
	awaitWaiting(t, g, 1)

	// Grant under the lock, then cancel before the waiter can observe the
	// grant: simulate the race by marking granted the way release() does.
	g.mu.Lock()
	w := g.heap.ws[0]
	g.mu.Unlock()
	g.release() // grants w: inUse back to 1, heap empty
	cancel()
	if err := <-first; err != nil && err != context.Canceled {
		t.Fatalf("first waiter: %v", err)
	}
	_ = w

	// Whether the waiter returned the grant (canceled) or kept it (won the
	// select race), exactly one slot's worth of capacity must exist: a
	// second acquire succeeds after at most one release.
	second := make(chan error, 1)
	go func() { second <- g.acquire(context.Background(), ClassStandard, 0) }()
	select {
	case err := <-second:
		if err != nil {
			t.Fatalf("second acquire: %v", err)
		}
	case <-time.After(50 * time.Millisecond):
		g.release()
		if err := <-second; err != nil {
			t.Fatalf("second acquire after release: %v", err)
		}
	}
}

func awaitWaiting(t *testing.T, g *gate, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for g.waiting() < n {
		if time.Now().After(deadline) {
			t.Fatalf("gate never reached %d waiters (have %d)", n, g.waiting())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestLatencyEstimatorCapsEWMAMap pins the fix for the unbounded
// measured-EWMA map: adversarial client-supplied model names must aggregate
// under the overflow key past maxTrackedEstimates, the same degradation the
// per-model serving stats use.
func TestLatencyEstimatorCapsEWMAMap(t *testing.T) {
	e := newLatencyEstimator(map[string]float64{"seeded": 7.5})

	for i := 0; i < 500; i++ {
		e.observeMS(fmt.Sprintf("adversarial-%d", i), float64(10+i%5))
	}

	e.mu.Lock()
	n := len(e.ewma)
	_, hasOverflow := e.ewma[metrics.OverflowModelKey]
	e.mu.Unlock()
	if n > maxTrackedEstimates+1 {
		t.Fatalf("ewma map grew to %d entries, cap is %d + overflow", n, maxTrackedEstimates)
	}
	if !hasOverflow {
		t.Fatal("overflow key absent after exceeding the cap")
	}

	// Models tracked before the cap keep their own estimate.
	if got := e.estimateMS("adversarial-0"); got < 10 || got > 15 {
		t.Fatalf("pre-cap model estimate %.2f, want its own EWMA in [10,15]", got)
	}
	// Models past the cap share the overflow estimate (non-zero: SJF still
	// has a signal, just a blended one).
	if got := e.estimateMS("adversarial-499"); got <= 0 {
		t.Fatalf("post-cap model estimate %.2f, want blended overflow > 0", got)
	}
	// A seeded-but-overflowed model prefers its real seed over the blend.
	if got := e.estimateMS("seeded"); got != 7.5 {
		t.Fatalf("seeded model estimate %.2f, want seed 7.5", got)
	}
	// A never-seen model with no seed estimates 0 only while the map is
	// under the cap; past it, the overflow blend stands in.
	if got := e.estimateMS("never-seen"); got <= 0 {
		t.Fatalf("unknown model estimate %.2f, want overflow blend > 0", got)
	}
}
