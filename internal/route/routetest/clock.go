// Package routetest is the deterministic test harness for the routing
// tier: a manually-advanced FakeClock satisfying route.Clock, and a
// FakeReplica fault injector with configurable latency schedules, error
// injection and hangs. Together they let routing, hedging, scheduling and
// admission behavior be pinned by table-driven tests that never sleep —
// simulated time moves only when a test calls Advance.
package routetest

import (
	"sync"
	"time"

	"drainnas/internal/route"
)

// FakeClock is an injectable clock whose time moves only via Advance.
// Timers created through NewTimer fire (once) when Advance carries the
// clock past their deadline.
type FakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

// NewFakeClock starts a clock at a fixed epoch (the specific instant is
// irrelevant; only differences matter).
func NewFakeClock() *FakeClock {
	return &FakeClock{now: time.Unix(1_700_000_000, 0)}
}

// Now implements route.Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// NewTimer implements route.Clock.
func (c *FakeClock) NewTimer(d time.Duration) route.Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{clock: c, when: c.now.Add(d), ch: make(chan time.Time, 1)}
	if d <= 0 {
		t.fired = true
		t.ch <- c.now
	} else {
		c.timers = append(c.timers, t)
	}
	return t
}

// Advance moves the clock forward and fires every live timer whose deadline
// has passed.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	now := c.now
	live := c.timers[:0]
	var fire []*fakeTimer
	for _, t := range c.timers {
		switch {
		case t.stopped:
		case !t.when.After(now):
			t.fired = true
			fire = append(fire, t)
		default:
			live = append(live, t)
		}
	}
	c.timers = live
	c.mu.Unlock()
	for _, t := range fire {
		t.ch <- now
	}
}

// Timers reports how many timers are armed (created, not yet fired or
// stopped). Tests use it with AwaitTimers to know a hedge deadline or a
// fake replica's latency wait is registered before advancing the clock.
func (c *FakeClock) Timers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, t := range c.timers {
		if !t.stopped {
			n++
		}
	}
	return n
}

// AwaitTimers blocks until at least n timers are armed — the
// synchronization point between a test goroutine and the code under test
// arming clock-driven deadlines concurrently. It polls (this is a
// quiescence wait, not a timing assertion) and gives up loudly after 10s.
func (c *FakeClock) AwaitTimers(n int) bool {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if c.Timers() >= n {
			return true
		}
		time.Sleep(100 * time.Microsecond)
	}
	return false
}

type fakeTimer struct {
	clock   *FakeClock
	when    time.Time
	ch      chan time.Time
	fired   bool
	stopped bool
}

func (t *fakeTimer) C() <-chan time.Time { return t.ch }

func (t *fakeTimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	active := !t.fired && !t.stopped
	t.stopped = true
	return active
}
