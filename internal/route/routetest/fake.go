package routetest

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"drainnas/internal/serve"
	"drainnas/internal/tensor"
)

// FakeReplica implements route.Replica with scriptable faults. Every knob is
// keyed by the replica-local attempt sequence number (0-based, in arrival
// order) and the model name, so tests express scenarios as tables:
//
//   - Latency returns a simulated service time; the fake waits on a
//     FakeClock timer, so the request completes only when the test advances
//     the clock past it.
//   - Err injects a failure for an attempt (returned after any latency).
//   - Hang makes an attempt block until its context is canceled — the
//     straggler that hedging and leak tests are built around.
//   - Gate, when non-nil, makes every attempt block until the test sends on
//     (or closes) the channel, for sequencing scheduler-order tests.
//
// The fake records the model of every call in order, counts attempts that
// ended by observing ctx cancellation, and tracks in-flight attempts on top
// of an optional SetLoad base so least-loaded tests can script load shapes
// without issuing traffic.
type FakeReplica struct {
	id    string
	clock *FakeClock

	Latency func(seq int, model string) time.Duration
	Err     func(seq int, model string) error
	Hang    func(seq int, model string) bool
	Gate    chan struct{}
	// Received, when non-nil, gets the model name of each arriving call
	// before any waiting begins. Size the buffer for the expected traffic;
	// the send blocks otherwise.
	Received chan string
	// Respond overrides the canned response for a completed attempt.
	Respond func(model string) serve.Response

	mu       sync.Mutex
	calls    []string
	seq      int
	canceled atomic.Int64
	inflight atomic.Int64
	baseLoad atomic.Int64
}

// NewFakeReplica builds a fake replica that completes every request
// immediately with a canned response until faults are scripted.
func NewFakeReplica(id string, clock *FakeClock) *FakeReplica {
	return &FakeReplica{id: id, clock: clock}
}

// ID implements route.Replica.
func (r *FakeReplica) ID() string { return r.id }

// InFlight implements route.Replica: live attempts plus the SetLoad base.
func (r *FakeReplica) InFlight() int64 { return r.inflight.Load() + r.baseLoad.Load() }

// SetLoad scripts a synthetic in-flight base, so least-loaded golden tests
// can shape the fleet's load without concurrency.
func (r *FakeReplica) SetLoad(n int64) { r.baseLoad.Store(n) }

// Calls returns the models of all attempts received so far, in order.
func (r *FakeReplica) Calls() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.calls...)
}

// CallCount returns how many attempts this replica has received.
func (r *FakeReplica) CallCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.calls)
}

// CanceledCount reports how many attempts ended by observing their context
// canceled — the signal hedging's loser cancellation actually reached the
// replica.
func (r *FakeReplica) CanceledCount() int64 { return r.canceled.Load() }

// Submit implements route.Replica.
func (r *FakeReplica) Submit(ctx context.Context, model string, input *tensor.Tensor) (serve.Response, error) {
	r.mu.Lock()
	seq := r.seq
	r.seq++
	r.calls = append(r.calls, model)
	r.mu.Unlock()

	r.inflight.Add(1)
	defer r.inflight.Add(-1)

	if r.Received != nil {
		r.Received <- model
	}

	if r.Hang != nil && r.Hang(seq, model) {
		<-ctx.Done()
		r.canceled.Add(1)
		return serve.Response{}, ctx.Err()
	}

	if r.Gate != nil {
		select {
		case <-r.Gate:
		case <-ctx.Done():
			r.canceled.Add(1)
			return serve.Response{}, ctx.Err()
		}
	}

	if r.Latency != nil {
		if d := r.Latency(seq, model); d > 0 {
			t := r.clock.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C():
			case <-ctx.Done():
				r.canceled.Add(1)
				return serve.Response{}, ctx.Err()
			}
		}
	}

	if r.Err != nil {
		if err := r.Err(seq, model); err != nil {
			return serve.Response{}, err
		}
	}

	if r.Respond != nil {
		return r.Respond(model), nil
	}
	return serve.Response{Model: model, Class: 0, Logits: []float32{1, 0}, BatchSize: 1}, nil
}
