// Package route is the cluster-scale routing tier over the single-node
// serving substrate in internal/serve: a Router spreads requests across a
// mutable fleet of Replicas (in-process serve.Servers or remote servd
// instances behind the HTTP adapter) through a pluggable Policy
// (round-robin, least-loaded, model-affinity), with token-bucket admission
// in front, SLO-class-aware dispatch ordering (fcfs / priority /
// shortest-job-first on predicted latency), and hedged retries that cancel
// the losing attempt.
//
// Every time-dependent behavior — bucket refill, hedge deadlines, latency
// measurement — runs off an injected Clock, so the whole tier is testable
// with a fake clock and fault-injecting fake replicas (routetest) instead
// of wall-clock sleeps.
package route

import (
	"context"
	"errors"
	"sync"
	"time"

	"drainnas/internal/metrics"
	"drainnas/internal/serve"
	"drainnas/internal/tensor"
)

// Typed router errors, mapped by front ends to transport codes the same way
// serve's sentinels are.
var (
	// ErrThrottled is returned when token-bucket admission rejects the
	// request (HTTP 429).
	ErrThrottled = errors.New("route: admission throttled")
	// ErrNoReplicas is returned when the replica set is empty or the policy
	// declines every replica (HTTP 503).
	ErrNoReplicas = errors.New("route: no replicas available")
	// ErrClosed is returned by Submit after Close (HTTP 503).
	ErrClosed = errors.New("route: router closed")
)

// Options configures a Router. The zero value routes round-robin with no
// admission limit, no dispatch bound, and no hedging.
type Options struct {
	// Policy picks the replica per request (default: round-robin).
	Policy Policy
	// Sched orders waiting requests when MaxInFlight bounds dispatch.
	Sched SchedMode
	// MaxInFlight bounds concurrently dispatched requests; excess waits at
	// the scheduling gate in Sched order. 0 = unlimited (Sched is then
	// irrelevant: nothing ever queues at the router).
	MaxInFlight int
	// HedgeAfter launches one hedge attempt on a different replica if the
	// primary has not answered within this duration. 0 disables hedging.
	HedgeAfter time.Duration
	// MaxAttempts caps total attempts per request (primary + hedges +
	// error retries). Default 2 when HedgeAfter > 0 or RetryOnError is
	// set, else 1.
	MaxAttempts int
	// RetryOnError redispatches immediately to an untried replica when an
	// attempt fails with a retryable error (anything but not-found and the
	// caller's own cancellation), within the MaxAttempts budget.
	RetryOnError bool
	// Rate and Burst configure token-bucket admission (tokens/second and
	// bucket capacity). Rate <= 0 disables admission control.
	Rate, Burst float64
	// EstimateSeedMS seeds the SJF latency estimator per model — typically
	// latmeter predictions computed from each model's compiled plan. A
	// measured EWMA overrides the seed as traffic flows.
	EstimateSeedMS map[string]float64
	// Stats receives routing counters; a fresh RouterStats is created when
	// nil.
	Stats *metrics.RouterStats
	// Clock drives bucket refill, hedge timers and latency measurement
	// (default SystemClock; tests inject a fake).
	Clock Clock
}

// Response is one routed request's result: the replica's response plus
// which replica won and whether the winning attempt was a hedge.
type Response struct {
	serve.Response
	// Replica is the ID of the replica that produced the response.
	Replica string
	// Hedged reports that the hedge attempt (not the primary) won.
	Hedged bool
}

// Router fans requests out over a mutable replica fleet. Construct with
// New; replicas can join (AddReplica) and drain (RemoveReplica) while
// traffic flows. Close drains in-flight requests; it does not close the
// replicas themselves, whose lifecycle belongs to their owner.
type Router struct {
	policy      Policy
	hedgeAfter  time.Duration
	maxAttempts int
	retryErr    bool
	clock       Clock
	stats       *metrics.RouterStats
	bucket      *TokenBucket
	g           *gate
	est         *latencyEstimator

	mu       sync.RWMutex
	replicas []Replica
	closed   bool
	inflight sync.WaitGroup
}

// New builds a router over the given replicas.
func New(opts Options, replicas ...Replica) *Router {
	if opts.Policy == nil {
		opts.Policy = &RoundRobin{}
	}
	if opts.Clock == nil {
		opts.Clock = SystemClock
	}
	if opts.Stats == nil {
		opts.Stats = &metrics.RouterStats{}
	}
	if opts.MaxAttempts <= 0 {
		if opts.HedgeAfter > 0 || opts.RetryOnError {
			opts.MaxAttempts = 2
		} else {
			opts.MaxAttempts = 1
		}
	}
	var bucket *TokenBucket
	if opts.Rate > 0 {
		bucket = NewTokenBucket(opts.Rate, opts.Burst, opts.Clock)
	}
	return &Router{
		policy:      opts.Policy,
		hedgeAfter:  opts.HedgeAfter,
		maxAttempts: opts.MaxAttempts,
		retryErr:    opts.RetryOnError,
		clock:       opts.Clock,
		stats:       opts.Stats,
		bucket:      bucket,
		g:           newGate(opts.MaxInFlight, opts.Sched),
		est:         newLatencyEstimator(opts.EstimateSeedMS),
		replicas:    append([]Replica(nil), replicas...),
	}
}

// Stats returns the router's counter sink.
func (r *Router) Stats() *metrics.RouterStats { return r.stats }

// Policy returns the routing policy in use.
func (r *Router) Policy() Policy { return r.policy }

// Replicas returns a snapshot of the live replica set.
func (r *Router) Replicas() []Replica {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]Replica(nil), r.replicas...)
}

// AddReplica joins rep to the fleet; it is eligible for the very next pick.
func (r *Router) AddReplica(rep Replica) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.replicas = append(r.replicas, rep)
}

// RemoveReplica drains the replica with the given ID out of the rotation:
// no new attempts are routed to it, while attempts already in flight on it
// finish (or are hedged away) naturally. It reports whether a replica was
// removed.
func (r *Router) RemoveReplica(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, rep := range r.replicas {
		if rep.ID() == id {
			r.replicas = append(r.replicas[:i], r.replicas[i+1:]...)
			return true
		}
	}
	return false
}

// Waiting reports how many admitted requests are parked at the scheduling
// gate (0 when MaxInFlight is unlimited).
func (r *Router) Waiting() int { return r.g.waiting() }

// Close stops admission and waits for in-flight requests to finish. It is
// idempotent and does not close the replicas.
func (r *Router) Close() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.inflight.Wait()
}

// Submit routes one standard-class request; see SubmitClass.
func (r *Router) Submit(ctx context.Context, model string, input *tensor.Tensor) (Response, error) {
	return r.SubmitClass(ctx, ClassStandard, model, input)
}

// SubmitClass routes one request through admission, the scheduling gate,
// policy placement and (when configured) hedged retries, blocking until a
// replica answers or the request is rejected or canceled.
func (r *Router) SubmitClass(ctx context.Context, class SLOClass, model string, input *tensor.Tensor) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	r.mu.RLock()
	if r.closed {
		r.mu.RUnlock()
		return Response{}, ErrClosed
	}
	r.inflight.Add(1)
	r.mu.RUnlock()
	defer r.inflight.Done()

	cls := class.String()
	r.stats.Submitted(cls)
	if !r.bucket.Allow() {
		r.stats.Throttled()
		return Response{}, ErrThrottled
	}

	enq := r.clock.Now()
	if err := r.g.acquire(ctx, class, r.est.estimateMS(model)); err != nil {
		r.stats.Failed(cls)
		return Response{}, err
	}
	defer r.g.release()
	r.stats.QueueWait(cls, r.clock.Now().Sub(enq))

	resp, err := r.dispatch(ctx, model, input)
	total := r.clock.Now().Sub(enq)
	if err != nil {
		r.stats.Failed(cls)
		return Response{}, err
	}
	r.est.observeMS(model, float64(total)/float64(time.Millisecond))
	r.stats.Completed(cls, total)
	return resp, nil
}

// attemptResult is one replica attempt's outcome.
type attemptResult struct {
	resp  serve.Response
	err   error
	rep   Replica
	hedge bool
}

// dispatch runs the hedged attempt state machine: place the primary by
// policy, arm the hedge deadline, launch at most MaxAttempts-1 extra
// attempts (a hedge when the deadline fires, an immediate retry when an
// attempt fails retryably), first success wins, and every losing attempt's
// context is canceled on return — the deferred cancels are what guarantee a
// hung straggler cannot leak a goroutine past its replica's cancellation
// handling.
func (r *Router) dispatch(ctx context.Context, model string, input *tensor.Tensor) (Response, error) {
	reps := r.Replicas()
	if len(reps) == 0 {
		r.stats.NoReplicas()
		return Response{}, ErrNoReplicas
	}
	t0 := r.clock.Now()
	primary := r.policy.Pick(model, reps)
	if primary < 0 || primary >= len(reps) {
		r.stats.NoReplicas()
		return Response{}, ErrNoReplicas
	}
	r.stats.Decision(r.policy.Name(), reps[primary].ID(), r.clock.Now().Sub(t0))

	results := make(chan attemptResult, r.maxAttempts)
	var cancels []context.CancelFunc
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()
	tried := make(map[string]bool, r.maxAttempts)
	launch := func(rep Replica, hedge bool) {
		actx, cancel := context.WithCancel(ctx)
		cancels = append(cancels, cancel)
		tried[rep.ID()] = true
		go func() {
			resp, err := rep.Submit(actx, model, input)
			results <- attemptResult{resp: resp, err: err, rep: rep, hedge: hedge}
		}()
	}

	// Arm the hedge deadline before the primary launches so a fake clock
	// deterministically sees the timer no later than the fake replica sees
	// the request.
	var hedgeC <-chan time.Time
	if r.hedgeAfter > 0 && r.maxAttempts > 1 && len(reps) > 1 {
		timer := r.clock.NewTimer(r.hedgeAfter)
		defer timer.Stop()
		hedgeC = timer.C()
	}

	launch(reps[primary], false)
	outstanding := 1
	attempts := 1
	var firstErr error
	for {
		select {
		case out := <-results:
			outstanding--
			if out.err == nil {
				r.stats.AttemptDone(out.rep.ID(), true)
				if out.hedge {
					r.stats.HedgeWon(out.rep.ID())
				}
				if outstanding > 0 {
					// The deferred cancels cut the straggler(s) loose.
					r.stats.LosersCanceled(outstanding)
				}
				return Response{Response: out.resp, Replica: out.rep.ID(), Hedged: out.hedge}, nil
			}
			if ctx.Err() != nil {
				return Response{}, ctx.Err()
			}
			r.stats.AttemptDone(out.rep.ID(), false)
			if firstErr == nil {
				firstErr = out.err
			}
			if r.retryErr && retryable(out.err) && attempts < r.maxAttempts {
				if next := pickExcluding(r.policy, model, reps, tried); next != nil {
					attempts++
					outstanding++
					r.stats.Retried(next.ID())
					launch(next, false)
				}
			}
			if outstanding == 0 {
				return Response{}, firstErr
			}
		case <-hedgeC:
			hedgeC = nil
			if attempts < r.maxAttempts {
				if next := pickExcluding(r.policy, model, reps, tried); next != nil {
					attempts++
					outstanding++
					r.stats.HedgeLaunched(next.ID())
					launch(next, true)
				}
			}
		case <-ctx.Done():
			return Response{}, ctx.Err()
		}
	}
}

// pickExcluding applies the policy over the replicas not yet tried for this
// request, mapping the pick back to the original replica. It returns nil
// when every replica has been tried.
func pickExcluding(p Policy, model string, reps []Replica, tried map[string]bool) Replica {
	rest := make([]Replica, 0, len(reps))
	for _, rep := range reps {
		if !tried[rep.ID()] {
			rest = append(rest, rep)
		}
	}
	if len(rest) == 0 {
		return nil
	}
	i := p.Pick(model, rest)
	if i < 0 || i >= len(rest) {
		return nil
	}
	return rest[i]
}

// retryable reports whether a failed attempt is worth redispatching to a
// different replica: load and transient faults are, a missing model (the
// same on every replica of a uniform fleet) and the caller's own
// cancellation are not.
func retryable(err error) bool {
	switch {
	case errors.Is(err, serve.ErrModelNotFound),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return false
	default:
		return true
	}
}
