package route

import "time"

// Timer is the stoppable timer the router arms for hedging deadlines.
type Timer interface {
	// C fires once when the timer expires.
	C() <-chan time.Time
	// Stop releases the timer; it reports whether the stop preempted the
	// fire, matching time.Timer.Stop.
	Stop() bool
}

// Clock abstracts wall time so every time-dependent routing behavior —
// token-bucket refill, hedging deadlines, latency measurement — can be
// driven by a fake clock in tests instead of real sleeps. Production code
// uses SystemClock; routetest.FakeClock advances only when told to, which is
// what makes the policy/hedging suites deterministic.
type Clock interface {
	Now() time.Time
	NewTimer(d time.Duration) Timer
}

// SystemClock is the real time.Now/time.NewTimer clock.
var SystemClock Clock = systemClock{}

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

func (systemClock) NewTimer(d time.Duration) Timer { return systemTimer{time.NewTimer(d)} }

type systemTimer struct{ t *time.Timer }

func (t systemTimer) C() <-chan time.Time { return t.t.C }

func (t systemTimer) Stop() bool { return t.t.Stop() }
