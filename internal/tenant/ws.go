package tenant

import (
	"bufio"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
)

// Minimal server-side RFC 6455 WebSocket support for the live dashboard —
// hand-rolled because the module takes no dependencies beyond the standard
// library. Only what the dashboard needs is implemented: the upgrade
// handshake, unfragmented text frames server→client, and enough of the
// client→server read path to answer pings and notice a close. It rides on
// http.Hijacker, which is exactly the capability the StatusRecorder
// middleware forwards.

// wsGUID is the fixed handshake GUID from RFC 6455 §1.3.
const wsGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// WebSocket frame opcodes (RFC 6455 §5.2).
const (
	opText  = 0x1
	opClose = 0x8
	opPing  = 0x9
	opPong  = 0xa
)

// wsAcceptKey derives the Sec-WebSocket-Accept value for a client key.
func wsAcceptKey(key string) string {
	sum := sha1.Sum([]byte(key + wsGUID))
	return base64.StdEncoding.EncodeToString(sum[:])
}

// WSConn is one upgraded dashboard connection. Writes are serialized; the
// read side runs only in serveRead.
type WSConn struct {
	conn net.Conn
	rw   *bufio.ReadWriter
	wmu  sync.Mutex
}

// headerContainsToken reports whether a comma-separated header list
// contains token, case-insensitively ("Connection: keep-alive, Upgrade").
func headerContainsToken(value, token string) bool {
	for _, part := range strings.Split(value, ",") {
		if strings.EqualFold(strings.TrimSpace(part), token) {
			return true
		}
	}
	return false
}

// UpgradeWebSocket performs the RFC 6455 server handshake and hijacks the
// connection. On failure it writes the error response itself and returns a
// non-nil error; on success the caller owns the returned connection.
func UpgradeWebSocket(w http.ResponseWriter, r *http.Request) (*WSConn, error) {
	if !strings.EqualFold(r.Header.Get("Upgrade"), "websocket") ||
		!headerContainsToken(r.Header.Get("Connection"), "Upgrade") {
		w.Header().Set("Upgrade", "websocket")
		http.Error(w, "expected a WebSocket upgrade", http.StatusUpgradeRequired)
		return nil, errors.New("tenant: not a websocket upgrade request")
	}
	if r.Header.Get("Sec-WebSocket-Version") != "13" {
		w.Header().Set("Sec-WebSocket-Version", "13")
		http.Error(w, "unsupported WebSocket version", http.StatusBadRequest)
		return nil, errors.New("tenant: unsupported websocket version")
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		http.Error(w, "missing Sec-WebSocket-Key", http.StatusBadRequest)
		return nil, errors.New("tenant: missing Sec-WebSocket-Key")
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "connection cannot be hijacked", http.StatusInternalServerError)
		return nil, errors.New("tenant: response writer does not support hijacking")
	}
	conn, rw, err := hj.Hijack()
	if err != nil {
		http.Error(w, "hijack failed", http.StatusInternalServerError)
		return nil, fmt.Errorf("tenant: hijack: %w", err)
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + wsAcceptKey(key) + "\r\n\r\n"
	if _, err := rw.WriteString(resp); err == nil {
		err = rw.Flush()
	} else {
		_ = rw.Flush()
	}
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("tenant: writing handshake: %w", err)
	}
	return &WSConn{conn: conn, rw: rw}, nil
}

// WriteText sends one unfragmented text frame. Server frames are unmasked
// (RFC 6455 §5.1).
func (c *WSConn) WriteText(payload []byte) error { return c.writeFrame(opText, payload) }

func (c *WSConn) writeFrame(opcode byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var hdr [10]byte
	hdr[0] = 0x80 | opcode // FIN set, no fragmentation
	n := 2
	switch {
	case len(payload) < 126:
		hdr[1] = byte(len(payload))
	case len(payload) <= 0xffff:
		hdr[1] = 126
		binary.BigEndian.PutUint16(hdr[2:4], uint16(len(payload)))
		n = 4
	default:
		hdr[1] = 127
		binary.BigEndian.PutUint64(hdr[2:10], uint64(len(payload)))
		n = 10
	}
	if _, err := c.rw.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := c.rw.Write(payload); err != nil {
		return err
	}
	return c.rw.Flush()
}

// maxControlRead bounds a client frame the dashboard is willing to buffer;
// the browser only ever sends tiny control frames and close reasons.
const maxControlRead = 4096

// readFrame reads one client frame (clients must mask; RFC 6455 §5.3) and
// returns its opcode and unmasked payload.
func (c *WSConn) readFrame() (opcode byte, payload []byte, err error) {
	var hdr [2]byte
	if _, err = io.ReadFull(c.rw, hdr[:]); err != nil {
		return 0, nil, err
	}
	opcode = hdr[0] & 0x0f
	masked := hdr[1]&0x80 != 0
	length := uint64(hdr[1] & 0x7f)
	switch length {
	case 126:
		var ext [2]byte
		if _, err = io.ReadFull(c.rw, ext[:]); err != nil {
			return 0, nil, err
		}
		length = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err = io.ReadFull(c.rw, ext[:]); err != nil {
			return 0, nil, err
		}
		length = binary.BigEndian.Uint64(ext[:])
	}
	if length > maxControlRead {
		return 0, nil, fmt.Errorf("tenant: client frame of %d bytes exceeds limit", length)
	}
	var mask [4]byte
	if masked {
		if _, err = io.ReadFull(c.rw, mask[:]); err != nil {
			return 0, nil, err
		}
	}
	payload = make([]byte, length)
	if _, err = io.ReadFull(c.rw, payload); err != nil {
		return 0, nil, err
	}
	if masked {
		for i := range payload {
			payload[i] ^= mask[i%4]
		}
	}
	return opcode, payload, nil
}

// serveRead drains client frames, answering pings, until the client closes
// or errors; it then closes done so the write loop stops.
func (c *WSConn) serveRead(done chan<- struct{}) {
	defer close(done)
	for {
		opcode, payload, err := c.readFrame()
		if err != nil {
			return
		}
		switch opcode {
		case opPing:
			if c.writeFrame(opPong, payload) != nil {
				return
			}
		case opClose:
			_ = c.writeFrame(opClose, nil)
			return
		}
	}
}

// Close sends a close frame (best effort) and tears down the connection.
func (c *WSConn) Close() error {
	_ = c.writeFrame(opClose, nil)
	return c.conn.Close()
}
