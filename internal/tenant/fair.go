package tenant

import (
	"container/heap"
	"context"
	"sync"

	"drainnas/internal/route"
)

// FairQueue is the weighted-fair admission gate in front of the serving
// mux: a counting semaphore of dispatch slots whose waiters are organized
// into per-tenant queues and granted by stride scheduling — the classic
// deterministic cousin of weighted-fair queueing. Each tenant carries a
// virtual "pass"; a grant always goes to the backlogged tenant with the
// smallest pass, and the winner's pass advances by passScale/weight. Over
// any contention interval a tenant therefore receives service proportional
// to its weight no matter how deep another tenant's backlog grows: a noisy
// tenant flooding 10x its share only queues behind itself.
//
// Within one tenant's queue, waiters are ordered by SLO class (interactive
// > standard > batch, reusing route.SLOClass), then arrival — so the
// fairness tier composes with the SLO scheduling the routing tier already
// does, instead of fighting it.
//
// A newly-active tenant starts at the queue's current virtual time (never
// earlier), so idle periods bank no credit and cannot be weaponized into a
// burst that starves active tenants.
//
// A nil *FairQueue is an unlimited gate: every Acquire succeeds
// immediately. All methods are safe for concurrent use.
type FairQueue struct {
	mu       sync.Mutex
	capacity int
	inUse    int
	seq      uint64
	waiting  int
	vtime    float64
	tenants  map[string]*tenantQueue
}

// passScale is the stride numerator; any positive constant works, it only
// sets the resolution of pass arithmetic.
const passScale = 1.0

type tenantQueue struct {
	weight float64
	pass   float64
	pq     waiterPQ
}

// fairWaiter is one request parked at the fair gate.
type fairWaiter struct {
	seq     uint64
	rank    int // SLO class rank; larger dispatches first
	ready   chan struct{}
	granted bool
	// index is maintained by waiterPQ so a canceled waiter can be
	// heap.Removed eagerly (same shape as route's gate heap); -1 once out.
	index int
}

// classRank mirrors route's internal SLO priority: interactive preempts
// standard preempts batch.
func classRank(c route.SLOClass) int {
	switch c {
	case route.ClassInteractive:
		return 2
	case route.ClassStandard:
		return 1
	default:
		return 0
	}
}

// waiterPQ orders one tenant's waiters by (class rank desc, arrival asc) —
// a total, deterministic order.
type waiterPQ struct{ ws []*fairWaiter }

func (h *waiterPQ) Len() int { return len(h.ws) }

func (h *waiterPQ) Less(i, j int) bool {
	a, b := h.ws[i], h.ws[j]
	if a.rank != b.rank {
		return a.rank > b.rank
	}
	return a.seq < b.seq
}

func (h *waiterPQ) Swap(i, j int) {
	h.ws[i], h.ws[j] = h.ws[j], h.ws[i]
	h.ws[i].index = i
	h.ws[j].index = j
}

func (h *waiterPQ) Push(x any) {
	w := x.(*fairWaiter)
	w.index = len(h.ws)
	h.ws = append(h.ws, w)
}

func (h *waiterPQ) Pop() any {
	old := h.ws
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.index = -1
	h.ws = old[:n-1]
	return w
}

// NewFairQueue builds a fair gate with the given number of concurrent
// dispatch slots; capacity <= 0 returns nil (unlimited).
func NewFairQueue(capacity int) *FairQueue {
	if capacity <= 0 {
		return nil
	}
	return &FairQueue{capacity: capacity, tenants: make(map[string]*tenantQueue)}
}

// tenantLocked returns the queue for name, creating it at the current
// virtual time. The weight is refreshed on every call so a key-file reload
// takes effect without restarting. The map is keyed by authenticated tenant
// names only, so its size is bounded by the key file.
func (q *FairQueue) tenantLocked(name string, weight float64) *tenantQueue {
	tq := q.tenants[name]
	if tq == nil {
		tq = &tenantQueue{pass: q.vtime}
		q.tenants[name] = tq
	}
	if weight <= 0 {
		weight = 1
	}
	tq.weight = weight
	return tq
}

// Acquire blocks until the tenant's request is granted a dispatch slot in
// weighted-fair order, or ctx ends. A grant that races a cancellation is
// handed to the next waiter, never lost.
func (q *FairQueue) Acquire(ctx context.Context, tenantName string, weight float64, class route.SLOClass) error {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	tq := q.tenantLocked(tenantName, weight)
	if q.inUse < q.capacity && q.waiting == 0 {
		// Uncontended fast path; still charge the stride so a tenant that
		// hammers an idle gate does not arrive at contention with a stale
		// (ancient) pass identical to everyone else's.
		q.chargeLocked(tq)
		q.inUse++
		q.mu.Unlock()
		return nil
	}
	w := &fairWaiter{seq: q.seq, rank: classRank(class), ready: make(chan struct{})}
	q.seq++
	heap.Push(&tq.pq, w)
	q.waiting++
	q.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		q.mu.Lock()
		if w.granted {
			// The grant raced the cancellation: pass the slot on.
			q.mu.Unlock()
			q.Release()
		} else {
			heap.Remove(&tq.pq, w.index)
			q.waiting--
			q.mu.Unlock()
		}
		return ctx.Err()
	}
}

// chargeLocked advances the granted tenant's pass by its stride and the
// queue's virtual time to the grant point. The caller holds q.mu.
func (q *FairQueue) chargeLocked(tq *tenantQueue) {
	if tq.pass < q.vtime {
		tq.pass = q.vtime
	}
	q.vtime = tq.pass
	tq.pass += passScale / tq.weight
}

// Release returns a slot and grants it to the head waiter of the
// minimum-pass backlogged tenant.
func (q *FairQueue) Release() {
	if q == nil {
		return
	}
	q.mu.Lock()
	q.inUse--
	for q.inUse < q.capacity {
		tq := q.minPassLocked()
		if tq == nil {
			break
		}
		w := heap.Pop(&tq.pq).(*fairWaiter)
		q.waiting--
		q.chargeLocked(tq)
		q.inUse++
		w.granted = true
		close(w.ready)
	}
	q.mu.Unlock()
}

// minPassLocked picks the backlogged tenant with the smallest pass, ties
// broken by the earliest head waiter so the order stays deterministic. The
// caller holds q.mu.
func (q *FairQueue) minPassLocked() *tenantQueue {
	var best *tenantQueue
	var bestSeq uint64
	for _, tq := range q.tenants {
		if tq.pq.Len() == 0 {
			continue
		}
		headSeq := tq.pq.ws[0].seq
		if best == nil || tq.pass < best.pass || (tq.pass == best.pass && headSeq < bestSeq) {
			best = tq
			bestSeq = headSeq
		}
	}
	return best
}

// Waiting reports how many requests are parked at the gate.
func (q *FairQueue) Waiting() int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.waiting
}

// InUse reports how many dispatch slots are held.
func (q *FairQueue) InUse() int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.inUse
}

// Capacity reports the gate's slot count (0 for an unlimited nil gate).
func (q *FairQueue) Capacity() int {
	if q == nil {
		return 0
	}
	return q.capacity
}

// Depths returns the per-tenant backlog (waiters only, not held slots) for
// the dashboard and /v1/stats; tenants with no backlog are omitted.
func (q *FairQueue) Depths() map[string]int {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]int)
	for name, tq := range q.tenants {
		if n := tq.pq.Len(); n > 0 {
			out[name] = n
		}
	}
	return out
}
