package tenant

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"drainnas/internal/api"
	"drainnas/internal/httpx"
	"drainnas/internal/metrics"
	"drainnas/internal/route/routetest"
)

// newDashboardServer stands up the dashboard behind httpx.AccessLog — the
// production wrapping — so these tests exercise the Hijacker and Flusher
// forwarding through StatusRecorder end to end.
func newDashboardServer(t *testing.T, withTier bool) (*httptest.Server, *Tier) {
	t.Helper()
	var tier *Tier
	if withTier {
		tier, _ = newTestTier(t, routetest.NewFakeClock(), 2)
	}
	stats := &metrics.ServingStats{}
	snapshot := func() DashboardSnapshot {
		var tenants metrics.TenantSnapshot
		var fair FairSnapshot
		if tier != nil {
			tenants = tier.Stats().Snapshot()
			fair = tier.Fair().SnapshotFair()
		}
		return DashboardSnapshot{
			Service: "test",
			Serving: stats.Snapshot(),
			Tenants: tenants,
			Fair:    fair,
		}
	}
	mux := http.NewServeMux()
	NewDashboard(tier, 10*time.Millisecond, snapshot).Register(mux)
	ts := httptest.NewServer(httpx.AccessLog("test", mux))
	t.Cleanup(ts.Close)
	return ts, tier
}

// readServerFrame parses one unmasked server→client WebSocket frame.
func readServerFrame(t *testing.T, r *bufio.Reader) (opcode byte, payload []byte) {
	t.Helper()
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		t.Fatal(err)
	}
	if hdr[1]&0x80 != 0 {
		t.Fatal("server frame is masked; RFC 6455 forbids that")
	}
	length := uint64(hdr[1] & 0x7f)
	switch length {
	case 126:
		var ext [2]byte
		if _, err := io.ReadFull(r, ext[:]); err != nil {
			t.Fatal(err)
		}
		length = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err := io.ReadFull(r, ext[:]); err != nil {
			t.Fatal(err)
		}
		length = binary.BigEndian.Uint64(ext[:])
	}
	payload = make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		t.Fatal(err)
	}
	return hdr[0] & 0x0f, payload
}

func TestDashboardWebSocketHandshake(t *testing.T) {
	ts, _ := newDashboardServer(t, false)

	conn, err := net.Dial("tcp", strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	const clientKey = "dGhlIHNhbXBsZSBub25jZQ==" // the RFC 6455 example key
	req := "GET /v1/dashboard/ws HTTP/1.1\r\n" +
		"Host: dashboard\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: keep-alive, Upgrade\r\n" +
		"Sec-WebSocket-Key: " + clientKey + "\r\n" +
		"Sec-WebSocket-Version: 13\r\n\r\n"
	if _, err := conn.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}

	br := bufio.NewReader(conn)
	status, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(status, "101") {
		t.Fatalf("handshake status %q, want 101", strings.TrimSpace(status))
	}
	var acceptHdr string
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if line == "\r\n" {
			break
		}
		if v, ok := strings.CutPrefix(line, "Sec-WebSocket-Accept: "); ok {
			acceptHdr = strings.TrimSpace(v)
		}
	}
	// The fixed accept value for the RFC's sample key (RFC 6455 §1.3).
	if want := "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="; acceptHdr != want {
		t.Fatalf("Sec-WebSocket-Accept %q, want %q", acceptHdr, want)
	}
	if got := wsAcceptKey(clientKey); got != acceptHdr {
		t.Fatalf("wsAcceptKey %q disagrees with handshake %q", got, acceptHdr)
	}

	// The first frame arrives immediately and is a JSON snapshot.
	opcode, payload := readServerFrame(t, br)
	if opcode != opText {
		t.Fatalf("opcode %#x, want text", opcode)
	}
	var snap DashboardSnapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		t.Fatalf("frame is not a snapshot: %v\n%s", err, payload)
	}
	if snap.Service != "test" {
		t.Fatalf("snapshot service %q", snap.Service)
	}

	// A second frame follows on the tick — the stream is live, not one-shot.
	if opcode, _ = readServerFrame(t, br); opcode != opText {
		t.Fatalf("second frame opcode %#x", opcode)
	}
}

func TestDashboardWebSocketRejectsPlainGET(t *testing.T) {
	ts, _ := newDashboardServer(t, false)
	resp, err := http.Get(ts.URL + "/v1/dashboard/ws")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUpgradeRequired {
		t.Fatalf("status %d, want 426", resp.StatusCode)
	}
}

func TestDashboardSSEStream(t *testing.T) {
	ts, _ := newDashboardServer(t, false)
	resp, err := http.Get(ts.URL + "/v1/dashboard/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	// Two events must arrive while the response is still open — only
	// possible if the handler can flush through the middleware.
	br := bufio.NewReader(resp.Body)
	for event := 0; event < 2; event++ {
		var data string
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				t.Fatalf("stream ended early: %v", err)
			}
			if strings.HasPrefix(line, "data: ") {
				data = strings.TrimPrefix(strings.TrimSpace(line), "data: ")
				break
			}
		}
		var snap DashboardSnapshot
		if err := json.Unmarshal([]byte(data), &snap); err != nil {
			t.Fatalf("event %d is not a snapshot: %v", event, err)
		}
	}
}

func TestDashboardAuthGate(t *testing.T) {
	ts, _ := newDashboardServer(t, true)

	// No key: 401 with the envelope code.
	resp, err := http.Get(ts.URL + "/v1/dashboard/events")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("status %d, want 401", resp.StatusCode)
	}
	if e := decodeError(t, resp.Body); e.Code != api.CodeUnauthorized {
		t.Fatalf("code %q", e.Code)
	}
	resp.Body.Close()

	// ?key= works for browser EventSource/WebSocket clients.
	resp, err = http.Get(ts.URL + "/v1/dashboard?key=open-secret-key")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d with query key, want 200", resp.StatusCode)
	}
	page, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(page), "drainnas live dashboard") {
		t.Fatal("dashboard page missing")
	}
}
