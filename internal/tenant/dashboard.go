package tenant

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"drainnas/internal/api"
	"drainnas/internal/httpx"
)

// FairSnapshot is the fair gate's slice of a dashboard frame. The struct
// itself is a /v1/ wire type and therefore lives in internal/api; the
// alias keeps the gate's snapshot surface on its historical name.
type FairSnapshot = api.FairStats

// SnapshotFair captures the gate state (zero-valued for a nil gate).
func (q *FairQueue) SnapshotFair() FairSnapshot {
	return FairSnapshot{
		Capacity: q.Capacity(),
		InUse:    q.InUse(),
		Waiting:  q.Waiting(),
		Depths:   q.Depths(),
	}
}

// DashboardSnapshot is one live-dashboard frame: what the serving mux is
// doing (queue depth, batch shapes, latency), the per-tenant edge counters,
// and the fair gate's backlog, stamped with the emitting service. Defined
// in internal/api with the rest of the wire surface.
type DashboardSnapshot = api.DashboardSnapshot

// Dashboard serves the live view: an HTML shell at /v1/dashboard, a
// WebSocket stream at /v1/dashboard/ws, and a Server-Sent-Events fallback
// at /v1/dashboard/events for clients (or proxies) that cannot upgrade.
// When a Tier is attached the endpoints require a valid API key — via the
// usual headers or, for browser WebSocket/EventSource clients that cannot
// set headers, a ?key= query parameter.
type Dashboard struct {
	tier     *Tier
	snapshot func() DashboardSnapshot
	interval time.Duration
}

// NewDashboard builds a dashboard pushing one frame per interval (default
// 1s) from snapshot. tier may be nil to serve the dashboard unauthenticated
// (e.g. servd without -keys).
func NewDashboard(tier *Tier, interval time.Duration, snapshot func() DashboardSnapshot) *Dashboard {
	if interval <= 0 {
		interval = time.Second
	}
	return &Dashboard{tier: tier, snapshot: snapshot, interval: interval}
}

// authorize gates a dashboard endpoint on the tier's key set.
func (d *Dashboard) authorize(w http.ResponseWriter, r *http.Request) bool {
	if d.tier == nil {
		return true
	}
	key := APIKey(r)
	if key == "" {
		key = r.URL.Query().Get("key")
	}
	if _, ok := d.tier.auth.Authenticate(key); ok {
		return true
	}
	d.tier.stats.Unauthorized()
	httpx.Error(w, http.StatusUnauthorized, api.CodeUnauthorized,
		"dashboard requires a valid API key (header or ?key=)")
	return false
}

// Register mounts the dashboard endpoints on mux.
func (d *Dashboard) Register(mux *http.ServeMux) {
	mux.HandleFunc("/v1/dashboard", d.handlePage)
	mux.HandleFunc("/v1/dashboard/ws", d.handleWS)
	mux.HandleFunc("/v1/dashboard/events", d.handleSSE)
}

// handleWS upgrades and streams one JSON frame per tick until the client
// goes away. The first frame is sent immediately so a probe can validate
// the stream without waiting out an interval.
func (d *Dashboard) handleWS(w http.ResponseWriter, r *http.Request) {
	if !d.authorize(w, r) {
		return
	}
	conn, err := UpgradeWebSocket(w, r)
	if err != nil {
		return // UpgradeWebSocket already wrote the error
	}
	defer conn.Close()
	done := make(chan struct{})
	go conn.serveRead(done)
	ticker := time.NewTicker(d.interval)
	defer ticker.Stop()
	for {
		frame, err := json.Marshal(d.snapshot())
		if err != nil || conn.WriteText(frame) != nil {
			return
		}
		select {
		case <-done:
			return
		case <-ticker.C:
		}
	}
}

// handleSSE streams the same frames as text/event-stream. It needs the
// http.Flusher that StatusRecorder forwards; without per-frame flushes the
// events would sit in the response buffer until the connection closed.
func (d *Dashboard) handleSSE(w http.ResponseWriter, r *http.Request) {
	if !d.authorize(w, r) {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpx.Error(w, http.StatusInternalServerError, api.CodeInternal,
			"response writer does not support streaming")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	ticker := time.NewTicker(d.interval)
	defer ticker.Stop()
	for {
		frame, err := json.Marshal(d.snapshot())
		if err != nil {
			return
		}
		if _, err := fmt.Fprintf(w, "event: snapshot\ndata: %s\n\n", frame); err != nil {
			return
		}
		flusher.Flush()
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}

// handlePage serves the static HTML shell; it connects over WebSocket and
// falls back to SSE if the upgrade fails.
func (d *Dashboard) handlePage(w http.ResponseWriter, r *http.Request) {
	if !d.authorize(w, r) {
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(dashboardHTML))
}

const dashboardHTML = `<!doctype html>
<html>
<head>
<meta charset="utf-8">
<title>drainnas live dashboard</title>
<style>
body { font-family: ui-monospace, monospace; margin: 1.5rem; background: #111; color: #ddd; }
h1 { font-size: 1.1rem; } h2 { font-size: 0.95rem; margin-bottom: 0.3rem; }
table { border-collapse: collapse; margin-bottom: 1rem; }
td, th { border: 1px solid #444; padding: 0.2rem 0.6rem; text-align: right; }
th { background: #222; } td:first-child, th:first-child { text-align: left; }
#state { color: #8a8; } .stale { color: #e88; }
</style>
</head>
<body>
<h1>drainnas live dashboard <span id="state">connecting&hellip;</span></h1>
<h2>serving</h2>
<table id="serving"></table>
<h2>tenants</h2>
<table id="tenants"></table>
<script>
function cell(v) { return typeof v === "number" ? v.toFixed(v % 1 ? 2 : 0) : v; }
function render(snap) {
  const f = snap.fair || {};
  const s = snap.serving || {};
  document.getElementById("serving").innerHTML =
    "<tr><th>queue depth</th><th>mean batch</th><th>max batch</th>" +
    "<th>mean latency ms</th><th>gate in use</th><th>gate waiting</th></tr>" +
    "<tr><td>" + [s.queue_depth, s.mean_batch, s.max_batch, s.mean_latency_ms,
                  (f.in_use || 0) + "/" + (f.capacity || 0), f.waiting || 0]
      .map(cell).join("</td><td>") + "</td></tr>";
  const per = (snap.tenants && snap.tenants.per_tenant) || {};
  let rows = "<tr><th>tenant</th><th>admitted</th><th>quota rej</th>" +
             "<th>completed</th><th>failed</th><th>queued</th></tr>";
  for (const name of Object.keys(per).sort()) {
    const t = per[name];
    rows += "<tr><td>" + name + "</td><td>" +
      [t.admitted, t.quota_exceeded, t.completed, t.failed,
       (f.depths || {})[name] || 0].map(cell).join("</td><td>") + "</td></tr>";
  }
  document.getElementById("tenants").innerHTML = rows;
}
const key = new URLSearchParams(location.search).get("key");
const qs = key ? "?key=" + encodeURIComponent(key) : "";
const state = document.getElementById("state");
function sse() {
  const es = new EventSource("/v1/dashboard/events" + qs);
  es.addEventListener("snapshot", e => { state.textContent = "live (sse)"; render(JSON.parse(e.data)); });
  es.onerror = () => { state.textContent = "disconnected"; state.className = "stale"; };
}
try {
  const ws = new WebSocket((location.protocol === "https:" ? "wss://" : "ws://") +
                           location.host + "/v1/dashboard/ws" + qs);
  ws.onmessage = e => { state.textContent = "live (ws)"; render(JSON.parse(e.data)); };
  ws.onerror = () => { ws.close(); sse(); };
  ws.onclose = () => { state.textContent = "disconnected"; state.className = "stale"; };
} catch (e) { sse(); }
</script>
</body>
</html>
`
