package tenant

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"strings"
	"sync"
	"time"

	"drainnas/internal/api"
	"drainnas/internal/httpx"
	"drainnas/internal/metrics"
	"drainnas/internal/route"
)

// Tier is the assembled edge middleware: Authenticator → per-tenant
// route.TokenBucket → FairQueue → wrapped handler, with per-tenant metrics
// and one structured audit line per authenticated (or rejected) request.
type Tier struct {
	auth    *Authenticator
	fair    *FairQueue
	stats   *metrics.TenantStats
	clock   route.Clock
	service string

	mu      sync.Mutex
	buckets map[string]*bucketEntry
}

// bucketEntry caches a tenant's token bucket alongside the rate/burst it
// was built with, so a key-file reload that changes the quota rebuilds the
// bucket while an unrelated reload keeps accumulated state.
type bucketEntry struct {
	rate, burst float64
	tb          *route.TokenBucket
}

// TierOptions configures NewTier.
type TierOptions struct {
	// Auth is required; NewTier panics without it (an edge tier with no
	// authenticator is a configuration bug, not a runtime condition).
	Auth *Authenticator
	// Inflight is the weighted-fair gate's concurrent dispatch slots;
	// <= 0 disables fair queueing (auth + quota only).
	Inflight int
	// Stats receives per-tenant counters; nil discards them.
	Stats *metrics.TenantStats
	// Clock defaults to route.SystemClock; tests inject a fake.
	Clock route.Clock
	// Service tags audit lines ("servd", "router").
	Service string
}

// NewTier builds the edge tier.
func NewTier(opts TierOptions) *Tier {
	if opts.Auth == nil {
		panic("tenant: NewTier requires an Authenticator")
	}
	clock := opts.Clock
	if clock == nil {
		clock = route.SystemClock
	}
	service := opts.Service
	if service == "" {
		service = "tenant"
	}
	return &Tier{
		auth:    opts.Auth,
		fair:    NewFairQueue(opts.Inflight),
		stats:   opts.Stats,
		clock:   clock,
		service: service,
		buckets: make(map[string]*bucketEntry),
	}
}

// LoadTier is the front ends' one-call constructor: key file in, assembled
// tier (with its own metrics sink) out.
func LoadTier(path string, recheck time.Duration, inflight int, service string) (*Tier, error) {
	auth, err := LoadAuthenticator(path, recheck, nil)
	if err != nil {
		return nil, err
	}
	return NewTier(TierOptions{
		Auth:     auth,
		Inflight: inflight,
		Stats:    &metrics.TenantStats{},
		Service:  service,
	}), nil
}

// Fair exposes the fair gate for stats/dashboard snapshots. Nil-safe (both
// a nil Tier and a disabled gate return nil, and FairQueue methods accept
// nil) so the front ends need no guards when the tier is off.
func (t *Tier) Fair() *FairQueue {
	if t == nil {
		return nil
	}
	return t.fair
}

// Stats exposes the tier's metrics sink; nil-safe like Fair.
func (t *Tier) Stats() *metrics.TenantStats {
	if t == nil {
		return nil
	}
	return t.stats
}

// TenantCount reports the loaded tenant set's size (0 for a nil tier).
func (t *Tier) TenantCount() int {
	if t == nil {
		return 0
	}
	return t.auth.TenantCount()
}

// APIKey extracts the presented credential: "Authorization: Bearer <key>"
// wins, then the X-API-Key header. Empty means none presented.
func APIKey(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		if rest, ok := strings.CutPrefix(h, "Bearer "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return r.Header.Get("X-API-Key")
}

// Authenticate resolves the request's API key against the tier's key set.
func (t *Tier) Authenticate(r *http.Request) (Tenant, bool) {
	return t.auth.Authenticate(APIKey(r))
}

// tenantCtxKey carries the authenticated tenant through the request
// context so inner handlers (and the dashboard) can attribute work.
type tenantCtxKey struct{}

// FromContext returns the tenant the edge tier authenticated, if any.
func FromContext(ctx context.Context) (Tenant, bool) {
	tn, ok := ctx.Value(tenantCtxKey{}).(Tenant)
	return tn, ok
}

// Allow debits one request token from tn's bucket, reporting whether the
// tenant is under quota (always true for unlimited tenants and a nil
// tier). This is the admission hook for bulk consumers outside the HTTP
// pipeline — a whole-watershed scan debits one token per tile it
// dispatches, so a scan job is quota-accounted like the equivalent predict
// stream rather than as a single request.
func (t *Tier) Allow(tn Tenant) bool {
	if t == nil {
		return true
	}
	if tb := t.bucketFor(tn); tb != nil {
		return tb.Allow()
	}
	return true
}

// bucketFor returns the tenant's token bucket, rebuilding it when a reload
// changed the quota. A nil bucket means the tenant is unlimited.
func (t *Tier) bucketFor(tn Tenant) *route.TokenBucket {
	if tn.Rate <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	be := t.buckets[tn.Name]
	if be == nil || be.rate != tn.Rate || be.burst != tn.Burst {
		be = &bucketEntry{rate: tn.Rate, burst: tn.Burst, tb: route.NewTokenBucket(tn.Rate, tn.Burst, t.clock)}
		t.buckets[tn.Name] = be
	}
	return be.tb
}

// peekClass reads the request's SLO class from the JSON body without
// consuming it: the body (bounded by the predict size cap) is buffered and
// restored, so the inner handler sees the same bytes — including one byte
// past the cap so its own MaxBytesReader still rejects oversized bodies.
func peekClass(r *http.Request) route.SLOClass {
	if r.Body == nil || r.Method != http.MethodPost {
		return route.ClassStandard
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, api.MaxPredictBodyBytes+1))
	r.Body.Close()
	r.Body = io.NopCloser(bytes.NewReader(body))
	if err != nil {
		return route.ClassStandard
	}
	var probe struct {
		SLO string `json:"slo"`
	}
	if json.Unmarshal(body, &probe) != nil {
		return route.ClassStandard
	}
	class, err := route.ParseClass(probe.SLO)
	if err != nil {
		return route.ClassStandard
	}
	return class
}

// audit writes the structured per-request audit line. decision is one of
// deny_auth, deny_quota, admit.
func (t *Tier) audit(r *http.Request, w http.ResponseWriter, tenantName, decision string, status int) {
	log.Printf("%s: audit id=%s tenant=%s decision=%s method=%s path=%s status=%d",
		t.service, w.Header().Get("X-Request-ID"), tenantName, decision, r.Method, r.URL.Path, status)
}

// Wrap applies the full admission pipeline in front of h. Unauthorized
// requests get 401/unauthorized, quota violations 429/quota_exceeded (with
// Retry-After: 1), and admitted requests wait their weighted-fair turn
// before reaching h.
func (t *Tier) Wrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tn, ok := t.Authenticate(r)
		if !ok {
			t.stats.Unauthorized()
			t.audit(r, w, "-", "deny_auth", http.StatusUnauthorized)
			httpx.Error(w, http.StatusUnauthorized, api.CodeUnauthorized,
				"missing or unknown API key (use Authorization: Bearer <key> or X-API-Key)")
			return
		}
		if tb := t.bucketFor(tn); tb != nil && !tb.Allow() {
			t.stats.QuotaExceeded(tn.Name)
			t.audit(r, w, tn.Name, "deny_quota", http.StatusTooManyRequests)
			w.Header().Set("Retry-After", "1")
			httpx.Error(w, http.StatusTooManyRequests, api.CodeQuotaExceeded,
				"tenant "+tn.Name+" is over its request quota")
			return
		}
		t.stats.Admitted(tn.Name)

		start := t.clock.Now()
		if err := t.fair.Acquire(r.Context(), tn.Name, tn.Weight, peekClass(r)); err != nil {
			wait := t.clock.Now().Sub(start)
			t.stats.Failed(tn.Name, wait, wait)
			t.audit(r, w, tn.Name, "admit", http.StatusServiceUnavailable)
			httpx.Error(w, http.StatusServiceUnavailable, api.CodeCanceled,
				"request canceled while queued for admission")
			return
		}
		wait := t.clock.Now().Sub(start)

		rec := httpx.NewStatusRecorder(w)
		func() {
			defer t.fair.Release()
			h.ServeHTTP(rec, r.WithContext(context.WithValue(r.Context(), tenantCtxKey{}, tn)))
		}()

		total := t.clock.Now().Sub(start)
		if rec.Status < 400 {
			t.stats.Completed(tn.Name, wait, total)
		} else {
			t.stats.Failed(tn.Name, wait, total)
		}
		t.audit(r, w, tn.Name, "admit", rec.Status)
	})
}
