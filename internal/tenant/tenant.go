// Package tenant is the multi-tenant edge tier in front of the serving
// stack: API-key authentication from a hot-reloadable key file, per-tenant
// token-bucket quotas, and weighted-fair queue admission so a noisy tenant
// cannot starve the others. It composes as HTTP middleware over the
// existing servd/router muxes (Tier.Wrap), reusing the shared envelope in
// internal/httpx (codes unauthorized and quota_exceeded), the token bucket
// and SLO classes in internal/route, and the capped per-tenant counters in
// internal/metrics. A small live dashboard (WebSocket with SSE fallback)
// streams queue depth, batch shapes and per-tenant latency.
//
// The admission pipeline per request:
//
//	API key (Authorization: Bearer …, or X-API-Key)
//	  → Authenticator (constant-time compare, hot reload)
//	  → per-tenant route.TokenBucket (quota_exceeded beyond rate/burst)
//	  → FairQueue (stride scheduling over per-tenant queues, weighted;
//	    SLO-class priority within a tenant)
//	  → the wrapped handler (servd/router /v1/predict)
//
// Every authenticated request leaves one structured audit log line.
package tenant

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"drainnas/internal/route"
)

// Tenant is one authenticated principal: its identity, its share of the
// fleet under contention (Weight), and its token-bucket quota (Rate
// requests/second, Burst capacity; Rate <= 0 means unlimited).
type Tenant struct {
	Name   string  `json:"name"`
	Key    string  `json:"key"`
	Weight float64 `json:"weight"`
	Rate   float64 `json:"rate_rps"`
	Burst  float64 `json:"burst"`
}

// keyFile is the on-disk shape of the key file.
type keyFile struct {
	Tenants []Tenant `json:"tenants"`
}

// minKeyLen rejects trivially guessable keys at load time rather than
// letting an operator ship them.
const minKeyLen = 8

// ParseKeyFile decodes and validates a key file: unique non-empty tenant
// names, unique keys of at least minKeyLen bytes, positive weights
// (defaulted to 1), and burst raised to at least 1 whenever a rate limit is
// set (mirroring route.NewTokenBucket so a conforming request can ever
// pass).
func ParseKeyFile(data []byte) ([]Tenant, error) {
	var kf keyFile
	if err := json.Unmarshal(data, &kf); err != nil {
		return nil, fmt.Errorf("tenant: parsing key file: %w", err)
	}
	if len(kf.Tenants) == 0 {
		return nil, fmt.Errorf("tenant: key file declares no tenants")
	}
	names := make(map[string]bool, len(kf.Tenants))
	keys := make(map[string]bool, len(kf.Tenants))
	out := make([]Tenant, 0, len(kf.Tenants))
	for i, tn := range kf.Tenants {
		if tn.Name == "" {
			return nil, fmt.Errorf("tenant: entry %d has no name", i)
		}
		if names[tn.Name] {
			return nil, fmt.Errorf("tenant: duplicate tenant name %q", tn.Name)
		}
		names[tn.Name] = true
		if len(tn.Key) < minKeyLen {
			return nil, fmt.Errorf("tenant: %s: key shorter than %d bytes", tn.Name, minKeyLen)
		}
		if keys[tn.Key] {
			return nil, fmt.Errorf("tenant: key of %q duplicates another tenant's", tn.Name)
		}
		keys[tn.Key] = true
		if tn.Weight < 0 {
			return nil, fmt.Errorf("tenant: %s: negative weight %v", tn.Name, tn.Weight)
		}
		if tn.Weight == 0 {
			tn.Weight = 1
		}
		if tn.Rate > 0 && tn.Burst < 1 {
			tn.Burst = 1
		}
		out = append(out, tn)
	}
	return out, nil
}

// authEntry pairs a key digest with its tenant. Keys are compared as
// SHA-256 digests so every comparison runs over the same fixed width
// regardless of presented-key length.
type authEntry struct {
	digest [sha256.Size]byte
	tenant Tenant
}

// Authenticator resolves API keys to tenants with constant-time comparison
// and hot reload: the key file is re-checked (by mtime and size) at most
// once per recheck interval, so rotating keys or adjusting a tenant's
// weight/quota needs no restart. A reload that fails to parse keeps the
// previous tenant set and logs, so a bad edit degrades to stale keys rather
// than an outage.
type Authenticator struct {
	path    string
	recheck time.Duration
	clock   route.Clock

	mu        sync.RWMutex
	entries   []authEntry
	mtime     time.Time
	size      int64
	nextCheck time.Time
}

// LoadAuthenticator reads and validates the key file at path. recheck
// throttles hot-reload stat calls (at most one per interval; <= 0 restats
// on every authentication, which tests use for determinism). clock defaults
// to route.SystemClock.
func LoadAuthenticator(path string, recheck time.Duration, clock route.Clock) (*Authenticator, error) {
	if clock == nil {
		clock = route.SystemClock
	}
	a := &Authenticator{path: path, recheck: recheck, clock: clock}
	if err := a.Reload(); err != nil {
		return nil, err
	}
	return a, nil
}

// Reload re-reads the key file unconditionally, replacing the tenant set on
// success and keeping it on failure.
func (a *Authenticator) Reload() error {
	info, err := os.Stat(a.path)
	if err != nil {
		return fmt.Errorf("tenant: %w", err)
	}
	data, err := os.ReadFile(a.path)
	if err != nil {
		return fmt.Errorf("tenant: %w", err)
	}
	tenants, err := ParseKeyFile(data)
	if err != nil {
		return err
	}
	entries := make([]authEntry, len(tenants))
	for i, tn := range tenants {
		entries[i] = authEntry{digest: sha256.Sum256([]byte(tn.Key)), tenant: tn}
	}
	a.mu.Lock()
	a.entries = entries
	a.mtime = info.ModTime()
	a.size = info.Size()
	a.nextCheck = a.clock.Now().Add(a.recheck)
	a.mu.Unlock()
	return nil
}

// maybeReload stats the key file when the recheck interval has elapsed and
// reloads on an mtime or size change.
func (a *Authenticator) maybeReload() {
	now := a.clock.Now()
	a.mu.RLock()
	due := !now.Before(a.nextCheck)
	mtime, size := a.mtime, a.size
	a.mu.RUnlock()
	if !due {
		return
	}
	// Push the next check out immediately so concurrent requests do not
	// stampede the filesystem; the reload itself re-arms it too.
	a.mu.Lock()
	a.nextCheck = now.Add(a.recheck)
	a.mu.Unlock()
	info, err := os.Stat(a.path)
	if err != nil {
		log.Printf("tenant: key file stat failed, keeping %d loaded tenants: %v", a.TenantCount(), err)
		return
	}
	if info.ModTime().Equal(mtime) && info.Size() == size {
		return
	}
	if err := a.Reload(); err != nil {
		log.Printf("tenant: key file reload failed, keeping previous tenants: %v", err)
		return
	}
	log.Printf("tenant: key file reloaded (%d tenants)", a.TenantCount())
}

// Authenticate resolves a presented API key to its tenant. The comparison
// is constant-time in the candidate set: the presented key is hashed once,
// every loaded entry's digest is compared with subtle.ConstantTimeCompare,
// and the loop never exits early — timing reveals neither which tenant
// matched nor how close a guess came.
func (a *Authenticator) Authenticate(key string) (Tenant, bool) {
	a.maybeReload()
	if key == "" {
		return Tenant{}, false
	}
	digest := sha256.Sum256([]byte(key))
	a.mu.RLock()
	defer a.mu.RUnlock()
	match := -1
	for i := range a.entries {
		eq := subtle.ConstantTimeCompare(digest[:], a.entries[i].digest[:])
		// ConstantTimeSelect keeps the loop body branch-free on the secret
		// comparison result. Duplicate keys are rejected at load, so at most
		// one entry ever matches.
		match = subtle.ConstantTimeSelect(eq, i, match)
	}
	if match < 0 {
		return Tenant{}, false
	}
	return a.entries[match].tenant, true
}

// Tenants returns a copy of the loaded tenant set (for startup logging and
// bucket provisioning).
func (a *Authenticator) Tenants() []Tenant {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]Tenant, len(a.entries))
	for i, e := range a.entries {
		out[i] = e.tenant
	}
	return out
}

// TenantCount reports how many tenants are loaded.
func (a *Authenticator) TenantCount() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.entries)
}
