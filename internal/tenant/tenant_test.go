package tenant

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"drainnas/internal/route/routetest"
)

func writeKeyFile(t *testing.T, dir, body string) string {
	t.Helper()
	path := filepath.Join(dir, "keys.json")
	if err := os.WriteFile(path, []byte(body), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

const twoTenants = `{"tenants": [
	{"name": "acme", "key": "acme-secret-key", "weight": 3, "rate_rps": 5, "burst": 10},
	{"name": "beta", "key": "beta-secret-key"}
]}`

func TestParseKeyFile(t *testing.T) {
	tenants, err := ParseKeyFile([]byte(twoTenants))
	if err != nil {
		t.Fatal(err)
	}
	if len(tenants) != 2 {
		t.Fatalf("parsed %d tenants, want 2", len(tenants))
	}
	acme, beta := tenants[0], tenants[1]
	if acme.Name != "acme" || acme.Weight != 3 || acme.Rate != 5 || acme.Burst != 10 {
		t.Fatalf("acme %+v", acme)
	}
	// Defaults: weight 1, no rate limit.
	if beta.Weight != 1 || beta.Rate != 0 {
		t.Fatalf("beta defaults %+v", beta)
	}

	bad := []struct {
		name, body, wantErr string
	}{
		{"garbage", "{", "parsing"},
		{"empty", `{"tenants": []}`, "no tenants"},
		{"unnamed", `{"tenants": [{"key": "long-enough-key"}]}`, "no name"},
		{"dup name", `{"tenants": [{"name":"a","key":"key-one-xx"},{"name":"a","key":"key-two-xx"}]}`, "duplicate"},
		{"short key", `{"tenants": [{"name":"a","key":"short"}]}`, "shorter"},
		{"dup key", `{"tenants": [{"name":"a","key":"same-key-here"},{"name":"b","key":"same-key-here"}]}`, "duplicates"},
		{"negative weight", `{"tenants": [{"name":"a","key":"long-enough-key","weight":-1}]}`, "negative weight"},
	}
	for _, tc := range bad {
		if _, err := ParseKeyFile([]byte(tc.body)); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}

	// A rate limit with burst < 1 is raised to 1 so a conforming request
	// can ever pass.
	tenants, err = ParseKeyFile([]byte(`{"tenants": [{"name":"a","key":"long-enough-key","rate_rps":2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if tenants[0].Burst != 1 {
		t.Fatalf("burst %v, want raised to 1", tenants[0].Burst)
	}
}

func TestAuthenticate(t *testing.T) {
	path := writeKeyFile(t, t.TempDir(), twoTenants)
	auth, err := LoadAuthenticator(path, time.Minute, routetest.NewFakeClock())
	if err != nil {
		t.Fatal(err)
	}
	if tn, ok := auth.Authenticate("acme-secret-key"); !ok || tn.Name != "acme" {
		t.Fatalf("acme key resolved to (%+v, %v)", tn, ok)
	}
	if tn, ok := auth.Authenticate("beta-secret-key"); !ok || tn.Name != "beta" {
		t.Fatalf("beta key resolved to (%+v, %v)", tn, ok)
	}
	for _, bad := range []string{"", "wrong", "acme-secret-key2", "acme-secret-ke"} {
		if _, ok := auth.Authenticate(bad); ok {
			t.Fatalf("key %q accepted", bad)
		}
	}
	if n := auth.TenantCount(); n != 2 {
		t.Fatalf("tenant count %d", n)
	}
}

func TestAuthenticatorHotReload(t *testing.T) {
	clock := routetest.NewFakeClock()
	dir := t.TempDir()
	path := writeKeyFile(t, dir, twoTenants)
	auth, err := LoadAuthenticator(path, time.Minute, clock)
	if err != nil {
		t.Fatal(err)
	}

	// Rotate acme's key on disk. Before the recheck interval elapses the
	// old key still works; after it, the new set is live.
	rotated := strings.Replace(twoTenants, "acme-secret-key", "acme-rotated-key", 1)
	writeKeyFile(t, dir, rotated)
	bumpMtime(t, path)

	if _, ok := auth.Authenticate("acme-secret-key"); !ok {
		t.Fatal("old key rejected before the recheck interval elapsed")
	}
	clock.Advance(2 * time.Minute)
	if _, ok := auth.Authenticate("acme-rotated-key"); !ok {
		t.Fatal("rotated key not live after recheck interval")
	}
	if _, ok := auth.Authenticate("acme-secret-key"); ok {
		t.Fatal("stale key still accepted after reload")
	}
}

func TestAuthenticatorKeepsOldSetOnBadReload(t *testing.T) {
	clock := routetest.NewFakeClock()
	dir := t.TempDir()
	path := writeKeyFile(t, dir, twoTenants)
	auth, err := LoadAuthenticator(path, time.Minute, clock)
	if err != nil {
		t.Fatal(err)
	}
	writeKeyFile(t, dir, "{not json")
	bumpMtime(t, path)
	clock.Advance(2 * time.Minute)
	if _, ok := auth.Authenticate("acme-secret-key"); !ok {
		t.Fatal("a bad key-file edit locked everyone out instead of keeping the old set")
	}
	if auth.TenantCount() != 2 {
		t.Fatalf("tenant count %d after failed reload, want 2", auth.TenantCount())
	}
}

// bumpMtime pushes the file's mtime forward so a rewrite within the
// filesystem's timestamp granularity still registers as a change.
func bumpMtime(t *testing.T, path string) {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	future := info.ModTime().Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
}

func TestLoadAuthenticatorErrors(t *testing.T) {
	if _, err := LoadAuthenticator(filepath.Join(t.TempDir(), "missing.json"), 0, nil); err == nil {
		t.Fatal("missing key file accepted")
	}
	path := writeKeyFile(t, t.TempDir(), "[]")
	if _, err := LoadAuthenticator(path, 0, nil); err == nil {
		t.Fatal("invalid key file accepted")
	}
}
