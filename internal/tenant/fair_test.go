package tenant

import (
	"context"
	"sync"
	"testing"
	"time"

	"drainnas/internal/route"
)

// grantRecorder drives a capacity-1 FairQueue deterministically: every
// granted waiter appends its label to the order slice and releases its
// slot, which hands the slot to the scheduler's next pick. With one slot,
// the append order IS the grant order.
type grantRecorder struct {
	mu    sync.Mutex
	order []string
}

func (g *grantRecorder) run(t *testing.T, q *FairQueue, tenantName, label string, weight float64, class route.SLOClass, wg *sync.WaitGroup) {
	t.Helper()
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := q.Acquire(context.Background(), tenantName, weight, class); err != nil {
			t.Errorf("%s: acquire: %v", label, err)
			return
		}
		g.mu.Lock()
		g.order = append(g.order, label)
		g.mu.Unlock()
		q.Release()
	}()
}

// waitBacklog spins until the gate holds n waiters.
func waitBacklog(t *testing.T, q *FairQueue, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for q.Waiting() != n {
		if time.Now().After(deadline) {
			t.Fatalf("backlog stuck at %d, want %d", q.Waiting(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

func countIn(order []string, label string, firstN int) int {
	if firstN > len(order) {
		firstN = len(order)
	}
	n := 0
	for _, o := range order[:firstN] {
		if o == label {
			n++
		}
	}
	return n
}

// TestFairQueueFloodIsolation is the acceptance pin from the issue: two
// tenants at equal weight, one flooding at 10x the compliant tenant's
// demand, and the compliant tenant's goodput within a fixed grant budget
// must stay >= 90% of its solo baseline.
func TestFairQueueFloodIsolation(t *testing.T) {
	const (
		compliantReqs = 20
		floodReqs     = 10 * compliantReqs
		grantBudget   = 2 * compliantReqs
	)

	// Solo baseline: the compliant tenant alone, behind a held slot.
	solo := func() int {
		q := NewFairQueue(1)
		if err := q.Acquire(context.Background(), "blocker", 1, route.ClassStandard); err != nil {
			t.Fatal(err)
		}
		rec := &grantRecorder{}
		var wg sync.WaitGroup
		for i := 0; i < compliantReqs; i++ {
			rec.run(t, q, "compliant", "compliant", 1, route.ClassStandard, &wg)
		}
		waitBacklog(t, q, compliantReqs)
		q.Release()
		wg.Wait()
		return countIn(rec.order, "compliant", grantBudget)
	}()
	if solo != compliantReqs {
		t.Fatalf("solo baseline %d, want all %d requests inside the budget", solo, compliantReqs)
	}

	// Mixed: the flooder already holds the slot and has a 10x backlog.
	q := NewFairQueue(1)
	if err := q.Acquire(context.Background(), "flood", 1, route.ClassStandard); err != nil {
		t.Fatal(err)
	}
	rec := &grantRecorder{}
	var wg sync.WaitGroup
	for i := 0; i < floodReqs; i++ {
		rec.run(t, q, "flood", "flood", 1, route.ClassStandard, &wg)
	}
	for i := 0; i < compliantReqs; i++ {
		rec.run(t, q, "compliant", "compliant", 1, route.ClassStandard, &wg)
	}
	waitBacklog(t, q, floodReqs+compliantReqs)
	q.Release()
	wg.Wait()

	if len(rec.order) != floodReqs+compliantReqs {
		t.Fatalf("recorded %d grants, want %d", len(rec.order), floodReqs+compliantReqs)
	}
	mixed := countIn(rec.order, "compliant", grantBudget)
	if mixed*10 < solo*9 {
		t.Fatalf("flood broke isolation: compliant completed %d of %d in the first %d grants (solo baseline %d, need >= 90%%)",
			mixed, compliantReqs, grantBudget, solo)
	}
	if got := q.InUse(); got != 0 {
		t.Fatalf("slots leaked: in use %d", got)
	}
}

// TestFairQueueWeightedShares pins the stride arithmetic: weight 3 vs
// weight 1 splits a contention interval 3:1.
func TestFairQueueWeightedShares(t *testing.T) {
	const each = 40
	q := NewFairQueue(1)
	if err := q.Acquire(context.Background(), "blocker", 1, route.ClassStandard); err != nil {
		t.Fatal(err)
	}
	rec := &grantRecorder{}
	var wg sync.WaitGroup
	for i := 0; i < each; i++ {
		rec.run(t, q, "heavy", "heavy", 3, route.ClassStandard, &wg)
		rec.run(t, q, "light", "light", 1, route.ClassStandard, &wg)
	}
	waitBacklog(t, q, 2*each)
	q.Release()
	wg.Wait()

	// While both stay backlogged — the first 40 grants — heavy should take
	// ~3/4 of the slots. One grant of slack for stride boundary effects.
	heavy := countIn(rec.order, "heavy", each)
	if heavy < 29 || heavy > 31 {
		t.Fatalf("heavy won %d of first %d grants, want ~30 (3:1 split)", heavy, each)
	}
}

// TestFairQueueSLOOrderWithinTenant pins the composition with SLO classes:
// inside one tenant's queue, interactive beats standard beats batch
// regardless of arrival order.
func TestFairQueueSLOOrderWithinTenant(t *testing.T) {
	q := NewFairQueue(1)
	if err := q.Acquire(context.Background(), "blocker", 1, route.ClassStandard); err != nil {
		t.Fatal(err)
	}
	rec := &grantRecorder{}
	var wg sync.WaitGroup
	// Enqueue one at a time so arrival order is deterministic: batch first,
	// interactive last.
	arrivals := []struct {
		label string
		class route.SLOClass
	}{
		{"batch-1", route.ClassBatch},
		{"batch-2", route.ClassBatch},
		{"standard-1", route.ClassStandard},
		{"interactive-1", route.ClassInteractive},
	}
	for i, a := range arrivals {
		rec.run(t, q, "acme", a.label, 1, a.class, &wg)
		waitBacklog(t, q, i+1)
	}
	q.Release()
	wg.Wait()

	want := []string{"interactive-1", "standard-1", "batch-1", "batch-2"}
	for i, label := range want {
		if rec.order[i] != label {
			t.Fatalf("grant order %v, want %v", rec.order, want)
		}
	}
}

// TestFairQueueCancelWhileQueued: a canceled waiter leaves the queue
// without consuming or leaking a slot.
func TestFairQueueCancelWhileQueued(t *testing.T) {
	q := NewFairQueue(1)
	if err := q.Acquire(context.Background(), "a", 1, route.ClassStandard); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- q.Acquire(ctx, "b", 1, route.ClassStandard) }()
	waitBacklog(t, q, 1)
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("canceled acquire returned %v", err)
	}
	if q.Waiting() != 0 {
		t.Fatalf("canceled waiter still queued: %d", q.Waiting())
	}
	// The slot is still usable by the next request.
	q.Release()
	if err := q.Acquire(context.Background(), "c", 1, route.ClassStandard); err != nil {
		t.Fatal(err)
	}
	q.Release()
	if q.InUse() != 0 {
		t.Fatalf("in use %d after drain", q.InUse())
	}
}

// TestFairQueueNilIsUnlimited: the disabled gate admits everything and
// reports empty stats.
func TestFairQueueNilIsUnlimited(t *testing.T) {
	var q *FairQueue
	if q != NewFairQueue(0) {
		t.Fatal("capacity 0 should disable the gate")
	}
	for i := 0; i < 100; i++ {
		if err := q.Acquire(context.Background(), "x", 1, route.ClassBatch); err != nil {
			t.Fatal(err)
		}
	}
	q.Release()
	if q.Waiting() != 0 || q.InUse() != 0 || q.Capacity() != 0 || q.Depths() != nil {
		t.Fatal("nil gate should report zeroes")
	}
	if snap := q.SnapshotFair(); snap.Capacity != 0 || snap.Depths != nil {
		t.Fatalf("nil gate snapshot %+v", snap)
	}
}

// TestFairQueueDepths: backlog attribution per tenant.
func TestFairQueueDepths(t *testing.T) {
	q := NewFairQueue(1)
	if err := q.Acquire(context.Background(), "a", 1, route.ClassStandard); err != nil {
		t.Fatal(err)
	}
	rec := &grantRecorder{}
	var wg sync.WaitGroup
	rec.run(t, q, "a", "a", 1, route.ClassStandard, &wg)
	rec.run(t, q, "b", "b", 1, route.ClassStandard, &wg)
	rec.run(t, q, "b", "b", 1, route.ClassStandard, &wg)
	waitBacklog(t, q, 3)
	d := q.Depths()
	if d["a"] != 1 || d["b"] != 2 {
		t.Fatalf("depths %v, want a:1 b:2", d)
	}
	snap := q.SnapshotFair()
	if snap.Capacity != 1 || snap.InUse != 1 || snap.Waiting != 3 {
		t.Fatalf("snapshot %+v", snap)
	}
	q.Release()
	wg.Wait()
}
