package tenant

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"drainnas/internal/api"
	"drainnas/internal/httpx"
	"drainnas/internal/metrics"
	"drainnas/internal/route/routetest"
)

const quotaTenants = `{"tenants": [
	{"name": "limited", "key": "limited-secret", "rate_rps": 1, "burst": 2},
	{"name": "open", "key": "open-secret-key"}
]}`

func newTestTier(t *testing.T, clock *routetest.FakeClock, inflight int) (*Tier, *metrics.TenantStats) {
	t.Helper()
	path := writeKeyFile(t, t.TempDir(), quotaTenants)
	auth, err := LoadAuthenticator(path, time.Minute, clock)
	if err != nil {
		t.Fatal(err)
	}
	stats := &metrics.TenantStats{}
	return NewTier(TierOptions{Auth: auth, Inflight: inflight, Stats: stats, Clock: clock, Service: "test"}), stats
}

func decodeError(t *testing.T, body io.Reader) api.ErrorBody {
	t.Helper()
	var env api.ErrorEnvelope
	if err := json.NewDecoder(body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	return env.Error
}

func TestTierRejectsUnauthenticated(t *testing.T) {
	tier, stats := newTestTier(t, routetest.NewFakeClock(), 0)
	inner := 0
	h := tier.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { inner++ }))

	for _, set := range []func(*http.Request){
		func(r *http.Request) {},
		func(r *http.Request) { r.Header.Set("X-API-Key", "wrong-key-entirely") },
		func(r *http.Request) { r.Header.Set("Authorization", "Bearer nope-nope-nope") },
		func(r *http.Request) { r.Header.Set("Authorization", "Basic bm9wZQ==") },
	} {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader("{}"))
		set(req)
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if rr.Code != http.StatusUnauthorized {
			t.Fatalf("status %d, want 401", rr.Code)
		}
		if e := decodeError(t, rr.Body); e.Code != api.CodeUnauthorized {
			t.Fatalf("code %q, want %q", e.Code, api.CodeUnauthorized)
		}
	}
	if inner != 0 {
		t.Fatalf("inner handler ran %d times behind a failed auth", inner)
	}
	if got := stats.Snapshot().Unauthorized; got != 4 {
		t.Fatalf("unauthorized count %d, want 4", got)
	}
}

func TestTierEnforcesQuota(t *testing.T) {
	clock := routetest.NewFakeClock()
	tier, stats := newTestTier(t, clock, 0)
	h := tier.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))

	do := func(key string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader("{}"))
		req.Header.Set("Authorization", "Bearer "+key)
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		return rr
	}

	// Burst of 2, then the bucket is dry.
	for i := 0; i < 2; i++ {
		if rr := do("limited-secret"); rr.Code != http.StatusOK {
			t.Fatalf("request %d: status %d, want 200", i, rr.Code)
		}
	}
	rr := do("limited-secret")
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota status %d, want 429", rr.Code)
	}
	if e := decodeError(t, rr.Body); e.Code != api.CodeQuotaExceeded {
		t.Fatalf("code %q, want %q", e.Code, api.CodeQuotaExceeded)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// The unlimited tenant is unaffected by the noisy one's dry bucket.
	if rr := do("open-secret-key"); rr.Code != http.StatusOK {
		t.Fatalf("open tenant status %d, want 200", rr.Code)
	}

	// Refill at 1 rps: one second buys exactly one more admit.
	clock.Advance(time.Second)
	if rr := do("limited-secret"); rr.Code != http.StatusOK {
		t.Fatalf("post-refill status %d, want 200", rr.Code)
	}
	if rr := do("limited-secret"); rr.Code != http.StatusTooManyRequests {
		t.Fatalf("second post-refill status %d, want 429", rr.Code)
	}

	snap := stats.Snapshot()
	lim := snap.PerTenant["limited"]
	if lim.Admitted != 3 || lim.QuotaExceeded != 2 || lim.Completed != 3 {
		t.Fatalf("limited counters %+v", lim)
	}
	if open := snap.PerTenant["open"]; open.Admitted != 1 {
		t.Fatalf("open counters %+v", open)
	}
}

// TestTierAuditLog: one structured audit line per request, for denials and
// admits alike.
func TestTierAuditLog(t *testing.T) {
	var buf syncLogBuffer
	log.SetOutput(&buf)
	defer log.SetOutput(io.Discard)

	tier, _ := newTestTier(t, routetest.NewFakeClock(), 0)
	h := tier.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))

	req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader("{}"))
	req.Header.Set("X-API-Key", "open-secret-key")
	h.ServeHTTP(httptest.NewRecorder(), req)

	req = httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader("{}"))
	h.ServeHTTP(httptest.NewRecorder(), req)

	out := buf.String()
	if !strings.Contains(out, "audit") ||
		!strings.Contains(out, "tenant=open decision=admit") ||
		!strings.Contains(out, "status=200") {
		t.Fatalf("missing admit audit line:\n%s", out)
	}
	if !strings.Contains(out, "tenant=- decision=deny_auth") {
		t.Fatalf("missing deny audit line:\n%s", out)
	}
}

type syncLogBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncLogBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncLogBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestTierPreservesBody: peeking the SLO class must not consume the body
// the inner handler parses.
func TestTierPreservesBody(t *testing.T) {
	tier, _ := newTestTier(t, routetest.NewFakeClock(), 2)
	body := `{"model": "m", "slo": "interactive", "input": [1, 2, 3]}`
	var got string
	h := tier.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, err := io.ReadAll(r.Body)
		if err != nil {
			t.Error(err)
		}
		got = string(b)
		if tn, ok := FromContext(r.Context()); !ok || tn.Name != "open" {
			t.Errorf("tenant missing from context: %+v %v", tn, ok)
		}
	}))
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
	req.Header.Set("X-API-Key", "open-secret-key")
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if got != body {
		t.Fatalf("inner handler saw %q, want the original body", got)
	}
}

func TestTierRecordsFailures(t *testing.T) {
	tier, stats := newTestTier(t, routetest.NewFakeClock(), 1)
	h := tier.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		httpx.Error(w, http.StatusBadRequest, api.CodeBadInput, "nope")
	}))
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader("{}"))
	req.Header.Set("X-API-Key", "open-secret-key")
	h.ServeHTTP(httptest.NewRecorder(), req)

	snap := stats.Snapshot().PerTenant["open"]
	if snap.Failed != 1 || snap.Completed != 0 {
		t.Fatalf("counters %+v, want 1 failed", snap)
	}
	// The fair gate's slot was released.
	if tier.Fair().InUse() != 0 {
		t.Fatalf("slot leaked: %d in use", tier.Fair().InUse())
	}
}

func TestPeekClass(t *testing.T) {
	cases := []struct {
		body string
		want string
	}{
		{`{"slo": "interactive"}`, "interactive"},
		{`{"slo": "batch"}`, "batch"},
		{`{"slo": "standard"}`, "standard"},
		{`{}`, "standard"},
		{`not json`, "standard"},
		{`{"slo": "bogus"}`, "standard"},
	}
	for _, tc := range cases {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(tc.body))
		if got := peekClass(req).String(); got != tc.want {
			t.Errorf("peekClass(%q) = %q, want %q", tc.body, got, tc.want)
		}
		// Body restored.
		b, _ := io.ReadAll(req.Body)
		if string(b) != tc.body {
			t.Errorf("peekClass consumed the body: %q", b)
		}
	}
	// GET has no body to peek.
	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	if peekClass(req).String() != "standard" {
		t.Error("GET should default to standard")
	}
}
