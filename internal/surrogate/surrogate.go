// Package surrogate provides the calibrated analytic accuracy model used to
// evaluate the full 1,717-trial sweep without GPU-scale training
// (substitution documented in DESIGN.md §2).
//
// The model is a linear effects model over the search-space axes — input
// channels, batch size, stem kernel/stride/padding, width, and the stem's
// effective output resolution — plus two stochastic components that
// reproduce the paper's observed accuracy distribution: per-trial Gaussian
// evaluation noise (5-epoch training on 5 folds is noisy) and a low tail of
// convergence failures (the paper's minimum of 76.19% is far below the bulk
// of its results). Both stochastic components are deterministic functions of
// the trial identity, so sweeps are exactly reproducible.
//
// The default coefficients are calibrated so the six stock ResNet-18
// variants land on the paper's Table 5 and the sweep's extremes land near
// Table 3; Calibrate refits the linear terms from real training runs by
// least squares, which is how the defaults were obtained at small scale.
package surrogate

import (
	"fmt"
	"math"

	"drainnas/internal/resnet"
	"drainnas/internal/tensor"
)

// Model holds the effect coefficients, in accuracy percentage points.
type Model struct {
	// Base is the reference accuracy: 5 channels, batch 8, kernel 7,
	// padding 2, width 32, stem output resolution 25 (quarter input).
	Base float64

	Chan7 float64 // 7 input channels instead of 5
	B16   float64 // batch 16 instead of 8
	B32   float64 // batch 32 instead of 8
	K3    float64 // 3×3 stem kernel instead of 7×7
	P1    float64 // padding 1 instead of 2
	P3    float64 // padding 3 instead of 2
	W48   float64 // width 48 instead of 32
	W64   float64 // width 64 instead of 32
	Res50 float64 // stem output at half input resolution instead of quarter
	Res1  float64 // stem output at full input resolution instead of quarter

	// NoiseStd is the per-trial evaluation noise in points.
	NoiseStd float64
	// TailBase and tail modifiers give each trial a small probability of a
	// convergence failure costing TailLo..TailHi points.
	TailBase  float64
	TailB32   float64 // extra failure probability at batch 32
	TailHiRes float64 // extra probability for full-resolution stems
	TailLo    float64
	TailHi    float64
	// Seed fixes the stochastic components.
	Seed uint64
}

// Default returns the calibrated model.
func Default() Model {
	return Model{
		Base:  92.6,
		Chan7: 1.10,
		B16:   0.55,
		B32:   -1.40,
		K3:    1.00,
		P1:    0.20,
		P3:    -0.10,
		W48:   0.05,
		W64:   0.30,
		Res50: 0.50,
		Res1:  -1.00,

		NoiseStd:  0.62,
		TailBase:  0.015,
		TailB32:   0.060,
		TailHiRes: 0.040,
		TailLo:    6,
		TailHi:    14.5,
		Seed:      2464,
	}
}

// StemResolutionClass classifies the stem's downsampling into the three
// classes the search space can produce: 0 = quarter resolution (stride 2 +
// pooling stride 2), 1 = half resolution, 2 = full resolution.
func StemResolutionClass(cfg resnet.Config) int {
	down := 1
	if cfg.Stride == 2 {
		down *= 2
	}
	if cfg.PoolChoice == 1 && cfg.StridePool == 2 {
		down *= 2
	}
	switch {
	case down >= 4:
		return 0
	case down == 2:
		return 1
	default:
		return 2
	}
}

// Mean returns the deterministic (noise-free) accuracy prediction in
// percent.
func (m Model) Mean(cfg resnet.Config) float64 {
	acc := m.Base
	if cfg.Channels == 7 {
		acc += m.Chan7
	}
	switch cfg.Batch {
	case 16:
		acc += m.B16
	case 32:
		acc += m.B32
	}
	if cfg.KernelSize == 3 {
		acc += m.K3
	}
	switch cfg.Padding {
	case 1:
		acc += m.P1
	case 3:
		acc += m.P3
	}
	switch cfg.InitialOutputFeature {
	case 48:
		acc += m.W48
	case 64:
		acc += m.W64
	}
	switch StemResolutionClass(cfg) {
	case 1:
		acc += m.Res50
	case 2:
		acc += m.Res1
	}
	return acc
}

// trialRNG derives the deterministic noise stream of one trial. The hash
// covers the raw configuration — including pool parameters that are
// irrelevant when PoolChoice is 0 — because NNI trains every raw trial
// independently: two trials that build identical networks still receive
// independent evaluation noise, exactly as in the paper's data (Table 4
// contains such near-duplicate rows with different accuracies).
func (m Model) trialRNG(cfg resnet.Config) *tensor.RNG {
	h := m.Seed
	key := fmt.Sprintf("%dch%db%dk%ds%dp%dpc%dkp%dsp%df", cfg.Channels, cfg.Batch,
		cfg.KernelSize, cfg.Stride, cfg.Padding, cfg.PoolChoice,
		cfg.KernelSizePool, cfg.StridePool, cfg.InitialOutputFeature)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * 0x100000001B3
	}
	return tensor.NewRNG(h)
}

// Accuracy returns the trial's simulated 5-fold mean accuracy in percent:
// the linear mean plus per-trial noise, with a deterministic low tail of
// convergence failures, clamped to a plausible band.
func (m Model) Accuracy(cfg resnet.Config) float64 {
	rng := m.trialRNG(cfg)
	acc := m.Mean(cfg)
	noise := rng.NormFloat64() * m.NoiseStd
	// Clip noise at 2.5σ: a 5-fold mean cannot stray arbitrarily.
	limit := 2.5 * m.NoiseStd
	if noise > limit {
		noise = limit
	} else if noise < -limit {
		noise = -limit
	}
	acc += noise

	tailP := m.TailBase
	if cfg.Batch == 32 {
		tailP += m.TailB32
	}
	if StemResolutionClass(cfg) == 2 {
		tailP += m.TailHiRes
	}
	if rng.Float64() < tailP {
		acc -= rng.Uniform(m.TailLo, m.TailHi)
	}
	if acc > 99.0 {
		acc = 99.0
	}
	if acc < 50.0 {
		acc = 50.0
	}
	return acc
}

// CalPoint pairs a configuration with a measured accuracy (from real
// training) for calibration.
type CalPoint struct {
	Config   resnet.Config
	Accuracy float64 // percent
}

// features maps a configuration to the design-matrix row
// [1, chan7, b16, b32, k3, p1, p3, w48, w64, res50, res1].
func features(cfg resnet.Config) []float64 {
	row := make([]float64, 11)
	row[0] = 1
	if cfg.Channels == 7 {
		row[1] = 1
	}
	switch cfg.Batch {
	case 16:
		row[2] = 1
	case 32:
		row[3] = 1
	}
	if cfg.KernelSize == 3 {
		row[4] = 1
	}
	switch cfg.Padding {
	case 1:
		row[5] = 1
	case 3:
		row[6] = 1
	}
	switch cfg.InitialOutputFeature {
	case 48:
		row[7] = 1
	case 64:
		row[8] = 1
	}
	switch StemResolutionClass(cfg) {
	case 1:
		row[9] = 1
	case 2:
		row[10] = 1
	}
	return row
}

// Calibrate fits the linear coefficients to measured points by ridge-
// regularized least squares (the small ridge keeps the system solvable when
// some axes are unobserved) and returns a model carrying the fitted means
// with the receiver's stochastic components.
func (m Model) Calibrate(points []CalPoint) Model {
	const dim = 11
	const ridge = 1e-6
	ata := make([][]float64, dim)
	for i := range ata {
		ata[i] = make([]float64, dim)
		ata[i][i] = ridge
	}
	atb := make([]float64, dim)
	for _, p := range points {
		row := features(p.Config)
		for i := 0; i < dim; i++ {
			if row[i] == 0 {
				continue
			}
			for j := 0; j < dim; j++ {
				ata[i][j] += row[i] * row[j]
			}
			atb[i] += row[i] * p.Accuracy
		}
	}
	coef := solveSPD(ata, atb)
	out := m
	out.Base = coef[0]
	out.Chan7 = coef[1]
	out.B16 = coef[2]
	out.B32 = coef[3]
	out.K3 = coef[4]
	out.P1 = coef[5]
	out.P3 = coef[6]
	out.W48 = coef[7]
	out.W64 = coef[8]
	out.Res50 = coef[9]
	out.Res1 = coef[10]
	return out
}

// RMSE measures the fit of the deterministic mean against measured points.
func (m Model) RMSE(points []CalPoint) float64 {
	if len(points) == 0 {
		return 0
	}
	ss := 0.0
	for _, p := range points {
		d := m.Mean(p.Config) - p.Accuracy
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(points)))
}

// solveSPD solves A·x = b for symmetric positive-definite A by Gaussian
// elimination with partial pivoting (dimension is tiny, stability suffices).
func solveSPD(a [][]float64, b []float64) []float64 {
	n := len(b)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n+1)
		copy(m[i], a[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		m[col], m[pivot] = m[pivot], m[col]
		pv := m[col][col]
		if math.Abs(pv) < 1e-12 {
			continue // unobserved axis; ridge keeps coefficient ≈ 0
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / pv
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		if math.Abs(m[i][i]) > 1e-12 {
			x[i] = m[i][n] / m[i][i]
		}
	}
	return x
}
