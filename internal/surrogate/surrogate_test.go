package surrogate

import (
	"math"
	"testing"
	"testing/quick"

	"drainnas/internal/resnet"
	"drainnas/internal/tensor"
)

func TestDefaultMatchesTable5Baselines(t *testing.T) {
	// Paper Table 5 stock ResNet-18 accuracies.
	want := map[[2]int]float64{
		{5, 8}: 92.9, {5, 16}: 93.6, {5, 32}: 89.67,
		{7, 8}: 94.76, {7, 16}: 95.37, {7, 32}: 94.51,
	}
	m := Default()
	for key, acc := range want {
		cfg := resnet.StockResNet18(key[0], key[1])
		got := m.Mean(cfg)
		if math.Abs(got-acc) > 2.6 {
			t.Errorf("stock %dch b%d: mean %.2f, paper %.2f", key[0], key[1], got, acc)
		}
	}
	// Ordering within each channel count: b16 > b8 > b32 (Table 5).
	for _, ch := range []int{5, 7} {
		a8 := m.Mean(resnet.StockResNet18(ch, 8))
		a16 := m.Mean(resnet.StockResNet18(ch, 16))
		a32 := m.Mean(resnet.StockResNet18(ch, 32))
		if !(a16 > a8 && a8 > a32) {
			t.Errorf("%dch batch ordering broken: %v %v %v", ch, a8, a16, a32)
		}
	}
	// 7 channels beat 5 channels at equal batch.
	if m.Mean(resnet.StockResNet18(7, 16)) <= m.Mean(resnet.StockResNet18(5, 16)) {
		t.Error("7ch must beat 5ch")
	}
}

func TestBestConfigNearPaperMax(t *testing.T) {
	// The paper's top solution: 7ch, b16, k3 s2 p1, no pool, width 32 →
	// 96.13%.
	best := resnet.Config{Channels: 7, Batch: 16, KernelSize: 3, Stride: 2,
		Padding: 1, PoolChoice: 0, InitialOutputFeature: 32, NumClasses: 2}
	m := Default()
	if got := m.Mean(best); math.Abs(got-96.13) > 1.5 {
		t.Fatalf("best config mean %.2f, paper 96.13", got)
	}
}

func TestAccuracyDeterministic(t *testing.T) {
	m := Default()
	cfg := resnet.StockResNet18(5, 8)
	if m.Accuracy(cfg) != m.Accuracy(cfg) {
		t.Fatal("Accuracy must be deterministic per trial")
	}
	// Different seeds change the noise.
	m2 := m
	m2.Seed = 777
	same := 0
	for _, b := range []int{8, 16, 32} {
		if m.Accuracy(resnet.StockResNet18(5, b)) == m2.Accuracy(resnet.StockResNet18(5, b)) {
			same++
		}
	}
	if same == 3 {
		t.Fatal("seed change had no effect")
	}
}

func TestAccuracyBounded(t *testing.T) {
	f := func(chSel, bSel, kSel, pSel, wSel, poolSel uint8) bool {
		cfg := resnet.Config{
			Channels:             []int{5, 7}[chSel%2],
			Batch:                []int{8, 16, 32}[bSel%3],
			KernelSize:           []int{3, 7}[kSel%2],
			Stride:               []int{1, 2}[kSel%2],
			Padding:              []int{1, 2, 3}[pSel%3],
			PoolChoice:           int(poolSel % 2),
			KernelSizePool:       2,
			StridePool:           2,
			InitialOutputFeature: []int{32, 48, 64}[wSel%3],
			NumClasses:           2,
		}
		acc := Default().Accuracy(cfg)
		return acc >= 50 && acc <= 99
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStemResolutionClass(t *testing.T) {
	quarter := resnet.StockResNet18(5, 8) // s2 + pool s2
	if StemResolutionClass(quarter) != 0 {
		t.Fatal("stock must be quarter resolution")
	}
	half := quarter
	half.PoolChoice = 0
	if StemResolutionClass(half) != 1 {
		t.Fatal("s2 no-pool must be half resolution")
	}
	full := half
	full.Stride = 1
	if StemResolutionClass(full) != 2 {
		t.Fatal("s1 no-pool must be full resolution")
	}
	poolS1 := quarter
	poolS1.StridePool = 1
	if StemResolutionClass(poolS1) != 1 {
		t.Fatal("s2 + pool-s1 must be half resolution")
	}
}

func TestCalibrateRecoversKnownModel(t *testing.T) {
	// Generate noiseless observations from a known model over the whole
	// grid, fit, and check the coefficients are recovered.
	truth := Default()
	var points []CalPoint
	for _, ch := range []int{5, 7} {
		for _, b := range []int{8, 16, 32} {
			for _, k := range []struct{ ks, st int }{{3, 2}, {7, 2}, {3, 1}} {
				for _, p := range []int{1, 2, 3} {
					for _, w := range []int{32, 48, 64} {
						for _, pool := range []int{0, 1} {
							cfg := resnet.Config{Channels: ch, Batch: b,
								KernelSize: k.ks, Stride: k.st, Padding: p,
								PoolChoice: pool, KernelSizePool: 3, StridePool: 2,
								InitialOutputFeature: w, NumClasses: 2}
							points = append(points, CalPoint{cfg, truth.Mean(cfg)})
						}
					}
				}
			}
		}
	}
	fitted := Model{NoiseStd: truth.NoiseStd}.Calibrate(points)
	for name, pair := range map[string][2]float64{
		"Base": {truth.Base, fitted.Base}, "Chan7": {truth.Chan7, fitted.Chan7},
		"B16": {truth.B16, fitted.B16}, "B32": {truth.B32, fitted.B32},
		"K3": {truth.K3, fitted.K3}, "P1": {truth.P1, fitted.P1},
		"W64": {truth.W64, fitted.W64}, "Res50": {truth.Res50, fitted.Res50},
		"Res1": {truth.Res1, fitted.Res1},
	} {
		if math.Abs(pair[0]-pair[1]) > 1e-3 {
			t.Errorf("%s: truth %.4f fitted %.4f", name, pair[0], pair[1])
		}
	}
	if rmse := fitted.RMSE(points); rmse > 1e-3 {
		t.Fatalf("noiseless refit RMSE %.6f", rmse)
	}
}

func TestCalibrateWithNoiseStillClose(t *testing.T) {
	truth := Default()
	rng := tensor.NewRNG(4)
	var points []CalPoint
	for i := 0; i < 400; i++ {
		cfg := resnet.Config{
			Channels:             []int{5, 7}[rng.Intn(2)],
			Batch:                []int{8, 16, 32}[rng.Intn(3)],
			KernelSize:           []int{3, 7}[rng.Intn(2)],
			Stride:               []int{1, 2}[rng.Intn(2)],
			Padding:              []int{1, 2, 3}[rng.Intn(3)],
			PoolChoice:           rng.Intn(2),
			KernelSizePool:       []int{2, 3}[rng.Intn(2)],
			StridePool:           []int{1, 2}[rng.Intn(2)],
			InitialOutputFeature: []int{32, 48, 64}[rng.Intn(3)],
			NumClasses:           2,
		}
		points = append(points, CalPoint{cfg, truth.Mean(cfg) + rng.NormFloat64()*0.5})
	}
	fitted := Model{}.Calibrate(points)
	if rmse := fitted.RMSE(points); rmse > 1.0 {
		t.Fatalf("noisy refit RMSE %.3f", rmse)
	}
	if math.Abs(fitted.Chan7-truth.Chan7) > 0.3 {
		t.Fatalf("Chan7 fitted %.3f truth %.3f", fitted.Chan7, truth.Chan7)
	}
}

func TestTailProducesLowOutliers(t *testing.T) {
	// Over the full 1,728-trial grid the minimum accuracy must fall well
	// below the bulk, reproducing Table 3's low end (76.19%).
	m := Default()
	minAcc, maxAcc := 100.0, 0.0
	count := 0
	for _, ch := range []int{5, 7} {
		for _, b := range []int{8, 16, 32} {
			for _, ks := range []int{3, 7} {
				for _, st := range []int{1, 2} {
					for _, p := range []int{1, 2, 3} {
						for _, pool := range []int{0, 1} {
							for _, kp := range []int{2, 3} {
								for _, sp := range []int{1, 2} {
									for _, w := range []int{32, 48, 64} {
										cfg := resnet.Config{Channels: ch, Batch: b,
											KernelSize: ks, Stride: st, Padding: p,
											PoolChoice: pool, KernelSizePool: kp, StridePool: sp,
											InitialOutputFeature: w, NumClasses: 2}
										acc := m.Accuracy(cfg)
										count++
										if acc < minAcc {
											minAcc = acc
										}
										if acc > maxAcc {
											maxAcc = acc
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	if count != 3456 { // 1728 raw × dedup later; here the raw loop double counts no-pool variants
		t.Logf("trial count %d", count)
	}
	if minAcc > 83 {
		t.Fatalf("minimum accuracy %.2f — tail too weak (paper: 76.19)", minAcc)
	}
	if maxAcc < 94.5 || maxAcc > 99 {
		t.Fatalf("maximum accuracy %.2f (paper: 96.13)", maxAcc)
	}
}

func TestSolveSPDIdentity(t *testing.T) {
	a := [][]float64{{2, 0}, {0, 4}}
	x := solveSPD(a, []float64{4, 8})
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("solve: %v", x)
	}
}

func TestSurrogateMonotoneTrends(t *testing.T) {
	// The calibrated mean must encode the paper's observed trends
	// monotonically (no noise involved).
	m := Default()
	base := resnet.Config{Channels: 5, Batch: 8, KernelSize: 7, Stride: 2, Padding: 2,
		PoolChoice: 1, KernelSizePool: 3, StridePool: 2, InitialOutputFeature: 32, NumClasses: 2}
	ch7 := base
	ch7.Channels = 7
	if m.Mean(ch7) <= m.Mean(base) {
		t.Fatal("7ch must improve the mean")
	}
	k3 := base
	k3.KernelSize = 3
	if m.Mean(k3) <= m.Mean(base) {
		t.Fatal("3x3 stem must improve the mean")
	}
	b16 := base
	b16.Batch = 16
	b32 := base
	b32.Batch = 32
	if !(m.Mean(b16) > m.Mean(base) && m.Mean(base) > m.Mean(b32)) {
		t.Fatal("batch ordering b16 > b8 > b32 broken")
	}
}
