package nn

import (
	"math"

	"drainnas/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update using each Param's Grad. Gradients are not
	// cleared; call ZeroGrad before the next accumulation.
	Step()
	// SetLR changes the learning rate (for schedules).
	SetLR(lr float64)
	// LR returns the current learning rate.
	LR() float64
}

// SGD is stochastic gradient descent with classical momentum and decoupled
// L2 weight decay.
type SGD struct {
	params      []*Param
	lr          float64
	momentum    float64
	weightDecay float64
	velocity    []*tensor.Tensor
}

// NewSGD builds an SGD optimizer over params.
func NewSGD(params []*Param, lr, momentum, weightDecay float64) *SGD {
	s := &SGD{params: params, lr: lr, momentum: momentum, weightDecay: weightDecay}
	if momentum != 0 {
		s.velocity = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			s.velocity[i] = tensor.New(p.Data.Shape()...)
		}
	}
	return s
}

// Step applies v = μv + g + λw; w -= lr*v (or plain w -= lr*(g+λw) without
// momentum).
func (s *SGD) Step() {
	for i, p := range s.params {
		w := p.Data.Data()
		g := p.Grad.Data()
		if s.velocity == nil {
			for j := range w {
				w[j] -= float32(s.lr) * (g[j] + float32(s.weightDecay)*w[j])
			}
			continue
		}
		v := s.velocity[i].Data()
		mu := float32(s.momentum)
		wd := float32(s.weightDecay)
		lr := float32(s.lr)
		for j := range w {
			v[j] = mu*v[j] + g[j] + wd*w[j]
			w[j] -= lr * v[j]
		}
	}
}

// SetLR sets the learning rate.
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// LR returns the learning rate.
func (s *SGD) LR() float64 { return s.lr }

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	params       []*Param
	lr           float64
	beta1, beta2 float64
	eps          float64
	weightDecay  float64
	step         int
	moment1      []*tensor.Tensor
	moment2      []*tensor.Tensor
}

// NewAdam builds an Adam optimizer with the usual defaults
// (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(params []*Param, lr float64) *Adam {
	a := &Adam{
		params: params, lr: lr,
		beta1: 0.9, beta2: 0.999, eps: 1e-8,
		moment1: make([]*tensor.Tensor, len(params)),
		moment2: make([]*tensor.Tensor, len(params)),
	}
	for i, p := range params {
		a.moment1[i] = tensor.New(p.Data.Shape()...)
		a.moment2[i] = tensor.New(p.Data.Shape()...)
	}
	return a
}

// Step applies one Adam update.
func (a *Adam) Step() {
	a.step++
	bc1 := 1 - math.Pow(a.beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.beta2, float64(a.step))
	for i, p := range a.params {
		w := p.Data.Data()
		g := p.Grad.Data()
		m := a.moment1[i].Data()
		v := a.moment2[i].Data()
		for j := range w {
			gj := float64(g[j]) + a.weightDecay*float64(w[j])
			mj := a.beta1*float64(m[j]) + (1-a.beta1)*gj
			vj := a.beta2*float64(v[j]) + (1-a.beta2)*gj*gj
			m[j] = float32(mj)
			v[j] = float32(vj)
			mHat := mj / bc1
			vHat := vj / bc2
			w[j] -= float32(a.lr * mHat / (math.Sqrt(vHat) + a.eps))
		}
	}
}

// SetLR sets the learning rate.
func (a *Adam) SetLR(lr float64) { a.lr = lr }

// LR returns the learning rate.
func (a *Adam) LR() float64 { return a.lr }

// StepLRSchedule decays lr0 by gamma every `every` epochs:
// lr(e) = lr0 * gamma^floor(e/every).
func StepLRSchedule(lr0, gamma float64, every int) func(epoch int) float64 {
	return func(epoch int) float64 {
		if every <= 0 {
			return lr0
		}
		return lr0 * math.Pow(gamma, float64(epoch/every))
	}
}

// CosineLRSchedule anneals lr0 to lrMin over total epochs.
func CosineLRSchedule(lr0, lrMin float64, total int) func(epoch int) float64 {
	return func(epoch int) float64 {
		if total <= 1 {
			return lr0
		}
		t := float64(epoch) / float64(total-1)
		if t > 1 {
			t = 1
		}
		return lrMin + 0.5*(lr0-lrMin)*(1+math.Cos(math.Pi*t))
	}
}

// ClipGradNorm rescales all gradients so their global L2 norm is at most
// maxNorm, returning the pre-clip norm.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	norm := GradNorm(params)
	if norm <= maxNorm || norm == 0 {
		return norm
	}
	scale := float32(maxNorm / norm)
	for _, p := range params {
		tensor.ScaleInPlace(p.Grad, scale)
	}
	return norm
}
