package nn

import (
	"fmt"

	"drainnas/internal/tensor"
)

// BasicBlock is the ResNet-18/34 residual unit:
//
//	main:     conv3x3(stride) → BN → ReLU → conv3x3(1) → BN
//	shortcut: identity, or conv1x1(stride) → BN when shape changes
//	out:      ReLU(main + shortcut)
type BasicBlock struct {
	name string

	Conv1 *Conv2d
	BN1   *BatchNorm2d
	Conv2 *Conv2d
	BN2   *BatchNorm2d

	// Downsample projects the shortcut when stride != 1 or channels change;
	// nil for an identity shortcut.
	DownConv *Conv2d
	DownBN   *BatchNorm2d

	relu1 *ReLU

	cachedPreAct *tensor.Tensor // main + shortcut, before the final ReLU
}

// NewBasicBlock builds a residual block mapping inC channels to outC with
// the given stride on the first convolution.
func NewBasicBlock(name string, rng *tensor.RNG, inC, outC, stride int) *BasicBlock {
	b := &BasicBlock{
		name:  name,
		Conv1: NewConv2d(name+".conv1", rng, inC, outC, 3, stride, 1, false),
		BN1:   NewBatchNorm2d(name+".bn1", outC),
		Conv2: NewConv2d(name+".conv2", rng, outC, outC, 3, 1, 1, false),
		BN2:   NewBatchNorm2d(name+".bn2", outC),
		relu1: NewReLU(name + ".relu1"),
	}
	if stride != 1 || inC != outC {
		b.DownConv = NewConv2d(name+".down.conv", rng, inC, outC, 1, stride, 0, false)
		b.DownBN = NewBatchNorm2d(name+".down.bn", outC)
	}
	return b
}

// Forward runs the residual computation.
func (b *BasicBlock) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	main := b.Conv1.Forward(x, train)
	main = b.BN1.Forward(main, train)
	main = b.relu1.Forward(main, train)
	main = b.Conv2.Forward(main, train)
	main = b.BN2.Forward(main, train)

	shortcut := x
	if b.DownConv != nil {
		shortcut = b.DownConv.Forward(x, train)
		shortcut = b.DownBN.Forward(shortcut, train)
	}
	sum := tensor.Add(main, shortcut)
	if train {
		b.cachedPreAct = sum
	} else {
		b.cachedPreAct = nil
	}
	return tensor.ReLU(sum)
}

// Backward splits the gradient between the main and shortcut branches.
func (b *BasicBlock) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if b.cachedPreAct == nil {
		panic(fmt.Sprintf("nn: %s Backward without a training Forward", b.name))
	}
	g := tensor.ReLUBackward(grad, b.cachedPreAct)

	// Main branch, reverse order.
	gm := b.BN2.Backward(g)
	gm = b.Conv2.Backward(gm)
	gm = b.relu1.Backward(gm)
	gm = b.BN1.Backward(gm)
	gm = b.Conv1.Backward(gm)

	// Shortcut branch.
	gs := g
	if b.DownConv != nil {
		gs = b.DownBN.Backward(gs)
		gs = b.DownConv.Backward(gs)
	}
	return tensor.AddInPlace(gm, gs)
}

// Params returns all learnable parameters of the block.
func (b *BasicBlock) Params() []*Param {
	ps := append(b.Conv1.Params(), b.BN1.Params()...)
	ps = append(ps, b.Conv2.Params()...)
	ps = append(ps, b.BN2.Params()...)
	if b.DownConv != nil {
		ps = append(ps, b.DownConv.Params()...)
		ps = append(ps, b.DownBN.Params()...)
	}
	return ps
}

// Name returns the block name.
func (b *BasicBlock) Name() string { return b.name }
