package nn

import (
	"fmt"
	"math"

	"drainnas/internal/tensor"
)

// BatchNorm2d normalizes each channel of an (N, C, H, W) tensor over the
// N×H×W axes, with learnable per-channel scale (gamma) and shift (beta) and
// running statistics for evaluation mode.
type BatchNorm2d struct {
	name string
	C    int
	Eps  float64
	// Momentum is the running-statistics update rate:
	// running = (1-Momentum)*running + Momentum*batch.
	Momentum float64

	Gamma *Param
	Beta  *Param

	RunningMean []float64
	RunningVar  []float64

	// backward caches
	cachedInput *tensor.Tensor
	cachedXHat  *tensor.Tensor
	cachedMean  []float64
	cachedInvSD []float64
}

// NewBatchNorm2d builds a batch-norm layer with gamma=1, beta=0,
// running mean 0 / variance 1.
func NewBatchNorm2d(name string, c int) *BatchNorm2d {
	bn := &BatchNorm2d{
		name: name, C: c, Eps: 1e-5, Momentum: 0.1,
		Gamma:       newParam(name+".gamma", tensor.Ones(c)),
		Beta:        newParam(name+".beta", tensor.New(c)),
		RunningMean: make([]float64, c),
		RunningVar:  make([]float64, c),
	}
	for i := range bn.RunningVar {
		bn.RunningVar[i] = 1
	}
	return bn
}

// Forward normalizes x. In training mode batch statistics are used and the
// running statistics updated; in eval mode the running statistics are used.
func (bn *BatchNorm2d) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkShape(bn.name, x, -1, bn.C, -1, -1)
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	plane := h * w
	count := n * plane
	out := tensor.New(n, c, h, w)

	if !train {
		bn.cachedInput = nil
		for ch := 0; ch < c; ch++ {
			mean := bn.RunningMean[ch]
			invSD := 1.0 / math.Sqrt(bn.RunningVar[ch]+bn.Eps)
			g := float64(bn.Gamma.Data.Data()[ch])
			b := float64(bn.Beta.Data.Data()[ch])
			scale := float32(g * invSD)
			shift := float32(b - g*mean*invSD)
			for s := 0; s < n; s++ {
				src := x.Data()[(s*c+ch)*plane : (s*c+ch+1)*plane]
				dst := out.Data()[(s*c+ch)*plane : (s*c+ch+1)*plane]
				for i, v := range src {
					dst[i] = v*scale + shift
				}
			}
		}
		return out
	}

	xhat := tensor.New(n, c, h, w)
	means := make([]float64, c)
	invSDs := make([]float64, c)
	for ch := 0; ch < c; ch++ {
		sum, sumSq := 0.0, 0.0
		for s := 0; s < n; s++ {
			src := x.Data()[(s*c+ch)*plane : (s*c+ch+1)*plane]
			for _, v := range src {
				f := float64(v)
				sum += f
				sumSq += f * f
			}
		}
		mean := sum / float64(count)
		variance := sumSq/float64(count) - mean*mean
		if variance < 0 {
			variance = 0 // guard against catastrophic cancellation
		}
		invSD := 1.0 / math.Sqrt(variance+bn.Eps)
		means[ch] = mean
		invSDs[ch] = invSD
		// Unbiased variance for the running estimate, as PyTorch does.
		unbiased := variance
		if count > 1 {
			unbiased = variance * float64(count) / float64(count-1)
		}
		bn.RunningMean[ch] = (1-bn.Momentum)*bn.RunningMean[ch] + bn.Momentum*mean
		bn.RunningVar[ch] = (1-bn.Momentum)*bn.RunningVar[ch] + bn.Momentum*unbiased

		g := float64(bn.Gamma.Data.Data()[ch])
		b := float64(bn.Beta.Data.Data()[ch])
		for s := 0; s < n; s++ {
			src := x.Data()[(s*c+ch)*plane : (s*c+ch+1)*plane]
			xh := xhat.Data()[(s*c+ch)*plane : (s*c+ch+1)*plane]
			dst := out.Data()[(s*c+ch)*plane : (s*c+ch+1)*plane]
			for i, v := range src {
				h := (float64(v) - mean) * invSD
				xh[i] = float32(h)
				dst[i] = float32(g*h + b)
			}
		}
	}
	bn.cachedInput = x
	bn.cachedXHat = xhat
	bn.cachedMean = means
	bn.cachedInvSD = invSDs
	return out
}

// Backward implements the standard batch-norm gradient:
//
//	dxhat = dout * gamma
//	dx    = invSD/m * (m*dxhat - Σdxhat - xhat*Σ(dxhat*xhat))
//
// and accumulates dgamma = Σ dout*xhat, dbeta = Σ dout.
func (bn *BatchNorm2d) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if bn.cachedInput == nil {
		panic(fmt.Sprintf("nn: %s Backward without a training Forward", bn.name))
	}
	x := bn.cachedInput
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	plane := h * w
	m := float64(n * plane)
	gradIn := tensor.New(n, c, h, w)
	for ch := 0; ch < c; ch++ {
		g := float64(bn.Gamma.Data.Data()[ch])
		invSD := bn.cachedInvSD[ch]
		sumD, sumDX := 0.0, 0.0
		for s := 0; s < n; s++ {
			gsrc := grad.Data()[(s*c+ch)*plane : (s*c+ch+1)*plane]
			xh := bn.cachedXHat.Data()[(s*c+ch)*plane : (s*c+ch+1)*plane]
			for i, d := range gsrc {
				sumD += float64(d)
				sumDX += float64(d) * float64(xh[i])
			}
		}
		bn.Gamma.Grad.Data()[ch] += float32(sumDX)
		bn.Beta.Grad.Data()[ch] += float32(sumD)
		k := g * invSD / m
		for s := 0; s < n; s++ {
			gsrc := grad.Data()[(s*c+ch)*plane : (s*c+ch+1)*plane]
			xh := bn.cachedXHat.Data()[(s*c+ch)*plane : (s*c+ch+1)*plane]
			dst := gradIn.Data()[(s*c+ch)*plane : (s*c+ch+1)*plane]
			for i, d := range gsrc {
				dst[i] = float32(k * (m*float64(d) - sumD - float64(xh[i])*sumDX))
			}
		}
	}
	return gradIn
}

// Params returns gamma and beta.
func (bn *BatchNorm2d) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// Name returns the layer name.
func (bn *BatchNorm2d) Name() string { return bn.name }
