package nn

import (
	"fmt"
	"math"

	"drainnas/internal/tensor"
)

// Conv2d is a 2-D convolution layer with square kernels.
type Conv2d struct {
	name                string
	InC, OutC           int
	Kernel, Stride, Pad int

	Weight *Param
	Bias   *Param // nil when the layer is bias-free (conv before BatchNorm)

	cachedInput *tensor.Tensor
}

// NewConv2d constructs a convolution layer with Kaiming-normal initialized
// weights (fan-in mode, gain for ReLU). Set withBias=false for convolutions
// followed by BatchNorm, matching the ResNet reference implementation.
func NewConv2d(name string, rng *tensor.RNG, inC, outC, kernel, stride, pad int, withBias bool) *Conv2d {
	if kernel <= 0 || stride <= 0 || pad < 0 || inC <= 0 || outC <= 0 {
		panic(fmt.Sprintf("nn: invalid Conv2d geometry in=%d out=%d k=%d s=%d p=%d", inC, outC, kernel, stride, pad))
	}
	fanIn := inC * kernel * kernel
	std := math.Sqrt(2.0 / float64(fanIn))
	c := &Conv2d{
		name: name, InC: inC, OutC: outC,
		Kernel: kernel, Stride: stride, Pad: pad,
		Weight: newParam(name+".weight", tensor.RandNormal(rng, std, outC, inC, kernel, kernel)),
	}
	if withBias {
		c.Bias = newParam(name+".bias", tensor.New(outC))
	}
	return c
}

// Forward computes the convolution; in training mode the input is cached
// for the backward pass.
func (c *Conv2d) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkShape(c.name, x, -1, c.InC, -1, -1)
	if train {
		c.cachedInput = x
	} else {
		c.cachedInput = nil
	}
	var bias *tensor.Tensor
	if c.Bias != nil {
		bias = c.Bias.Data
	}
	return tensor.Conv2D(x, c.Weight.Data, bias, c.Stride, c.Pad)
}

// Backward propagates gradients, accumulating into Weight.Grad (and
// Bias.Grad when present).
func (c *Conv2d) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.cachedInput == nil {
		panic(fmt.Sprintf("nn: %s Backward without a training Forward", c.name))
	}
	var gb *tensor.Tensor
	if c.Bias != nil {
		gb = c.Bias.Grad
	}
	return tensor.Conv2DBackward(c.cachedInput, c.Weight.Data, grad, c.Weight.Grad, gb, c.Stride, c.Pad)
}

// Params returns the layer's learnable parameters.
func (c *Conv2d) Params() []*Param {
	if c.Bias != nil {
		return []*Param{c.Weight, c.Bias}
	}
	return []*Param{c.Weight}
}

// Name returns the layer name.
func (c *Conv2d) Name() string { return c.name }

// OutSize returns the spatial output size for a given input size.
func (c *Conv2d) OutSize(in int) int { return tensor.ConvOut(in, c.Kernel, c.Stride, c.Pad) }

// Linear is a fully connected layer: y = x·Wᵀ + b for x of shape (N, in).
type Linear struct {
	name     string
	In, Out  int
	Weight   *Param // (Out, In)
	Bias     *Param // (Out)
	cachedIn *tensor.Tensor
}

// NewLinear constructs a fully connected layer with Kaiming-uniform-style
// initialization (uniform in ±1/sqrt(in)).
func NewLinear(name string, rng *tensor.RNG, in, out int) *Linear {
	bound := 1.0 / math.Sqrt(float64(in))
	return &Linear{
		name: name, In: in, Out: out,
		Weight: newParam(name+".weight", tensor.RandUniform(rng, -bound, bound, out, in)),
		Bias:   newParam(name+".bias", tensor.RandUniform(rng, -bound, bound, out)),
	}
}

// Forward computes the affine map.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkShape(l.name, x, -1, l.In)
	if train {
		l.cachedIn = x
	} else {
		l.cachedIn = nil
	}
	wT := tensor.Transpose2D(l.Weight.Data)
	out := tensor.MatMul(x, wT) // (N, Out)
	n := x.Dim(0)
	for r := 0; r < n; r++ {
		row := out.Data()[r*l.Out : (r+1)*l.Out]
		for j := range row {
			row[j] += l.Bias.Data.Data()[j]
		}
	}
	return out
}

// Backward accumulates dW = gradᵀ·x and db = Σ grad rows, returning
// gradIn = grad·W.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.cachedIn == nil {
		panic(fmt.Sprintf("nn: %s Backward without a training Forward", l.name))
	}
	gT := tensor.Transpose2D(grad) // (Out, N)
	tensor.MatMulAcc(l.Weight.Grad, gT, l.cachedIn)
	n := grad.Dim(0)
	gb := l.Bias.Grad.Data()
	for r := 0; r < n; r++ {
		row := grad.Data()[r*l.Out : (r+1)*l.Out]
		for j, v := range row {
			gb[j] += v
		}
	}
	return tensor.MatMul(grad, l.Weight.Data)
}

// Params returns weight and bias.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// Name returns the layer name.
func (l *Linear) Name() string { return l.name }
