package nn

import (
	"math"
	"testing"
	"testing/quick"

	"drainnas/internal/tensor"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestConv2dShapes(t *testing.T) {
	r := tensor.NewRNG(1)
	c := NewConv2d("c", r, 3, 8, 3, 2, 1, true)
	x := tensor.RandNormal(r, 1, 2, 3, 16, 16)
	y := c.Forward(x, false)
	want := []int{2, 8, 8, 8}
	for i, d := range want {
		if y.Dim(i) != d {
			t.Fatalf("shape %v want %v", y.Shape(), want)
		}
	}
	if c.OutSize(16) != 8 {
		t.Fatalf("OutSize=%d", c.OutSize(16))
	}
}

func TestConv2dParamCount(t *testing.T) {
	r := tensor.NewRNG(1)
	c := NewConv2d("c", r, 3, 8, 3, 1, 1, true)
	n := NumParams(c.Params())
	if n != 8*3*3*3+8 {
		t.Fatalf("param count %d", n)
	}
	cnb := NewConv2d("c2", r, 3, 8, 3, 1, 1, false)
	if NumParams(cnb.Params()) != 8*3*3*3 {
		t.Fatalf("bias-free param count %d", NumParams(cnb.Params()))
	}
}

func TestLinearForwardBackwardNumerical(t *testing.T) {
	r := tensor.NewRNG(2)
	l := NewLinear("fc", r, 5, 3)
	x := tensor.RandNormal(r, 1, 4, 5)
	labels := []int{0, 2, 1, 2}

	lossAt := func() float64 {
		y := l.Forward(x, false)
		loss, _ := CrossEntropy(y, labels)
		return loss
	}

	y := l.Forward(x, true)
	_, g := CrossEntropy(y, labels)
	ZeroGrad(l.Params())
	gx := l.Backward(g)

	const eps = 1e-2
	// Check weight gradient entries.
	for _, idx := range []int{0, 7, 14} {
		orig := l.Weight.Data.Data()[idx]
		l.Weight.Data.Data()[idx] = orig + eps
		up := lossAt()
		l.Weight.Data.Data()[idx] = orig - eps
		down := lossAt()
		l.Weight.Data.Data()[idx] = orig
		want := (up - down) / (2 * eps)
		got := float64(l.Weight.Grad.Data()[idx])
		if !almostEqual(got, want, 1e-2) {
			t.Fatalf("dW[%d]: got %v want %v", idx, got, want)
		}
	}
	// Check input gradient entries.
	for _, idx := range []int{0, 9, 19} {
		orig := x.Data()[idx]
		x.Data()[idx] = orig + eps
		up := lossAt()
		x.Data()[idx] = orig - eps
		down := lossAt()
		x.Data()[idx] = orig
		want := (up - down) / (2 * eps)
		got := float64(gx.Data()[idx])
		if !almostEqual(got, want, 1e-2) {
			t.Fatalf("dx[%d]: got %v want %v", idx, got, want)
		}
	}
}

func TestBatchNormTrainStats(t *testing.T) {
	r := tensor.NewRNG(3)
	bn := NewBatchNorm2d("bn", 4)
	x := tensor.RandNormal(r, 3, 8, 4, 5, 5)
	// Shift channel 2 to mean 10.
	for s := 0; s < 8; s++ {
		for i := 0; i < 25; i++ {
			x.Data()[(s*4+2)*25+i] += 10
		}
	}
	y := bn.Forward(x, true)
	// Output channel 2 must be ~zero-mean unit-variance.
	sum, sumSq, n := 0.0, 0.0, 0
	for s := 0; s < 8; s++ {
		for i := 0; i < 25; i++ {
			v := float64(y.Data()[(s*4+2)*25+i])
			sum += v
			sumSq += v * v
			n++
		}
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 1e-4 || math.Abs(variance-1) > 1e-3 {
		t.Fatalf("normalized mean=%v var=%v", mean, variance)
	}
	// Running mean moved toward 10 for channel 2.
	if bn.RunningMean[2] < 0.5 {
		t.Fatalf("running mean not updated: %v", bn.RunningMean[2])
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	r := tensor.NewRNG(4)
	bn := NewBatchNorm2d("bn", 2)
	// Train several steps so running stats converge toward the batch stats.
	for i := 0; i < 50; i++ {
		x := tensor.RandNormal(r, 2, 4, 2, 3, 3)
		bn.Forward(x, true)
	}
	x := tensor.Full(1.0, 1, 2, 3, 3)
	y := bn.Forward(x, false)
	// Eval output must be a deterministic affine map of the input; repeat
	// must match exactly.
	y2 := bn.Forward(x, false)
	for i := range y.Data() {
		if y.Data()[i] != y2.Data()[i] {
			t.Fatal("eval-mode BN not deterministic")
		}
	}
}

func TestBatchNormBackwardNumerical(t *testing.T) {
	r := tensor.NewRNG(5)
	bn := NewBatchNorm2d("bn", 2)
	// Give gamma/beta non-trivial values.
	bn.Gamma.Data.Data()[0] = 1.5
	bn.Gamma.Data.Data()[1] = 0.7
	bn.Beta.Data.Data()[0] = -0.3
	x := tensor.RandNormal(r, 1, 2, 2, 4, 4)
	probe := tensor.RandNormal(r, 1, 2, 2, 4, 4)

	lossAt := func() float64 {
		// Use a fresh BN clone (running stats are mutated by Forward but do
		// not affect train-mode output).
		y := bn.Forward(x, true)
		s := 0.0
		for i := range y.Data() {
			s += float64(y.Data()[i]) * float64(probe.Data()[i])
		}
		return s
	}

	base := bn.Forward(x, true)
	_ = base
	ZeroGrad(bn.Params())
	gx := bn.Backward(probe)

	const eps = 1e-2
	for _, idx := range []int{0, 17, 40, 63} {
		orig := x.Data()[idx]
		x.Data()[idx] = orig + eps
		up := lossAt()
		x.Data()[idx] = orig - eps
		down := lossAt()
		x.Data()[idx] = orig
		want := (up - down) / (2 * eps)
		got := float64(gx.Data()[idx])
		if !almostEqual(got, want, 3e-2) {
			t.Fatalf("dx[%d]: got %v want %v", idx, got, want)
		}
	}
	// Gamma gradient.
	for ch := 0; ch < 2; ch++ {
		orig := bn.Gamma.Data.Data()[ch]
		bn.Gamma.Data.Data()[ch] = orig + float32(eps)
		up := lossAt()
		bn.Gamma.Data.Data()[ch] = orig - float32(eps)
		down := lossAt()
		bn.Gamma.Data.Data()[ch] = orig
		want := (up - down) / (2 * eps)
		got := float64(bn.Gamma.Grad.Data()[ch])
		if !almostEqual(got, want, 3e-2) {
			t.Fatalf("dgamma[%d]: got %v want %v", ch, got, want)
		}
	}
}

func TestBasicBlockShapePreservingAndDownsample(t *testing.T) {
	r := tensor.NewRNG(6)
	same := NewBasicBlock("b1", r, 8, 8, 1)
	x := tensor.RandNormal(r, 1, 2, 8, 8, 8)
	y := same.Forward(x, false)
	if !y.SameShape(x) {
		t.Fatalf("identity block changed shape: %v", y.Shape())
	}
	if same.DownConv != nil {
		t.Fatal("identity block must not have a projection")
	}
	down := NewBasicBlock("b2", r, 8, 16, 2)
	y2 := down.Forward(x, false)
	want := []int{2, 16, 4, 4}
	for i, d := range want {
		if y2.Dim(i) != d {
			t.Fatalf("downsample shape %v want %v", y2.Shape(), want)
		}
	}
	if down.DownConv == nil {
		t.Fatal("downsample block needs a projection")
	}
}

func TestBasicBlockBackwardNumerical(t *testing.T) {
	r := tensor.NewRNG(7)
	blk := NewBasicBlock("b", r, 3, 6, 2)
	x := tensor.RandNormal(r, 1, 2, 3, 6, 6)
	out := blk.Forward(x, true)
	probe := tensor.RandNormal(r, 1, out.Shape()...)
	ZeroGrad(blk.Params())
	gx := blk.Backward(probe)

	lossAt := func() float64 {
		y := blk.Forward(x, true)
		s := 0.0
		for i := range y.Data() {
			s += float64(y.Data()[i]) * float64(probe.Data()[i])
		}
		return s
	}
	const eps = 1e-2
	for _, idx := range []int{0, 31, 71, 107} {
		orig := x.Data()[idx]
		x.Data()[idx] = orig + eps
		up := lossAt()
		x.Data()[idx] = orig - eps
		down := lossAt()
		x.Data()[idx] = orig
		want := (up - down) / (2 * eps)
		got := float64(gx.Data()[idx])
		if !almostEqual(got, want, 5e-2) {
			t.Fatalf("block dx[%d]: got %v want %v", idx, got, want)
		}
	}
}

func TestCrossEntropyKnownValue(t *testing.T) {
	// Uniform logits over 2 classes → loss = ln 2.
	logits := tensor.New(3, 2)
	loss, grad := CrossEntropy(logits, []int{0, 1, 0})
	if !almostEqual(loss, math.Log(2), 1e-6) {
		t.Fatalf("loss=%v want ln2", loss)
	}
	// grad rows: (p - onehot)/N = (0.5-1, 0.5)/3 etc.
	if !almostEqual(float64(grad.At(0, 0)), -0.5/3, 1e-6) {
		t.Fatalf("grad=%v", grad.Data())
	}
}

func TestCrossEntropyGradSumsToZero(t *testing.T) {
	// Property: each row of the CE gradient sums to zero (softmax rows sum
	// to one; subtracting a one-hot preserves that).
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		n, k := 5, 4
		logits := tensor.RandNormal(r, 3, n, k)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = r.Intn(k)
		}
		_, grad := CrossEntropy(logits, labels)
		for row := 0; row < n; row++ {
			s := 0.0
			for c := 0; c < k; c++ {
				s += float64(grad.At(row, c))
			}
			if math.Abs(s) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float32{
		2, 1, // pred 0
		0, 5, // pred 1
		3, 4, // pred 1
	}, 3, 2)
	if got := Accuracy(logits, []int{0, 1, 0}); !almostEqual(got, 2.0/3, 1e-9) {
		t.Fatalf("accuracy=%v", got)
	}
}

func TestConfusionMatrix(t *testing.T) {
	logits := tensor.FromSlice([]float32{
		2, 1,
		0, 5,
		3, 4,
		1, 0,
	}, 4, 2)
	m := ConfusionMatrix(logits, []int{0, 1, 0, 1}, 2)
	if m[0][0] != 1 || m[0][1] != 1 || m[1][1] != 1 || m[1][0] != 1 {
		t.Fatalf("confusion=%v", m)
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	// Minimize ||w - target||² with SGD; must converge.
	target := []float32{3, -2, 0.5}
	p := newParam("w", tensor.New(3))
	opt := NewSGD([]*Param{p}, 0.1, 0.9, 0)
	for step := 0; step < 200; step++ {
		p.ZeroGrad()
		for i := range target {
			p.Grad.Data()[i] = 2 * (p.Data.Data()[i] - target[i])
		}
		opt.Step()
	}
	for i := range target {
		if math.Abs(float64(p.Data.Data()[i]-target[i])) > 1e-3 {
			t.Fatalf("SGD failed to converge: %v", p.Data.Data())
		}
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	target := []float32{1, -1, 4}
	p := newParam("w", tensor.New(3))
	opt := NewAdam([]*Param{p}, 0.05)
	for step := 0; step < 500; step++ {
		p.ZeroGrad()
		for i := range target {
			p.Grad.Data()[i] = 2 * (p.Data.Data()[i] - target[i])
		}
		opt.Step()
	}
	for i := range target {
		if math.Abs(float64(p.Data.Data()[i]-target[i])) > 1e-2 {
			t.Fatalf("Adam failed to converge: %v", p.Data.Data())
		}
	}
}

func TestLRSchedules(t *testing.T) {
	step := StepLRSchedule(0.1, 0.5, 2)
	if step(0) != 0.1 || step(1) != 0.1 {
		t.Fatalf("step schedule epoch 0/1: %v %v", step(0), step(1))
	}
	if !almostEqual(step(2), 0.05, 1e-12) || !almostEqual(step(4), 0.025, 1e-12) {
		t.Fatalf("step schedule: %v %v", step(2), step(4))
	}
	cos := CosineLRSchedule(0.1, 0.001, 5)
	if !almostEqual(cos(0), 0.1, 1e-9) {
		t.Fatalf("cosine start %v", cos(0))
	}
	if !almostEqual(cos(4), 0.001, 1e-9) {
		t.Fatalf("cosine end %v", cos(4))
	}
	if cos(2) >= cos(1) || cos(3) >= cos(2) {
		t.Fatal("cosine schedule not monotone decreasing")
	}
}

func TestClipGradNorm(t *testing.T) {
	p := newParam("w", tensor.New(4))
	for i := range p.Grad.Data() {
		p.Grad.Data()[i] = 3 // norm = 6
	}
	pre := ClipGradNorm([]*Param{p}, 1.0)
	if !almostEqual(pre, 6, 1e-6) {
		t.Fatalf("pre-clip norm %v", pre)
	}
	if post := GradNorm([]*Param{p}); !almostEqual(post, 1, 1e-5) {
		t.Fatalf("post-clip norm %v", post)
	}
}

func TestSequentialComposesAndBackprops(t *testing.T) {
	r := tensor.NewRNG(9)
	seq := NewSequential("net",
		NewConv2d("c1", r, 2, 4, 3, 1, 1, false),
		NewBatchNorm2d("bn1", 4),
		NewReLU("r1"),
		NewMaxPool2d("p1", 2, 2, 0),
		NewGlobalAvgPool("gap"),
		NewLinear("fc", r, 4, 2),
	)
	x := tensor.RandNormal(r, 1, 3, 2, 8, 8)
	y := seq.Forward(x, true)
	if y.Dim(0) != 3 || y.Dim(1) != 2 {
		t.Fatalf("output shape %v", y.Shape())
	}
	loss, g := CrossEntropy(y, []int{0, 1, 0})
	if math.IsNaN(loss) {
		t.Fatal("NaN loss")
	}
	ZeroGrad(seq.Params())
	gx := seq.Backward(g)
	if !gx.SameShape(x) {
		t.Fatalf("input grad shape %v", gx.Shape())
	}
	if GradNorm(seq.Params()) == 0 {
		t.Fatal("no parameter gradients flowed")
	}
}

func TestTinyNetworkLearnsSeparableTask(t *testing.T) {
	// End-to-end sanity: a small conv net must learn to separate
	// bright-center vs bright-corner 8×8 images.
	r := tensor.NewRNG(10)
	seq := NewSequential("net",
		NewConv2d("c1", r, 1, 4, 3, 1, 1, false),
		NewBatchNorm2d("bn1", 4),
		NewReLU("r1"),
		NewGlobalAvgPool("gap"),
		NewLinear("fc", r, 4, 2),
	)
	makeBatch := func(n int) (*tensor.Tensor, []int) {
		x := tensor.New(n, 1, 8, 8)
		labels := make([]int, n)
		for i := 0; i < n; i++ {
			cls := r.Intn(2)
			labels[i] = cls
			for j := 0; j < 64; j++ {
				x.Data()[i*64+j] = float32(r.NormFloat64() * 0.1)
			}
			if cls == 0 {
				x.Data()[i*64+3*8+3] += 3 // bright center
				x.Data()[i*64+3*8+4] += 3
			} else {
				x.Data()[i*64] += 3 // bright corner
				x.Data()[i*64+1] += 3
			}
		}
		return x, labels
	}
	opt := NewSGD(seq.Params(), 0.05, 0.9, 1e-4)
	for step := 0; step < 60; step++ {
		x, labels := makeBatch(16)
		y := seq.Forward(x, true)
		_, g := CrossEntropy(y, labels)
		ZeroGrad(seq.Params())
		seq.Backward(g)
		opt.Step()
	}
	x, labels := makeBatch(64)
	y := seq.Forward(x, false)
	if acc := Accuracy(y, labels); acc < 0.9 {
		t.Fatalf("tiny net only reached %.2f accuracy", acc)
	}
}

func TestBackwardWithoutForwardPanics(t *testing.T) {
	r := tensor.NewRNG(11)
	layers := []Layer{
		NewConv2d("c", r, 1, 1, 3, 1, 1, false),
		NewBatchNorm2d("bn", 1),
		NewReLU("r"),
		NewMaxPool2d("p", 2, 2, 0),
		NewGlobalAvgPool("g"),
	}
	for _, l := range layers {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Backward without Forward must panic", l.Name())
				}
			}()
			l.Backward(tensor.New(1, 1, 2, 2))
		}()
	}
}

func TestCrossEntropyLSReducesToPlainAtZero(t *testing.T) {
	r := tensor.NewRNG(31)
	logits := tensor.RandNormal(r, 2, 4, 3)
	labels := []int{0, 2, 1, 1}
	l1, g1 := CrossEntropy(logits, labels)
	l2, g2 := CrossEntropyLS(logits, labels, 0)
	if l1 != l2 {
		t.Fatalf("loss %v vs %v", l1, l2)
	}
	for i := range g1.Data() {
		if g1.Data()[i] != g2.Data()[i] {
			t.Fatal("gradients differ at epsilon 0")
		}
	}
}

func TestCrossEntropyLSGradientNumerical(t *testing.T) {
	r := tensor.NewRNG(32)
	logits := tensor.RandNormal(r, 1, 3, 4)
	labels := []int{1, 3, 0}
	const eps = 0.1
	_, grad := CrossEntropyLS(logits, labels, eps)
	const h = 1e-3
	for _, idx := range []int{0, 5, 11} {
		orig := logits.Data()[idx]
		logits.Data()[idx] = orig + h
		up, _ := CrossEntropyLS(logits, labels, eps)
		logits.Data()[idx] = orig - h
		down, _ := CrossEntropyLS(logits, labels, eps)
		logits.Data()[idx] = orig
		want := (up - down) / (2 * h)
		got := float64(grad.Data()[idx])
		if math.Abs(got-want) > 1e-3*(1+math.Abs(want)) {
			t.Fatalf("grad[%d]: got %v want %v", idx, got, want)
		}
	}
}

func TestCrossEntropyLSGradRowsSumZero(t *testing.T) {
	// Smoothed targets still sum to 1, so gradient rows still sum to zero.
	r := tensor.NewRNG(33)
	logits := tensor.RandNormal(r, 3, 5, 3)
	labels := []int{0, 1, 2, 0, 1}
	_, grad := CrossEntropyLS(logits, labels, 0.2)
	for row := 0; row < 5; row++ {
		s := 0.0
		for c := 0; c < 3; c++ {
			s += float64(grad.At(row, c))
		}
		if math.Abs(s) > 1e-5 {
			t.Fatalf("row %d sums to %v", row, s)
		}
	}
}

func TestCrossEntropyLSHigherLossOnConfidentCorrect(t *testing.T) {
	// Smoothing penalizes over-confidence: for a very confident correct
	// prediction, the smoothed loss exceeds the plain loss.
	logits := tensor.FromSlice([]float32{10, -10}, 1, 2)
	labels := []int{0}
	plain, _ := CrossEntropy(logits, labels)
	smooth, _ := CrossEntropyLS(logits, labels, 0.1)
	if smooth <= plain {
		t.Fatalf("smoothed %v not above plain %v", smooth, plain)
	}
}

func TestCrossEntropyLSRejectsBadEpsilon(t *testing.T) {
	logits := tensor.New(1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CrossEntropyLS(logits, []int{0}, 1.0)
}
