package nn

import (
	"fmt"

	"drainnas/internal/tensor"
)

// ReLU is the rectified linear activation.
type ReLU struct {
	name        string
	cachedInput *tensor.Tensor
}

// NewReLU constructs a ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Forward applies max(x, 0).
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		r.cachedInput = x
	} else {
		r.cachedInput = nil
	}
	return tensor.ReLU(x)
}

// Backward masks the gradient by the sign of the cached input.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if r.cachedInput == nil {
		panic(fmt.Sprintf("nn: %s Backward without a training Forward", r.name))
	}
	return tensor.ReLUBackward(grad, r.cachedInput)
}

// Params returns nil; ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// Name returns the layer name.
func (r *ReLU) Name() string { return r.name }

// MaxPool2d is a square max-pooling layer.
type MaxPool2d struct {
	name                string
	Kernel, Stride, Pad int

	cachedArgmax []int32
	cachedShape  []int
}

// NewMaxPool2d constructs a max-pool layer.
func NewMaxPool2d(name string, kernel, stride, pad int) *MaxPool2d {
	if kernel <= 0 || stride <= 0 || pad < 0 {
		panic(fmt.Sprintf("nn: invalid MaxPool2d geometry k=%d s=%d p=%d", kernel, stride, pad))
	}
	return &MaxPool2d{name: name, Kernel: kernel, Stride: stride, Pad: pad}
}

// Forward pools and records argmax positions for backward.
func (m *MaxPool2d) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out, arg := tensor.MaxPool2D(x, m.Kernel, m.Stride, m.Pad)
	if train {
		m.cachedArgmax = arg
		m.cachedShape = x.Shape()
	} else {
		m.cachedArgmax = nil
	}
	return out
}

// Backward routes gradients to the recorded max positions.
func (m *MaxPool2d) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if m.cachedArgmax == nil {
		panic(fmt.Sprintf("nn: %s Backward without a training Forward", m.name))
	}
	return tensor.MaxPool2DBackward(grad, m.cachedArgmax, m.cachedShape)
}

// Params returns nil; pooling has no parameters.
func (m *MaxPool2d) Params() []*Param { return nil }

// Name returns the layer name.
func (m *MaxPool2d) Name() string { return m.name }

// OutSize returns the spatial output size for a given input size.
func (m *MaxPool2d) OutSize(in int) int { return tensor.ConvOut(in, m.Kernel, m.Stride, m.Pad) }

// GlobalAvgPool reduces (N, C, H, W) to (N, C) by averaging each plane —
// ResNet's adaptive average pooling to 1×1 plus flatten, fused.
type GlobalAvgPool struct {
	name        string
	cachedShape []int
}

// NewGlobalAvgPool constructs the layer.
func NewGlobalAvgPool(name string) *GlobalAvgPool { return &GlobalAvgPool{name: name} }

// Forward averages spatial planes.
func (g *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		g.cachedShape = x.Shape()
	} else {
		g.cachedShape = nil
	}
	return tensor.GlobalAvgPool2D(x)
}

// Backward spreads gradients uniformly over the spatial planes.
func (g *GlobalAvgPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if g.cachedShape == nil {
		panic(fmt.Sprintf("nn: %s Backward without a training Forward", g.name))
	}
	return tensor.GlobalAvgPool2DBackward(grad, g.cachedShape)
}

// Params returns nil.
func (g *GlobalAvgPool) Params() []*Param { return nil }

// Name returns the layer name.
func (g *GlobalAvgPool) Name() string { return g.name }

// Identity passes its input through unchanged; used as the shortcut branch
// of residual blocks when no projection is needed.
type Identity struct{ name string }

// NewIdentity constructs the layer.
func NewIdentity(name string) *Identity { return &Identity{name: name} }

// Forward returns x.
func (i *Identity) Forward(x *tensor.Tensor, train bool) *tensor.Tensor { return x }

// Backward returns grad.
func (i *Identity) Backward(grad *tensor.Tensor) *tensor.Tensor { return grad }

// Params returns nil.
func (i *Identity) Params() []*Param { return nil }

// Name returns the layer name.
func (i *Identity) Name() string { return i.name }
