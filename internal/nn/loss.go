package nn

import (
	"fmt"
	"math"

	"drainnas/internal/tensor"
)

// CrossEntropy computes the mean softmax cross-entropy of logits (N, K)
// against integer labels, and the gradient w.r.t. the logits
// (softmax(x) - onehot(y)) / N, ready to feed into Backward.
func CrossEntropy(logits *tensor.Tensor, labels []int) (loss float64, grad *tensor.Tensor) {
	if logits.NDim() != 2 {
		panic(fmt.Sprintf("nn: CrossEntropy wants (N, K) logits, got %v", logits.Shape()))
	}
	n, k := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: CrossEntropy %d labels for %d samples", len(labels), n))
	}
	probs := tensor.SoftmaxRows(logits)
	grad = probs.Clone()
	invN := 1.0 / float64(n)
	total := 0.0
	for r := 0; r < n; r++ {
		y := labels[r]
		if y < 0 || y >= k {
			panic(fmt.Sprintf("nn: CrossEntropy label %d out of range [0,%d)", y, k))
		}
		p := float64(probs.At(r, y))
		if p < 1e-12 {
			p = 1e-12
		}
		total -= math.Log(p)
		grad.Data()[r*k+y] -= 1
	}
	tensor.ScaleInPlace(grad, float32(invN))
	return total * invN, grad
}

// Accuracy returns the fraction of rows of logits whose argmax equals the
// label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	preds := tensor.ArgMaxRows(logits)
	if len(preds) != len(labels) {
		panic(fmt.Sprintf("nn: Accuracy %d predictions for %d labels", len(preds), len(labels)))
	}
	if len(labels) == 0 {
		return 0
	}
	correct := 0
	for i, p := range preds {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

// ConfusionMatrix tallies predictions into a k×k matrix indexed
// [true][predicted].
func ConfusionMatrix(logits *tensor.Tensor, labels []int, k int) [][]int {
	preds := tensor.ArgMaxRows(logits)
	m := make([][]int, k)
	for i := range m {
		m[i] = make([]int, k)
	}
	for i, p := range preds {
		m[labels[i]][p]++
	}
	return m
}

// CrossEntropyLS is cross-entropy with label smoothing: the target
// distribution puts 1-ε on the true class and ε/(K-1) on the rest. Light
// smoothing (ε ≈ 0.1) regularizes the short 5-epoch training runs the
// paper's protocol uses. ε = 0 reduces exactly to CrossEntropy.
func CrossEntropyLS(logits *tensor.Tensor, labels []int, epsilon float64) (loss float64, grad *tensor.Tensor) {
	if epsilon < 0 || epsilon >= 1 {
		panic(fmt.Sprintf("nn: label smoothing epsilon %v out of [0,1)", epsilon))
	}
	if epsilon == 0 {
		return CrossEntropy(logits, labels)
	}
	if logits.NDim() != 2 {
		panic(fmt.Sprintf("nn: CrossEntropyLS wants (N, K) logits, got %v", logits.Shape()))
	}
	n, k := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: CrossEntropyLS %d labels for %d samples", len(labels), n))
	}
	if k < 2 {
		panic("nn: CrossEntropyLS needs at least 2 classes")
	}
	probs := tensor.SoftmaxRows(logits)
	grad = probs.Clone()
	invN := 1.0 / float64(n)
	offTarget := epsilon / float64(k-1)
	onTarget := 1 - epsilon
	total := 0.0
	for r := 0; r < n; r++ {
		y := labels[r]
		if y < 0 || y >= k {
			panic(fmt.Sprintf("nn: CrossEntropyLS label %d out of range [0,%d)", y, k))
		}
		for c := 0; c < k; c++ {
			p := float64(probs.At(r, c))
			if p < 1e-12 {
				p = 1e-12
			}
			target := offTarget
			if c == y {
				target = onTarget
			}
			total -= target * math.Log(p)
			grad.Data()[r*k+c] -= float32(target)
		}
	}
	tensor.ScaleInPlace(grad, float32(invN))
	return total * invN, grad
}
