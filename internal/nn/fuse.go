package nn

import (
	"fmt"
	"math"

	"drainnas/internal/tensor"
)

// FuseConvBN folds an eval-mode BatchNorm into the preceding convolution,
// the standard deployment transform for edge inference (it removes the BN
// kernel entirely — the fusion the latency predictor's conv-bn kernels
// assume):
//
//	W' = W · γ/√(σ²+ε)        (per output channel)
//	b' = β + (b - μ) · γ/√(σ²+ε)
//
// The returned convolution has a bias and produces outputs identical to
// conv followed by bn in eval mode. The inputs are not modified.
func FuseConvBN(conv *Conv2d, bn *BatchNorm2d) (*Conv2d, error) {
	if conv.OutC != bn.C {
		return nil, fmt.Errorf("nn: FuseConvBN channel mismatch conv OutC=%d bn C=%d", conv.OutC, bn.C)
	}
	fused := &Conv2d{
		name: conv.name + "+bn", InC: conv.InC, OutC: conv.OutC,
		Kernel: conv.Kernel, Stride: conv.Stride, Pad: conv.Pad,
		Weight: newParam(conv.name+"+bn.weight", conv.Weight.Data.Clone()),
		Bias:   newParam(conv.name+"+bn.bias", tensor.New(conv.OutC)),
	}
	kdim := conv.InC * conv.Kernel * conv.Kernel
	w := fused.Weight.Data.Data()
	b := fused.Bias.Data.Data()
	for oc := 0; oc < conv.OutC; oc++ {
		gamma := float64(bn.Gamma.Data.Data()[oc])
		beta := float64(bn.Beta.Data.Data()[oc])
		scale := gamma / math.Sqrt(bn.RunningVar[oc]+bn.Eps)
		row := w[oc*kdim : (oc+1)*kdim]
		for i := range row {
			row[i] = float32(float64(row[i]) * scale)
		}
		bias := 0.0
		if conv.Bias != nil {
			bias = float64(conv.Bias.Data.Data()[oc])
		}
		b[oc] = float32(beta + (bias-bn.RunningMean[oc])*scale)
	}
	return fused, nil
}
