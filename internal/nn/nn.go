// Package nn implements the neural-network layers, losses and optimizers
// needed to train the paper's configurable ResNet-18 on CPU: Conv2d,
// BatchNorm2d, ReLU, MaxPool2d, global average pooling, Linear, residual
// basic blocks, cross-entropy loss, and SGD/Adam.
//
// Differentiation is layer-level reverse mode: each layer caches what its
// backward pass needs during Forward and exposes Backward(gradOut) → gradIn,
// accumulating parameter gradients into Param.Grad. That is exactly the
// structure a static feed-forward CNN needs, without the bookkeeping of a
// general tape.
package nn

import (
	"fmt"

	"drainnas/internal/tensor"
)

// Param is one learnable tensor with its accumulated gradient.
type Param struct {
	Name string
	Data *tensor.Tensor
	Grad *tensor.Tensor
}

// newParam allocates a parameter with a zeroed gradient of the same shape.
func newParam(name string, data *tensor.Tensor) *Param {
	return &Param{Name: name, Data: data, Grad: tensor.New(data.Shape()...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is a differentiable module. Forward must be called before Backward;
// Backward consumes the cached activations from the most recent Forward.
type Layer interface {
	// Forward computes the layer output. train selects training behaviour
	// (batch statistics in BatchNorm, activation caching for backward).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward propagates the loss gradient, accumulating parameter
	// gradients, and returns the gradient w.r.t. the layer input.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params lists the layer's learnable parameters (possibly empty).
	Params() []*Param
	// Name identifies the layer for debugging and serialization.
	Name() string
}

// Sequential chains layers, feeding each output to the next.
type Sequential struct {
	name   string
	Layers []Layer
}

// NewSequential builds a named layer chain.
func NewSequential(name string, layers ...Layer) *Sequential {
	return &Sequential{name: name, Layers: layers}
}

// Add appends a layer.
func (s *Sequential) Add(l Layer) { s.Layers = append(s.Layers, l) }

// Forward runs all layers in order.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs all layers in reverse order.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params concatenates all layer parameters in layer order.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Name returns the chain's name.
func (s *Sequential) Name() string { return s.name }

// ZeroGrad clears the gradients of every parameter in params.
func ZeroGrad(params []*Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// NumParams returns the total learnable element count.
func NumParams(params []*Param) int {
	n := 0
	for _, p := range params {
		n += p.Data.Numel()
	}
	return n
}

// GradNorm returns the global L2 norm of all gradients, a cheap diagnostic
// for exploding/vanishing gradients.
func GradNorm(params []*Param) float64 {
	s := 0.0
	for _, p := range params {
		n := p.Grad.Norm2()
		s += n * n
	}
	return sqrt(s)
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton iterations are plenty here and avoid importing math for one call.
	z := x
	for i := 0; i < 32; i++ {
		z = 0.5 * (z + x/z)
	}
	return z
}

// checkShape panics with a descriptive message unless got matches want.
func checkShape(layer string, got *tensor.Tensor, want ...int) {
	shape := got.Shape()
	if len(shape) != len(want) {
		panic(fmt.Sprintf("nn: %s got rank-%d input %v, want rank %d", layer, len(shape), shape, len(want)))
	}
	for i, d := range want {
		if d >= 0 && shape[i] != d {
			panic(fmt.Sprintf("nn: %s input shape %v, want dim %d == %d", layer, shape, i, d))
		}
	}
}
