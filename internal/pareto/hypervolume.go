package pareto

import (
	"fmt"
	"math"
	"sort"
)

// Hypervolume computes the dominated hypervolume of a point set with
// respect to a reference point: the volume of objective space dominated by
// at least one point and bounded by ref. It is the standard scalar quality
// indicator for Pareto fronts — larger is better.
//
// Directions are handled by mirroring maximized objectives, so ref must be
// a point that every input point dominates (e.g. worst-corner values).
// Points not strictly better than ref on every objective contribute
// nothing. The implementation is the WFG exclusive-hypervolume recursion,
// exact in any dimension and fast for the front sizes this library
// produces (tens of points).
func Hypervolume(points []Point, dirs []Direction, ref []float64) float64 {
	if len(dirs) != len(ref) {
		panic(fmt.Sprintf("pareto: Hypervolume arity mismatch dirs=%d ref=%d", len(dirs), len(ref)))
	}
	// Mirror everything into minimization space.
	minRef := make([]float64, len(ref))
	for i, d := range dirs {
		switch d {
		case Minimize:
			minRef[i] = ref[i]
		case Maximize:
			minRef[i] = -ref[i]
		default:
			panic(fmt.Sprintf("pareto: invalid direction %d", d))
		}
	}
	var set [][]float64
	for _, p := range points {
		if len(p.Values) != len(dirs) {
			panic(fmt.Sprintf("pareto: Hypervolume point arity %d, want %d", len(p.Values), len(dirs)))
		}
		v := make([]float64, len(dirs))
		ok := true
		for i, d := range dirs {
			x := p.Values[i]
			if d == Maximize {
				x = -x
			}
			if x >= minRef[i] {
				ok = false // does not dominate ref on this axis
			}
			v[i] = x
		}
		if ok {
			set = append(set, v)
		}
	}
	set = filterDominatedMin(set)
	return wfg(set, minRef)
}

// filterDominatedMin removes points dominated in pure-minimization space —
// WFG's recursion is correct either way but much faster on a clean front.
func filterDominatedMin(set [][]float64) [][]float64 {
	var out [][]float64
	for i, p := range set {
		dominated := false
		for j, q := range set {
			if i == j {
				continue
			}
			if dominatesMin(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	return out
}

// dominatesMin reports q ≤ p componentwise with at least one strict (both
// minimization vectors).
func dominatesMin(q, p []float64) bool {
	strict := false
	for i := range q {
		if q[i] > p[i] {
			return false
		}
		if q[i] < p[i] {
			strict = true
		}
	}
	return strict
}

// wfg computes the hypervolume of a minimization set against ref via the
// WFG exclusive-volume recursion.
func wfg(set [][]float64, ref []float64) float64 {
	if len(set) == 0 {
		return 0
	}
	// Sorting by the first objective descending improves the limit sets.
	sort.Slice(set, func(a, b int) bool { return set[a][0] > set[b][0] })
	total := 0.0
	for i, p := range set {
		total += exclhv(p, set[i+1:], ref)
	}
	return total
}

// exclhv is the volume dominated by p alone, excluding the region also
// dominated by any point of rest.
func exclhv(p []float64, rest [][]float64, ref []float64) float64 {
	vol := 1.0
	for i := range p {
		vol *= ref[i] - p[i]
	}
	if len(rest) == 0 {
		return vol
	}
	limited := make([][]float64, 0, len(rest))
	for _, q := range rest {
		l := make([]float64, len(q))
		for i := range q {
			l[i] = math.Max(q[i], p[i])
		}
		limited = append(limited, l)
	}
	return vol - wfg(filterDominatedMin(limited), ref)
}

// ReferenceFromWorst builds a hypervolume reference point from the worst
// observed value per objective, offset outward by margin (a fraction of the
// objective's span) so boundary points contribute volume.
func ReferenceFromWorst(points []Point, dirs []Direction, margin float64) []float64 {
	mins, maxs := Ranges(points)
	ref := make([]float64, len(dirs))
	for i, d := range dirs {
		span := maxs[i] - mins[i]
		if span == 0 {
			span = 1
		}
		switch d {
		case Minimize:
			ref[i] = maxs[i] + margin*span
		case Maximize:
			ref[i] = mins[i] - margin*span
		}
	}
	return ref
}

// KneePoint returns the index (into points) of the front member closest to
// the ideal point under the Chebyshev distance on normalized objectives —
// the conventional "best compromise" pick from a Pareto front. front holds
// indices into points; normalization spans the whole point set.
func KneePoint(points []Point, front []int, dirs []Direction) int {
	if len(front) == 0 {
		return -1
	}
	norm := Normalize(points)
	best := front[0]
	bestDist := math.Inf(1)
	for _, idx := range front {
		d := 0.0
		for i, dir := range dirs {
			v := norm[idx].Values[i]
			// Ideal is 1 for maximized, 0 for minimized objectives.
			var gap float64
			if dir == Maximize {
				gap = 1 - v
			} else {
				gap = v
			}
			if gap > d {
				d = gap
			}
		}
		if d < bestDist {
			bestDist = d
			best = idx
		}
	}
	return best
}
