package pareto

import (
	"math"
	"testing"
	"testing/quick"

	"drainnas/internal/tensor"
)

// Four-objective coverage: the quantization work makes precision bits a
// fourth axis (accuracy ↑, latency ↓, memory ↓, bits ↓), so the dominance
// machinery is exercised at arity 4 with the discrete, heavily-tied values
// that axis produces.

var ammmm = []Direction{Maximize, Minimize, Minimize, Minimize}

// rand4D draws NAS-shaped 4-objective points; the bits axis is discrete
// {8, 32} so ties and duplicate coordinates are common, as in real fronts.
func rand4D(rng *tensor.RNG, n int) []Point {
	bits := []float64{8, 32}
	points := make([]Point, n)
	for i := range points {
		points[i] = pt(i, rng.Float64(), rng.Float64()*100, rng.Float64()*50, bits[rng.Intn(2)])
	}
	return points
}

func TestFrontsAgreeWithNaive4D(t *testing.T) {
	f := func(seed uint64) bool {
		points := rand4D(tensor.NewRNG(seed), 40)
		naive := NonDominated(points, ammmm)
		fronts := Fronts(points, ammmm)
		if len(fronts) == 0 {
			return len(naive) == 0
		}
		if len(fronts[0]) != len(naive) {
			return false
		}
		set := map[int]bool{}
		for _, i := range fronts[0] {
			set[i] = true
		}
		for _, i := range naive {
			if !set[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFrontsPartitionAllPoints4D(t *testing.T) {
	f := func(seed uint64) bool {
		points := rand4D(tensor.NewRNG(seed), 30)
		fronts := Fronts(points, ammmm)
		seen := map[int]int{}
		for _, front := range fronts {
			for _, i := range front {
				seen[i]++
			}
		}
		if len(seen) != len(points) {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		// No member of front k may dominate a member of front j<k.
		for k := 1; k < len(fronts); k++ {
			for _, i := range fronts[k] {
				for _, j := range fronts[k-1] {
					if Dominates(points[i], points[j], ammmm) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestConstantFourthAxisMatchesThreeObjective pins the compatibility fact
// the search layer relies on: when every point shares the same bits value,
// the 4-objective front is exactly the 3-objective front.
func TestConstantFourthAxisMatchesThreeObjective(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 30
		p3 := make([]Point, n)
		p4 := make([]Point, n)
		for i := 0; i < n; i++ {
			a, l, m := rng.Float64(), rng.Float64()*100, rng.Float64()*50
			p3[i] = pt(i, a, l, m)
			p4[i] = pt(i, a, l, m, 32)
		}
		f3 := NonDominated(p3, amm)
		f4 := NonDominated(p4, ammmm)
		if len(f3) != len(f4) {
			return false
		}
		for i := range f3 {
			if f3[i] != f4[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCrowdingDistanceConstantAxisStaysFinite(t *testing.T) {
	points := []Point{
		pt(0, 0.96, 8.0, 11.0, 32),
		pt(1, 0.94, 6.0, 10.0, 32),
		pt(2, 0.92, 4.0, 9.0, 32),
		pt(3, 0.90, 2.0, 8.0, 32),
	}
	front := []int{0, 1, 2, 3}
	dist := CrowdingDistance(points, front)
	finite := 0
	for _, d := range dist {
		if !math.IsInf(d, 1) {
			if math.IsNaN(d) {
				t.Fatal("NaN crowding distance on a constant objective")
			}
			finite++
		}
	}
	if finite != 2 {
		t.Fatalf("expected 2 interior finite distances, got %d (%v)", finite, dist)
	}
}

func TestHypervolume4DKnownValue(t *testing.T) {
	// All-minimize unit-box pair with a quarter overlap.
	mins := []Direction{Minimize, Minimize, Minimize, Minimize}
	points := []Point{
		pt(0, 0, 0.5, 0, 0),
		pt(1, 0.5, 0, 0, 0),
	}
	ref := []float64{1, 1, 1, 1}
	// vol(a)=0.5, vol(b)=0.5, overlap=0.25 → union 0.75.
	if got := Hypervolume(points, mins, ref); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("4-D hypervolume %.6f, want 0.75", got)
	}
}

func TestHypervolume4DMixedDirections(t *testing.T) {
	// NAS-shaped: fp32 point vs int8 point under
	// (accuracy ↑, latency ↓, memory ↓, bits ↓).
	points := []Point{
		pt(0, 0.90, 10, 5, 32),
		pt(1, 0.88, 6, 4, 8),
	}
	ref := []float64{0.80, 20, 10, 40}
	// box0 = 0.10·10·5·8 = 40; box1 = 0.08·14·6·32 = 215.04;
	// overlap = 0.08·10·5·8 = 32 → union 223.04.
	if got := Hypervolume(points, ammmm, ref); math.Abs(got-223.04) > 1e-9 {
		t.Fatalf("mixed-direction 4-D hypervolume %.6f, want 223.04", got)
	}
	// A dominated 4-D point must add nothing.
	withDominated := append(append([]Point{}, points...), pt(2, 0.85, 12, 6, 32))
	if got := Hypervolume(withDominated, ammmm, ref); math.Abs(got-223.04) > 1e-9 {
		t.Fatalf("dominated point changed 4-D hypervolume to %.6f", got)
	}
}
