package pareto

import (
	"math"
	"testing"
	"testing/quick"

	"drainnas/internal/tensor"
)

var amm = []Direction{Maximize, Minimize, Minimize} // the paper's objectives

func pt(id int, vals ...float64) Point { return Point{ID: id, Values: vals} }

func TestDominatesBasics(t *testing.T) {
	a := pt(0, 0.96, 8.0, 11.0)  // better everywhere
	b := pt(1, 0.90, 30.0, 44.0) // worse everywhere
	if !Dominates(a, b, amm) {
		t.Fatal("a must dominate b")
	}
	if Dominates(b, a, amm) {
		t.Fatal("b must not dominate a")
	}
	// Equal points never dominate each other.
	if Dominates(a, a, amm) {
		t.Fatal("a point must not dominate itself")
	}
	// Trade-off points don't dominate.
	c := pt(2, 0.99, 40.0, 44.0)
	if Dominates(a, c, amm) || Dominates(c, a, amm) {
		t.Fatal("trade-off points must be mutually non-dominated")
	}
}

func TestDominatesEqualOnOneAxis(t *testing.T) {
	a := pt(0, 0.95, 8.0, 11.18)
	b := pt(1, 0.94, 8.0, 11.18)
	if !Dominates(a, b, amm) {
		t.Fatal("strictly better on one axis, equal elsewhere → dominates")
	}
}

func TestNonDominatedKnownFront(t *testing.T) {
	points := []Point{
		pt(0, 0.96, 8.2, 11.18),  // front
		pt(1, 0.95, 8.1, 11.18),  // front (faster)
		pt(2, 0.94, 8.5, 11.18),  // dominated by 0 and 1
		pt(3, 0.97, 30.0, 44.7),  // front (most accurate)
		pt(4, 0.90, 31.9, 44.71), // dominated by everything above
	}
	front := NonDominated(points, amm)
	want := map[int]bool{0: true, 1: true, 3: true}
	if len(front) != len(want) {
		t.Fatalf("front %v", front)
	}
	for _, i := range front {
		if !want[i] {
			t.Fatalf("unexpected front member %d", i)
		}
	}
}

func TestFrontsAgreeWithNaive(t *testing.T) {
	// Property: Fronts()[0] must equal NonDominated() on random point sets.
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 40
		points := make([]Point, n)
		for i := range points {
			points[i] = pt(i, rng.Float64(), rng.Float64()*100, rng.Float64()*50)
		}
		naive := NonDominated(points, amm)
		fronts := Fronts(points, amm)
		if len(fronts) == 0 {
			return len(naive) == 0
		}
		if len(fronts[0]) != len(naive) {
			return false
		}
		set := map[int]bool{}
		for _, i := range fronts[0] {
			set[i] = true
		}
		for _, i := range naive {
			if !set[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFrontsPartitionAllPoints(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 30
		points := make([]Point, n)
		for i := range points {
			points[i] = pt(i, rng.Float64(), rng.Float64())
		}
		fronts := Fronts(points, []Direction{Maximize, Minimize})
		seen := map[int]int{}
		for _, fr := range fronts {
			for _, i := range fr {
				seen[i]++
			}
		}
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFrontsLaterDominatedByEarlier(t *testing.T) {
	rng := tensor.NewRNG(17)
	points := make([]Point, 50)
	for i := range points {
		points[i] = pt(i, rng.Float64(), rng.Float64())
	}
	dirs := []Direction{Minimize, Minimize}
	fronts := Fronts(points, dirs)
	for fi := 1; fi < len(fronts); fi++ {
		for _, j := range fronts[fi] {
			dominated := false
			for _, i := range fronts[fi-1] {
				if Dominates(points[i], points[j], dirs) {
					dominated = true
					break
				}
			}
			if !dominated {
				t.Fatalf("front %d member %d not dominated by front %d", fi, j, fi-1)
			}
		}
	}
}

func TestCrowdingDistanceBoundariesInfinite(t *testing.T) {
	points := []Point{
		pt(0, 0.0, 10), pt(1, 0.25, 7), pt(2, 0.5, 5), pt(3, 1.0, 0),
	}
	front := []int{0, 1, 2, 3}
	d := CrowdingDistance(points, front)
	if !math.IsInf(d[0], 1) || !math.IsInf(d[3], 1) {
		t.Fatalf("boundary distances %v", d)
	}
	if math.IsInf(d[1], 1) || math.IsInf(d[2], 1) || d[1] <= 0 || d[2] <= 0 {
		t.Fatalf("interior distances %v", d)
	}
}

func TestCrowdingDistanceSmallFronts(t *testing.T) {
	points := []Point{pt(0, 1, 2), pt(1, 3, 4)}
	d := CrowdingDistance(points, []int{0, 1})
	for _, v := range d {
		if !math.IsInf(v, 1) {
			t.Fatalf("fronts of ≤2 must be all-infinite: %v", d)
		}
	}
	if got := CrowdingDistance(points, nil); len(got) != 0 {
		t.Fatal("empty front must yield empty distances")
	}
}

func TestNormalizeRange(t *testing.T) {
	points := []Point{pt(0, 76.19, 8.13, 11.18), pt(1, 96.13, 249.56, 44.69), pt(2, 86.0, 100.0, 30.0)}
	norm := Normalize(points)
	for _, p := range norm {
		for _, v := range p.Values {
			if v < 0 || v > 1 {
				t.Fatalf("normalized value %v out of [0,1]", v)
			}
		}
	}
	if norm[0].Values[0] != 0 || norm[1].Values[0] != 1 {
		t.Fatalf("accuracy axis endpoints %v %v", norm[0].Values[0], norm[1].Values[0])
	}
	// IDs preserved.
	if norm[2].ID != 2 {
		t.Fatal("Normalize must preserve IDs")
	}
}

func TestNormalizeConstantObjective(t *testing.T) {
	points := []Point{pt(0, 5, 1), pt(1, 5, 2)}
	norm := Normalize(points)
	if norm[0].Values[0] != 0.5 || norm[1].Values[0] != 0.5 {
		t.Fatalf("constant objective should map to 0.5: %v", norm)
	}
}

func TestRangesMatchTable3Layout(t *testing.T) {
	points := []Point{
		pt(0, 76.19, 249.56, 44.69),
		pt(1, 96.13, 8.13, 11.18),
	}
	mins, maxs := Ranges(points)
	if mins[0] != 76.19 || maxs[0] != 96.13 {
		t.Fatalf("accuracy range [%v, %v]", mins[0], maxs[0])
	}
	if mins[1] != 8.13 || maxs[1] != 249.56 {
		t.Fatalf("latency range [%v, %v]", mins[1], maxs[1])
	}
	if mins[2] != 11.18 || maxs[2] != 44.69 {
		t.Fatalf("memory range [%v, %v]", mins[2], maxs[2])
	}
}

func TestSingleAndEmptySets(t *testing.T) {
	if got := NonDominated(nil, amm); len(got) != 0 {
		t.Fatal("empty set front must be empty")
	}
	one := []Point{pt(0, 1, 2, 3)}
	if got := NonDominated(one, amm); len(got) != 1 || got[0] != 0 {
		t.Fatalf("singleton front %v", got)
	}
	if got := Fronts(nil, amm); got != nil {
		t.Fatal("empty Fronts must be nil")
	}
	mins, maxs := Ranges(nil)
	if mins != nil || maxs != nil {
		t.Fatal("empty Ranges must be nil")
	}
}

func TestDominatesPanicsOnArityMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dominates(pt(0, 1), pt(1, 1, 2), []Direction{Minimize})
}

func TestDuplicatePointsBothOnFront(t *testing.T) {
	// Identical points do not dominate each other, so both stay.
	points := []Point{pt(0, 1, 2, 3), pt(1, 1, 2, 3)}
	front := NonDominated(points, amm)
	if len(front) != 2 {
		t.Fatalf("duplicate points front %v", front)
	}
}
