// Package pareto implements multi-objective dominance analysis: dominance
// tests over mixed maximize/minimize objectives, naive and fast
// non-dominated sorting (the NSGA-II fronts), crowding distance, and
// per-objective normalization for the paper's Figure 3/4 visualizations.
package pareto

import (
	"fmt"
	"math"
	"sort"
)

// Direction states whether an objective is maximized or minimized.
type Direction int

// Objective directions.
const (
	Maximize Direction = iota
	Minimize
)

// Point is one candidate solution: an opaque ID plus its objective values.
type Point struct {
	ID     int
	Values []float64
}

// Dominates reports whether a dominates b: a is at least as good on every
// objective and strictly better on at least one.
func Dominates(a, b Point, dirs []Direction) bool {
	if len(a.Values) != len(dirs) || len(b.Values) != len(dirs) {
		panic(fmt.Sprintf("pareto: value/direction arity mismatch (%d, %d, %d)",
			len(a.Values), len(b.Values), len(dirs)))
	}
	strictlyBetter := false
	for i, d := range dirs {
		av, bv := a.Values[i], b.Values[i]
		switch d {
		case Maximize:
			if av < bv {
				return false
			}
			if av > bv {
				strictlyBetter = true
			}
		case Minimize:
			if av > bv {
				return false
			}
			if av < bv {
				strictlyBetter = true
			}
		default:
			panic(fmt.Sprintf("pareto: invalid direction %d", d))
		}
	}
	return strictlyBetter
}

// NonDominated returns the indices (into points) of the Pareto-optimal set,
// computed by pairwise comparison. O(n²·m) but simple and branch-predictable;
// used as the reference implementation and for small inputs.
func NonDominated(points []Point, dirs []Direction) []int {
	var front []int
	for i := range points {
		dominated := false
		for j := range points {
			if i != j && Dominates(points[j], points[i], dirs) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, i)
		}
	}
	return front
}

// Fronts partitions all points into successive non-dominated fronts
// (front 0 is the Pareto set; front k+1 is the Pareto set after removing
// fronts 0..k), using the fast non-dominated sort of NSGA-II:
// O(n²) dominance checks but each pair compared once.
func Fronts(points []Point, dirs []Direction) [][]int {
	n := len(points)
	if n == 0 {
		return nil
	}
	dominatedBy := make([]int, n)    // count of points dominating i
	dominatesSet := make([][]int, n) // points i dominates
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			switch {
			case Dominates(points[i], points[j], dirs):
				dominatesSet[i] = append(dominatesSet[i], j)
				dominatedBy[j]++
			case Dominates(points[j], points[i], dirs):
				dominatesSet[j] = append(dominatesSet[j], i)
				dominatedBy[i]++
			}
		}
	}
	var fronts [][]int
	var current []int
	for i := 0; i < n; i++ {
		if dominatedBy[i] == 0 {
			current = append(current, i)
		}
	}
	for len(current) > 0 {
		fronts = append(fronts, current)
		var next []int
		for _, i := range current {
			for _, j := range dominatesSet[i] {
				dominatedBy[j]--
				if dominatedBy[j] == 0 {
					next = append(next, j)
				}
			}
		}
		current = next
	}
	return fronts
}

// CrowdingDistance computes the NSGA-II crowding distance of each member of
// a front (indices into points). Boundary points get +Inf. Larger distance
// means a less crowded, more diverse solution.
func CrowdingDistance(points []Point, front []int) []float64 {
	n := len(front)
	dist := make([]float64, n)
	if n == 0 {
		return dist
	}
	if n <= 2 {
		for i := range dist {
			dist[i] = math.Inf(1)
		}
		return dist
	}
	m := len(points[front[0]].Values)
	order := make([]int, n) // positions into front
	for obj := 0; obj < m; obj++ {
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return points[front[order[a]]].Values[obj] < points[front[order[b]]].Values[obj]
		})
		lo := points[front[order[0]]].Values[obj]
		hi := points[front[order[n-1]]].Values[obj]
		span := hi - lo
		dist[order[0]] = math.Inf(1)
		dist[order[n-1]] = math.Inf(1)
		if span == 0 {
			continue
		}
		for k := 1; k < n-1; k++ {
			gap := points[front[order[k+1]]].Values[obj] - points[front[order[k-1]]].Values[obj]
			dist[order[k]] += gap / span
		}
	}
	return dist
}

// Normalize rescales every objective to [0, 1] over the point set (min→0,
// max→1 regardless of direction), as the paper does before plotting the
// Figure 3 connections and the Figure 4 radar axes. Constant objectives map
// to 0.5.
func Normalize(points []Point) []Point {
	if len(points) == 0 {
		return nil
	}
	m := len(points[0].Values)
	lo := make([]float64, m)
	hi := make([]float64, m)
	for i := range lo {
		lo[i] = math.Inf(1)
		hi[i] = math.Inf(-1)
	}
	for _, p := range points {
		for i, v := range p.Values {
			if v < lo[i] {
				lo[i] = v
			}
			if v > hi[i] {
				hi[i] = v
			}
		}
	}
	out := make([]Point, len(points))
	for pi, p := range points {
		vals := make([]float64, m)
		for i, v := range p.Values {
			span := hi[i] - lo[i]
			if span == 0 {
				vals[i] = 0.5
			} else {
				vals[i] = (v - lo[i]) / span
			}
		}
		out[pi] = Point{ID: p.ID, Values: vals}
	}
	return out
}

// Ranges returns each objective's (min, max) over the point set — the
// content of the paper's Table 3.
func Ranges(points []Point) (mins, maxs []float64) {
	if len(points) == 0 {
		return nil, nil
	}
	m := len(points[0].Values)
	mins = make([]float64, m)
	maxs = make([]float64, m)
	for i := range mins {
		mins[i] = math.Inf(1)
		maxs[i] = math.Inf(-1)
	}
	for _, p := range points {
		for i, v := range p.Values {
			if v < mins[i] {
				mins[i] = v
			}
			if v > maxs[i] {
				maxs[i] = v
			}
		}
	}
	return mins, maxs
}
