package pareto

import (
	"math"
	"testing"
	"testing/quick"

	"drainnas/internal/tensor"
)

func TestHypervolumeSingleBox(t *testing.T) {
	// One minimization point at (1,1) with ref (3,3) dominates a 2x2 box.
	points := []Point{pt(0, 1, 1)}
	dirs := []Direction{Minimize, Minimize}
	got := Hypervolume(points, dirs, []float64{3, 3})
	if math.Abs(got-4) > 1e-12 {
		t.Fatalf("hv=%v want 4", got)
	}
}

func TestHypervolumeTwoBoxesOverlap(t *testing.T) {
	// (1,2) and (2,1) vs ref (3,3): 2x1 + 1x2 + shared 1x1 counted once = 3.
	points := []Point{pt(0, 1, 2), pt(1, 2, 1)}
	dirs := []Direction{Minimize, Minimize}
	got := Hypervolume(points, dirs, []float64{3, 3})
	if math.Abs(got-3) > 1e-12 {
		t.Fatalf("hv=%v want 3", got)
	}
}

func TestHypervolume3DKnownValue(t *testing.T) {
	// Two 3-D points: (0,0,1) and (1,1,0) vs ref (2,2,2).
	// Box A: 2*2*1=4. Box B: 1*1*2=2. Intersection: 1*1*1=1. Union = 5.
	points := []Point{pt(0, 0, 0, 1), pt(1, 1, 1, 0)}
	dirs := []Direction{Minimize, Minimize, Minimize}
	got := Hypervolume(points, dirs, []float64{2, 2, 2})
	if math.Abs(got-5) > 1e-12 {
		t.Fatalf("hv=%v want 5", got)
	}
}

func TestHypervolumeMaximizeMirrors(t *testing.T) {
	// Maximizing the first axis: point (5, 1) with ref (2, 3) covers
	// (5-2)*(3-1) = 6.
	points := []Point{pt(0, 5, 1)}
	dirs := []Direction{Maximize, Minimize}
	got := Hypervolume(points, dirs, []float64{2, 3})
	if math.Abs(got-6) > 1e-12 {
		t.Fatalf("hv=%v want 6", got)
	}
}

func TestHypervolumeIgnoresPointsBeyondRef(t *testing.T) {
	points := []Point{pt(0, 1, 1), pt(1, 5, 5)} // second is outside ref
	dirs := []Direction{Minimize, Minimize}
	got := Hypervolume(points, dirs, []float64{3, 3})
	if math.Abs(got-4) > 1e-12 {
		t.Fatalf("hv=%v want 4", got)
	}
	if Hypervolume(nil, dirs, []float64{3, 3}) != 0 {
		t.Fatal("empty set must have zero hypervolume")
	}
}

func TestHypervolumeMonotoneUnderAddition(t *testing.T) {
	// Property: adding a point never decreases the hypervolume.
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		dirs := []Direction{Minimize, Minimize, Minimize}
		ref := []float64{1, 1, 1}
		var points []Point
		prev := 0.0
		for i := 0; i < 8; i++ {
			points = append(points, pt(i, rng.Float64(), rng.Float64(), rng.Float64()))
			hv := Hypervolume(points, dirs, ref)
			if hv < prev-1e-12 {
				return false
			}
			prev = hv
		}
		return prev <= 1+1e-12 // bounded by the unit cube
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHypervolumeDominatedPointAddsNothing(t *testing.T) {
	dirs := []Direction{Minimize, Minimize}
	ref := []float64{4, 4}
	base := []Point{pt(0, 1, 1)}
	with := []Point{pt(0, 1, 1), pt(1, 2, 2)}
	if Hypervolume(base, dirs, ref) != Hypervolume(with, dirs, ref) {
		t.Fatal("dominated point changed hypervolume")
	}
}

func TestReferenceFromWorst(t *testing.T) {
	points := []Point{pt(0, 90, 10, 11), pt(1, 96, 30, 44)}
	dirs := []Direction{Maximize, Minimize, Minimize}
	ref := ReferenceFromWorst(points, dirs, 0.1)
	// Accuracy (maximized): worst is 90, span 6 → ref 89.4.
	if math.Abs(ref[0]-89.4) > 1e-9 {
		t.Fatalf("ref[0]=%v", ref[0])
	}
	// Latency (minimized): worst 30, span 20 → 32.
	if math.Abs(ref[1]-32) > 1e-9 {
		t.Fatalf("ref[1]=%v", ref[1])
	}
	// Every point must dominate the reference → positive hypervolume.
	if hv := Hypervolume(points, dirs, ref); hv <= 0 {
		t.Fatalf("hv=%v", hv)
	}
}

func TestKneePointPicksCompromise(t *testing.T) {
	// Extremes and one balanced point; the knee is the balanced one.
	points := []Point{
		pt(0, 1.0, 1.0), // best accuracy, worst latency
		pt(1, 0.0, 0.0), // worst accuracy, best latency
		pt(2, 0.8, 0.2), // compromise
	}
	dirs := []Direction{Maximize, Minimize}
	knee := KneePoint(points, []int{0, 1, 2}, dirs)
	if knee != 2 {
		t.Fatalf("knee=%d want 2", knee)
	}
	if KneePoint(points, nil, dirs) != -1 {
		t.Fatal("empty front must return -1")
	}
}

func TestHypervolumeOrderInvariance(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		dirs := []Direction{Minimize, Minimize, Minimize}
		ref := []float64{1, 1, 1}
		pts := make([]Point, 6)
		for i := range pts {
			pts[i] = pt(i, rng.Float64(), rng.Float64(), rng.Float64())
		}
		a := Hypervolume(pts, dirs, ref)
		// Reverse order.
		rev := make([]Point, len(pts))
		for i := range pts {
			rev[i] = pts[len(pts)-1-i]
		}
		b := Hypervolume(rev, dirs, ref)
		return math.Abs(a-b) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
