package dataset

import "drainnas/internal/tensor"

// AugmentOptions selects the geometric/noise augmentations applied to
// training batches. Drainage-crossing chips are rotation- and
// flip-invariant (a crossing is a crossing from any compass direction), so
// the dihedral transforms are label-preserving.
type AugmentOptions struct {
	FlipH    bool
	FlipV    bool
	Rot90    bool    // random multiple of 90° (square chips only)
	NoiseStd float64 // additive Gaussian sensor noise; 0 disables
}

// DefaultAugment enables the full dihedral group plus light sensor noise.
func DefaultAugment() AugmentOptions {
	return AugmentOptions{FlipH: true, FlipV: true, Rot90: true, NoiseStd: 0.01}
}

// enabled reports whether any augmentation is active.
func (a AugmentOptions) enabled() bool {
	return a.FlipH || a.FlipV || a.Rot90 || a.NoiseStd > 0
}

// Apply augments a batch in place (the batch tensor is a private copy made
// by Dataset.Batch, so mutating it is safe). Each augmentation fires with
// probability 1/2 per batch, driven by rng.
func (a AugmentOptions) Apply(x *tensor.Tensor, rng *tensor.RNG) *tensor.Tensor {
	if !a.enabled() {
		return x
	}
	if a.FlipH && rng.Intn(2) == 1 {
		x = tensor.FlipH(x)
	}
	if a.FlipV && rng.Intn(2) == 1 {
		x = tensor.FlipV(x)
	}
	if a.Rot90 && x.Dim(2) == x.Dim(3) {
		if k := rng.Intn(4); k != 0 {
			x = tensor.Rot90(x, k)
		}
	}
	if a.NoiseStd > 0 {
		tensor.AddNoiseInPlace(x, rng, a.NoiseStd)
	}
	return x
}
