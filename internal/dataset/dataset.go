// Package dataset provides the in-memory image dataset abstraction used by
// the training loop: per-channel standardization, shuffled batching, and
// stratified k-fold splitting for the paper's 5-fold cross-validation.
package dataset

import (
	"fmt"
	"math"

	"drainnas/internal/tensor"
)

// Dataset is a labeled image collection stored as one (N, C, H, W) tensor.
type Dataset struct {
	X      *tensor.Tensor
	Labels []int
}

// New wraps images and labels, validating their agreement.
func New(x *tensor.Tensor, labels []int) *Dataset {
	if x.NDim() != 4 {
		panic(fmt.Sprintf("dataset: images must be (N,C,H,W), got %v", x.Shape()))
	}
	if x.Dim(0) != len(labels) {
		panic(fmt.Sprintf("dataset: %d images but %d labels", x.Dim(0), len(labels)))
	}
	return &Dataset{X: x, Labels: labels}
}

// Len returns the sample count.
func (d *Dataset) Len() int { return len(d.Labels) }

// Channels returns the image channel count.
func (d *Dataset) Channels() int { return d.X.Dim(1) }

// Subset returns a new dataset containing the given sample indices (copied).
func (d *Dataset) Subset(indices []int) *Dataset {
	c, h, w := d.X.Dim(1), d.X.Dim(2), d.X.Dim(3)
	stride := c * h * w
	x := tensor.New(len(indices), c, h, w)
	labels := make([]int, len(indices))
	for i, idx := range indices {
		if idx < 0 || idx >= d.Len() {
			panic(fmt.Sprintf("dataset: subset index %d out of range [0,%d)", idx, d.Len()))
		}
		copy(x.Data()[i*stride:(i+1)*stride], d.X.Data()[idx*stride:(idx+1)*stride])
		labels[i] = d.Labels[idx]
	}
	return &Dataset{X: x, Labels: labels}
}

// ChannelStats holds per-channel standardization parameters.
type ChannelStats struct {
	Mean []float64
	Std  []float64
}

// ComputeStats measures per-channel mean and standard deviation.
func (d *Dataset) ComputeStats() ChannelStats {
	n, c, h, w := d.X.Dim(0), d.X.Dim(1), d.X.Dim(2), d.X.Dim(3)
	plane := h * w
	stats := ChannelStats{Mean: make([]float64, c), Std: make([]float64, c)}
	for ch := 0; ch < c; ch++ {
		sum, sumSq := 0.0, 0.0
		for s := 0; s < n; s++ {
			src := d.X.Data()[(s*c+ch)*plane : (s*c+ch+1)*plane]
			for _, v := range src {
				f := float64(v)
				sum += f
				sumSq += f * f
			}
		}
		count := float64(n * plane)
		mean := sum / count
		variance := sumSq/count - mean*mean
		if variance < 0 {
			variance = 0
		}
		stats.Mean[ch] = mean
		stats.Std[ch] = math.Sqrt(variance)
	}
	return stats
}

// Normalize standardizes every channel in place with the given stats
// (x ← (x-μ)/σ); channels with σ≈0 are only mean-shifted. Computing stats on
// the training fold and applying them to the validation fold avoids leakage.
func (d *Dataset) Normalize(stats ChannelStats) {
	n, c, h, w := d.X.Dim(0), d.X.Dim(1), d.X.Dim(2), d.X.Dim(3)
	if len(stats.Mean) != c {
		panic(fmt.Sprintf("dataset: stats for %d channels, data has %d", len(stats.Mean), c))
	}
	plane := h * w
	for ch := 0; ch < c; ch++ {
		mean := float32(stats.Mean[ch])
		inv := float32(1)
		if stats.Std[ch] > 1e-8 {
			inv = float32(1.0 / stats.Std[ch])
		}
		for s := 0; s < n; s++ {
			src := d.X.Data()[(s*c+ch)*plane : (s*c+ch+1)*plane]
			for i := range src {
				src[i] = (src[i] - mean) * inv
			}
		}
	}
}

// Batch copies the samples at indices into a fresh (len, C, H, W) tensor
// plus its label slice.
func (d *Dataset) Batch(indices []int) (*tensor.Tensor, []int) {
	sub := d.Subset(indices)
	return sub.X, sub.Labels
}

// Batches partitions [0, Len) into batches of the given size, shuffled by
// rng when non-nil. The final short batch is kept (dropping it would bias
// small datasets).
func (d *Dataset) Batches(batchSize int, rng *tensor.RNG) [][]int {
	if batchSize <= 0 {
		panic(fmt.Sprintf("dataset: invalid batch size %d", batchSize))
	}
	n := d.Len()
	order := make([]int, n)
	if rng != nil {
		copy(order, rng.Perm(n))
	} else {
		for i := range order {
			order[i] = i
		}
	}
	var batches [][]int
	for lo := 0; lo < n; lo += batchSize {
		hi := lo + batchSize
		if hi > n {
			hi = n
		}
		batches = append(batches, order[lo:hi])
	}
	return batches
}

// ClassCounts tallies label frequencies.
func (d *Dataset) ClassCounts() map[int]int {
	out := make(map[int]int)
	for _, l := range d.Labels {
		out[l]++
	}
	return out
}
