package dataset

import (
	"fmt"

	"drainnas/internal/tensor"
)

// Fold is one cross-validation split: sample indices for training and
// validation.
type Fold struct {
	Train []int
	Val   []int
}

// StratifiedKFold partitions the dataset into k folds preserving the class
// distribution in every fold, shuffled by rng (deterministic for a given
// seed). Fold i's validation set is the i-th stratified slice; its training
// set is everything else.
func StratifiedKFold(labels []int, k int, rng *tensor.RNG) []Fold {
	if k < 2 {
		panic(fmt.Sprintf("dataset: k-fold needs k >= 2, got %d", k))
	}
	if len(labels) < k {
		panic(fmt.Sprintf("dataset: %d samples cannot fill %d folds", len(labels), k))
	}
	// Group indices by class, shuffle within class, deal them round-robin
	// into folds.
	byClass := make(map[int][]int)
	for i, l := range labels {
		byClass[l] = append(byClass[l], i)
	}
	foldVal := make([][]int, k)
	// Iterate classes in ascending order for determinism.
	classes := sortedKeys(byClass)
	for _, cls := range classes {
		idxs := byClass[cls]
		if rng != nil {
			perm := rng.Perm(len(idxs))
			shuffled := make([]int, len(idxs))
			for i, p := range perm {
				shuffled[i] = idxs[p]
			}
			idxs = shuffled
		}
		for i, idx := range idxs {
			f := i % k
			foldVal[f] = append(foldVal[f], idx)
		}
	}
	folds := make([]Fold, k)
	for f := 0; f < k; f++ {
		val := foldVal[f]
		inVal := make(map[int]bool, len(val))
		for _, i := range val {
			inVal[i] = true
		}
		var train []int
		for i := range labels {
			if !inVal[i] {
				train = append(train, i)
			}
		}
		folds[f] = Fold{Train: train, Val: val}
	}
	return folds
}

func sortedKeys(m map[int][]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Insertion sort; class counts are tiny.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// TrainTestSplit returns a single stratified split with the given test
// fraction.
func TrainTestSplit(labels []int, testFrac float64, rng *tensor.RNG) (train, test []int) {
	if testFrac <= 0 || testFrac >= 1 {
		panic(fmt.Sprintf("dataset: test fraction %v out of (0,1)", testFrac))
	}
	byClass := make(map[int][]int)
	for i, l := range labels {
		byClass[l] = append(byClass[l], i)
	}
	for _, cls := range sortedKeys(byClass) {
		idxs := byClass[cls]
		if rng != nil {
			perm := rng.Perm(len(idxs))
			shuffled := make([]int, len(idxs))
			for i, p := range perm {
				shuffled[i] = idxs[p]
			}
			idxs = shuffled
		}
		nTest := int(float64(len(idxs)) * testFrac)
		if nTest < 1 && len(idxs) > 1 {
			nTest = 1
		}
		test = append(test, idxs[:nTest]...)
		train = append(train, idxs[nTest:]...)
	}
	return train, test
}
