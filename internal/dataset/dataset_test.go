package dataset

import (
	"math"
	"testing"
	"testing/quick"

	"drainnas/internal/tensor"
)

func toyDataset(n, c int, rng *tensor.RNG) *Dataset {
	x := tensor.RandNormal(rng, 2, n, c, 4, 4)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % 2
	}
	return New(x, labels)
}

func TestNewValidation(t *testing.T) {
	rng := tensor.NewRNG(1)
	x := tensor.RandNormal(rng, 1, 3, 2, 4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on label count mismatch")
		}
	}()
	New(x, []int{0, 1})
}

func TestSubsetCopies(t *testing.T) {
	rng := tensor.NewRNG(2)
	d := toyDataset(6, 2, rng)
	sub := d.Subset([]int{1, 3, 5})
	if sub.Len() != 3 {
		t.Fatalf("subset len %d", sub.Len())
	}
	for i, idx := range []int{1, 3, 5} {
		if sub.Labels[i] != d.Labels[idx] {
			t.Fatal("subset labels wrong")
		}
	}
	// Mutating the subset must not touch the original.
	sub.X.Data()[0] = 999
	if d.X.Data()[1*2*16] == 999 {
		t.Fatal("subset aliases original data")
	}
}

func TestNormalizeStandardizes(t *testing.T) {
	rng := tensor.NewRNG(3)
	d := toyDataset(32, 3, rng)
	// Shift channel 1 to mean 5.
	n, c, plane := d.X.Dim(0), d.X.Dim(1), 16
	for s := 0; s < n; s++ {
		src := d.X.Data()[(s*c+1)*plane : (s*c+2)*plane]
		for i := range src {
			src[i] += 5
		}
	}
	stats := d.ComputeStats()
	if stats.Mean[1] < 4 {
		t.Fatalf("channel 1 mean %v", stats.Mean[1])
	}
	d.Normalize(stats)
	post := d.ComputeStats()
	for ch := 0; ch < 3; ch++ {
		if math.Abs(post.Mean[ch]) > 1e-4 {
			t.Fatalf("post-normalize mean[%d]=%v", ch, post.Mean[ch])
		}
		if math.Abs(post.Std[ch]-1) > 1e-3 {
			t.Fatalf("post-normalize std[%d]=%v", ch, post.Std[ch])
		}
	}
}

func TestNormalizeZeroStdChannel(t *testing.T) {
	x := tensor.New(2, 1, 2, 2)
	x.Fill(3)
	d := New(x, []int{0, 1})
	stats := d.ComputeStats()
	d.Normalize(stats) // must not divide by zero
	for _, v := range d.X.Data() {
		if v != 0 {
			t.Fatalf("constant channel should normalize to 0, got %v", v)
		}
	}
}

func TestBatchesCoverAllSamplesOnce(t *testing.T) {
	rng := tensor.NewRNG(4)
	d := toyDataset(23, 1, rng)
	batches := d.Batches(8, tensor.NewRNG(5))
	if len(batches) != 3 {
		t.Fatalf("batch count %d", len(batches))
	}
	seen := make(map[int]int)
	for _, b := range batches {
		for _, i := range b {
			seen[i]++
		}
	}
	if len(seen) != 23 {
		t.Fatalf("coverage %d", len(seen))
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("sample %d appears %d times", i, c)
		}
	}
	// Last batch keeps the remainder.
	if len(batches[2]) != 7 {
		t.Fatalf("tail batch size %d", len(batches[2]))
	}
}

func TestBatchesUnshuffledOrdered(t *testing.T) {
	rng := tensor.NewRNG(4)
	d := toyDataset(10, 1, rng)
	batches := d.Batches(4, nil)
	if batches[0][0] != 0 || batches[0][3] != 3 || batches[2][1] != 9 {
		t.Fatalf("unshuffled order wrong: %v", batches)
	}
}

func TestStratifiedKFoldProperties(t *testing.T) {
	// Property: every sample appears in exactly one validation fold; each
	// fold's class ratio approximates the global ratio.
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 40
		labels := make([]int, n)
		rng := tensor.NewRNG(seed)
		for i := range labels {
			if rng.Float64() < 0.3 {
				labels[i] = 1
			}
		}
		k := 5
		folds := StratifiedKFold(labels, k, rng)
		seen := make(map[int]int)
		for _, f := range folds {
			for _, i := range f.Val {
				seen[i]++
			}
			// Train and Val must partition all samples.
			if len(f.Train)+len(f.Val) != n {
				return false
			}
		}
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestStratifiedKFoldBalance(t *testing.T) {
	labels := make([]int, 100)
	for i := 50; i < 100; i++ {
		labels[i] = 1
	}
	folds := StratifiedKFold(labels, 5, tensor.NewRNG(6))
	for fi, f := range folds {
		pos := 0
		for _, i := range f.Val {
			pos += labels[i]
		}
		if pos != 10 || len(f.Val) != 20 {
			t.Fatalf("fold %d: %d positives of %d", fi, pos, len(f.Val))
		}
	}
}

func TestStratifiedKFoldDeterministic(t *testing.T) {
	labels := make([]int, 40)
	for i := range labels {
		labels[i] = i % 2
	}
	a := StratifiedKFold(labels, 4, tensor.NewRNG(7))
	b := StratifiedKFold(labels, 4, tensor.NewRNG(7))
	for f := range a {
		for i := range a[f].Val {
			if a[f].Val[i] != b[f].Val[i] {
				t.Fatal("k-fold not deterministic")
			}
		}
	}
}

func TestTrainTestSplit(t *testing.T) {
	labels := make([]int, 100)
	for i := 60; i < 100; i++ {
		labels[i] = 1
	}
	train, test := TrainTestSplit(labels, 0.2, tensor.NewRNG(8))
	if len(train)+len(test) != 100 {
		t.Fatalf("split sizes %d+%d", len(train), len(test))
	}
	pos := 0
	for _, i := range test {
		pos += labels[i]
	}
	if pos != 8 { // 20% of 40 positives
		t.Fatalf("test positives %d, want 8", pos)
	}
}

func TestClassCounts(t *testing.T) {
	rng := tensor.NewRNG(9)
	d := toyDataset(10, 1, rng)
	counts := d.ClassCounts()
	if counts[0] != 5 || counts[1] != 5 {
		t.Fatalf("counts %v", counts)
	}
}

func TestKFoldPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	StratifiedKFold([]int{0, 1}, 1, nil)
}
