package dataset

import (
	"testing"

	"drainnas/internal/tensor"
)

func TestAugmentDisabledIsIdentity(t *testing.T) {
	rng := tensor.NewRNG(1)
	x := tensor.RandNormal(rng, 1, 2, 3, 4, 4)
	orig := x.Clone()
	out := AugmentOptions{}.Apply(x, tensor.NewRNG(2))
	if out != x {
		t.Fatal("disabled augmentation must return the input unchanged")
	}
	for i := range orig.Data() {
		if x.Data()[i] != orig.Data()[i] {
			t.Fatal("disabled augmentation mutated data")
		}
	}
}

func TestAugmentPreservesShapeAndEnergy(t *testing.T) {
	rng := tensor.NewRNG(3)
	x := tensor.RandNormal(rng, 1, 4, 3, 8, 8)
	sumBefore := x.Sum()
	opts := AugmentOptions{FlipH: true, FlipV: true, Rot90: true} // no noise
	out := opts.Apply(x, tensor.NewRNG(7))
	if !out.SameShape(x) {
		t.Fatalf("shape changed: %v", out.Shape())
	}
	// Pure geometric transforms permute values: the sum is conserved.
	if diff := out.Sum() - sumBefore; diff > 1e-3 || diff < -1e-3 {
		t.Fatalf("augmentation changed mass by %v", diff)
	}
}

func TestAugmentNoiseChangesValues(t *testing.T) {
	rng := tensor.NewRNG(4)
	x := tensor.RandNormal(rng, 1, 2, 1, 4, 4)
	orig := x.Clone()
	AugmentOptions{NoiseStd: 0.1}.Apply(x, tensor.NewRNG(5))
	same := 0
	for i := range x.Data() {
		if x.Data()[i] == orig.Data()[i] {
			same++
		}
	}
	if same == x.Numel() {
		t.Fatal("noise augmentation had no effect")
	}
}

func TestAugmentDeterministicPerSeed(t *testing.T) {
	mk := func() *tensor.Tensor {
		return tensor.RandNormal(tensor.NewRNG(6), 1, 2, 2, 6, 6)
	}
	opts := DefaultAugment()
	a := opts.Apply(mk(), tensor.NewRNG(9))
	b := opts.Apply(mk(), tensor.NewRNG(9))
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatal("augmentation not deterministic for a fixed seed")
		}
	}
}

func TestAugmentRectangularSkipsRotation(t *testing.T) {
	rng := tensor.NewRNG(8)
	x := tensor.RandNormal(rng, 1, 1, 1, 4, 6) // non-square
	// Must not panic even with Rot90 enabled.
	out := AugmentOptions{Rot90: true}.Apply(x, tensor.NewRNG(3))
	if !out.SameShape(x) {
		t.Fatal("shape changed on rectangular input")
	}
}

func TestDefaultAugmentEnabled(t *testing.T) {
	if !DefaultAugment().enabled() {
		t.Fatal("default augmentation must be active")
	}
	if (AugmentOptions{}).enabled() {
		t.Fatal("zero options must be inactive")
	}
}
