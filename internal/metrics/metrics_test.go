// External test package: these tests drive random data through
// tensor.NewRNG, and tensor itself reports into metrics (kernel counters),
// so an in-package test would be an import cycle.
package metrics_test

import (
	"math"
	"testing"
	"testing/quick"

	. "drainnas/internal/metrics"
	"drainnas/internal/tensor"
)

func TestConfusionBasics(t *testing.T) {
	preds := []int{1, 1, 0, 0, 1, 0}
	labels := []int{1, 0, 0, 1, 1, 0}
	c := ConfusionFromPredictions(preds, labels)
	if c.TP != 2 || c.FP != 1 || c.TN != 2 || c.FN != 1 {
		t.Fatalf("confusion %s", c)
	}
	if math.Abs(c.Accuracy()-4.0/6) > 1e-12 {
		t.Fatalf("accuracy %v", c.Accuracy())
	}
	if math.Abs(c.Precision()-2.0/3) > 1e-12 {
		t.Fatalf("precision %v", c.Precision())
	}
	if math.Abs(c.Recall()-2.0/3) > 1e-12 {
		t.Fatalf("recall %v", c.Recall())
	}
	if math.Abs(c.F1()-2.0/3) > 1e-12 {
		t.Fatalf("f1 %v", c.F1())
	}
}

func TestConfusionDegenerate(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 0 || c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 || c.MCC() != 0 {
		t.Fatal("empty confusion must yield zeros")
	}
	allNeg := ConfusionFromPredictions([]int{0, 0}, []int{0, 0})
	if allNeg.Accuracy() != 1 || allNeg.Precision() != 0 {
		t.Fatalf("all-negative: %v / %v", allNeg.Accuracy(), allNeg.Precision())
	}
}

func TestMCCPerfectAndInverse(t *testing.T) {
	perfect := ConfusionFromPredictions([]int{1, 0, 1, 0}, []int{1, 0, 1, 0})
	if math.Abs(perfect.MCC()-1) > 1e-12 {
		t.Fatalf("perfect MCC %v", perfect.MCC())
	}
	inverse := ConfusionFromPredictions([]int{0, 1, 0, 1}, []int{1, 0, 1, 0})
	if math.Abs(inverse.MCC()+1) > 1e-12 {
		t.Fatalf("inverse MCC %v", inverse.MCC())
	}
}

func TestROCAUCKnownValues(t *testing.T) {
	// Perfect separation → AUC 1.
	if auc := ROCAUC([]float64{0.9, 0.8, 0.2, 0.1}, []int{1, 1, 0, 0}); math.Abs(auc-1) > 1e-12 {
		t.Fatalf("perfect AUC %v", auc)
	}
	// Perfectly inverted → AUC 0.
	if auc := ROCAUC([]float64{0.1, 0.2, 0.8, 0.9}, []int{1, 1, 0, 0}); math.Abs(auc) > 1e-12 {
		t.Fatalf("inverted AUC %v", auc)
	}
	// All scores equal → AUC 0.5 (midranks).
	if auc := ROCAUC([]float64{0.5, 0.5, 0.5, 0.5}, []int{1, 1, 0, 0}); math.Abs(auc-0.5) > 1e-12 {
		t.Fatalf("tied AUC %v", auc)
	}
	// One class absent → 0.5 by convention.
	if auc := ROCAUC([]float64{0.1, 0.9}, []int{1, 1}); auc != 0.5 {
		t.Fatalf("single-class AUC %v", auc)
	}
}

func TestROCAUCMatchesCurveIntegral(t *testing.T) {
	// Property: rank-statistic AUC equals the trapezoidal integral of the
	// ROC curve (for tie-free scores).
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 40
		scores := make([]float64, n)
		labels := make([]int, n)
		for i := range scores {
			labels[i] = rng.Intn(2)
			// Scores correlated with the label plus noise; ties impossible
			// w.p. 1.
			scores[i] = float64(labels[i]) + rng.NormFloat64()
		}
		auc := ROCAUC(scores, labels)
		curve := ROCCurve(scores, labels)
		integral := 0.0
		for i := 1; i < len(curve); i++ {
			dx := curve[i].FPR - curve[i-1].FPR
			integral += dx * (curve[i].TPR + curve[i-1].TPR) / 2
		}
		return math.Abs(auc-integral) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestROCCurveEndpoints(t *testing.T) {
	curve := ROCCurve([]float64{0.9, 0.4, 0.35, 0.1}, []int{1, 1, 0, 0})
	first, last := curve[0], curve[len(curve)-1]
	if first.FPR != 0 || first.TPR != 0 {
		t.Fatalf("curve start %+v", first)
	}
	if last.FPR != 1 || last.TPR != 1 {
		t.Fatalf("curve end %+v", last)
	}
	// Monotone non-decreasing in both axes.
	for i := 1; i < len(curve); i++ {
		if curve[i].FPR < curve[i-1].FPR || curve[i].TPR < curve[i-1].TPR {
			t.Fatalf("curve not monotone at %d: %+v", i, curve)
		}
	}
}

func TestEvaluateReport(t *testing.T) {
	scores := []float64{0.95, 0.85, 0.6, 0.4, 0.2, 0.05}
	labels := []int{1, 1, 1, 0, 0, 0}
	r := Evaluate(scores, labels, 0.5)
	if r.Accuracy != 1 || r.F1 != 1 || r.AUC != 1 {
		t.Fatalf("report %s", r)
	}
	// Threshold shifting trades precision and recall.
	strict := Evaluate(scores, labels, 0.9)
	if strict.Recall >= r.Recall {
		t.Fatal("stricter threshold must reduce recall")
	}
	if strict.Precision < r.Precision {
		t.Fatal("stricter threshold must not reduce precision here")
	}
}

func TestAUCInvariantToMonotoneTransform(t *testing.T) {
	// Property: AUC depends only on score ranks.
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 30
		scores := make([]float64, n)
		scaled := make([]float64, n)
		labels := make([]int, n)
		for i := range scores {
			labels[i] = rng.Intn(2)
			scores[i] = rng.NormFloat64()
			scaled[i] = math.Exp(scores[i]) // strictly monotone transform
		}
		return math.Abs(ROCAUC(scores, labels)-ROCAUC(scaled, labels)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ROCAUC([]float64{1}, []int{1, 0})
}
