package metrics

import "sync/atomic"

// KernelStats counts what the tensor kernels actually did: which GEMM path
// ran, how many output tiles the tiled kernel dispatched, how often a
// prepacked weight panel was reused instead of rebuilt, and how the scratch
// pool behaved. The counters are lock-free (one atomic add per kernel call
// or pool round-trip, never per element) so the hot loops can afford them,
// and they give /v1/stats a direct view of whether serving traffic is
// hitting the fast path.
type KernelStats struct {
	gemmCalls       atomic.Uint64
	naiveCalls      atomic.Uint64
	tilesDispatched atomic.Uint64
	packsReused     atomic.Uint64
	scratchHits     atomic.Uint64
	scratchMisses   atomic.Uint64
}

// Kernel is the process-wide sink the tensor package reports into.
var Kernel KernelStats

// GemmCall records one matrix multiply routed to the tiled kernel.
func (k *KernelStats) GemmCall() { k.gemmCalls.Add(1) }

// NaiveCall records one matrix multiply that stayed on the naive kernel
// (below the serial cutoff).
func (k *KernelStats) NaiveCall() { k.naiveCalls.Add(1) }

// TilesDispatched records n micro-tiles handed to the micro-kernel.
func (k *KernelStats) TilesDispatched(n int) { k.tilesDispatched.Add(uint64(n)) }

// PackReused records a packed weight panel being reused (a consumer after
// the first of the same prepacked matrix, e.g. batch samples 2..N of a
// convolution).
func (k *KernelStats) PackReused() { k.packsReused.Add(1) }

// ScratchHit records a scratch-pool request served from a pooled buffer.
func (k *KernelStats) ScratchHit() { k.scratchHits.Add(1) }

// ScratchMiss records a scratch-pool request that had to allocate.
func (k *KernelStats) ScratchMiss() { k.scratchMisses.Add(1) }

// KernelSnapshot is a point-in-time copy of the kernel counters.
type KernelSnapshot struct {
	GemmCalls       uint64 `json:"gemm_calls"`
	NaiveCalls      uint64 `json:"naive_calls"`
	TilesDispatched uint64 `json:"tiles_dispatched"`
	PacksReused     uint64 `json:"packs_reused"`
	ScratchHits     uint64 `json:"scratch_hits"`
	ScratchMisses   uint64 `json:"scratch_misses"`
}

// Snapshot returns a copy of the counters. Values are read individually
// (not under a common lock); each is exact, the set is approximately
// simultaneous, which is what a stats endpoint needs.
func (k *KernelStats) Snapshot() KernelSnapshot {
	return KernelSnapshot{
		GemmCalls:       k.gemmCalls.Load(),
		NaiveCalls:      k.naiveCalls.Load(),
		TilesDispatched: k.tilesDispatched.Load(),
		PacksReused:     k.packsReused.Load(),
		ScratchHits:     k.scratchHits.Load(),
		ScratchMisses:   k.scratchMisses.Load(),
	}
}

// Reset zeroes all counters (test support).
func (k *KernelStats) Reset() {
	k.gemmCalls.Store(0)
	k.naiveCalls.Store(0)
	k.tilesDispatched.Store(0)
	k.packsReused.Store(0)
	k.scratchHits.Store(0)
	k.scratchMisses.Store(0)
}
