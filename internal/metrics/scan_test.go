package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestScanStatsLifecycle(t *testing.T) {
	s := &ScanStats{}
	s.JobStarted()
	s.JobStarted()
	s.JobStarted()
	s.JobFinished("done")
	s.JobFinished("canceled")
	s.JobFinished("failed")
	s.Tile(2*time.Millisecond, 0, true)
	s.Tile(4*time.Millisecond, 2, false)
	s.TileFailed(3)

	snap := s.Snapshot()
	if snap.JobsStarted != 3 || snap.JobsCompleted != 1 || snap.JobsCanceled != 1 || snap.JobsFailed != 1 {
		t.Fatalf("job counters %+v", snap)
	}
	if snap.Tiles != 2 || snap.Crossings != 1 || snap.TileFailures != 1 {
		t.Fatalf("tile counters %+v", snap)
	}
	if snap.TileRetries != 5 {
		t.Fatalf("retries %d, want 5 (2 classified + 3 failed)", snap.TileRetries)
	}
	if snap.TileLatency.Count != 2 || snap.TileLatency.Max != 4*time.Millisecond {
		t.Fatalf("latency histogram %+v", snap.TileLatency)
	}
	if str := snap.String(); !strings.Contains(str, "tiles=2") {
		t.Fatalf("snapshot string %q", str)
	}
}

func TestScanStatsNilSafe(t *testing.T) {
	var s *ScanStats
	s.JobStarted()
	s.JobFinished("done")
	s.Tile(time.Millisecond, 1, true)
	s.TileFailed(1)
	if snap := s.Snapshot(); snap.Tiles != 0 || snap.JobsStarted != 0 {
		t.Fatalf("nil stats snapshot not empty: %+v", snap)
	}
}

func TestScanStatsConcurrent(t *testing.T) {
	s := &ScanStats{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.JobStarted()
				s.Tile(time.Millisecond, 1, i%2 == 0)
				s.TileFailed(1)
				s.JobFinished("done")
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.Tiles != 800 || snap.JobsStarted != 800 || snap.JobsCompleted != 800 {
		t.Fatalf("lost updates: %+v", snap)
	}
	if snap.TileRetries != 1600 || snap.TileFailures != 800 || snap.Crossings != 400 {
		t.Fatalf("tile counters: %+v", snap)
	}
}

func TestScanSnapshotWriteProm(t *testing.T) {
	s := &ScanStats{}
	s.JobStarted()
	s.Tile(3*time.Millisecond, 1, true)
	s.JobFinished("done")

	var buf bytes.Buffer
	e := NewExpositionWriter(&buf)
	s.Snapshot().WriteProm(e)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"drainnas_scan_jobs_started_total 1",
		"drainnas_scan_jobs_completed_total 1",
		"drainnas_scan_tiles_total 1",
		"drainnas_scan_crossings_total 1",
		"drainnas_scan_tile_latency_ms",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
