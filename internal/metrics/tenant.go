package metrics

import (
	"fmt"
	"sync"
	"time"
)

// maxTrackedTenants bounds the per-tenant breakdown. Tenant names come from
// the operator's key file rather than from clients, so the cap is a guard
// against a pathological key file (or a future dynamic registration path)
// rather than against attackers; beyond it, traffic aggregates under
// OverflowTenantKey exactly like the per-model serving stats.
const maxTrackedTenants = 64

// OverflowTenantKey is the per-tenant bucket absorbing traffic once
// maxTrackedTenants distinct tenants have been seen.
const OverflowTenantKey = "_other"

// TenantStats aggregates the multi-tenant edge tier's counters: admission
// outcomes per tenant (admitted past auth+quota, quota-rejected, completed,
// failed), fair-queue wait and end-to-end latency histograms per tenant,
// and the global count of unauthorized requests (which by definition have
// no tenant). All methods are safe for concurrent use and are no-ops on a
// nil receiver, so the serving front ends need no nil checks when the
// tenant tier is disabled.
type TenantStats struct {
	mu sync.Mutex

	unauthorized uint64

	perTenant map[string]*tenantCounters
}

type tenantCounters struct {
	admitted      uint64
	quotaExceeded uint64
	completed     uint64
	failed        uint64
	queueWait     Histogram
	latency       Histogram
}

// tenantLocked returns the sink for name, creating it under the tracking
// cap; the caller holds s.mu.
func (s *TenantStats) tenantLocked(name string) *tenantCounters {
	if s.perTenant == nil {
		s.perTenant = make(map[string]*tenantCounters)
	}
	c := s.perTenant[name]
	if c == nil {
		if len(s.perTenant) >= maxTrackedTenants {
			name = OverflowTenantKey
			if c = s.perTenant[name]; c != nil {
				return c
			}
		}
		c = &tenantCounters{}
		s.perTenant[name] = c
	}
	return c
}

// Unauthorized records a request that presented no key or an unknown one.
func (s *TenantStats) Unauthorized() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.unauthorized++
	s.mu.Unlock()
}

// Admitted records a request that passed authentication and its tenant's
// quota, entering fair-queue admission.
func (s *TenantStats) Admitted(tenant string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.tenantLocked(tenant).admitted++
	s.mu.Unlock()
}

// QuotaExceeded records an authenticated request bounced by its tenant's
// token bucket.
func (s *TenantStats) QuotaExceeded(tenant string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.tenantLocked(tenant).quotaExceeded++
	s.mu.Unlock()
}

// Completed records one admitted request that ended in a 2xx: its wait at
// the weighted-fair gate and its total middleware-to-response latency.
func (s *TenantStats) Completed(tenant string, queueWait, total time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	c := s.tenantLocked(tenant)
	c.completed++
	c.queueWait.Observe(queueWait)
	c.latency.Observe(total)
	s.mu.Unlock()
}

// Failed records one admitted request that ended in a non-2xx status.
func (s *TenantStats) Failed(tenant string, queueWait, total time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	c := s.tenantLocked(tenant)
	c.failed++
	c.queueWait.Observe(queueWait)
	c.latency.Observe(total)
	s.mu.Unlock()
}

// TenantBreakdown is the per-tenant slice of a tenant snapshot.
type TenantBreakdown struct {
	Admitted      uint64            `json:"admitted"`
	QuotaExceeded uint64            `json:"quota_exceeded"`
	Completed     uint64            `json:"completed"`
	Failed        uint64            `json:"failed"`
	QueueWait     HistogramSnapshot `json:"queue_wait"`
	Latency       HistogramSnapshot `json:"latency"`
}

// TenantSnapshot is a point-in-time copy of the edge-tier counters.
type TenantSnapshot struct {
	Unauthorized uint64                     `json:"unauthorized"`
	PerTenant    map[string]TenantBreakdown `json:"per_tenant,omitempty"`
}

// Snapshot returns a consistent copy of the counters.
func (s *TenantStats) Snapshot() TenantSnapshot {
	if s == nil {
		return TenantSnapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := TenantSnapshot{Unauthorized: s.unauthorized}
	if len(s.perTenant) > 0 {
		snap.PerTenant = make(map[string]TenantBreakdown, len(s.perTenant))
		for name, c := range s.perTenant {
			snap.PerTenant[name] = TenantBreakdown{
				Admitted:      c.admitted,
				QuotaExceeded: c.quotaExceeded,
				Completed:     c.completed,
				Failed:        c.failed,
				QueueWait:     c.queueWait.Snapshot(),
				Latency:       c.latency.Snapshot(),
			}
		}
	}
	return snap
}

// String renders the snapshot on one line.
func (s TenantSnapshot) String() string {
	var admitted, completed, quota uint64
	for _, t := range s.PerTenant {
		admitted += t.Admitted
		completed += t.Completed
		quota += t.QuotaExceeded
	}
	return fmt.Sprintf("tenants=%d unauth=%d admitted=%d quota_rej=%d done=%d",
		len(s.PerTenant), s.Unauthorized, admitted, quota, completed)
}
