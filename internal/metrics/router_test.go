package metrics

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRouterStatsLifecycle(t *testing.T) {
	s := &RouterStats{}
	s.Submitted("standard")
	s.Submitted("standard")
	s.Submitted("interactive")
	s.Submitted("batch")
	s.Throttled()
	s.NoReplicas()

	s.Decision("round-robin", "r0", time.Microsecond)
	s.Decision("round-robin", "r1", time.Microsecond)
	s.QueueWait("standard", 2*time.Millisecond)
	s.HedgeLaunched("r1")
	s.HedgeWon("r1")
	s.LosersCanceled(1)
	s.Retried("r0")
	s.AttemptDone("r0", false)
	s.AttemptDone("r0", true)
	s.AttemptDone("r1", true)
	s.Completed("standard", 10*time.Millisecond)
	s.Completed("interactive", 4*time.Millisecond)
	s.Failed("batch")

	snap := s.Snapshot()
	if snap.Submitted != 4 || snap.Throttled != 1 || snap.NoReplicas != 1 {
		t.Fatalf("admission counters: %s", snap)
	}
	if snap.Completed != 2 || snap.Failed != 1 {
		t.Fatalf("lifecycle counters: %s", snap)
	}
	if snap.HedgesLaunched != 1 || snap.HedgeWins != 1 || snap.LosersCanceled != 1 || snap.Retries != 1 {
		t.Fatalf("hedge counters: %s", snap)
	}
	if snap.PerPolicy["round-robin"] != 2 {
		t.Fatalf("per-policy: %v", snap.PerPolicy)
	}
	if snap.Decide.Count != 2 || snap.Latency.Count != 2 {
		t.Fatalf("histogram counts: decide=%d latency=%d", snap.Decide.Count, snap.Latency.Count)
	}

	std := snap.PerClass["standard"]
	if std.Submitted != 2 || std.Completed != 1 || std.QueueWait.Count != 1 || std.Latency.Count != 1 {
		t.Fatalf("standard class: %+v", std)
	}
	if b := snap.PerClass["batch"]; b.Failed != 1 || b.Completed != 0 {
		t.Fatalf("batch class: %+v", b)
	}

	// r0: 1 policy pick + 1 retry pick, 1 completed, 1 failed.
	r0 := snap.PerReplica["r0"]
	if r0.Picked != 2 || r0.Completed != 1 || r0.Failed != 1 || r0.Retries != 1 {
		t.Fatalf("r0: %+v", r0)
	}
	// r1: 1 policy pick + 1 hedge pick, 1 completed.
	r1 := snap.PerReplica["r1"]
	if r1.Picked != 2 || r1.Completed != 1 || r1.Hedges != 1 {
		t.Fatalf("r1: %+v", r1)
	}
}

// TestRouterStatsReplicaCapOverflow pins the anti-leak cap on the
// per-replica map, mirroring the per-model cap in serving stats.
func TestRouterStatsReplicaCapOverflow(t *testing.T) {
	s := &RouterStats{}
	for i := 0; i < maxTrackedReplicas+30; i++ {
		s.Decision("round-robin", fmt.Sprintf("ephemeral-%d", i), time.Microsecond)
	}
	snap := s.Snapshot()
	if len(snap.PerReplica) != maxTrackedReplicas+1 {
		t.Fatalf("per-replica map has %d entries, want cap %d + overflow", len(snap.PerReplica), maxTrackedReplicas)
	}
	over, ok := snap.PerReplica[OverflowModelKey]
	if !ok || over.Picked != 30 {
		t.Fatalf("overflow bucket %+v (present=%v), want 30 picks", over, ok)
	}
}

func TestRouterStatsNilReceiverIsSafe(t *testing.T) {
	var s *RouterStats
	s.Submitted("standard")
	s.Throttled()
	s.NoReplicas()
	s.QueueWait("standard", time.Millisecond)
	s.Decision("rr", "r0", time.Microsecond)
	s.HedgeLaunched("r0")
	s.HedgeWon("r0")
	s.LosersCanceled(1)
	s.Retried("r0")
	s.AttemptDone("r0", true)
	s.Completed("standard", time.Millisecond)
	s.Failed("standard")
	if snap := s.Snapshot(); snap.Submitted != 0 {
		t.Fatalf("nil snapshot %s", snap)
	}
}

func TestRouterStatsConcurrent(t *testing.T) {
	s := &RouterStats{}
	const goroutines = 8
	const per = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			class := []string{"batch", "standard", "interactive"}[g%3]
			replica := fmt.Sprintf("r%d", g%3)
			for i := 0; i < per; i++ {
				s.Submitted(class)
				s.Decision("round-robin", replica, time.Microsecond)
				if i%2 == 0 {
					s.AttemptDone(replica, true)
					s.Completed(class, time.Millisecond)
				} else {
					s.AttemptDone(replica, false)
					s.Failed(class)
				}
				_ = s.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.Submitted != goroutines*per {
		t.Fatalf("submitted %d, want %d", snap.Submitted, goroutines*per)
	}
	if snap.Completed+snap.Failed != snap.Submitted {
		t.Fatalf("accounting broken: %s", snap)
	}
	var perClass uint64
	for _, c := range snap.PerClass {
		perClass += c.Submitted
	}
	if perClass != snap.Submitted {
		t.Fatalf("per-class submitted sum %d != global %d", perClass, snap.Submitted)
	}
	var attempts uint64
	for _, r := range snap.PerReplica {
		attempts += r.Completed + r.Failed
	}
	if attempts != snap.Submitted {
		t.Fatalf("per-replica attempt sum %d != global %d", attempts, snap.Submitted)
	}
}

// TestRouterSnapshotWriteProm pins that the router exposition is
// well-formed: family contiguity, sorted labels, and every per-class and
// per-replica family present.
func TestRouterSnapshotWriteProm(t *testing.T) {
	s := &RouterStats{}
	s.Submitted("standard")
	s.Submitted("interactive")
	s.Decision("least-loaded", "r1", time.Microsecond)
	s.Decision("round-robin", "r0", time.Microsecond)
	s.QueueWait("standard", time.Millisecond)
	s.HedgeLaunched("r0")
	s.HedgeWon("r0")
	s.LosersCanceled(1)
	s.Retried("r1")
	s.Completed("standard", 5*time.Millisecond)
	s.Failed("interactive")

	var sb strings.Builder
	e := NewExpositionWriter(&sb)
	s.Snapshot().WriteProm(e)
	if err := e.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	out := sb.String()
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, out)
	}
	for _, want := range []string{
		`drainnas_router_requests_total{outcome="submitted"} 2`,
		`drainnas_router_requests_total{outcome="completed"} 1`,
		`drainnas_router_hedges_total 1`,
		`drainnas_router_hedge_wins_total 1`,
		`drainnas_router_losers_canceled_total 1`,
		`drainnas_router_retries_total 1`,
		`drainnas_router_decisions_total{policy="least-loaded"} 1`,
		`drainnas_router_decisions_total{policy="round-robin"} 1`,
		`drainnas_router_class_requests_total{class="standard",outcome="completed"} 1`,
		`drainnas_router_class_requests_total{class="interactive",outcome="failed"} 1`,
		`replica="r0"`,
		`replica="r1"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRouterSnapshotString(t *testing.T) {
	s := &RouterStats{}
	s.Submitted("standard")
	s.Completed("standard", time.Millisecond)
	if str := s.Snapshot().String(); !strings.Contains(str, "done=1") {
		t.Fatalf("snapshot string %q", str)
	}
}
