package metrics

import (
	"fmt"
	"sync"
	"time"
)

// ServingStats aggregates request-level counters for the inference serving
// layer: admission outcomes, queue depth, batch shape and latency. All
// methods are safe for concurrent use, and every method is a no-op on a nil
// receiver so instrumentation points need no nil checks.
//
// The lifecycle feeding these counters is: Enqueued on admission, then
// exactly one of Canceled (the waiter gave up before execution), Failed
// (model load or execution error) or Completed; Rejected counts requests
// the bounded queue refused outright.
type ServingStats struct {
	mu sync.Mutex

	accepted  uint64
	rejected  uint64
	canceled  uint64
	failed    uint64
	completed uint64

	batches      uint64
	batchSizeSum uint64
	maxBatch     int

	queueDepth    int
	maxQueueDepth int

	queueWaitSum time.Duration
	latencySum   time.Duration
	latencyMax   time.Duration
	execSum      time.Duration
}

// Enqueued records an admitted request entering the queue.
func (s *ServingStats) Enqueued() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.accepted++
	s.queueDepth++
	if s.queueDepth > s.maxQueueDepth {
		s.maxQueueDepth = s.queueDepth
	}
	s.mu.Unlock()
}

// Rejected records a request refused by the bounded queue.
func (s *ServingStats) Rejected() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.rejected++
	s.mu.Unlock()
}

// Canceled records an enqueued request whose caller gave up (context
// cancellation) before a batch claimed it.
func (s *ServingStats) Canceled() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.canceled++
	s.queueDepth--
	s.mu.Unlock()
}

// Failed records an enqueued request that ended in an execution or model
// load error.
func (s *ServingStats) Failed() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.failed++
	s.queueDepth--
	s.mu.Unlock()
}

// Completed records one successfully served request: how long it sat in the
// queue before its batch started, and its total latency from admission to
// response.
func (s *ServingStats) Completed(queueWait, total time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.completed++
	s.queueDepth--
	s.queueWaitSum += queueWait
	s.latencySum += total
	if total > s.latencyMax {
		s.latencyMax = total
	}
	s.mu.Unlock()
}

// BatchDone records one executed batch: its size (requests actually run)
// and the forward-pass duration.
func (s *ServingStats) BatchDone(size int, exec time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.batches++
	s.batchSizeSum += uint64(size)
	if size > s.maxBatch {
		s.maxBatch = size
	}
	s.execSum += exec
	s.mu.Unlock()
}

// ServingSnapshot is a point-in-time copy of the counters, with the derived
// means a dashboard wants.
type ServingSnapshot struct {
	Accepted  uint64 `json:"accepted"`
	Rejected  uint64 `json:"rejected"`
	Canceled  uint64 `json:"canceled"`
	Failed    uint64 `json:"failed"`
	Completed uint64 `json:"completed"`

	Batches   uint64  `json:"batches"`
	MeanBatch float64 `json:"mean_batch"`
	MaxBatch  int     `json:"max_batch"`

	QueueDepth    int `json:"queue_depth"`
	MaxQueueDepth int `json:"max_queue_depth"`

	MeanQueueWaitMS float64 `json:"mean_queue_wait_ms"`
	MeanLatencyMS   float64 `json:"mean_latency_ms"`
	MaxLatencyMS    float64 `json:"max_latency_ms"`
	MeanExecMS      float64 `json:"mean_exec_ms"`
}

// Snapshot returns a consistent copy of the counters.
func (s *ServingStats) Snapshot() ServingSnapshot {
	if s == nil {
		return ServingSnapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := ServingSnapshot{
		Accepted:      s.accepted,
		Rejected:      s.rejected,
		Canceled:      s.canceled,
		Failed:        s.failed,
		Completed:     s.completed,
		Batches:       s.batches,
		MaxBatch:      s.maxBatch,
		QueueDepth:    s.queueDepth,
		MaxQueueDepth: s.maxQueueDepth,
		MaxLatencyMS:  ms(s.latencyMax),
	}
	if s.batches > 0 {
		snap.MeanBatch = float64(s.batchSizeSum) / float64(s.batches)
		snap.MeanExecMS = ms(s.execSum) / float64(s.batches)
	}
	if s.completed > 0 {
		snap.MeanQueueWaitMS = ms(s.queueWaitSum) / float64(s.completed)
		snap.MeanLatencyMS = ms(s.latencySum) / float64(s.completed)
	}
	return snap
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// String renders the snapshot on one line.
func (s ServingSnapshot) String() string {
	return fmt.Sprintf(
		"acc=%d rej=%d can=%d fail=%d done=%d batches=%d meanBatch=%.2f depth=%d/%d lat=%.2f/%.2fms",
		s.Accepted, s.Rejected, s.Canceled, s.Failed, s.Completed,
		s.Batches, s.MeanBatch, s.QueueDepth, s.MaxQueueDepth,
		s.MeanLatencyMS, s.MaxLatencyMS)
}
