package metrics

import (
	"fmt"
	"sync"
	"time"
)

// maxTrackedModels bounds the per-model breakdown: a client can submit
// arbitrary model names (each failing with not-found), and an unbounded map
// keyed by attacker-chosen strings is exactly the leak the serving layer
// just fixed. Models beyond the cap aggregate under OverflowModelKey.
const maxTrackedModels = 32

// OverflowModelKey is the per-model bucket absorbing traffic once
// maxTrackedModels distinct model names have been seen.
const OverflowModelKey = "_other"

// ServingStats aggregates request-level counters for the inference serving
// layer: admission outcomes, queue depth, batch shape and latency — the
// latter as streaming histograms (queue-wait, exec, end-to-end) so tail
// percentiles are visible, globally and per model. All methods are safe for
// concurrent use, and every method is a no-op on a nil receiver so
// instrumentation points need no nil checks.
//
// The lifecycle feeding these counters is: Enqueued on admission, then
// exactly one of Canceled (the waiter gave up before execution), Failed
// (model load or execution error) or Completed; Rejected counts requests
// the bounded queue refused outright.
type ServingStats struct {
	mu sync.Mutex

	accepted  uint64
	rejected  uint64
	canceled  uint64
	failed    uint64
	completed uint64

	batches      uint64
	batchSizeSum uint64
	maxBatch     int

	queueDepth    int
	maxQueueDepth int

	queueWaitSum time.Duration
	latencySum   time.Duration
	latencyMax   time.Duration
	execSum      time.Duration

	queueWait Histogram
	latency   Histogram
	exec      Histogram

	perModel map[string]*modelStats
}

type modelStats struct {
	accepted  uint64
	canceled  uint64
	failed    uint64
	completed uint64
	latency   Histogram
}

// modelLocked returns the per-model sink for name, creating it under the
// tracking cap; the caller holds s.mu.
func (s *ServingStats) modelLocked(name string) *modelStats {
	if s.perModel == nil {
		s.perModel = make(map[string]*modelStats)
	}
	m := s.perModel[name]
	if m == nil {
		if len(s.perModel) >= maxTrackedModels {
			name = OverflowModelKey
			if m = s.perModel[name]; m != nil {
				return m
			}
		}
		m = &modelStats{}
		s.perModel[name] = m
	}
	return m
}

// Enqueued records an admitted request for model entering the queue.
func (s *ServingStats) Enqueued(model string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.accepted++
	s.queueDepth++
	if s.queueDepth > s.maxQueueDepth {
		s.maxQueueDepth = s.queueDepth
	}
	s.modelLocked(model).accepted++
	s.mu.Unlock()
}

// Rejected records a request refused by the bounded queue.
func (s *ServingStats) Rejected(model string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.rejected++
	s.mu.Unlock()
}

// Canceled records an enqueued request whose caller gave up (context
// cancellation) before a batch claimed it.
func (s *ServingStats) Canceled(model string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.canceled++
	s.queueDepth--
	s.modelLocked(model).canceled++
	s.mu.Unlock()
}

// Failed records an enqueued request that ended in an execution or model
// load error.
func (s *ServingStats) Failed(model string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.failed++
	s.queueDepth--
	s.modelLocked(model).failed++
	s.mu.Unlock()
}

// Completed records one successfully served request: how long it sat in the
// queue before its batch started, and its total latency from admission to
// response.
func (s *ServingStats) Completed(model string, queueWait, total time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.completed++
	s.queueDepth--
	s.queueWaitSum += queueWait
	s.latencySum += total
	if total > s.latencyMax {
		s.latencyMax = total
	}
	s.queueWait.Observe(queueWait)
	s.latency.Observe(total)
	m := s.modelLocked(model)
	m.completed++
	m.latency.Observe(total)
	s.mu.Unlock()
}

// BatchDone records one executed batch: its size (requests actually run)
// and the forward-pass duration.
func (s *ServingStats) BatchDone(model string, size int, exec time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.batches++
	s.batchSizeSum += uint64(size)
	if size > s.maxBatch {
		s.maxBatch = size
	}
	s.execSum += exec
	s.exec.Observe(exec)
	s.mu.Unlock()
}

// ModelServingSnapshot is the per-model slice of a serving snapshot.
type ModelServingSnapshot struct {
	Accepted  uint64            `json:"accepted"`
	Canceled  uint64            `json:"canceled"`
	Failed    uint64            `json:"failed"`
	Completed uint64            `json:"completed"`
	Latency   HistogramSnapshot `json:"latency"`
}

// ServingSnapshot is a point-in-time copy of the counters, with the derived
// means and latency-distribution summaries a dashboard wants.
type ServingSnapshot struct {
	Accepted  uint64 `json:"accepted"`
	Rejected  uint64 `json:"rejected"`
	Canceled  uint64 `json:"canceled"`
	Failed    uint64 `json:"failed"`
	Completed uint64 `json:"completed"`

	Batches   uint64  `json:"batches"`
	MeanBatch float64 `json:"mean_batch"`
	MaxBatch  int     `json:"max_batch"`

	QueueDepth    int `json:"queue_depth"`
	MaxQueueDepth int `json:"max_queue_depth"`

	MeanQueueWaitMS float64 `json:"mean_queue_wait_ms"`
	MeanLatencyMS   float64 `json:"mean_latency_ms"`
	MaxLatencyMS    float64 `json:"max_latency_ms"`
	MeanExecMS      float64 `json:"mean_exec_ms"`

	QueueWait HistogramSnapshot `json:"queue_wait"`
	Latency   HistogramSnapshot `json:"latency"`
	Exec      HistogramSnapshot `json:"exec"`

	PerModel map[string]ModelServingSnapshot `json:"per_model,omitempty"`
}

// Snapshot returns a consistent copy of the counters.
func (s *ServingStats) Snapshot() ServingSnapshot {
	if s == nil {
		return ServingSnapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := ServingSnapshot{
		Accepted:      s.accepted,
		Rejected:      s.rejected,
		Canceled:      s.canceled,
		Failed:        s.failed,
		Completed:     s.completed,
		Batches:       s.batches,
		MaxBatch:      s.maxBatch,
		QueueDepth:    s.queueDepth,
		MaxQueueDepth: s.maxQueueDepth,
		MaxLatencyMS:  ms(s.latencyMax),
		QueueWait:     s.queueWait.Snapshot(),
		Latency:       s.latency.Snapshot(),
		Exec:          s.exec.Snapshot(),
	}
	if s.batches > 0 {
		snap.MeanBatch = float64(s.batchSizeSum) / float64(s.batches)
		snap.MeanExecMS = ms(s.execSum) / float64(s.batches)
	}
	if s.completed > 0 {
		snap.MeanQueueWaitMS = ms(s.queueWaitSum) / float64(s.completed)
		snap.MeanLatencyMS = ms(s.latencySum) / float64(s.completed)
	}
	if len(s.perModel) > 0 {
		snap.PerModel = make(map[string]ModelServingSnapshot, len(s.perModel))
		for name, m := range s.perModel {
			snap.PerModel[name] = ModelServingSnapshot{
				Accepted:  m.accepted,
				Canceled:  m.canceled,
				Failed:    m.failed,
				Completed: m.completed,
				Latency:   m.latency.Snapshot(),
			}
		}
	}
	return snap
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// String renders the snapshot on one line.
func (s ServingSnapshot) String() string {
	return fmt.Sprintf(
		"acc=%d rej=%d can=%d fail=%d done=%d batches=%d meanBatch=%.2f depth=%d/%d lat=%.2f/%.2f/%.2fms",
		s.Accepted, s.Rejected, s.Canceled, s.Failed, s.Completed,
		s.Batches, s.MeanBatch, s.QueueDepth, s.MaxQueueDepth,
		s.Latency.P50MS, s.Latency.P99MS, s.MaxLatencyMS)
}
