package metrics_test

import (
	"encoding/json"
	"sync"
	"testing"

	. "drainnas/internal/metrics"
)

func TestKernelSnapshotCounts(t *testing.T) {
	var ks KernelStats
	ks.GemmCall()
	ks.GemmCall()
	ks.NaiveCall()
	ks.TilesDispatched(12)
	ks.TilesDispatched(3)
	ks.PackReused()
	ks.ScratchHit()
	ks.ScratchHit()
	ks.ScratchMiss()
	s := ks.Snapshot()
	if s.GemmCalls != 2 || s.NaiveCalls != 1 || s.TilesDispatched != 15 ||
		s.PacksReused != 1 || s.ScratchHits != 2 || s.ScratchMisses != 1 {
		t.Fatalf("snapshot %+v", s)
	}
	ks.Reset()
	if s := ks.Snapshot(); s.GemmCalls != 0 || s.TilesDispatched != 0 || s.ScratchHits != 0 {
		t.Fatalf("reset left %+v", s)
	}
}

func TestKernelSnapshotJSONKeys(t *testing.T) {
	var ks KernelStats
	ks.GemmCall()
	raw, err := json.Marshal(ks.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]uint64
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"gemm_calls", "naive_calls", "tiles_dispatched",
		"packs_reused", "scratch_hits", "scratch_misses",
	} {
		if _, ok := m[key]; !ok {
			t.Fatalf("snapshot JSON missing %q: %s", key, raw)
		}
	}
}

func TestKernelStatsConcurrent(t *testing.T) {
	var ks KernelStats
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ks.GemmCall()
				ks.TilesDispatched(2)
			}
		}()
	}
	wg.Wait()
	if s := ks.Snapshot(); s.GemmCalls != 800 || s.TilesDispatched != 1600 {
		t.Fatalf("lost updates: %+v", s)
	}
}
