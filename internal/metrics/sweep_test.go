package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSweepStatsCounters(t *testing.T) {
	s := &SweepStats{}
	s.Begin(100, 40)
	for i := 0; i < 50; i++ {
		s.TrialDone(10 * time.Millisecond)
	}
	s.TrialFailed(20 * time.Millisecond)
	s.Retried()
	s.Retried()
	snap := s.Snapshot()
	if snap.Total != 100 || snap.Reused != 40 {
		t.Fatalf("plan: %+v", snap)
	}
	if snap.Succeeded != 50 || snap.Failed != 1 || snap.Retried != 2 {
		t.Fatalf("counters: %+v", snap)
	}
	if snap.Remaining != 9 { // 100 - 40 reused - 51 completed
		t.Fatalf("remaining %d, want 9", snap.Remaining)
	}
	wantMean := (50*10.0 + 20.0) / 51
	if snap.MeanTrialMS < wantMean-1e-9 || snap.MeanTrialMS > wantMean+1e-9 {
		t.Fatalf("mean trial %.3f ms, want %.3f", snap.MeanTrialMS, wantMean)
	}
	// Both successful and failed trials feed the duration histogram.
	if snap.Trials.Count != 51 || snap.Trials.Max != 20*time.Millisecond {
		t.Fatalf("trial histogram count=%d max=%v, want 51/20ms", snap.Trials.Count, snap.Trials.Max)
	}
	if snap.Trials.P99MS <= 0 || snap.Trials.P50MS > snap.Trials.P99MS {
		t.Fatalf("trial quantiles p50=%.3f p99=%.3f", snap.Trials.P50MS, snap.Trials.P99MS)
	}
	if snap.Elapsed <= 0 {
		t.Fatal("elapsed not tracked")
	}
	if snap.ETA <= 0 {
		t.Fatal("ETA should be positive with work remaining")
	}
	for _, want := range []string{"done=50", "fail=1", "retry=2", "reuse=40", "remaining=9/100", "eta="} {
		if !strings.Contains(snap.String(), want) {
			t.Fatalf("String() missing %q: %s", want, snap.String())
		}
	}
}

func TestSweepStatsETAZeroWhenDoneOrIdle(t *testing.T) {
	s := &SweepStats{}
	s.Begin(2, 0)
	if eta := s.Snapshot().ETA; eta != 0 {
		t.Fatalf("ETA %v before any completion", eta)
	}
	s.TrialDone(time.Millisecond)
	s.TrialDone(time.Millisecond)
	snap := s.Snapshot()
	if snap.Remaining != 0 || snap.ETA != 0 {
		t.Fatalf("finished sweep: remaining=%d eta=%v", snap.Remaining, snap.ETA)
	}
}

func TestSweepStatsRemainingNeverNegative(t *testing.T) {
	s := &SweepStats{}
	s.Begin(1, 0)
	s.TrialDone(time.Millisecond)
	s.TrialDone(time.Millisecond) // over-report
	if r := s.Snapshot().Remaining; r != 0 {
		t.Fatalf("remaining %d", r)
	}
}

func TestSweepStatsNilReceiver(t *testing.T) {
	var s *SweepStats
	s.Begin(10, 0)
	s.TrialDone(time.Second)
	s.TrialFailed(time.Second)
	s.Retried()
	if snap := s.Snapshot(); snap.Total != 0 {
		t.Fatalf("nil snapshot: %+v", snap)
	}
}

func TestSweepStatsConcurrent(t *testing.T) {
	s := &SweepStats{}
	s.Begin(400, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.TrialDone(time.Millisecond)
				s.Retried()
				_ = s.Snapshot()
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.Succeeded != 400 || snap.Retried != 400 {
		t.Fatalf("lost updates: %+v", snap)
	}
}
