package metrics

import (
	"fmt"
	"sync"
	"time"
)

// ScanStats aggregates whole-watershed scan counters: job lifecycle
// outcomes and per-tile progress (tiles classified, retries, failures,
// detected crossings) with a streaming tile-latency histogram. All methods
// are safe for concurrent use and no-ops on a nil receiver, matching the
// other stats sinks.
type ScanStats struct {
	mu sync.Mutex

	jobsStarted   uint64
	jobsCompleted uint64
	jobsCanceled  uint64
	jobsFailed    uint64

	tiles        uint64
	tileRetries  uint64
	tileFailures uint64
	crossings    uint64

	tileLatency Histogram
}

// JobStarted counts one scan job entering the running state.
func (s *ScanStats) JobStarted() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.jobsStarted++
	s.mu.Unlock()
}

// JobFinished counts a job leaving the running state in the given terminal
// state ("done", "canceled" or "failed").
func (s *ScanStats) JobFinished(state string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	switch state {
	case "canceled":
		s.jobsCanceled++
	case "failed":
		s.jobsFailed++
	default:
		s.jobsCompleted++
	}
	s.mu.Unlock()
}

// Tile records one classified tile: its end-to-end latency, how many
// retries it took, and whether it scored as a crossing.
func (s *ScanStats) Tile(latency time.Duration, retries int, crossing bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.tiles++
	s.tileRetries += uint64(retries)
	if crossing {
		s.crossings++
	}
	s.mu.Unlock()
	s.tileLatency.Observe(latency)
}

// TileFailed records a tile that exhausted its retries.
func (s *ScanStats) TileFailed(retries int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.tileFailures++
	s.tileRetries += uint64(retries)
	s.mu.Unlock()
}

// ScanSnapshot is a point-in-time copy of the scan counters.
type ScanSnapshot struct {
	JobsStarted   uint64 `json:"jobs_started"`
	JobsCompleted uint64 `json:"jobs_completed"`
	JobsCanceled  uint64 `json:"jobs_canceled"`
	JobsFailed    uint64 `json:"jobs_failed"`

	Tiles        uint64 `json:"tiles"`
	TileRetries  uint64 `json:"tile_retries"`
	TileFailures uint64 `json:"tile_failures"`
	Crossings    uint64 `json:"crossings"`

	TileLatency HistogramSnapshot `json:"tile_latency"`
}

// Snapshot returns a consistent copy of the counters.
func (s *ScanStats) Snapshot() ScanSnapshot {
	if s == nil {
		return ScanSnapshot{}
	}
	s.mu.Lock()
	snap := ScanSnapshot{
		JobsStarted:   s.jobsStarted,
		JobsCompleted: s.jobsCompleted,
		JobsCanceled:  s.jobsCanceled,
		JobsFailed:    s.jobsFailed,
		Tiles:         s.tiles,
		TileRetries:   s.tileRetries,
		TileFailures:  s.tileFailures,
		Crossings:     s.crossings,
	}
	s.mu.Unlock()
	snap.TileLatency = s.tileLatency.Snapshot()
	return snap
}

// String renders the snapshot on one line.
func (s ScanSnapshot) String() string {
	return fmt.Sprintf("jobs=%d/%d/%d/%d tiles=%d retries=%d fail=%d crossings=%d lat p50=%.2fms",
		s.JobsStarted, s.JobsCompleted, s.JobsCanceled, s.JobsFailed,
		s.Tiles, s.TileRetries, s.TileFailures, s.Crossings, s.TileLatency.P50MS)
}

// WriteProm exports the snapshot as the drainnas_scan_* families.
func (s ScanSnapshot) WriteProm(e *ExpositionWriter) {
	e.Counter("drainnas_scan_jobs_started_total", "Scan jobs admitted.", float64(s.JobsStarted))
	e.Counter("drainnas_scan_jobs_completed_total", "Scan jobs that finished every tile.", float64(s.JobsCompleted))
	e.Counter("drainnas_scan_jobs_canceled_total", "Scan jobs canceled mid-scan.", float64(s.JobsCanceled))
	e.Counter("drainnas_scan_jobs_failed_total", "Scan jobs that aborted on error.", float64(s.JobsFailed))
	e.Counter("drainnas_scan_tiles_total", "Tiles classified across all scans.", float64(s.Tiles))
	e.Counter("drainnas_scan_tile_retries_total", "Per-tile retries of retryable serving errors.", float64(s.TileRetries))
	e.Counter("drainnas_scan_tile_failures_total", "Tiles that exhausted their retries.", float64(s.TileFailures))
	e.Counter("drainnas_scan_crossings_total", "Tiles scored as drainage crossings.", float64(s.Crossings))
	e.Histogram("drainnas_scan_tile_latency_ms", "Per-tile end-to-end latency.", s.TileLatency)
}
