package metrics

import (
	"fmt"
	"sync"
	"time"
)

// maxTrackedReplicas bounds the per-replica breakdown the same way
// maxTrackedModels bounds per-model serving stats: replica IDs are
// operator-chosen, but a misconfigured fleet generator should degrade to an
// overflow bucket, not an unbounded map.
const maxTrackedReplicas = 64

// RouterStats aggregates the routing tier's counters: admission outcomes,
// per-SLO-class lifecycle counts and queue-wait histograms, per-policy
// decision counts with a decision-latency histogram, hedging outcomes, and
// a per-replica breakdown of picks/completions/failures/hedges. All methods
// are safe for concurrent use and no-ops on a nil receiver.
type RouterStats struct {
	mu sync.Mutex

	submitted  uint64
	throttled  uint64
	noReplicas uint64
	completed  uint64
	failed     uint64

	hedgesLaunched uint64
	hedgeWins      uint64
	losersCanceled uint64
	retries        uint64

	decide  Histogram // policy decision latency
	latency Histogram // admission-to-response latency through the router

	perPolicy  map[string]uint64
	perClass   map[string]*classRouteStats
	perReplica map[string]*replicaRouteStats
}

type classRouteStats struct {
	submitted uint64
	completed uint64
	failed    uint64
	queueWait Histogram
	latency   Histogram
}

type replicaRouteStats struct {
	picked    uint64
	completed uint64
	failed    uint64
	hedges    uint64
	retries   uint64
}

func (s *RouterStats) classLocked(class string) *classRouteStats {
	if s.perClass == nil {
		s.perClass = make(map[string]*classRouteStats)
	}
	c := s.perClass[class]
	if c == nil {
		c = &classRouteStats{}
		s.perClass[class] = c
	}
	return c
}

func (s *RouterStats) replicaLocked(id string) *replicaRouteStats {
	if s.perReplica == nil {
		s.perReplica = make(map[string]*replicaRouteStats)
	}
	r := s.perReplica[id]
	if r == nil {
		if len(s.perReplica) >= maxTrackedReplicas {
			id = OverflowModelKey
			if r = s.perReplica[id]; r != nil {
				return r
			}
		}
		r = &replicaRouteStats{}
		s.perReplica[id] = r
	}
	return r
}

// Submitted records one request entering the router under an SLO class.
func (s *RouterStats) Submitted(class string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.submitted++
	s.classLocked(class).submitted++
	s.mu.Unlock()
}

// Throttled records a request rejected by token-bucket admission.
func (s *RouterStats) Throttled() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.throttled++
	s.mu.Unlock()
}

// NoReplicas records a request that found an empty (or fully declined)
// replica set.
func (s *RouterStats) NoReplicas() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.noReplicas++
	s.mu.Unlock()
}

// QueueWait records how long a request waited at the scheduling gate.
func (s *RouterStats) QueueWait(class string, d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.classLocked(class).queueWait.Observe(d)
	s.mu.Unlock()
}

// Decision records one primary routing decision: the policy that made it,
// the replica it picked, and how long the pick took.
func (s *RouterStats) Decision(policy, replica string, d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.perPolicy == nil {
		s.perPolicy = make(map[string]uint64)
	}
	s.perPolicy[policy]++
	s.decide.Observe(d)
	s.replicaLocked(replica).picked++
	s.mu.Unlock()
}

// HedgeLaunched records a hedge attempt fired at a straggler deadline.
func (s *RouterStats) HedgeLaunched(replica string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.hedgesLaunched++
	r := s.replicaLocked(replica)
	r.picked++
	r.hedges++
	s.mu.Unlock()
}

// HedgeWon records a hedge attempt beating its primary.
func (s *RouterStats) HedgeWon(replica string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.hedgeWins++
	s.mu.Unlock()
}

// LosersCanceled records n losing attempts canceled after a winner.
func (s *RouterStats) LosersCanceled(n int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.losersCanceled += uint64(n)
	s.mu.Unlock()
}

// Retried records an immediate error-retry dispatched to a replica.
func (s *RouterStats) Retried(replica string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.retries++
	r := s.replicaLocked(replica)
	r.picked++
	r.retries++
	s.mu.Unlock()
}

// AttemptDone records one replica attempt's outcome (success or failure),
// independent of whether the request as a whole succeeded.
func (s *RouterStats) AttemptDone(replica string, ok bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	r := s.replicaLocked(replica)
	if ok {
		r.completed++
	} else {
		r.failed++
	}
	s.mu.Unlock()
}

// Completed records one request served through the router end to end.
func (s *RouterStats) Completed(class string, total time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.completed++
	s.latency.Observe(total)
	c := s.classLocked(class)
	c.completed++
	c.latency.Observe(total)
	s.mu.Unlock()
}

// Failed records one request that left the router with an error (including
// gate cancellation, dispatch failure on every attempt, or no replicas).
func (s *RouterStats) Failed(class string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.failed++
	s.classLocked(class).failed++
	s.mu.Unlock()
}

// ClassRouteSnapshot is the per-SLO-class slice of a router snapshot.
type ClassRouteSnapshot struct {
	Submitted uint64            `json:"submitted"`
	Completed uint64            `json:"completed"`
	Failed    uint64            `json:"failed"`
	QueueWait HistogramSnapshot `json:"queue_wait"`
	Latency   HistogramSnapshot `json:"latency"`
}

// ReplicaRouteSnapshot is the per-replica slice of a router snapshot.
type ReplicaRouteSnapshot struct {
	Picked    uint64 `json:"picked"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Hedges    uint64 `json:"hedges"`
	Retries   uint64 `json:"retries"`
}

// RouterSnapshot is a point-in-time copy of the routing counters.
type RouterSnapshot struct {
	Submitted  uint64 `json:"submitted"`
	Throttled  uint64 `json:"throttled"`
	NoReplicas uint64 `json:"no_replicas"`
	Completed  uint64 `json:"completed"`
	Failed     uint64 `json:"failed"`

	HedgesLaunched uint64 `json:"hedges_launched"`
	HedgeWins      uint64 `json:"hedge_wins"`
	LosersCanceled uint64 `json:"losers_canceled"`
	Retries        uint64 `json:"retries"`

	Decide  HistogramSnapshot `json:"decide"`
	Latency HistogramSnapshot `json:"latency"`

	PerPolicy  map[string]uint64               `json:"per_policy,omitempty"`
	PerClass   map[string]ClassRouteSnapshot   `json:"per_class,omitempty"`
	PerReplica map[string]ReplicaRouteSnapshot `json:"per_replica,omitempty"`
}

// Snapshot returns a consistent copy of the counters.
func (s *RouterStats) Snapshot() RouterSnapshot {
	if s == nil {
		return RouterSnapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := RouterSnapshot{
		Submitted:      s.submitted,
		Throttled:      s.throttled,
		NoReplicas:     s.noReplicas,
		Completed:      s.completed,
		Failed:         s.failed,
		HedgesLaunched: s.hedgesLaunched,
		HedgeWins:      s.hedgeWins,
		LosersCanceled: s.losersCanceled,
		Retries:        s.retries,
		Decide:         s.decide.Snapshot(),
		Latency:        s.latency.Snapshot(),
	}
	if len(s.perPolicy) > 0 {
		snap.PerPolicy = make(map[string]uint64, len(s.perPolicy))
		for k, v := range s.perPolicy {
			snap.PerPolicy[k] = v
		}
	}
	if len(s.perClass) > 0 {
		snap.PerClass = make(map[string]ClassRouteSnapshot, len(s.perClass))
		for k, c := range s.perClass {
			snap.PerClass[k] = ClassRouteSnapshot{
				Submitted: c.submitted,
				Completed: c.completed,
				Failed:    c.failed,
				QueueWait: c.queueWait.Snapshot(),
				Latency:   c.latency.Snapshot(),
			}
		}
	}
	if len(s.perReplica) > 0 {
		snap.PerReplica = make(map[string]ReplicaRouteSnapshot, len(s.perReplica))
		for k, r := range s.perReplica {
			snap.PerReplica[k] = ReplicaRouteSnapshot{
				Picked:    r.picked,
				Completed: r.completed,
				Failed:    r.failed,
				Hedges:    r.hedges,
				Retries:   r.retries,
			}
		}
	}
	return snap
}

// String renders the snapshot on one line.
func (s RouterSnapshot) String() string {
	return fmt.Sprintf(
		"sub=%d thr=%d done=%d fail=%d hedges=%d/%d retries=%d lat=%.2f/%.2fms",
		s.Submitted, s.Throttled, s.Completed, s.Failed,
		s.HedgesLaunched, s.HedgeWins, s.Retries,
		s.Latency.P50MS, s.Latency.P99MS)
}
