package metrics

import "sync/atomic"

// InferStats counts what the compiled inference runtime did: how many graph
// containers were compiled into plans, how many execution sessions were
// created, and how often a forward pass found a ready activation arena for
// its input shape (hit) versus having to build one (miss). A healthy serving
// steady state shows arena hits growing with traffic while compiles, session
// creations and misses stay flat — each miss is a one-time allocation burst
// for a new (batch, H, W) shape.
type InferStats struct {
	planCompiles atomic.Uint64
	sessions     atomic.Uint64
	arenaHits    atomic.Uint64
	arenaMisses  atomic.Uint64
}

// Infer is the process-wide sink the inference runtime reports into.
var Infer InferStats

// PlanCompiled records one container compiled into an execution plan.
func (s *InferStats) PlanCompiled() { s.planCompiles.Add(1) }

// SessionCreated records one new execution session.
func (s *InferStats) SessionCreated() { s.sessions.Add(1) }

// ArenaHit records a forward pass reusing a prebuilt activation arena.
func (s *InferStats) ArenaHit() { s.arenaHits.Add(1) }

// ArenaMiss records a forward pass that had to build an arena for a
// previously unseen input shape.
func (s *InferStats) ArenaMiss() { s.arenaMisses.Add(1) }

// InferSnapshot is a point-in-time copy of the inference-runtime counters.
type InferSnapshot struct {
	PlanCompiles uint64 `json:"plan_compiles"`
	Sessions     uint64 `json:"sessions"`
	ArenaHits    uint64 `json:"arena_hits"`
	ArenaMisses  uint64 `json:"arena_misses"`
}

// Snapshot returns a copy of the counters. Each value is exact; the set is
// approximately simultaneous, which is what a stats endpoint needs.
func (s *InferStats) Snapshot() InferSnapshot {
	return InferSnapshot{
		PlanCompiles: s.planCompiles.Load(),
		Sessions:     s.sessions.Load(),
		ArenaHits:    s.arenaHits.Load(),
		ArenaMisses:  s.arenaMisses.Load(),
	}
}

// Reset zeroes all counters (test support).
func (s *InferStats) Reset() {
	s.planCompiles.Store(0)
	s.sessions.Store(0)
	s.arenaHits.Store(0)
	s.arenaMisses.Store(0)
}

// WriteProm emits the counters in Prometheus text exposition format.
func (s InferSnapshot) WriteProm(e *ExpositionWriter) {
	e.Counter("drainnas_infer_plan_compiles_total", "Model containers compiled into execution plans.", float64(s.PlanCompiles))
	e.Counter("drainnas_infer_sessions_total", "Inference sessions created.", float64(s.Sessions))
	e.Counter("drainnas_infer_arena_hits_total", "Forward passes served by a prebuilt activation arena.", float64(s.ArenaHits))
	e.Counter("drainnas_infer_arena_misses_total", "Forward passes that built an arena for a new input shape.", float64(s.ArenaMisses))
}
