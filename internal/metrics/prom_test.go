package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestExpositionWriterBasics(t *testing.T) {
	var sb strings.Builder
	e := NewExpositionWriter(&sb)
	e.Counter("x_total", "A counter.", 3)
	e.Counter("x_total", "A counter.", 4, "kind", "b") // header only once
	e.Gauge("y", "A gauge.", 1.5, "q", `va"l\ue`)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "# TYPE x_total counter") != 1 {
		t.Fatalf("TYPE emitted wrong number of times:\n%s", out)
	}
	if !strings.Contains(out, `x_total{kind="b"} 4`) {
		t.Fatalf("labeled sample missing:\n%s", out)
	}
	if !strings.Contains(out, `q="va\"l\\ue"`) {
		t.Fatalf("label escaping wrong:\n%s", out)
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("writer output rejected: %v\n%s", err, out)
	}
}

func TestExpositionWriterHistogram(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Millisecond)
	h.Observe(time.Millisecond)
	h.Observe(20 * time.Millisecond)

	var sb strings.Builder
	e := NewExpositionWriter(&sb)
	e.Histogram("lat_seconds", "Latency.", h.Snapshot())
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_count 3",
		"lat_seconds_sum 0.022",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("histogram output rejected: %v\n%s", err, out)
	}
}

// TestWritePromRoundTrip feeds every snapshot family through its WriteProm and
// requires the combined page to pass the validator — the same check
// make obs-smoke runs against a live servd.
func TestWritePromRoundTrip(t *testing.T) {
	serving := &ServingStats{}
	for i := 0; i < 5; i++ {
		serving.Enqueued("cnn-a")
		serving.Completed("cnn-a", time.Millisecond, 3*time.Millisecond)
	}
	serving.Enqueued("cnn-b")
	serving.Failed("cnn-b")
	serving.Enqueued("cnn-b")
	serving.Canceled("cnn-b")
	serving.Rejected("cnn-a")
	serving.BatchDone("cnn-a", 5, 2*time.Millisecond)

	sweep := &SweepStats{}
	sweep.Begin(10, 2)
	sweep.TrialDone(time.Second)
	sweep.TrialFailed(2 * time.Second)
	sweep.Retried()

	var sb strings.Builder
	e := NewExpositionWriter(&sb)
	serving.Snapshot().WriteProm(e)
	KernelSnapshot{GemmCalls: 7, TilesDispatched: 9}.WriteProm(e)
	sweep.Snapshot().WriteProm(e)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("full page rejected: %v\n%s", err, out)
	}
	for _, want := range []string{
		`drainnas_serving_requests_total{outcome="accepted"} 7`,
		`drainnas_serving_model_requests_total{model="cnn-b",outcome="failed"} 1`,
		`drainnas_serving_model_latency_seconds_bucket{model="cnn-a",le="+Inf"} 5`,
		`drainnas_serving_latency_quantile_seconds{quantile="0.99"}`,
		"drainnas_kernel_gemm_calls_total 7",
		"drainnas_sweep_trials_succeeded_total 1",
		"drainnas_sweep_trial_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestValidateExpositionRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		page string
	}{
		{"garbage line", "!!!not a metric\n"},
		{"bad value", "x 1.2.3\n"},
		{"duplicate TYPE", "# TYPE x counter\nx 1\n# TYPE x counter\n"},
		{"unknown type", "# TYPE x widget\nx 1\n"},
		{"interleaved families", "# TYPE a counter\na 1\n# TYPE b counter\nb 1\na 2\n"},
		{"TYPE after samples ended", "# TYPE a counter\na 1\n# TYPE b counter\nb 1\n# HELP a late\n"},
		{"histogram without +Inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"},
		{"non-cumulative buckets", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n"},
		{"le out of order", "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\n"},
		{"count disagrees with +Inf", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n"},
		{"bucket without le", "# TYPE h histogram\nh_bucket{x=\"1\"} 1\n"},
		{"malformed label", "x{9bad=\"v\"} 1\n"},
	}
	for _, tc := range cases {
		if err := ValidateExposition(strings.NewReader(tc.page)); err == nil {
			t.Errorf("%s: accepted:\n%s", tc.name, tc.page)
		}
	}
}

func TestValidateExpositionAcceptsPerSeriesHistograms(t *testing.T) {
	// le restarts per label set within one family — per-model histograms rely
	// on this being legal.
	page := `# TYPE h histogram
h_bucket{model="a",le="1"} 1
h_bucket{model="a",le="+Inf"} 1
h_sum{model="a"} 0.5
h_count{model="a"} 1
h_bucket{model="b",le="0.5"} 2
h_bucket{model="b",le="+Inf"} 2
h_sum{model="b"} 0.2
h_count{model="b"} 2
`
	if err := ValidateExposition(strings.NewReader(page)); err != nil {
		t.Fatalf("per-series histogram rejected: %v", err)
	}
}

func TestValidateExpositionAcceptsEmptyAndComments(t *testing.T) {
	page := "\n# just a comment\n\n# TYPE ok gauge\nok 0\n"
	if err := ValidateExposition(strings.NewReader(page)); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(strings.NewReader("")); err != nil {
		t.Fatal(err)
	}
}
