package metrics

import (
	"fmt"
	"sync"
	"time"
)

// SweepStats aggregates trial-level counters for a NAS sweep: outcomes,
// retries, journal reuse and an ETA derived from the observed completion
// rate. All methods are safe for concurrent use (trials finish on worker
// goroutines), and every method is a no-op on a nil receiver so
// instrumentation points need no nil checks.
type SweepStats struct {
	mu sync.Mutex

	total  int // full plan size, journal-reused trials included
	reused int // trials satisfied from a resumed journal

	succeeded uint64
	failed    uint64
	retried   uint64

	durSum time.Duration // wall time of completed trials (per-trial, not per-sweep)
	trials Histogram     // per-trial wall-time distribution (succeeded + failed)
	start  time.Time
}

// Begin records the sweep plan: total trials in the full plan and how many
// were reused from a journal, and stamps the clock the ETA counts from.
func (s *SweepStats) Begin(total, reused int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.total = total
	s.reused = reused
	s.start = time.Now()
	s.mu.Unlock()
}

// TrialDone records one successful trial and its duration.
func (s *SweepStats) TrialDone(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.succeeded++
	s.durSum += d
	s.trials.Observe(d)
	s.mu.Unlock()
}

// TrialFailed records one trial that exhausted its attempts.
func (s *SweepStats) TrialFailed(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.failed++
	s.durSum += d
	s.trials.Observe(d)
	s.mu.Unlock()
}

// Retried records one retry of a transiently-failed trial.
func (s *SweepStats) Retried() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.retried++
	s.mu.Unlock()
}

// SweepSnapshot is a point-in-time copy of the counters with the derived
// rates a progress line wants.
type SweepSnapshot struct {
	Total     int    `json:"total"`
	Reused    int    `json:"reused"`
	Succeeded uint64 `json:"succeeded"`
	Failed    uint64 `json:"failed"`
	Retried   uint64 `json:"retried"`
	Remaining int    `json:"remaining"`

	MeanTrialMS float64 `json:"mean_trial_ms"`
	// Trials is the per-trial wall-time distribution (succeeded and failed
	// trials both count), the histogram behind the p50/p95/p99 summary the
	// CLI prints at the end of a sweep.
	Trials  HistogramSnapshot `json:"trials"`
	Elapsed time.Duration     `json:"elapsed_ns"`
	// ETA extrapolates the remaining wall time from the completion rate so
	// far (which already reflects worker parallelism); zero until at least
	// one trial has completed.
	ETA time.Duration `json:"eta_ns"`
}

// Snapshot returns a consistent copy of the counters.
func (s *SweepStats) Snapshot() SweepSnapshot {
	if s == nil {
		return SweepSnapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := SweepSnapshot{
		Total:     s.total,
		Reused:    s.reused,
		Succeeded: s.succeeded,
		Failed:    s.failed,
		Retried:   s.retried,
		Trials:    s.trials.Snapshot(),
	}
	completed := s.succeeded + s.failed
	snap.Remaining = s.total - s.reused - int(completed)
	if snap.Remaining < 0 {
		snap.Remaining = 0
	}
	if completed > 0 {
		snap.MeanTrialMS = ms(s.durSum) / float64(completed)
	}
	if !s.start.IsZero() {
		snap.Elapsed = time.Since(s.start)
		if completed > 0 && snap.Remaining > 0 {
			perTrial := snap.Elapsed / time.Duration(completed)
			snap.ETA = perTrial * time.Duration(snap.Remaining)
		}
	}
	return snap
}

// String renders the snapshot on one line.
func (s SweepSnapshot) String() string {
	line := fmt.Sprintf("done=%d fail=%d retry=%d reuse=%d remaining=%d/%d",
		s.Succeeded, s.Failed, s.Retried, s.Reused, s.Remaining, s.Total)
	if s.ETA > 0 {
		line += fmt.Sprintf(" eta=%s", s.ETA.Round(time.Second))
	}
	return line
}
