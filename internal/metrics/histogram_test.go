package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistBoundsAreStrictlyIncreasing(t *testing.T) {
	for i := 1; i < histBuckets; i++ {
		if histBounds[i] <= histBounds[i-1] {
			t.Fatalf("bounds not increasing at %d: %v then %v", i, histBounds[i-1], histBounds[i])
		}
	}
	if histBounds[0] != time.Microsecond {
		t.Fatalf("first bound %v, want 1µs", histBounds[0])
	}
	// √2 spacing means exact doubling every two buckets.
	for i := 2; i < histBuckets; i++ {
		if histBounds[i] != 2*histBounds[i-2] {
			t.Fatalf("bound %d = %v, want 2×bound %d = %v", i, histBounds[i], i-2, 2*histBounds[i-2])
		}
	}
	if top := histBounds[histBuckets-1]; top < 5*time.Minute {
		t.Fatalf("top bound %v too small to cover long trials", top)
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	h := NewHistogram()
	h.Observe(500 * time.Nanosecond) // below first bound → first bucket
	h.Observe(time.Millisecond)
	h.Observe(time.Millisecond)
	h.Observe(10 * time.Millisecond)
	h.Observe(-time.Second) // clamps to 0

	snap := h.Snapshot()
	if snap.Count != 5 {
		t.Fatalf("count %d, want 5", snap.Count)
	}
	if want := 12*time.Millisecond + 500*time.Nanosecond; snap.Sum != want {
		t.Fatalf("sum %v, want %v", snap.Sum, want)
	}
	if snap.Max != 10*time.Millisecond {
		t.Fatalf("max %v, want 10ms", snap.Max)
	}
	var total uint64
	for i, b := range snap.Buckets {
		if b.Count == 0 {
			t.Fatalf("bucket %d present with zero count", i)
		}
		if i > 0 && b.Lower != snap.Buckets[i-1].Upper && b.Lower < snap.Buckets[i-1].Upper {
			t.Fatalf("bucket %d overlaps previous: %+v", i, b)
		}
		total += b.Count
	}
	if total != snap.Count {
		t.Fatalf("bucket total %d != count %d", total, snap.Count)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram()
	// An observation exactly on a bound lands in that bound's bucket
	// (Lower < d ≤ Upper).
	h.Observe(time.Microsecond)
	snap := h.Snapshot()
	if len(snap.Buckets) != 1 || snap.Buckets[0].Upper != time.Microsecond {
		t.Fatalf("1µs observation landed in %+v", snap.Buckets)
	}

	// An observation past the last bound lands in the overflow bucket.
	h2 := NewHistogram()
	h2.Observe(histBounds[histBuckets-1] + time.Second)
	snap2 := h2.Snapshot()
	if len(snap2.Buckets) != 1 || snap2.Buckets[0].Upper != histOverflow {
		t.Fatalf("overflow observation landed in %+v", snap2.Buckets)
	}
	// Interpolation inside the overflow bucket is clamped to the exact max.
	if q := snap2.Quantile(0.99); q > snap2.Max || q <= histBounds[histBuckets-1] {
		t.Fatalf("overflow quantile %v outside (%v, %v]", q, histBounds[histBuckets-1], snap2.Max)
	}
	if q := snap2.Quantile(1.0); q != snap2.Max {
		t.Fatalf("p100 %v, want exact max %v", q, snap2.Max)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 99; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(time.Second)

	snap := h.Snapshot()
	if p50 := snap.Quantile(0.50); p50 < 500*time.Microsecond || p50 > 2*time.Millisecond {
		t.Fatalf("p50 %v, want ≈1ms", p50)
	}
	// The single 1s outlier is the top 1%: p100 must hit it exactly, and the
	// p99 boundary sits at or below it.
	if q := snap.Quantile(1.0); q != time.Second {
		t.Fatalf("p100 %v, want exact max 1s", q)
	}
	if snap.P99MS > 1000.0001 {
		t.Fatalf("p99 %.4fms exceeds the max", snap.P99MS)
	}
	if snap.MeanMS < 10 || snap.MeanMS > 12 {
		t.Fatalf("mean %.2fms, want ≈10.99", snap.MeanMS)
	}
	// Out-of-range p clamps instead of panicking.
	if snap.Quantile(-1) < 0 || snap.Quantile(2) != time.Second {
		t.Fatal("out-of-range quantiles not clamped")
	}
}

func TestHistogramEmptyAndNil(t *testing.T) {
	var nilH *Histogram
	nilH.Observe(time.Second) // must not panic
	if snap := nilH.Snapshot(); snap.Count != 0 || snap.Quantile(0.5) != 0 {
		t.Fatalf("nil snapshot %+v", snap)
	}
	var zero Histogram
	snap := zero.Snapshot()
	if snap.Count != 0 || len(snap.Buckets) != 0 || snap.P99MS != 0 {
		t.Fatalf("zero-value snapshot %+v", snap)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const goroutines = 8
	const per = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(1+(g*per+i)%1000) * time.Microsecond)
				if i%100 == 0 {
					_ = h.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != goroutines*per {
		t.Fatalf("count %d, want %d", snap.Count, goroutines*per)
	}
	if snap.Max != 1000*time.Microsecond {
		t.Fatalf("max %v, want 1ms", snap.Max)
	}
	if snap.Sum <= 0 {
		t.Fatalf("sum %v", snap.Sum)
	}
}

// TestHistogramQuantileMinClamp pins the fix for quantiles below the
// observed minimum: before min tracking, small p interpolated from the
// covering bucket's *lower* bound, so p=0 on a single-sample histogram
// reported a latency that never happened (skewing simulator calibration,
// which matches simulated quantiles against these).
func TestHistogramQuantileMinClamp(t *testing.T) {
	// Single sample: every quantile is that sample, exactly.
	single := NewHistogram()
	const d = 700 * time.Microsecond // strictly inside its bucket (512µs, 724µs]
	single.Observe(d)
	snap := single.Snapshot()
	if snap.Min != d || snap.Max != d {
		t.Fatalf("min/max %v/%v, want both %v", snap.Min, snap.Max, d)
	}
	for _, p := range []float64{0, 0.01, 0.5, 0.99, 1} {
		if q := snap.Quantile(p); q != d {
			t.Fatalf("single-sample q(%.2f)=%v, want exact sample %v", p, q, d)
		}
	}
	if snap.MinMS != snap.MaxMS || snap.P50MS != snap.MinMS {
		t.Fatalf("derived summaries disagree on a single sample: %+v", snap)
	}

	// Many samples: p=0 is the exact minimum, p=1 the exact maximum, and no
	// quantile escapes [min, max].
	h := NewHistogram()
	lo, hi := 3*time.Millisecond, 90*time.Millisecond
	h.Observe(lo)
	for i := 0; i < 100; i++ {
		h.Observe(10 * time.Millisecond)
	}
	h.Observe(hi)
	s := h.Snapshot()
	if q := s.Quantile(0); q != lo {
		t.Fatalf("p0 = %v, want exact min %v", q, lo)
	}
	if q := s.Quantile(1); q != hi {
		t.Fatalf("p100 = %v, want exact max %v", q, hi)
	}
	for i := 0; i <= 100; i++ {
		q := s.Quantile(float64(i) / 100)
		if q < lo || q > hi {
			t.Fatalf("q(%.2f)=%v outside observed [%v, %v]", float64(i)/100, q, lo, hi)
		}
	}

	// A lone overflow-bucket sample behaves like any single sample: clamped
	// to the exact observation from both sides.
	of := NewHistogram()
	big := histBounds[histBuckets-1] + time.Minute
	of.Observe(big)
	so := of.Snapshot()
	if q0, q1 := so.Quantile(0), so.Quantile(1); q0 != big || q1 != big {
		t.Fatalf("overflow sample quantiles %v/%v, want both %v", q0, q1, big)
	}

	// A genuine 0ns observation (negative clamps to 0) is a representable
	// minimum, distinct from "nothing observed".
	z := NewHistogram()
	z.Observe(-time.Second)
	z.Observe(time.Millisecond)
	sz := z.Snapshot()
	if sz.Min != 0 || sz.Quantile(0) != 0 {
		t.Fatalf("zero observation: min %v q0 %v, want 0", sz.Min, sz.Quantile(0))
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	snap := h.Snapshot()
	prev := time.Duration(math.MinInt64)
	for i := 0; i <= 100; i++ {
		p := float64(i) / 100
		q := snap.Quantile(p)
		if q < prev {
			t.Fatalf("quantile not monotone: q(%.2f)=%v < %v", p, q, prev)
		}
		prev = q
	}
	if prev != snap.Max {
		t.Fatalf("q(1.0)=%v, want max %v", prev, snap.Max)
	}
}
