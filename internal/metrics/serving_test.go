package metrics

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestServingStatsLifecycle(t *testing.T) {
	s := &ServingStats{}
	s.Enqueued("a")
	s.Enqueued("a")
	s.Enqueued("b")
	s.Rejected("a")
	s.Canceled("b")
	s.Completed("a", 2*time.Millisecond, 5*time.Millisecond)
	s.Completed("a", 4*time.Millisecond, 15*time.Millisecond)
	s.BatchDone("a", 2, 3*time.Millisecond)

	snap := s.Snapshot()
	if snap.Accepted != 3 || snap.Rejected != 1 || snap.Canceled != 1 || snap.Completed != 2 {
		t.Fatalf("counters wrong: %s", snap)
	}
	if snap.QueueDepth != 0 || snap.MaxQueueDepth != 3 {
		t.Fatalf("depth %d max %d, want 0/3", snap.QueueDepth, snap.MaxQueueDepth)
	}
	if snap.Batches != 1 || snap.MeanBatch != 2 || snap.MaxBatch != 2 {
		t.Fatalf("batch stats wrong: %s", snap)
	}
	if snap.MeanLatencyMS != 10 || snap.MaxLatencyMS != 15 || snap.MeanQueueWaitMS != 3 {
		t.Fatalf("latency stats wrong: %s", snap)
	}
	if snap.MeanExecMS != 3 {
		t.Fatalf("exec ms %v, want 3", snap.MeanExecMS)
	}
}

func TestServingStatsHistograms(t *testing.T) {
	s := &ServingStats{}
	for i := 0; i < 100; i++ {
		s.Enqueued("m")
		s.Completed("m", time.Millisecond, 10*time.Millisecond)
	}
	s.Enqueued("m")
	s.Completed("m", time.Millisecond, 100*time.Millisecond)
	s.BatchDone("m", 101, 7*time.Millisecond)

	snap := s.Snapshot()
	if snap.Latency.Count != 101 || snap.QueueWait.Count != 101 || snap.Exec.Count != 1 {
		t.Fatalf("histogram counts: lat=%d wait=%d exec=%d", snap.Latency.Count, snap.QueueWait.Count, snap.Exec.Count)
	}
	if snap.Latency.Max != 100*time.Millisecond {
		t.Fatalf("latency max %v", snap.Latency.Max)
	}
	// p50 of 100×10ms + 1×100ms sits in the 10ms bucket; p99+ approaches the
	// outlier. Log-spaced buckets give factor-√2 resolution.
	if p50 := snap.Latency.Quantile(0.50); p50 < 5*time.Millisecond || p50 > 15*time.Millisecond {
		t.Fatalf("p50 %v, want ≈10ms", p50)
	}
	if snap.Latency.P99MS <= snap.Latency.P50MS {
		t.Fatalf("p99 %.2f not above p50 %.2f with an outlier present", snap.Latency.P99MS, snap.Latency.P50MS)
	}
}

func TestServingStatsPerModel(t *testing.T) {
	s := &ServingStats{}
	s.Enqueued("fast")
	s.Completed("fast", time.Millisecond, 2*time.Millisecond)
	s.Enqueued("slow")
	s.Completed("slow", time.Millisecond, 200*time.Millisecond)
	s.Enqueued("slow")
	s.Failed("slow")
	s.Enqueued("gone")
	s.Canceled("gone")

	snap := s.Snapshot()
	if len(snap.PerModel) != 3 {
		t.Fatalf("per-model keys %v", snap.PerModel)
	}
	fast, slow, gone := snap.PerModel["fast"], snap.PerModel["slow"], snap.PerModel["gone"]
	if fast.Completed != 1 || fast.Accepted != 1 || fast.Latency.Count != 1 {
		t.Fatalf("fast %+v", fast)
	}
	if slow.Completed != 1 || slow.Failed != 1 || slow.Accepted != 2 {
		t.Fatalf("slow %+v", slow)
	}
	if gone.Canceled != 1 || gone.Latency.Count != 0 {
		t.Fatalf("gone %+v", gone)
	}
	if slow.Latency.Max != 200*time.Millisecond || fast.Latency.Max != 2*time.Millisecond {
		t.Fatalf("per-model latency mixed up: fast max %v, slow max %v", fast.Latency.Max, slow.Latency.Max)
	}
}

// TestServingStatsModelCapOverflow pins the anti-leak cap: arbitrary
// client-chosen model names must not grow the per-model map without bound.
func TestServingStatsModelCapOverflow(t *testing.T) {
	s := &ServingStats{}
	for i := 0; i < maxTrackedModels+50; i++ {
		model := fmt.Sprintf("junk-%d", i)
		s.Enqueued(model)
		s.Failed(model)
	}
	snap := s.Snapshot()
	if len(snap.PerModel) != maxTrackedModels+1 {
		t.Fatalf("per-model map has %d entries, want cap %d + overflow", len(snap.PerModel), maxTrackedModels)
	}
	over, ok := snap.PerModel[OverflowModelKey]
	if !ok || over.Failed != 50 {
		t.Fatalf("overflow bucket %+v (present=%v), want 50 failures", over, ok)
	}
}

func TestServingStatsNilReceiverIsSafe(t *testing.T) {
	var s *ServingStats
	s.Enqueued("m")
	s.Rejected("m")
	s.Canceled("m")
	s.Failed("m")
	s.Completed("m", time.Millisecond, time.Millisecond)
	s.BatchDone("m", 1, time.Millisecond)
	if snap := s.Snapshot(); snap.Accepted != 0 {
		t.Fatalf("nil snapshot %s", snap)
	}
}

func TestServingStatsConcurrent(t *testing.T) {
	s := &ServingStats{}
	const goroutines = 8
	const per = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			model := fmt.Sprintf("m%d", g%3)
			for i := 0; i < per; i++ {
				s.Enqueued(model)
				if i%2 == 0 {
					s.Completed(model, time.Microsecond, 2*time.Microsecond)
				} else {
					s.Canceled(model)
				}
				s.BatchDone(model, 1, time.Microsecond)
				_ = s.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.Accepted != goroutines*per {
		t.Fatalf("accepted %d, want %d", snap.Accepted, goroutines*per)
	}
	if snap.Completed+snap.Canceled != snap.Accepted || snap.QueueDepth != 0 {
		t.Fatalf("accounting broken: %s", snap)
	}
	if snap.Latency.Count != snap.Completed {
		t.Fatalf("latency histogram %d observations, completed %d", snap.Latency.Count, snap.Completed)
	}
	var perModel uint64
	for _, m := range snap.PerModel {
		perModel += m.Accepted
	}
	if perModel != snap.Accepted {
		t.Fatalf("per-model accepted sum %d != global %d", perModel, snap.Accepted)
	}
}

func TestServingSnapshotString(t *testing.T) {
	s := &ServingStats{}
	s.Enqueued("m")
	s.Completed("m", time.Millisecond, 2*time.Millisecond)
	if str := s.Snapshot().String(); !strings.Contains(str, "done=1") {
		t.Fatalf("snapshot string %q", str)
	}
}
