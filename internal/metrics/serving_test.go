package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestServingStatsLifecycle(t *testing.T) {
	s := &ServingStats{}
	s.Enqueued()
	s.Enqueued()
	s.Enqueued()
	s.Rejected()
	s.Canceled()
	s.Completed(2*time.Millisecond, 5*time.Millisecond)
	s.Completed(4*time.Millisecond, 15*time.Millisecond)
	s.BatchDone(2, 3*time.Millisecond)

	snap := s.Snapshot()
	if snap.Accepted != 3 || snap.Rejected != 1 || snap.Canceled != 1 || snap.Completed != 2 {
		t.Fatalf("counters wrong: %s", snap)
	}
	if snap.QueueDepth != 0 || snap.MaxQueueDepth != 3 {
		t.Fatalf("depth %d max %d, want 0/3", snap.QueueDepth, snap.MaxQueueDepth)
	}
	if snap.Batches != 1 || snap.MeanBatch != 2 || snap.MaxBatch != 2 {
		t.Fatalf("batch stats wrong: %s", snap)
	}
	if snap.MeanLatencyMS != 10 || snap.MaxLatencyMS != 15 || snap.MeanQueueWaitMS != 3 {
		t.Fatalf("latency stats wrong: %s", snap)
	}
	if snap.MeanExecMS != 3 {
		t.Fatalf("exec ms %v, want 3", snap.MeanExecMS)
	}
}

func TestServingStatsNilReceiverIsSafe(t *testing.T) {
	var s *ServingStats
	s.Enqueued()
	s.Rejected()
	s.Canceled()
	s.Failed()
	s.Completed(time.Millisecond, time.Millisecond)
	s.BatchDone(1, time.Millisecond)
	if snap := s.Snapshot(); snap.Accepted != 0 {
		t.Fatalf("nil snapshot %s", snap)
	}
}

func TestServingStatsConcurrent(t *testing.T) {
	s := &ServingStats{}
	const goroutines = 8
	const per = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Enqueued()
				if i%2 == 0 {
					s.Completed(time.Microsecond, 2*time.Microsecond)
				} else {
					s.Canceled()
				}
				s.BatchDone(1, time.Microsecond)
				_ = s.Snapshot()
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.Accepted != goroutines*per {
		t.Fatalf("accepted %d, want %d", snap.Accepted, goroutines*per)
	}
	if snap.Completed+snap.Canceled != snap.Accepted || snap.QueueDepth != 0 {
		t.Fatalf("accounting broken: %s", snap)
	}
}

func TestServingSnapshotString(t *testing.T) {
	s := &ServingStats{}
	s.Enqueued()
	s.Completed(time.Millisecond, 2*time.Millisecond)
	if str := s.Snapshot().String(); !strings.Contains(str, "done=1") {
		t.Fatalf("snapshot string %q", str)
	}
}
