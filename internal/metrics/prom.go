package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// ExpositionWriter emits Prometheus text exposition format (version 0.0.4)
// with no dependency beyond the stdlib: # HELP / # TYPE headers once per
// metric family, label escaping, and the cumulative _bucket/_sum/_count
// triplet for histograms. Errors are sticky: the first write failure is
// remembered and returned by Flush, so callers check one error at the end.
//
// The caller is responsible for keeping samples of one family contiguous
// (emit all label variants of a family before moving on), as the format
// requires; ValidateExposition enforces it.
type ExpositionWriter struct {
	w    *bufio.Writer
	err  error
	seen map[string]bool // families whose HELP/TYPE already went out
}

// NewExpositionWriter wraps w for exposition output.
func NewExpositionWriter(w io.Writer) *ExpositionWriter {
	return &ExpositionWriter{w: bufio.NewWriter(w), seen: map[string]bool{}}
}

// Counter emits one counter sample. labels are alternating key, value pairs.
func (e *ExpositionWriter) Counter(name, help string, value float64, labels ...string) {
	e.header(name, help, "counter")
	e.sample(name, labels, value)
}

// Gauge emits one gauge sample. labels are alternating key, value pairs.
func (e *ExpositionWriter) Gauge(name, help string, value float64, labels ...string) {
	e.header(name, help, "gauge")
	e.sample(name, labels, value)
}

// Histogram emits one histogram series: cumulative buckets (upper bounds in
// seconds), the mandatory +Inf bucket, _sum and _count. labels are
// alternating key, value pairs applied to every line.
func (e *ExpositionWriter) Histogram(name, help string, h HistogramSnapshot, labels ...string) {
	e.header(name, help, "histogram")
	var cum uint64
	for _, b := range h.Buckets {
		if b.Upper == histOverflow {
			break // the overflow bucket is covered by +Inf below
		}
		cum += b.Count
		le := strconv.FormatFloat(b.Upper.Seconds(), 'g', -1, 64)
		e.sample(name+"_bucket", append(append([]string{}, labels...), "le", le), float64(cum))
	}
	e.sample(name+"_bucket", append(append([]string{}, labels...), "le", "+Inf"), float64(h.Count))
	e.sample(name+"_sum", labels, h.Sum.Seconds())
	e.sample(name+"_count", labels, float64(h.Count))
}

// Flush drains the buffer and returns the first error encountered.
func (e *ExpositionWriter) Flush() error {
	if e.err == nil {
		e.err = e.w.Flush()
	}
	return e.err
}

func (e *ExpositionWriter) header(name, help string, typ string) {
	if e.seen[name] {
		return
	}
	e.seen[name] = true
	if help != "" {
		e.printf("# HELP %s %s\n", name, escapeHelp(help))
	}
	e.printf("# TYPE %s %s\n", name, typ)
}

func (e *ExpositionWriter) sample(name string, labels []string, value float64) {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("metrics: odd label list for %s: %v", name, labels))
	}
	e.printf("%s", name)
	if len(labels) > 0 {
		e.printf("{")
		for i := 0; i < len(labels); i += 2 {
			if i > 0 {
				e.printf(",")
			}
			e.printf(`%s="%s"`, labels[i], escapeLabel(labels[i+1]))
		}
		e.printf("}")
	}
	e.printf(" %s\n", formatValue(value))
}

func (e *ExpositionWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// WriteProm renders the serving counters, the three global latency
// histograms, per-quantile summary gauges, and the per-model breakdown.
func (s ServingSnapshot) WriteProm(e *ExpositionWriter) {
	const reqs = "drainnas_serving_requests_total"
	for _, o := range []struct {
		outcome string
		v       uint64
	}{
		{"accepted", s.Accepted}, {"rejected", s.Rejected}, {"canceled", s.Canceled},
		{"failed", s.Failed}, {"completed", s.Completed},
	} {
		e.Counter(reqs, "Requests by admission/lifecycle outcome.", float64(o.v), "outcome", o.outcome)
	}
	e.Counter("drainnas_serving_batches_total", "Executed batches.", float64(s.Batches))
	e.Gauge("drainnas_serving_batch_mean", "Mean executed batch size.", s.MeanBatch)
	e.Gauge("drainnas_serving_batch_max", "Largest executed batch.", float64(s.MaxBatch))
	e.Gauge("drainnas_serving_queue_depth", "Admitted-but-unfinished requests.", float64(s.QueueDepth))
	e.Gauge("drainnas_serving_queue_depth_max", "High-water mark of the admission queue.", float64(s.MaxQueueDepth))

	e.Histogram("drainnas_serving_queue_wait_seconds", "Time from admission to batch start.", s.QueueWait)
	e.Histogram("drainnas_serving_exec_seconds", "Batch forward-pass duration.", s.Exec)
	e.Histogram("drainnas_serving_latency_seconds", "End-to-end request latency (admission to response).", s.Latency)
	writeQuantileGauges(e, "drainnas_serving_latency_quantile_seconds",
		"End-to-end latency quantiles from the streaming histogram.", s.Latency)

	for _, name := range sortedModelKeys(s.PerModel) {
		m := s.PerModel[name]
		for _, o := range []struct {
			outcome string
			v       uint64
		}{{"accepted", m.Accepted}, {"completed", m.Completed}, {"failed", m.Failed}, {"canceled", m.Canceled}} {
			e.Counter("drainnas_serving_model_requests_total", "Per-model requests by outcome.",
				float64(o.v), "model", name, "outcome", o.outcome)
		}
	}
	for _, name := range sortedModelKeys(s.PerModel) {
		e.Histogram("drainnas_serving_model_latency_seconds", "Per-model end-to-end latency.",
			s.PerModel[name].Latency, "model", name)
	}
}

func writeQuantileGauges(e *ExpositionWriter, name, help string, h HistogramSnapshot) {
	for _, q := range []struct {
		label string
		ms    float64
	}{{"0.5", h.P50MS}, {"0.9", h.P90MS}, {"0.95", h.P95MS}, {"0.99", h.P99MS}} {
		e.Gauge(name, help, q.ms/1e3, "quantile", q.label)
	}
}

func sortedModelKeys(m map[string]ModelServingSnapshot) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteProm renders the routing-tier counters: request outcomes, hedging,
// per-policy decisions, per-class queue-wait/latency histograms and the
// per-replica breakdown.
func (s RouterSnapshot) WriteProm(e *ExpositionWriter) {
	const reqs = "drainnas_router_requests_total"
	for _, o := range []struct {
		outcome string
		v       uint64
	}{
		{"submitted", s.Submitted}, {"throttled", s.Throttled},
		{"no_replicas", s.NoReplicas}, {"completed", s.Completed}, {"failed", s.Failed},
	} {
		e.Counter(reqs, "Routed requests by outcome.", float64(o.v), "outcome", o.outcome)
	}
	e.Counter("drainnas_router_hedges_total", "Hedge attempts launched at straggler deadlines.", float64(s.HedgesLaunched))
	e.Counter("drainnas_router_hedge_wins_total", "Hedge attempts that beat their primary.", float64(s.HedgeWins))
	e.Counter("drainnas_router_losers_canceled_total", "Losing attempts canceled after a winner.", float64(s.LosersCanceled))
	e.Counter("drainnas_router_retries_total", "Immediate error-retries dispatched.", float64(s.Retries))

	e.Histogram("drainnas_router_decide_seconds", "Policy decision latency.", s.Decide)
	e.Histogram("drainnas_router_latency_seconds", "End-to-end latency through the router.", s.Latency)
	writeQuantileGauges(e, "drainnas_router_latency_quantile_seconds",
		"Router end-to-end latency quantiles from the streaming histogram.", s.Latency)

	for _, policy := range sortedKeys(s.PerPolicy) {
		e.Counter("drainnas_router_decisions_total", "Routing decisions by policy.",
			float64(s.PerPolicy[policy]), "policy", policy)
	}

	classes := sortedKeys(s.PerClass)
	for _, class := range classes {
		c := s.PerClass[class]
		for _, o := range []struct {
			outcome string
			v       uint64
		}{{"submitted", c.Submitted}, {"completed", c.Completed}, {"failed", c.Failed}} {
			e.Counter("drainnas_router_class_requests_total", "Per-SLO-class requests by outcome.",
				float64(o.v), "class", class, "outcome", o.outcome)
		}
	}
	for _, class := range classes {
		e.Histogram("drainnas_router_class_queue_wait_seconds", "Per-SLO-class wait at the scheduling gate.",
			s.PerClass[class].QueueWait, "class", class)
	}
	for _, class := range classes {
		e.Histogram("drainnas_router_class_latency_seconds", "Per-SLO-class end-to-end latency.",
			s.PerClass[class].Latency, "class", class)
	}

	for _, id := range sortedKeys(s.PerReplica) {
		r := s.PerReplica[id]
		for _, o := range []struct {
			outcome string
			v       uint64
		}{
			{"picked", r.Picked}, {"completed", r.Completed}, {"failed", r.Failed},
			{"hedged", r.Hedges}, {"retried", r.Retries},
		} {
			e.Counter("drainnas_router_replica_attempts_total", "Per-replica attempts by outcome.",
				float64(o.v), "replica", id, "outcome", o.outcome)
		}
	}
}

// WriteProm renders the multi-tenant edge-tier counters: the global
// unauthorized count and per-tenant request outcomes, fair-queue wait and
// end-to-end latency.
func (s TenantSnapshot) WriteProm(e *ExpositionWriter) {
	e.Counter("drainnas_tenant_unauthorized_total",
		"Requests rejected for a missing or unknown API key.", float64(s.Unauthorized))

	tenants := sortedKeys(s.PerTenant)
	for _, name := range tenants {
		t := s.PerTenant[name]
		for _, o := range []struct {
			outcome string
			v       uint64
		}{
			{"admitted", t.Admitted}, {"quota_exceeded", t.QuotaExceeded},
			{"completed", t.Completed}, {"failed", t.Failed},
		} {
			e.Counter("drainnas_tenant_requests_total", "Per-tenant requests by outcome.",
				float64(o.v), "tenant", name, "outcome", o.outcome)
		}
	}
	for _, name := range tenants {
		e.Histogram("drainnas_tenant_queue_wait_seconds", "Per-tenant wait at the weighted-fair admission gate.",
			s.PerTenant[name].QueueWait, "tenant", name)
	}
	for _, name := range tenants {
		e.Histogram("drainnas_tenant_latency_seconds", "Per-tenant end-to-end latency through the edge tier.",
			s.PerTenant[name].Latency, "tenant", name)
	}
}

// sortedKeys returns m's keys in sorted order for deterministic exposition.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteProm renders the kernel counters.
func (k KernelSnapshot) WriteProm(e *ExpositionWriter) {
	e.Counter("drainnas_kernel_gemm_calls_total", "Matrix multiplies routed to the tiled kernel.", float64(k.GemmCalls))
	e.Counter("drainnas_kernel_naive_calls_total", "Matrix multiplies kept on the naive kernel.", float64(k.NaiveCalls))
	e.Counter("drainnas_kernel_tiles_dispatched_total", "Micro-tiles handed to the micro-kernel.", float64(k.TilesDispatched))
	e.Counter("drainnas_kernel_packs_reused_total", "Packed weight panels reused instead of rebuilt.", float64(k.PacksReused))
	e.Counter("drainnas_kernel_scratch_hits_total", "Scratch-pool requests served from a pooled buffer.", float64(k.ScratchHits))
	e.Counter("drainnas_kernel_scratch_misses_total", "Scratch-pool requests that had to allocate.", float64(k.ScratchMisses))
}

// WriteProm renders the sweep counters and the trial-duration histogram.
func (s SweepSnapshot) WriteProm(e *ExpositionWriter) {
	e.Gauge("drainnas_sweep_trials_planned", "Full plan size, journal-reused trials included.", float64(s.Total))
	e.Gauge("drainnas_sweep_trials_reused", "Trials satisfied from a resumed journal.", float64(s.Reused))
	e.Gauge("drainnas_sweep_trials_remaining", "Trials not yet completed.", float64(s.Remaining))
	e.Counter("drainnas_sweep_trials_succeeded_total", "Trials that completed successfully.", float64(s.Succeeded))
	e.Counter("drainnas_sweep_trials_failed_total", "Trials that exhausted their attempts.", float64(s.Failed))
	e.Counter("drainnas_sweep_trial_retries_total", "Retries of transiently-failed trials.", float64(s.Retried))
	e.Histogram("drainnas_sweep_trial_seconds", "Wall time of completed trials.", s.Trials)
	e.Gauge("drainnas_sweep_eta_seconds", "Extrapolated remaining wall time.", s.ETA.Seconds())
}

var (
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (-?[0-9.eE+-]+|[+-]Inf|NaN)( [0-9]+)?$`)
	promLabelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$`)
)

// ValidateExposition checks r for text-exposition well-formedness: line
// grammar, TYPE/HELP placement (at most one per family, before its samples),
// family contiguity, and — for histogram-typed families — cumulative
// non-decreasing buckets with increasing le, a +Inf bucket, and agreement
// between the +Inf bucket and _count. It is the checker behind
// `make obs-smoke`; it accepts everything ExpositionWriter produces.
func ValidateExposition(r io.Reader) error {
	types := map[string]string{}
	helped := map[string]bool{}
	closed := map[string]bool{} // families we've moved past
	var cur string              // family of the current contiguous block

	type histState struct {
		lastLE     float64
		lastCum    float64
		infCount   float64
		sawInf     bool
		bucketSeen bool
	}
	// Histogram bucket invariants hold per series (family + label set minus
	// le), not per family: per-model histograms restart le from the bottom
	// for each model label.
	hists := map[string]map[string]*histState{}

	finish := func(fam string) error {
		if fam == "" {
			return nil
		}
		closed[fam] = true
		if types[fam] == "histogram" {
			series := hists[fam]
			if len(series) == 0 {
				return fmt.Errorf("histogram %s: no buckets", fam)
			}
			for key, h := range series {
				if !h.sawInf {
					return fmt.Errorf("histogram %s{%s}: missing +Inf bucket", fam, key)
				}
			}
		}
		return nil
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.SplitN(text, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			fam := fields[2]
			if closed[fam] {
				return fmt.Errorf("line %d: %s for family %s after its samples ended", line, fields[1], fam)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE line", line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", line, fields[3])
				}
				if _, dup := types[fam]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", line, fam)
				}
				if cur != "" && cur != fam {
					if err := finish(cur); err != nil {
						return err
					}
				}
				types[fam] = fields[3]
				cur = fam
			} else {
				if helped[fam] {
					return fmt.Errorf("line %d: duplicate HELP for %s", line, fam)
				}
				helped[fam] = true
			}
			continue
		}
		m := promSampleRe.FindStringSubmatch(text)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample %q", line, text)
		}
		name, labels, value := m[1], m[3], m[4]
		if value != "+Inf" && value != "-Inf" && value != "NaN" {
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				return fmt.Errorf("line %d: bad value %q", line, value)
			}
		}
		if labels != "" {
			for _, pair := range splitLabels(labels) {
				if !promLabelRe.MatchString(pair) {
					return fmt.Errorf("line %d: malformed label %q", line, pair)
				}
			}
		}
		fam := sampleFamily(name, types)
		if closed[fam] {
			return fmt.Errorf("line %d: family %s interleaved (samples resumed after another family)", line, fam)
		}
		if cur != "" && cur != fam {
			if err := finish(cur); err != nil {
				return err
			}
		}
		cur = fam
		if types[fam] == "histogram" {
			if hists[fam] == nil {
				hists[fam] = map[string]*histState{}
			}
			key := stripLabel(labels, "le")
			h := hists[fam][key]
			if h == nil {
				h = &histState{lastLE: math.Inf(-1)}
				hists[fam][key] = h
			}
			switch {
			case name == fam+"_bucket":
				le, ok := labelValue(labels, "le")
				if !ok {
					return fmt.Errorf("line %d: %s_bucket without le label", line, fam)
				}
				leV := parseLE(le)
				if math.IsNaN(leV) {
					return fmt.Errorf("line %d: bad le %q", line, le)
				}
				v := parseValue(value)
				if h.bucketSeen && leV <= h.lastLE {
					return fmt.Errorf("line %d: %s buckets not in increasing le order", line, fam)
				}
				if h.bucketSeen && v < h.lastCum {
					return fmt.Errorf("line %d: %s bucket counts not cumulative", line, fam)
				}
				h.lastLE, h.lastCum, h.bucketSeen = leV, v, true
				if math.IsInf(leV, 1) {
					h.sawInf, h.infCount = true, v
				}
			case name == fam+"_count":
				if h.sawInf && parseValue(value) != h.infCount {
					return fmt.Errorf("line %d: %s_count %s != +Inf bucket %v", line, fam, value, h.infCount)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return finish(cur)
}

// sampleFamily strips the histogram/summary child suffix when the base name
// has a declared TYPE.
func sampleFamily(name string, types map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, found := strings.CutSuffix(name, suffix)
		if !found {
			continue
		}
		if t, ok := types[base]; ok && (t == "histogram" || t == "summary") {
			return base
		}
	}
	return name
}

func splitLabels(s string) []string {
	// Split on commas not inside a quoted value. Label values may contain
	// escaped quotes, so track the escape state.
	var out []string
	var cur strings.Builder
	inQuote, escaped := false, false
	for _, r := range s {
		switch {
		case escaped:
			escaped = false
		case r == '\\' && inQuote:
			escaped = true
		case r == '"':
			inQuote = !inQuote
		case r == ',' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
			continue
		}
		cur.WriteRune(r)
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

// stripLabel removes one label pair from a raw label string, yielding the
// series identity used for per-series histogram checks.
func stripLabel(labels, key string) string {
	var kept []string
	for _, pair := range splitLabels(labels) {
		if k, _, ok := strings.Cut(pair, "="); !ok || k != key {
			kept = append(kept, pair)
		}
	}
	return strings.Join(kept, ",")
}

func labelValue(labels, key string) (string, bool) {
	for _, pair := range splitLabels(labels) {
		k, v, ok := strings.Cut(pair, "=")
		if ok && k == key {
			return strings.Trim(v, `"`), true
		}
	}
	return "", false
}

func parseLE(s string) float64 {
	if s == "+Inf" {
		return math.Inf(1)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return math.NaN()
	}
	return v
}

func parseValue(s string) float64 {
	switch s {
	case "+Inf":
		return math.Inf(1)
	case "-Inf":
		return math.Inf(-1)
	case "NaN":
		return math.NaN()
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return math.NaN()
	}
	return v
}
