package metrics

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a streaming latency histogram over fixed log-spaced buckets:
// 1µs to ~380s at √2 spacing plus an overflow bucket. Recording is lock-free
// — one binary search over 58 precomputed bounds and four atomic adds, never
// an allocation — so the serving hot path can afford an Observe per request
// phase. Snapshot derives count, sum, mean, exact max and interpolated
// p50/p90/p95/p99 from the bucket counts; the same buckets feed the
// Prometheus exposition writer (see prom.go).
//
// The zero value is ready to use; all methods are safe for concurrent use
// and no-ops on a nil receiver.
type Histogram struct {
	counts [histBuckets + 1]atomic.Uint64 // [histBuckets] = overflow
	sum    atomic.Int64
	max    atomic.Int64
	// minP1 stores the exact observed minimum plus one, so the zero value
	// means "nothing observed yet" and a genuine 0ns observation (clamped
	// clock skew) is still representable as 1.
	minP1 atomic.Int64
}

// histBuckets bounds the resolution: √2-spaced from 1µs, so two buckets per
// octave and a worst-case quantile quantization of ~41% before
// interpolation — plenty for "is p99 8ms or 80ms" on serving latencies.
const histBuckets = 58

// histOverflow marks the overflow bucket's upper bound in snapshots.
const histOverflow = time.Duration(math.MaxInt64)

var histBounds [histBuckets]time.Duration

func init() {
	histBounds[0] = time.Microsecond
	histBounds[1] = 1414 * time.Nanosecond // 1µs·√2, then exact doubling
	for i := 2; i < histBuckets; i++ {
		histBounds[i] = 2 * histBounds[i-2]
	}
}

// NewHistogram returns an empty histogram. The zero value is equally usable;
// the constructor exists for call sites that want a pointer in one step.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one duration. Negative durations (clock skew) clamp to 0.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	i := sort.Search(histBuckets, func(i int) bool { return d <= histBounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.minP1.Load()
		if (cur != 0 && int64(d)+1 >= cur) || h.minP1.CompareAndSwap(cur, int64(d)+1) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// HistogramBucket is one non-empty bucket of a snapshot: observations d with
// Lower < d ≤ Upper. The overflow bucket reports Upper == math.MaxInt64.
type HistogramBucket struct {
	Lower time.Duration `json:"lower_ns"`
	Upper time.Duration `json:"upper_ns"`
	Count uint64        `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram with the derived
// summaries a dashboard wants. Count is the sum of the bucket counts, so
// count and buckets are mutually consistent even under concurrent Observes
// (sum and max are read separately and may lag by an in-flight observation).
type HistogramSnapshot struct {
	Count uint64        `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	Min   time.Duration `json:"min_ns"`
	Max   time.Duration `json:"max_ns"`

	MeanMS float64 `json:"mean_ms"`
	MinMS  float64 `json:"min_ms"`
	MaxMS  float64 `json:"max_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`

	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot returns a consistent copy of the bucket counts with derived
// quantiles.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	snap := HistogramSnapshot{
		Sum: time.Duration(h.sum.Load()),
		Max: time.Duration(h.max.Load()),
	}
	if mp1 := h.minP1.Load(); mp1 > 0 {
		snap.Min = time.Duration(mp1 - 1)
	}
	lower := time.Duration(0)
	for i := 0; i <= histBuckets; i++ {
		upper := histOverflow
		if i < histBuckets {
			upper = histBounds[i]
		}
		if c := h.counts[i].Load(); c > 0 {
			snap.Buckets = append(snap.Buckets, HistogramBucket{Lower: lower, Upper: upper, Count: c})
			snap.Count += c
		}
		lower = upper
	}
	if snap.Count > 0 {
		snap.MeanMS = ms(snap.Sum) / float64(snap.Count)
		snap.MinMS = ms(snap.Min)
		snap.MaxMS = ms(snap.Max)
		snap.P50MS = ms(snap.Quantile(0.50))
		snap.P90MS = ms(snap.Quantile(0.90))
		snap.P95MS = ms(snap.Quantile(0.95))
		snap.P99MS = ms(snap.Quantile(0.99))
	}
	return snap
}

// Quantile estimates the p-quantile (p in [0, 1]) by linear interpolation
// within the covering bucket, clamped to the exact observed [minimum,
// maximum]. Without the lower clamp, small p reported the covering bucket's
// lower bound — a latency below every observed sample (p=0 on a
// single-sample histogram invented a value that never happened), which
// skewed simulator calibration against measured histograms. Returns 0 for
// an empty snapshot.
func (s HistogramSnapshot) Quantile(p float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(s.Count)
	var cum uint64
	for _, b := range s.Buckets {
		if float64(cum+b.Count) >= rank {
			lo, hi := b.Lower, b.Upper
			if lo < s.Min {
				lo = s.Min
			}
			if hi > s.Max {
				hi = s.Max
			}
			if hi <= lo {
				return hi
			}
			frac := (rank - float64(cum)) / float64(b.Count)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum += b.Count
	}
	return s.Max
}
