package metrics

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTenantStatsLifecycle(t *testing.T) {
	s := &TenantStats{}
	s.Unauthorized()
	s.Unauthorized()
	s.Admitted("acme")
	s.Completed("acme", time.Millisecond, 5*time.Millisecond)
	s.Admitted("acme")
	s.Failed("acme", time.Millisecond, 2*time.Millisecond)
	s.QuotaExceeded("noisy")
	s.Admitted("noisy")
	s.Completed("noisy", 2*time.Millisecond, 9*time.Millisecond)

	snap := s.Snapshot()
	if snap.Unauthorized != 2 {
		t.Fatalf("unauthorized %d, want 2", snap.Unauthorized)
	}
	acme, noisy := snap.PerTenant["acme"], snap.PerTenant["noisy"]
	if acme.Admitted != 2 || acme.Completed != 1 || acme.Failed != 1 || acme.QuotaExceeded != 0 {
		t.Fatalf("acme %+v", acme)
	}
	if noisy.Admitted != 1 || noisy.QuotaExceeded != 1 || noisy.Completed != 1 {
		t.Fatalf("noisy %+v", noisy)
	}
	if acme.Latency.Count != 2 || acme.QueueWait.Count != 2 {
		t.Fatalf("acme histograms: lat=%d wait=%d, want 2/2", acme.Latency.Count, acme.QueueWait.Count)
	}
	if noisy.Latency.Max != 9*time.Millisecond {
		t.Fatalf("noisy latency max %v", noisy.Latency.Max)
	}
	if str := snap.String(); !strings.Contains(str, "unauth=2") {
		t.Fatalf("snapshot string %q", str)
	}
}

// TestTenantStatsCapOverflow pins the anti-growth cap, mirroring the
// per-model maxTrackedModels tests: tenants beyond the cap blend into the
// overflow key and the map never grows past cap+1.
func TestTenantStatsCapOverflow(t *testing.T) {
	s := &TenantStats{}
	for i := 0; i < maxTrackedTenants+50; i++ {
		name := fmt.Sprintf("tenant-%d", i)
		s.Admitted(name)
		s.QuotaExceeded(name)
	}
	snap := s.Snapshot()
	if len(snap.PerTenant) != maxTrackedTenants+1 {
		t.Fatalf("per-tenant map has %d entries, want cap %d + overflow", len(snap.PerTenant), maxTrackedTenants)
	}
	over, ok := snap.PerTenant[OverflowTenantKey]
	if !ok || over.Admitted != 50 || over.QuotaExceeded != 50 {
		t.Fatalf("overflow bucket %+v (present=%v), want 50 admitted + 50 quota-rejected", over, ok)
	}
	// A tenant tracked before the cap keeps its own counters.
	first := snap.PerTenant["tenant-0"]
	if first.Admitted != 1 {
		t.Fatalf("pre-cap tenant lost its counters: %+v", first)
	}
	// Histograms blend into the overflow key the same way.
	s.Completed("tenant-9999", time.Millisecond, time.Millisecond)
	snap = s.Snapshot()
	if got := snap.PerTenant[OverflowTenantKey].Latency.Count; got != 1 {
		t.Fatalf("overflow latency count %d, want 1", got)
	}
}

func TestTenantStatsNilReceiverIsSafe(t *testing.T) {
	var s *TenantStats
	s.Unauthorized()
	s.Admitted("x")
	s.QuotaExceeded("x")
	s.Completed("x", time.Millisecond, time.Millisecond)
	s.Failed("x", time.Millisecond, time.Millisecond)
	if snap := s.Snapshot(); snap.Unauthorized != 0 || len(snap.PerTenant) != 0 {
		t.Fatalf("nil snapshot %+v", snap)
	}
}

func TestTenantStatsConcurrent(t *testing.T) {
	s := &TenantStats{}
	const goroutines = 8
	const per = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("t%d", g%3)
			for i := 0; i < per; i++ {
				s.Admitted(name)
				if i%2 == 0 {
					s.Completed(name, time.Microsecond, 2*time.Microsecond)
				} else {
					s.Failed(name, time.Microsecond, time.Microsecond)
				}
				_ = s.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	snap := s.Snapshot()
	var admitted, done uint64
	for _, c := range snap.PerTenant {
		admitted += c.Admitted
		done += c.Completed + c.Failed
	}
	if admitted != goroutines*per || done != admitted {
		t.Fatalf("accounting broken: admitted=%d done=%d want %d", admitted, done, goroutines*per)
	}
}

// TestTenantSnapshotWriteProm holds the tenant families to the exposition
// validator and pins the family names the README documents.
func TestTenantSnapshotWriteProm(t *testing.T) {
	s := &TenantStats{}
	s.Unauthorized()
	s.Admitted("acme")
	s.Completed("acme", time.Millisecond, 3*time.Millisecond)
	s.QuotaExceeded("noisy")

	var buf bytes.Buffer
	e := NewExpositionWriter(&buf)
	s.Snapshot().WriteProm(e)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	page := buf.Bytes()
	if err := ValidateExposition(bytes.NewReader(page)); err != nil {
		t.Fatalf("tenant exposition invalid: %v\n%s", err, page)
	}
	for _, want := range []string{
		"drainnas_tenant_unauthorized_total 1",
		`drainnas_tenant_requests_total{tenant="acme",outcome="completed"} 1`,
		`drainnas_tenant_requests_total{tenant="noisy",outcome="quota_exceeded"} 1`,
		`drainnas_tenant_queue_wait_seconds_bucket{tenant="acme",`,
		`drainnas_tenant_latency_seconds_count{tenant="noisy"} 0`,
	} {
		if !bytes.Contains(page, []byte(want)) {
			t.Fatalf("exposition missing %q:\n%s", want, page)
		}
	}
}
