// Package metrics provides binary-classification evaluation beyond plain
// accuracy — precision, recall, F1, ROC-AUC and the reliability-oriented
// summaries a hydrography user needs before trusting a drainage-crossing
// detector ("did we miss culverts?" is a recall question, not an accuracy
// question).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Confusion is a binary confusion matrix with the positive class = 1.
type Confusion struct {
	TP, FP, TN, FN int
}

// ConfusionFromPredictions tallies predictions against labels.
func ConfusionFromPredictions(preds, labels []int) Confusion {
	if len(preds) != len(labels) {
		panic(fmt.Sprintf("metrics: %d predictions vs %d labels", len(preds), len(labels)))
	}
	var c Confusion
	for i, p := range preds {
		switch {
		case p == 1 && labels[i] == 1:
			c.TP++
		case p == 1 && labels[i] == 0:
			c.FP++
		case p == 0 && labels[i] == 0:
			c.TN++
		default:
			c.FN++
		}
	}
	return c
}

// Total returns the sample count.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Accuracy returns (TP+TN)/total; 0 for an empty matrix.
func (c Confusion) Accuracy() float64 {
	n := c.Total()
	if n == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(n)
}

// Precision returns TP/(TP+FP); 0 when nothing was predicted positive.
func (c Confusion) Precision() float64 {
	d := c.TP + c.FP
	if d == 0 {
		return 0
	}
	return float64(c.TP) / float64(d)
}

// Recall returns TP/(TP+FN); 0 when there are no positives.
func (c Confusion) Recall() float64 {
	d := c.TP + c.FN
	if d == 0 {
		return 0
	}
	return float64(c.TP) / float64(d)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// MCC returns the Matthews correlation coefficient, the balanced
// single-number summary robust to class skew.
func (c Confusion) MCC() float64 {
	tp, fp, tn, fn := float64(c.TP), float64(c.FP), float64(c.TN), float64(c.FN)
	den := math.Sqrt((tp + fp) * (tp + fn) * (tn + fp) * (tn + fn))
	if den == 0 {
		return 0
	}
	return (tp*tn - fp*fn) / den
}

// String renders the matrix compactly.
func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d TN=%d FN=%d", c.TP, c.FP, c.TN, c.FN)
}

// ROCAUC computes the area under the ROC curve from positive-class scores
// (higher score = more positive) via the rank statistic (equivalent to the
// Mann–Whitney U), with midrank handling of ties. Returns 0.5 when a class
// is absent.
func ROCAUC(scores []float64, labels []int) float64 {
	if len(scores) != len(labels) {
		panic(fmt.Sprintf("metrics: %d scores vs %d labels", len(scores), len(labels)))
	}
	n := len(scores)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return scores[order[a]] < scores[order[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && scores[order[j+1]] == scores[order[i]] {
			j++
		}
		mid := float64(i+j)/2 + 1 // midrank, 1-based
		for k := i; k <= j; k++ {
			ranks[order[k]] = mid
		}
		i = j + 1
	}
	var rankSumPos float64
	var nPos, nNeg int
	for i, l := range labels {
		if l == 1 {
			rankSumPos += ranks[i]
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	u := rankSumPos - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg))
}

// ROCPoint is one (FPR, TPR) point of the ROC curve.
type ROCPoint struct {
	FPR, TPR  float64
	Threshold float64
}

// ROCCurve returns the ROC curve points sweeping the threshold from +inf
// down, starting at (0,0) and ending at (1,1).
func ROCCurve(scores []float64, labels []int) []ROCPoint {
	n := len(scores)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return scores[order[a]] > scores[order[b]] })
	var nPos, nNeg int
	for _, l := range labels {
		if l == 1 {
			nPos++
		} else {
			nNeg++
		}
	}
	curve := []ROCPoint{{FPR: 0, TPR: 0, Threshold: math.Inf(1)}}
	tp, fp := 0, 0
	for i := 0; i < n; {
		j := i
		thr := scores[order[i]]
		for j < n && scores[order[j]] == thr {
			if labels[order[j]] == 1 {
				tp++
			} else {
				fp++
			}
			j++
		}
		pt := ROCPoint{Threshold: thr}
		if nPos > 0 {
			pt.TPR = float64(tp) / float64(nPos)
		}
		if nNeg > 0 {
			pt.FPR = float64(fp) / float64(nNeg)
		}
		curve = append(curve, pt)
		i = j
	}
	return curve
}

// Report is the full evaluation summary of a classifier on a dataset.
type Report struct {
	Confusion Confusion
	Accuracy  float64
	Precision float64
	Recall    float64
	F1        float64
	MCC       float64
	AUC       float64
}

// Evaluate builds the full report from positive-class scores and labels,
// thresholding scores at 0.5 for the confusion-based metrics (suitable for
// probabilities) unless a different threshold is given.
func Evaluate(scores []float64, labels []int, threshold float64) Report {
	preds := make([]int, len(scores))
	for i, s := range scores {
		if s >= threshold {
			preds[i] = 1
		}
	}
	c := ConfusionFromPredictions(preds, labels)
	return Report{
		Confusion: c,
		Accuracy:  c.Accuracy(),
		Precision: c.Precision(),
		Recall:    c.Recall(),
		F1:        c.F1(),
		MCC:       c.MCC(),
		AUC:       ROCAUC(scores, labels),
	}
}

// String renders the report on one line.
func (r Report) String() string {
	return fmt.Sprintf("acc=%.3f prec=%.3f rec=%.3f f1=%.3f mcc=%.3f auc=%.3f (%s)",
		r.Accuracy, r.Precision, r.Recall, r.F1, r.MCC, r.AUC, r.Confusion)
}
