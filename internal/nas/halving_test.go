package nas

import (
	"testing"

	"drainnas/internal/resnet"
	"drainnas/internal/surrogate"
)

func TestSurrogateBudgetSemantics(t *testing.T) {
	eval := SurrogateEvaluator{Model: surrogate.Default()}
	cfg := resnet.StockResNet18(5, 8)
	full, err := eval.EvaluateWithBudget(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := eval.Evaluate(cfg)
	if full != plain {
		t.Fatal("budget 1 must equal the full evaluation")
	}
	quarter, err := eval.EvaluateWithBudget(cfg, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if quarter >= full {
		t.Fatalf("partial budget %v not below full %v (underfit penalty missing)", quarter, full)
	}
	// Deterministic per (trial, rung).
	q2, _ := eval.EvaluateWithBudget(cfg, 0.25)
	if quarter != q2 {
		t.Fatal("budgeted evaluation not deterministic")
	}
	// Invalid budgets rejected.
	if _, err := eval.EvaluateWithBudget(cfg, 0); err == nil {
		t.Fatal("budget 0 accepted")
	}
	if _, err := eval.EvaluateWithBudget(cfg, 1.5); err == nil {
		t.Fatal("budget > 1 accepted")
	}
}

func TestSuccessiveHalvingFindsNearGridBest(t *testing.T) {
	space := PaperSpace()
	combo := InputCombo{Channels: 7, Batch: 16}
	configs := space.Enumerate(combo)
	eval := SurrogateEvaluator{Model: surrogate.Default()}

	sh, err := SuccessiveHalving(configs, eval, SHOptions{Eta: 2, MinBudget: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(sh.Survivors) == 0 {
		t.Fatal("no survivors")
	}
	// SH must be substantially cheaper than the 288 full evaluations of
	// grid search.
	if sh.TotalBudget >= float64(len(configs)) {
		t.Fatalf("SH budget %.1f not below grid budget %d", sh.TotalBudget, len(configs))
	}
	// And land within 1 point of the grid optimum.
	gridResults := Experiment(configs, eval, ExperimentOptions{})
	gridBest, _ := BestByAccuracy(gridResults)
	shBest := sh.Survivors[0].Accuracy
	if shBest < gridBest.Accuracy-1.0 {
		t.Fatalf("SH best %.2f vs grid best %.2f (budget %.1f)", shBest, gridBest.Accuracy, sh.TotalBudget)
	}
	// Rounds shrink the candidate pool monotonically.
	for i := 1; i < len(sh.Rounds); i++ {
		if sh.Rounds[i].Candidates > sh.Rounds[i-1].Candidates {
			t.Fatalf("round %d grew: %+v", i, sh.Rounds)
		}
		if sh.Rounds[i].Budget < sh.Rounds[i-1].Budget {
			t.Fatalf("round %d budget fell: %+v", i, sh.Rounds)
		}
	}
}

func TestSuccessiveHalvingSurvivorsSorted(t *testing.T) {
	configs := PaperSpace().Enumerate(InputCombo{5, 8})[:32]
	eval := SurrogateEvaluator{Model: surrogate.Default()}
	sh, err := SuccessiveHalving(configs, eval, SHOptions{Eta: 4, MinBudget: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sh.Survivors); i++ {
		if sh.Survivors[i].Accuracy > sh.Survivors[i-1].Accuracy {
			t.Fatal("survivors not sorted by accuracy")
		}
	}
}

func TestSuccessiveHalvingEmptyInput(t *testing.T) {
	eval := SurrogateEvaluator{Model: surrogate.Default()}
	if _, err := SuccessiveHalving(nil, eval, SHOptions{}); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestTrainEvaluatorBudgetScalesEpochs(t *testing.T) {
	// Structure-only check (no training): invalid budgets rejected,
	// valid ones accepted by the scaling wrapper before data validation.
	eval := TrainEvaluator{}
	if _, err := eval.EvaluateWithBudget(resnet.StockResNet18(5, 8), -1); err == nil {
		t.Fatal("negative budget accepted")
	}
	// With a valid budget the evaluator proceeds to dataset validation and
	// fails there (no dataset), proving the budget path was taken.
	if _, err := eval.EvaluateWithBudget(resnet.StockResNet18(5, 8), 0.5); err == nil {
		t.Fatal("expected dataset error")
	}
}
