package nas

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"drainnas/internal/dataset"
	"drainnas/internal/geodata"
	"drainnas/internal/resnet"
	"drainnas/internal/surrogate"
)

func TestPaperSpaceCounts(t *testing.T) {
	sp := PaperSpace()
	if sp.RawSize() != 288 {
		t.Fatalf("raw size %d, want 288 (paper §3.2)", sp.RawSize())
	}
	combos := PaperInputCombos()
	if len(combos) != 6 {
		t.Fatalf("%d input combos, want 6", len(combos))
	}
	all := sp.EnumerateAll(combos)
	if len(all) != 1728 {
		t.Fatalf("raw trials %d, want 1728", len(all))
	}
	for _, c := range all {
		if err := c.Validate(); err != nil {
			t.Fatalf("invalid enumerated config: %v", err)
		}
	}
}

func TestAttritionReproduces1717(t *testing.T) {
	sp := PaperSpace()
	all := sp.EnumerateAll(PaperInputCombos())
	valid, failed := ValidTrials(all)
	if len(valid) != PaperValidTrialCount {
		t.Fatalf("valid trials %d, want %d", len(valid), PaperValidTrialCount)
	}
	if len(failed) != 11 {
		t.Fatalf("failed trials %d, want 11", len(failed))
	}
	// Determinism.
	valid2, _ := ValidTrials(all)
	if len(valid2) != len(valid) {
		t.Fatal("attrition not deterministic")
	}
}

func TestUniqueConfigsCollapsesNoPool(t *testing.T) {
	sp := PaperSpace()
	one := sp.Enumerate(InputCombo{Channels: 5, Batch: 8})
	uniq := UniqueConfigs(one)
	// Per combo: pool configs 2*2*3*2*2*3=144 distinct; no-pool collapse
	// 4 pool-axis variants into one → 36 distinct. Total 180.
	if len(uniq) != 180 {
		t.Fatalf("unique configs %d, want 180", len(uniq))
	}
}

func TestEnumerateDeterministicOrder(t *testing.T) {
	sp := PaperSpace()
	a := sp.Enumerate(InputCombo{5, 8})
	b := sp.Enumerate(InputCombo{5, 8})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("enumeration order not deterministic")
		}
	}
}

func TestDescribeMentionsAxes(t *testing.T) {
	d := PaperSpace().Describe()
	for _, want := range []string{"kernel_size", "stride", "padding", "pool_choice", "initial_output_feature", "288"} {
		if !strings.Contains(d, want) {
			t.Fatalf("Describe missing %q:\n%s", want, d)
		}
	}
}

func TestSurrogateExperimentFullSweep(t *testing.T) {
	sp := PaperSpace()
	all := sp.EnumerateAll(PaperInputCombos())
	eval := SurrogateEvaluator{Model: surrogate.Default()}
	results := Experiment(all, eval, ExperimentOptions{SimulateAttrition: true})
	if len(results) != 1728 {
		t.Fatalf("results %d", len(results))
	}
	ok := Succeeded(results)
	if len(ok) != PaperValidTrialCount {
		t.Fatalf("valid outcomes %d, want %d", len(ok), PaperValidTrialCount)
	}
	best, found := BestByAccuracy(results)
	if !found || best.Accuracy < 94 {
		t.Fatalf("best accuracy %.2f", best.Accuracy)
	}
	// The best model should use a 3×3 kernel, mirroring the paper's Table 4.
	if best.Config.KernelSize != 3 {
		t.Fatalf("best config kernel %d, paper's non-dominated all use 3", best.Config.KernelSize)
	}
}

func TestExperimentResultsInInputOrder(t *testing.T) {
	sp := PaperSpace()
	cfgs := sp.Enumerate(InputCombo{5, 8})[:20]
	eval := SurrogateEvaluator{Model: surrogate.Default()}
	results := Experiment(cfgs, eval, ExperimentOptions{Workers: 4})
	for i, r := range results {
		if r.ID != i {
			t.Fatalf("result %d has ID %d", i, r.ID)
		}
		if r.Config != cfgs[i] {
			t.Fatalf("result %d config mismatch", i)
		}
	}
}

func TestExperimentProgressCallback(t *testing.T) {
	cfgs := PaperSpace().Enumerate(InputCombo{5, 8})[:10]
	eval := SurrogateEvaluator{Model: surrogate.Default()}
	calls := 0
	Experiment(cfgs, eval, ExperimentOptions{Workers: 1, Progress: func(done, total int) {
		calls++
		if total != 10 {
			t.Fatalf("total %d", total)
		}
	}})
	if calls != 10 {
		t.Fatalf("progress called %d times", calls)
	}
}

func TestExperimentRecordsEvaluatorErrors(t *testing.T) {
	bad := resnet.Config{} // invalid
	eval := SurrogateEvaluator{Model: surrogate.Default()}
	results := Experiment([]resnet.Config{bad}, eval, ExperimentOptions{})
	if results[0].Status != TrialFailed || results[0].Err == "" {
		t.Fatalf("invalid config should fail: %+v", results[0])
	}
}

func TestJournalRoundTrip(t *testing.T) {
	cfgs := PaperSpace().Enumerate(InputCombo{7, 16})[:5]
	eval := SurrogateEvaluator{Model: surrogate.Default()}
	results := Experiment(cfgs, eval, ExperimentOptions{})
	var buf bytes.Buffer
	if err := WriteJournal(&buf, results); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(results) {
		t.Fatalf("round trip %d vs %d", len(back), len(results))
	}
	for i := range back {
		if back[i].Accuracy != results[i].Accuracy || back[i].Config != results[i].Config {
			t.Fatalf("trial %d mismatch", i)
		}
	}
}

func TestRandomStrategySamplesDistinct(t *testing.T) {
	s := RandomStrategy{N: 50, Seed: 1}
	cfgs := s.Select(PaperSpace(), InputCombo{5, 8})
	if len(cfgs) != 50 {
		t.Fatalf("sampled %d", len(cfgs))
	}
	seen := map[resnet.Config]bool{}
	for _, c := range cfgs {
		if seen[c] {
			t.Fatal("duplicate raw sample")
		}
		seen[c] = true
	}
	// Oversampling returns the whole space.
	s2 := RandomStrategy{N: 10_000, Seed: 1}
	if got := len(s2.Select(PaperSpace(), InputCombo{5, 8})); got != 288 {
		t.Fatalf("oversample returned %d", got)
	}
}

func TestEvolutionStrategyFindsGoodConfigs(t *testing.T) {
	eval := SurrogateEvaluator{Model: surrogate.Default()}
	evo := EvolutionStrategy{Population: 12, Cycles: 120, SampleSize: 3, Seed: 5, Evaluator: eval}
	combo := InputCombo{7, 16}
	visited := evo.Select(PaperSpace(), combo)
	if len(visited) < 20 {
		t.Fatalf("evolution visited only %d configs", len(visited))
	}
	// Evolution must reach an accuracy close to the grid optimum while
	// visiting far fewer configurations than the grid.
	if len(visited) >= 288 {
		t.Fatalf("evolution visited %d — no better than grid", len(visited))
	}
	results := Experiment(visited, eval, ExperimentOptions{})
	best, _ := BestByAccuracy(results)
	gridResults := Experiment(PaperSpace().Enumerate(combo), eval, ExperimentOptions{})
	gridBest, _ := BestByAccuracy(gridResults)
	if best.Accuracy < gridBest.Accuracy-1.0 {
		t.Fatalf("evolution best %.2f vs grid best %.2f", best.Accuracy, gridBest.Accuracy)
	}
}

func TestEvolutionConfigsStayInSpace(t *testing.T) {
	f := func(seed uint64) bool {
		eval := SurrogateEvaluator{Model: surrogate.Default()}
		evo := EvolutionStrategy{Population: 6, Cycles: 20, Seed: seed, Evaluator: eval}
		sp := PaperSpace()
		in := func(v int, vals []int) bool {
			for _, x := range vals {
				if x == v {
					return true
				}
			}
			return false
		}
		for _, c := range evo.Select(sp, InputCombo{5, 8}) {
			if !in(c.KernelSize, sp.KernelSizes) || !in(c.Stride, sp.Strides) ||
				!in(c.Padding, sp.Paddings) || !in(c.InitialOutputFeature, sp.InitialFeatures) {
				return false
			}
			if c.Channels != 5 || c.Batch != 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestTopK(t *testing.T) {
	results := []TrialResult{
		{Status: TrialSucceeded, Accuracy: 90},
		{Status: TrialFailed, Accuracy: 0},
		{Status: TrialSucceeded, Accuracy: 95},
		{Status: TrialSucceeded, Accuracy: 92},
	}
	top := TopK(results, 2)
	if len(top) != 2 || top[0].Accuracy != 95 || top[1].Accuracy != 92 {
		t.Fatalf("TopK: %+v", top)
	}
	if got := TopK(results, 10); len(got) != 3 {
		t.Fatalf("TopK overflow: %d", len(got))
	}
}

func TestTrainEvaluatorLearnsRealCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("real training is slow")
	}
	// A miniature corpus at small chip size; the evaluator must clear
	// chance level by a solid margin.
	corpus := geodata.GenerateCorpus(geodata.CorpusOptions{ChipSize: 32, Scale: 80, Seed: 11})
	x, labels := corpus.Tensors(5)
	data := dataset.New(x, labels)
	eval := TrainEvaluator{Data: data, Opts: TrainOptions{
		Epochs: 3, Folds: 3, LR: 0.02, Momentum: 0.9, WeightDecay: 1e-4, Seed: 7,
	}}
	cfg := resnet.Config{Channels: 5, Batch: 8, KernelSize: 3, Stride: 2, Padding: 1,
		PoolChoice: 0, InitialOutputFeature: 16, NumClasses: 2}
	acc, err := eval.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 65 {
		t.Fatalf("train evaluator accuracy %.1f%%, want > 65%% (chance = 50%%)", acc)
	}
}

func TestTrainEvaluatorRejectsChannelMismatch(t *testing.T) {
	corpus := geodata.GenerateCorpus(geodata.CorpusOptions{ChipSize: 16, Scale: 800, Seed: 1})
	x, labels := corpus.Tensors(5)
	eval := TrainEvaluator{Data: dataset.New(x, labels), Opts: DefaultTrainOptions()}
	cfg := resnet.StockResNet18(7, 8)
	if _, err := eval.Evaluate(cfg); err == nil {
		t.Fatal("expected channel mismatch error")
	}
}

func TestResumeExperimentReusesJournal(t *testing.T) {
	cfgs := PaperSpace().Enumerate(InputCombo{5, 8})[:30]
	eval := SurrogateEvaluator{Model: surrogate.Default()}
	full := Experiment(cfgs, eval, ExperimentOptions{})

	// Simulate an interruption: keep the first 12 outcomes and mark two of
	// them failed (failures must re-run).
	journal := append([]TrialResult{}, full[:12]...)
	journal[3].Status = TrialFailed
	journal[7].Status = TrialFailed

	remaining, completed := FilterCompleted(cfgs, journal)
	if len(completed) != 10 {
		t.Fatalf("completed %d, want 10", len(completed))
	}
	if len(remaining) != 20 {
		t.Fatalf("remaining %d, want 20", len(remaining))
	}

	evalCount := 0
	counting := countingEvaluator{inner: eval, count: &evalCount}
	resumed := ResumeExperiment(cfgs, journal, counting, ExperimentOptions{Workers: 1})
	if evalCount != 20 {
		t.Fatalf("resume evaluated %d trials, want 20", evalCount)
	}
	if len(resumed) != len(full) {
		t.Fatalf("resumed %d results", len(resumed))
	}
	for i := range resumed {
		if resumed[i].ID != i || resumed[i].Config != cfgs[i] {
			t.Fatalf("result %d out of order", i)
		}
		if resumed[i].Status != TrialSucceeded {
			t.Fatalf("result %d not succeeded", i)
		}
		if resumed[i].Accuracy != full[i].Accuracy {
			t.Fatalf("result %d accuracy %v vs %v", i, resumed[i].Accuracy, full[i].Accuracy)
		}
	}
}

type countingEvaluator struct {
	inner Evaluator
	count *int
}

func (c countingEvaluator) Evaluate(cfg resnet.Config) (float64, error) {
	*c.count++
	return c.inner.Evaluate(cfg)
}

func TestParallelFoldsMatchSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("real training is slow")
	}
	corpus := geodata.GenerateCorpus(geodata.CorpusOptions{ChipSize: 24, Scale: 300, Seed: 13})
	x, labels := corpus.Tensors(5)
	data := dataset.New(x, labels)
	cfg := resnet.Config{Channels: 5, Batch: 8, KernelSize: 3, Stride: 2, Padding: 1,
		PoolChoice: 1, KernelSizePool: 3, StridePool: 2, InitialOutputFeature: 8, NumClasses: 2}
	serial := TrainEvaluator{Data: data, Opts: TrainOptions{Epochs: 1, Folds: 2, LR: 0.02, Momentum: 0.9, Seed: 5}}
	par := serial
	par.Opts.ParallelFolds = true
	a, err := serial.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fold seeds are positional, so parallel and serial runs are identical.
	if a != b {
		t.Fatalf("parallel folds diverged: %.4f vs %.4f", a, b)
	}
}

func TestEstimateFullScale(t *testing.T) {
	// 2 s/trial at 1/400 of the paper's per-trial cost, 288 trials, one
	// worker → 2*400*288/3600 = 64 hours; the paper's 9h20m-29h A100 runs
	// sit within an order of magnitude of CPU-extrapolated figures.
	h := EstimateFullScale(2, 400, 288, 1)
	if h < 63.9 || h > 64.1 {
		t.Fatalf("estimate %.2f h, want 64", h)
	}
	// Concurrency divides linearly; defaults guard degenerate inputs.
	if EstimateFullScale(2, 400, 288, 4) != h/4 {
		t.Fatal("concurrency scaling broken")
	}
	if EstimateFullScale(1, 1, 0, 0) <= 0 {
		t.Fatal("defaults broken")
	}
}
