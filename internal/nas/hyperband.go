package nas

import (
	"fmt"
	"math"

	"drainnas/internal/resnet"
	"drainnas/internal/tensor"
)

// HyperbandOptions configures a Hyperband run.
type HyperbandOptions struct {
	// Space defaults to PaperSpace().
	Space Space
	// Combo fixes the input combination.
	Combo InputCombo
	// Eta is the halving factor (default 3, as in the paper by Li et al.).
	Eta int
	// MinBudget is the smallest fidelity any bracket starts at (default
	// 1/9 with eta 3).
	MinBudget float64
	// Seed drives candidate sampling.
	Seed uint64
	// Workers is per-round parallelism.
	Workers int
}

// HyperbandResult reports the run.
type HyperbandResult struct {
	// Best is the overall best full-budget trial.
	Best TrialResult
	// Brackets records each bracket's (initial candidates, initial budget,
	// best accuracy found).
	Brackets []struct {
		Candidates int
		Budget     float64
		BestAcc    float64
	}
	// TotalBudget sums fidelity-weighted evaluations.
	TotalBudget float64
}

// Hyperband (Li et al., 2018) hedges successive halving's
// budget-vs-breadth trade-off by running several brackets: an aggressive
// one starting many candidates at tiny budget, through a conservative one
// evaluating few candidates at full budget. Candidates are sampled
// uniformly from the space per bracket.
func Hyperband(eval BudgetedEvaluator, opts HyperbandOptions) (HyperbandResult, error) {
	if eval == nil {
		return HyperbandResult{}, fmt.Errorf("nas: Hyperband needs an evaluator")
	}
	if opts.Space.RawSize() == 0 {
		opts.Space = PaperSpace()
	}
	if opts.Combo == (InputCombo{}) {
		opts.Combo = InputCombo{Channels: 7, Batch: 16}
	}
	eta := opts.Eta
	if eta < 2 {
		eta = 3
	}
	minBudget := opts.MinBudget
	if minBudget <= 0 || minBudget >= 1 {
		minBudget = 1.0 / float64(eta*eta)
	}
	// sMax brackets: budget rungs minBudget * eta^k up to 1.
	sMax := int(math.Floor(math.Log(1/minBudget) / math.Log(float64(eta))))
	rng := tensor.NewRNG(opts.Seed ^ 0x4B1D)

	var res HyperbandResult
	res.Best = TrialResult{Accuracy: -1}
	for s := sMax; s >= 0; s-- {
		// Bracket s: n candidates at budget minBudget*eta^(sMax-s).
		n := int(math.Ceil(float64(sMax+1) / float64(s+1) * math.Pow(float64(eta), float64(s))))
		budget := math.Pow(float64(eta), float64(-s))
		if budget > 1 {
			budget = 1
		}
		configs := make([]resnet.Config, n)
		for i := range configs {
			configs[i] = opts.Space.RandomConfig(opts.Combo, rng)
		}
		sh, err := SuccessiveHalving(configs, eval, SHOptions{
			Eta: eta, MinBudget: budget, Workers: opts.Workers,
		})
		if err != nil {
			return HyperbandResult{}, err
		}
		res.TotalBudget += sh.TotalBudget
		bracketBest := -1.0
		if len(sh.Survivors) > 0 {
			bracketBest = sh.Survivors[0].Accuracy
			if sh.Survivors[0].Accuracy > res.Best.Accuracy {
				res.Best = sh.Survivors[0]
			}
		}
		res.Brackets = append(res.Brackets, struct {
			Candidates int
			Budget     float64
			BestAcc    float64
		}{n, budget, bracketBest})
	}
	return res, nil
}
