package nas

import (
	"sort"

	"drainnas/internal/resnet"
	"drainnas/internal/tensor"
)

// Strategy selects which configurations to evaluate from a space — the
// NNI "search strategy" axis. The paper uses exhaustive grid search; random
// and evolutionary strategies are provided for the sample-efficiency
// ablation.
type Strategy interface {
	// Select returns the configurations to run for one input combination.
	Select(space Space, combo InputCombo) []resnet.Config
	// Name identifies the strategy.
	Name() string
}

// GridStrategy enumerates the whole space (the paper's approach).
type GridStrategy struct{}

// Select returns every raw configuration.
func (GridStrategy) Select(space Space, combo InputCombo) []resnet.Config {
	return space.Enumerate(combo)
}

// Name returns "grid".
func (GridStrategy) Name() string { return "grid" }

// RandomStrategy samples N distinct configurations uniformly.
type RandomStrategy struct {
	N    int
	Seed uint64
}

// Select samples without replacement from the enumerated space.
func (s RandomStrategy) Select(space Space, combo InputCombo) []resnet.Config {
	all := space.Enumerate(combo)
	if s.N >= len(all) {
		return all
	}
	rng := tensor.NewRNG(s.Seed)
	perm := rng.Perm(len(all))
	out := make([]resnet.Config, s.N)
	for i := 0; i < s.N; i++ {
		out[i] = all[perm[i]]
	}
	return out
}

// Name returns "random".
func (s RandomStrategy) Name() string { return "random" }

// EvolutionStrategy implements regularized evolution (Real et al., 2019)
// over the discrete space: a sliding population where each step tournaments
// a parent, mutates one axis, and retires the oldest member. It needs an
// evaluator to guide the search, so Select runs the search internally and
// returns every configuration it visited, in visit order.
type EvolutionStrategy struct {
	Population int
	Cycles     int
	SampleSize int // tournament size
	Seed       uint64
	Evaluator  Evaluator
}

// Name returns "evolution".
func (s EvolutionStrategy) Name() string { return "evolution" }

type evoMember struct {
	cfg resnet.Config
	fit float64
}

// Select runs the evolutionary search and returns the visited
// configurations in order (deduplicated).
func (s EvolutionStrategy) Select(space Space, combo InputCombo) []resnet.Config {
	pop := s.Population
	if pop < 4 {
		pop = 16
	}
	cycles := s.Cycles
	if cycles <= 0 {
		cycles = 64
	}
	sample := s.SampleSize
	if sample < 2 {
		sample = 3
	}
	rng := tensor.NewRNG(s.Seed ^ 0xEB01)
	evalFit := func(cfg resnet.Config) float64 {
		if s.Evaluator == nil {
			return 0
		}
		acc, err := s.Evaluator.Evaluate(cfg)
		if err != nil {
			return 0
		}
		return acc
	}

	var visited []resnet.Config
	var population []evoMember
	for i := 0; i < pop; i++ {
		c := space.RandomConfig(combo, rng)
		visited = append(visited, c)
		population = append(population, evoMember{cfg: c, fit: evalFit(c)})
	}
	for cyc := 0; cyc < cycles; cyc++ {
		// Tournament selection.
		best := -1
		for t := 0; t < sample; t++ {
			i := rng.Intn(len(population))
			if best < 0 || population[i].fit > population[best].fit {
				best = i
			}
		}
		child := space.Mutate(population[best].cfg, rng)
		visited = append(visited, child)
		population = append(population, evoMember{cfg: child, fit: evalFit(child)})
		// Regularized evolution retires the oldest, not the worst.
		population = population[1:]
	}
	return UniqueConfigs(visited)
}

func pick(rng *tensor.RNG, vals []int) int { return vals[rng.Intn(len(vals))] }

// pickOther picks a value different from cur when the axis has any
// alternative.
func pickOther(rng *tensor.RNG, vals []int, cur int) int {
	if len(vals) < 2 {
		return vals[0]
	}
	for {
		v := pick(rng, vals)
		if v != cur {
			return v
		}
	}
}

// TopK returns the k best successful trials by accuracy, descending.
func TopK(results []TrialResult, k int) []TrialResult {
	ok := Succeeded(results)
	sort.Slice(ok, func(a, b int) bool { return ok[a].Accuracy > ok[b].Accuracy })
	if k > len(ok) {
		k = len(ok)
	}
	return ok[:k]
}
