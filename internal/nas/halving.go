package nas

import (
	"fmt"
	"math"
	"sort"

	"drainnas/internal/parallel"
	"drainnas/internal/resnet"
)

// BudgetedEvaluator scores a candidate at a fidelity in (0, 1]: 1 is the
// full evaluation protocol (all epochs, all folds); lower budgets are
// cheaper and noisier. Multi-fidelity strategies like successive halving
// rely on low-budget scores preserving most of the ranking.
type BudgetedEvaluator interface {
	EvaluateWithBudget(cfg resnet.Config, budget float64) (float64, error)
}

// EvaluateWithBudget implements multi-fidelity scoring for the surrogate:
// a partial-budget evaluation behaves like stopping training early —
// a fidelity-dependent underfit penalty plus extra estimation noise, both
// deterministic per (trial, budget rung).
func (e SurrogateEvaluator) EvaluateWithBudget(cfg resnet.Config, budget float64) (float64, error) {
	if budget <= 0 || budget > 1 {
		return 0, fmt.Errorf("nas: budget %v out of (0,1]", budget)
	}
	full, err := e.Evaluate(cfg)
	if err != nil {
		return 0, err
	}
	if budget == 1 {
		return full, nil
	}
	// A rung-shifted copy of the model supplies deterministic, budget-
	// specific estimation noise: (Accuracy - Mean) isolates the stochastic
	// component at the shifted seed.
	shifted := e.Model
	shifted.Seed ^= uint64(budget*1e6) * 0x9E3779B97F4A7C15
	underfit := 4.0 * (1 - budget) // points lost to stopping training early
	extraNoise := (shifted.Accuracy(cfg) - shifted.Mean(cfg)) * (1 - budget)
	est := full - underfit + extraNoise
	if est < 50 {
		est = 50
	}
	return est, nil
}

// EvaluateWithBudget implements multi-fidelity scoring for real training by
// scaling epochs (at least 1) with the budget.
func (e TrainEvaluator) EvaluateWithBudget(cfg resnet.Config, budget float64) (float64, error) {
	if budget <= 0 || budget > 1 {
		return 0, fmt.Errorf("nas: budget %v out of (0,1]", budget)
	}
	scaled := e
	opts := e.Opts
	if opts.Epochs <= 0 {
		opts.Epochs = 5
	}
	opts.Epochs = int(math.Ceil(float64(opts.Epochs) * budget))
	if opts.Epochs < 1 {
		opts.Epochs = 1
	}
	scaled.Opts = opts
	return scaled.Evaluate(cfg)
}

// SHOptions configures SuccessiveHalving.
type SHOptions struct {
	// Eta is the elimination factor (keep 1/eta per round); default 2.
	Eta int
	// MinBudget is the first round's fidelity; default 0.25.
	MinBudget float64
	// Workers is trial parallelism per round.
	Workers int
}

// SHResult reports one successive-halving run.
type SHResult struct {
	// Survivors are the configurations still alive after the last round,
	// scored at full budget, best first.
	Survivors []TrialResult
	// Rounds records (budget, candidate count) per round.
	Rounds []struct {
		Budget     float64
		Candidates int
	}
	// TotalBudget is the summed fidelity-weighted evaluation cost, in units
	// of full evaluations — the cost a plain grid search would pay as
	// len(configs).
	TotalBudget float64
}

// SuccessiveHalving races the configurations through budget rungs,
// eliminating the worse (eta-1)/eta fraction each round, finishing with a
// full-budget evaluation of the survivors. It is the classic multi-fidelity
// accelerator for NAS sweeps (Jamieson & Talwalkar, 2016).
func SuccessiveHalving(configs []resnet.Config, eval BudgetedEvaluator, opts SHOptions) (SHResult, error) {
	if len(configs) == 0 {
		return SHResult{}, fmt.Errorf("nas: SuccessiveHalving with no configurations")
	}
	eta := opts.Eta
	if eta < 2 {
		eta = 2
	}
	budget := opts.MinBudget
	if budget <= 0 || budget > 1 {
		budget = 0.25
	}

	type scored struct {
		cfg resnet.Config
		acc float64
	}
	alive := make([]resnet.Config, len(configs))
	copy(alive, configs)
	var res SHResult

	evaluateRound := func(b float64) ([]scored, error) {
		out := make([]scored, len(alive))
		errs := make([]error, len(alive))
		parallel.Map(len(alive), opts.Workers, func(i int) {
			acc, err := eval.EvaluateWithBudget(alive[i], b)
			out[i] = scored{alive[i], acc}
			errs[i] = err
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		sort.Slice(out, func(a, b int) bool { return out[a].acc > out[b].acc })
		return out, nil
	}

	for len(alive) > eta && budget < 1 {
		res.Rounds = append(res.Rounds, struct {
			Budget     float64
			Candidates int
		}{budget, len(alive)})
		res.TotalBudget += budget * float64(len(alive))
		ranked, err := evaluateRound(budget)
		if err != nil {
			return SHResult{}, err
		}
		keep := len(alive) / eta
		if keep < 1 {
			keep = 1
		}
		alive = alive[:0]
		for _, s := range ranked[:keep] {
			alive = append(alive, s.cfg)
		}
		budget *= float64(eta)
		if budget > 1 {
			budget = 1
		}
	}

	// Final full-budget evaluation of the survivors.
	res.Rounds = append(res.Rounds, struct {
		Budget     float64
		Candidates int
	}{1, len(alive)})
	res.TotalBudget += float64(len(alive))
	final, err := evaluateRound(1)
	if err != nil {
		return SHResult{}, err
	}
	for i, s := range final {
		res.Survivors = append(res.Survivors, TrialResult{
			ID: i, Config: s.cfg, Status: TrialSucceeded, Accuracy: s.acc,
		})
	}
	return res, nil
}
