package nas

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"drainnas/internal/metrics"
	"drainnas/internal/surrogate"
)

// normalizeResults strips the wall-clock fields so two runs of the same
// deterministic sweep can be compared byte for byte.
func normalizeResults(t *testing.T, results []TrialResult) []byte {
	t.Helper()
	norm := append([]TrialResult{}, results...)
	for i := range norm {
		norm[i].Duration = 0
	}
	data, err := json.Marshal(norm)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCrashResumeMatchesUninterrupted is the end-to-end durability check:
// a sweep with transient faults is cancelled mid-run while streaming its
// journal; the journal then loses half of its final line (the crash); the
// tolerant reader recovers the complete entries and a resumed sweep must
// produce results byte-identical (modulo durations) to a run that was
// never interrupted.
func TestCrashResumeMatchesUninterrupted(t *testing.T) {
	cfgs := PaperSpace().Enumerate(InputCombo{5, 8})[:40]
	base := SurrogateEvaluator{Model: surrogate.Default()}

	// Reference: the uninterrupted, fault-free sweep.
	want := Experiment(cfgs, base, ExperimentOptions{Workers: 4})

	// Interrupted run: transient faults + retry, journal streamed to disk,
	// context cancelled after 10 completions.
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	jw := NewJournalWriter(f, JournalWriterOptions{SyncEvery: 4})
	mkEval := func() Evaluator {
		return RetryEvaluator{
			Inner:       &FlakyEvaluator{Inner: base, FailFirst: 1, Delay: time.Millisecond},
			MaxAttempts: 3,
			Sleep:       func(time.Duration) {},
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	partial, runErr := ExperimentContext(ctx, cfgs, mkEval(), ExperimentOptions{
		Workers: 4,
		Journal: jw,
		Progress: func(done, total int) {
			if done == 10 {
				cancel()
			}
		},
	})
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("run error = %v, want context.Canceled", runErr)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	if len(partial) == 0 || len(partial) >= len(cfgs) {
		t.Fatalf("cancellation produced %d/%d results", len(partial), len(cfgs))
	}
	// Every completed trial reached the journal before ExperimentContext
	// returned (drain guarantee).
	journaled, err := func() ([]TrialResult, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return ReadJournal(bytes.NewReader(data))
	}()
	if err != nil {
		t.Fatal(err)
	}
	if len(journaled) != len(partial) {
		t.Fatalf("journal holds %d trials, %d completed", len(journaled), len(partial))
	}

	// The crash: the final journal line is cut in half.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(raw, []byte("\n"))
	lastStart := len(raw) - len(lines[len(lines)-2])
	chopped := raw[:lastStart+(len(raw)-lastStart)/2]
	if err := os.WriteFile(path, chopped, 0o644); err != nil {
		t.Fatal(err)
	}

	// Tolerant reload: all complete entries recovered, bad tail reported.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recovered, rerr := ReadJournal(bytes.NewReader(data))
	var tail *JournalTailError
	if !errors.As(rerr, &tail) {
		t.Fatalf("reload error = %v, want *JournalTailError", rerr)
	}
	if tail.Offset != int64(lastStart) {
		t.Fatalf("tail offset %d, want %d", tail.Offset, lastStart)
	}
	if len(recovered) != len(journaled)-1 {
		t.Fatalf("recovered %d entries, want %d", len(recovered), len(journaled)-1)
	}

	// Resume: journaled successes reused, the rest re-run (fresh fault
	// injection, so remaining trials fail once and retry again).
	resumed, err := ResumeExperimentContext(context.Background(), cfgs, recovered, mkEval(), ExperimentOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != len(cfgs) {
		t.Fatalf("resumed sweep has %d/%d results", len(resumed), len(cfgs))
	}
	// Reused trials keep their journaled durations; only re-run trials may
	// differ in Duration. Everything else must be identical.
	if got, ref := normalizeResults(t, resumed), normalizeResults(t, want); !bytes.Equal(got, ref) {
		t.Fatalf("resumed results differ from uninterrupted run:\n%s\nvs\n%s", got, ref)
	}
}

func TestResumeProgressReportsFullPlan(t *testing.T) {
	cfgs := PaperSpace().Enumerate(InputCombo{5, 8})[:30]
	eval := SurrogateEvaluator{Model: surrogate.Default()}
	full := Experiment(cfgs, eval, ExperimentOptions{})
	journal := append([]TrialResult{}, full[:12]...)

	var mu sync.Mutex
	var dones []int
	totals := map[int]bool{}
	ResumeExperiment(cfgs, journal, eval, ExperimentOptions{
		Workers: 3,
		Progress: func(done, total int) {
			mu.Lock()
			dones = append(dones, done)
			totals[total] = true
			mu.Unlock()
		},
	})
	if len(totals) != 1 || !totals[30] {
		t.Fatalf("progress totals %v, want the full 30-trial plan", totals)
	}
	if len(dones) != 18 {
		t.Fatalf("progress fired %d times, want 18 (fresh trials only)", len(dones))
	}
	lo, hi := dones[0], dones[0]
	for _, d := range dones {
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	if lo != 13 || hi != 30 {
		t.Fatalf("done range [%d, %d], want [13, 30]", lo, hi)
	}
}

func TestExperimentContextRecordsSweepStats(t *testing.T) {
	cfgs := PaperSpace().Enumerate(InputCombo{5, 8})[:20]
	base := SurrogateEvaluator{Model: surrogate.Default()}
	stats := &metrics.SweepStats{}
	stats.Begin(len(cfgs), 0)
	eval := RetryEvaluator{
		Inner:       &FlakyEvaluator{Inner: base, FailFirst: 1},
		MaxAttempts: 2,
		Sleep:       func(time.Duration) {},
		OnRetry:     func(int, error) { stats.Retried() },
	}
	results, err := ExperimentContext(context.Background(), cfgs, eval, ExperimentOptions{Workers: 4, Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	if len(Succeeded(results)) != len(cfgs) {
		t.Fatalf("%d/%d trials succeeded", len(Succeeded(results)), len(cfgs))
	}
	snap := stats.Snapshot()
	if snap.Succeeded != uint64(len(cfgs)) || snap.Failed != 0 {
		t.Fatalf("counters: %s", snap)
	}
	if snap.Retried != uint64(len(cfgs)) {
		t.Fatalf("retried %d, want one retry per trial", snap.Retried)
	}
	if snap.Remaining != 0 {
		t.Fatalf("remaining %d after a full sweep", snap.Remaining)
	}
}

// failingSink rejects every append.
type failingSink struct{}

func (failingSink) Append(TrialResult) error { return fmt.Errorf("sink broken") }

func TestExperimentContextReportsJournalError(t *testing.T) {
	cfgs := PaperSpace().Enumerate(InputCombo{5, 8})[:5]
	eval := SurrogateEvaluator{Model: surrogate.Default()}
	results, err := ExperimentContext(context.Background(), cfgs, eval, ExperimentOptions{
		Workers: 2,
		Journal: failingSink{},
	})
	if err == nil {
		t.Fatal("journal failure was swallowed")
	}
	// The sweep itself still completes; only the durability layer failed.
	if len(results) != len(cfgs) {
		t.Fatalf("results %d/%d", len(results), len(cfgs))
	}
}
