// Package nas implements the neural-architecture-search driver that stands
// in for NNI Retiarii: the paper's search space (Figure 2), exhaustive and
// sampled search strategies, k-fold trial evaluation, and a parallel
// experiment runner with a JSON trial journal.
package nas

import (
	"fmt"

	"drainnas/internal/resnet"
	"drainnas/internal/tensor"
)

// Space is the architectural search space of Figure 2. Every axis lists its
// admissible values.
type Space struct {
	KernelSizes     []int
	Strides         []int
	Paddings        []int
	PoolChoices     []int
	KernelSizePools []int
	StridePools     []int
	InitialFeatures []int
	NumClasses      int
}

// PaperSpace returns the exact search space of the paper: 2 kernel sizes ×
// 2 strides × 3 paddings for the initial convolution, pool on/off with 2
// pool kernels × 2 pool strides, and 3 initial feature widths — 288 raw
// configurations per input combination.
func PaperSpace() Space {
	return Space{
		KernelSizes:     []int{3, 7},
		Strides:         []int{1, 2},
		Paddings:        []int{1, 2, 3},
		PoolChoices:     []int{0, 1},
		KernelSizePools: []int{2, 3},
		StridePools:     []int{1, 2},
		InitialFeatures: []int{32, 48, 64},
		NumClasses:      2,
	}
}

// RawSize returns the number of raw configurations per input combination
// (including the no-pool duplicates the paper notes may coincide).
func (s Space) RawSize() int {
	return len(s.KernelSizes) * len(s.Strides) * len(s.Paddings) *
		len(s.PoolChoices) * len(s.KernelSizePools) * len(s.StridePools) *
		len(s.InitialFeatures)
}

// InputCombo is one of the paper's six input-data combinations.
type InputCombo struct {
	Channels int `json:"channels"`
	Batch    int `json:"batch"`
}

// PaperInputCombos returns the six benchmark variants: {5, 7} channels ×
// {8, 16, 32} batch.
func PaperInputCombos() []InputCombo {
	var combos []InputCombo
	for _, ch := range []int{5, 7} {
		for _, b := range []int{8, 16, 32} {
			combos = append(combos, InputCombo{Channels: ch, Batch: b})
		}
	}
	return combos
}

// Enumerate lists every raw configuration of the space for one input
// combination, in a fixed lexicographic axis order.
func (s Space) Enumerate(combo InputCombo) []resnet.Config {
	var out []resnet.Config
	for _, k := range s.KernelSizes {
		for _, st := range s.Strides {
			for _, p := range s.Paddings {
				for _, pool := range s.PoolChoices {
					for _, kp := range s.KernelSizePools {
						for _, sp := range s.StridePools {
							for _, f := range s.InitialFeatures {
								out = append(out, resnet.Config{
									Channels: combo.Channels, Batch: combo.Batch,
									KernelSize: k, Stride: st, Padding: p,
									PoolChoice: pool, KernelSizePool: kp, StridePool: sp,
									InitialOutputFeature: f, NumClasses: s.NumClasses,
								})
							}
						}
					}
				}
			}
		}
	}
	return out
}

// EnumerateAll lists the raw configurations across all input combinations:
// the paper's 6 × 288 = 1,728 raw trials.
func (s Space) EnumerateAll(combos []InputCombo) []resnet.Config {
	var out []resnet.Config
	for _, c := range combos {
		out = append(out, s.Enumerate(c)...)
	}
	return out
}

// UniqueConfigs removes configurations that build identical networks (the
// no-pool duplicates, via resnet.Config.Canonical), preserving first-seen
// order.
func UniqueConfigs(configs []resnet.Config) []resnet.Config {
	seen := make(map[string]bool, len(configs))
	var out []resnet.Config
	for _, c := range configs {
		key := c.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, c)
	}
	return out
}

// PaperValidTrialCount is the number of valid outcomes the paper reports
// out of its 1,728 raw NNI trials (11 trials did not produce a result).
const PaperValidTrialCount = 1717

// attritionSeed makes the simulated trial attrition reproduce the paper's
// valid-trial count exactly; see Attrition.
const attritionSeed uint64 = 3

// Attrition deterministically marks raw trials as failed, simulating the
// trial attrition of a real NNI run (crashed workers, CUDA OOM, timeouts):
// the paper obtained 1,717 valid outcomes from 1,728 raw trials. The
// decision is a pure function of the trial's position and identity, and the
// seed is chosen so the full paper grid loses exactly 11 trials. Which
// trials fail is not knowable from the paper; only the count is calibrated.
func Attrition(idx int, cfg resnet.Config) bool {
	h := attritionSeed ^ (uint64(idx)+1)*0x9E3779B97F4A7C15
	key := cfg.Key()
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * 0x100000001B3
	}
	h ^= h >> 29
	// ≈11/1728 failure probability.
	return h%1728 < 11
}

// ValidTrials filters the raw trial list through Attrition, returning the
// surviving configurations and the indices of the failed ones.
func ValidTrials(configs []resnet.Config) (valid []resnet.Config, failed []int) {
	for i, c := range configs {
		if Attrition(i, c) {
			failed = append(failed, i)
			continue
		}
		valid = append(valid, c)
	}
	return valid, failed
}

// Describe renders the search space in the style of Figure 2.
func (s Space) Describe() string {
	return fmt.Sprintf(`Search space (per input combination, %d raw configurations):
  initial conv:  kernel_size %v  stride %v  padding %v
  max pooling:   pool_choice %v  kernel_size_pool %v  stride_pool %v
  backbone:      initial_output_feature %v (stages x1, x2, x4, x8)
  classifier:    %d classes`,
		s.RawSize(), s.KernelSizes, s.Strides, s.Paddings,
		s.PoolChoices, s.KernelSizePools, s.StridePools,
		s.InitialFeatures, s.NumClasses)
}

// RandomConfig draws a uniform configuration from the space for one input
// combination.
func (s Space) RandomConfig(combo InputCombo, rng *tensor.RNG) resnet.Config {
	return resnet.Config{
		Channels: combo.Channels, Batch: combo.Batch,
		KernelSize:           pick(rng, s.KernelSizes),
		Stride:               pick(rng, s.Strides),
		Padding:              pick(rng, s.Paddings),
		PoolChoice:           pick(rng, s.PoolChoices),
		KernelSizePool:       pick(rng, s.KernelSizePools),
		StridePool:           pick(rng, s.StridePools),
		InitialOutputFeature: pick(rng, s.InitialFeatures),
		NumClasses:           s.NumClasses,
	}
}

// Mutate flips one randomly chosen architectural axis of cfg to a different
// admissible value, leaving the input combination untouched.
func (s Space) Mutate(cfg resnet.Config, rng *tensor.RNG) resnet.Config {
	out := cfg
	switch rng.Intn(7) {
	case 0:
		out.KernelSize = pickOther(rng, s.KernelSizes, cfg.KernelSize)
	case 1:
		out.Stride = pickOther(rng, s.Strides, cfg.Stride)
	case 2:
		out.Padding = pickOther(rng, s.Paddings, cfg.Padding)
	case 3:
		out.PoolChoice = pickOther(rng, s.PoolChoices, cfg.PoolChoice)
	case 4:
		out.KernelSizePool = pickOther(rng, s.KernelSizePools, cfg.KernelSizePool)
	case 5:
		out.StridePool = pickOther(rng, s.StridePools, cfg.StridePool)
	default:
		out.InitialOutputFeature = pickOther(rng, s.InitialFeatures, cfg.InitialOutputFeature)
	}
	return out
}

// Crossover produces a child taking each architectural axis from one of
// the two parents uniformly at random.
func (s Space) Crossover(a, b resnet.Config, rng *tensor.RNG) resnet.Config {
	child := a
	if rng.Intn(2) == 1 {
		child.KernelSize = b.KernelSize
	}
	if rng.Intn(2) == 1 {
		child.Stride = b.Stride
	}
	if rng.Intn(2) == 1 {
		child.Padding = b.Padding
	}
	if rng.Intn(2) == 1 {
		child.PoolChoice = b.PoolChoice
	}
	if rng.Intn(2) == 1 {
		child.KernelSizePool = b.KernelSizePool
	}
	if rng.Intn(2) == 1 {
		child.StridePool = b.StridePool
	}
	if rng.Intn(2) == 1 {
		child.InitialOutputFeature = b.InitialOutputFeature
	}
	return child
}
