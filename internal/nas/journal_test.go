package nas

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"drainnas/internal/surrogate"
)

// syncCountingBuffer is a bytes.Buffer that counts Sync calls, standing in
// for an *os.File.
type syncCountingBuffer struct {
	bytes.Buffer
	syncs int
}

func (b *syncCountingBuffer) Sync() error {
	b.syncs++
	return nil
}

func journalFixture(t *testing.T, n int) []TrialResult {
	t.Helper()
	cfgs := PaperSpace().Enumerate(InputCombo{7, 16})[:n]
	eval := SurrogateEvaluator{Model: surrogate.Default()}
	return Experiment(cfgs, eval, ExperimentOptions{Workers: 1})
}

func TestJournalWriterStreamsAndSyncs(t *testing.T) {
	results := journalFixture(t, 7)
	var buf syncCountingBuffer
	jw := NewJournalWriter(&buf, JournalWriterOptions{SyncEvery: 3})
	for i, r := range results {
		if err := jw.Append(r); err != nil {
			t.Fatal(err)
		}
		// Line-buffered: every appended trial is fully visible downstream
		// before the next append.
		back, err := ReadJournal(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("after %d appends: %v", i+1, err)
		}
		if len(back) != i+1 {
			t.Fatalf("after %d appends only %d entries visible", i+1, len(back))
		}
	}
	if buf.syncs != 2 { // appends 3 and 6
		t.Fatalf("syncs = %d, want 2 (cadence 3 over 7 appends)", buf.syncs)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.syncs != 3 {
		t.Fatalf("Close did not sync (syncs = %d)", buf.syncs)
	}
	if jw.Count() != 7 {
		t.Fatalf("Count = %d", jw.Count())
	}
	if err := jw.Append(results[0]); err == nil {
		t.Fatal("append after Close succeeded")
	}
}

func TestJournalWriterConcurrentAppends(t *testing.T) {
	results := journalFixture(t, 24)
	var buf syncCountingBuffer
	jw := NewJournalWriter(&buf, JournalWriterOptions{SyncEvery: 5})
	var wg sync.WaitGroup
	for _, r := range results {
		wg.Add(1)
		go func(r TrialResult) {
			defer wg.Done()
			if err := jw.Append(r); err != nil {
				t.Error(err)
			}
		}(r)
	}
	wg.Wait()
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(results) {
		t.Fatalf("read back %d/%d entries", len(back), len(results))
	}
	// Interleaved writers must still produce whole lines: every entry
	// round-trips to a known config.
	want := map[string]bool{}
	for _, r := range results {
		want[r.Config.Key()] = true
	}
	for _, r := range back {
		if !want[r.Config.Key()] {
			t.Fatalf("journal line for unknown config %s", r.Config.Key())
		}
	}
}

// failingWriter errors after budget bytes — a tiny disk.
type failingWriter struct {
	budget int
}

func (w *failingWriter) Write(p []byte) (int, error) {
	if len(p) > w.budget {
		n := w.budget
		w.budget = 0
		return n, fmt.Errorf("disk full")
	}
	w.budget -= len(p)
	return len(p), nil
}

func TestJournalWriterStickyErrorSurfacesAtClose(t *testing.T) {
	results := journalFixture(t, 6)
	jw := NewJournalWriter(&failingWriter{budget: 150}, JournalWriterOptions{})
	var appendErr error
	for _, r := range results {
		if err := jw.Append(r); err != nil {
			appendErr = err
			break
		}
	}
	if appendErr == nil {
		t.Fatal("no append hit the full disk (raise fixture size)")
	}
	if err := jw.Close(); err == nil {
		t.Fatal("Close swallowed the write error — a truncated journal would be reported as written")
	}
	// Idempotent: the second Close reports the same sticky error.
	if err := jw.Close(); err == nil {
		t.Fatal("second Close lost the sticky error")
	}
}

func TestReadJournalRecoversTruncatedTail(t *testing.T) {
	results := journalFixture(t, 5)
	var buf bytes.Buffer
	if err := WriteJournal(&buf, results); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	lines := bytes.SplitAfter(full, []byte("\n"))
	// lines has a trailing empty element after the final newline.
	lastStart := len(full) - len(lines[len(lines)-2])

	// Chop the final record mid-line, as a crash mid-write would.
	for cut := lastStart + 1; cut < len(full)-1; cut += 40 {
		got, err := ReadJournal(bytes.NewReader(full[:cut]))
		var tail *JournalTailError
		if !errors.As(err, &tail) {
			t.Fatalf("cut at %d: err = %v, want *JournalTailError", cut, err)
		}
		if tail.Offset != int64(lastStart) {
			t.Fatalf("cut at %d: tail offset %d, want %d", cut, tail.Offset, lastStart)
		}
		if len(got) != len(results)-1 {
			t.Fatalf("cut at %d: recovered %d entries, want %d", cut, len(got), len(results)-1)
		}
		for i, r := range got {
			if r.Config != results[i].Config || r.Accuracy != results[i].Accuracy {
				t.Fatalf("cut at %d: entry %d corrupted", cut, i)
			}
		}
		// Truncating at the reported offset and appending the lost trial
		// yields a clean journal again — the repair -resume performs.
		repaired := append(append([]byte{}, full[:tail.Offset]...), full[lastStart:]...)
		back, rerr := ReadJournal(bytes.NewReader(repaired))
		if rerr != nil || len(back) != len(results) {
			t.Fatalf("cut at %d: repair failed: %v (%d entries)", cut, rerr, len(back))
		}
	}
}

func TestReadJournalAcceptsMissingFinalNewline(t *testing.T) {
	results := journalFixture(t, 3)
	var buf bytes.Buffer
	if err := WriteJournal(&buf, results); err != nil {
		t.Fatal(err)
	}
	// A complete record whose terminating newline was lost still counts.
	data := bytes.TrimRight(buf.Bytes(), "\n")
	got, err := ReadJournal(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("entries %d, want 3", len(got))
	}
}

func TestReadJournalSkipsBlankLines(t *testing.T) {
	results := journalFixture(t, 2)
	var buf bytes.Buffer
	buf.WriteString("\n")
	if err := WriteJournal(&buf, results[:1]); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("\n\n")
	if err := WriteJournal(&buf, results[1:]); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("entries %d, want 2", len(got))
	}
}

func TestReadJournalEmpty(t *testing.T) {
	got, err := ReadJournal(bytes.NewReader(nil))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty journal: %v, %d entries", err, len(got))
	}
}
