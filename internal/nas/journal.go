package nas

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// The trial journal is a JSON-lines file (one TrialResult per line, NNI
// journal style). It is the durability backbone of a long sweep: trials are
// appended as they complete, so an interrupted run restarts from whatever
// reached the file, and a crash mid-write costs at most the final partial
// line — which ReadJournal tolerates.

// TrialSink receives completed trials as they finish. Implementations must
// be safe for concurrent use: an experiment appends from every worker
// goroutine.
type TrialSink interface {
	Append(TrialResult) error
}

// JournalWriterOptions configures a JournalWriter.
type JournalWriterOptions struct {
	// SyncEvery calls Sync on the underlying writer (when it has one, e.g.
	// an *os.File) after every Nth appended trial, bounding how much
	// completed work a machine crash can lose. 0 disables periodic sync;
	// Close always syncs.
	SyncEvery int
}

// syncer is the optional Sync capability of the underlying writer.
type syncer interface{ Sync() error }

// JournalWriter streams TrialResults to a writer as they complete:
// mutex-serialized, line-buffered (each trial reaches the OS as one whole
// line before Append returns), with fsync on a configurable cadence. Errors
// are sticky: once a write fails every later Append and the final Close
// report it, so a full disk cannot masquerade as a clean journal.
type JournalWriter struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	under  io.Writer
	opts   JournalWriterOptions
	count  int
	err    error
	closed bool
}

// NewJournalWriter wraps w for streaming trial appends. The caller keeps
// ownership of w unless it is an io.Closer, in which case Close closes it.
func NewJournalWriter(w io.Writer, opts JournalWriterOptions) *JournalWriter {
	return &JournalWriter{bw: bufio.NewWriter(w), under: w, opts: opts}
}

// Append journals one completed trial. The line is flushed to the OS before
// Append returns, and synced to disk every SyncEvery appends.
func (jw *JournalWriter) Append(r TrialResult) error {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if jw.err != nil {
		return jw.err
	}
	if jw.closed {
		jw.err = fmt.Errorf("nas: append to closed journal")
		return jw.err
	}
	line, err := json.Marshal(r)
	if err != nil {
		return jw.fail(fmt.Errorf("nas: encoding journal line: %w", err))
	}
	line = append(line, '\n')
	if _, err := jw.bw.Write(line); err != nil {
		return jw.fail(fmt.Errorf("nas: writing journal: %w", err))
	}
	if err := jw.bw.Flush(); err != nil {
		return jw.fail(fmt.Errorf("nas: flushing journal: %w", err))
	}
	jw.count++
	if jw.opts.SyncEvery > 0 && jw.count%jw.opts.SyncEvery == 0 {
		if err := jw.sync(); err != nil {
			return jw.fail(err)
		}
	}
	return nil
}

// Count returns how many trials have been appended successfully.
func (jw *JournalWriter) Count() int {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	return jw.count
}

// Flush pushes buffered bytes to the underlying writer and syncs it.
func (jw *JournalWriter) Flush() error {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if jw.err != nil {
		return jw.err
	}
	if err := jw.bw.Flush(); err != nil {
		return jw.fail(fmt.Errorf("nas: flushing journal: %w", err))
	}
	if err := jw.sync(); err != nil {
		return jw.fail(err)
	}
	return nil
}

// Close flushes, syncs, and — when the underlying writer is an io.Closer —
// closes it. It reports the first error the writer ever hit, so callers
// must check it: ignoring Close hides the ENOSPC that truncated the
// journal. Close is idempotent.
func (jw *JournalWriter) Close() error {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if jw.closed {
		return jw.err
	}
	jw.closed = true
	if err := jw.bw.Flush(); err != nil && jw.err == nil {
		jw.err = fmt.Errorf("nas: flushing journal: %w", err)
	}
	if err := jw.sync(); err != nil && jw.err == nil {
		jw.err = err
	}
	if c, ok := jw.under.(io.Closer); ok {
		if err := c.Close(); err != nil && jw.err == nil {
			jw.err = fmt.Errorf("nas: closing journal: %w", err)
		}
	}
	return jw.err
}

// sync calls Sync on the underlying writer when it supports it. Callers
// hold jw.mu.
func (jw *JournalWriter) sync() error {
	s, ok := jw.under.(syncer)
	if !ok {
		return nil
	}
	if err := s.Sync(); err != nil {
		return fmt.Errorf("nas: syncing journal: %w", err)
	}
	return nil
}

// fail records the first error and returns it. Callers hold jw.mu.
func (jw *JournalWriter) fail(err error) error {
	if jw.err == nil {
		jw.err = err
	}
	return jw.err
}

// WriteJournal streams results as JSON lines (one trial per line). For
// incremental durability during a sweep, use JournalWriter instead.
func WriteJournal(w io.Writer, results []TrialResult) error {
	jw := NewJournalWriter(w, JournalWriterOptions{})
	for _, r := range results {
		if err := jw.Append(r); err != nil {
			return err
		}
	}
	// Flush without closing: WriteJournal never owned w.
	jw.mu.Lock()
	err := jw.bw.Flush()
	jw.mu.Unlock()
	if err != nil {
		return fmt.Errorf("nas: flushing journal: %w", err)
	}
	return nil
}

// JournalTailError reports a journal whose tail could not be parsed — the
// expected aftermath of a crash mid-append. Offset is the byte offset where
// the bad tail starts; truncating the file there yields a clean journal
// that can be appended to again. Every entry before Offset was recovered.
type JournalTailError struct {
	Offset int64 // byte offset of the first unparseable line
	Line   int   // 1-based line number of that line
	Err    error // the JSON error that rejected it
}

// Error describes the bad tail.
func (e *JournalTailError) Error() string {
	return fmt.Sprintf("nas: journal tail unreadable at byte %d (line %d): %v", e.Offset, e.Line, e.Err)
}

// Unwrap exposes the underlying JSON error.
func (e *JournalTailError) Unwrap() error { return e.Err }

// ReadJournal parses a JSON-lines journal back into trial results. It is
// crash-tolerant: a journal whose final line was cut short mid-record (or
// is otherwise unparseable) yields every complete entry plus a
// *JournalTailError carrying the byte offset of the bad tail — callers
// resume from the recovered entries instead of losing the whole sweep.
// Blank lines are skipped. A clean journal returns a nil error.
func ReadJournal(r io.Reader) ([]TrialResult, error) {
	br := bufio.NewReader(r)
	var out []TrialResult
	var offset int64
	line := 0
	for {
		raw, err := br.ReadBytes('\n')
		line++
		complete := err == nil
		if err != nil && err != io.EOF {
			return out, fmt.Errorf("nas: reading journal: %w", err)
		}
		trimmed := bytes.TrimSpace(raw)
		if len(trimmed) > 0 {
			var t TrialResult
			if jerr := json.Unmarshal(trimmed, &t); jerr != nil {
				return out, &JournalTailError{Offset: offset, Line: line, Err: jerr}
			}
			// A final line without its newline that still parses is a
			// complete record whose terminator was lost; keep it.
			out = append(out, t)
		}
		offset += int64(len(raw))
		if !complete {
			return out, nil
		}
	}
}
