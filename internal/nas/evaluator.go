package nas

import (
	"fmt"

	"drainnas/internal/dataset"
	"drainnas/internal/nn"
	"drainnas/internal/parallel"
	"drainnas/internal/resnet"
	"drainnas/internal/surrogate"
	"drainnas/internal/tensor"
)

// Evaluator scores one candidate architecture, returning its (k-fold mean)
// validation accuracy in percent.
type Evaluator interface {
	Evaluate(cfg resnet.Config) (float64, error)
}

// SurrogateEvaluator scores candidates with the calibrated analytic
// accuracy model — the backend for the full 1,717-trial sweep.
type SurrogateEvaluator struct {
	Model surrogate.Model
}

// Evaluate returns the surrogate's simulated 5-fold accuracy.
func (e SurrogateEvaluator) Evaluate(cfg resnet.Config) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	return e.Model.Accuracy(cfg), nil
}

// TrainOptions configures real training inside TrainEvaluator.
type TrainOptions struct {
	// Epochs per fold (the paper uses 5).
	Epochs int
	// Folds for cross-validation (the paper uses 5).
	Folds int
	// LR is the initial SGD learning rate; Momentum and WeightDecay the
	// usual SGD knobs.
	LR          float64
	Momentum    float64
	WeightDecay float64
	// Seed drives weight init and batch shuffling.
	Seed uint64
	// MaxTrainBatches caps the number of batches per epoch (0 = all); used
	// to bound CPU cost in tests and examples.
	MaxTrainBatches int
	// Augment applies label-preserving geometric/noise augmentation to
	// training batches (validation batches are never augmented).
	Augment dataset.AugmentOptions
	// LabelSmoothing is the ε of the smoothed cross-entropy (0 = plain CE).
	LabelSmoothing float64
	// ParallelFolds trains the cross-validation folds concurrently. Folds
	// are independent models, so this composes with (and multiplies) the
	// batch-level parallelism inside each fold; enable it when the trial
	// level is not already saturating the machine.
	ParallelFolds bool
}

// DefaultTrainOptions mirrors the paper's protocol (5 epochs, 5 folds).
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{Epochs: 5, Folds: 5, LR: 0.01, Momentum: 0.9, WeightDecay: 1e-4, Seed: 1}
}

// TrainEvaluator trains each candidate for real on a dataset with
// stratified k-fold cross-validation and reports the mean validation
// accuracy — the paper's NNI evaluation protocol, at whatever scale the
// provided dataset has.
type TrainEvaluator struct {
	// Data holds the full corpus at the evaluator's channel count. The
	// candidate's Channels field must match Data's channel dimension.
	Data *dataset.Dataset
	Opts TrainOptions
}

// Evaluate runs k-fold training and returns the mean validation accuracy in
// percent.
func (e TrainEvaluator) Evaluate(cfg resnet.Config) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if e.Data == nil {
		return 0, fmt.Errorf("nas: TrainEvaluator has no dataset")
	}
	if cfg.Channels != e.Data.Channels() {
		return 0, fmt.Errorf("nas: config wants %d channels, dataset has %d", cfg.Channels, e.Data.Channels())
	}
	inputSize := e.Data.X.Dim(2)
	if _, err := cfg.CheckSpatial(inputSize); err != nil {
		return 0, err
	}
	opts := e.Opts
	if opts.Epochs <= 0 {
		opts.Epochs = 5
	}
	if opts.Folds < 2 {
		opts.Folds = 5
	}
	if opts.LR <= 0 {
		opts.LR = 0.01
	}

	foldRNG := tensor.NewRNG(opts.Seed ^ 0xF01D)
	folds := dataset.StratifiedKFold(e.Data.Labels, opts.Folds, foldRNG)
	accs := make([]float64, len(folds))
	errs := make([]error, len(folds))
	runFold := func(fi int) {
		acc, err := e.trainOneFold(cfg, folds[fi], opts, uint64(fi))
		accs[fi], errs[fi] = acc, err
	}
	if opts.ParallelFolds {
		parallel.Map(len(folds), len(folds), runFold)
	} else {
		for fi := range folds {
			runFold(fi)
		}
	}
	sum := 0.0
	for fi := range folds {
		if errs[fi] != nil {
			return 0, fmt.Errorf("nas: fold %d: %w", fi, errs[fi])
		}
		sum += accs[fi]
	}
	return 100 * sum / float64(len(folds)), nil
}

// trainOneFold trains a fresh model on the fold's training split and
// returns validation accuracy in [0, 1].
func (e TrainEvaluator) trainOneFold(cfg resnet.Config, fold dataset.Fold, opts TrainOptions, foldID uint64) (float64, error) {
	train := e.Data.Subset(fold.Train)
	val := e.Data.Subset(fold.Val)
	stats := train.ComputeStats()
	train.Normalize(stats)
	val.Normalize(stats)

	rng := tensor.NewRNG(opts.Seed*0x9E3779B97F4A7C15 + foldID)
	model, err := resnet.New(cfg, rng)
	if err != nil {
		return 0, err
	}
	opt := nn.NewSGD(model.Params(), opts.LR, opts.Momentum, opts.WeightDecay)
	sched := nn.CosineLRSchedule(opts.LR, opts.LR/10, opts.Epochs)

	for epoch := 0; epoch < opts.Epochs; epoch++ {
		opt.SetLR(sched(epoch))
		batches := train.Batches(cfg.Batch, rng)
		if opts.MaxTrainBatches > 0 && len(batches) > opts.MaxTrainBatches {
			batches = batches[:opts.MaxTrainBatches]
		}
		for _, idxs := range batches {
			x, labels := train.Batch(idxs)
			x = opts.Augment.Apply(x, rng)
			logits := model.Forward(x, true)
			_, grad := nn.CrossEntropyLS(logits, labels, opts.LabelSmoothing)
			nn.ZeroGrad(model.Params())
			model.Backward(grad)
			nn.ClipGradNorm(model.Params(), 5)
			opt.Step()
		}
	}
	return evalAccuracy(model, val, cfg.Batch), nil
}

// evalAccuracy measures accuracy of a model over a dataset in eval mode.
func evalAccuracy(model *resnet.Model, d *dataset.Dataset, batch int) float64 {
	correct, total := 0, 0
	for _, idxs := range d.Batches(batch, nil) {
		x, labels := d.Batch(idxs)
		logits := model.Forward(x, false)
		preds := tensor.ArgMaxRows(logits)
		for i, p := range preds {
			if p == labels[i] {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
