package nas

import (
	"testing"

	"drainnas/internal/surrogate"
)

func TestHyperbandFindsGoodConfig(t *testing.T) {
	eval := SurrogateEvaluator{Model: surrogate.Default()}
	combo := InputCombo{Channels: 7, Batch: 16}
	hb, err := Hyperband(eval, HyperbandOptions{Combo: combo, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if hb.Best.Accuracy < 90 {
		t.Fatalf("hyperband best %.2f", hb.Best.Accuracy)
	}
	if len(hb.Brackets) < 2 {
		t.Fatalf("only %d brackets", len(hb.Brackets))
	}
	// Brackets run from aggressive (many candidates, low budget) to
	// conservative (few candidates, full budget).
	first, last := hb.Brackets[0], hb.Brackets[len(hb.Brackets)-1]
	if first.Candidates <= last.Candidates {
		t.Fatalf("bracket candidate counts not decreasing: %d .. %d", first.Candidates, last.Candidates)
	}
	if first.Budget >= last.Budget {
		t.Fatalf("bracket budgets not increasing: %v .. %v", first.Budget, last.Budget)
	}
	if last.Budget != 1 {
		t.Fatalf("final bracket budget %v, want 1", last.Budget)
	}
	// Must come within 1.5 points of the grid optimum.
	grid := Experiment(PaperSpace().Enumerate(combo), eval, ExperimentOptions{})
	gridBest, _ := BestByAccuracy(grid)
	if hb.Best.Accuracy < gridBest.Accuracy-1.5 {
		t.Fatalf("hyperband best %.2f vs grid %.2f", hb.Best.Accuracy, gridBest.Accuracy)
	}
}

func TestHyperbandDeterministic(t *testing.T) {
	eval := SurrogateEvaluator{Model: surrogate.Default()}
	a, err := Hyperband(eval, HyperbandOptions{Seed: 7, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Hyperband(eval, HyperbandOptions{Seed: 7, Workers: 1})
	if a.Best.Config != b.Best.Config || a.TotalBudget != b.TotalBudget {
		t.Fatal("hyperband not deterministic across worker counts")
	}
}

func TestHyperbandRequiresEvaluator(t *testing.T) {
	if _, err := Hyperband(nil, HyperbandOptions{}); err == nil {
		t.Fatal("expected error")
	}
}
