package nas

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"drainnas/internal/resnet"
	"drainnas/internal/surrogate"
)

func testConfig() resnet.Config {
	return PaperSpace().Enumerate(InputCombo{5, 8})[0]
}

func TestRetryEvaluatorAbsorbsTransientFaults(t *testing.T) {
	base := SurrogateEvaluator{Model: surrogate.Default()}
	flaky := &FlakyEvaluator{Inner: base, FailFirst: 2}
	var delays []time.Duration
	retries := 0
	re := RetryEvaluator{
		Inner:       flaky,
		MaxAttempts: 4,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    15 * time.Millisecond,
		OnRetry:     func(int, error) { retries++ },
		Sleep:       func(d time.Duration) { delays = append(delays, d) },
	}
	cfg := testConfig()
	acc, err := re.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := base.Evaluate(cfg)
	if acc != want {
		t.Fatalf("accuracy %v, want %v", acc, want)
	}
	if flaky.Attempts(cfg) != 3 {
		t.Fatalf("attempts %d, want 3 (2 faults + 1 success)", flaky.Attempts(cfg))
	}
	if retries != 2 {
		t.Fatalf("OnRetry fired %d times, want 2", retries)
	}
	// Exponential backoff, capped: 10ms then min(20ms, cap 15ms).
	if len(delays) != 2 || delays[0] != 10*time.Millisecond || delays[1] != 15*time.Millisecond {
		t.Fatalf("backoff delays %v", delays)
	}
}

func TestRetryEvaluatorGivesUpAfterBudget(t *testing.T) {
	base := SurrogateEvaluator{Model: surrogate.Default()}
	flaky := &FlakyEvaluator{Inner: base, FailFirst: 10}
	re := RetryEvaluator{Inner: flaky, MaxAttempts: 3, Sleep: func(time.Duration) {}}
	cfg := testConfig()
	if _, err := re.Evaluate(cfg); !IsTransient(err) {
		t.Fatalf("want the last transient error back, got %v", err)
	}
	if flaky.Attempts(cfg) != 3 {
		t.Fatalf("attempts %d, want exactly MaxAttempts", flaky.Attempts(cfg))
	}
}

// permanentEvaluator always fails with a non-transient error.
type permanentEvaluator struct{ calls int }

func (e *permanentEvaluator) Evaluate(resnet.Config) (float64, error) {
	e.calls++
	return 0, fmt.Errorf("invalid architecture")
}

func TestRetryEvaluatorDoesNotRetryPermanentErrors(t *testing.T) {
	inner := &permanentEvaluator{}
	re := RetryEvaluator{Inner: inner, MaxAttempts: 5, Sleep: func(time.Duration) {
		t.Fatal("slept for a permanent error")
	}}
	if _, err := re.Evaluate(testConfig()); err == nil {
		t.Fatal("expected error")
	}
	if inner.calls != 1 {
		t.Fatalf("permanent error retried %d times", inner.calls-1)
	}
}

func TestRetryEvaluatorSingleAttemptPassthrough(t *testing.T) {
	base := SurrogateEvaluator{Model: surrogate.Default()}
	re := RetryEvaluator{Inner: base} // MaxAttempts 0 → one attempt
	cfg := testConfig()
	acc, err := re.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want, _ := base.Evaluate(cfg); acc != want {
		t.Fatalf("passthrough accuracy %v, want %v", acc, want)
	}
}

func TestIsTransient(t *testing.T) {
	if !IsTransient(fmt.Errorf("oom: %w", ErrTransient)) {
		t.Fatal("wrapped transient not recognized")
	}
	if IsTransient(errors.New("bad config")) {
		t.Fatal("plain error marked transient")
	}
	if IsTransient(nil) {
		t.Fatal("nil marked transient")
	}
}
