package nas

import (
	"encoding/json"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"drainnas/internal/parallel"
	"drainnas/internal/profiler"
	"drainnas/internal/resnet"
)

// TrialStatus is the outcome state of one trial.
type TrialStatus string

// Trial outcomes.
const (
	TrialSucceeded TrialStatus = "succeeded"
	TrialFailed    TrialStatus = "failed"
)

// TrialResult records one NAS trial, mirroring an NNI trial record.
type TrialResult struct {
	ID       int           `json:"id"`
	Config   resnet.Config `json:"config"`
	Status   TrialStatus   `json:"status"`
	Accuracy float64       `json:"accuracy"` // percent, valid when succeeded
	Err      string        `json:"error,omitempty"`
	Duration time.Duration `json:"duration_ns"`
}

// ExperimentOptions configures a NAS experiment run.
type ExperimentOptions struct {
	// Workers is the trial-level parallelism (NNI's trial concurrency);
	// <= 0 selects GOMAXPROCS.
	Workers int
	// SimulateAttrition applies the paper-calibrated trial failure model so
	// a full paper grid yields exactly 1,717 valid outcomes.
	SimulateAttrition bool
	// Progress, when non-nil, receives (done, total) after every trial.
	Progress func(done, total int)
	// Profiler, when non-nil, records a per-trial "trial" span (plus a
	// "trial-failed" span for attrition/evaluator failures) — the §5
	// resource-profiling hook.
	Profiler *profiler.Profiler
}

// Experiment runs every configuration through the evaluator with dynamic
// load balancing (trials differ wildly in cost) and returns results in
// input order.
func Experiment(configs []resnet.Config, eval Evaluator, opts ExperimentOptions) []TrialResult {
	results := make([]TrialResult, len(configs))
	var done atomic.Int64
	parallel.Map(len(configs), opts.Workers, func(i int) {
		cfg := configs[i]
		start := time.Now()
		var stop func()
		if opts.Profiler != nil {
			stop = opts.Profiler.Start("trial")
		}
		res := TrialResult{ID: i, Config: cfg}
		if opts.SimulateAttrition && Attrition(i, cfg) {
			res.Status = TrialFailed
			res.Err = "trial attrition (simulated NNI worker failure)"
		} else if acc, err := eval.Evaluate(cfg); err != nil {
			res.Status = TrialFailed
			res.Err = err.Error()
		} else {
			res.Status = TrialSucceeded
			res.Accuracy = acc
		}
		res.Duration = time.Since(start)
		if stop != nil {
			stop()
			if res.Status == TrialFailed {
				opts.Profiler.Record("trial-failed", res.Duration)
			}
		}
		results[i] = res
		if opts.Progress != nil {
			opts.Progress(int(done.Add(1)), len(configs))
		}
	})
	return results
}

// Succeeded filters an experiment's results to its valid outcomes.
func Succeeded(results []TrialResult) []TrialResult {
	var out []TrialResult
	for _, r := range results {
		if r.Status == TrialSucceeded {
			out = append(out, r)
		}
	}
	return out
}

// BestByAccuracy returns the highest-accuracy successful trial; ok is false
// when none succeeded.
func BestByAccuracy(results []TrialResult) (TrialResult, bool) {
	best := TrialResult{Accuracy: -1}
	ok := false
	for _, r := range results {
		if r.Status == TrialSucceeded && r.Accuracy > best.Accuracy {
			best = r
			ok = true
		}
	}
	return best, ok
}

// WriteJournal streams results as JSON lines (one trial per line, NNI
// journal style).
func WriteJournal(w io.Writer, results []TrialResult) error {
	enc := json.NewEncoder(w)
	for _, r := range results {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("nas: writing journal: %w", err)
		}
	}
	return nil
}

// ReadJournal parses a JSON-lines journal back into trial results.
func ReadJournal(r io.Reader) ([]TrialResult, error) {
	dec := json.NewDecoder(r)
	var out []TrialResult
	for {
		var t TrialResult
		if err := dec.Decode(&t); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("nas: reading journal: %w", err)
		}
		out = append(out, t)
	}
}

// Resume support: a long NNI-style sweep interrupted mid-run restarts from
// its journal, re-running only the trials that have no recorded outcome.

// FilterCompleted splits configs into those already covered by journal
// entries (same raw configuration, succeeded) and those still to run.
// Failed journal entries are retried.
func FilterCompleted(configs []resnet.Config, journal []TrialResult) (remaining []resnet.Config, completed []TrialResult) {
	done := make(map[resnet.Config]TrialResult, len(journal))
	for _, r := range journal {
		if r.Status == TrialSucceeded {
			done[r.Config] = r
		}
	}
	for _, cfg := range configs {
		if r, ok := done[cfg]; ok {
			completed = append(completed, r)
		} else {
			remaining = append(remaining, cfg)
		}
	}
	return remaining, completed
}

// ResumeExperiment continues an interrupted sweep: journaled successes are
// reused, the remainder re-runs through the evaluator, and the merged
// results come back in the order of configs.
func ResumeExperiment(configs []resnet.Config, journal []TrialResult, eval Evaluator, opts ExperimentOptions) []TrialResult {
	remaining, completed := FilterCompleted(configs, journal)
	fresh := Experiment(remaining, eval, opts)
	byCfg := make(map[resnet.Config]TrialResult, len(completed)+len(fresh))
	for _, r := range completed {
		byCfg[r.Config] = r
	}
	for _, r := range fresh {
		byCfg[r.Config] = r
	}
	out := make([]TrialResult, len(configs))
	for i, cfg := range configs {
		r := byCfg[cfg]
		r.ID = i
		out[i] = r
	}
	return out
}

// EstimateFullScale extrapolates full-paper wall time from a measured
// sample, the §5 planning exercise: given the measured mean seconds per
// trial at this machine's scale and the cost ratio to the paper's scale
// (corpus size × image area × epochs), estimate hours for a full input
// combination (288 trials) at a given trial concurrency.
func EstimateFullScale(measuredSecPerTrial, scaleRatio float64, trials, concurrency int) (hours float64) {
	if concurrency < 1 {
		concurrency = 1
	}
	if trials < 1 {
		trials = 288
	}
	total := measuredSecPerTrial * scaleRatio * float64(trials) / float64(concurrency)
	return total / 3600
}
