package nas

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"drainnas/internal/metrics"
	"drainnas/internal/parallel"
	"drainnas/internal/profiler"
	"drainnas/internal/resnet"
)

// TrialStatus is the outcome state of one trial.
type TrialStatus string

// Trial outcomes.
const (
	TrialSucceeded TrialStatus = "succeeded"
	TrialFailed    TrialStatus = "failed"
)

// TrialResult records one NAS trial, mirroring an NNI trial record.
type TrialResult struct {
	ID       int           `json:"id"`
	Config   resnet.Config `json:"config"`
	Status   TrialStatus   `json:"status"`
	Accuracy float64       `json:"accuracy"` // percent, valid when succeeded
	Err      string        `json:"error,omitempty"`
	Duration time.Duration `json:"duration_ns"`
}

// ExperimentOptions configures a NAS experiment run.
type ExperimentOptions struct {
	// Workers is the trial-level parallelism (NNI's trial concurrency);
	// <= 0 selects GOMAXPROCS.
	Workers int
	// SimulateAttrition applies the paper-calibrated trial failure model so
	// a full paper grid yields exactly 1,717 valid outcomes.
	SimulateAttrition bool
	// Progress, when non-nil, receives (done, total) after every trial. It
	// is invoked concurrently from worker goroutines and must be safe for
	// concurrent use.
	Progress func(done, total int)
	// ProgressOffset shifts the done count and ProgressTotal overrides the
	// total reported to Progress (0 means len(configs) + ProgressOffset).
	// A resumed sweep sets these so a 288-trial plan with 276 journaled
	// trials reports "277/288", not "1/12".
	ProgressOffset int
	ProgressTotal  int
	// Journal, when non-nil, receives each trial as it completes — the
	// streaming durability hook. Appends happen on worker goroutines in
	// completion order (not input order); the sink must be safe for
	// concurrent use. The first append error is reported by
	// ExperimentContext; the sweep itself keeps running.
	Journal TrialSink
	// Stats, when non-nil, receives per-trial outcome counters (retries are
	// counted by RetryEvaluator.OnRetry, which the caller wires up).
	Stats *metrics.SweepStats
	// Profiler, when non-nil, records a per-trial "trial" span (plus a
	// "trial-failed" span for attrition/evaluator failures) — the §5
	// resource-profiling hook.
	Profiler *profiler.Profiler
}

// progressTotal resolves the total reported to the Progress callback.
func (o ExperimentOptions) progressTotal(n int) int {
	if o.ProgressTotal > 0 {
		return o.ProgressTotal
	}
	return n + o.ProgressOffset
}

// Experiment runs every configuration through the evaluator with dynamic
// load balancing (trials differ wildly in cost) and returns results in
// input order. It never stops early; for a cancellable sweep use
// ExperimentContext.
func Experiment(configs []resnet.Config, eval Evaluator, opts ExperimentOptions) []TrialResult {
	results, _ := ExperimentContext(context.Background(), configs, eval, opts)
	return results
}

// ExperimentContext is Experiment with cooperative cancellation: once ctx
// is cancelled no new trial starts, trials already running drain to
// completion (and reach opts.Journal), and the completed results come back
// in input order. The returned slice holds only trials that actually ran —
// len(results) < len(configs) after a cancellation. The error is ctx.Err()
// when the sweep was cut short, else the first journal append failure, else
// nil.
func ExperimentContext(ctx context.Context, configs []resnet.Config, eval Evaluator, opts ExperimentOptions) ([]TrialResult, error) {
	results := make([]TrialResult, len(configs))
	ran := make([]bool, len(configs))
	var done atomic.Int64
	var journalErr error
	var journalOnce sync.Once
	ctxErr := parallel.MapCtx(ctx, len(configs), opts.Workers, func(i int) {
		cfg := configs[i]
		start := time.Now()
		var stop func()
		if opts.Profiler != nil {
			stop = opts.Profiler.Start("trial")
		}
		res := TrialResult{ID: i, Config: cfg}
		if opts.SimulateAttrition && Attrition(i, cfg) {
			res.Status = TrialFailed
			res.Err = "trial attrition (simulated NNI worker failure)"
		} else if acc, err := eval.Evaluate(cfg); err != nil {
			res.Status = TrialFailed
			res.Err = err.Error()
		} else {
			res.Status = TrialSucceeded
			res.Accuracy = acc
		}
		res.Duration = time.Since(start)
		if stop != nil {
			stop()
			if res.Status == TrialFailed {
				opts.Profiler.Record("trial-failed", res.Duration)
			}
		}
		if res.Status == TrialSucceeded {
			opts.Stats.TrialDone(res.Duration)
		} else {
			opts.Stats.TrialFailed(res.Duration)
		}
		results[i] = res
		ran[i] = true
		if opts.Journal != nil {
			if err := opts.Journal.Append(res); err != nil {
				journalOnce.Do(func() { journalErr = err })
			}
		}
		if opts.Progress != nil {
			opts.Progress(int(done.Add(1))+opts.ProgressOffset, opts.progressTotal(len(configs)))
		}
	})
	if ctxErr == nil {
		// Full run: every slot is filled, skip the compaction scan.
		return results, journalErr
	}
	completed := results[:0]
	for i, r := range results {
		if ran[i] {
			completed = append(completed, r)
		}
	}
	return completed, ctxErr
}

// Succeeded filters an experiment's results to its valid outcomes.
func Succeeded(results []TrialResult) []TrialResult {
	var out []TrialResult
	for _, r := range results {
		if r.Status == TrialSucceeded {
			out = append(out, r)
		}
	}
	return out
}

// BestByAccuracy returns the highest-accuracy successful trial; ok is false
// when none succeeded.
func BestByAccuracy(results []TrialResult) (TrialResult, bool) {
	best := TrialResult{Accuracy: -1}
	ok := false
	for _, r := range results {
		if r.Status == TrialSucceeded && r.Accuracy > best.Accuracy {
			best = r
			ok = true
		}
	}
	return best, ok
}

// Resume support: a long NNI-style sweep interrupted mid-run restarts from
// its journal, re-running only the trials that have no recorded outcome.

// FilterCompleted splits configs into those already covered by journal
// entries (same raw configuration, succeeded) and those still to run.
// Failed journal entries are retried.
func FilterCompleted(configs []resnet.Config, journal []TrialResult) (remaining []resnet.Config, completed []TrialResult) {
	done := make(map[resnet.Config]TrialResult, len(journal))
	for _, r := range journal {
		if r.Status == TrialSucceeded {
			done[r.Config] = r
		}
	}
	for _, cfg := range configs {
		if r, ok := done[cfg]; ok {
			completed = append(completed, r)
		} else {
			remaining = append(remaining, cfg)
		}
	}
	return remaining, completed
}

// MergeResults orders trial outcomes by the plan: for each config (in
// order) it takes the outcome from the last set that has one, reassigns
// IDs to plan positions, and skips configs with no outcome yet (a sweep
// interrupted before reaching them). Typical use merges journal-reused
// results with a fresh partial run, fresh last so re-runs win.
func MergeResults(configs []resnet.Config, sets ...[]TrialResult) []TrialResult {
	byCfg := make(map[resnet.Config]TrialResult)
	for _, set := range sets {
		for _, r := range set {
			byCfg[r.Config] = r
		}
	}
	out := make([]TrialResult, 0, len(configs))
	for i, cfg := range configs {
		r, ok := byCfg[cfg]
		if !ok {
			continue
		}
		r.ID = i
		out = append(out, r)
	}
	return out
}

// ResumeExperiment continues an interrupted sweep: journaled successes are
// reused, the remainder re-runs through the evaluator, and the merged
// results come back in the order of configs. Progress reports against the
// full plan (done includes the reused trials).
func ResumeExperiment(configs []resnet.Config, journal []TrialResult, eval Evaluator, opts ExperimentOptions) []TrialResult {
	results, _ := ResumeExperimentContext(context.Background(), configs, journal, eval, opts)
	return results
}

// ResumeExperimentContext is ResumeExperiment with cooperative
// cancellation: a resumed sweep that is itself interrupted returns the
// journal-reused results plus whatever fresh trials completed, merged in
// plan order, alongside ctx.Err().
func ResumeExperimentContext(ctx context.Context, configs []resnet.Config, journal []TrialResult, eval Evaluator, opts ExperimentOptions) ([]TrialResult, error) {
	remaining, completed := FilterCompleted(configs, journal)
	if opts.ProgressOffset == 0 {
		opts.ProgressOffset = len(completed)
	}
	if opts.ProgressTotal == 0 {
		opts.ProgressTotal = len(configs)
	}
	fresh, err := ExperimentContext(ctx, remaining, eval, opts)
	return MergeResults(configs, completed, fresh), err
}

// EstimateFullScale extrapolates full-paper wall time from a measured
// sample, the §5 planning exercise: given the measured mean seconds per
// trial at this machine's scale and the cost ratio to the paper's scale
// (corpus size × image area × epochs), estimate hours for a full input
// combination (288 trials) at a given trial concurrency.
func EstimateFullScale(measuredSecPerTrial, scaleRatio float64, trials, concurrency int) (hours float64) {
	if concurrency < 1 {
		concurrency = 1
	}
	if trials < 1 {
		trials = 288
	}
	total := measuredSecPerTrial * scaleRatio * float64(trials) / float64(concurrency)
	return total / 3600
}
