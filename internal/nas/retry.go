package nas

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"drainnas/internal/resnet"
)

// ErrTransient marks a trial failure as retriable: an evaluator wraps it
// (fmt.Errorf("...: %w", nas.ErrTransient)) when the failure is an
// environmental flake — an OOM-killed worker, a lost connection — rather
// than a property of the configuration. RetryEvaluator retries only
// transient failures by default; an invalid architecture fails the same way
// every time and retrying it just burns budget.
var ErrTransient = errors.New("transient trial failure")

// IsTransient reports whether err is marked transient.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// RetryEvaluator wraps an Evaluator with bounded retry and exponential
// backoff, absorbing the transient failures an hours-long sweep will
// inevitably hit so they don't land in the journal as failed trials.
// The zero knobs choose sane defaults; the struct is safe for the
// concurrent use an experiment gives it as long as Inner is.
type RetryEvaluator struct {
	Inner Evaluator
	// MaxAttempts is the total number of tries per trial (first attempt
	// included); values < 2 mean a single attempt, i.e. no retry.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (doubled per retry); default
	// 100ms. MaxDelay caps it; default 5s.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Retryable decides which errors warrant another attempt; nil selects
	// IsTransient.
	Retryable func(error) bool
	// OnRetry, when non-nil, observes each retry before its backoff sleep —
	// the hook a sweep uses to count retries in metrics. It is called from
	// worker goroutines and must be safe for concurrent use.
	OnRetry func(attempt int, err error)
	// Sleep replaces time.Sleep in tests; nil selects time.Sleep.
	Sleep func(time.Duration)
}

// Evaluate tries Inner up to MaxAttempts times, backing off exponentially
// between attempts, and returns the last error when every attempt fails.
func (e RetryEvaluator) Evaluate(cfg resnet.Config) (float64, error) {
	attempts := e.MaxAttempts
	if attempts < 2 {
		return e.Inner.Evaluate(cfg)
	}
	base := e.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxDelay := e.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 5 * time.Second
	}
	retryable := e.Retryable
	if retryable == nil {
		retryable = IsTransient
	}
	sleep := e.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	var lastErr error
	delay := base
	for attempt := 1; attempt <= attempts; attempt++ {
		acc, err := e.Inner.Evaluate(cfg)
		if err == nil {
			return acc, nil
		}
		lastErr = err
		if attempt == attempts || !retryable(err) {
			break
		}
		if e.OnRetry != nil {
			e.OnRetry(attempt, err)
		}
		sleep(delay)
		delay *= 2
		if delay > maxDelay {
			delay = maxDelay
		}
	}
	return 0, lastErr
}

// FlakyEvaluator injects deterministic transient faults into an inner
// evaluator: each distinct configuration fails its first FailFirst
// attempts, then succeeds. It is the test double for retry, crash and
// resume paths — with FailFirst below the retry budget a sweep's final
// results must be identical to a fault-free run. Safe for concurrent use.
type FlakyEvaluator struct {
	Inner Evaluator
	// FailFirst is how many leading attempts per configuration fail with a
	// transient error.
	FailFirst int
	// Delay stretches every attempt, giving cancellation tests a window in
	// which a sweep is reliably mid-flight.
	Delay time.Duration

	mu       sync.Mutex
	attempts map[resnet.Config]int
}

// Evaluate fails the configuration's first FailFirst attempts, then
// delegates to Inner.
func (e *FlakyEvaluator) Evaluate(cfg resnet.Config) (float64, error) {
	if e.Delay > 0 {
		time.Sleep(e.Delay)
	}
	e.mu.Lock()
	if e.attempts == nil {
		e.attempts = make(map[resnet.Config]int)
	}
	e.attempts[cfg]++
	n := e.attempts[cfg]
	e.mu.Unlock()
	if n <= e.FailFirst {
		return 0, fmt.Errorf("injected fault (attempt %d of %s): %w", n, cfg.Key(), ErrTransient)
	}
	return e.Inner.Evaluate(cfg)
}

// Attempts returns how many times cfg has been evaluated so far.
func (e *FlakyEvaluator) Attempts(cfg resnet.Config) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.attempts[cfg]
}
