package api

import (
	"fmt"

	"drainnas/internal/infer"
	"drainnas/internal/tensor"
)

// PredictRequest is the POST /v1/predict body both front ends accept. SLO
// is honored by the router tier ("batch", "standard", "interactive";
// empty = standard) and ignored by a bare replica, so one client payload
// works against either tier.
type PredictRequest struct {
	Model string    `json:"model"`
	Shape []int     `json:"shape"` // (C, H, W)
	Data  []float32 `json:"data"`
	SLO   string    `json:"slo,omitempty"`
	// Precision selects the deployment arithmetic ("fp32" default, or
	// "int8" for the post-training-quantized form of the same container).
	// Equivalent to suffixing Model with "@int8"; setting both to
	// conflicting values is a bad_input error.
	Precision string `json:"precision,omitempty"`
}

// ResolveKey combines Model and Precision into the canonical serving key
// ("name" for fp32, "name@int8" for int8) the loader and model cache use.
func (req PredictRequest) ResolveKey() (string, error) {
	return ResolveServingKey(req.Model, req.Precision)
}

// ResolveServingKey combines a model name (which may itself carry an
// "@precision" suffix) and a precision string into the canonical serving
// key; conflicting suffix and precision is an error.
func ResolveServingKey(model, precision string) (string, error) {
	name, keyPrec, err := infer.ParseModelKey(model)
	if err != nil {
		return "", err
	}
	if precision == "" {
		return infer.ModelKey(name, keyPrec), nil
	}
	prec, err := infer.ParsePrecision(precision)
	if err != nil {
		return "", err
	}
	if keyPrec != infer.PrecisionFP32 && keyPrec != prec {
		return "", fmt.Errorf("model %q and precision %q conflict", model, precision)
	}
	return infer.ModelKey(name, prec), nil
}

// PredictResponse is the POST /v1/predict success body. Replica is set by
// the router tier (which replica served the request, and whether the winning
// attempt was a hedge); a bare replica leaves it empty.
type PredictResponse struct {
	Model     string    `json:"model"`
	Class     int       `json:"class"`
	Logits    []float32 `json:"logits"`
	BatchSize int       `json:"batch_size"`
	QueuedMS  float64   `json:"queued_ms"`
	TotalMS   float64   `json:"total_ms"`
	Replica   string    `json:"replica,omitempty"`
	Hedged    bool      `json:"hedged,omitempty"`
	// Precision reports the arithmetic the serving plan ran at ("fp32" or
	// "int8"); Model is the bare model name with any precision suffix
	// stripped.
	Precision string `json:"precision,omitempty"`
}

// SplitServedModel splits a serving key back into the response's bare model
// name and precision string, treating unparseable keys as fp32 passthrough.
func SplitServedModel(key string) (model, precision string) {
	name, prec, err := infer.ParseModelKey(key)
	if err != nil {
		return key, string(infer.PrecisionFP32)
	}
	return name, string(prec)
}

// Tensor validates the request's shape/data agreement and builds the input
// tensor. The error text is client-facing (it lands in a bad_input envelope).
func (req PredictRequest) Tensor() (*tensor.Tensor, error) {
	if len(req.Shape) != 3 {
		return nil, fmt.Errorf("shape must be (C,H,W), got %v", req.Shape)
	}
	numel := 1
	for _, d := range req.Shape {
		if d <= 0 {
			return nil, fmt.Errorf("shape %v has non-positive dim", req.Shape)
		}
		numel *= d
		if numel > 1<<26 {
			return nil, fmt.Errorf("shape %v too large", req.Shape)
		}
	}
	if len(req.Data) != numel {
		return nil, fmt.Errorf("data has %d values, shape %v implies %d", len(req.Data), req.Shape, numel)
	}
	return tensor.FromSlice(req.Data, req.Shape...), nil
}
