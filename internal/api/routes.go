package api

import (
	"fmt"
	"sort"
	"strings"
)

// Route describes one registered endpoint: the generated README reference
// table and the golden API-surface tests are both sourced from this
// registry, so the documented surface, the tested surface and the served
// surface cannot drift apart silently.
type Route struct {
	Method string
	// Path is the net/http register pattern ({id} wildcards included).
	Path string
	// Tiers lists the front ends serving the route ("servd", "router").
	Tiers []string
	// Deprecated marks a legacy alias: still served, but with a
	// Deprecation header and a successor Link, scheduled for removal.
	Deprecated bool
	// Successor is the canonical path replacing a deprecated alias.
	Successor string
	Desc      string
}

// Routes is the registry of every HTTP endpoint both front ends expose
// (pprof's debug mount, which is opt-in and not part of the /v1/ surface,
// is deliberately absent).
var Routes = []Route{
	{Method: "POST", Path: "/v1/predict", Tiers: []string{"servd", "router"},
		Desc: "classify one chip (body: PredictRequest; SLO and precision selectors)"},
	{Method: "POST", Path: "/v1/scan", Tiers: []string{"servd", "router"},
		Desc: "start a whole-watershed tile-scan job (body: ScanRequest); returns the job document"},
	{Method: "GET", Path: "/v1/scan/{id}", Tiers: []string{"servd", "router"},
		Desc: "poll a scan job's status and progress counters"},
	{Method: "GET", Path: "/v1/scan/{id}/events", Tiers: []string{"servd", "router"},
		Desc: "stream the job's ordered tile results and progress as NDJSON (?from= resumes)"},
	{Method: "DELETE", Path: "/v1/scan/{id}", Tiers: []string{"servd", "router"},
		Desc: "cancel a running scan job; in-flight tiles drain"},
	{Method: "GET", Path: "/v1/stats", Tiers: []string{"servd", "router"},
		Desc: "counters as JSON (ServdStats / RouterStats)"},
	{Method: "GET", Path: "/v1/metrics", Tiers: []string{"servd", "router"},
		Desc: "Prometheus text exposition of the same counters"},
	{Method: "GET", Path: "/v1/healthz", Tiers: []string{"servd", "router"},
		Desc: "liveness + models (HealthResponse); 503 degraded when the model dir is unreadable"},
	{Method: "GET", Path: "/v1/dashboard", Tiers: []string{"servd", "router"},
		Desc: "live dashboard HTML shell"},
	{Method: "GET", Path: "/v1/dashboard/ws", Tiers: []string{"servd", "router"},
		Desc: "dashboard snapshot stream over WebSocket"},
	{Method: "GET", Path: "/v1/dashboard/events", Tiers: []string{"servd", "router"},
		Desc: "dashboard snapshot stream over SSE"},
	{Method: "GET", Path: "/metrics", Tiers: []string{"servd", "router"},
		Deprecated: true, Successor: "/v1/metrics",
		Desc: "unversioned alias for scrapers configured before the /v1/ move"},
	{Method: "GET", Path: "/healthz", Tiers: []string{"servd", "router"},
		Deprecated: true, Successor: "/v1/healthz",
		Desc: "unversioned alias for probes configured before the /v1/ move"},
}

// RoutesFor returns the registry filtered to one tier.
func RoutesFor(tier string) []Route {
	var out []Route
	for _, r := range Routes {
		for _, t := range r.Tiers {
			if t == tier {
				out = append(out, r)
				break
			}
		}
	}
	return out
}

// EndpointTable renders the registry as the markdown reference table the
// README embeds (a doc test pins the embedded copy against this).
func EndpointTable() string {
	var b strings.Builder
	b.WriteString("| Method | Path | Tiers | Description |\n")
	b.WriteString("|--------|------|-------|-------------|\n")
	for _, r := range Routes {
		desc := r.Desc
		if r.Deprecated {
			desc = fmt.Sprintf("**deprecated** (use `%s`) — %s", r.Successor, desc)
		}
		fmt.Fprintf(&b, "| %s | `%s` | %s | %s |\n", r.Method, r.Path, strings.Join(r.Tiers, ", "), desc)
	}
	return b.String()
}

// ErrorCodeTable renders the stable code set (code, HTTP status) sorted by
// status then code, for the README.
func ErrorCodeTable() string {
	type row struct {
		code   string
		status int
	}
	rows := make([]row, 0, len(KnownCodes))
	for c, s := range KnownCodes {
		rows = append(rows, row{c, s})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].status != rows[j].status {
			return rows[i].status < rows[j].status
		}
		return rows[i].code < rows[j].code
	})
	var b strings.Builder
	b.WriteString("| Code | HTTP status |\n|------|-------------|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| `%s` | %d |\n", r.code, r.status)
	}
	return b.String()
}
