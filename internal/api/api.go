// Package api is the single source of truth for the /v1/ wire surface both
// serving front ends (cmd/servd and cmd/router) expose: every request and
// response struct, the unified error envelope with its stable code set, the
// scan-job types, and a typed Go client with context, retries and typed
// errors. It was extracted when the whole-watershed scan API arrived —
// until then five packages (servd, router, deploy, capsim's replayer and
// the router's HTTP fan-out adapter) each hand-rolled the same structs, and
// wire drift between them could only be caught by a user.
//
// Layering: api sits below the transport plumbing (internal/httpx renders
// the envelope and stamps request IDs) and above nothing HTTP-specific —
// it may import the snapshot types it carries (internal/metrics,
// internal/serve) but never a front end or middleware package, so every
// tier can depend on it without cycles.
package api

// Stable machine-readable error codes; clients branch on these, the
// message is for humans. Documented in the README endpoint table — adding
// a code is fine, renaming one is a breaking change.
const (
	CodeBadInput      = "bad_input"
	CodeModelNotFound = "model_not_found"
	CodeQueueFull     = "queue_full"
	CodeThrottled     = "throttled"
	CodeNoReplicas    = "no_replicas"
	CodeShuttingDown  = "shutting_down"
	CodeCanceled      = "canceled"
	CodeInternal      = "internal"
	// CodeUnauthorized (401) and CodeQuotaExceeded (429) belong to the
	// multi-tenant edge tier: a missing/unknown API key, and a valid tenant
	// over its own token-bucket quota (distinct from queue_full/throttled,
	// which are global capacity limits).
	CodeUnauthorized  = "unauthorized"
	CodeQuotaExceeded = "quota_exceeded"
	// CodeScanNotFound (404) is an unknown scan-job ID; CodeScanLimit (429)
	// means the job table is at its concurrent-scan bound.
	CodeScanNotFound = "scan_not_found"
	CodeScanLimit    = "scan_limit"
)

// KnownCodes enumerates every stable error code with the HTTP status each
// is written under. The golden API-surface tests walk this table, so a
// front end inventing a code (or reusing one under a new status) fails CI
// instead of a client.
var KnownCodes = map[string]int{
	CodeBadInput:      400,
	CodeUnauthorized:  401,
	CodeModelNotFound: 404,
	CodeScanNotFound:  404,
	CodeQueueFull:     429,
	CodeThrottled:     429,
	CodeQuotaExceeded: 429,
	CodeScanLimit:     429,
	CodeNoReplicas:    503,
	CodeShuttingDown:  503,
	CodeCanceled:      503,
	CodeInternal:      500,
}

// ErrorEnvelope is the unified error body every front end writes.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// ErrorBody carries one error: a stable code, a human message, and the
// request ID so a client can quote it back from either the header or body.
type ErrorBody struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id,omitempty"`
}

// MaxPredictBodyBytes bounds a predict request body; a 7x512x512 fp32 chip
// is ~7.3 MB of floats, JSON-encoded ≈5x that, so 64 MB is generous.
const MaxPredictBodyBytes = 64 << 20
