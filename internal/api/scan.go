package api

import "fmt"

// Tile-scan orders. Row-major is the obvious raster walk; the Hilbert
// option preserves 2-D spatial locality in the 1-D request stream, so
// consecutive requests hit neighboring terrain (and the serving tier's
// batch formation and cache policy see the correlated load a real
// watershed scan produces).
const (
	ScanOrderRowMajor = "row-major"
	ScanOrderHilbert  = "hilbert"
)

// Scan-job lifecycle states, as reported by GET /v1/scan/{id}.
const (
	ScanStateRunning  = "running"
	ScanStateDone     = "done"
	ScanStateCanceled = "canceled"
	ScanStateFailed   = "failed"
)

// ScanRequest is the POST /v1/scan body: classify every chip-sized window
// of a synthesized watershed through the serving tier and reassemble the
// ordered drainage-crossing heat map. The watershed is generated
// deterministically from (region, tile_size, seed), so the same request
// against the same models yields a byte-identical heat map.
type ScanRequest struct {
	// Model and Precision select the serving key, exactly as for predict.
	Model     string `json:"model"`
	Precision string `json:"precision,omitempty"`
	// SLO is honored by the router tier ("batch" is the natural class for
	// a bulk scan); a bare replica ignores it.
	SLO string `json:"slo,omitempty"`
	// Region is one of the paper's study regions ("Nebraska", "Illinois",
	// "North Dakota", "California").
	Region string `json:"region"`
	// TileSize is the watershed raster side in cells; ChipSize the model
	// input side. Stride defaults to ChipSize (non-overlapping windows).
	TileSize int `json:"tile_size"`
	ChipSize int `json:"chip_size"`
	Stride   int `json:"stride,omitempty"`
	// Channels is the model input depth (5 or 7, default 5).
	Channels int `json:"channels,omitempty"`
	// Seed makes the synthesized watershed (and therefore the heat map)
	// reproducible.
	Seed uint64 `json:"seed"`
	// Order is the tile walk: "row-major" (default) or "hilbert".
	Order string `json:"order,omitempty"`
	// Window bounds in-flight tiles (the sliding window; default 8).
	Window int `json:"window,omitempty"`
	// MaxRetries bounds per-tile retries of retryable serving errors
	// (queue_full, throttled, transport); default 3.
	MaxRetries int `json:"max_retries,omitempty"`
	// Threshold is the positive-score cutoff for the crossing count
	// (default 0.5).
	Threshold float64 `json:"threshold,omitempty"`
}

// MaxScanTiles bounds one job's grid: events are retained in memory for
// replay-then-follow streaming, so an unbounded grid would be an
// unbounded allocation an unauthenticated client controls.
const MaxScanTiles = 16384

// WithDefaults fills the optional knobs.
func (r ScanRequest) WithDefaults() ScanRequest {
	if r.Stride <= 0 {
		r.Stride = r.ChipSize
	}
	if r.Channels == 0 {
		r.Channels = 5
	}
	if r.Order == "" {
		r.Order = ScanOrderRowMajor
	}
	if r.Window <= 0 {
		r.Window = 8
	}
	if r.MaxRetries == 0 {
		r.MaxRetries = 3
	}
	if r.Threshold == 0 {
		r.Threshold = 0.5
	}
	return r
}

// Validate rejects malformed scan requests with client-facing messages
// (they land in bad_input envelopes). Call on the WithDefaults form.
func (r ScanRequest) Validate() error {
	if r.Model == "" {
		return fmt.Errorf("model is required")
	}
	if r.Region == "" {
		return fmt.Errorf("region is required")
	}
	if r.TileSize < 32 {
		return fmt.Errorf("tile_size %d too small (min 32)", r.TileSize)
	}
	if r.TileSize > 4096 {
		return fmt.Errorf("tile_size %d too large (max 4096)", r.TileSize)
	}
	if r.ChipSize < 8 || r.ChipSize >= r.TileSize {
		return fmt.Errorf("chip_size %d must be in [8, tile_size)", r.ChipSize)
	}
	if r.Stride < 1 {
		return fmt.Errorf("stride %d must be >= 1", r.Stride)
	}
	if r.Channels != 5 && r.Channels != 7 {
		return fmt.Errorf("channels %d must be 5 or 7", r.Channels)
	}
	if r.Order != ScanOrderRowMajor && r.Order != ScanOrderHilbert {
		return fmt.Errorf("order %q must be %q or %q", r.Order, ScanOrderRowMajor, ScanOrderHilbert)
	}
	if r.Window < 1 || r.Window > 1024 {
		return fmt.Errorf("window %d must be in [1, 1024]", r.Window)
	}
	if r.MaxRetries < 0 || r.MaxRetries > 64 {
		return fmt.Errorf("max_retries %d must be in [0, 64]", r.MaxRetries)
	}
	if r.Threshold < 0 || r.Threshold > 1 {
		return fmt.Errorf("threshold %g must be in [0, 1]", r.Threshold)
	}
	side := 1 + (r.TileSize-r.ChipSize)/r.Stride
	if tiles := side * side; tiles > MaxScanTiles {
		return fmt.Errorf("grid is %d tiles, max %d (raise stride or shrink tile_size)", tiles, MaxScanTiles)
	}
	return nil
}

// ScanJob is a job's status document: the POST /v1/scan response and the
// GET /v1/scan/{id} body, also embedded in progress/done events.
type ScanJob struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// The resolved request (model is the serving key the tiles run under).
	Model  string `json:"model"`
	Region string `json:"region"`
	Order  string `json:"order"`
	Seed   uint64 `json:"seed"`
	// GridW×GridH is the tile grid; TotalTiles its size.
	GridW      int `json:"grid_w"`
	GridH      int `json:"grid_h"`
	TotalTiles int `json:"total_tiles"`
	// Progress counters; Crossings is the exact count of tiles whose
	// positive score cleared the threshold so far.
	DoneTiles   int `json:"done_tiles"`
	FailedTiles int `json:"failed_tiles"`
	Retries     int `json:"retries"`
	Crossings   int `json:"crossings"`
	// TruthCrossings is the ground-truth count of grid tiles containing a
	// stamped crossing — the scan's exact-count reference.
	TruthCrossings int     `json:"truth_crossings"`
	ElapsedMS      float64 `json:"elapsed_ms"`
	// Tenant attributes the job when the edge tier admitted it.
	Tenant string `json:"tenant,omitempty"`
	Error  string `json:"error,omitempty"`
}

// Scan event types carried on GET /v1/scan/{id}/events (one NDJSON object
// per line).
const (
	ScanEventTile     = "tile"
	ScanEventProgress = "progress"
	ScanEventDone     = "done"
)

// ScanTile is one classified window, emitted strictly in scan order.
type ScanTile struct {
	// ID is the deterministic tile identifier, derived from grid position
	// alone (y*grid_w + x) — stable across orders, runs and concurrency.
	ID int `json:"id"`
	X  int `json:"x"`
	Y  int `json:"y"`
	// Class is the argmax class; Score the softmax probability of the
	// crossing class.
	Class     int     `json:"class"`
	Score     float64 `json:"score"`
	BatchSize int     `json:"batch_size,omitempty"`
	Replica   string  `json:"replica,omitempty"`
	LatencyMS float64 `json:"latency_ms"`
	Retries   int     `json:"retries,omitempty"`
	// Failed marks a tile that exhausted its retries; Class/Score are
	// meaningless and the heat map records it as unknown.
	Failed bool   `json:"failed,omitempty"`
	Err    string `json:"error,omitempty"`
}

// ScanEvent is one line of the NDJSON event stream. Seq increases by one
// per line from 0, so a client can resume with ?from=<seq>.
type ScanEvent struct {
	Type string    `json:"type"`
	Seq  int       `json:"seq"`
	Tile *ScanTile `json:"tile,omitempty"`
	Job  *ScanJob  `json:"job,omitempty"`
}
