package api

import (
	"drainnas/internal/metrics"
	"drainnas/internal/serve"
)

// HealthResponse is the GET /v1/healthz body for both tiers. Status is
// "ok" (200) or "degraded" (503, with Error set); servd reports its model
// directory, the router additionally its fleet size and policy.
type HealthResponse struct {
	Status   string   `json:"status"`
	Error    string   `json:"error,omitempty"`
	Replicas int      `json:"replicas,omitempty"`
	Policy   string   `json:"policy,omitempty"`
	Models   []string `json:"models"`
}

// FairStats is the weighted-fair admission gate's slice of a stats or
// dashboard document.
type FairStats struct {
	Capacity int            `json:"capacity"`
	InUse    int            `json:"in_use"`
	Waiting  int            `json:"waiting"`
	Depths   map[string]int `json:"depths,omitempty"`
}

// ServdStats is servd's GET /v1/stats document.
type ServdStats struct {
	Serving metrics.ServingSnapshot `json:"serving"`
	Cache   serve.CacheStats        `json:"cache"`
	Queue   int                     `json:"queue"`
	Infer   metrics.InferSnapshot   `json:"infer"`
	Kernel  metrics.KernelSnapshot  `json:"kernel"`
	Gemm    string                  `json:"gemm"`
	QGemm   string                  `json:"qgemm"`
	Tenant  *metrics.TenantSnapshot `json:"tenant,omitempty"`
	Fair    *FairStats              `json:"fair,omitempty"`
	Scan    *metrics.ScanSnapshot   `json:"scan,omitempty"`
}

// RouterStats is the router's GET /v1/stats document.
type RouterStats struct {
	Router   metrics.RouterSnapshot  `json:"router"`
	Serving  metrics.ServingSnapshot `json:"serving"`
	Replicas []string                `json:"replicas"`
	Policy   string                  `json:"policy"`
	Waiting  int                     `json:"waiting"`
	Tenant   *metrics.TenantSnapshot `json:"tenant,omitempty"`
	Fair     *FairStats              `json:"fair,omitempty"`
	Scan     *metrics.ScanSnapshot   `json:"scan,omitempty"`
}

// DashboardSnapshot is one live-dashboard frame (WebSocket at
// /v1/dashboard/ws, SSE at /v1/dashboard/events): what the serving mux is
// doing, the per-tenant edge counters, and the fair gate's backlog,
// stamped with the emitting service.
type DashboardSnapshot struct {
	Service string                  `json:"service"`
	Serving metrics.ServingSnapshot `json:"serving"`
	Tenants metrics.TenantSnapshot  `json:"tenants"`
	Fair    FairStats               `json:"fair"`
}
