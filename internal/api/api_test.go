package api

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestKnownCodesCoverConstants(t *testing.T) {
	for _, code := range []string{
		CodeBadInput, CodeModelNotFound, CodeQueueFull, CodeThrottled,
		CodeNoReplicas, CodeShuttingDown, CodeCanceled, CodeInternal,
		CodeUnauthorized, CodeQuotaExceeded, CodeScanNotFound, CodeScanLimit,
	} {
		status, ok := KnownCodes[code]
		if !ok {
			t.Errorf("code %q missing from KnownCodes", code)
		}
		if status < 400 || status > 599 {
			t.Errorf("code %q has non-error status %d", code, status)
		}
	}
	if len(KnownCodes) != 12 {
		t.Errorf("KnownCodes has %d entries; update this test when adding codes", len(KnownCodes))
	}
}

func TestErrorEnvelopeRoundTrip(t *testing.T) {
	env := ErrorEnvelope{Error: ErrorBody{Code: CodeQueueFull, Message: "queue is full", RequestID: "abc-000001"}}
	b, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"error":{"code":"queue_full","message":"queue is full","request_id":"abc-000001"}}`
	if string(b) != want {
		t.Fatalf("envelope encoding drifted:\n got %s\nwant %s", b, want)
	}
	var back ErrorEnvelope
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != env {
		t.Fatalf("round trip: got %+v want %+v", back, env)
	}
}

func TestScanRequestDefaultsAndValidate(t *testing.T) {
	base := ScanRequest{Model: "tiny", Region: "Nebraska", TileSize: 128, ChipSize: 32, Seed: 7}
	r := base.WithDefaults()
	if r.Stride != 32 || r.Channels != 5 || r.Order != ScanOrderRowMajor ||
		r.Window != 8 || r.MaxRetries != 3 || r.Threshold != 0.5 {
		t.Fatalf("defaults wrong: %+v", r)
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}

	bad := []struct {
		name string
		mut  func(*ScanRequest)
		frag string
	}{
		{"no model", func(r *ScanRequest) { r.Model = "" }, "model is required"},
		{"no region", func(r *ScanRequest) { r.Region = "" }, "region is required"},
		{"tile too small", func(r *ScanRequest) { r.TileSize = 16 }, "too small"},
		{"tile too large", func(r *ScanRequest) { r.TileSize = 8192 }, "too large"},
		{"chip out of range", func(r *ScanRequest) { r.ChipSize = 4 }, "chip_size"},
		{"chip >= tile", func(r *ScanRequest) { r.ChipSize = 128 }, "chip_size"},
		{"bad channels", func(r *ScanRequest) { r.Channels = 6 }, "channels"},
		{"bad order", func(r *ScanRequest) { r.Order = "spiral" }, "order"},
		{"bad window", func(r *ScanRequest) { r.Window = 4096 }, "window"},
		{"bad retries", func(r *ScanRequest) { r.MaxRetries = 100 }, "max_retries"},
		{"bad threshold", func(r *ScanRequest) { r.Threshold = 1.5 }, "threshold"},
		{"grid too big", func(r *ScanRequest) { r.TileSize = 4096; r.ChipSize = 8; r.Stride = 8 }, "tiles"},
	}
	for _, tc := range bad {
		r := base.WithDefaults()
		tc.mut(&r)
		err := r.Validate()
		if err == nil {
			t.Errorf("%s: accepted %+v", tc.name, r)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.frag)
		}
	}
}

func TestRoutesRegistry(t *testing.T) {
	seen := map[string]bool{}
	canonical := map[string]bool{}
	for _, r := range Routes {
		key := r.Method + " " + r.Path
		if seen[key] {
			t.Errorf("duplicate route %s", key)
		}
		seen[key] = true
		if !r.Deprecated {
			canonical[r.Path] = true
		}
		if len(r.Tiers) == 0 || r.Desc == "" {
			t.Errorf("route %s missing tiers or description", key)
		}
	}
	for _, r := range Routes {
		if r.Deprecated && !canonical[r.Successor] {
			t.Errorf("deprecated %s names successor %q which is not a canonical route", r.Path, r.Successor)
		}
		if !r.Deprecated && r.Successor != "" {
			t.Errorf("non-deprecated %s has a successor", r.Path)
		}
	}
	for _, tier := range []string{"servd", "router"} {
		if len(RoutesFor(tier)) == 0 {
			t.Errorf("RoutesFor(%q) is empty", tier)
		}
	}
	table := EndpointTable()
	for _, r := range Routes {
		if !strings.Contains(table, "`"+r.Path+"`") {
			t.Errorf("EndpointTable missing %s", r.Path)
		}
	}
	codes := ErrorCodeTable()
	for code := range KnownCodes {
		if !strings.Contains(codes, "`"+code+"`") {
			t.Errorf("ErrorCodeTable missing %s", code)
		}
	}
}

func TestRetryablePolicy(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{&Error{Status: 429, Code: CodeQueueFull}, true},
		{&Error{Status: 429, Code: CodeThrottled}, true},
		{&Error{Status: 429, Code: CodeQuotaExceeded}, true},
		{&Error{Status: 400, Code: CodeBadInput}, false},
		{&Error{Status: 404, Code: CodeModelNotFound}, false},
		{&Error{Status: 401, Code: CodeUnauthorized}, false},
		{&Error{Status: 503, Code: CodeShuttingDown}, false},
		{errors.New("connection refused"), true},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestErrorCodeExtraction(t *testing.T) {
	wrapped := &Error{Status: 429, Code: CodeThrottled, Message: "slow down"}
	if got := ErrorCode(wrapped); got != CodeThrottled {
		t.Fatalf("ErrorCode = %q", got)
	}
	if got := ErrorCode(errors.New("plain")); got != "" {
		t.Fatalf("ErrorCode(plain) = %q", got)
	}
	if !strings.Contains(wrapped.Error(), "throttled") || !strings.Contains(wrapped.Error(), "429") {
		t.Fatalf("Error() = %q", wrapped.Error())
	}
}

// envelopeHandler writes a typed error envelope the way httpx.Error does.
func envelopeHandler(status int, code, msg string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Request-ID", "test-000042")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(ErrorEnvelope{Error: ErrorBody{Code: code, Message: msg, RequestID: "test-000042"}})
	}
}

func TestClientTypedErrors(t *testing.T) {
	srv := httptest.NewServer(envelopeHandler(http.StatusNotFound, CodeModelNotFound, "no such model"))
	defer srv.Close()
	c := NewClient(srv.URL+"/", ClientOptions{}) // trailing slash trimmed
	if c.Base() != srv.URL {
		t.Fatalf("base = %q", c.Base())
	}
	_, err := c.Predict(context.Background(), PredictRequest{Model: "ghost"})
	var e *Error
	if !errors.As(err, &e) {
		t.Fatalf("want *Error, got %T: %v", err, err)
	}
	if e.Status != 404 || e.Code != CodeModelNotFound || e.RequestID != "test-000042" {
		t.Fatalf("typed error wrong: %+v", e)
	}
}

func TestClientRetriesTransientThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			envelopeHandler(http.StatusTooManyRequests, CodeQueueFull, "backlog full")(w, r)
			return
		}
		json.NewEncoder(w).Encode(PredictResponse{Model: "tiny", Class: 1})
	}))
	defer srv.Close()
	c := NewClient(srv.URL, ClientOptions{Retries: 3, RetryBackoff: time.Millisecond})
	resp, err := c.Predict(context.Background(), PredictRequest{Model: "tiny"})
	if err != nil {
		t.Fatalf("predict after retries: %v", err)
	}
	if resp.Class != 1 || calls.Load() != 3 {
		t.Fatalf("class=%d calls=%d", resp.Class, calls.Load())
	}
}

func TestClientDoesNotRetryBadInput(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		envelopeHandler(http.StatusBadRequest, CodeBadInput, "shape mismatch")(w, r)
	}))
	defer srv.Close()
	c := NewClient(srv.URL, ClientOptions{Retries: 5, RetryBackoff: time.Millisecond})
	_, err := c.Predict(context.Background(), PredictRequest{Model: "tiny"})
	if ErrorCode(err) != CodeBadInput || calls.Load() != 1 {
		t.Fatalf("err=%v calls=%d", err, calls.Load())
	}
}

func TestClientNeverRetriesStartScan(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		envelopeHandler(http.StatusTooManyRequests, CodeQueueFull, "busy")(w, r)
	}))
	defer srv.Close()
	c := NewClient(srv.URL, ClientOptions{Retries: 5, RetryBackoff: time.Millisecond})
	_, err := c.StartScan(context.Background(), ScanRequest{Model: "tiny", Region: "Nebraska"})
	if ErrorCode(err) != CodeQueueFull || calls.Load() != 1 {
		t.Fatalf("StartScan must not retry: err=%v calls=%d", err, calls.Load())
	}
}

func TestClientSendsAPIKeyAndContentType(t *testing.T) {
	var gotAuth, gotCT string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotAuth = r.Header.Get("Authorization")
		gotCT = r.Header.Get("Content-Type")
		json.NewEncoder(w).Encode(PredictResponse{})
	}))
	defer srv.Close()
	c := NewClient(srv.URL, ClientOptions{APIKey: "sk-edge-1"})
	if _, err := c.Predict(context.Background(), PredictRequest{Model: "m"}); err != nil {
		t.Fatal(err)
	}
	if gotAuth != "Bearer sk-edge-1" || gotCT != "application/json" {
		t.Fatalf("auth=%q ct=%q", gotAuth, gotCT)
	}
}

func TestClientHealthDegraded(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		envelopeHandler(http.StatusServiceUnavailable, CodeInternal, "model dir unreadable")(w, r)
	}))
	defer srv.Close()
	c := NewClient(srv.URL, ClientOptions{})
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatalf("degraded health must not be an error: %v", err)
	}
	if h.Status != "degraded" || !strings.Contains(h.Error, "unreadable") {
		t.Fatalf("health = %+v", h)
	}
}

func TestClientScanEventStream(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if got := r.URL.Query().Get("from"); got != "2" {
			t.Errorf("from = %q", got)
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		enc.Encode(ScanEvent{Type: ScanEventTile, Seq: 2, Tile: &ScanTile{ID: 2, X: 2, Y: 0, Class: 1, Score: 0.9}})
		enc.Encode(ScanEvent{Type: ScanEventDone, Seq: 3, Job: &ScanJob{ID: "scan-1", State: ScanStateDone}})
	}))
	defer srv.Close()
	c := NewClient(srv.URL, ClientOptions{})
	stream, err := c.ScanEvents(context.Background(), "scan-1", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	ev1, err := stream.Next()
	if err != nil || ev1.Type != ScanEventTile || ev1.Tile == nil || ev1.Tile.ID != 2 {
		t.Fatalf("ev1 = %+v err=%v", ev1, err)
	}
	ev2, err := stream.Next()
	if err != nil || ev2.Type != ScanEventDone || ev2.Job == nil || ev2.Job.State != ScanStateDone {
		t.Fatalf("ev2 = %+v err=%v", ev2, err)
	}
	if _, err := stream.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestClientScanEventsErrorEnvelope(t *testing.T) {
	srv := httptest.NewServer(envelopeHandler(http.StatusNotFound, CodeScanNotFound, "no such job"))
	defer srv.Close()
	c := NewClient(srv.URL, ClientOptions{})
	_, err := c.ScanEvents(context.Background(), "ghost", 0)
	if ErrorCode(err) != CodeScanNotFound {
		t.Fatalf("err = %v", err)
	}
}

func TestPredictRequestTensor(t *testing.T) {
	good := PredictRequest{Shape: []int{2, 3, 3}, Data: make([]float32, 18)}
	x, err := good.Tensor()
	if err != nil || x.Numel() != 18 {
		t.Fatalf("tensor: %v", err)
	}
	for _, bad := range []PredictRequest{
		{Shape: []int{3, 3}, Data: make([]float32, 9)},
		{Shape: []int{2, 3, -1}, Data: nil},
		{Shape: []int{2, 3, 3}, Data: make([]float32, 5)},
		{Shape: []int{1 << 13, 1 << 13, 2}, Data: nil},
	} {
		if _, err := bad.Tensor(); err == nil {
			t.Errorf("accepted bad request %+v", bad)
		}
	}
}

func TestResolveServingKey(t *testing.T) {
	if k, err := ResolveServingKey("tiny", ""); err != nil || k != "tiny" {
		t.Fatalf("fp32: %q %v", k, err)
	}
	if k, err := ResolveServingKey("tiny", "int8"); err != nil || k != "tiny@int8" {
		t.Fatalf("int8: %q %v", k, err)
	}
	if k, err := ResolveServingKey("tiny@int8", ""); err != nil || k != "tiny@int8" {
		t.Fatalf("suffix: %q %v", k, err)
	}
	if _, err := ResolveServingKey("tiny@int8", "fp32"); err == nil {
		t.Fatal("conflict accepted")
	}
}
