package api

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"
)

// Error is the typed form of a /v1/ error envelope: the HTTP status it was
// written under, the stable code, the human message, and the request ID
// for quoting back in a report.
type Error struct {
	Status    int
	Code      string
	Message   string
	RequestID string
}

// Error implements error.
func (e *Error) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("api: %s (%s, http %d, request %s)", e.Message, e.Code, e.Status, e.RequestID)
	}
	return fmt.Sprintf("api: %s (%s, http %d)", e.Message, e.Code, e.Status)
}

// ErrorCode extracts the stable code from an error chain ("" when the
// error is not a wire error).
func ErrorCode(err error) string {
	var e *Error
	if errors.As(err, &e) {
		return e.Code
	}
	return ""
}

// Retryable reports whether a failed call is worth retrying against the
// same endpoint: transient capacity rejections (queue_full, throttled,
// quota_exceeded) and transport errors, but never input/lookup errors,
// auth failures, shutdown, or the caller's own context expiring.
func Retryable(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var e *Error
	if errors.As(err, &e) {
		switch e.Code {
		case CodeQueueFull, CodeThrottled, CodeQuotaExceeded:
			return true
		}
		return false
	}
	return true // transport-level failure
}

// ClientOptions tunes NewClient; the zero value is usable.
type ClientOptions struct {
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// APIKey, when set, is sent as Authorization: Bearer on every request
	// (the multi-tenant edge tier's credential).
	APIKey string
	// Retries is how many times idempotent calls (predict, reads) are
	// re-attempted after a Retryable failure; 0 disables retrying.
	Retries int
	// RetryBackoff is the base delay between attempts, doubled each retry
	// (default 100ms when Retries > 0).
	RetryBackoff time.Duration
}

// Client is the typed Go client for the /v1/ surface of either tier. It
// speaks exactly the wire types in this package, maps error envelopes to
// *Error, honors contexts, and retries idempotent calls on transient
// rejections with exponential backoff.
type Client struct {
	base    string
	http    *http.Client
	apiKey  string
	retries int
	backoff time.Duration
}

// NewClient builds a client for base (e.g. "http://10.0.0.3:8090"); a
// trailing slash is trimmed.
func NewClient(base string, opts ClientOptions) *Client {
	hc := opts.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	backoff := opts.RetryBackoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return &Client{base: base, http: hc, apiKey: opts.APIKey, retries: opts.Retries, backoff: backoff}
}

// Base returns the client's base URL.
func (c *Client) Base() string { return c.base }

// do runs one HTTP round trip and decodes the response into out (skipped
// when out is nil). Non-2xx responses become *Error.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("api: encoding %s %s: %w", method, path, err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.apiKey)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("api: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// decodeError maps a non-2xx response to *Error; a body that is not an
// envelope still yields a typed error with code "internal".
func decodeError(resp *http.Response) error {
	e := &Error{Status: resp.StatusCode, Code: CodeInternal, RequestID: resp.Header.Get("X-Request-ID")}
	var env ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err == nil && env.Error.Code != "" {
		e.Code = env.Error.Code
		e.Message = env.Error.Message
		if env.Error.RequestID != "" {
			e.RequestID = env.Error.RequestID
		}
	} else {
		e.Message = fmt.Sprintf("unexpected status %d", resp.StatusCode)
	}
	return e
}

// doRetry is do plus the client's retry policy for idempotent calls.
func (c *Client) doRetry(ctx context.Context, method, path string, in, out any) error {
	var err error
	for attempt := 0; ; attempt++ {
		if err = c.do(ctx, method, path, in, out); err == nil || attempt >= c.retries || !Retryable(err) {
			return err
		}
		delay := c.backoff << attempt
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Predict classifies one chip. Retries (when configured) are safe:
// inference is idempotent.
func (c *Client) Predict(ctx context.Context, req PredictRequest) (PredictResponse, error) {
	var out PredictResponse
	err := c.doRetry(ctx, http.MethodPost, "/v1/predict", req, &out)
	return out, err
}

// Health fetches /v1/healthz. A degraded (503) report is returned as the
// document, not an error, so probes can read the reason.
func (c *Client) Health(ctx context.Context) (HealthResponse, error) {
	var out HealthResponse
	err := c.doRetry(ctx, http.MethodGet, "/v1/healthz", nil, &out)
	var e *Error
	if errors.As(err, &e) && e.Status == http.StatusServiceUnavailable {
		return HealthResponse{Status: "degraded", Error: e.Message}, nil
	}
	return out, err
}

// Stats fetches the tier's /v1/stats document raw; decode into ServdStats
// or RouterStats as appropriate.
func (c *Client) Stats(ctx context.Context) (json.RawMessage, error) {
	var out json.RawMessage
	err := c.doRetry(ctx, http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

// StartScan submits a scan job. Never retried: job creation is not
// idempotent, and a retry after an ambiguous failure could start two
// scans.
func (c *Client) StartScan(ctx context.Context, req ScanRequest) (ScanJob, error) {
	var out ScanJob
	err := c.do(ctx, http.MethodPost, "/v1/scan", req, &out)
	return out, err
}

// ScanStatus polls one job.
func (c *Client) ScanStatus(ctx context.Context, id string) (ScanJob, error) {
	var out ScanJob
	err := c.doRetry(ctx, http.MethodGet, "/v1/scan/"+url.PathEscape(id), nil, &out)
	return out, err
}

// CancelScan cancels a running job; the returned status reflects the
// cancellation (already-finished jobs return their terminal state).
func (c *Client) CancelScan(ctx context.Context, id string) (ScanJob, error) {
	var out ScanJob
	err := c.do(ctx, http.MethodDelete, "/v1/scan/"+url.PathEscape(id), nil, &out)
	return out, err
}

// ScanEventStream iterates a job's NDJSON event stream.
type ScanEventStream struct {
	body io.ReadCloser
	dec  *json.Decoder
}

// Next returns the next event; io.EOF after the terminal event.
func (s *ScanEventStream) Next() (ScanEvent, error) {
	var ev ScanEvent
	err := s.dec.Decode(&ev)
	return ev, err
}

// Close releases the underlying connection.
func (s *ScanEventStream) Close() error { return s.body.Close() }

// ScanEvents opens a job's event stream from sequence number from (0
// replays the whole scan, then follows live). Cancel ctx to stop
// following.
func (c *Client) ScanEvents(ctx context.Context, id string, from int) (*ScanEventStream, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/scan/%s/events?from=%d", c.base, url.PathEscape(id), from), nil)
	if err != nil {
		return nil, err
	}
	if c.apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.apiKey)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer func() {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
		return nil, decodeError(resp)
	}
	return &ScanEventStream{body: resp.Body, dec: json.NewDecoder(resp.Body)}, nil
}
