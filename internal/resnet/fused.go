package resnet

import (
	"fmt"

	"drainnas/internal/nn"
	"drainnas/internal/tensor"
)

// FusedModel is the deployment form of a trained Model: every
// Conv→BatchNorm pair is folded into a single biased convolution, matching
// the fused conv-bn kernels the latency predictor prices. It is
// inference-only.
type FusedModel struct {
	Config Config

	stemConv *nn.Conv2d
	stemPool *nn.MaxPool2d // nil without pooling
	blocks   []fusedBlock
	fc       *nn.Linear
}

// fusedBlock is a BasicBlock with its BNs folded away.
type fusedBlock struct {
	conv1, conv2 *nn.Conv2d
	down         *nn.Conv2d // nil for identity shortcuts
}

// Fuse converts a trained model into its deployment form. The model's
// BatchNorm running statistics must be populated (i.e. the model has seen
// training batches); a freshly initialized model fuses too, it just bakes
// in the initial statistics.
func Fuse(m *Model) (*FusedModel, error) {
	var stemConv *nn.Conv2d
	var stemPool *nn.MaxPool2d
	// Stem layout: Conv, BN, ReLU, [MaxPool].
	var conv *nn.Conv2d
	for _, l := range m.Stem.Layers {
		switch v := l.(type) {
		case *nn.Conv2d:
			conv = v
		case *nn.BatchNorm2d:
			fc, err := nn.FuseConvBN(conv, v)
			if err != nil {
				return nil, fmt.Errorf("resnet: fusing stem: %w", err)
			}
			stemConv = fc
		case *nn.MaxPool2d:
			stemPool = v
		}
	}
	if stemConv == nil {
		return nil, fmt.Errorf("resnet: stem has no conv+bn pair to fuse")
	}

	fm := &FusedModel{Config: m.Config, stemConv: stemConv, stemPool: stemPool}
	for _, b := range m.Stages {
		c1, err := nn.FuseConvBN(b.Conv1, b.BN1)
		if err != nil {
			return nil, fmt.Errorf("resnet: fusing %s: %w", b.Name(), err)
		}
		c2, err := nn.FuseConvBN(b.Conv2, b.BN2)
		if err != nil {
			return nil, fmt.Errorf("resnet: fusing %s: %w", b.Name(), err)
		}
		fb := fusedBlock{conv1: c1, conv2: c2}
		if b.DownConv != nil {
			d, err := nn.FuseConvBN(b.DownConv, b.DownBN)
			if err != nil {
				return nil, fmt.Errorf("resnet: fusing %s shortcut: %w", b.Name(), err)
			}
			fb.down = d
		}
		fm.blocks = append(fm.blocks, fb)
	}
	// The head is GlobalAvgPool + Linear; reuse the trained Linear.
	for _, l := range m.Head.Layers {
		if fc, ok := l.(*nn.Linear); ok {
			fm.fc = fc
		}
	}
	if fm.fc == nil {
		return nil, fmt.Errorf("resnet: head has no linear layer")
	}
	return fm, nil
}

// Forward runs deployment inference, producing logits identical (up to
// float rounding) to the source model's eval-mode forward.
func (f *FusedModel) Forward(x *tensor.Tensor) *tensor.Tensor {
	x = tensor.ReLU(f.stemConv.Forward(x, false))
	if f.stemPool != nil {
		x = f.stemPool.Forward(x, false)
	}
	for _, b := range f.blocks {
		main := tensor.ReLU(b.conv1.Forward(x, false))
		main = b.conv2.Forward(main, false)
		shortcut := x
		if b.down != nil {
			shortcut = b.down.Forward(x, false)
		}
		x = tensor.ReLU(tensor.AddInPlace(main, shortcut))
	}
	pooled := tensor.GlobalAvgPool2D(x)
	return f.fc.Forward(pooled, false)
}

// NumParams counts the deployment model's parameters; folding BN removes
// its γ/β (they are absorbed) so this is smaller than the training model.
func (f *FusedModel) NumParams() int {
	n := nn.NumParams(f.stemConv.Params()) + nn.NumParams(f.fc.Params())
	for _, b := range f.blocks {
		n += nn.NumParams(b.conv1.Params()) + nn.NumParams(b.conv2.Params())
		if b.down != nil {
			n += nn.NumParams(b.down.Params())
		}
	}
	return n
}
