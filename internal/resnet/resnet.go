// Package resnet builds the paper's configurable ResNet-18: a standard
// 18-layer residual classifier whose stem (initial convolution and optional
// max-pool) and initial feature width are exposed as the search-space axes
// of the NAS experiment (Figure 2 of the paper).
package resnet

import (
	"fmt"
	"strings"

	"drainnas/internal/nn"
	"drainnas/internal/tensor"
)

// Config captures one point of the paper's search space plus the two input
// hyper-parameters (channels, batch size). Field names mirror the columns of
// Table 4.
type Config struct {
	// Channels is the number of input image channels (5 or 7 in the paper:
	// DEM+R+G+B+NIR, optionally +NDVI+NDWI).
	Channels int `json:"channels"`
	// Batch is the training/inference batch size (8, 16 or 32).
	Batch int `json:"batch"`

	// KernelSize, Stride, Padding parameterize the initial convolution.
	KernelSize int `json:"kernel_size"`
	Stride     int `json:"stride"`
	Padding    int `json:"padding"`

	// PoolChoice selects whether the stem max-pool is present (1) or not (0).
	PoolChoice int `json:"pool_choice"`
	// KernelSizePool and StridePool configure the stem max-pool; they are
	// ignored when PoolChoice == 0.
	KernelSizePool int `json:"kernel_size_pool"`
	StridePool     int `json:"stride_pool"`

	// InitialOutputFeature is the channel width of the first stage; each of
	// the four stages doubles it, and the classifier input is 4× this value
	// per the paper ("amplified by a factor of four" — width ×2³ with global
	// pooling; the paper's phrasing counts the stage multiplier from the
	// second stage).
	InitialOutputFeature int `json:"initial_output_feature"`

	// NumClasses is the classifier output width (2: crossing / no crossing).
	NumClasses int `json:"num_classes"`
}

// StockResNet18 returns the conventional ResNet-18 configuration used as the
// paper's baseline (7×7 stride-2 conv, padding 3, 3×3/2 max-pool, width 64).
func StockResNet18(channels, batch int) Config {
	return Config{
		Channels: channels, Batch: batch,
		KernelSize: 7, Stride: 2, Padding: 3,
		PoolChoice: 1, KernelSizePool: 3, StridePool: 2,
		InitialOutputFeature: 64,
		NumClasses:           2,
	}
}

// Validate checks that the configuration is structurally sound (positive
// dimensions, pool settings coherent). It does not check membership in the
// paper's search space — see the nas package for that.
func (c Config) Validate() error {
	switch {
	case c.Channels <= 0:
		return fmt.Errorf("resnet: channels must be positive, got %d", c.Channels)
	case c.Batch <= 0:
		return fmt.Errorf("resnet: batch must be positive, got %d", c.Batch)
	case c.KernelSize <= 0:
		return fmt.Errorf("resnet: kernel_size must be positive, got %d", c.KernelSize)
	case c.Stride <= 0:
		return fmt.Errorf("resnet: stride must be positive, got %d", c.Stride)
	case c.Padding < 0:
		return fmt.Errorf("resnet: padding must be non-negative, got %d", c.Padding)
	case c.PoolChoice != 0 && c.PoolChoice != 1:
		return fmt.Errorf("resnet: pool_choice must be 0 or 1, got %d", c.PoolChoice)
	case c.PoolChoice == 1 && c.KernelSizePool <= 0:
		return fmt.Errorf("resnet: kernel_size_pool must be positive, got %d", c.KernelSizePool)
	case c.PoolChoice == 1 && c.StridePool <= 0:
		return fmt.Errorf("resnet: stride_pool must be positive, got %d", c.StridePool)
	case c.InitialOutputFeature <= 0:
		return fmt.Errorf("resnet: initial_output_feature must be positive, got %d", c.InitialOutputFeature)
	case c.NumClasses <= 0:
		return fmt.Errorf("resnet: num_classes must be positive, got %d", c.NumClasses)
	}
	return nil
}

// Canonical returns the configuration with search-irrelevant fields
// normalized: when PoolChoice is 0 the pool kernel/stride are zeroed, so two
// configs that build identical networks compare equal. This is the identity
// under which the paper's 1,728 raw trials collapse to unique outcomes.
func (c Config) Canonical() Config {
	if c.PoolChoice == 0 {
		c.KernelSizePool = 0
		c.StridePool = 0
	}
	return c
}

// Key returns a stable string identity for the canonical configuration,
// suitable as a map key and as a seed component.
func (c Config) Key() string {
	c = c.Canonical()
	return fmt.Sprintf("ch%d_b%d_k%d_s%d_p%d_pool%d_kp%d_sp%d_f%d",
		c.Channels, c.Batch, c.KernelSize, c.Stride, c.Padding,
		c.PoolChoice, c.KernelSizePool, c.StridePool, c.InitialOutputFeature)
}

// StageWidths returns the channel widths of the four residual stages.
func (c Config) StageWidths() [4]int {
	f := c.InitialOutputFeature
	return [4]int{f, 2 * f, 4 * f, 8 * f}
}

// Model is the built network plus the metadata the rest of the pipeline
// (latency prediction, memory estimation) needs.
type Model struct {
	Config Config

	Stem   *nn.Sequential // initial conv (+BN+ReLU) and optional max-pool
	Stages []*nn.BasicBlock
	Head   *nn.Sequential // global average pool + fully connected

	net *nn.Sequential // the full chain, for forward/backward
}

// New builds the network for the given configuration with weights drawn
// from rng. Spatial validity for a specific input size is checked lazily at
// the first Forward (the tensor package panics on empty feature maps); use
// CheckSpatial to validate eagerly.
func New(cfg Config, rng *tensor.RNG) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	widths := cfg.StageWidths()

	stem := nn.NewSequential("stem",
		nn.NewConv2d("conv1", rng, cfg.Channels, widths[0], cfg.KernelSize, cfg.Stride, cfg.Padding, false),
		nn.NewBatchNorm2d("bn1", widths[0]),
		nn.NewReLU("relu1"),
	)
	if cfg.PoolChoice == 1 {
		// Pool padding follows the ResNet convention kernel/2 for k=3 and 0
		// for k=2, keeping window coverage sensible for both options.
		poolPad := 0
		if cfg.KernelSizePool >= 3 {
			poolPad = 1
		}
		stem.Add(nn.NewMaxPool2d("maxpool", cfg.KernelSizePool, cfg.StridePool, poolPad))
	}

	// Four stages of two basic blocks each = 16 conv layers; with the stem
	// conv and the final fully connected layer the network has the
	// conventional 18 weighted layers of ResNet-18.
	var stages []*nn.BasicBlock
	inC := widths[0]
	for stage := 0; stage < 4; stage++ {
		outC := widths[stage]
		stride := 1
		if stage > 0 {
			stride = 2
		}
		b1 := nn.NewBasicBlock(fmt.Sprintf("layer%d.0", stage+1), rng, inC, outC, stride)
		b2 := nn.NewBasicBlock(fmt.Sprintf("layer%d.1", stage+1), rng, outC, outC, 1)
		stages = append(stages, b1, b2)
		inC = outC
	}

	head := nn.NewSequential("head",
		nn.NewGlobalAvgPool("avgpool"),
		nn.NewLinear("fc", rng, widths[3], cfg.NumClasses),
	)

	all := nn.NewSequential("resnet18")
	all.Add(stem)
	for _, b := range stages {
		all.Add(b)
	}
	all.Add(head)

	return &Model{Config: cfg, Stem: stem, Stages: stages, Head: head, net: all}, nil
}

// Forward runs the network on a (N, Channels, H, W) batch, returning
// (N, NumClasses) logits.
func (m *Model) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return m.net.Forward(x, train)
}

// Backward propagates the loss gradient from the logits.
func (m *Model) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return m.net.Backward(grad)
}

// Params returns every learnable parameter.
func (m *Model) Params() []*nn.Param { return m.net.Params() }

// NumParams returns the learnable element count.
func (m *Model) NumParams() int { return nn.NumParams(m.Params()) }

// CheckSpatial verifies that an inputSize×inputSize image survives all the
// downsampling stages with at least a 1×1 feature map, returning the final
// spatial size.
func (c Config) CheckSpatial(inputSize int) (int, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	s := tensor.ConvOut(inputSize, c.KernelSize, c.Stride, c.Padding)
	if s < 1 {
		return 0, fmt.Errorf("resnet: stem conv collapses %d px input", inputSize)
	}
	if c.PoolChoice == 1 {
		poolPad := 0
		if c.KernelSizePool >= 3 {
			poolPad = 1
		}
		s = tensor.ConvOut(s, c.KernelSizePool, c.StridePool, poolPad)
		if s < 1 {
			return 0, fmt.Errorf("resnet: stem pool collapses feature map")
		}
	}
	for stage := 1; stage < 4; stage++ {
		s = tensor.ConvOut(s, 3, 2, 1)
		if s < 1 {
			return 0, fmt.Errorf("resnet: stage %d collapses feature map", stage+1)
		}
	}
	return s, nil
}

// Describe renders a human-readable architecture summary (the textual
// equivalent of the paper's Figure 1).
func (m *Model) Describe() string {
	var b strings.Builder
	c := m.Config
	w := c.StageWidths()
	fmt.Fprintf(&b, "ResNet-18 (drainage-crossing classifier)\n")
	fmt.Fprintf(&b, "  input: (N, %d, H, W)  batch=%d\n", c.Channels, c.Batch)
	fmt.Fprintf(&b, "  conv1: %dx%d s=%d p=%d -> %d ch, BN, ReLU\n",
		c.KernelSize, c.KernelSize, c.Stride, c.Padding, w[0])
	if c.PoolChoice == 1 {
		fmt.Fprintf(&b, "  maxpool: %dx%d s=%d\n", c.KernelSizePool, c.KernelSizePool, c.StridePool)
	} else {
		fmt.Fprintf(&b, "  maxpool: (none)\n")
	}
	for stage := 0; stage < 4; stage++ {
		stride := 1
		if stage > 0 {
			stride = 2
		}
		fmt.Fprintf(&b, "  layer%d: 2 x BasicBlock(%d ch, first stride %d)\n", stage+1, w[stage], stride)
	}
	fmt.Fprintf(&b, "  avgpool: global -> (N, %d)\n", w[3])
	fmt.Fprintf(&b, "  fc: %d -> %d\n", w[3], c.NumClasses)
	fmt.Fprintf(&b, "  parameters: %d\n", m.NumParams())
	return b.String()
}
