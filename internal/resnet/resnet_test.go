package resnet

import (
	"math"
	"testing"
	"testing/quick"

	"drainnas/internal/nn"
	"drainnas/internal/tensor"
)

func TestStockResNet18ParamCount(t *testing.T) {
	// The canonical ResNet-18 (3-channel ImageNet, 1000 classes) has
	// 11,689,512 parameters; our builder must match exactly.
	cfg := StockResNet18(3, 8)
	cfg.NumClasses = 1000
	m, err := New(cfg, tensor.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.NumParams(); got != 11689512 {
		t.Fatalf("stock ResNet-18 params = %d, want 11689512", got)
	}
}

func TestParamCountScalesWithChannelsAndWidth(t *testing.T) {
	r := tensor.NewRNG(1)
	m5, _ := New(StockResNet18(5, 8), r)
	m7, _ := New(StockResNet18(7, 8), r)
	// Going 5 → 7 input channels adds exactly 2*64*7*7 conv1 weights.
	if diff := m7.NumParams() - m5.NumParams(); diff != 2*64*7*7 {
		t.Fatalf("channel param delta = %d, want %d", diff, 2*64*7*7)
	}
	narrow := StockResNet18(5, 8)
	narrow.InitialOutputFeature = 32
	mN, _ := New(narrow, r)
	if mN.NumParams() >= m5.NumParams() {
		t.Fatal("narrower model must have fewer parameters")
	}
	// Width halving shrinks conv-dominated parameter count ~4x.
	ratio := float64(m5.NumParams()) / float64(mN.NumParams())
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("width-halving param ratio %.2f, want ≈4", ratio)
	}
}

func TestForwardShapes(t *testing.T) {
	r := tensor.NewRNG(2)
	for _, cfg := range []Config{
		StockResNet18(5, 8),
		{Channels: 7, Batch: 16, KernelSize: 3, Stride: 2, Padding: 1,
			PoolChoice: 0, InitialOutputFeature: 32, NumClasses: 2},
		{Channels: 5, Batch: 8, KernelSize: 3, Stride: 1, Padding: 1,
			PoolChoice: 1, KernelSizePool: 2, StridePool: 2, InitialOutputFeature: 48, NumClasses: 2},
	} {
		m, err := New(cfg, r)
		if err != nil {
			t.Fatal(err)
		}
		x := tensor.RandNormal(r, 1, 2, cfg.Channels, 64, 64)
		y := m.Forward(x, false)
		if y.Dim(0) != 2 || y.Dim(1) != cfg.NumClasses {
			t.Fatalf("cfg %s: output shape %v", cfg.Key(), y.Shape())
		}
		if y.HasNaN() {
			t.Fatalf("cfg %s: NaN in output", cfg.Key())
		}
	}
}

func TestCheckSpatial(t *testing.T) {
	cfg := StockResNet18(5, 8)
	final, err := cfg.CheckSpatial(64)
	if err != nil {
		t.Fatal(err)
	}
	// 64 → conv s2 → 32 → pool s2 → 16 → three stride-2 stages → 2.
	if final != 2 {
		t.Fatalf("final spatial = %d, want 2", final)
	}
	// A stem conv larger than the (unpadded) input must be rejected.
	noPad := cfg
	noPad.Padding = 0
	if _, err := noPad.CheckSpatial(6); err == nil {
		t.Fatal("expected spatial collapse error for 6px unpadded input")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{},
		{Channels: 5, Batch: 8, KernelSize: 3, Stride: 0, Padding: 1, InitialOutputFeature: 32, NumClasses: 2},
		{Channels: 5, Batch: 8, KernelSize: 3, Stride: 1, Padding: -1, InitialOutputFeature: 32, NumClasses: 2},
		{Channels: 5, Batch: 8, KernelSize: 3, Stride: 1, Padding: 1, PoolChoice: 2, InitialOutputFeature: 32, NumClasses: 2},
		{Channels: 5, Batch: 8, KernelSize: 3, Stride: 1, Padding: 1, PoolChoice: 1, KernelSizePool: 0, StridePool: 2, InitialOutputFeature: 32, NumClasses: 2},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if err := StockResNet18(7, 16).Validate(); err != nil {
		t.Errorf("stock config rejected: %v", err)
	}
}

func TestCanonicalCollapsesNoPoolVariants(t *testing.T) {
	a := Config{Channels: 5, Batch: 8, KernelSize: 3, Stride: 2, Padding: 1,
		PoolChoice: 0, KernelSizePool: 2, StridePool: 1, InitialOutputFeature: 32, NumClasses: 2}
	b := a
	b.KernelSizePool = 3
	b.StridePool = 2
	if a.Key() != b.Key() {
		t.Fatalf("no-pool variants must share a key: %s vs %s", a.Key(), b.Key())
	}
	c := a
	c.PoolChoice = 1
	if a.Key() == c.Key() {
		t.Fatal("pool and no-pool configs must differ")
	}
}

func TestKeyIsInjectiveOnSearchAxes(t *testing.T) {
	// Property: distinct canonical configs have distinct keys.
	f := func(k1, s1, p1, f1, k2, s2, p2, f2 uint8) bool {
		mk := func(k, s, p, f uint8) Config {
			return Config{
				Channels: 5, Batch: 8,
				KernelSize: int(k%2)*4 + 3, Stride: int(s%2) + 1, Padding: int(p%3) + 1,
				PoolChoice: 1, KernelSizePool: 2, StridePool: 2,
				InitialOutputFeature: (int(f%3) + 2) * 16, NumClasses: 2,
			}
		}
		a, b := mk(k1, s1, p1, f1), mk(k2, s2, p2, f2)
		if a == b {
			return a.Key() == b.Key()
		}
		return a.Key() != b.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStageWidths(t *testing.T) {
	cfg := StockResNet18(5, 8)
	cfg.InitialOutputFeature = 48
	w := cfg.StageWidths()
	want := [4]int{48, 96, 192, 384}
	if w != want {
		t.Fatalf("stage widths %v, want %v", w, want)
	}
}

func TestTrainingStepReducesLoss(t *testing.T) {
	// A narrow variant must be able to fit a tiny 2-class batch
	// (overfitting sanity check for the full forward/backward stack).
	cfg := Config{Channels: 5, Batch: 8, KernelSize: 3, Stride: 2, Padding: 1,
		PoolChoice: 0, InitialOutputFeature: 8, NumClasses: 2}
	r := tensor.NewRNG(7)
	m, err := New(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.RandNormal(r, 1, 8, 5, 32, 32)
	labels := []int{0, 1, 0, 1, 0, 1, 0, 1}
	// Make the classes actually separable: add per-class offsets.
	for i, lab := range labels {
		off := float32(1.5)
		if lab == 1 {
			off = -1.5
		}
		plane := x.Data()[i*5*32*32 : i*5*32*32+32*32]
		for j := range plane {
			plane[j] += off
		}
	}
	opt := nn.NewSGD(m.Params(), 0.02, 0.9, 0)
	var first, last float64
	for step := 0; step < 12; step++ {
		y := m.Forward(x, true)
		loss, g := nn.CrossEntropy(y, labels)
		if step == 0 {
			first = loss
		}
		last = loss
		nn.ZeroGrad(m.Params())
		m.Backward(g)
		opt.Step()
	}
	if !(last < first*0.8) {
		t.Fatalf("loss did not decrease: first=%.4f last=%.4f", first, last)
	}
}

func TestDescribeMentionsKeyComponents(t *testing.T) {
	m, _ := New(StockResNet18(7, 16), tensor.NewRNG(1))
	d := m.Describe()
	for _, want := range []string{"conv1", "maxpool", "layer4", "fc", "parameters"} {
		if !contains(d, want) {
			t.Errorf("Describe missing %q:\n%s", want, d)
		}
	}
	noPool := StockResNet18(5, 8)
	noPool.PoolChoice = 0
	m2, _ := New(noPool, tensor.NewRNG(1))
	if !contains(m2.Describe(), "(none)") {
		t.Error("Describe must note the absent pool")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestDeterministicBuild(t *testing.T) {
	cfg := StockResNet18(5, 8)
	cfg.InitialOutputFeature = 16
	m1, _ := New(cfg, tensor.NewRNG(42))
	m2, _ := New(cfg, tensor.NewRNG(42))
	p1, p2 := m1.Params(), m2.Params()
	if len(p1) != len(p2) {
		t.Fatal("param list lengths differ")
	}
	for i := range p1 {
		d1, d2 := p1[i].Data.Data(), p2[i].Data.Data()
		for j := range d1 {
			if d1[j] != d2[j] {
				t.Fatalf("param %s differs at %d", p1[i].Name, j)
			}
		}
	}
}

func TestEvalForwardIsPure(t *testing.T) {
	// Two eval-mode forwards of the same input must agree bit-for-bit
	// (no running-stat mutation in eval mode).
	cfg := StockResNet18(5, 8)
	cfg.InitialOutputFeature = 8
	m, _ := New(cfg, tensor.NewRNG(3))
	r := tensor.NewRNG(4)
	x := tensor.RandNormal(r, 1, 2, 5, 64, 64)
	y1 := m.Forward(x, false)
	y2 := m.Forward(x, false)
	for i := range y1.Data() {
		if y1.Data()[i] != y2.Data()[i] {
			t.Fatal("eval forward not deterministic")
		}
	}
}

func TestParamsCountMatchesLayerSum(t *testing.T) {
	m, _ := New(StockResNet18(5, 8), tensor.NewRNG(1))
	if math.Abs(float64(len(m.Params()))-62) > 0 {
		// 1 stem conv + 1 stem BN(2) + 8 blocks × (2 conv + 2 BN×2 params) +
		// 3 downsample (conv + BN×2) + fc(2) = 3 + 8*6 + 3*3 + 2 = 62.
		t.Fatalf("param tensor count = %d, want 62", len(m.Params()))
	}
}
