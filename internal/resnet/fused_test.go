package resnet

import (
	"math"
	"testing"

	"drainnas/internal/nn"
	"drainnas/internal/tensor"
)

// trainBriefly pushes a few batches through the model so BatchNorm running
// statistics move away from their initialization.
func trainBriefly(t *testing.T, m *Model, rng *tensor.RNG) {
	t.Helper()
	opt := nn.NewSGD(m.Params(), 0.01, 0.9, 0)
	for i := 0; i < 4; i++ {
		x := tensor.RandNormal(rng, 1, 4, m.Config.Channels, 32, 32)
		y := m.Forward(x, true)
		_, g := nn.CrossEntropy(y, []int{0, 1, 0, 1})
		nn.ZeroGrad(m.Params())
		m.Backward(g)
		opt.Step()
	}
}

func TestFusedModelMatchesEvalForward(t *testing.T) {
	for _, cfg := range []Config{
		{Channels: 5, Batch: 4, KernelSize: 3, Stride: 2, Padding: 1,
			PoolChoice: 0, InitialOutputFeature: 8, NumClasses: 2},
		{Channels: 7, Batch: 4, KernelSize: 7, Stride: 2, Padding: 3,
			PoolChoice: 1, KernelSizePool: 3, StridePool: 2, InitialOutputFeature: 8, NumClasses: 2},
	} {
		rng := tensor.NewRNG(21)
		m, err := New(cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		trainBriefly(t, m, rng)
		fused, err := Fuse(m)
		if err != nil {
			t.Fatal(err)
		}
		x := tensor.RandNormal(rng, 1, 3, cfg.Channels, 32, 32)
		want := m.Forward(x, false)
		got := fused.Forward(x)
		if !got.SameShape(want) {
			t.Fatalf("cfg %s: shape %v vs %v", cfg.Key(), got.Shape(), want.Shape())
		}
		for i := range got.Data() {
			diff := math.Abs(float64(got.Data()[i] - want.Data()[i]))
			scale := 1 + math.Abs(float64(want.Data()[i]))
			if diff > 1e-3*scale {
				t.Fatalf("cfg %s: logit %d fused %v vs eval %v", cfg.Key(), i, got.Data()[i], want.Data()[i])
			}
		}
	}
}

func TestFusedModelSmallerThanTraining(t *testing.T) {
	cfg := StockResNet18(5, 8)
	cfg.InitialOutputFeature = 16
	m, _ := New(cfg, tensor.NewRNG(3))
	fused, err := Fuse(m)
	if err != nil {
		t.Fatal(err)
	}
	// Folding BN removes its γ/β but adds conv biases: net change is
	// -2C+C = -C per fused pair.
	if fused.NumParams() >= m.NumParams() {
		t.Fatalf("fused params %d, training params %d", fused.NumParams(), m.NumParams())
	}
}

func TestFuseConvBNExactOnKnownValues(t *testing.T) {
	rng := tensor.NewRNG(5)
	conv := nn.NewConv2d("c", rng, 1, 2, 3, 1, 1, false)
	bn := nn.NewBatchNorm2d("bn", 2)
	bn.Gamma.Data.Data()[0] = 2
	bn.Beta.Data.Data()[0] = -1
	bn.RunningMean[0] = 0.5
	bn.RunningVar[0] = 4
	fused, err := nn.FuseConvBN(conv, bn)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.RandNormal(rng, 1, 2, 1, 6, 6)
	want := bn.Forward(conv.Forward(x, false), false)
	got := fused.Forward(x, false)
	for i := range got.Data() {
		if math.Abs(float64(got.Data()[i]-want.Data()[i])) > 1e-4 {
			t.Fatalf("elem %d: %v vs %v", i, got.Data()[i], want.Data()[i])
		}
	}
}

func TestFuseConvBNChannelMismatch(t *testing.T) {
	rng := tensor.NewRNG(6)
	conv := nn.NewConv2d("c", rng, 1, 2, 3, 1, 1, false)
	bn := nn.NewBatchNorm2d("bn", 3)
	if _, err := nn.FuseConvBN(conv, bn); err == nil {
		t.Fatal("expected channel mismatch error")
	}
}

func TestFusedForwardFasterPath(t *testing.T) {
	// Not a timing assertion (too flaky for CI), just that the fused model
	// executes fewer layers: no BN normalization work remains.
	cfg := Config{Channels: 5, Batch: 2, KernelSize: 3, Stride: 2, Padding: 1,
		PoolChoice: 0, InitialOutputFeature: 8, NumClasses: 2}
	m, _ := New(cfg, tensor.NewRNG(7))
	fused, err := Fuse(m)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.RandNormal(tensor.NewRNG(8), 1, 2, 5, 32, 32)
	if out := fused.Forward(x); out.HasNaN() {
		t.Fatal("fused forward produced NaN")
	}
}
