package resnet

import (
	"testing"

	"drainnas/internal/nn"
	"drainnas/internal/tensor"
)

func TestConfigFromGraphName(t *testing.T) {
	cfg := Config{Channels: 5, Batch: 8, KernelSize: 3, Stride: 2, Padding: 1,
		PoolChoice: 1, KernelSizePool: 3, StridePool: 2, InitialOutputFeature: 32, NumClasses: 2}
	arch := cfg.Canonical()
	arch.Batch = 1
	name := "resnet18-" + arch.Key()
	got, err := ConfigFromGraphName(name, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.KernelSize != 3 || got.Stride != 2 || got.Padding != 1 ||
		got.PoolChoice != 1 || got.KernelSizePool != 3 || got.StridePool != 2 ||
		got.InitialOutputFeature != 32 || got.Channels != 5 || got.NumClasses != 2 {
		t.Fatalf("round trip: %+v", got)
	}
	// No-pool canonical names restore placeholder pool axes.
	noPool := cfg
	noPool.PoolChoice = 0
	arch2 := noPool.Canonical()
	arch2.Batch = 1
	got2, err := ConfigFromGraphName("resnet18-"+arch2.Key(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if got2.PoolChoice != 0 || got2.KernelSizePool == 0 {
		t.Fatalf("no-pool round trip: %+v", got2)
	}
	if err := got2.Validate(); err != nil {
		t.Fatalf("restored config invalid: %v", err)
	}
	if _, err := ConfigFromGraphName("garbage", 2); err == nil {
		t.Fatal("garbage name accepted")
	}
}

func TestLoadWeightsRoundTrip(t *testing.T) {
	cfg := Config{Channels: 5, Batch: 4, KernelSize: 3, Stride: 2, Padding: 1,
		PoolChoice: 1, KernelSizePool: 3, StridePool: 2, InitialOutputFeature: 8, NumClasses: 2}
	src, err := New(cfg, tensor.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	// Move BN stats away from init.
	x := tensor.RandNormal(tensor.NewRNG(2), 1, 4, 5, 32, 32)
	src.Forward(x, true)

	// Collect weights the way an exported container would present them.
	weights := make(map[string][]float32)
	for _, p := range src.Params() {
		weights[p.Name] = append([]float32(nil), p.Data.Data()...)
	}
	collectBN := func(name string, mean, variance []float64) {
		m32 := make([]float32, len(mean))
		v32 := make([]float32, len(variance))
		for i := range mean {
			m32[i] = float32(mean[i])
			v32[i] = float32(variance[i])
		}
		weights[name+".running_mean"] = m32
		weights[name+".running_var"] = v32
	}
	collectBN("bn1", stemBN(src).RunningMean, stemBN(src).RunningVar)
	for _, b := range src.Stages {
		collectBN(b.BN1.Name(), b.BN1.RunningMean, b.BN1.RunningVar)
		collectBN(b.BN2.Name(), b.BN2.RunningMean, b.BN2.RunningVar)
		if b.DownBN != nil {
			collectBN(b.DownBN.Name(), b.DownBN.RunningMean, b.DownBN.RunningVar)
		}
	}

	dst, err := New(cfg, tensor.NewRNG(999)) // different init
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadWeights(dst, weights); err != nil {
		t.Fatal(err)
	}
	// Same eval-mode outputs bit for bit (same weights, same running stats,
	// within float32 conversion of the stats).
	probe := tensor.RandNormal(tensor.NewRNG(3), 1, 2, 5, 32, 32)
	a := src.Forward(probe, false)
	b := dst.Forward(probe, false)
	for i := range a.Data() {
		diff := a.Data()[i] - b.Data()[i]
		if diff > 1e-4 || diff < -1e-4 {
			t.Fatalf("logit %d: %v vs %v", i, a.Data()[i], b.Data()[i])
		}
	}
}

func TestLoadWeightsRejectsIncomplete(t *testing.T) {
	cfg := Config{Channels: 5, Batch: 4, KernelSize: 3, Stride: 2, Padding: 1,
		PoolChoice: 0, InitialOutputFeature: 8, NumClasses: 2}
	m, _ := New(cfg, tensor.NewRNG(1))
	if err := LoadWeights(m, map[string][]float32{}); err == nil {
		t.Fatal("empty checkpoint accepted")
	}
	// Wrong size for one tensor.
	weights := make(map[string][]float32)
	for _, p := range m.Params() {
		weights[p.Name] = make([]float32, p.Data.Numel())
	}
	weights["conv1.weight"] = make([]float32, 1)
	if err := LoadWeights(m, weights); err == nil {
		t.Fatal("mis-sized tensor accepted")
	}
}

// stemBN digs the stem's BatchNorm out for the test.
func stemBN(m *Model) *nn.BatchNorm2d {
	for _, l := range m.Stem.Layers {
		if bn, ok := l.(*nn.BatchNorm2d); ok {
			return bn
		}
	}
	panic("stem BN not found")
}
