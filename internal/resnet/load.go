package resnet

import (
	"fmt"
	"regexp"
	"strconv"

	"drainnas/internal/nn"
)

// graphNamePattern extracts the architecture axes from an exported graph
// name ("resnet18-ch5_b1_k3_s2_p1_pool0_kp0_sp0_f32").
var graphNamePattern = regexp.MustCompile(
	`^resnet18-ch(\d+)_b\d+_k(\d+)_s(\d+)_p(\d+)_pool(\d+)_kp(\d+)_sp(\d+)_f(\d+)$`)

// ConfigFromGraphName reconstructs the architectural configuration encoded
// in an exported container's graph name. Batch is not architectural and
// comes back as 1; NumClasses must be supplied by the fc initializer dims,
// so callers normally use LoadWeights which handles both.
func ConfigFromGraphName(name string, numClasses int) (Config, error) {
	m := graphNamePattern.FindStringSubmatch(name)
	if m == nil {
		return Config{}, fmt.Errorf("resnet: unrecognized graph name %q", name)
	}
	atoi := func(s string) int {
		v, _ := strconv.Atoi(s)
		return v
	}
	cfg := Config{
		Channels: atoi(m[1]), Batch: 1,
		KernelSize: atoi(m[2]), Stride: atoi(m[3]), Padding: atoi(m[4]),
		PoolChoice: atoi(m[5]), KernelSizePool: atoi(m[6]), StridePool: atoi(m[7]),
		InitialOutputFeature: atoi(m[8]),
		NumClasses:           numClasses,
	}
	if cfg.PoolChoice == 0 {
		// Canonical form zeroes the pool axes; restore valid placeholders.
		cfg.KernelSizePool, cfg.StridePool = 2, 2
	}
	return cfg, nil
}

// LoadWeights copies exported weights (from onnxsize.Decode) into a model
// built with the matching configuration: every parameter by name, plus the
// BatchNorm running statistics. Missing or mis-sized tensors are errors —
// a checkpoint either loads completely or not at all.
func LoadWeights(m *Model, weights map[string][]float32) error {
	for _, p := range m.Params() {
		vals, ok := weights[p.Name]
		if !ok {
			return fmt.Errorf("resnet: checkpoint missing %s", p.Name)
		}
		if len(vals) != p.Data.Numel() {
			return fmt.Errorf("resnet: %s has %d values, model wants %d", p.Name, len(vals), p.Data.Numel())
		}
		copy(p.Data.Data(), vals)
	}
	loadBN := func(bn *nn.BatchNorm2d) error {
		mean, ok := weights[bn.Name()+".running_mean"]
		if !ok {
			return fmt.Errorf("resnet: checkpoint missing %s.running_mean", bn.Name())
		}
		variance, ok := weights[bn.Name()+".running_var"]
		if !ok {
			return fmt.Errorf("resnet: checkpoint missing %s.running_var", bn.Name())
		}
		if len(mean) != bn.C || len(variance) != bn.C {
			return fmt.Errorf("resnet: %s running stats sized %d/%d, want %d", bn.Name(), len(mean), len(variance), bn.C)
		}
		for i := 0; i < bn.C; i++ {
			bn.RunningMean[i] = float64(mean[i])
			bn.RunningVar[i] = float64(variance[i])
		}
		return nil
	}
	for _, l := range m.Stem.Layers {
		if bn, ok := l.(*nn.BatchNorm2d); ok {
			if err := loadBN(bn); err != nil {
				return err
			}
		}
	}
	for _, b := range m.Stages {
		for _, bn := range []*nn.BatchNorm2d{b.BN1, b.BN2, b.DownBN} {
			if bn != nil {
				if err := loadBN(bn); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
