package httpx

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

// mintedIDRe matches the hex-prefix-dash-counter shape NextRequestID mints.
var mintedIDRe = regexp.MustCompile(`^[0-9a-fx]{4,8}-\d{6}$`)

func TestSanitizeRequestID(t *testing.T) {
	cases := []struct {
		in   string
		pass bool
	}{
		{"trace-42", true},
		{"a", true},
		{strings.Repeat("x", MaxRequestIDLen), true},
		{"", false},
		{strings.Repeat("x", MaxRequestIDLen+1), false},
		{"evil\r\nfake: line", false},
		{"evil\nid", false},
		{"has space", false},
		{"tab\tid", false},
		{"nul\x00id", false},
		{"ünïcode", false},
		{"del\x7fid", false},
	}
	for _, c := range cases {
		got := SanitizeRequestID(c.in)
		if c.pass && got != c.in {
			t.Errorf("SanitizeRequestID(%q) = %q, want unchanged", c.in, got)
		}
		if !c.pass && got != "" {
			t.Errorf("SanitizeRequestID(%q) = %q, want rejection", c.in, got)
		}
	}
}

// TestAccessLogRejectsInjectedRequestID is the regression test for log
// injection: a CR/LF-bearing or oversized incoming X-Request-ID must not be
// echoed into the response header or the access log — a fresh ID is minted
// instead.
func TestAccessLogRejectsInjectedRequestID(t *testing.T) {
	var logBuf bytes.Buffer
	prev := log.Writer()
	log.SetOutput(&logBuf)
	defer log.SetOutput(prev)

	h := AccessLog("test", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	for _, evil := range []string{
		"evil\r\ntest: access id=forged status=200",
		strings.Repeat("A", 5000),
	} {
		logBuf.Reset()
		req, _ := http.NewRequest("GET", ts.URL, nil)
		// Header.Set validates values in recent net/http, so smuggle the raw
		// bytes in directly the way a hostile client would put them on the
		// wire (the map is written as-is by the test's in-memory transport
		// assertions below; for the HTTP round trip use a safe-but-oversized
		// value and assert the newline variant at the handler layer).
		req.Header["X-Request-Id"] = []string{evil}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			// The stdlib client refuses to send invalid header bytes; exercise
			// the middleware directly instead so the server-side check runs.
			rr := httptest.NewRecorder()
			rawReq := httptest.NewRequest("GET", "/", nil)
			rawReq.Header["X-Request-Id"] = []string{evil}
			h.ServeHTTP(rr, rawReq)
			if id := rr.Header().Get("X-Request-ID"); !mintedIDRe.MatchString(id) {
				t.Fatalf("injected ID %q echoed instead of minted: %q", evil, id)
			}
		} else {
			got := resp.Header.Get("X-Request-ID")
			resp.Body.Close()
			if !mintedIDRe.MatchString(got) {
				t.Fatalf("injected ID %q echoed instead of minted: %q", evil, got)
			}
		}
		if out := logBuf.String(); strings.Contains(out, "forged") || strings.Contains(out, "AAAA") {
			t.Fatalf("attacker bytes reached the access log:\n%s", out)
		}
		if out := logBuf.String(); strings.Count(out, "\n") > strings.Count(out, "test: access ") {
			t.Fatalf("access log grew extra lines (injection):\n%s", out)
		}
	}
}

// TestAccessLogHonorsCleanRequestID pins that sanitization does not break
// the legitimate propagation path.
func TestAccessLogHonorsCleanRequestID(t *testing.T) {
	h := AccessLog("test", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	rr := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set("X-Request-ID", "upstream-7")
	h.ServeHTTP(rr, req)
	if got := rr.Header().Get("X-Request-ID"); got != "upstream-7" {
		t.Fatalf("clean incoming ID not honored: %q", got)
	}
}

// TestStatusRecorderForwardsFlusher is the regression test for streaming
// handlers behind AccessLog: the wrapped writer must still satisfy
// http.Flusher, and flushes must reach the client mid-response.
func TestStatusRecorderForwardsFlusher(t *testing.T) {
	flushed := make(chan struct{})
	h := AccessLog("test", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Error("ResponseWriter behind AccessLog lost http.Flusher")
			return
		}
		fmt.Fprint(w, "first\n")
		f.Flush()
		close(flushed)
		fmt.Fprint(w, "second\n")
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	line, err := br.ReadString('\n')
	if err != nil || line != "first\n" {
		t.Fatalf("first flushed line %q, err %v", line, err)
	}
	// The flush provably happened while the handler was still running (it
	// blocks on nothing after the flush, but the channel ordering proves the
	// first line was written before the handler returned).
	<-flushed
	rest, err := io.ReadAll(br)
	if err != nil || string(rest) != "second\n" {
		t.Fatalf("remainder %q, err %v", rest, err)
	}
}

// TestStatusRecorderForwardsHijacker is the regression test for WebSocket
// upgrades behind AccessLog: Hijack must reach the underlying connection,
// and raw bytes written on it must arrive at the client.
func TestStatusRecorderForwardsHijacker(t *testing.T) {
	h := AccessLog("test", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Error("ResponseWriter behind AccessLog lost http.Hijacker")
			http.Error(w, "no hijack", http.StatusInternalServerError)
			return
		}
		conn, rw, err := hj.Hijack()
		if err != nil {
			t.Errorf("hijack failed through middleware: %v", err)
			return
		}
		defer conn.Close()
		rw.WriteString("HTTP/1.1 101 Switching Protocols\r\nConnection: Upgrade\r\n\r\nraw-bytes")
		rw.Flush()
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	conn, err := net.Dial("tcp", strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET / HTTP/1.1\r\nHost: x\r\n\r\n")
	raw, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte("101 Switching Protocols")) || !bytes.HasSuffix(raw, []byte("raw-bytes")) {
		t.Fatalf("hijacked response corrupted:\n%q", raw)
	}
}

// TestStatusRecorderHijackStatus pins the audit value: a successful hijack
// records 101 rather than a fictitious 200.
func TestStatusRecorderHijackStatus(t *testing.T) {
	var rec *StatusRecorder
	done := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer close(done)
		rec = NewStatusRecorder(w)
		conn, _, err := rec.Hijack()
		if err != nil {
			t.Errorf("hijack: %v", err)
			return
		}
		conn.Close()
	}))
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err == nil {
		resp.Body.Close()
	}
	<-done
	if rec.Status != http.StatusSwitchingProtocols {
		t.Fatalf("status after hijack = %d, want 101", rec.Status)
	}
}

// bareWriter is a ResponseWriter with no optional capabilities at all.
type bareWriter struct{ header http.Header }

func (w *bareWriter) Header() http.Header        { return w.header }
func (w *bareWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *bareWriter) WriteHeader(int)            {}

// TestStatusRecorderHijackUnsupported pins the degraded path: wrapping a
// writer with neither Hijacker nor Flusher yields a clear error (not a
// panic) on Hijack and a safe no-op on Flush.
func TestStatusRecorderHijackUnsupported(t *testing.T) {
	rec := NewStatusRecorder(&bareWriter{header: http.Header{}})
	if _, _, err := rec.Hijack(); err == nil {
		t.Fatal("Hijack over a non-Hijacker writer did not error")
	}
	rec.Flush() // no-op, must not panic
}

func TestStatusRecorderUnwrap(t *testing.T) {
	base := httptest.NewRecorder()
	rec := NewStatusRecorder(base)
	if rec.Unwrap() != http.ResponseWriter(base) {
		t.Fatal("Unwrap did not return the underlying writer")
	}
}
