// Package httpx is the HTTP plumbing shared by the serving front ends
// (cmd/servd and cmd/router): the /v1/ error envelope with stable
// machine-readable codes, request-ID minting and propagation, the
// access-log middleware, and the predict wire types. It was extracted from
// cmd/servd when the router tier arrived so both tiers speak byte-identical
// JSON — a client (or the router's own HTTP fan-out adapter) cannot tell
// which tier produced an envelope, and an X-Request-ID minted at the router
// follows the request through every replica's access log.
package httpx

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sync/atomic"
	"time"
)

// Stable machine-readable error codes; clients branch on these, the message
// is for humans. Documented in the README endpoint table — adding a code is
// fine, renaming one is a breaking change.
const (
	CodeBadInput      = "bad_input"
	CodeModelNotFound = "model_not_found"
	CodeQueueFull     = "queue_full"
	CodeThrottled     = "throttled"
	CodeNoReplicas    = "no_replicas"
	CodeShuttingDown  = "shutting_down"
	CodeCanceled      = "canceled"
	CodeInternal      = "internal"
)

// ErrorEnvelope is the unified error body every front end writes.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// ErrorBody carries one error: a stable code, a human message, and the
// request ID so a client can quote it back from either the header or body.
type ErrorBody struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id,omitempty"`
}

// Error writes the unified error envelope. The request ID comes from the
// X-Request-ID response header that AccessLog stamps before the handler
// runs, so the body matches what the client can quote back from the header.
func Error(w http.ResponseWriter, status int, code, msg string) {
	WriteJSON(w, status, ErrorEnvelope{Error: ErrorBody{
		Code:      code,
		Message:   msg,
		RequestID: w.Header().Get("X-Request-ID"),
	}})
}

// WriteJSON writes v as a JSON response with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("httpx: encoding response: %v", err)
	}
}

// reqIDPrefix distinguishes this process's IDs from a restarted instance's;
// the atomic counter distinguishes requests within it.
var (
	reqIDPrefix = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "httpx"
		}
		return hex.EncodeToString(b[:])
	}()
	reqIDSeq atomic.Uint64
)

// NextRequestID mints a process-unique request ID.
func NextRequestID() string {
	return fmt.Sprintf("%s-%06d", reqIDPrefix, reqIDSeq.Add(1))
}

// AccessLog wraps h with request-ID propagation and one structured log line
// per request: id, method, path, status, response bytes and latency, tagged
// with service (e.g. "servd", "router"). An incoming X-Request-ID is honored
// (so IDs follow a request across proxies and through the router's fan-out);
// otherwise one is minted, and either way it is echoed back.
func AccessLog(service string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = NextRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h.ServeHTTP(rec, r)
		log.Printf("%s: access id=%s method=%s path=%s status=%d bytes=%d dur_ms=%.3f",
			service, id, r.Method, r.URL.Path, rec.status, rec.bytes,
			float64(time.Since(start))/float64(time.Millisecond))
	})
}

// statusRecorder captures the status code and body size a handler wrote.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}
