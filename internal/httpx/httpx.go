// Package httpx is the HTTP plumbing shared by the serving front ends
// (cmd/servd and cmd/router): rendering the internal/api error envelope,
// request-ID minting and propagation, the access-log middleware, and the
// deprecation-header wrapper for legacy unversioned aliases. It was
// extracted from cmd/servd when the router tier arrived so both tiers speak
// byte-identical JSON, and slimmed again when the wire types themselves
// moved to internal/api — httpx is transport plumbing only; the structs on
// the wire are defined in exactly one place.
package httpx

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"drainnas/internal/api"
)

// Error writes the unified error envelope. The request ID comes from the
// X-Request-ID response header that AccessLog stamps before the handler
// runs, so the body matches what the client can quote back from the header.
func Error(w http.ResponseWriter, status int, code, msg string) {
	WriteJSON(w, status, api.ErrorEnvelope{Error: api.ErrorBody{
		Code:      code,
		Message:   msg,
		RequestID: w.Header().Get("X-Request-ID"),
	}})
}

// Deprecated wraps a legacy alias handler: every response carries a
// Deprecation header (RFC 8594 style) and a Link to the successor route,
// and the first hit logs a one-time migration warning — so probes and
// scrape configs keep working while their owners get a signal to move.
func Deprecated(service, alias, successor string, h http.HandlerFunc) http.HandlerFunc {
	var once sync.Once
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		once.Do(func() {
			log.Printf("%s: deprecated alias %s was hit; clients should move to %s (alias scheduled for removal, see README)",
				service, alias, successor)
		})
		h(w, r)
	}
}

// WriteJSON writes v as a JSON response with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("httpx: encoding response: %v", err)
	}
}

// reqIDPrefix distinguishes this process's IDs from a restarted instance's;
// the atomic counter distinguishes requests within it.
var (
	reqIDPrefix = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "httpx"
		}
		return hex.EncodeToString(b[:])
	}()
	reqIDSeq atomic.Uint64
)

// NextRequestID mints a process-unique request ID.
func NextRequestID() string {
	return fmt.Sprintf("%s-%06d", reqIDPrefix, reqIDSeq.Add(1))
}

// MaxRequestIDLen caps an echoed X-Request-ID. Incoming IDs are
// client-controlled; without a cap a single request could push kilobytes
// into every access-log line and response header it touches downstream.
const MaxRequestIDLen = 64

// SanitizeRequestID validates a client-supplied request ID: non-empty, at
// most MaxRequestIDLen bytes, every byte graphic ASCII (0x21–0x7E — no
// spaces, no CR/LF, no control bytes that could forge log lines or split
// headers). It returns the ID unchanged when it conforms and "" otherwise,
// so callers mint a fresh one instead of echoing attacker-shaped bytes.
func SanitizeRequestID(id string) string {
	if id == "" || len(id) > MaxRequestIDLen {
		return ""
	}
	for i := 0; i < len(id); i++ {
		if id[i] < 0x21 || id[i] > 0x7e {
			return ""
		}
	}
	return id
}

// AccessLog wraps h with request-ID propagation and one structured log line
// per request: id, method, path, status, response bytes and latency, tagged
// with service (e.g. "servd", "router"). An incoming X-Request-ID is honored
// (so IDs follow a request across proxies and through the router's fan-out)
// only when it passes SanitizeRequestID — an ID with control bytes or an
// absurd length is replaced by a minted one rather than echoed into the log
// and response header; otherwise one is minted, and either way it is echoed
// back.
func AccessLog(service string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := SanitizeRequestID(r.Header.Get("X-Request-ID"))
		if id == "" {
			id = NextRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		rec := NewStatusRecorder(w)
		start := time.Now()
		h.ServeHTTP(rec, r)
		log.Printf("%s: access id=%s method=%s path=%s status=%d bytes=%d dur_ms=%.3f",
			service, id, r.Method, r.URL.Path, rec.Status, rec.Bytes,
			float64(time.Since(start))/float64(time.Millisecond))
	})
}

// StatusRecorder wraps a ResponseWriter to capture the status code and body
// size a handler wrote, for access and audit logging. It forwards the
// optional http.Flusher and http.Hijacker capabilities of the underlying
// writer — a streaming (SSE) or WebSocket handler behind the middleware must
// not silently lose flush/upgrade support — and exposes Unwrap for
// http.ResponseController users.
type StatusRecorder struct {
	http.ResponseWriter
	// Status is the first status code written (200 if the handler never
	// called WriteHeader, 101 after a successful Hijack).
	Status int
	// Bytes counts body bytes written through the recorder.
	Bytes int64
	wrote bool
}

// NewStatusRecorder wraps w; the zero status is 200, matching net/http's
// implicit WriteHeader on first Write.
func NewStatusRecorder(w http.ResponseWriter) *StatusRecorder {
	return &StatusRecorder{ResponseWriter: w, Status: http.StatusOK}
}

func (r *StatusRecorder) WriteHeader(status int) {
	if !r.wrote {
		r.Status = status
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(status)
}

func (r *StatusRecorder) Write(p []byte) (int, error) {
	r.wrote = true
	n, err := r.ResponseWriter.Write(p)
	r.Bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer when it supports streaming.
// Presenting the method unconditionally matches net/http middleware
// convention; flushing a non-Flusher writer is a no-op rather than a
// capability the wrapper pretends away.
func (r *StatusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Hijack forwards to the underlying writer's Hijacker (WebSocket upgrades
// behind the access log depend on this); it errors when the underlying
// writer cannot hijack, matching http.ResponseController's behavior.
func (r *StatusRecorder) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	h, ok := r.ResponseWriter.(http.Hijacker)
	if !ok {
		return nil, nil, fmt.Errorf("httpx: underlying ResponseWriter (%T) does not support hijacking", r.ResponseWriter)
	}
	c, rw, err := h.Hijack()
	if err == nil && !r.wrote {
		// The connection now belongs to the handler (typically a 101 upgrade
		// written by hand); record that instead of a fictitious 200.
		r.Status = http.StatusSwitchingProtocols
		r.wrote = true
	}
	return c, rw, err
}

// Unwrap exposes the underlying writer to http.ResponseController.
func (r *StatusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }
