package scan

import (
	"bytes"
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"drainnas/internal/api"
	"drainnas/internal/metrics"
	"drainnas/internal/serve"
	"drainnas/internal/tensor"
)

// backendFunc adapts a function to the Backend interface for tests.
type backendFunc func(ctx context.Context, model string, input *tensor.Tensor) (Result, error)

func (f backendFunc) Classify(ctx context.Context, model string, input *tensor.Tensor) (Result, error) {
	return f(ctx, model, input)
}

// heuristicBackend scores chips deterministically from their DEM band, so
// repeated runs of the same scan are byte-identical.
func heuristicBackend(delay time.Duration) Backend {
	return backendFunc(func(ctx context.Context, model string, input *tensor.Tensor) (Result, error) {
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return Result{}, ctx.Err()
			}
		}
		s := HeuristicScore(input)
		class := 0
		if s >= 0.5 {
			class = 1
		}
		return Result{Class: class, Logits: scoreLogits(s), BatchSize: 1, Replica: "test"}, nil
	})
}

func scoreLogits(s float64) []float32 {
	const eps = 1e-6
	return []float32{float32(math.Log(1 - s + eps)), float32(math.Log(s + eps))}
}

func testReq(t *testing.T) api.ScanRequest {
	t.Helper()
	req := api.ScanRequest{
		Model:    "resnet18",
		Region:   "Nebraska",
		TileSize: 64,
		ChipSize: 16,
		Seed:     7,
	}.WithDefaults()
	if err := req.Validate(); err != nil {
		t.Fatalf("test request invalid: %v", err)
	}
	return req
}

func runScan(t *testing.T, ctx context.Context, req api.ScanRequest, be Backend) (api.ScanJob, []api.ScanEvent) {
	t.Helper()
	var events []api.ScanEvent
	job := Run(ctx, Config{Req: req, Model: req.Model, Backend: be, Stats: &metrics.ScanStats{}},
		func(ev api.ScanEvent, _ api.ScanJob) { events = append(events, ev) })
	return job, events
}

func TestWalkRowMajor(t *testing.T) {
	cells, err := Walk(api.ScanOrderRowMajor, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []Cell{{0, 0}, {1, 0}, {2, 0}, {0, 1}, {1, 1}, {2, 1}}
	if len(cells) != len(want) {
		t.Fatalf("got %d cells, want %d", len(cells), len(want))
	}
	for i, c := range cells {
		if c != want[i] {
			t.Fatalf("cell %d = %v, want %v", i, c, want[i])
		}
	}
}

func TestWalkHilbertPermutation(t *testing.T) {
	for _, dims := range [][2]int{{4, 4}, {5, 3}, {7, 7}, {1, 9}, {16, 2}} {
		w, h := dims[0], dims[1]
		cells, err := Walk(api.ScanOrderHilbert, w, h)
		if err != nil {
			t.Fatal(err)
		}
		if len(cells) != w*h {
			t.Fatalf("%dx%d: got %d cells, want %d", w, h, len(cells), w*h)
		}
		seen := make(map[Cell]bool, len(cells))
		for _, c := range cells {
			if c.X < 0 || c.X >= w || c.Y < 0 || c.Y >= h {
				t.Fatalf("%dx%d: cell %v out of grid", w, h, c)
			}
			if seen[c] {
				t.Fatalf("%dx%d: cell %v visited twice", w, h, c)
			}
			seen[c] = true
		}
	}
}

func TestWalkHilbertLocality(t *testing.T) {
	// On a full power-of-two square the Hilbert walk moves one grid step at
	// a time — the defining locality property.
	cells, err := Walk(api.ScanOrderHilbert, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(cells); i++ {
		dx, dy := cells[i].X-cells[i-1].X, cells[i].Y-cells[i-1].Y
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		if dx+dy != 1 {
			t.Fatalf("step %d: %v -> %v is not a unit move", i, cells[i-1], cells[i])
		}
	}
}

func TestWalkUnknownOrder(t *testing.T) {
	if _, err := Walk("spiral", 4, 4); err == nil {
		t.Fatal("want error for unknown order")
	}
}

func TestRunOrderedEmission(t *testing.T) {
	// Per-call jitter scrambles completion order; the event stream must
	// still be in strict walk order with contiguous seq numbers.
	req := testReq(t)
	req.Window = 6
	var mu sync.Mutex
	call := 0
	be := backendFunc(func(ctx context.Context, model string, input *tensor.Tensor) (Result, error) {
		mu.Lock()
		call++
		n := call
		mu.Unlock()
		time.Sleep(time.Duration(n%5) * time.Millisecond)
		s := HeuristicScore(input)
		return Result{Class: 0, Logits: scoreLogits(s), BatchSize: 1}, nil
	})
	job, events := runScan(t, context.Background(), req, be)
	if job.State != api.ScanStateDone {
		t.Fatalf("state = %s (%s), want done", job.State, job.Error)
	}
	if job.DoneTiles != job.TotalTiles || job.TotalTiles != 16 {
		t.Fatalf("done=%d total=%d, want 16/16", job.DoneTiles, job.TotalTiles)
	}
	wantID := 0
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if ev.Type == api.ScanEventTile {
			if ev.Tile.ID != wantID {
				t.Fatalf("tile event out of order: got id %d, want %d", ev.Tile.ID, wantID)
			}
			wantID++
		}
	}
	if wantID != 16 {
		t.Fatalf("saw %d tile events, want 16", wantID)
	}
	if events[len(events)-1].Type != api.ScanEventDone {
		t.Fatalf("last event is %s, want done", events[len(events)-1].Type)
	}
}

func TestRunHilbertSameCoverage(t *testing.T) {
	req := testReq(t)
	req.Order = api.ScanOrderHilbert
	job, events := runScan(t, context.Background(), req, heuristicBackend(0))
	if job.State != api.ScanStateDone {
		t.Fatalf("state = %s (%s)", job.State, job.Error)
	}
	seen := make(map[int]bool)
	for _, ev := range events {
		if ev.Type == api.ScanEventTile {
			seen[ev.Tile.ID] = true
		}
	}
	if len(seen) != job.TotalTiles {
		t.Fatalf("covered %d tiles, want %d", len(seen), job.TotalTiles)
	}
}

func TestRunRetries(t *testing.T) {
	req := testReq(t)
	req.Window = 1 // sequential, so the global call counter maps to per-tile attempts
	var mu sync.Mutex
	calls := 0
	be := backendFunc(func(ctx context.Context, model string, input *tensor.Tensor) (Result, error) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n%3 != 0 { // attempts 1 and 2 of each tile fail, attempt 3 lands
			return Result{}, serve.ErrQueueFull
		}
		return Result{Class: 0, Logits: scoreLogits(HeuristicScore(input)), BatchSize: 1}, nil
	})
	job, _ := runScan(t, context.Background(), req, be)
	if job.State != api.ScanStateDone {
		t.Fatalf("state = %s (%s)", job.State, job.Error)
	}
	if job.FailedTiles != 0 {
		t.Fatalf("failed tiles = %d, want 0", job.FailedTiles)
	}
	if want := 2 * job.TotalTiles; job.Retries != want {
		t.Fatalf("retries = %d, want %d", job.Retries, want)
	}
}

func TestRunExhaustedRetriesMarksTileFailed(t *testing.T) {
	req := testReq(t)
	req.MaxRetries = 1
	be := backendFunc(func(ctx context.Context, model string, input *tensor.Tensor) (Result, error) {
		return Result{}, serve.ErrQueueFull
	})
	job, events := runScan(t, context.Background(), req, be)
	if job.State != api.ScanStateDone {
		t.Fatalf("state = %s (%s), want done (failed tiles don't doom the job)", job.State, job.Error)
	}
	if job.FailedTiles != job.TotalTiles {
		t.Fatalf("failed = %d, want %d", job.FailedTiles, job.TotalTiles)
	}
	for _, ev := range events {
		if ev.Type == api.ScanEventTile && (!ev.Tile.Failed || ev.Tile.Err == "") {
			t.Fatalf("tile %d not marked failed: %+v", ev.Tile.ID, ev.Tile)
		}
	}
}

func TestRunFatalError(t *testing.T) {
	req := testReq(t)
	be := backendFunc(func(ctx context.Context, model string, input *tensor.Tensor) (Result, error) {
		return Result{}, serve.ErrModelNotFound
	})
	job, events := runScan(t, context.Background(), req, be)
	if job.State != api.ScanStateFailed {
		t.Fatalf("state = %s, want failed", job.State)
	}
	if job.Error == "" {
		t.Fatal("failed job has no error message")
	}
	if events[len(events)-1].Type != api.ScanEventDone {
		t.Fatal("terminal event missing after fatal error")
	}
}

func TestRunCancelDrains(t *testing.T) {
	req := testReq(t)
	req.TileSize = 128 // 8x8 = 64 tiles
	req.Window = 4
	if err := req.Validate(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tiles := 0
	var events []api.ScanEvent
	job := Run(ctx, Config{Req: req, Model: req.Model, Backend: heuristicBackend(3 * time.Millisecond)},
		func(ev api.ScanEvent, _ api.ScanJob) {
			events = append(events, ev)
			if ev.Type == api.ScanEventTile {
				tiles++
				if tiles == 3 {
					cancel()
				}
			}
		})
	if job.State != api.ScanStateCanceled {
		t.Fatalf("state = %s, want canceled (done=%d/%d)", job.State, job.DoneTiles, job.TotalTiles)
	}
	// The emitted tile stream must be a contiguous walk-order prefix even
	// though the cancellation raced in-flight tiles.
	wantID := 0
	for _, ev := range events {
		if ev.Type == api.ScanEventTile {
			if ev.Tile.ID != wantID {
				t.Fatalf("tile id %d after cancel, want contiguous prefix (next %d)", ev.Tile.ID, wantID)
			}
			wantID++
		}
	}
	if wantID >= job.TotalTiles {
		t.Fatalf("all %d tiles emitted despite cancel", wantID)
	}
	if events[len(events)-1].Type != api.ScanEventDone {
		t.Fatal("canceled run must still emit the terminal event")
	}
}

func TestRunAdmitGateAborts(t *testing.T) {
	req := testReq(t)
	admitted := 0
	gate := func(ctx context.Context) error {
		admitted++
		if admitted > 5 {
			return errors.New("quota revoked")
		}
		return nil
	}
	var events []api.ScanEvent
	j := Run(context.Background(), Config{Req: req, Model: req.Model, Backend: heuristicBackend(time.Millisecond), Admit: gate},
		func(ev api.ScanEvent, _ api.ScanJob) { events = append(events, ev) })
	if j.State != api.ScanStateFailed {
		t.Fatalf("state = %s, want failed on admit error", j.State)
	}
	if j.Error == "" {
		t.Fatal("admit failure must surface in the job error")
	}
}

func TestRunDeterministicHeatMap(t *testing.T) {
	req := testReq(t)
	req.Window = 7 // deliberately concurrent
	render := func() ([]byte, string, api.ScanJob) {
		var hm *HeatMap
		job := Run(context.Background(), Config{Req: req, Model: req.Model, Backend: heuristicBackend(time.Millisecond)},
			func(ev api.ScanEvent, cur api.ScanJob) {
				if hm == nil {
					hm = NewHeatMap(cur.GridW, cur.GridH, req.Threshold)
				}
				if ev.Type == api.ScanEventTile {
					hm.SetTile(*ev.Tile)
				}
			})
		return hm.PGM(), hm.ASCII(), job
	}
	pgm1, ascii1, job1 := render()
	pgm2, ascii2, job2 := render()
	if !bytes.Equal(pgm1, pgm2) {
		t.Fatal("PGM renderings differ across identical runs")
	}
	if ascii1 != ascii2 {
		t.Fatal("ASCII renderings differ across identical runs")
	}
	if job1.Crossings != job2.Crossings || job1.TruthCrossings != job2.TruthCrossings {
		t.Fatalf("counts differ: %d/%d vs %d/%d",
			job1.Crossings, job1.TruthCrossings, job2.Crossings, job2.TruthCrossings)
	}
}

func TestHeatMapRendering(t *testing.T) {
	hm := NewHeatMap(3, 2, 0.5)
	hm.SetTile(api.ScanTile{ID: 0, X: 0, Y: 0, Score: 0.95})
	hm.SetTile(api.ScanTile{ID: 1, X: 1, Y: 0, Score: 0.05})
	hm.SetTile(api.ScanTile{ID: 3, X: 0, Y: 1, Failed: true})
	got := hm.ASCII()
	want := "@ ~\n?~~\n"
	if got != want {
		t.Fatalf("ASCII = %q, want %q", got, want)
	}
	if hm.Crossings() != 1 {
		t.Fatalf("crossings = %d, want 1", hm.Crossings())
	}
	pgm := hm.PGM()
	if !bytes.HasPrefix(pgm, []byte("P5\n3 2\n255\n")) {
		t.Fatalf("bad PGM header: %q", pgm[:12])
	}
	px := pgm[len(pgm)-6:]
	if px[0] != 242 || px[1] != 13 || px[2] != 0 || px[3] != 0 {
		t.Fatalf("unexpected pixels % d", px)
	}
}

func TestPositiveScore(t *testing.T) {
	if s := PositiveScore([]float32{0, 0}); s < 0.49 || s > 0.51 {
		t.Fatalf("even logits score %f, want 0.5", s)
	}
	if s := PositiveScore([]float32{-10, 10}); s < 0.99 {
		t.Fatalf("strong positive scores %f", s)
	}
	if s := PositiveScore([]float32{10}); s != 0 {
		t.Fatalf("single logit scores %f, want 0", s)
	}
}
