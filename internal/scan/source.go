package scan

import (
	"fmt"

	"drainnas/internal/api"
	"drainnas/internal/geodata"
	"drainnas/internal/tensor"
)

// Source is one scan's chip supply: a synthesized watershed and the
// deterministic chip grid over it. Chip crops are RNG-free and read-only,
// so the runner's window can crop concurrently.
type Source struct {
	Grid     *geodata.Grid
	Channels int
}

// NewSource synthesizes the watershed named by the request and builds its
// grid. The request must already be defaulted and validated; region lookup
// is re-checked here because the watershed is the one piece of state the
// HTTP layer cannot cheaply pre-build.
func NewSource(req api.ScanRequest) (*Source, error) {
	region, ok := geodata.RegionByName(req.Region)
	if !ok {
		return nil, fmt.Errorf("scan: unknown region %q", req.Region)
	}
	tile := geodata.GenerateWatershed(region, req.TileSize, req.Seed)
	grid, err := tile.Grid(req.ChipSize, req.Stride)
	if err != nil {
		return nil, err
	}
	return &Source{Grid: grid, Channels: req.Channels}, nil
}

// ChipTensor crops cell c into a model input tensor.
func (s *Source) ChipTensor(c Cell) *tensor.Tensor {
	return s.Grid.ChipAt(c.X, c.Y).Tensor(s.Channels)
}

// Truth is the ground-truth crossing-cell count.
func (s *Source) Truth() int { return s.Grid.TruthCrossings() }
