package scan

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"drainnas/internal/api"
	"drainnas/internal/metrics"
	"drainnas/internal/tenant"
	"drainnas/internal/tensor"
)

func testFactory(be Backend) BackendFactory {
	return func(api.ScanRequest) (Backend, error) { return be, nil }
}

func waitState(t *testing.T, j *Job, state string) api.ScanJob {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if doc := j.Snapshot(); doc.State == state {
			return doc
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job never reached %s (at %s)", state, j.Snapshot().State)
	return api.ScanJob{}
}

func TestManagerLimitAndGet(t *testing.T) {
	m := NewManager(&metrics.ScanStats{}, 1)
	req := testReq(t)
	// A backend that blocks until released keeps the first job running.
	release := make(chan struct{})
	be := backendFunc(func(ctx context.Context, model string, input *tensor.Tensor) (Result, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return Result{}, ctx.Err()
		}
		return Result{Class: 0, Logits: scoreLogits(0.1), BatchSize: 1}, nil
	})
	j1, err := m.Start(req, StartOptions{Backend: be, Model: req.Model})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start(req, StartOptions{Backend: be, Model: req.Model}); err == nil {
		t.Fatal("second start should hit the concurrent-scan limit")
	} else if !strings.Contains(err.Error(), "limit") {
		t.Fatalf("unexpected error: %v", err)
	}
	if got, ok := m.Get(j1.Snapshot().ID); !ok || got != j1 {
		t.Fatal("Get did not return the started job")
	}
	if _, ok := m.Get("scan-999999"); ok {
		t.Fatal("Get found a job that does not exist")
	}
	close(release)
	waitState(t, j1, api.ScanStateDone)
	// With the slot free a new job starts fine.
	j2, err := m.Start(req, StartOptions{Backend: be, Model: req.Model})
	if err != nil {
		t.Fatalf("start after drain: %v", err)
	}
	waitState(t, j2, api.ScanStateDone)
}

func TestManagerEviction(t *testing.T) {
	m := NewManager(nil, 4)
	// Synthesize finished jobs directly: eviction is bookkeeping, not a run.
	for i := 0; i < retainedJobs+10; i++ {
		m.mu.Lock()
		m.seq++
		id := fmt.Sprintf("scan-%06d", m.seq)
		j := &Job{doc: api.ScanJob{ID: id, State: api.ScanStateDone}, cancel: func() {}}
		j.cond = sync.NewCond(&j.mu)
		m.jobs[id] = j
		m.ord = append(m.ord, id)
		m.evictLocked()
		m.mu.Unlock()
	}
	m.mu.Lock()
	n := len(m.jobs)
	m.mu.Unlock()
	if n != retainedJobs {
		t.Fatalf("retained %d jobs, want %d", n, retainedJobs)
	}
	if _, ok := m.Get("scan-000001"); ok {
		t.Fatal("oldest job should have been evicted")
	}
	if _, ok := m.Get(fmt.Sprintf("scan-%06d", retainedJobs+10)); !ok {
		t.Fatal("newest job must survive eviction")
	}
}

func TestFollowReplayAndResume(t *testing.T) {
	m := NewManager(nil, 2)
	req := testReq(t)
	j, err := m.Start(req, StartOptions{Backend: heuristicBackend(0), Model: req.Model})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, api.ScanStateDone)

	var all []api.ScanEvent
	if err := j.Follow(context.Background(), 0, func(ev api.ScanEvent) error {
		all = append(all, ev)
		return nil
	}); err != nil {
		t.Fatalf("follow: %v", err)
	}
	if len(all) == 0 || all[len(all)-1].Type != api.ScanEventDone {
		t.Fatalf("replay missing terminal event (%d events)", len(all))
	}
	for i, ev := range all {
		if ev.Seq != i {
			t.Fatalf("replay seq %d at index %d", ev.Seq, i)
		}
	}
	// Resume from the middle delivers exactly the tail.
	from := len(all) - 3
	var tail []api.ScanEvent
	if err := j.Follow(context.Background(), from, func(ev api.ScanEvent) error {
		tail = append(tail, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(tail) != 3 || tail[0].Seq != from {
		t.Fatalf("resume from %d delivered %d events starting at %d", from, len(tail), tail[0].Seq)
	}
	// fn error propagates.
	wantErr := fmt.Errorf("client gone")
	if err := j.Follow(context.Background(), 0, func(api.ScanEvent) error { return wantErr }); err != wantErr {
		t.Fatalf("follow returned %v, want fn error", err)
	}
}

func TestFollowLiveCancel(t *testing.T) {
	m := NewManager(nil, 2)
	req := testReq(t)
	req.TileSize = 128
	if err := req.Validate(); err != nil {
		t.Fatal(err)
	}
	j, err := m.Start(req, StartOptions{Backend: heuristicBackend(2 * time.Millisecond), Model: req.Model})
	if err != nil {
		t.Fatal(err)
	}
	// Follow live; cancel the job after a few tiles and require the stream
	// to end with the canceled terminal event rather than hanging.
	done := make(chan error, 1)
	go func() {
		tiles := 0
		done <- j.Follow(context.Background(), 0, func(ev api.ScanEvent) error {
			if ev.Type == api.ScanEventTile {
				tiles++
				if tiles == 2 {
					j.Cancel()
				}
			}
			return nil
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("follow: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follow hung after cancel")
	}
	if st := j.Snapshot().State; st != api.ScanStateCanceled {
		t.Fatalf("state = %s, want canceled", st)
	}
}

func newScanServer(t *testing.T, edge *tenant.Tier, factory BackendFactory) (*httptest.Server, *Manager) {
	t.Helper()
	m := NewManager(&metrics.ScanStats{}, 2)
	mux := http.NewServeMux()
	Register(mux, m, edge, factory)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, m
}

func TestHTTPScanLifecycle(t *testing.T) {
	srv, _ := newScanServer(t, nil, testFactory(heuristicBackend(0)))
	c := api.NewClient(srv.URL, api.ClientOptions{})

	req := testReq(t)
	job, err := c.StartScan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || job.State != api.ScanStateRunning {
		t.Fatalf("start returned %+v", job)
	}

	// Stream events to completion, then rebuild the heat map from them.
	stream, err := c.ScanEvents(context.Background(), job.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	var events []api.ScanEvent
	for {
		ev, err := stream.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
		events = append(events, ev)
	}
	if len(events) == 0 || events[len(events)-1].Type != api.ScanEventDone {
		t.Fatalf("stream ended without done event (%d events)", len(events))
	}
	final := events[len(events)-1].Job
	if final.State != api.ScanStateDone {
		t.Fatalf("terminal state %s: %+v", final.State, final)
	}
	hm := NewHeatMap(final.GridW, final.GridH, req.Threshold)
	for _, ev := range events {
		if ev.Type == api.ScanEventTile {
			hm.SetTile(*ev.Tile)
		}
	}
	if hm.Crossings() != final.Crossings {
		t.Fatalf("heat map crossings %d != job crossings %d", hm.Crossings(), final.Crossings)
	}

	// Poll agrees with the stream's terminal document.
	polled, err := c.ScanStatus(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if polled.State != api.ScanStateDone || polled.DoneTiles != final.DoneTiles {
		t.Fatalf("poll %+v disagrees with stream %+v", polled, final)
	}

	// Resume replays exactly the tail.
	stream2, err := c.ScanEvents(context.Background(), job.ID, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer stream2.Close()
	first, err := stream2.Next()
	if err != nil || first.Seq != 5 {
		t.Fatalf("resume first event %+v err %v, want seq 5", first, err)
	}
}

func TestHTTPErrors(t *testing.T) {
	srv, _ := newScanServer(t, nil, testFactory(heuristicBackend(0)))
	c := api.NewClient(srv.URL, api.ClientOptions{})
	ctx := context.Background()

	cases := []struct {
		name string
		req  api.ScanRequest
		code string
	}{
		{"missing model", api.ScanRequest{Region: "Nebraska", TileSize: 64, ChipSize: 16}, api.CodeBadInput},
		{"unknown region", api.ScanRequest{Model: "resnet18", Region: "Atlantis", TileSize: 64, ChipSize: 16}, api.CodeBadInput},
		{"bad precision", api.ScanRequest{Model: "resnet18", Precision: "fp64", Region: "Nebraska", TileSize: 64, ChipSize: 16}, api.CodeBadInput},
		{"chip too big", api.ScanRequest{Model: "resnet18", Region: "Nebraska", TileSize: 64, ChipSize: 64}, api.CodeBadInput},
	}
	for _, tc := range cases {
		if _, err := c.StartScan(ctx, tc.req); api.ErrorCode(err) != tc.code {
			t.Fatalf("%s: got %v, want code %s", tc.name, err, tc.code)
		}
	}

	if _, err := c.ScanStatus(ctx, "scan-404"); api.ErrorCode(err) != api.CodeScanNotFound {
		t.Fatalf("status of unknown id: %v", err)
	}
	if _, err := c.CancelScan(ctx, "scan-404"); api.ErrorCode(err) != api.CodeScanNotFound {
		t.Fatalf("cancel of unknown id: %v", err)
	}
	if _, err := c.ScanEvents(ctx, "scan-404", 0); api.ErrorCode(err) != api.CodeScanNotFound {
		t.Fatalf("events of unknown id: %v", err)
	}

	// Bad from= is rejected before streaming starts.
	resp, err := http.Get(srv.URL + "/v1/scan/scan-404/events?from=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound && resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad from status %d", resp.StatusCode)
	}
}

func TestHTTPScanLimit(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	blocked := backendFunc(func(ctx context.Context, model string, input *tensor.Tensor) (Result, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return Result{}, ctx.Err()
	})
	srv, m := newScanServer(t, nil, testFactory(blocked))
	_ = m
	c := api.NewClient(srv.URL, api.ClientOptions{})
	ctx := context.Background()
	req := testReq(t)
	for i := 0; i < 2; i++ {
		if _, err := c.StartScan(ctx, req); err != nil {
			t.Fatalf("start %d: %v", i, err)
		}
	}
	_, err := c.StartScan(ctx, req)
	if api.ErrorCode(err) != api.CodeScanLimit {
		t.Fatalf("third start: %v, want %s", err, api.CodeScanLimit)
	}
}

func TestHTTPCancel(t *testing.T) {
	srv, m := newScanServer(t, nil, testFactory(heuristicBackend(3*time.Millisecond)))
	c := api.NewClient(srv.URL, api.ClientOptions{})
	ctx := context.Background()
	req := testReq(t)
	req.TileSize = 128
	if err := req.Validate(); err != nil {
		t.Fatal(err)
	}
	job, err := c.StartScan(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CancelScan(ctx, job.ID); err != nil {
		t.Fatal(err)
	}
	j, _ := m.Get(job.ID)
	final := waitState(t, j, api.ScanStateCanceled)
	if final.DoneTiles >= final.TotalTiles {
		t.Fatalf("cancel had no effect: %d/%d tiles", final.DoneTiles, final.TotalTiles)
	}
}

func writeKeys(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "keys.json")
	blob := `{"tenants":[
		{"name":"alice","key":"alice-key-0001","weight":1},
		{"name":"bob","key":"bob-key-0001","weight":1}
	]}`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestHTTPTenantGating(t *testing.T) {
	edge, err := tenant.LoadTier(writeKeys(t), time.Hour, 4, "scan-test")
	if err != nil {
		t.Fatal(err)
	}
	srv, _ := newScanServer(t, edge, testFactory(heuristicBackend(0)))
	ctx := context.Background()
	req := testReq(t)

	anon := api.NewClient(srv.URL, api.ClientOptions{})
	if _, err := anon.StartScan(ctx, req); api.ErrorCode(err) != api.CodeUnauthorized {
		t.Fatalf("anonymous start: %v, want unauthorized", err)
	}

	alice := api.NewClient(srv.URL, api.ClientOptions{APIKey: "alice-key-0001"})
	job, err := alice.StartScan(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if job.Tenant != "alice" {
		t.Fatalf("job tenant = %q, want alice", job.Tenant)
	}
	if _, err := anon.ScanStatus(ctx, job.ID); api.ErrorCode(err) != api.CodeUnauthorized {
		t.Fatalf("anonymous status: %v", err)
	}
	// Another tenant can't see (or cancel) alice's job.
	bob := api.NewClient(srv.URL, api.ClientOptions{APIKey: "bob-key-0001"})
	if _, err := bob.ScanStatus(ctx, job.ID); api.ErrorCode(err) != api.CodeScanNotFound {
		t.Fatalf("cross-tenant status: %v, want scan_not_found", err)
	}
	if _, err := bob.CancelScan(ctx, job.ID); api.ErrorCode(err) != api.CodeScanNotFound {
		t.Fatalf("cross-tenant cancel: %v", err)
	}
	if _, err := alice.ScanStatus(ctx, job.ID); err != nil {
		t.Fatalf("owner status: %v", err)
	}
}

func TestHTTPTenantQuotaThrottlesTiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keys.json")
	// 200 rps with burst 4: a 16-tile scan must wait for refill, proving the
	// per-tile Admit gate debits the bucket rather than failing tiles.
	blob := `{"tenants":[{"name":"slow","key":"slow-key","weight":1,"rate_rps":200,"burst":4}]}`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	edge, err := tenant.LoadTier(path, time.Hour, 4, "scan-test")
	if err != nil {
		t.Fatal(err)
	}
	srv, m := newScanServer(t, edge, testFactory(heuristicBackend(0)))
	c := api.NewClient(srv.URL, api.ClientOptions{APIKey: "slow-key"})
	job, err := c.StartScan(context.Background(), testReq(t))
	if err != nil {
		t.Fatal(err)
	}
	j, _ := m.Get(job.ID)
	final := waitState(t, j, api.ScanStateDone)
	if final.FailedTiles != 0 || final.DoneTiles != final.TotalTiles {
		t.Fatalf("quota throttling failed tiles: %+v", final)
	}
}

