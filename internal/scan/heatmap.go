package scan

import (
	"fmt"
	"strings"

	"drainnas/internal/api"
)

// HeatMap reassembles a scan's per-tile crossing scores into the W×H grid.
// It is fed from the ordered event stream (SetTile per tile event), so the
// same scan produces byte-identical renderings on every run. Not
// concurrency-safe; feed it from one goroutine, which the ordered stream
// gives you for free.
type HeatMap struct {
	W, H      int
	Threshold float64
	Score     []float64
	Known     []bool
	Failed    []bool
}

// NewHeatMap builds an empty heat map for a w×h grid.
func NewHeatMap(w, h int, threshold float64) *HeatMap {
	return &HeatMap{
		W: w, H: h, Threshold: threshold,
		Score: make([]float64, w*h),
		Known: make([]bool, w*h),
		Failed: make([]bool, w*h),
	}
}

// SetTile records one tile event.
func (m *HeatMap) SetTile(t api.ScanTile) {
	if t.X < 0 || t.X >= m.W || t.Y < 0 || t.Y >= m.H {
		return
	}
	i := t.Y*m.W + t.X
	m.Known[i] = true
	if t.Failed {
		m.Failed[i] = true
		return
	}
	m.Score[i] = t.Score
}

// Crossings counts cells whose score cleared the threshold.
func (m *HeatMap) Crossings() int {
	n := 0
	for i, s := range m.Score {
		if m.Known[i] && !m.Failed[i] && s >= m.Threshold {
			n++
		}
	}
	return n
}

// asciiRamp maps score deciles to glyphs, darkest last.
const asciiRamp = " .:-=+*#%@"

// ASCII renders the heat map one character per cell: the score decile for
// classified cells, '?' for tiles that exhausted their retries, '~' for
// cells the scan never reached (a canceled job's tail).
func (m *HeatMap) ASCII() string {
	var b strings.Builder
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			i := y*m.W + x
			switch {
			case !m.Known[i]:
				b.WriteByte('~')
			case m.Failed[i]:
				b.WriteByte('?')
			default:
				d := int(m.Score[i] * 10)
				if d > 9 {
					d = 9
				}
				if d < 0 {
					d = 0
				}
				b.WriteByte(asciiRamp[d])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// PGM renders the heat map as a binary PGM (P5, maxval 255): score scaled
// to [0, 255], unknown and failed cells 0. The output is byte-identical
// across runs of the same scan.
func (m *HeatMap) PGM() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "P5\n%d %d\n255\n", m.W, m.H)
	out := []byte(b.String())
	for i, s := range m.Score {
		v := 0
		if m.Known[i] && !m.Failed[i] {
			v = int(s*255 + 0.5)
			if v > 255 {
				v = 255
			}
		}
		out = append(out, byte(v))
	}
	return out
}

// Summary is the exact-count report: detected crossings against the
// watershed's ground truth, plus coverage.
func (m *HeatMap) Summary(job api.ScanJob) string {
	return fmt.Sprintf(
		"scan %s: %s — %d/%d tiles classified (%d failed, %d retries), "+
			"crossings detected %d (threshold %.2f), ground truth %d, %.0f ms",
		job.ID, job.State, job.DoneTiles, job.TotalTiles, job.FailedTiles, job.Retries,
		m.Crossings(), m.Threshold, job.TruthCrossings, job.ElapsedMS)
}
