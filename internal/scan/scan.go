package scan

import (
	"context"
	"math"
	"sync"
	"time"

	"drainnas/internal/api"
	"drainnas/internal/metrics"
)

// Config assembles one scan run.
type Config struct {
	// Req is the scan request, already WithDefaults()'d and Validate()'d.
	Req api.ScanRequest
	// Model is the resolved serving key tiles run under.
	Model string
	// Backend serves the tiles.
	Backend Backend
	// Job is the pre-filled job document (ID, Tenant, Model, Region, Order,
	// Seed); Run fills the grid and progress fields.
	Job api.ScanJob
	// Stats receives scan counters; nil discards them.
	Stats *metrics.ScanStats
	// Admit, when set, gates each tile's dispatch (the per-tile tenant
	// quota debit). It may block for backpressure; returning an error
	// aborts the job.
	Admit func(ctx context.Context) error
	// Source overrides the geodata-backed source (tests inject one); nil
	// builds NewSource(Req).
	Source *Source
}

// retryBackoff is the base per-tile retry delay, doubled per attempt.
const retryBackoff = 5 * time.Millisecond

// Run executes one whole-watershed scan: walk the grid in the requested
// order, keep at most Req.Window tiles in flight, retry transient serving
// rejections per tile, and emit every event strictly in walk order through
// emit (called sequentially from one goroutine; each event carries the
// job document as of that event). Run returns the terminal job document:
// done when every tile was classified, canceled when ctx expired mid-scan
// (in-flight tiles drain first), failed on a fatal serving error or an
// unbuildable source.
func Run(ctx context.Context, cfg Config, emit func(api.ScanEvent, api.ScanJob)) api.ScanJob {
	req := cfg.Req
	job := cfg.Job
	job.State = api.ScanStateRunning
	start := time.Now()
	seq := 0
	emitEv := func(ev api.ScanEvent) {
		if emit == nil {
			return
		}
		ev.Seq = seq
		seq++
		emit(ev, job)
	}
	finish := func(state, errMsg string) api.ScanJob {
		job.State = state
		job.Error = errMsg
		job.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
		cfg.Stats.JobFinished(state)
		doc := job
		emitEv(api.ScanEvent{Type: api.ScanEventDone, Job: &doc})
		return job
	}

	cfg.Stats.JobStarted()

	src := cfg.Source
	if src == nil {
		var err error
		if src, err = NewSource(req); err != nil {
			return finish(api.ScanStateFailed, err.Error())
		}
	}
	grid := src.Grid
	job.GridW, job.GridH, job.TotalTiles = grid.W, grid.H, grid.Cells()
	job.TruthCrossings = src.Truth()

	cells, err := Walk(req.Order, grid.W, grid.H)
	if err != nil {
		return finish(api.ScanStateFailed, err.Error())
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make(chan tileOut)
	sem := make(chan struct{}, req.Window)
	var admitErr error

	// Dispatcher: acquire a window slot, pass the per-tile admission gate,
	// launch the tile worker. Stops at cancellation; close(results) after
	// every launched worker reported keeps the collector's range honest.
	go func() {
		var wg sync.WaitGroup
		defer func() {
			wg.Wait()
			close(results)
		}()
		for pos, c := range cells {
			select {
			case sem <- struct{}{}:
			case <-runCtx.Done():
				return
			}
			if cfg.Admit != nil {
				if err := cfg.Admit(runCtx); err != nil {
					if runCtx.Err() == nil {
						admitErr = err
						cancel()
					}
					<-sem
					return
				}
			}
			wg.Add(1)
			go func(pos int, c Cell) {
				defer wg.Done()
				defer func() { <-sem }()
				runTile(runCtx, cfg, src, pos, c, func(o tileOut) {
					results <- o
				})
			}(pos, c)
		}
	}()

	// Collector: reorder the window's completions into strict walk order.
	// A slow tile parks its successors in the buffer; they emit the moment
	// the gap fills. On a fatal error the run cancels but keeps draining,
	// so every launched worker lands before the terminal event.
	buffer := make(map[int]api.ScanTile, req.Window)
	next := 0
	progressEvery := job.TotalTiles / 16
	if progressEvery < 1 {
		progressEvery = 1
	}
	var fatal error
	for r := range results {
		if r.err != nil {
			if fatal == nil {
				fatal = r.err
				cancel()
			}
			continue
		}
		buffer[r.pos] = r.tile
		for {
			tile, ok := buffer[next]
			if !ok {
				break
			}
			delete(buffer, next)
			next++
			job.Retries += tile.Retries
			crossing := false
			if tile.Failed {
				job.FailedTiles++
				cfg.Stats.TileFailed(tile.Retries)
			} else {
				job.DoneTiles++
				if tile.Score >= req.Threshold {
					crossing = true
					job.Crossings++
				}
				cfg.Stats.Tile(time.Duration(tile.LatencyMS*float64(time.Millisecond)), tile.Retries, crossing)
			}
			job.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
			t := tile
			emitEv(api.ScanEvent{Type: api.ScanEventTile, Tile: &t})
			if (next%progressEvery == 0 && next < job.TotalTiles) || next == job.TotalTiles {
				doc := job
				emitEv(api.ScanEvent{Type: api.ScanEventProgress, Job: &doc})
			}
		}
	}

	switch {
	case fatal != nil:
		return finish(api.ScanStateFailed, fatal.Error())
	case admitErr != nil && ctx.Err() == nil:
		return finish(api.ScanStateFailed, admitErr.Error())
	case ctx.Err() != nil && next < job.TotalTiles:
		return finish(api.ScanStateCanceled, "")
	default:
		return finish(api.ScanStateDone, "")
	}
}

// tileOut is one worker's report to the collector: a completed tile, or a
// fatal error that dooms the job.
type tileOut struct {
	pos  int
	tile api.ScanTile
	err  error
}

// runTile classifies one cell with the per-tile retry loop and reports the
// outcome (or a fatal error) through report. Cancellation mid-tile reports
// nothing: the tile never happened as far as the ordered stream goes.
func runTile(ctx context.Context, cfg Config, src *Source, pos int, c Cell, report func(tileOut)) {
	input := src.ChipTensor(c)
	t0 := time.Now()
	var res Result
	var err error
	retries := 0
	for ; ; retries++ {
		res, err = cfg.Backend.Classify(ctx, cfg.Model, input)
		if err == nil || retries >= cfg.Req.MaxRetries || !retryable(err) {
			break
		}
		select {
		case <-time.After(retryBackoff << retries):
		case <-ctx.Done():
			return
		}
	}
	latencyMS := float64(time.Since(t0)) / float64(time.Millisecond)
	id := src.Grid.ChipID(c.X, c.Y)
	if err != nil {
		if ctx.Err() != nil {
			return // canceled: drain silently
		}
		if fatalErr(err) {
			report(tileOut{pos: pos, err: err})
			return
		}
		report(tileOut{pos: pos, tile: api.ScanTile{
			ID: id, X: c.X, Y: c.Y, Failed: true, Err: err.Error(),
			Retries: retries, LatencyMS: latencyMS,
		}})
		return
	}
	report(tileOut{pos: pos, tile: api.ScanTile{
		ID: id, X: c.X, Y: c.Y,
		Class: res.Class, Score: PositiveScore(res.Logits),
		BatchSize: res.BatchSize, Replica: res.Replica,
		Retries: retries, LatencyMS: latencyMS,
	}})
}

// PositiveScore is the softmax probability of the crossing class (index 1)
// given raw logits; fewer than two logits score zero.
func PositiveScore(logits []float32) float64 {
	if len(logits) < 2 {
		return 0
	}
	max := float64(logits[0])
	for _, l := range logits[1:] {
		if float64(l) > max {
			max = float64(l)
		}
	}
	var sum float64
	for _, l := range logits {
		sum += math.Exp(float64(l) - max)
	}
	return math.Exp(float64(logits[1])-max) / sum
}
