// Package scan is the whole-watershed streaming inference pipeline: it
// walks a tiled region from internal/geodata in a locality-preserving
// order, fans chip-classification requests into the serving tier (an
// in-process serve.Server, a route.Router fleet, or a remote tier through
// api.Client) under a bounded sliding window with per-tile retry, and
// reassembles the ordered drainage-crossing heat map while streaming
// progress events. The job layer (Manager/Job) exposes the pipeline as the
// /v1/scan job API both front ends mount.
//
// Ordering is the load-bearing guarantee: tile events are emitted strictly
// in walk order regardless of how the window's concurrency completes them,
// and tile IDs derive from grid position alone, so the same request yields
// a byte-identical heat map on every run, at any concurrency.
package scan

import (
	"fmt"

	"drainnas/internal/api"
)

// Cell is one grid position in a walk.
type Cell struct{ X, Y int }

// Walk returns the tile visit order for a w×h grid. Row-major is the plain
// raster; Hilbert maps the grid onto a Hilbert curve over the enclosing
// power-of-two square (skipping cells outside the grid), preserving 2-D
// locality in the 1-D request stream so consecutive requests hit
// neighboring terrain.
func Walk(order string, w, h int) ([]Cell, error) {
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("scan: grid %dx%d is empty", w, h)
	}
	switch order {
	case api.ScanOrderRowMajor:
		cells := make([]Cell, 0, w*h)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				cells = append(cells, Cell{x, y})
			}
		}
		return cells, nil
	case api.ScanOrderHilbert:
		n := 1
		for n < w || n < h {
			n *= 2
		}
		cells := make([]Cell, 0, w*h)
		for d := 0; d < n*n; d++ {
			x, y := hilbertD2XY(n, d)
			if x < w && y < h {
				cells = append(cells, Cell{x, y})
			}
		}
		return cells, nil
	}
	return nil, fmt.Errorf("scan: unknown order %q", order)
}

// hilbertD2XY converts a distance along the Hilbert curve of an n×n square
// (n a power of two) to coordinates — the classic bit-twiddling form.
func hilbertD2XY(n, d int) (x, y int) {
	t := d
	for s := 1; s < n; s *= 2 {
		rx := 1 & (t / 2)
		ry := 1 & (t ^ rx)
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}
