package scan

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"drainnas/internal/api"
	"drainnas/internal/geodata"
	"drainnas/internal/httpx"
	"drainnas/internal/tenant"
)

// maxScanBodyBytes bounds the POST /v1/scan request body: a scan request
// is a page of JSON, not a tensor.
const maxScanBodyBytes = 1 << 20

// tileQuotaRetry is how long a quota-limited scan waits between per-tile
// token attempts — the scan slows to the tenant's sustained rate instead
// of failing tiles.
const tileQuotaRetry = 50 * time.Millisecond

// BackendFactory builds the serving backend for one scan request; the
// router tier parses the request's SLO class here. A returned error is a
// client error (400 bad_input).
type BackendFactory func(req api.ScanRequest) (Backend, error)

// Register mounts the scan-job API on mux:
//
//	POST   /v1/scan             start a job (202 + job document)
//	GET    /v1/scan/{id}        poll the job document
//	GET    /v1/scan/{id}/events NDJSON event stream, ?from=<seq> resumes
//	DELETE /v1/scan/{id}        cancel (in-flight tiles drain first)
//
// When edge is non-nil the POST runs through the full admission pipeline
// (auth → quota → weighted-fair) and each dispatched tile debits one
// quota token; the read and cancel routes require a valid key and hide
// other tenants' jobs.
func Register(mux *http.ServeMux, m *Manager, edge *tenant.Tier, backend BackendFactory) {
	start := http.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handleStart(w, r, m, edge, backend)
	}))
	if edge != nil {
		start = edge.Wrap(start)
	}
	mux.Handle("POST /v1/scan", start)
	mux.HandleFunc("GET /v1/scan/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := lookup(w, r, m, edge)
		if !ok {
			return
		}
		httpx.WriteJSON(w, http.StatusOK, j.Snapshot())
	})
	mux.HandleFunc("DELETE /v1/scan/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := lookup(w, r, m, edge)
		if !ok {
			return
		}
		j.Cancel()
		httpx.WriteJSON(w, http.StatusOK, j.Snapshot())
	})
	mux.HandleFunc("GET /v1/scan/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		handleEvents(w, r, m, edge)
	})
}

func handleStart(w http.ResponseWriter, r *http.Request, m *Manager, edge *tenant.Tier, backend BackendFactory) {
	r.Body = http.MaxBytesReader(w, r.Body, maxScanBodyBytes)
	var req api.ScanRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpx.Error(w, http.StatusBadRequest, api.CodeBadInput, "bad scan request: "+err.Error())
		return
	}
	req = req.WithDefaults()
	if err := req.Validate(); err != nil {
		httpx.Error(w, http.StatusBadRequest, api.CodeBadInput, err.Error())
		return
	}
	if _, ok := geodata.RegionByName(req.Region); !ok {
		httpx.Error(w, http.StatusBadRequest, api.CodeBadInput,
			fmt.Sprintf("unknown region %q", req.Region))
		return
	}
	key, err := api.ResolveServingKey(req.Model, req.Precision)
	if err != nil {
		httpx.Error(w, http.StatusBadRequest, api.CodeBadInput, err.Error())
		return
	}
	be, err := backend(req)
	if err != nil {
		httpx.Error(w, http.StatusBadRequest, api.CodeBadInput, err.Error())
		return
	}

	opts := StartOptions{Backend: be, Model: key}
	if tn, ok := tenant.FromContext(r.Context()); ok {
		opts.Tenant = tn.Name
		if edge != nil && tn.Rate > 0 {
			opts.Admit = func(ctx context.Context) error {
				for !edge.Allow(tn) {
					select {
					case <-time.After(tileQuotaRetry):
					case <-ctx.Done():
						return ctx.Err()
					}
				}
				return nil
			}
		}
	}
	j, err := m.Start(req, opts)
	if err != nil {
		if errors.Is(err, ErrLimit) {
			w.Header().Set("Retry-After", "5")
			httpx.Error(w, http.StatusTooManyRequests, api.CodeScanLimit, err.Error())
			return
		}
		httpx.Error(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
		return
	}
	httpx.WriteJSON(w, http.StatusAccepted, j.Snapshot())
}

// lookup resolves {id} with the tier's auth and tenant-visibility rules.
// On failure the error envelope has already been written.
func lookup(w http.ResponseWriter, r *http.Request, m *Manager, edge *tenant.Tier) (*Job, bool) {
	var tn tenant.Tenant
	if edge != nil {
		var ok bool
		if tn, ok = edge.Authenticate(r); !ok {
			httpx.Error(w, http.StatusUnauthorized, api.CodeUnauthorized,
				"missing or unknown API key (use Authorization: Bearer <key> or X-API-Key)")
			return nil, false
		}
	}
	id := r.PathValue("id")
	j, ok := m.Get(id)
	if ok && edge != nil {
		// A tenant sees only its own jobs; unattributed jobs stay visible.
		if owner := j.Snapshot().Tenant; owner != "" && owner != tn.Name {
			ok = false
		}
	}
	if !ok {
		httpx.Error(w, http.StatusNotFound, api.CodeScanNotFound,
			fmt.Sprintf("%v: %q", ErrNotFound, id))
		return nil, false
	}
	return j, true
}

func handleEvents(w http.ResponseWriter, r *http.Request, m *Manager, edge *tenant.Tier) {
	j, ok := lookup(w, r, m, edge)
	if !ok {
		return
	}
	from := 0
	if s := r.URL.Query().Get("from"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			httpx.Error(w, http.StatusBadRequest, api.CodeBadInput,
				fmt.Sprintf("bad from=%q: want a non-negative integer", s))
			return
		}
		from = n
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpx.Error(w, http.StatusInternalServerError, api.CodeInternal,
			"response writer does not support streaming")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	// Errors here mean the client went away; the job keeps running.
	_ = j.Follow(r.Context(), from, func(ev api.ScanEvent) error {
		if err := enc.Encode(ev); err != nil {
			return err
		}
		flusher.Flush()
		return nil
	})
}
