package scan

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"drainnas/internal/api"
	"drainnas/internal/metrics"
)

var (
	// ErrLimit means the manager is at its concurrent-scan bound
	// (api.CodeScanLimit / 429 on the wire).
	ErrLimit = errors.New("scan: concurrent scan limit reached")
	// ErrNotFound means an unknown job ID (api.CodeScanNotFound / 404).
	ErrNotFound = errors.New("scan: no such job")
)

// DefaultMaxRunning bounds concurrently running scans per manager; each
// running scan holds a window of in-flight tiles, so this bounds the
// scan tier's total imposed load.
const DefaultMaxRunning = 4

// retainedJobs bounds finished jobs (and their event history) kept for
// polling and replay before the oldest are evicted.
const retainedJobs = 64

// Manager owns the scan-job table: it starts runs, retains each job's
// ordered event history for replay-then-follow streaming, and enforces the
// concurrent-scan bound. The backend arrives per job (StartOptions) so one
// manager serves jobs with differing SLO classes.
type Manager struct {
	stats      *metrics.ScanStats
	maxRunning int

	mu   sync.Mutex
	jobs map[string]*Job
	ord  []string // insertion order, for eviction
	seq  int
}

// NewManager builds a manager. maxRunning <= 0 uses DefaultMaxRunning;
// stats may be nil.
func NewManager(stats *metrics.ScanStats, maxRunning int) *Manager {
	if maxRunning <= 0 {
		maxRunning = DefaultMaxRunning
	}
	return &Manager{
		stats:      stats,
		maxRunning: maxRunning,
		jobs:       make(map[string]*Job),
	}
}

// Stats exposes the manager's metrics sink (nil-safe for a nil manager).
func (m *Manager) Stats() *metrics.ScanStats {
	if m == nil {
		return nil
	}
	return m.stats
}

// StartOptions carries the per-job context Start needs beyond the request.
type StartOptions struct {
	// Backend serves the job's tiles (required).
	Backend Backend
	// Model is the resolved serving key.
	Model string
	// Tenant attributes the job when the edge tier admitted it.
	Tenant string
	// Admit is the optional per-tile admission gate (tenant token debit).
	Admit func(ctx context.Context) error
}

// Start validates nothing (the HTTP layer already did), admits the job
// against the concurrent-scan bound, and launches the run. The returned
// job is immediately pollable and followable.
func (m *Manager) Start(req api.ScanRequest, opts StartOptions) (*Job, error) {
	m.mu.Lock()
	running := 0
	for _, j := range m.jobs {
		if !j.finished() {
			running++
		}
	}
	if running >= m.maxRunning {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w (%d running, max %d)", ErrLimit, running, m.maxRunning)
	}
	m.seq++
	id := fmt.Sprintf("scan-%06d", m.seq)
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		cancel: cancel,
		doc: api.ScanJob{
			ID: id, State: api.ScanStateRunning,
			Model: opts.Model, Region: req.Region, Order: req.Order, Seed: req.Seed,
			Tenant: opts.Tenant,
		},
	}
	j.cond = sync.NewCond(&j.mu)
	m.jobs[id] = j
	m.ord = append(m.ord, id)
	m.evictLocked()
	m.mu.Unlock()

	go func() {
		final := Run(ctx, Config{
			Req:     req,
			Model:   opts.Model,
			Backend: opts.Backend,
			Job:     j.doc,
			Stats:   m.stats,
			Admit:   opts.Admit,
		}, j.append)
		cancel()
		j.mu.Lock()
		j.doc = final
		j.cond.Broadcast()
		j.mu.Unlock()
	}()
	return j, nil
}

// evictLocked drops the oldest finished jobs beyond the retention bound.
// Running jobs are never evicted.
func (m *Manager) evictLocked() {
	if len(m.ord) <= retainedJobs {
		return
	}
	kept := m.ord[:0]
	excess := len(m.ord) - retainedJobs
	for _, id := range m.ord {
		if excess > 0 {
			if j := m.jobs[id]; j != nil && j.finished() {
				delete(m.jobs, id)
				excess--
				continue
			}
		}
		kept = append(kept, id)
	}
	m.ord = kept
}

// Get looks a job up by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Job is one scan's live state: the evolving document plus the full
// ordered event history, which lets an events stream replay from any
// sequence number and then follow live.
type Job struct {
	mu     sync.Mutex
	cond   *sync.Cond
	doc    api.ScanJob
	events []api.ScanEvent
	cancel context.CancelFunc
}

// append is the runner's emit hook: record the event, refresh the
// document, wake followers. Events arrive in seq order from one goroutine.
func (j *Job) append(ev api.ScanEvent, doc api.ScanJob) {
	j.mu.Lock()
	j.events = append(j.events, ev)
	j.doc = doc
	j.cond.Broadcast()
	j.mu.Unlock()
}

// Snapshot returns the job document as of the latest event.
func (j *Job) Snapshot() api.ScanJob {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.doc
}

// finished reports a terminal state.
func (j *Job) finished() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.doc.State != api.ScanStateRunning
}

// Cancel requests cancellation; the run drains its in-flight tiles and
// lands in the canceled state. Idempotent, and a no-op on finished jobs.
func (j *Job) Cancel() { j.cancel() }

// Follow replays the event history from sequence number from, then follows
// live until the terminal event has been delivered, fn returns an error
// (client gone), or ctx expires. fn is called in strict seq order.
func (j *Job) Follow(ctx context.Context, from int, fn func(api.ScanEvent) error) error {
	if from < 0 {
		from = 0
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			j.mu.Lock()
			j.cond.Broadcast()
			j.mu.Unlock()
		case <-stop:
		}
	}()
	next := from
	for {
		j.mu.Lock()
		for next >= len(j.events) && j.doc.State == api.ScanStateRunning && ctx.Err() == nil {
			j.cond.Wait()
		}
		if ctx.Err() != nil {
			j.mu.Unlock()
			return ctx.Err()
		}
		if next >= len(j.events) {
			j.mu.Unlock()
			return nil // terminal and fully delivered
		}
		ev := j.events[next]
		j.mu.Unlock()
		next++
		if err := fn(ev); err != nil {
			return err
		}
	}
}
