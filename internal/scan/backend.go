package scan

import (
	"context"
	"errors"
	"math"
	"time"

	"drainnas/internal/api"
	"drainnas/internal/latmeter"
	"drainnas/internal/route"
	"drainnas/internal/serve"
	"drainnas/internal/tensor"
)

// Result is one classified chip, backend-agnostic.
type Result struct {
	Class     int
	Logits    []float32
	BatchSize int
	Replica   string
}

// Backend classifies one chip tensor under a serving key. Implementations
// must be safe for concurrent use — the runner keeps a window of tiles in
// flight.
type Backend interface {
	Classify(ctx context.Context, model string, input *tensor.Tensor) (Result, error)
}

// ServerBackend scans through an in-process batching server (servd's local
// mode: tiles ride the same micro-batching queue as predict traffic).
type ServerBackend struct{ S *serve.Server }

// Classify submits one chip to the batcher.
func (b ServerBackend) Classify(ctx context.Context, model string, input *tensor.Tensor) (Result, error) {
	resp, err := b.S.Submit(ctx, model, input)
	if err != nil {
		return Result{}, err
	}
	return Result{Class: resp.Class, Logits: resp.Logits, BatchSize: resp.BatchSize}, nil
}

// RouterBackend scans through the cluster routing tier under an SLO class
// (batch is the natural class for a bulk scan).
type RouterBackend struct {
	R     *route.Router
	Class route.SLOClass
}

// Classify submits one chip to the fleet.
func (b RouterBackend) Classify(ctx context.Context, model string, input *tensor.Tensor) (Result, error) {
	resp, err := b.R.SubmitClass(ctx, b.Class, model, input)
	if err != nil {
		return Result{}, err
	}
	return Result{Class: resp.Class, Logits: resp.Logits, BatchSize: resp.BatchSize, Replica: resp.Replica}, nil
}

// ClientBackend scans a remote tier over HTTP through the typed API client
// (cmd/scan's live mode). The model key carries any precision suffix;
// per-tile retries belong to the runner, so configure the client with
// Retries: 0 unless transport-level retry is wanted too.
type ClientBackend struct {
	C   *api.Client
	SLO string
}

// Classify posts one chip to /v1/predict.
func (b ClientBackend) Classify(ctx context.Context, model string, input *tensor.Tensor) (Result, error) {
	shape := input.Shape()
	resp, err := b.C.Predict(ctx, api.PredictRequest{
		Model: model, Shape: shape[1:], Data: input.Data(), SLO: b.SLO,
	})
	if err != nil {
		return Result{}, err
	}
	return Result{Class: resp.Class, Logits: resp.Logits, BatchSize: resp.BatchSize, Replica: resp.Replica}, nil
}

// SimBackend is a latmeter-simulated replica: per-tile latency comes from
// the device's analytical service model and classification from a
// deterministic heuristic, so the whole pipeline (window, ordering, retry,
// heat map) can be exercised without trained containers or a live fleet.
type SimBackend struct {
	// Service is the device's batch-1 service model (Device.Service(graph)).
	Service latmeter.ServiceModel
	// Replica labels tile events (e.g. the device name).
	Replica string
	// SleepScale scales the modeled latency into real sleep time; 0 skips
	// sleeping (tests), 1 replays the device in real time.
	SleepScale float64
}

// Classify sleeps out the modeled latency and scores the chip heuristically.
func (b SimBackend) Classify(ctx context.Context, model string, input *tensor.Tensor) (Result, error) {
	if b.SleepScale > 0 {
		d := time.Duration(b.Service.BatchMS(1) * b.SleepScale * float64(time.Millisecond))
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return Result{}, ctx.Err()
		}
	}
	score := HeuristicScore(input)
	class := 0
	if score >= 0.5 {
		class = 1
	}
	// Logits that softmax back to the heuristic score, so the runner's
	// score path is identical across backends.
	eps := 1e-6
	return Result{
		Class:     class,
		Logits:    []float32{float32(math.Log(1 - score + eps)), float32(math.Log(score + eps))},
		BatchSize: 1,
		Replica:   b.Replica,
	}, nil
}

// HeuristicScore estimates the crossing probability of a chip without a
// trained model: a drainage crossing stamps a carved channel through a
// raised road embankment, so a crossing chip contains strongly-high and
// strongly-low DEM cells in contact. The score scales the fraction of high
// cells with a low cell in their 5×5 neighborhood. Deterministic in the
// chip bytes.
func HeuristicScore(x *tensor.Tensor) float64 {
	shape := x.Shape()
	s := shape[len(shape)-1]
	dem := x.Data()[:s*s]

	var sum, ss float64
	for _, v := range dem {
		sum += float64(v)
	}
	mean := sum / float64(len(dem))
	for _, v := range dem {
		d := float64(v) - mean
		ss += d * d
	}
	std := math.Sqrt(ss / float64(len(dem)))
	if std < 1e-9 {
		return 0
	}

	hi := make([]bool, s*s)
	lo := make([]bool, s*s)
	for i, v := range dem {
		d := float64(v) - mean
		hi[i] = d > 0.8*std
		lo[i] = d < -0.8*std
	}
	touches := 0
	for y := 0; y < s; y++ {
		for x0 := 0; x0 < s; x0++ {
			if !hi[y*s+x0] {
				continue
			}
			found := false
			for dy := -2; dy <= 2 && !found; dy++ {
				for dx := -2; dx <= 2; dx++ {
					nx, ny := x0+dx, y+dy
					if nx >= 0 && nx < s && ny >= 0 && ny < s && lo[ny*s+nx] {
						found = true
						break
					}
				}
			}
			if found {
				touches++
			}
		}
	}
	score := 30 * float64(touches) / float64(s*s)
	if score > 0.99 {
		score = 0.99
	}
	return score
}

// retryable reports whether a tile's serving error is worth retrying
// against the same backend: transient capacity rejections in any of the
// forms the three backend families produce. Context expiry and input or
// lookup errors are not.
func retryable(err error) bool {
	switch {
	case err == nil, errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return false
	case errors.Is(err, serve.ErrQueueFull), errors.Is(err, route.ErrThrottled), errors.Is(err, route.ErrNoReplicas):
		return true
	}
	switch api.ErrorCode(err) {
	case api.CodeQueueFull, api.CodeThrottled, api.CodeQuotaExceeded, api.CodeNoReplicas:
		return true
	}
	return false
}

// fatalErr reports an error that dooms every remaining tile (the model is
// gone or the tier is shutting down), so the job aborts instead of burning
// retries tile by tile.
func fatalErr(err error) bool {
	if errors.Is(err, serve.ErrModelNotFound) || errors.Is(err, serve.ErrClosed) || errors.Is(err, route.ErrClosed) {
		return true
	}
	switch api.ErrorCode(err) {
	case api.CodeModelNotFound, api.CodeShuttingDown:
		return true
	}
	return false
}
