package core

import (
	"math"
	"testing"

	"drainnas/internal/nas"
	"drainnas/internal/pareto"
	"drainnas/internal/resnet"
	"drainnas/internal/surrogate"
)

func surrogateEval() nas.Evaluator {
	return nas.SurrogateEvaluator{Model: surrogate.Default()}
}

func fullRun(t *testing.T) *Result {
	t.Helper()
	res, err := Run(Options{
		Evaluator:         surrogateEval(),
		SimulateAttrition: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunReproducesValidTrialCount(t *testing.T) {
	res := fullRun(t)
	if res.RawTrials != 1728 {
		t.Fatalf("raw trials %d, want 1728", res.RawTrials)
	}
	if len(res.Trials) != nas.PaperValidTrialCount {
		t.Fatalf("valid trials %d, want %d", len(res.Trials), nas.PaperValidTrialCount)
	}
}

func TestRunObjectiveRangesShapedLikeTable3(t *testing.T) {
	res := fullRun(t)
	mins, maxs := res.ObjectiveRanges()
	// Paper Table 3: accuracy 76.19–96.13 %, latency 8.13–249.56 ms,
	// memory 11.18–44.69 MB. Accuracy and memory should land close; the
	// latency range is compressed by our physically-consistent cost model
	// (documented in EXPERIMENTS.md) but orderings hold.
	if mins[0] > 85 || maxs[0] < 94 || maxs[0] > 99 {
		t.Fatalf("accuracy range [%.2f, %.2f]", mins[0], maxs[0])
	}
	if mins[2] < 11.0 || mins[2] > 11.6 {
		t.Fatalf("memory min %.2f, want ≈11.18", mins[2])
	}
	if maxs[2] < 44.0 || maxs[2] > 45.5 {
		t.Fatalf("memory max %.2f, want ≈44.69+ε", maxs[2])
	}
	if mins[1] <= 0 || maxs[1] <= mins[1]*3 {
		t.Fatalf("latency range [%.2f, %.2f] — span too narrow", mins[1], maxs[1])
	}
}

func TestFrontIsNonDominatedAndSmall(t *testing.T) {
	res := fullRun(t)
	if len(res.FrontIdx) == 0 {
		t.Fatal("empty Pareto front")
	}
	// The paper finds 5 non-dominated solutions; our reproduction should
	// find a similarly small set.
	if len(res.FrontIdx) > 25 {
		t.Fatalf("front size %d — far larger than the paper's 5", len(res.FrontIdx))
	}
	pts := res.Points()
	for _, fi := range res.FrontIdx {
		for _, pj := range pts {
			if pareto.Dominates(pj, pts[fi], Objectives) {
				t.Fatalf("front member %d is dominated", fi)
			}
		}
	}
}

func TestFrontSharesPaperTraits(t *testing.T) {
	// Paper §4/Figure 4: all non-dominated models use the smallest kernel,
	// and the minimal-memory width (32 features).
	res := fullRun(t)
	for _, trial := range res.NonDominated() {
		if trial.Config.KernelSize != 3 {
			t.Errorf("front member uses kernel %d (paper: all use 3): %+v",
				trial.Config.KernelSize, trial.Config)
		}
		if trial.Config.InitialOutputFeature != 32 {
			t.Errorf("front member uses width %d (paper: all use 32)",
				trial.Config.InitialOutputFeature)
		}
	}
	// Sorted by descending accuracy.
	front := res.NonDominated()
	for i := 1; i < len(front); i++ {
		if front[i].Accuracy > front[i-1].Accuracy {
			t.Fatal("front not sorted by accuracy")
		}
	}
}

func TestFrontBeatsBaselines(t *testing.T) {
	// The paper: "all our non-dominated models surpassed the general
	// ResNet-18": lower latency, lower memory, comparable accuracy.
	res := fullRun(t)
	baselines, err := Baselines(nil, surrogateEval(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(baselines) != 6 {
		t.Fatalf("baselines %d, want 6", len(baselines))
	}
	front := res.NonDominated()
	flags := DominatesBaseline(front, baselines, 1.5)
	wins := 0
	for _, ok := range flags {
		if ok {
			wins++
		}
	}
	if wins < len(front)/2 {
		t.Fatalf("only %d/%d front members beat their baseline", wins, len(front))
	}
	// Every front member must use ~4x less memory than stock.
	for _, f := range front {
		if f.MemoryMB > 20 {
			t.Fatalf("front member memory %.2f MB — not in the small tier", f.MemoryMB)
		}
	}
}

func TestBaselinesMatchTable5Shape(t *testing.T) {
	baselines, err := Baselines(nil, surrogateEval(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range baselines {
		if b.MemoryMB < 44 || b.MemoryMB > 46 {
			t.Fatalf("baseline memory %.2f", b.MemoryMB)
		}
		if b.LatencyMS < 25 || b.LatencyMS > 40 {
			t.Fatalf("baseline latency %.2f", b.LatencyMS)
		}
		if b.Accuracy < 86 || b.Accuracy > 98 {
			t.Fatalf("baseline accuracy %.2f", b.Accuracy)
		}
	}
	// Within a channel count, latency identical across batch sizes
	// (Table 5 rows share 31.91 / 32.46).
	if baselines[0].LatencyMS != baselines[1].LatencyMS ||
		baselines[1].LatencyMS != baselines[2].LatencyMS {
		t.Fatal("5ch baseline latency differs across batch sizes")
	}
	if baselines[3].LatencyMS <= baselines[0].LatencyMS {
		t.Fatal("7ch baseline must be slower than 5ch")
	}
}

func TestMeasureAttachesAllObjectives(t *testing.T) {
	trial, err := Measure(resnet.StockResNet18(5, 8), 92.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if trial.Accuracy != 92.9 || trial.LatencyMS <= 0 || trial.MemoryMB <= 0 || trial.LatStdMS <= 0 {
		t.Fatalf("trial %+v", trial)
	}
	if len(trial.PerDevice) != 4 {
		t.Fatalf("per-device %d entries", len(trial.PerDevice))
	}
}

func TestMeasureRejectsInvalid(t *testing.T) {
	if _, err := Measure(resnet.Config{}, 90, 0); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunRequiresEvaluator(t *testing.T) {
	if _, err := Run(Options{}); err == nil {
		t.Fatal("expected error for missing evaluator")
	}
}

func TestRunDeterministic(t *testing.T) {
	a := fullRun(t)
	b := fullRun(t)
	if len(a.Trials) != len(b.Trials) || len(a.FrontIdx) != len(b.FrontIdx) {
		t.Fatal("run not deterministic in sizes")
	}
	for i := range a.FrontIdx {
		if a.FrontIdx[i] != b.FrontIdx[i] {
			t.Fatal("front not deterministic")
		}
	}
	for i := range a.Trials {
		if math.Abs(a.Trials[i].Accuracy-b.Trials[i].Accuracy) > 0 {
			t.Fatal("accuracies not deterministic")
		}
	}
}

func TestSmallSpaceRun(t *testing.T) {
	// A pruned space (the paper's §5 suggestion: fix padding to 1) must run
	// end to end and produce a front.
	sp := nas.PaperSpace()
	sp.Paddings = []int{1}
	res, err := Run(Options{
		Space:     sp,
		Combos:    []nas.InputCombo{{Channels: 5, Batch: 16}},
		Evaluator: surrogateEval(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RawTrials != 96 {
		t.Fatalf("pruned raw trials %d, want 96", res.RawTrials)
	}
	if len(res.FrontIdx) == 0 {
		t.Fatal("no front")
	}
}

func TestEnergyObjectiveAttached(t *testing.T) {
	trial, err := Measure(resnet.StockResNet18(5, 8), 92.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if trial.EnergyMJ <= 0 {
		t.Fatalf("energy %v", trial.EnergyMJ)
	}
	lean, _ := Measure(resnet.Config{Channels: 5, Batch: 8, KernelSize: 3, Stride: 2,
		Padding: 1, PoolChoice: 0, InitialOutputFeature: 32, NumClasses: 2}, 94, 0)
	if lean.EnergyMJ >= trial.EnergyMJ {
		t.Fatal("lean model must use less energy")
	}
}

func TestEnergyFrontContainsThreeObjectiveFront(t *testing.T) {
	res := fullRun(t)
	front3 := map[string]bool{}
	for _, f := range res.NonDominated() {
		front3[f.Config.Key()+f.Config.Canonical().Key()] = true
	}
	front4 := res.NonDominatedWithEnergy()
	if len(front4) < len(res.FrontIdx) {
		t.Fatalf("4-objective front smaller: %d vs %d", len(front4), len(res.FrontIdx))
	}
	// Every 3-objective front member must appear in the 4-objective front.
	keys4 := map[string]bool{}
	for _, f := range front4 {
		keys4[f.Config.Key()+f.Config.Canonical().Key()] = true
	}
	for k := range front3 {
		if !keys4[k] {
			t.Fatalf("3-objective front member %s missing from 4-objective front", k)
		}
	}
}
