package core

import (
	"fmt"
	"math"
	"sort"

	"drainnas/internal/nas"
	"drainnas/internal/parallel"
	"drainnas/internal/pareto"
	"drainnas/internal/resnet"
	"drainnas/internal/tensor"
)

// NSGA2Options configures the direct multi-objective search.
type NSGA2Options struct {
	// Space defaults to nas.PaperSpace().
	Space nas.Space
	// Combo selects the input combination to search within.
	Combo nas.InputCombo
	// Evaluator scores candidate accuracy; required.
	Evaluator nas.Evaluator
	// Population size (default 24) and Generations (default 12).
	Population  int
	Generations int
	// MutationRate is the per-child probability of an extra axis mutation
	// on top of crossover (default 0.3).
	MutationRate float64
	// InputSize for latency prediction (default latmeter's).
	InputSize int
	// Seed drives all randomness.
	Seed uint64
	// Workers is evaluation parallelism per generation.
	Workers int
}

// NSGA2Result reports the search outcome.
type NSGA2Result struct {
	// Front is the non-dominated set of the final population, best accuracy
	// first.
	Front []Trial
	// Evaluated counts distinct configurations scored — the search budget
	// actually spent, to compare with the 288-config grid.
	Evaluated int
	// AllTrials holds every distinct evaluated configuration with its
	// objectives.
	AllTrials []Trial
}

// NSGA2 searches the space directly for the Pareto front of (accuracy,
// latency, memory) with the NSGA-II evolutionary algorithm (Deb et al.,
// 2002): fast non-dominated sorting ranks a merged parent+offspring
// population, crowding distance breaks ties, and binary tournaments on
// (rank, crowding) select parents. Compared with the paper's exhaustive
// sweep + post-hoc Pareto extraction, NSGA-II reaches a comparable front
// with a fraction of the evaluations — the scaling direction the paper's
// §5 asks for.
func NSGA2(opts NSGA2Options) (*NSGA2Result, error) {
	if opts.Evaluator == nil {
		return nil, fmt.Errorf("core: NSGA2Options.Evaluator is required")
	}
	if opts.Space.RawSize() == 0 {
		opts.Space = nas.PaperSpace()
	}
	if opts.Combo == (nas.InputCombo{}) {
		opts.Combo = nas.InputCombo{Channels: 7, Batch: 16}
	}
	pop := opts.Population
	if pop < 4 {
		pop = 24
	}
	gens := opts.Generations
	if gens <= 0 {
		gens = 12
	}
	mut := opts.MutationRate
	if mut <= 0 {
		mut = 0.3
	}
	rng := tensor.NewRNG(opts.Seed ^ 0x45A2)

	// Cache of evaluated configs: identical raw configs share a trial.
	cache := make(map[resnet.Config]Trial)
	evaluate := func(cfgs []resnet.Config) ([]Trial, error) {
		out := make([]Trial, len(cfgs))
		errs := make([]error, len(cfgs))
		var misses []int
		for i, cfg := range cfgs {
			if t, ok := cache[cfg]; ok {
				out[i] = t
			} else {
				misses = append(misses, i)
			}
		}
		parallel.Map(len(misses), opts.Workers, func(mi int) {
			i := misses[mi]
			acc, err := opts.Evaluator.Evaluate(cfgs[i])
			if err != nil {
				errs[i] = err
				return
			}
			t, err := Measure(cfgs[i], acc, opts.InputSize)
			if err != nil {
				errs[i] = err
				return
			}
			out[i] = t
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		for _, i := range misses {
			cache[cfgs[i]] = out[i]
		}
		return out, nil
	}

	// Initial population.
	parents := make([]resnet.Config, pop)
	for i := range parents {
		parents[i] = opts.Space.RandomConfig(opts.Combo, rng)
	}
	parentTrials, err := evaluate(parents)
	if err != nil {
		return nil, err
	}

	for g := 0; g < gens; g++ {
		ranks, crowd := rankAndCrowd(parentTrials)
		tournament := func() int {
			a, b := rng.Intn(len(parents)), rng.Intn(len(parents))
			if ranks[a] < ranks[b] {
				return a
			}
			if ranks[b] < ranks[a] {
				return b
			}
			if crowd[a] > crowd[b] {
				return a
			}
			return b
		}
		offspring := make([]resnet.Config, pop)
		for i := range offspring {
			pa, pb := tournament(), tournament()
			child := opts.Space.Crossover(parents[pa], parents[pb], rng)
			if rng.Float64() < mut {
				child = opts.Space.Mutate(child, rng)
			}
			offspring[i] = child
		}
		offspringTrials, err := evaluate(offspring)
		if err != nil {
			return nil, err
		}

		// Environmental selection over the merged population.
		merged := append(append([]resnet.Config{}, parents...), offspring...)
		mergedTrials := append(append([]Trial{}, parentTrials...), offspringTrials...)
		sel := environmentalSelect(mergedTrials, pop)
		parents = parents[:0]
		parentTrials = parentTrials[:0]
		for _, idx := range sel {
			parents = append(parents, merged[idx])
			parentTrials = append(parentTrials, mergedTrials[idx])
		}
	}

	res := &NSGA2Result{Evaluated: len(cache)}
	for _, t := range cache {
		res.AllTrials = append(res.AllTrials, t)
	}
	// Final front from the last population.
	pts := trialPoints(parentTrials)
	for _, i := range pareto.NonDominated(pts, Objectives) {
		res.Front = append(res.Front, parentTrials[i])
	}
	sort.Slice(res.Front, func(a, b int) bool { return res.Front[a].Accuracy > res.Front[b].Accuracy })
	res.Front = dedupeTrials(res.Front)
	return res, nil
}

func trialPoints(trials []Trial) []pareto.Point {
	pts := make([]pareto.Point, len(trials))
	for i, t := range trials {
		pts[i] = pareto.Point{ID: i, Values: []float64{t.Accuracy, t.LatencyMS, t.MemoryMB}}
	}
	return pts
}

// rankAndCrowd computes each member's front rank and crowding distance.
func rankAndCrowd(trials []Trial) (ranks []int, crowd []float64) {
	pts := trialPoints(trials)
	fronts := pareto.Fronts(pts, Objectives)
	ranks = make([]int, len(trials))
	crowd = make([]float64, len(trials))
	for r, front := range fronts {
		dist := pareto.CrowdingDistance(pts, front)
		for k, idx := range front {
			ranks[idx] = r
			crowd[idx] = dist[k]
		}
	}
	return ranks, crowd
}

// environmentalSelect keeps the best `keep` members by (rank, crowding).
func environmentalSelect(trials []Trial, keep int) []int {
	pts := trialPoints(trials)
	fronts := pareto.Fronts(pts, Objectives)
	var selected []int
	for _, front := range fronts {
		if len(selected)+len(front) <= keep {
			selected = append(selected, front...)
			continue
		}
		// Partial front: take the most crowded-distant members.
		dist := pareto.CrowdingDistance(pts, front)
		order := make([]int, len(front))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			da, db := dist[order[a]], dist[order[b]]
			if math.IsInf(da, 1) && !math.IsInf(db, 1) {
				return true
			}
			if math.IsInf(db, 1) && !math.IsInf(da, 1) {
				return false
			}
			return da > db
		})
		for _, oi := range order {
			if len(selected) == keep {
				break
			}
			selected = append(selected, front[oi])
		}
		break
	}
	return selected
}

// dedupeTrials removes trials with identical canonical configurations.
func dedupeTrials(trials []Trial) []Trial {
	seen := make(map[string]bool, len(trials))
	var out []Trial
	for _, t := range trials {
		key := t.Config.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, t)
	}
	return out
}
