package core

import (
	"fmt"
	"math"
	"sort"

	"drainnas/internal/nas"
	"drainnas/internal/parallel"
	"drainnas/internal/pareto"
	"drainnas/internal/resnet"
	"drainnas/internal/tensor"
)

// NSGA2Options configures the direct multi-objective search.
type NSGA2Options struct {
	// Space defaults to nas.PaperSpace().
	Space nas.Space
	// Combo selects the input combination to search within.
	Combo nas.InputCombo
	// Evaluator scores candidate accuracy; required.
	Evaluator nas.Evaluator
	// Population size (default 24) and Generations (default 12).
	Population  int
	Generations int
	// MutationRate is the per-child probability of an extra axis mutation
	// on top of crossover (default 0.3).
	MutationRate float64
	// InputSize for latency prediction (default latmeter's).
	InputSize int
	// Seed drives all randomness.
	Seed uint64
	// Workers is evaluation parallelism per generation.
	Workers int
	// Precisions lists the deployment precisions the search may assign to
	// an architecture ("fp32", "int8"). Default is fp32 only, which keeps
	// the classic 3-objective behavior bit-for-bit. With more than one
	// entry each individual is a (config, precision) pair, objectives grow
	// a fourth axis (precision bits, minimized), and int8 individuals are
	// measured through MeasureQuantized. Accuracy evaluation is shared
	// across precisions of the same config — the expensive part of the
	// budget is spent once.
	Precisions []string
}

// individual is one NSGA-II population member: an architecture plus the
// precision it would deploy at.
type individual struct {
	cfg  resnet.Config
	prec string
}

// NSGA2Result reports the search outcome.
type NSGA2Result struct {
	// Front is the non-dominated set of the final population, best accuracy
	// first.
	Front []Trial
	// Evaluated counts distinct configurations scored — the search budget
	// actually spent, to compare with the 288-config grid.
	Evaluated int
	// AllTrials holds every distinct evaluated configuration with its
	// objectives.
	AllTrials []Trial
}

// NSGA2 searches the space directly for the Pareto front of (accuracy,
// latency, memory) with the NSGA-II evolutionary algorithm (Deb et al.,
// 2002): fast non-dominated sorting ranks a merged parent+offspring
// population, crowding distance breaks ties, and binary tournaments on
// (rank, crowding) select parents. Compared with the paper's exhaustive
// sweep + post-hoc Pareto extraction, NSGA-II reaches a comparable front
// with a fraction of the evaluations — the scaling direction the paper's
// §5 asks for.
func NSGA2(opts NSGA2Options) (*NSGA2Result, error) {
	if opts.Evaluator == nil {
		return nil, fmt.Errorf("core: NSGA2Options.Evaluator is required")
	}
	if opts.Space.RawSize() == 0 {
		opts.Space = nas.PaperSpace()
	}
	if opts.Combo == (nas.InputCombo{}) {
		opts.Combo = nas.InputCombo{Channels: 7, Batch: 16}
	}
	pop := opts.Population
	if pop < 4 {
		pop = 24
	}
	gens := opts.Generations
	if gens <= 0 {
		gens = 12
	}
	mut := opts.MutationRate
	if mut <= 0 {
		mut = 0.3
	}
	rng := tensor.NewRNG(opts.Seed ^ 0x45A2)

	precs := opts.Precisions
	if len(precs) == 0 {
		precs = []string{PrecisionFP32}
	}
	for _, p := range precs {
		if p != PrecisionFP32 && p != PrecisionInt8 {
			return nil, fmt.Errorf("core: unknown precision %q", p)
		}
	}
	// An fp32-only search keeps the paper's 3 objectives (and the classic
	// behavior, draw for draw); any search that deploys int8 gains the
	// precision-bits axis.
	objs := Objectives
	points := trialPoints
	if len(precs) > 1 || precs[0] != PrecisionFP32 {
		objs = QuantObjectives
		points = quantTrialPoints
	}

	// Accuracy is cached per raw config — fp32 and int8 forms of the same
	// architecture share the expensive evaluation — while measured trials
	// are cached per (config, precision) pair.
	accCache := make(map[resnet.Config]float64)
	cache := make(map[individual]Trial)
	evaluate := func(inds []individual) ([]Trial, error) {
		out := make([]Trial, len(inds))
		var accMiss []resnet.Config
		seen := make(map[resnet.Config]bool)
		for _, ind := range inds {
			if _, ok := cache[ind]; ok {
				continue
			}
			if _, ok := accCache[ind.cfg]; !ok && !seen[ind.cfg] {
				seen[ind.cfg] = true
				accMiss = append(accMiss, ind.cfg)
			}
		}
		accs := make([]float64, len(accMiss))
		errs := make([]error, len(accMiss))
		parallel.Map(len(accMiss), opts.Workers, func(i int) {
			accs[i], errs[i] = opts.Evaluator.Evaluate(accMiss[i])
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		for i, cfg := range accMiss {
			accCache[cfg] = accs[i]
		}
		for i, ind := range inds {
			t, ok := cache[ind]
			if !ok {
				var err error
				if ind.prec == PrecisionInt8 {
					t, err = MeasureQuantized(ind.cfg, accCache[ind.cfg], opts.InputSize)
				} else {
					t, err = Measure(ind.cfg, accCache[ind.cfg], opts.InputSize)
				}
				if err != nil {
					return nil, err
				}
				cache[ind] = t
			}
			out[i] = t
		}
		return out, nil
	}

	// Initial population; precisions round-robin so both forms seed the
	// front without spending extra randomness.
	parents := make([]individual, pop)
	for i := range parents {
		parents[i] = individual{
			cfg:  opts.Space.RandomConfig(opts.Combo, rng),
			prec: precs[i%len(precs)],
		}
	}
	parentTrials, err := evaluate(parents)
	if err != nil {
		return nil, err
	}

	for g := 0; g < gens; g++ {
		ranks, crowd := rankAndCrowd(parentTrials, points, objs)
		tournament := func() int {
			a, b := rng.Intn(len(parents)), rng.Intn(len(parents))
			if ranks[a] < ranks[b] {
				return a
			}
			if ranks[b] < ranks[a] {
				return b
			}
			if crowd[a] > crowd[b] {
				return a
			}
			return b
		}
		offspring := make([]individual, pop)
		for i := range offspring {
			pa, pb := tournament(), tournament()
			child := opts.Space.Crossover(parents[pa].cfg, parents[pb].cfg, rng)
			if rng.Float64() < mut {
				child = opts.Space.Mutate(child, rng)
			}
			prec := parents[pa].prec
			if len(precs) > 1 {
				if rng.Intn(2) == 1 {
					prec = parents[pb].prec
				}
				if rng.Float64() < mut {
					prec = precs[rng.Intn(len(precs))]
				}
			}
			offspring[i] = individual{cfg: child, prec: prec}
		}
		offspringTrials, err := evaluate(offspring)
		if err != nil {
			return nil, err
		}

		// Environmental selection over the merged population.
		merged := append(append([]individual{}, parents...), offspring...)
		mergedTrials := append(append([]Trial{}, parentTrials...), offspringTrials...)
		sel := environmentalSelect(mergedTrials, pop, points, objs)
		parents = parents[:0]
		parentTrials = parentTrials[:0]
		for _, idx := range sel {
			parents = append(parents, merged[idx])
			parentTrials = append(parentTrials, mergedTrials[idx])
		}
	}

	res := &NSGA2Result{Evaluated: len(accCache)}
	for _, t := range cache {
		res.AllTrials = append(res.AllTrials, t)
	}
	// Final front from the last population.
	pts := points(parentTrials)
	for _, i := range pareto.NonDominated(pts, objs) {
		res.Front = append(res.Front, parentTrials[i])
	}
	sort.Slice(res.Front, func(a, b int) bool { return res.Front[a].Accuracy > res.Front[b].Accuracy })
	res.Front = dedupeTrials(res.Front)
	return res, nil
}

func trialPoints(trials []Trial) []pareto.Point {
	pts := make([]pareto.Point, len(trials))
	for i, t := range trials {
		pts[i] = pareto.Point{ID: i, Values: []float64{t.Accuracy, t.LatencyMS, t.MemoryMB}}
	}
	return pts
}

// rankAndCrowd computes each member's front rank and crowding distance
// under the given objective projection.
func rankAndCrowd(trials []Trial, points func([]Trial) []pareto.Point, objs []pareto.Direction) (ranks []int, crowd []float64) {
	pts := points(trials)
	fronts := pareto.Fronts(pts, objs)
	ranks = make([]int, len(trials))
	crowd = make([]float64, len(trials))
	for r, front := range fronts {
		dist := pareto.CrowdingDistance(pts, front)
		for k, idx := range front {
			ranks[idx] = r
			crowd[idx] = dist[k]
		}
	}
	return ranks, crowd
}

// environmentalSelect keeps the best `keep` members by (rank, crowding).
func environmentalSelect(trials []Trial, keep int, points func([]Trial) []pareto.Point, objs []pareto.Direction) []int {
	pts := points(trials)
	fronts := pareto.Fronts(pts, objs)
	var selected []int
	for _, front := range fronts {
		if len(selected)+len(front) <= keep {
			selected = append(selected, front...)
			continue
		}
		// Partial front: take the most crowded-distant members.
		dist := pareto.CrowdingDistance(pts, front)
		order := make([]int, len(front))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			da, db := dist[order[a]], dist[order[b]]
			if math.IsInf(da, 1) && !math.IsInf(db, 1) {
				return true
			}
			if math.IsInf(db, 1) && !math.IsInf(da, 1) {
				return false
			}
			return da > db
		})
		for _, oi := range order {
			if len(selected) == keep {
				break
			}
			selected = append(selected, front[oi])
		}
		break
	}
	return selected
}

// dedupeTrials removes trials with identical canonical configurations at
// the same precision — the fp32 and int8 forms of one architecture are
// distinct front members.
func dedupeTrials(trials []Trial) []Trial {
	seen := make(map[string]bool, len(trials))
	var out []Trial
	for _, t := range trials {
		key := t.Config.Key()
		if t.Precision == PrecisionInt8 {
			key += "@int8"
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, t)
	}
	return out
}
