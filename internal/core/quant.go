package core

import (
	"sort"

	"drainnas/internal/latmeter"
	"drainnas/internal/onnxsize"
	"drainnas/internal/pareto"
	"drainnas/internal/resnet"
)

// Precision labels for Trial.Precision. They match infer.Precision's wire
// values so a trial row names the same mode a "model@int8" serving key does.
const (
	PrecisionFP32 = "fp32"
	PrecisionInt8 = "int8"
)

// QuantObjectives extends the paper's three objectives with precision bits
// (minimized): an int8 deployment that holds accuracy dominates its fp32
// form on every other axis, and the 4-D front keeps both when it does not.
var QuantObjectives = []pareto.Direction{pareto.Maximize, pareto.Minimize, pareto.Minimize, pareto.Minimize}

// Int8MemoryScale is the int8 deployment's size relative to the fp32 ONNX
// export: weights drop to a quarter, and per-channel scales, compensation
// terms and the fp32 classifier head hold the ratio just above 1/4.
const Int8MemoryScale = 0.26

// int8AccuracyDropPct models the accuracy cost of post-training int8
// quantization in percentage points. Calibrated against the float-oracle
// parity harness (TestQuantParityRandomConfigs): logit perturbation stays
// within ~6% of logit magnitude, which flips well under 1% of predictions,
// and narrower stems sit closer to the bound — so the drop floors at 0.2
// points and grows as the initial feature width shrinks.
func int8AccuracyDropPct(cfg resnet.Config) float64 {
	iof := cfg.InitialOutputFeature
	if iof <= 0 {
		iof = 32
	}
	return 0.2 + 1.6/float64(iof)
}

// MeasureQuantized attaches objectives to a configuration deployed in int8:
// the same cost-model graph with latmeter's int8 cost scale applied to the
// work term, memory at the packed-weight ratio, and accuracy derated by the
// parity-harness-calibrated drop.
func MeasureQuantized(cfg resnet.Config, accuracy float64, inputSize int) (Trial, error) {
	if inputSize <= 0 {
		inputSize = latmeter.DefaultInputSize
	}
	g, err := latmeter.Decompose(cfg, inputSize)
	if err != nil {
		return Trial{}, err
	}
	g.CostScale = latmeter.Int8CostScale
	pred := latmeter.PredictGraph(g)
	mem, err := onnxsize.SizeMB(cfg)
	if err != nil {
		return Trial{}, err
	}
	energy := latmeter.PredictEnergyGraph(g)
	acc := accuracy - int8AccuracyDropPct(cfg)
	if acc < 0 {
		acc = 0
	}
	return Trial{
		Config:        cfg,
		Accuracy:      acc,
		LatencyMS:     pred.MeanMS,
		LatStdMS:      pred.StdMS,
		PerDevice:     pred.PerDevice,
		MemoryMB:      mem * Int8MemoryScale,
		EnergyMJ:      energy.MeanMJ,
		Precision:     PrecisionInt8,
		PrecisionBits: 8,
	}, nil
}

// precisionBits reads the trial's numeric precision axis, treating
// unlabelled trials (pre-quantization journals) as fp32.
func precisionBits(t Trial) float64 {
	if t.PrecisionBits > 0 {
		return float64(t.PrecisionBits)
	}
	return 32
}

// quantTrialPoints exposes trials as 4-objective points
// (accuracy, latency, memory, precision bits).
func quantTrialPoints(trials []Trial) []pareto.Point {
	pts := make([]pareto.Point, len(trials))
	for i, t := range trials {
		pts[i] = pareto.Point{ID: i, Values: []float64{t.Accuracy, t.LatencyMS, t.MemoryMB, precisionBits(t)}}
	}
	return pts
}

// NonDominatedWithPrecision returns the Pareto set over
// (accuracy, latency, memory, precision bits), best accuracy first. On
// all-fp32 trial sets the constant fourth axis never discriminates and the
// result equals the 3-objective front.
func NonDominatedWithPrecision(trials []Trial) []Trial {
	idx := pareto.NonDominated(quantTrialPoints(trials), QuantObjectives)
	out := make([]Trial, len(idx))
	for i, id := range idx {
		out[i] = trials[id]
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Accuracy > out[b].Accuracy })
	return out
}
