package core

import (
	"bytes"
	"strings"
	"testing"

	"drainnas/internal/nas"
)

func smallRun(t *testing.T) *Result {
	t.Helper()
	sp := nas.PaperSpace()
	sp.Paddings = []int{1}
	res, err := Run(Options{
		Space:     sp,
		Combos:    []nas.InputCombo{{Channels: 7, Batch: 16}},
		Evaluator: surrogateEval(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestResultSaveLoadRoundTrip(t *testing.T) {
	src := smallRun(t)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadResult(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.RawTrials != src.RawTrials || len(got.Trials) != len(src.Trials) {
		t.Fatalf("sizes: %d/%d vs %d/%d", got.RawTrials, len(got.Trials), src.RawTrials, len(src.Trials))
	}
	// The recomputed front must match.
	if len(got.FrontIdx) != len(src.FrontIdx) {
		t.Fatalf("front sizes %d vs %d", len(got.FrontIdx), len(src.FrontIdx))
	}
	for i := range got.FrontIdx {
		if got.FrontIdx[i] != src.FrontIdx[i] {
			t.Fatal("front differs after reload")
		}
	}
	for i := range got.Trials {
		if got.Trials[i].Accuracy != src.Trials[i].Accuracy ||
			got.Trials[i].LatencyMS != src.Trials[i].LatencyMS ||
			got.Trials[i].Config != src.Trials[i].Config {
			t.Fatalf("trial %d differs", i)
		}
	}
}

func TestLoadResultRejectsGarbage(t *testing.T) {
	if _, err := LoadResult(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestPerDeviceFrontsAndStability(t *testing.T) {
	res := smallRun(t)
	fronts := res.PerDeviceFronts()
	if len(fronts) != 4 {
		t.Fatalf("%d device fronts", len(fronts))
	}
	for device, front := range fronts {
		if len(front) == 0 {
			t.Fatalf("%s front empty", device)
		}
	}
	stability := res.FrontStability()
	if len(stability) != len(res.FrontIdx) {
		t.Fatalf("stability entries %d", len(stability))
	}
	for fi, count := range stability {
		if count < 0 || count > 4 {
			t.Fatalf("front member %d stability %d", fi, count)
		}
	}
	// At least one mean-front member should be device-universal: the
	// minimum-memory corner solution is optimal under any latency metric
	// (there is always a smallest-memory point on every front).
	universal := 0
	for _, count := range stability {
		if count == 4 {
			universal++
		}
	}
	if universal == 0 {
		t.Fatal("no device-universal front member")
	}
}

func TestPerDeviceFrontsEmptyResult(t *testing.T) {
	r := &Result{}
	if got := r.PerDeviceFronts(); got != nil {
		t.Fatal("empty result must yield nil fronts")
	}
}
