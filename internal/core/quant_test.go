package core

import (
	"testing"

	"drainnas/internal/latmeter"
	"drainnas/internal/nas"
	"drainnas/internal/pareto"
	"drainnas/internal/resnet"
)

func TestMeasureQuantizedScalesObjectives(t *testing.T) {
	cfg := resnet.StockResNet18(7, 16)
	const acc = 90.0
	f, err := Measure(cfg, acc, 0)
	if err != nil {
		t.Fatal(err)
	}
	q, err := MeasureQuantized(cfg, acc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Precision != PrecisionFP32 || f.PrecisionBits != 32 {
		t.Fatalf("fp32 trial labelled %q/%d", f.Precision, f.PrecisionBits)
	}
	if q.Precision != PrecisionInt8 || q.PrecisionBits != 8 {
		t.Fatalf("int8 trial labelled %q/%d", q.Precision, q.PrecisionBits)
	}
	if !(q.LatencyMS < f.LatencyMS) {
		t.Fatalf("int8 latency %.3f not below fp32 %.3f", q.LatencyMS, f.LatencyMS)
	}
	if got, want := q.MemoryMB, f.MemoryMB*Int8MemoryScale; got != want {
		t.Fatalf("int8 memory %.4f, want %.4f", got, want)
	}
	if !(q.EnergyMJ < f.EnergyMJ) {
		t.Fatalf("int8 energy %.4f not below fp32 %.4f", q.EnergyMJ, f.EnergyMJ)
	}
	if !(q.Accuracy < f.Accuracy) || q.Accuracy < acc-1 {
		t.Fatalf("int8 accuracy %.3f vs fp32 %.3f: derate out of the documented band", q.Accuracy, f.Accuracy)
	}
	for name, ms := range q.PerDevice {
		if !(ms < f.PerDevice[name]) {
			t.Errorf("%s: int8 %.3fms not below fp32 %.3fms", name, ms, f.PerDevice[name])
		}
	}
}

func TestMeasureQuantizedAccuracyFloorsAtZero(t *testing.T) {
	cfg := resnet.StockResNet18(5, 8)
	q, err := MeasureQuantized(cfg, 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if q.Accuracy != 0 {
		t.Fatalf("accuracy %.3f, want floor 0", q.Accuracy)
	}
}

// TestNSGA2PrecisionAxis runs the search with both precisions enabled and
// checks the front is a genuine 4-objective Pareto set containing both
// deployment modes.
func TestNSGA2PrecisionAxis(t *testing.T) {
	res, err := NSGA2(NSGA2Options{
		Combo:      nas.InputCombo{Channels: 7, Batch: 16},
		Evaluator:  surrogateEval(),
		Population: 16, Generations: 6, Seed: 11,
		Precisions: []string{PrecisionFP32, PrecisionInt8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	modes := map[string]int{}
	for _, f := range res.Front {
		modes[f.Precision]++
	}
	if modes[PrecisionInt8] == 0 {
		t.Fatal("no int8 trial on the front: int8 strictly improves latency, memory and bits, so at least its best-accuracy form must survive")
	}
	// Front members must be mutually non-dominated under the 4 objectives.
	pts := quantTrialPoints(res.Front)
	for i := range pts {
		for j := range pts {
			if i != j && pareto.Dominates(pts[j], pts[i], QuantObjectives) {
				t.Fatalf("front member %d dominated by %d under QuantObjectives", i, j)
			}
		}
	}
	// Re-deriving the front from the trials must be a fixed point.
	if again := NonDominatedWithPrecision(res.Front); len(again) != len(res.Front) {
		t.Fatalf("front not closed under NonDominatedWithPrecision: %d -> %d", len(res.Front), len(again))
	}
	// Trials carry the scaled measurements end to end.
	for _, f := range res.Front {
		if f.Precision != PrecisionInt8 {
			continue
		}
		ref, err := Measure(f.Config, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := ref.LatencyMS
		g, err := latmeter.Decompose(f.Config, latmeter.DefaultInputSize)
		if err != nil {
			t.Fatal(err)
		}
		g.CostScale = latmeter.Int8CostScale
		if got := latmeter.PredictGraph(g).MeanMS; f.LatencyMS != got {
			t.Fatalf("int8 trial latency %.4f, cost model says %.4f (fp32 %.4f)", f.LatencyMS, got, want)
		}
	}
}

func TestNSGA2RejectsUnknownPrecision(t *testing.T) {
	_, err := NSGA2(NSGA2Options{
		Evaluator:  surrogateEval(),
		Precisions: []string{"fp16"},
	})
	if err == nil {
		t.Fatal("expected error for unknown precision")
	}
}

// TestNSGA2DefaultPrecisionStaysThreeObjective pins backward compatibility:
// without Precisions the search behaves exactly as the 3-objective version —
// every trial is fp32 and the front matches a 3-D re-derivation.
func TestNSGA2DefaultPrecisionStaysThreeObjective(t *testing.T) {
	res, err := NSGA2(NSGA2Options{
		Evaluator:  surrogateEval(),
		Population: 12, Generations: 4, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.AllTrials {
		if tr.Precision != PrecisionFP32 {
			t.Fatalf("default search produced a %q trial", tr.Precision)
		}
	}
	// With bits constant, the 4-D front equals the 3-D front.
	if got, want := len(NonDominatedWithPrecision(res.Front)), len(res.Front); got != want {
		t.Fatalf("constant-bits 4-D front size %d, want %d", got, want)
	}
}
