// Package core ties the substrates into the paper's pipeline: run the NAS
// experiment over the six input combinations (NNI), predict each valid
// outcome's inference latency on the four device predictors (nn-Meter),
// measure its ONNX memory footprint, and extract the non-dominated set of
// the three objectives (accuracy ↑, latency ↓, memory ↓) by Pareto front
// analysis.
//
// This is the library's primary public API; cmd/paretoviz, the examples and
// the benchmark harness are thin layers over it.
package core

import (
	"fmt"
	"sort"

	"drainnas/internal/latmeter"
	"drainnas/internal/nas"
	"drainnas/internal/onnxsize"
	"drainnas/internal/pareto"
	"drainnas/internal/resnet"
)

// Objectives are the paper's three optimization directions, in the order
// (accuracy, latency, memory).
var Objectives = []pareto.Direction{pareto.Maximize, pareto.Minimize, pareto.Minimize}

// Trial is one valid NAS outcome with all three objective measurements
// attached — one row of the paper's experimental data.
type Trial struct {
	Config    resnet.Config      `json:"config"`
	Accuracy  float64            `json:"accuracy"`   // percent, 5-fold mean
	LatencyMS float64            `json:"latency_ms"` // mean over 4 predictors
	LatStdMS  float64            `json:"lat_std_ms"` // std over 4 predictors
	PerDevice map[string]float64 `json:"per_device_ms"`
	MemoryMB  float64            `json:"memory_mb"` // ONNX export size
	EnergyMJ  float64            `json:"energy_mj"` // mean per-inference energy
	// Precision is the arithmetic the measurements assume ("fp32" or
	// "int8"); PrecisionBits is the same fact as a numeric Pareto axis.
	// Empty/zero (e.g. journals persisted before quantization existed)
	// means fp32.
	Precision     string `json:"precision,omitempty"`
	PrecisionBits int    `json:"precision_bits,omitempty"`
}

// Options configures a pipeline run.
type Options struct {
	// Space defaults to nas.PaperSpace().
	Space nas.Space
	// Combos defaults to nas.PaperInputCombos().
	Combos []nas.InputCombo
	// Evaluator scores candidate accuracy; required.
	Evaluator nas.Evaluator
	// InputSize for latency prediction; defaults to
	// latmeter.DefaultInputSize.
	InputSize int
	// Workers is trial-level parallelism (<= 0: GOMAXPROCS).
	Workers int
	// SimulateAttrition drops the paper-calibrated 11 trials so a full grid
	// yields 1,717 valid outcomes.
	SimulateAttrition bool
	// Progress, when non-nil, receives (done, total) during the NAS phase.
	Progress func(done, total int)
}

// Result is the full pipeline output.
type Result struct {
	// Trials are the valid outcomes (failed trials excluded).
	Trials []Trial
	// RawTrials counts all attempted trials including failures.
	RawTrials int
	// FrontIdx indexes Trials: the non-dominated set.
	FrontIdx []int
}

// Run executes the pipeline: NAS sweep → latency prediction → memory
// measurement → Pareto analysis.
func Run(opts Options) (*Result, error) {
	if opts.Evaluator == nil {
		return nil, fmt.Errorf("core: Options.Evaluator is required")
	}
	if opts.Space.RawSize() == 0 {
		opts.Space = nas.PaperSpace()
	}
	if opts.Combos == nil {
		opts.Combos = nas.PaperInputCombos()
	}
	if opts.InputSize <= 0 {
		opts.InputSize = latmeter.DefaultInputSize
	}

	configs := opts.Space.EnumerateAll(opts.Combos)
	results := nas.Experiment(configs, opts.Evaluator, nas.ExperimentOptions{
		Workers:           opts.Workers,
		SimulateAttrition: opts.SimulateAttrition,
		Progress:          opts.Progress,
	})

	res := &Result{RawTrials: len(results)}
	for _, r := range nas.Succeeded(results) {
		trial, err := Measure(r.Config, r.Accuracy, opts.InputSize)
		if err != nil {
			return nil, fmt.Errorf("core: measuring trial %d (%s): %w", r.ID, r.Config.Key(), err)
		}
		res.Trials = append(res.Trials, trial)
	}
	res.FrontIdx = pareto.NonDominated(res.Points(), Objectives)
	sortFront(res)
	return res, nil
}

// Measure attaches the latency and memory objectives to one configuration
// whose accuracy is already known.
func Measure(cfg resnet.Config, accuracy float64, inputSize int) (Trial, error) {
	if inputSize <= 0 {
		inputSize = latmeter.DefaultInputSize
	}
	pred, err := latmeter.Predict(cfg, inputSize)
	if err != nil {
		return Trial{}, err
	}
	mem, err := onnxsize.SizeMB(cfg)
	if err != nil {
		return Trial{}, err
	}
	energy, err := latmeter.PredictEnergy(cfg, inputSize)
	if err != nil {
		return Trial{}, err
	}
	return Trial{
		Config:        cfg,
		Accuracy:      accuracy,
		LatencyMS:     pred.MeanMS,
		LatStdMS:      pred.StdMS,
		PerDevice:     pred.PerDevice,
		MemoryMB:      mem,
		EnergyMJ:      energy.MeanMJ,
		Precision:     PrecisionFP32,
		PrecisionBits: 32,
	}, nil
}

// Points exposes the trials as Pareto points in objective order
// (accuracy, latency, memory); point IDs index Trials.
func (r *Result) Points() []pareto.Point {
	pts := make([]pareto.Point, len(r.Trials))
	for i, t := range r.Trials {
		pts[i] = pareto.Point{ID: i, Values: []float64{t.Accuracy, t.LatencyMS, t.MemoryMB}}
	}
	return pts
}

// NonDominated returns the Pareto-optimal trials (Table 4's rows), sorted
// by descending accuracy.
func (r *Result) NonDominated() []Trial {
	out := make([]Trial, len(r.FrontIdx))
	for i, idx := range r.FrontIdx {
		out[i] = r.Trials[idx]
	}
	return out
}

// sortFront orders FrontIdx by descending accuracy for stable presentation.
func sortFront(r *Result) {
	sort.Slice(r.FrontIdx, func(a, b int) bool {
		return r.Trials[r.FrontIdx[a]].Accuracy > r.Trials[r.FrontIdx[b]].Accuracy
	})
}

// ObjectiveRanges returns Table 3: (min, max) for accuracy, latency and
// memory over all valid trials.
func (r *Result) ObjectiveRanges() (mins, maxs []float64) {
	return pareto.Ranges(r.Points())
}

// Baselines evaluates the stock ResNet-18 on every input combination
// (Table 5): accuracy from the evaluator, latency and memory from the
// predictors.
func Baselines(combos []nas.InputCombo, eval nas.Evaluator, inputSize int) ([]Trial, error) {
	if combos == nil {
		combos = nas.PaperInputCombos()
	}
	var out []Trial
	for _, c := range combos {
		cfg := resnet.StockResNet18(c.Channels, c.Batch)
		acc, err := eval.Evaluate(cfg)
		if err != nil {
			return nil, fmt.Errorf("core: baseline %dch b%d: %w", c.Channels, c.Batch, err)
		}
		trial, err := Measure(cfg, acc, inputSize)
		if err != nil {
			return nil, err
		}
		out = append(out, trial)
	}
	return out, nil
}

// EnergyObjectives extends the paper's three objectives with mean
// per-inference energy (minimized) — the fourth axis a battery-powered
// field deployment cares about.
var EnergyObjectives = []pareto.Direction{pareto.Maximize, pareto.Minimize, pareto.Minimize, pareto.Minimize}

// EnergyPoints exposes trials as 4-objective points
// (accuracy, latency, memory, energy).
func (r *Result) EnergyPoints() []pareto.Point {
	pts := make([]pareto.Point, len(r.Trials))
	for i, t := range r.Trials {
		pts[i] = pareto.Point{ID: i, Values: []float64{t.Accuracy, t.LatencyMS, t.MemoryMB, t.EnergyMJ}}
	}
	return pts
}

// NonDominatedWithEnergy returns the Pareto set over the four objectives.
// Adding an objective can only enlarge the front: every 3-objective front
// member remains non-dominated.
func (r *Result) NonDominatedWithEnergy() []Trial {
	idx := pareto.NonDominated(r.EnergyPoints(), EnergyObjectives)
	out := make([]Trial, len(idx))
	for i, id := range idx {
		out[i] = r.Trials[id]
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Accuracy > out[b].Accuracy })
	return out
}

// DominatesBaseline reports, for each non-dominated trial, whether it beats
// the stock ResNet-18 baseline (same channels, batch) on latency and memory
// while staying within accDrop accuracy points — the paper's comparison
// claim in §4.
func DominatesBaseline(front []Trial, baselines []Trial, accDrop float64) []bool {
	base := make(map[[2]int]Trial, len(baselines))
	for _, b := range baselines {
		base[[2]int{b.Config.Channels, b.Config.Batch}] = b
	}
	out := make([]bool, len(front))
	for i, f := range front {
		b, ok := base[[2]int{f.Config.Channels, f.Config.Batch}]
		if !ok {
			continue
		}
		out[i] = f.LatencyMS < b.LatencyMS && f.MemoryMB < b.MemoryMB &&
			f.Accuracy >= b.Accuracy-accDrop
	}
	return out
}
