package core

import (
	"encoding/json"
	"fmt"
	"io"

	"drainnas/internal/pareto"
)

// resultFile is the serialized form of a Result.
type resultFile struct {
	RawTrials int     `json:"raw_trials"`
	Trials    []Trial `json:"trials"`
}

// Save writes the result as JSON; the front is recomputed on load rather
// than stored (it is derived state).
func (r *Result) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(resultFile{RawTrials: r.RawTrials, Trials: r.Trials}); err != nil {
		return fmt.Errorf("core: saving result: %w", err)
	}
	return nil
}

// LoadResult reads a result written by Save and recomputes its front.
func LoadResult(rd io.Reader) (*Result, error) {
	var rf resultFile
	if err := json.NewDecoder(rd).Decode(&rf); err != nil {
		return nil, fmt.Errorf("core: loading result: %w", err)
	}
	res := &Result{RawTrials: rf.RawTrials, Trials: rf.Trials}
	res.FrontIdx = pareto.NonDominated(res.Points(), Objectives)
	sortFront(res)
	return res, nil
}

// PerDeviceFronts recomputes the Pareto front using each single device's
// latency instead of the four-predictor mean — the deployment question
// "which models are optimal *on my device*?" The returned map indexes
// Trials. Front membership can differ per device (the lat_std column of
// Table 4 is exactly the spread that causes this), and the analysis shows
// how robust the paper's mean-latency front is.
func (r *Result) PerDeviceFronts() map[string][]int {
	if len(r.Trials) == 0 {
		return nil
	}
	out := make(map[string][]int)
	for device := range r.Trials[0].PerDevice {
		pts := make([]pareto.Point, len(r.Trials))
		for i, t := range r.Trials {
			pts[i] = pareto.Point{ID: i, Values: []float64{t.Accuracy, t.PerDevice[device], t.MemoryMB}}
		}
		out[device] = pareto.NonDominated(pts, Objectives)
	}
	return out
}

// FrontStability reports, for each mean-latency front member, on how many
// of the per-device fronts it also appears — 4 means the solution is
// optimal regardless of the target device.
func (r *Result) FrontStability() map[int]int {
	perDevice := r.PerDeviceFronts()
	counts := make(map[int]int, len(r.FrontIdx))
	for _, fi := range r.FrontIdx {
		counts[fi] = 0
		for _, front := range perDevice {
			for _, idx := range front {
				if idx == fi {
					counts[fi]++
					break
				}
			}
		}
	}
	return counts
}
