package core

import (
	"testing"

	"drainnas/internal/nas"
	"drainnas/internal/pareto"
)

func TestNSGA2FindsGoodFrontCheaply(t *testing.T) {
	combo := nas.InputCombo{Channels: 7, Batch: 16}
	res, err := NSGA2(NSGA2Options{
		Combo:      combo,
		Evaluator:  surrogateEval(),
		Population: 24, Generations: 10, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty NSGA-II front")
	}
	// Budget must be well below the 288-config grid.
	if res.Evaluated >= 288 {
		t.Fatalf("NSGA-II evaluated %d configs — no cheaper than grid", res.Evaluated)
	}

	// Compare against the exhaustive sweep's front for the same combo.
	grid, err := Run(Options{
		Combos:    []nas.InputCombo{combo},
		Evaluator: surrogateEval(),
	})
	if err != nil {
		t.Fatal(err)
	}
	gridFront := grid.NonDominated()
	// NSGA-II's best accuracy within 1 point of the grid's best.
	if res.Front[0].Accuracy < gridFront[0].Accuracy-1.0 {
		t.Fatalf("NSGA-II best %.2f vs grid best %.2f", res.Front[0].Accuracy, gridFront[0].Accuracy)
	}
	// Hypervolume comparison: NSGA-II's front should capture most of the
	// grid front's hypervolume under a shared reference.
	gridPts := trialPoints(grid.Trials)
	ref := pareto.ReferenceFromWorst(gridPts, Objectives, 0.05)
	hvGrid := pareto.Hypervolume(frontPoints(gridFront), Objectives, ref)
	hvNSGA := pareto.Hypervolume(frontPoints(res.Front), Objectives, ref)
	if hvNSGA < 0.85*hvGrid {
		t.Fatalf("NSGA-II hypervolume %.1f below 85%% of grid's %.1f", hvNSGA, hvGrid)
	}
}

func frontPoints(trials []Trial) []pareto.Point {
	return trialPoints(trials)
}

func TestNSGA2FrontIsNonDominatedAndSorted(t *testing.T) {
	res, err := NSGA2(NSGA2Options{
		Evaluator:  surrogateEval(),
		Population: 16, Generations: 6, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	pts := frontPoints(res.Front)
	for i := range pts {
		for j := range pts {
			if i != j && pareto.Dominates(pts[j], pts[i], Objectives) {
				t.Fatalf("front member %d dominated by %d", i, j)
			}
		}
	}
	for i := 1; i < len(res.Front); i++ {
		if res.Front[i].Accuracy > res.Front[i-1].Accuracy {
			t.Fatal("front not sorted by accuracy")
		}
	}
	// No duplicate canonical configs on the front.
	seen := map[string]bool{}
	for _, f := range res.Front {
		if seen[f.Config.Key()] {
			t.Fatal("duplicate canonical config on front")
		}
		seen[f.Config.Key()] = true
	}
}

func TestNSGA2Deterministic(t *testing.T) {
	run := func() *NSGA2Result {
		res, err := NSGA2(NSGA2Options{
			Evaluator:  surrogateEval(),
			Population: 12, Generations: 4, Seed: 77, Workers: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Evaluated != b.Evaluated || len(a.Front) != len(b.Front) {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d", a.Evaluated, len(a.Front), b.Evaluated, len(b.Front))
	}
	for i := range a.Front {
		if a.Front[i].Config != b.Front[i].Config {
			t.Fatal("front configs differ between runs")
		}
	}
}

func TestNSGA2RequiresEvaluator(t *testing.T) {
	if _, err := NSGA2(NSGA2Options{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestNSGA2RespectsCombo(t *testing.T) {
	combo := nas.InputCombo{Channels: 5, Batch: 32}
	res, err := NSGA2(NSGA2Options{
		Combo: combo, Evaluator: surrogateEval(),
		Population: 8, Generations: 3, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, t2 := range res.AllTrials {
		if t2.Config.Channels != 5 || t2.Config.Batch != 32 {
			t.Fatalf("trial escaped the input combo: %+v", t2.Config)
		}
	}
}
