package parallel

import (
	"context"
	"sync"
)

// MapCtx runs fn(i) for every i in [0, n) like Map, but stops handing out
// new iterations once ctx is cancelled. Iterations already claimed by a
// worker always run to completion (graceful drain): MapCtx never abandons
// an in-flight fn, it only withholds the remainder. It returns nil when all
// n iterations ran, and ctx.Err() when cancellation cut the loop short.
//
// Because the hand-out channel is unbuffered, "claimed" and "running" are
// the same thing: after MapCtx returns, every index it handed out has
// finished, and no other index was started. That is the contract a
// checkpointing caller (a NAS sweep journaling each trial) needs to know
// exactly which units of work completed.
func MapCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			fn(i)
		}
		return nil
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	handedOut := 0
	for i := 0; i < n; i++ {
		// A non-blocking Done check first: when ctx is already cancelled,
		// the select below could still randomly pick the send case.
		if ctx.Err() != nil {
			break
		}
		select {
		case next <- i:
			handedOut++
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break
		}
	}
	close(next)
	wg.Wait()
	if handedOut < n {
		return ctx.Err()
	}
	return nil
}
