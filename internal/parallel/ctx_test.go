package parallel

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapCtxRunsAllWithoutCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		if err := MapCtx(context.Background(), 100, workers, func(i int) {
			ran.Add(1)
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ran.Load() != 100 {
			t.Fatalf("workers=%d: ran %d/100", workers, ran.Load())
		}
	}
}

func TestMapCtxAlreadyCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := MapCtx(ctx, 50, workers, func(i int) { ran.Add(1) })
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if ran.Load() != 0 {
			t.Fatalf("workers=%d: ran %d iterations under a dead context", workers, ran.Load())
		}
	}
}

// TestMapCtxDrainsInFlight cancels mid-run and asserts (a) the error
// surfaces, (b) every claimed iteration ran to completion before MapCtx
// returned, and (c) not all iterations ran (the remainder was withheld).
func TestMapCtxDrainsInFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started, finished atomic.Int64
	var once sync.Once
	err := MapCtx(ctx, 1000, 4, func(i int) {
		started.Add(1)
		if started.Load() >= 8 {
			once.Do(cancel)
		}
		time.Sleep(time.Millisecond)
		finished.Add(1)
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if started.Load() != finished.Load() {
		t.Fatalf("in-flight work abandoned: started %d, finished %d", started.Load(), finished.Load())
	}
	if finished.Load() >= 1000 {
		t.Fatal("cancellation did not withhold any iterations")
	}
}

func TestMapCtxSingleWorkerStopsBetweenIterations(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	err := MapCtx(ctx, 100, 1, func(i int) {
		ran++
		if i == 9 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
	if ran != 10 {
		t.Fatalf("inline path ran %d iterations, want 10", ran)
	}
}

func TestMapCtxZeroN(t *testing.T) {
	if err := MapCtx(context.Background(), 0, 4, func(int) { t.Fatal("called") }); err != nil {
		t.Fatal(err)
	}
}
