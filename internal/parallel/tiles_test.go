package parallel

import (
	"sync"
	"testing"
)

func TestSplitRangeMatchesForChunked(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 7, 16, 100, 101} {
		for _, chunks := range []int{1, 2, 3, 7, 16} {
			// Indexed ranges must tile [0, n) exactly, in order.
			want := 0
			for i := 0; i < chunks; i++ {
				lo, hi := SplitRange(n, chunks, i)
				if lo != want {
					t.Fatalf("n=%d chunks=%d i=%d: lo=%d want %d", n, chunks, i, lo, want)
				}
				if hi < lo {
					t.Fatalf("n=%d chunks=%d i=%d: hi %d < lo %d", n, chunks, i, hi, lo)
				}
				want = hi
			}
			if want != n {
				t.Fatalf("n=%d chunks=%d: ranges cover %d", n, chunks, want)
			}
			// Against ForChunked's actual split.
			type rng struct{ lo, hi int }
			var mu sync.Mutex
			seen := map[int]rng{}
			ForChunked(n, chunks, func(lo, hi int) {
				mu.Lock()
				seen[lo] = rng{lo, hi}
				mu.Unlock()
			})
			for lo, r := range seen {
				i := workerIndexOf(n, chunks, lo)
				slo, shi := SplitRange(n, chunks, i)
				if slo != r.lo || shi != r.hi {
					t.Fatalf("n=%d chunks=%d: SplitRange(%d)=[%d,%d) vs ForChunked [%d,%d)", n, chunks, i, slo, shi, r.lo, r.hi)
				}
			}
		}
	}
}

// workerIndexOf inverts a ForChunked range start to its chunk index the
// same way SplitRange numbers chunks.
func workerIndexOf(n, chunks, lo int) int {
	if chunks > n {
		chunks = n
	}
	if chunks < 1 {
		chunks = 1
	}
	base := n / chunks
	extra := n % chunks
	bigSpan := (base + 1) * extra
	if lo < bigSpan {
		return lo / (base + 1)
	}
	return extra + (lo-bigSpan)/base
}

func TestForTiles2DCoversGridOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 33} {
		for _, dims := range [][2]int{{1, 1}, {3, 5}, {7, 1}, {1, 9}, {16, 16}} {
			m, n := dims[0], dims[1]
			var mu sync.Mutex
			counts := make([]int, m*n)
			ForTiles2D(m, n, workers, func(i, j int) {
				if i < 0 || i >= m || j < 0 || j >= n {
					t.Errorf("cell (%d,%d) outside %dx%d", i, j, m, n)
					return
				}
				mu.Lock()
				counts[i*n+j]++
				mu.Unlock()
			})
			for idx, c := range counts {
				if c != 1 {
					t.Fatalf("m=%d n=%d workers=%d: cell %d ran %d times", m, n, workers, idx, c)
				}
			}
		}
	}
}

func TestForTiles2DEmpty(t *testing.T) {
	called := false
	ForTiles2D(0, 5, 4, func(i, j int) { called = true })
	ForTiles2D(5, 0, 4, func(i, j int) { called = true })
	if called {
		t.Fatal("body ran on empty grid")
	}
}
