// Package parallel provides small, dependency-free building blocks for
// data-parallel execution: chunked parallel-for loops, a reusable worker
// pool, and deterministic tree reductions.
//
// All helpers are synchronous from the caller's point of view: they return
// only when every spawned unit of work has finished. Work is split into
// contiguous chunks so that per-goroutine overhead stays negligible even for
// very fine-grained loop bodies, and so that writes from different workers
// land in disjoint cache lines whenever the caller indexes output by the
// loop variable.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the degree of parallelism used when a caller passes a
// non-positive worker count. It is fixed at package init to GOMAXPROCS.
var DefaultWorkers = runtime.GOMAXPROCS(0)

// clampWorkers normalizes a requested worker count: non-positive values
// select DefaultWorkers, and the result never exceeds n (no point spawning
// more goroutines than loop iterations).
func clampWorkers(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// For executes body(i) for every i in [0, n) using up to `workers`
// goroutines (DefaultWorkers if workers <= 0). Iterations are distributed in
// contiguous chunks. For small n or workers == 1 the loop runs inline.
func For(n, workers int, body func(i int)) {
	if n <= 0 {
		return
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	ForChunked(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForChunked splits [0, n) into `workers` near-equal contiguous ranges and
// executes body(lo, hi) for each range on its own goroutine. The split gives
// the first (n % workers) chunks one extra element, so chunk sizes differ by
// at most one.
func ForChunked(n, workers int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		body(0, n)
		return
	}
	base := n / workers
	extra := n % workers
	var wg sync.WaitGroup
	wg.Add(workers)
	lo := 0
	for w := 0; w < workers; w++ {
		size := base
		if w < extra {
			size++
		}
		hi := lo + size
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
}

// SplitRange returns the half-open sub-range [lo, hi) that chunk i of
// `chunks` owns when [0, n) is divided the way ForChunked divides it: the
// first (n % chunks) chunks get one extra element, so sizes differ by at
// most one. It lets a caller address ForChunked-compatible chunks directly
// by index, e.g. when chunk identity selects a scratch buffer.
func SplitRange(n, chunks, i int) (lo, hi int) {
	if chunks < 1 {
		chunks = 1
	}
	base := n / chunks
	extra := n % chunks
	if i < extra {
		lo = i * (base + 1)
		return lo, lo + base + 1
	}
	lo = extra*(base+1) + (i-extra)*base
	return lo, lo + base
}

// ForTiles2D executes body(i, j) for every cell of an m×n grid using up to
// `workers` goroutines (DefaultWorkers if workers <= 0). Cells are handed
// out dynamically through a shared atomic cursor, so workers that finish
// cheap tiles immediately steal the next one — the right scheduling for
// GEMM output tiles, whose cost varies with edge effects, and for
// (sample × row-chunk) convolution grids where the two axes multiply into
// more parallelism than either axis offers alone. For workers == 1 (or a
// single cell) the grid runs inline with no goroutines.
func ForTiles2D(m, n, workers int, body func(i, j int)) {
	total := m * n
	if total <= 0 {
		return
	}
	workers = clampWorkers(workers, total)
	if workers == 1 {
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				body(i, j)
			}
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				t := cursor.Add(1) - 1
				if t >= int64(total) {
					return
				}
				body(int(t)/n, int(t)%n)
			}
		}()
	}
	wg.Wait()
}

// SumChunked computes a float64 sum over [0, n) in parallel with a
// deterministic reduction order: each chunk accumulates locally and the
// per-chunk partials are added in chunk order, so the result does not depend
// on goroutine scheduling.
func SumChunked(n, workers int, term func(i int) float64) float64 {
	if n <= 0 {
		return 0
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		s := 0.0
		for i := 0; i < n; i++ {
			s += term(i)
		}
		return s
	}
	partials := make([]float64, workers)
	base := n / workers
	extra := n % workers
	var wg sync.WaitGroup
	wg.Add(workers)
	lo := 0
	for w := 0; w < workers; w++ {
		size := base
		if w < extra {
			size++
		}
		hi := lo + size
		go func(w, lo, hi int) {
			defer wg.Done()
			s := 0.0
			for i := lo; i < hi; i++ {
				s += term(i)
			}
			partials[w] = s
		}(w, lo, hi)
		lo = hi
	}
	wg.Wait()
	total := 0.0
	for _, p := range partials {
		total += p
	}
	return total
}
