// Package parallel provides small, dependency-free building blocks for
// data-parallel execution: chunked parallel-for loops, a reusable worker
// pool, and deterministic tree reductions.
//
// All helpers are synchronous from the caller's point of view: they return
// only when every spawned unit of work has finished. Work is split into
// contiguous chunks so that per-goroutine overhead stays negligible even for
// very fine-grained loop bodies, and so that writes from different workers
// land in disjoint cache lines whenever the caller indexes output by the
// loop variable.
package parallel

import (
	"runtime"
	"sync"
)

// DefaultWorkers is the degree of parallelism used when a caller passes a
// non-positive worker count. It is fixed at package init to GOMAXPROCS.
var DefaultWorkers = runtime.GOMAXPROCS(0)

// clampWorkers normalizes a requested worker count: non-positive values
// select DefaultWorkers, and the result never exceeds n (no point spawning
// more goroutines than loop iterations).
func clampWorkers(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// For executes body(i) for every i in [0, n) using up to `workers`
// goroutines (DefaultWorkers if workers <= 0). Iterations are distributed in
// contiguous chunks. For small n or workers == 1 the loop runs inline.
func For(n, workers int, body func(i int)) {
	if n <= 0 {
		return
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	ForChunked(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForChunked splits [0, n) into `workers` near-equal contiguous ranges and
// executes body(lo, hi) for each range on its own goroutine. The split gives
// the first (n % workers) chunks one extra element, so chunk sizes differ by
// at most one.
func ForChunked(n, workers int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		body(0, n)
		return
	}
	base := n / workers
	extra := n % workers
	var wg sync.WaitGroup
	wg.Add(workers)
	lo := 0
	for w := 0; w < workers; w++ {
		size := base
		if w < extra {
			size++
		}
		hi := lo + size
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
}

// SumChunked computes a float64 sum over [0, n) in parallel with a
// deterministic reduction order: each chunk accumulates locally and the
// per-chunk partials are added in chunk order, so the result does not depend
// on goroutine scheduling.
func SumChunked(n, workers int, term func(i int) float64) float64 {
	if n <= 0 {
		return 0
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		s := 0.0
		for i := 0; i < n; i++ {
			s += term(i)
		}
		return s
	}
	partials := make([]float64, workers)
	base := n / workers
	extra := n % workers
	var wg sync.WaitGroup
	wg.Add(workers)
	lo := 0
	for w := 0; w < workers; w++ {
		size := base
		if w < extra {
			size++
		}
		hi := lo + size
		go func(w, lo, hi int) {
			defer wg.Done()
			s := 0.0
			for i := lo; i < hi; i++ {
				s += term(i)
			}
			partials[w] = s
		}(w, lo, hi)
		lo = hi
	}
	wg.Wait()
	total := 0.0
	for _, p := range partials {
		total += p
	}
	return total
}
