package parallel

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		for _, workers := range []int{0, 1, 2, 3, 16, 2000} {
			seen := make([]int32, n)
			For(n, workers, func(i int) { atomic.AddInt32(&seen[i], 1) })
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, c)
				}
			}
		}
	}
}

func TestForChunkedPartition(t *testing.T) {
	// Chunks must be disjoint, contiguous, ordered by worker, and cover [0, n).
	for _, n := range []int{1, 5, 16, 97} {
		for _, workers := range []int{1, 2, 4, 7, 97, 200} {
			var mu atomic.Int64
			covered := make([]int32, n)
			ForChunked(n, workers, func(lo, hi int) {
				if lo >= hi {
					t.Errorf("empty chunk [%d,%d)", lo, hi)
				}
				mu.Add(int64(hi - lo))
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&covered[i], 1)
				}
			})
			if mu.Load() != int64(n) {
				t.Fatalf("n=%d workers=%d: covered %d elements", n, workers, mu.Load())
			}
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("n=%d workers=%d: index %d covered %d times", n, workers, i, c)
				}
			}
		}
	}
}

func TestForChunkedBalance(t *testing.T) {
	// Chunk sizes differ by at most one.
	n, workers := 103, 8
	sizes := make(chan int, workers)
	ForChunked(n, workers, func(lo, hi int) { sizes <- hi - lo })
	close(sizes)
	minSz, maxSz := n, 0
	for s := range sizes {
		if s < minSz {
			minSz = s
		}
		if s > maxSz {
			maxSz = s
		}
	}
	if maxSz-minSz > 1 {
		t.Fatalf("unbalanced chunks: min=%d max=%d", minSz, maxSz)
	}
}

func TestSumChunkedMatchesSerial(t *testing.T) {
	n := 1234
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Sin(float64(i)) * 3.7
	}
	want := 0.0
	for _, v := range vals {
		want += v
	}
	for _, workers := range []int{1, 2, 5, 32} {
		got := SumChunked(n, workers, func(i int) float64 { return vals[i] })
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("workers=%d: got %v want %v", workers, got, want)
		}
	}
}

func TestSumChunkedDeterministic(t *testing.T) {
	// Fixed reduction order: repeated runs yield bit-identical results.
	n := 4096
	term := func(i int) float64 { return 1.0 / float64(i+1) }
	first := SumChunked(n, 7, term)
	for r := 0; r < 20; r++ {
		if got := SumChunked(n, 7, term); got != first {
			t.Fatalf("run %d: nondeterministic sum %v != %v", r, got, first)
		}
	}
}

func TestPoolRunsAllTasks(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var count atomic.Int64
	for i := 0; i < 100; i++ {
		p.Submit(func() { count.Add(1) })
	}
	p.Wait()
	if count.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", count.Load())
	}
	// Pool stays usable after Wait.
	for i := 0; i < 50; i++ {
		p.Submit(func() { count.Add(1) })
	}
	p.Wait()
	if count.Load() != 150 {
		t.Fatalf("ran %d tasks after reuse, want 150", count.Load())
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Submit(func() {})
	p.Close()
	p.Close() // must not panic or deadlock
}

func TestMapCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 9} {
		n := 257
		seen := make([]int32, n)
		Map(n, workers, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForPropertySumEqualsSerial(t *testing.T) {
	// Property: for random n and worker counts the parallel accumulation of
	// i^2 equals the closed form.
	f := func(nRaw uint16, wRaw uint8) bool {
		n := int(nRaw%2000) + 1
		workers := int(wRaw%17) + 1
		var sum atomic.Int64
		For(n, workers, func(i int) { sum.Add(int64(i) * int64(i)) })
		m := int64(n - 1)
		want := m * (m + 1) * (2*m + 1) / 6
		return sum.Load() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestClampWorkers(t *testing.T) {
	cases := []struct{ workers, n, want int }{
		{0, 10, min(DefaultWorkers, 10)},
		{-5, 3, min(DefaultWorkers, 3)},
		{4, 2, 2},
		{4, 100, 4},
		{1, 1, 1},
	}
	for _, c := range cases {
		if got := clampWorkers(c.workers, c.n); got != c.want {
			t.Errorf("clampWorkers(%d,%d)=%d want %d", c.workers, c.n, got, c.want)
		}
	}
}
