package parallel

import "sync"

// Pool is a fixed-size worker pool for heterogeneous tasks. Unlike For,
// which is optimized for homogeneous loop bodies, Pool accepts arbitrary
// closures and is intended for coarse-grained units such as NAS trials or
// per-fold training jobs. The zero value is not usable; construct with
// NewPool and release with Close.
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup // running workers
	inFly sync.WaitGroup // submitted-but-unfinished tasks
	once  sync.Once
}

// NewPool starts `workers` goroutines (DefaultWorkers if workers <= 0)
// waiting for tasks.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = DefaultWorkers
	}
	p := &Pool{tasks: make(chan func(), workers)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for task := range p.tasks {
				task()
				p.inFly.Done()
			}
		}()
	}
	return p
}

// Submit enqueues a task. It blocks while all workers are busy and the
// backlog buffer is full, providing natural backpressure for producers that
// generate work faster than it can run. Submit must not be called after
// Close.
func (p *Pool) Submit(task func()) {
	p.inFly.Add(1)
	p.tasks <- task
}

// TrySubmit enqueues a task only if a queue slot is immediately available,
// returning whether the task was accepted. It never blocks, which lets a
// caller that must not stall (a batch flusher, a latency-sensitive
// dispatcher) choose its own overflow policy — run inline, shed load, or
// retry — instead of inheriting Submit's blocking backpressure. TrySubmit
// must not be called after Close.
func (p *Pool) TrySubmit(task func()) bool {
	p.inFly.Add(1)
	select {
	case p.tasks <- task:
		return true
	default:
		p.inFly.Done()
		return false
	}
}

// Wait blocks until every task submitted so far has completed. The pool
// remains usable afterwards.
func (p *Pool) Wait() {
	p.inFly.Wait()
}

// Close waits for outstanding tasks and shuts the workers down. It is
// idempotent.
func (p *Pool) Close() {
	p.once.Do(func() {
		p.inFly.Wait()
		close(p.tasks)
		p.wg.Wait()
	})
}

// Map runs fn(i) for every i in [0, n) on a transient pool of `workers`
// goroutines and returns when all calls are done. It is a convenience for
// coarse-grained fan-out where each call may take a very different amount of
// time (dynamic load balancing via the shared queue, in contrast to the
// static chunking of For).
func Map(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
