package latmeter

import (
	"math"
	"testing"
	"testing/quick"

	"drainnas/internal/resnet"
	"drainnas/internal/tensor"
)

func smallConfig() resnet.Config {
	return resnet.Config{Channels: 5, Batch: 8, KernelSize: 3, Stride: 2, Padding: 1,
		PoolChoice: 0, InitialOutputFeature: 32, NumClasses: 2}
}

func TestDecomposeStockKernelCount(t *testing.T) {
	g, err := Decompose(resnet.StockResNet18(5, 8), 100)
	if err != nil {
		t.Fatal(err)
	}
	// conv1 + maxpool + 8 blocks × (2 convs + add) + 3 downsamples + gap + fc
	// = 2 + 24 + 3 + 2 = 31 kernels.
	if len(g.Kernels) != 31 {
		t.Fatalf("kernel count %d, want 31", len(g.Kernels))
	}
	// A no-pool narrow config loses the pool kernel.
	g2, err := Decompose(smallConfig(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(g2.Kernels) != 30 {
		t.Fatalf("no-pool kernel count %d, want 30", len(g2.Kernels))
	}
}

func TestDecomposeSpatialChain(t *testing.T) {
	g, _ := Decompose(resnet.StockResNet18(5, 8), 100)
	// Every kernel's input spatial must equal the previous kernel's output
	// (skipping the parallel downsample/add kernels which share inputs).
	for i, k := range g.Kernels {
		if k.OutHW <= 0 || k.HW <= 0 {
			t.Fatalf("kernel %d (%s) has empty spatial dims: %+v", i, k.Name, k)
		}
	}
	// Final FC sees the last stage width.
	last := g.Kernels[len(g.Kernels)-1]
	if last.Type != KFC || last.InC != 512 || last.OutC != 2 {
		t.Fatalf("final kernel %+v", last)
	}
}

func TestDecomposeRejectsCollapse(t *testing.T) {
	cfg := resnet.StockResNet18(5, 8)
	cfg.Padding = 0
	if _, err := Decompose(cfg, 6); err == nil {
		t.Fatal("expected error for collapsing input")
	}
	bad := cfg
	bad.Stride = 0
	if _, err := Decompose(bad, 100); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestFLOPsMatchesClosedForm(t *testing.T) {
	k := Kernel{Type: KConvBNReLU, InC: 3, OutC: 8, HW: 10, OutHW: 10, K: 3, S: 1}
	wantMACs := 10.0 * 10 * 8 * 3 * 9
	if got := k.FLOPs(); math.Abs(got-(2*wantMACs+3*100*8)) > 1 {
		t.Fatalf("FLOPs=%v", got)
	}
	fc := Kernel{Type: KFC, InC: 512, OutC: 2, HW: 1, OutHW: 1}
	if got := fc.FLOPs(); got != 2*512*2 {
		t.Fatalf("FC FLOPs=%v", got)
	}
}

func TestGraphTotalsPositiveAndMonotone(t *testing.T) {
	gSmall, _ := Decompose(smallConfig(), 100)
	wide := smallConfig()
	wide.InitialOutputFeature = 64
	gWide, _ := Decompose(wide, 100)
	if gSmall.TotalFLOPs() <= 0 || gSmall.TotalBytes() <= 0 {
		t.Fatal("non-positive totals")
	}
	if gWide.TotalFLOPs() <= gSmall.TotalFLOPs() {
		t.Fatal("wider model must have more FLOPs")
	}
	if gWide.TotalBytes() <= gSmall.TotalBytes() {
		t.Fatal("wider model must move more bytes")
	}
}

func TestPredictBaselineMatchesPaperTable5Scale(t *testing.T) {
	// Calibration anchor: the stock ResNet-18 variants should land near the
	// paper's Table 5 (31.91 ms / 32.46 ms mean, ~20 ms std across devices).
	p5, err := Predict(resnet.StockResNet18(5, 8), 0)
	if err != nil {
		t.Fatal(err)
	}
	if p5.MeanMS < 25 || p5.MeanMS > 40 {
		t.Fatalf("stock 5ch mean %.2f ms, want ≈32", p5.MeanMS)
	}
	if p5.StdMS < 12 || p5.StdMS > 28 {
		t.Fatalf("stock 5ch std %.2f ms, want ≈20", p5.StdMS)
	}
	p7, _ := Predict(resnet.StockResNet18(7, 8), 0)
	if p7.MeanMS <= p5.MeanMS {
		t.Fatal("7-channel input must cost more than 5-channel")
	}
}

func TestPredictNonDominatedModelsFaster(t *testing.T) {
	// The paper's headline: the narrow k3 configs are several times faster
	// and ~4x smaller than stock ResNet-18.
	small, _ := Predict(smallConfig(), 0)
	stock, _ := Predict(resnet.StockResNet18(5, 8), 0)
	if ratio := stock.MeanMS / small.MeanMS; ratio < 2 {
		t.Fatalf("stock/small latency ratio %.2f, want > 2", ratio)
	}
}

func TestPredictBatchInvariance(t *testing.T) {
	// Latency prediction is batch-1 inference: batch size must not matter,
	// matching Table 5 (same latency across batch 8/16/32).
	a, _ := Predict(resnet.StockResNet18(5, 8), 0)
	b, _ := Predict(resnet.StockResNet18(5, 32), 0)
	if a.MeanMS != b.MeanMS {
		t.Fatalf("batch size changed latency: %v vs %v", a.MeanMS, b.MeanMS)
	}
}

func TestPredictionOrderingsHold(t *testing.T) {
	// Property-style orderings over the search axes: more channels, wider
	// features, larger kernels, or stride 1 must never be faster.
	base := smallConfig()
	pb, _ := Predict(base, 0)

	ch7 := base
	ch7.Channels = 7
	p7, _ := Predict(ch7, 0)
	if p7.MeanMS < pb.MeanMS {
		t.Fatal("7ch faster than 5ch")
	}

	wide := base
	wide.InitialOutputFeature = 64
	pw, _ := Predict(wide, 0)
	if pw.MeanMS <= pb.MeanMS {
		t.Fatal("wider model not slower")
	}

	bigK := base
	bigK.KernelSize = 7
	bigK.Padding = 3
	pk, _ := Predict(bigK, 0)
	if pk.MeanMS <= pb.MeanMS {
		t.Fatal("7x7 stem not slower")
	}

	s1 := base
	s1.Stride = 1
	ps, _ := Predict(s1, 0)
	if ps.MeanMS <= pb.MeanMS*1.5 {
		t.Fatalf("stride-1 stem must be much slower: %.2f vs %.2f", ps.MeanMS, pb.MeanMS)
	}
}

func TestDevicesTable2Metadata(t *testing.T) {
	ds := Devices()
	if len(ds) != 4 {
		t.Fatalf("%d devices, want 4", len(ds))
	}
	names := map[string]bool{}
	for _, d := range ds {
		names[d.Name] = true
		if d.CompGFLOPS <= 0 || d.DRAMGBs <= 0 || d.CacheGBs <= 0 {
			t.Fatalf("device %s has non-positive coefficients", d.Name)
		}
	}
	for _, want := range []string{"cortexA76cpu", "adreno640gpu", "adreno630gpu", "myriadvpu"} {
		if !names[want] {
			t.Fatalf("missing device %s", want)
		}
	}
	if _, err := DeviceByName("tpu"); err == nil {
		t.Fatal("unknown device must error")
	}
}

func TestPredictionStatsConsistent(t *testing.T) {
	// Property: MeanMS equals the mean of PerDevice; StdMS is the
	// population std.
	f := func(widthSel uint8) bool {
		cfg := smallConfig()
		cfg.InitialOutputFeature = []int{32, 48, 64}[widthSel%3]
		p, err := Predict(cfg, 0)
		if err != nil {
			return false
		}
		sum, ss := 0.0, 0.0
		for _, v := range p.PerDevice {
			sum += v
		}
		mean := sum / 4
		for _, v := range p.PerDevice {
			ss += (v - mean) * (v - mean)
		}
		return math.Abs(mean-p.MeanMS) < 1e-9 && math.Abs(math.Sqrt(ss/4)-p.StdMS) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 9}); err != nil {
		t.Fatal(err)
	}
}

func TestBreakdownSumsToTotal(t *testing.T) {
	cfg := resnet.StockResNet18(5, 8)
	names, lats, err := Breakdown(cfg, 100, "cortexA76cpu")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != len(lats) || len(names) != 31 {
		t.Fatalf("breakdown sizes %d/%d", len(names), len(lats))
	}
	sum := 0.0
	for _, l := range lats {
		sum += l
	}
	d, _ := DeviceByName("cortexA76cpu")
	g, _ := Decompose(cfg, 100)
	if math.Abs(sum-d.LatencyMS(g)) > 1e-9 {
		t.Fatalf("breakdown sum %.4f != total %.4f", sum, d.LatencyMS(g))
	}
}

// sampleGraphs decomposes the full per-combo search space (288 raw
// configurations, 180 distinct networks) so the validation statistics
// average over many per-model bias draws, as nn-Meter's published accuracy
// numbers average over a large model corpus.
func sampleGraphs(t *testing.T) ([]Graph, []string) {
	t.Helper()
	var graphs []Graph
	var keys []string
	for _, ks := range []int{3, 7} {
		for _, st := range []int{1, 2} {
			for _, pad := range []int{1, 2, 3} {
				for _, pool := range []int{0, 1} {
					for _, kp := range []int{2, 3} {
						for _, sp := range []int{1, 2} {
							for _, f := range []int{32, 48, 64} {
								cfg := resnet.Config{Channels: 5, Batch: 8,
									KernelSize: ks, Stride: st, Padding: pad,
									PoolChoice: pool, KernelSizePool: kp, StridePool: sp,
									InitialOutputFeature: f, NumClasses: 2}
								g, err := Decompose(cfg, 100)
								if err != nil {
									t.Fatal(err)
								}
								graphs = append(graphs, g)
								keys = append(keys, cfg.Key())
							}
						}
					}
				}
			}
		}
	}
	return graphs, keys
}

func TestValidateReproducesTable2Accuracies(t *testing.T) {
	// Table 2: cortexA76cpu 99.0%, adreno640gpu 99.1%, adreno630gpu 99.0%,
	// myriadvpu 83.4% of predictions within ±10%.
	graphs, keys := sampleGraphs(t)
	want := map[string]float64{
		"cortexA76cpu": 0.990, "adreno640gpu": 0.991,
		"adreno630gpu": 0.990, "myriadvpu": 0.834,
	}
	for _, d := range Devices() {
		sim := NewDeviceSimulator(d, 2023)
		res := sim.Validate(graphs, keys, 20000, 7)
		tol := 0.02
		if d.Name == "myriadvpu" {
			tol = 0.06
		}
		if math.Abs(res.Within10Pct-want[d.Name]) > tol {
			t.Errorf("%s within-10%% = %.3f, want %.3f ± %.2f",
				d.Name, res.Within10Pct, want[d.Name], tol)
		}
	}
}

func TestVPUSimulatorNoisier(t *testing.T) {
	graphs, keys := sampleGraphs(t)
	accOf := func(name string) float64 {
		d, _ := DeviceByName(name)
		sim := NewDeviceSimulator(d, 99)
		return sim.Validate(graphs, keys, 8000, 3).Within10Pct
	}
	if accOf("myriadvpu") >= accOf("cortexA76cpu") {
		t.Fatal("VPU predictor must be less accurate than the mobile CPU predictor")
	}
}

func TestSimulatorDeterministicBias(t *testing.T) {
	d, _ := DeviceByName("cortexA76cpu")
	s1 := NewDeviceSimulator(d, 5)
	s2 := NewDeviceSimulator(d, 5)
	if s1.modelBias("abc") != s2.modelBias("abc") {
		t.Fatal("model bias must be deterministic in the seed")
	}
	if s1.modelBias("abc") == s1.modelBias("abd") {
		t.Fatal("distinct models should get distinct biases")
	}
}

func TestKernelTypeString(t *testing.T) {
	for k, want := range map[KernelType]string{
		KConvBNReLU: "conv-bn-relu", KConvBN: "conv-bn", KMaxPool: "maxpool",
		KAddReLU: "add-relu", KGlobalAvgPool: "gap", KFC: "fc",
	} {
		if k.String() != want {
			t.Errorf("%d.String()=%q want %q", int(k), k.String(), want)
		}
	}
	if KernelType(99).String() == "" {
		t.Error("unknown kernel type must still render")
	}
}

func TestEnergyModelOrderings(t *testing.T) {
	small, err := PredictEnergy(smallConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	stock, err := PredictEnergy(resnet.StockResNet18(5, 8), 0)
	if err != nil {
		t.Fatal(err)
	}
	if small.MeanMJ <= 0 || stock.MeanMJ <= 0 {
		t.Fatal("non-positive energy")
	}
	// Smaller/faster models must use less energy on every device.
	for _, d := range Devices() {
		if small.PerDevice[d.Name] >= stock.PerDevice[d.Name] {
			t.Fatalf("%s: small %.2f mJ not below stock %.2f mJ",
				d.Name, small.PerDevice[d.Name], stock.PerDevice[d.Name])
		}
	}
	// Energy scale sanity: a mobile inference costs tens to a few hundred
	// millijoules, not microjoules or joules.
	if stock.MeanMJ < 5 || stock.MeanMJ > 2000 {
		t.Fatalf("stock energy %.2f mJ implausible", stock.MeanMJ)
	}
	// The VPU is the most efficient device per inference on the stock model
	// relative to the CPU (that's its reason to exist).
	if stock.PerDevice["myriadvpu"] >= stock.PerDevice["cortexA76cpu"] {
		t.Fatalf("VPU %.2f mJ not below CPU %.2f mJ",
			stock.PerDevice["myriadvpu"], stock.PerDevice["cortexA76cpu"])
	}
}

func TestEnergyRejectsInvalid(t *testing.T) {
	if _, err := PredictEnergy(resnet.Config{}, 0); err == nil {
		t.Fatal("expected error")
	}
}

func TestPredictionFiniteOverWholeSpace(t *testing.T) {
	// Property: every raw configuration of the paper space gets a positive,
	// finite latency on every device, and std < mean (the four devices are
	// correlated, not wild).
	f := func(sel uint64) bool {
		rng := tensor.NewRNG(sel)
		cfg := resnet.Config{
			Channels:             []int{5, 7}[rng.Intn(2)],
			Batch:                []int{8, 16, 32}[rng.Intn(3)],
			KernelSize:           []int{3, 7}[rng.Intn(2)],
			Stride:               []int{1, 2}[rng.Intn(2)],
			Padding:              []int{1, 2, 3}[rng.Intn(3)],
			PoolChoice:           rng.Intn(2),
			KernelSizePool:       []int{2, 3}[rng.Intn(2)],
			StridePool:           []int{1, 2}[rng.Intn(2)],
			InitialOutputFeature: []int{32, 48, 64}[rng.Intn(3)],
			NumClasses:           2,
		}
		p, err := Predict(cfg, 0)
		if err != nil {
			return false
		}
		if !(p.MeanMS > 0) || math.IsInf(p.MeanMS, 0) || math.IsNaN(p.MeanMS) {
			return false
		}
		if p.StdMS < 0 || p.StdMS >= p.MeanMS {
			return false
		}
		for _, v := range p.PerDevice {
			if !(v > 0) || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestServiceModelDecomposesLatency(t *testing.T) {
	cfg := resnet.StockResNet18(5, 8)
	g, err := Decompose(cfg, 128)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Devices() {
		sm := d.Service(g)
		if sm.PerItemMS <= 0 || sm.PerBatchMS <= 0 {
			t.Fatalf("%s: degenerate service model %+v", d.Name, sm)
		}
		// BatchMS(1) reproduces the batch-1 prediction exactly.
		if lat := d.LatencyMS(g); math.Abs(sm.BatchMS(1)-lat) > 1e-9*lat {
			t.Fatalf("%s: BatchMS(1)=%.6f, LatencyMS=%.6f", d.Name, sm.BatchMS(1), lat)
		}
		// Work scales linearly, overhead amortizes: per-item cost strictly
		// drops with batch size.
		if b8 := sm.BatchMS(8) / 8; b8 >= sm.BatchMS(1) {
			t.Fatalf("%s: batching buys nothing (%.4f/item at 8 vs %.4f at 1)", d.Name, b8, sm.BatchMS(1))
		}
		// n<1 clamps to 1.
		if sm.BatchMS(0) != sm.BatchMS(1) {
			t.Fatalf("%s: BatchMS(0) != BatchMS(1)", d.Name)
		}
	}

	// An int8 graph scales work, not overhead.
	qg := g
	qg.CostScale = Int8CostScale
	d := Devices()[0]
	fp, q := d.Service(g), d.Service(qg)
	if q.PerBatchMS != fp.PerBatchMS {
		t.Fatalf("int8 overhead changed: %.4f vs %.4f", q.PerBatchMS, fp.PerBatchMS)
	}
	if q.PerItemMS >= fp.PerItemMS {
		t.Fatalf("int8 work %.4f not below fp32 %.4f", q.PerItemMS, fp.PerItemMS)
	}

	// Scaled applies the calibration knobs multiplicatively; non-positive
	// scales mean identity.
	s := fp.Scaled(1.5, 0.5)
	if math.Abs(s.PerItemMS-1.5*fp.PerItemMS) > 1e-12 || math.Abs(s.PerBatchMS-0.5*fp.PerBatchMS) > 1e-12 {
		t.Fatalf("Scaled(1.5, 0.5) = %+v from %+v", s, fp)
	}
	if id := fp.Scaled(0, -1); id != fp {
		t.Fatalf("Scaled(0,-1) = %+v, want identity %+v", id, fp)
	}
}
