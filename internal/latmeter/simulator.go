package latmeter

import (
	"math"

	"drainnas/internal/tensor"
)

// DeviceSimulator plays the role of the physical device in Table 2's
// validation: it produces "measured" latencies that deviate from the
// predictor's cost model by a per-model systematic bias (the component of
// real-hardware behaviour a predictor cannot capture) plus per-measurement
// noise. The deviation scale is device-specific: nn-Meter's mobile
// CPU/GPU predictors are accurate to ±10% on ~99% of models while the
// Myriad VPU predictor reaches only ~83%, so the VPU simulator deviates
// more.
type DeviceSimulator struct {
	Device Device
	// SigmaBias is the log-scale of the per-model systematic error.
	SigmaBias float64
	// SigmaNoise is the log-scale of the per-measurement error.
	SigmaNoise float64
	// Seed fixes the simulator's randomness.
	Seed uint64
}

// NewDeviceSimulator builds the simulator for a device with deviation
// scales chosen to land the predictors at their Table 2 accuracies
// (99.00 / 99.10 / 99.00 / 83.40 % within ±10%).
func NewDeviceSimulator(d Device, seed uint64) *DeviceSimulator {
	sim := &DeviceSimulator{Device: d, Seed: seed}
	switch d.Name {
	case "cortexA76cpu":
		sim.SigmaBias, sim.SigmaNoise = 0.033, 0.022
	case "adreno640gpu":
		sim.SigmaBias, sim.SigmaNoise = 0.031, 0.021
	case "adreno630gpu":
		sim.SigmaBias, sim.SigmaNoise = 0.033, 0.022
	case "myriadvpu":
		sim.SigmaBias, sim.SigmaNoise = 0.066, 0.034
	default:
		sim.SigmaBias, sim.SigmaNoise = 0.04, 0.02
	}
	return sim
}

// modelBias derives the deterministic systematic error for a model key.
func (s *DeviceSimulator) modelBias(modelKey string) float64 {
	h := s.Seed ^ 0xABCD1234
	for i := 0; i < len(modelKey); i++ {
		h = (h ^ uint64(modelKey[i])) * 0x100000001B3
	}
	for i := 0; i < len(s.Device.Name); i++ {
		h = (h ^ uint64(s.Device.Name[i])) * 0x100000001B3
	}
	rng := tensor.NewRNG(h)
	return rng.NormFloat64() * s.SigmaBias
}

// MeasureMS returns one simulated latency measurement for the graph,
// identified by modelKey (e.g. resnet.Config.Key()). Consecutive calls with
// the same rng stream model run-to-run measurement jitter.
func (s *DeviceSimulator) MeasureMS(g Graph, modelKey string, rng *tensor.RNG) float64 {
	pred := s.Device.LatencyMS(g)
	bias := s.modelBias(modelKey)
	noise := rng.NormFloat64() * s.SigmaNoise
	return pred * math.Exp(bias+noise)
}

// ValidationResult summarizes one device's predictor-vs-device comparison
// (the per-row content of Table 2).
type ValidationResult struct {
	Device       string
	Samples      int
	Within10Pct  float64 // fraction of models predicted within ±10%
	MeanAbsRelEr float64
}

// Validate measures nSamples models on the simulator and reports the
// fraction whose predicted latency falls within ±10% of the "measured"
// value — the accuracy metric of Table 2. graphs and keys identify the
// models; measurements cycle through them as needed.
func (s *DeviceSimulator) Validate(graphs []Graph, keys []string, nSamples int, seed uint64) ValidationResult {
	rng := tensor.NewRNG(seed)
	within := 0
	sumAbs := 0.0
	for i := 0; i < nSamples; i++ {
		idx := i % len(graphs)
		measured := s.MeasureMS(graphs[idx], keys[idx], rng)
		predicted := s.Device.LatencyMS(graphs[idx])
		rel := math.Abs(predicted-measured) / measured
		sumAbs += rel
		if rel <= 0.10 {
			within++
		}
	}
	return ValidationResult{
		Device:       s.Device.Name,
		Samples:      nSamples,
		Within10Pct:  float64(within) / float64(nSamples),
		MeanAbsRelEr: sumAbs / float64(nSamples),
	}
}
