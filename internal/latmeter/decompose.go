package latmeter

import (
	"fmt"

	"drainnas/internal/resnet"
	"drainnas/internal/tensor"
)

// Decompose lowers a ResNet configuration into the fused kernel graph an
// edge runtime would execute for batch-1 inference on an
// inputSize×inputSize image. It mirrors resnet.New's structure exactly
// (stem, four stages of two basic blocks, head) without building weights.
func Decompose(cfg resnet.Config, inputSize int) (Graph, error) {
	if err := cfg.Validate(); err != nil {
		return Graph{}, err
	}
	if _, err := cfg.CheckSpatial(inputSize); err != nil {
		return Graph{}, err
	}
	w := cfg.StageWidths()
	var ks []Kernel

	// Stem conv (+BN+ReLU).
	s := inputSize
	out := tensor.ConvOut(s, cfg.KernelSize, cfg.Stride, cfg.Padding)
	ks = append(ks, Kernel{
		Type: KConvBNReLU, Name: "conv1",
		InC: cfg.Channels, OutC: w[0], HW: s, OutHW: out, K: cfg.KernelSize, S: cfg.Stride,
	})
	s = out

	if cfg.PoolChoice == 1 {
		poolPad := 0
		if cfg.KernelSizePool >= 3 {
			poolPad = 1
		}
		out = tensor.ConvOut(s, cfg.KernelSizePool, cfg.StridePool, poolPad)
		ks = append(ks, Kernel{
			Type: KMaxPool, Name: "maxpool",
			InC: w[0], OutC: w[0], HW: s, OutHW: out, K: cfg.KernelSizePool, S: cfg.StridePool,
		})
		s = out
	}

	inC := w[0]
	for stage := 0; stage < 4; stage++ {
		outC := w[stage]
		stride := 1
		if stage > 0 {
			stride = 2
		}
		for block := 0; block < 2; block++ {
			bs := stride
			bInC := inC
			if block == 1 {
				bs = 1
				bInC = outC
			}
			o1 := tensor.ConvOut(s, 3, bs, 1)
			name := fmt.Sprintf("layer%d.%d", stage+1, block)
			ks = append(ks,
				Kernel{Type: KConvBNReLU, Name: name + ".conv1",
					InC: bInC, OutC: outC, HW: s, OutHW: o1, K: 3, S: bs},
				Kernel{Type: KConvBN, Name: name + ".conv2",
					InC: outC, OutC: outC, HW: o1, OutHW: o1, K: 3, S: 1},
			)
			if bs != 1 || bInC != outC {
				ks = append(ks, Kernel{Type: KConvBN, Name: name + ".down",
					InC: bInC, OutC: outC, HW: s, OutHW: o1, K: 1, S: bs})
			}
			ks = append(ks, Kernel{Type: KAddReLU, Name: name + ".add",
				InC: outC, OutC: outC, HW: o1, OutHW: o1})
			s = o1
		}
		inC = outC
	}

	ks = append(ks,
		Kernel{Type: KGlobalAvgPool, Name: "avgpool", InC: w[3], OutC: w[3], HW: s, OutHW: 1},
		Kernel{Type: KFC, Name: "fc", InC: w[3], OutC: cfg.NumClasses, HW: 1, OutHW: 1},
	)
	return Graph{Kernels: ks, InputSize: inputSize}, nil
}
