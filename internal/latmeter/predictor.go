package latmeter

import (
	"fmt"
	"math"

	"drainnas/internal/resnet"
)

// DefaultInputSize is the image side used for latency prediction. The
// paper's chips are ~100 m square at 1 m resolution.
const DefaultInputSize = 100

// Prediction holds the four per-device latencies for one model plus the
// aggregate the paper reports ('latency' = mean, 'lat_std' = standard
// deviation across the four predictors).
type Prediction struct {
	PerDevice map[string]float64
	MeanMS    float64
	StdMS     float64
}

// Predict decomposes the configuration and predicts latency on every
// device.
func Predict(cfg resnet.Config, inputSize int) (Prediction, error) {
	if inputSize <= 0 {
		inputSize = DefaultInputSize
	}
	g, err := Decompose(cfg, inputSize)
	if err != nil {
		return Prediction{}, err
	}
	return PredictGraph(g), nil
}

// PredictGraph predicts latency of an already-decomposed graph on every
// device.
func PredictGraph(g Graph) Prediction {
	devices := Devices()
	p := Prediction{PerDevice: make(map[string]float64, len(devices))}
	sum := 0.0
	for _, d := range devices {
		ms := d.LatencyMS(g)
		p.PerDevice[d.Name] = ms
		sum += ms
	}
	n := float64(len(devices))
	p.MeanMS = sum / n
	ss := 0.0
	for _, d := range devices {
		diff := p.PerDevice[d.Name] - p.MeanMS
		ss += diff * diff
	}
	// Population standard deviation across the four predictors, matching
	// the paper's lat_std column.
	p.StdMS = math.Sqrt(ss / n)
	return p
}

// Breakdown returns per-kernel latencies for one device, for the
// latency_compare example and debugging.
func Breakdown(cfg resnet.Config, inputSize int, deviceName string) ([]string, []float64, error) {
	if inputSize <= 0 {
		inputSize = DefaultInputSize
	}
	d, err := DeviceByName(deviceName)
	if err != nil {
		return nil, nil, err
	}
	g, err := Decompose(cfg, inputSize)
	if err != nil {
		return nil, nil, err
	}
	names := make([]string, len(g.Kernels))
	lats := make([]float64, len(g.Kernels))
	for i, k := range g.Kernels {
		names[i] = fmt.Sprintf("%s[%s %dx%d c%d->%d]", k.Name, k.Type, k.HW, k.HW, k.InC, k.OutC)
		lats[i] = d.KernelLatencyMS(k)
	}
	return names, lats, nil
}
