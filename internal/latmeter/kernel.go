// Package latmeter predicts the inference latency of the configurable
// ResNet-18 models on embedded devices, standing in for Microsoft's
// nn-Meter. Like nn-Meter it works at kernel granularity: the model is
// decomposed into the fused execution kernels an edge inference runtime
// schedules (conv-bn-relu, max-pool, residual add-relu, global pooling,
// fully connected), and a per-device cost model predicts each kernel's
// latency. The package also contains a "measured device" simulator —
// the same cost structure perturbed by systematic and random error — used
// to validate the predictors' ±10% accuracy as in the paper's Table 2.
package latmeter

import "fmt"

// KernelType enumerates the fused kernels the runtime executes.
type KernelType int

// The kernel kinds produced by decomposition.
const (
	KConvBNReLU KernelType = iota // convolution fused with BN and ReLU
	KConvBN                       // convolution fused with BN (no activation)
	KMaxPool
	KAddReLU // residual elementwise add + ReLU
	KGlobalAvgPool
	KFC
)

// String names the kernel type.
func (k KernelType) String() string {
	switch k {
	case KConvBNReLU:
		return "conv-bn-relu"
	case KConvBN:
		return "conv-bn"
	case KMaxPool:
		return "maxpool"
	case KAddReLU:
		return "add-relu"
	case KGlobalAvgPool:
		return "gap"
	case KFC:
		return "fc"
	default:
		return fmt.Sprintf("kernel(%d)", int(k))
	}
}

// Kernel is one schedulable unit with the geometry the cost model needs.
// All spatial sizes refer to the kernel's input feature map (HW) and output
// feature map (OutHW); batch size is 1 (inference latency, as in the paper).
type Kernel struct {
	Type  KernelType
	Name  string
	InC   int // input channels
	OutC  int // output channels
	HW    int // input spatial side
	OutHW int // output spatial side
	K     int // filter/pool kernel side (0 when n/a)
	S     int // stride (0 when n/a)
}

// FLOPs returns the kernel's multiply-accumulate-derived floating point
// operations (2 ops per MAC), the convention edge profilers use.
func (k Kernel) FLOPs() float64 {
	out := float64(k.OutHW * k.OutHW)
	switch k.Type {
	case KConvBNReLU, KConvBN:
		macs := out * float64(k.OutC) * float64(k.InC) * float64(k.K*k.K)
		// BN+ReLU fuse into the conv epilogue: ~3 ops/output element.
		return 2*macs + 3*out*float64(k.OutC)
	case KMaxPool:
		// One compare per window element per output.
		return out * float64(k.OutC) * float64(k.K*k.K)
	case KAddReLU:
		return 2 * out * float64(k.OutC)
	case KGlobalAvgPool:
		return float64(k.HW*k.HW) * float64(k.InC)
	case KFC:
		return 2 * float64(k.InC) * float64(k.OutC)
	default:
		return 0
	}
}

// Bytes returns the kernel's main-memory traffic in bytes assuming fp32
// activations/weights and no cross-kernel fusion: inputs are read, outputs
// written, weights read once.
func (k Kernel) Bytes() float64 {
	const f = 4.0
	in := float64(k.HW*k.HW) * float64(k.InC) * f
	out := float64(k.OutHW*k.OutHW) * float64(k.OutC) * f
	switch k.Type {
	case KConvBNReLU, KConvBN:
		weights := float64(k.OutC*k.InC*k.K*k.K) * f
		return in + out + weights
	case KMaxPool:
		return in + out
	case KAddReLU:
		// Two input tensors plus one output.
		return 2*in + out
	case KGlobalAvgPool:
		return in + float64(k.InC)*f
	case KFC:
		return float64(k.InC)*f + float64(k.OutC)*f + float64(k.InC*k.OutC)*f
	default:
		return 0
	}
}

// Int8CostScale is the compute-time coefficient of int8 execution relative
// to float32 on the modeled CPUs, calibrated from the measured ratio of the
// packed int8 GEMM to the AVX2 float kernel in this repo's inference
// benchmarks (BENCH_infer.json run 2: quantized/compiled ns/op = 0.58 at
// batch 1 and 0.64 at batch 8; 0.6 splits the difference). Dispatch
// overhead is precision-independent, so the scale applies to kernel work
// only — see Device.LatencyMS.
const Int8CostScale = 0.6

// Graph is an ordered kernel sequence for one model.
type Graph struct {
	Kernels []Kernel
	// InputSize is the image side the graph was built for.
	InputSize int
	// CostScale scales each kernel's work term (not the dispatch overhead)
	// for non-fp32 precision modes; 0 means 1 (fp32). Int8 graphs carry
	// Int8CostScale.
	CostScale float64
}

// TotalFLOPs sums FLOPs over the graph.
func (g Graph) TotalFLOPs() float64 {
	s := 0.0
	for _, k := range g.Kernels {
		s += k.FLOPs()
	}
	return s
}

// TotalBytes sums memory traffic over the graph.
func (g Graph) TotalBytes() float64 {
	s := 0.0
	for _, k := range g.Kernels {
		s += k.Bytes()
	}
	return s
}
