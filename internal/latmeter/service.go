package latmeter

// ServiceModel is the two-coefficient summary of one model's execution cost
// on a device, in the form the serving simulator consumes: a stacked
// batch-n forward costs PerBatchMS + n·PerItemMS. Per-kernel dispatch
// overhead is paid once per batch while the arithmetic scales with the
// stacked size — exactly the amortization serve.Server's micro-batching
// buys, so the split is what lets the simulator predict how batch formation
// trades latency for throughput.
type ServiceModel struct {
	// PerItemMS is the work (compute/memory) portion of the batch-1
	// prediction, already scaled by the graph's precision CostScale.
	PerItemMS float64 `json:"per_item_ms"`
	// PerBatchMS is the summed per-kernel dispatch overhead, paid once per
	// stacked forward regardless of batch size.
	PerBatchMS float64 `json:"per_batch_ms"`
}

// Service decomposes the graph's batch-1 latency prediction on the device
// into the per-item and per-batch coefficients: ServiceModel.BatchMS(1)
// equals Device.LatencyMS(g) exactly.
func (d Device) Service(g Graph) ServiceModel {
	overhead := d.OverheadUS / 1e3 * float64(len(g.Kernels))
	work := d.LatencyMS(g) - overhead
	if work < 0 {
		work = 0
	}
	return ServiceModel{PerItemMS: work, PerBatchMS: overhead}
}

// BatchMS predicts the service time of one stacked batch of n requests in
// milliseconds. n below 1 is treated as 1.
func (m ServiceModel) BatchMS(n int) float64 {
	if n < 1 {
		n = 1
	}
	return m.PerBatchMS + float64(n)*m.PerItemMS
}

// Scaled returns the model with its work and overhead coefficients scaled —
// the two knobs the calibration loop in internal/sim fits against measured
// /v1/stats histograms. Non-positive scales mean 1.
func (m ServiceModel) Scaled(work, overhead float64) ServiceModel {
	if work <= 0 {
		work = 1
	}
	if overhead <= 0 {
		overhead = 1
	}
	return ServiceModel{PerItemMS: m.PerItemMS * work, PerBatchMS: m.PerBatchMS * overhead}
}
