package latmeter

import "drainnas/internal/resnet"

// Energy modeling: for battery-powered field deployments (the drainage
// survey drones and data loggers the paper's introduction motivates),
// energy per inference matters as much as latency. The model combines a
// busy-power draw during kernel execution with the per-kernel energy cost
// of the data movement the roofline already accounts for:
//
//	E(kernel) = busyPowerW · t(kernel) + bytes · joulesPerByte
//
// Coefficients are representative published figures for each device class
// (mobile big-core cluster, mobile GPU, edge VPU).

// devicePower holds the per-device energy coefficients.
type devicePower struct {
	BusyPowerW   float64 // average package power while executing, watts
	NanoJPerByte float64 // DRAM access energy, nJ/byte
	IdlePowerW   float64 // floor draw attributed to the inference window
}

// powerProfiles indexes coefficients by device name.
var powerProfiles = map[string]devicePower{
	"cortexA76cpu": {BusyPowerW: 3.2, NanoJPerByte: 0.18, IdlePowerW: 0.5},
	"adreno640gpu": {BusyPowerW: 2.4, NanoJPerByte: 0.12, IdlePowerW: 0.4},
	"adreno630gpu": {BusyPowerW: 2.2, NanoJPerByte: 0.13, IdlePowerW: 0.4},
	"myriadvpu":    {BusyPowerW: 1.5, NanoJPerByte: 0.15, IdlePowerW: 0.3},
}

// EnergyMJ estimates one inference's energy on the device in millijoules.
func (d Device) EnergyMJ(g Graph) float64 {
	p, ok := powerProfiles[d.Name]
	if !ok {
		p = devicePower{BusyPowerW: 2.5, NanoJPerByte: 0.15, IdlePowerW: 0.4}
	}
	latencySec := d.LatencyMS(g) / 1e3
	compute := (p.BusyPowerW + p.IdlePowerW) * latencySec // joules
	memory := g.TotalBytes() * p.NanoJPerByte * 1e-9      // joules
	return (compute + memory) * 1e3
}

// EnergyPrediction aggregates per-device energy like Prediction does for
// latency.
type EnergyPrediction struct {
	PerDevice map[string]float64
	MeanMJ    float64
}

// PredictEnergy estimates per-inference energy for a configuration on all
// devices.
func PredictEnergy(cfg resnet.Config, inputSize int) (EnergyPrediction, error) {
	if inputSize <= 0 {
		inputSize = DefaultInputSize
	}
	g, err := Decompose(cfg, inputSize)
	if err != nil {
		return EnergyPrediction{}, err
	}
	return PredictEnergyGraph(g), nil
}

// PredictEnergyGraph estimates energy for an already-decomposed graph on all
// devices — the entry point for callers that adjust the graph first (e.g.
// setting CostScale for an int8 deployment).
func PredictEnergyGraph(g Graph) EnergyPrediction {
	devices := Devices()
	p := EnergyPrediction{PerDevice: make(map[string]float64, len(devices))}
	sum := 0.0
	for _, d := range devices {
		e := d.EnergyMJ(g)
		p.PerDevice[d.Name] = e
		sum += e
	}
	p.MeanMJ = sum / float64(len(devices))
	return p
}
