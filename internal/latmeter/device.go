package latmeter

import (
	"fmt"
	"math"
)

// Device is one latency-prediction target: the paper's four nn-Meter
// predictors (Table 2).
type Device struct {
	// Name matches the nn-Meter predictor name.
	Name string
	// HW and Framework describe the physical target (Table 2 columns).
	HW        string
	Framework string

	// Cost-model coefficients. The model is a per-kernel roofline:
	//
	//	t(kernel) = overhead + max(FLOPs / compute,
	//	                           weightBytes / dramBW + actBytes / cacheBW)
	//
	// Weights are streamed from DRAM on every batch-1 inference (no reuse),
	// while activations mostly live in cache — this split is what makes
	// wide late-stage layers weight-bound and reproduces the paper's
	// strong latency–model-size correlation.
	CompGFLOPS float64 // effective compute throughput, GFLOP/s
	DRAMGBs    float64 // weight-streaming bandwidth, GB/s
	CacheGBs   float64 // activation bandwidth, GB/s
	OverheadUS float64 // per-kernel dispatch overhead, microseconds

	// PoolEff derates pooling throughput (edge runtimes execute pooling
	// kernels far below peak).
	PoolEff float64
}

// Devices returns the paper's four predictors in Table 2 order.
func Devices() []Device {
	return []Device{
		{
			Name: "cortexA76cpu", HW: "Pixel4 / CortexA76 CPU", Framework: "TFLite v2.1",
			CompGFLOPS: 130, DRAMGBs: 0.72, CacheGBs: 9, OverheadUS: 45, PoolEff: 0.05,
		},
		{
			Name: "adreno640gpu", HW: "Mi9 / Adreno 640 GPU", Framework: "TFLite v2.1",
			CompGFLOPS: 330, DRAMGBs: 3.2, CacheGBs: 24, OverheadUS: 70, PoolEff: 0.08,
		},
		{
			Name: "adreno630gpu", HW: "Pixel3XL / Adreno 630 GPU", Framework: "TFLite v2.1",
			CompGFLOPS: 290, DRAMGBs: 2.8, CacheGBs: 20, OverheadUS: 78, PoolEff: 0.08,
		},
		{
			Name: "myriadvpu", HW: "Intel Movidius NCS2 / Myriad VPU", Framework: "OpenVINO 2019R2",
			CompGFLOPS: 215, DRAMGBs: 2.1, CacheGBs: 13, OverheadUS: 110, PoolEff: 0.06,
		},
	}
}

// DeviceByName looks a predictor up by its nn-Meter name.
func DeviceByName(name string) (Device, error) {
	for _, d := range Devices() {
		if d.Name == name {
			return d, nil
		}
	}
	return Device{}, fmt.Errorf("latmeter: unknown device %q", name)
}

// weightBytes returns the kernel's parameter traffic (streamed from DRAM).
func weightBytes(k Kernel) float64 {
	const f = 4.0
	switch k.Type {
	case KConvBNReLU, KConvBN:
		return float64(k.OutC*k.InC*k.K*k.K)*f + 2*float64(k.OutC)*f // conv + fused BN scale/shift
	case KFC:
		return float64(k.InC*k.OutC)*f + float64(k.OutC)*f
	default:
		return 0
	}
}

// actBytes returns the kernel's activation traffic (cache-resident stream).
func actBytes(k Kernel) float64 {
	return k.Bytes() - weightBytes(k)
}

// KernelLatencyMS predicts one kernel's latency on the device in
// milliseconds.
func (d Device) KernelLatencyMS(k Kernel) float64 {
	comp := d.CompGFLOPS
	if k.Type == KMaxPool || k.Type == KGlobalAvgPool {
		comp *= d.PoolEff
	}
	tComp := k.FLOPs() / (comp * 1e9) * 1e3
	tMem := (weightBytes(k)/(d.DRAMGBs*1e9) + actBytes(k)/(d.CacheGBs*1e9)) * 1e3
	t := math.Max(tComp, tMem) + d.OverheadUS/1e3
	return t
}

// LatencyMS predicts the whole graph's latency in milliseconds. A graph
// with a precision CostScale has each kernel's work term scaled while the
// per-kernel dispatch overhead stays fixed — quantization speeds up the
// arithmetic, not the scheduler.
func (d Device) LatencyMS(g Graph) float64 {
	scale := g.CostScale
	if scale <= 0 {
		scale = 1
	}
	overhead := d.OverheadUS / 1e3
	total := 0.0
	for _, k := range g.Kernels {
		total += (d.KernelLatencyMS(k)-overhead)*scale + overhead
	}
	return total
}
