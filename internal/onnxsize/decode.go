package onnxsize

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Decoding bounds: a single initializer larger than 2^28 elements (1 GiB of
// fp32) or an attribute above 2^20 is rejected as corrupt rather than
// attempted. The bounds are far above anything the exporter produces and
// exist to keep hostile containers from driving huge allocations or integer
// overflow.
const (
	maxInitializerElems = 1 << 28
	maxAttrValue        = 1 << 20
)

// Decoded is a parsed export container.
type Decoded struct {
	Graph GraphSpec
	// Weights maps initializer names to their payload values.
	Weights map[string][]float32
}

// Decode parses a container produced by Encode or Export, validating its
// structure. It is the consumer side of the deployment format: a runtime
// loading an exported model would read exactly this.
func Decode(r io.Reader) (*Decoded, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("onnxsize: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("onnxsize: bad magic %q", head)
	}
	out := &Decoded{Weights: make(map[string][]float32)}
	var err error
	if out.Graph.Name, err = readString(br); err != nil {
		return nil, fmt.Errorf("onnxsize: graph name: %w", err)
	}
	nNodes, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("onnxsize: node count: %w", err)
	}
	if nNodes > 1<<20 {
		return nil, fmt.Errorf("onnxsize: implausible node count %d", nNodes)
	}
	for i := uint64(0); i < nNodes; i++ {
		var node NodeSpec
		if node.OpType, err = readString(br); err != nil {
			return nil, fmt.Errorf("onnxsize: node %d op: %w", i, err)
		}
		if node.Name, err = readString(br); err != nil {
			return nil, fmt.Errorf("onnxsize: node %d name: %w", i, err)
		}
		nAttrs, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("onnxsize: node %d attrs: %w", i, err)
		}
		node.Attrs = make(map[string]int, nAttrs)
		for a := uint64(0); a < nAttrs; a++ {
			key, err := readString(br)
			if err != nil {
				return nil, fmt.Errorf("onnxsize: node %d attr key: %w", i, err)
			}
			val, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("onnxsize: node %d attr %s: %w", i, key, err)
			}
			if val > maxAttrValue {
				return nil, fmt.Errorf("onnxsize: node %d attr %s = %d too large", i, key, val)
			}
			node.Attrs[key] = int(val)
		}
		out.Graph.Nodes = append(out.Graph.Nodes, node)
	}
	nInits, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("onnxsize: initializer count: %w", err)
	}
	if nInits > 1<<20 {
		return nil, fmt.Errorf("onnxsize: implausible initializer count %d", nInits)
	}
	for i := uint64(0); i < nInits; i++ {
		var init InitializerSpec
		if init.Name, err = readString(br); err != nil {
			return nil, fmt.Errorf("onnxsize: initializer %d name: %w", i, err)
		}
		nDims, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("onnxsize: initializer %s dims: %w", init.Name, err)
		}
		if nDims > 8 {
			return nil, fmt.Errorf("onnxsize: initializer %s has %d dims", init.Name, nDims)
		}
		// Track the element count with an explicit overflow guard: huge or
		// adversarial dims must fail cleanly instead of wrapping int and
		// panicking in make().
		numel := uint64(1)
		for d := uint64(0); d < nDims; d++ {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("onnxsize: initializer %s dim %d: %w", init.Name, d, err)
			}
			if v > maxInitializerElems {
				return nil, fmt.Errorf("onnxsize: initializer %s dim %d = %d too large", init.Name, d, v)
			}
			numel *= v
			if numel > maxInitializerElems {
				return nil, fmt.Errorf("onnxsize: initializer %s implies %d elements", init.Name, numel)
			}
			init.Dims = append(init.Dims, int(v))
		}
		payload, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("onnxsize: initializer %s payload size: %w", init.Name, err)
		}
		if payload != numel*4 {
			return nil, fmt.Errorf("onnxsize: initializer %s payload %d bytes, dims imply %d",
				init.Name, payload, numel*4)
		}
		raw := make([]byte, payload)
		if _, err := io.ReadFull(br, raw); err != nil {
			return nil, fmt.Errorf("onnxsize: initializer %s payload: %w", init.Name, err)
		}
		vals := make([]float32, numel)
		for j := range vals {
			vals[j] = math.Float32frombits(binary.LittleEndian.Uint32(raw[j*4:]))
		}
		out.Graph.Initializers = append(out.Graph.Initializers, init)
		out.Weights[init.Name] = vals
	}
	// Trailing bytes indicate corruption.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("onnxsize: trailing data after container")
	}
	return out, nil
}

func readString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > 1<<16 {
		return "", fmt.Errorf("string length %d too large", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
