// Package onnxsize measures the paper's third objective: model memory,
// defined as the size of the ONNX serialization of the network ("the memory
// requirement to store the model in the onnx file format", Table 4).
//
// The package implements a compact ONNX-like binary container — a graph
// header, one record per node with its attributes, and one initializer
// record per weight tensor with raw fp32 payload — and reports its size.
// The payload dominates (4 bytes per parameter), so the stock ResNet-18
// lands at ≈44.7 MB and the narrow (32-feature) variants at ≈11.2 MB,
// matching Tables 4 and 5.
package onnxsize

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"drainnas/internal/nn"
	"drainnas/internal/resnet"
)

// NodeSpec is one operator in the exported graph.
type NodeSpec struct {
	OpType string
	Name   string
	// Attrs are small integer attributes (kernel, stride, padding, ...).
	Attrs map[string]int
}

// InitializerSpec is one weight tensor: a name, dims, and a payload of
// 4-byte floats (the values themselves do not affect size).
type InitializerSpec struct {
	Name string
	Dims []int
}

// Numel returns the tensor's element count.
func (s InitializerSpec) Numel() int {
	n := 1
	for _, d := range s.Dims {
		n *= d
	}
	return n
}

// GraphSpec is the exportable description of a model.
type GraphSpec struct {
	Name         string
	Nodes        []NodeSpec
	Initializers []InitializerSpec
}

// BuildGraphSpec lowers a ResNet configuration to its exported graph:
// the node list mirrors the runtime ops (Conv, BatchNormalization, Relu,
// MaxPool, Add, GlobalAveragePool, Gemm) and the initializers carry every
// parameter tensor including BatchNorm running statistics, as a real ONNX
// export does.
func BuildGraphSpec(cfg resnet.Config) (GraphSpec, error) {
	if err := cfg.Validate(); err != nil {
		return GraphSpec{}, err
	}
	w := cfg.StageWidths()
	// The graph name carries only architectural identity: batch size is a
	// runtime choice and must not perturb the serialized size.
	arch := cfg.Canonical()
	arch.Batch = 1
	g := GraphSpec{Name: "resnet18-" + arch.Key()}

	addConv := func(name string, inC, outC, k, s, p int) {
		g.Nodes = append(g.Nodes, NodeSpec{OpType: "Conv", Name: name,
			Attrs: map[string]int{"kernel": k, "stride": s, "pad": p}})
		g.Initializers = append(g.Initializers,
			InitializerSpec{Name: name + ".weight", Dims: []int{outC, inC, k, k}})
	}
	addBN := func(name string, c int) {
		g.Nodes = append(g.Nodes, NodeSpec{OpType: "BatchNormalization", Name: name,
			Attrs: map[string]int{"epsilon_e9": 10000}})
		for _, suffix := range []string{".gamma", ".beta", ".running_mean", ".running_var"} {
			g.Initializers = append(g.Initializers,
				InitializerSpec{Name: name + suffix, Dims: []int{c}})
		}
	}
	addRelu := func(name string) {
		g.Nodes = append(g.Nodes, NodeSpec{OpType: "Relu", Name: name, Attrs: map[string]int{}})
	}

	addConv("conv1", cfg.Channels, w[0], cfg.KernelSize, cfg.Stride, cfg.Padding)
	addBN("bn1", w[0])
	addRelu("relu1")
	if cfg.PoolChoice == 1 {
		// The pad attribute mirrors resnet.New's convention (kernel >= 3 pads
		// by 1, smaller kernels pad 0) so the runtime reads the real padding
		// instead of guessing it back from the kernel size.
		poolPad := 0
		if cfg.KernelSizePool >= 3 {
			poolPad = 1
		}
		g.Nodes = append(g.Nodes, NodeSpec{OpType: "MaxPool", Name: "maxpool",
			Attrs: map[string]int{"kernel": cfg.KernelSizePool, "stride": cfg.StridePool, "pad": poolPad}})
	}

	inC := w[0]
	for stage := 0; stage < 4; stage++ {
		outC := w[stage]
		stride := 1
		if stage > 0 {
			stride = 2
		}
		for block := 0; block < 2; block++ {
			bs, bInC := stride, inC
			if block == 1 {
				bs, bInC = 1, outC
			}
			name := fmt.Sprintf("layer%d.%d", stage+1, block)
			addConv(name+".conv1", bInC, outC, 3, bs, 1)
			addBN(name+".bn1", outC)
			addRelu(name + ".relu1")
			addConv(name+".conv2", outC, outC, 3, 1, 1)
			addBN(name+".bn2", outC)
			if bs != 1 || bInC != outC {
				addConv(name+".down.conv", bInC, outC, 1, bs, 0)
				addBN(name+".down.bn", outC)
			}
			g.Nodes = append(g.Nodes, NodeSpec{OpType: "Add", Name: name + ".add", Attrs: map[string]int{}})
			addRelu(name + ".relu2")
		}
		inC = outC
	}

	g.Nodes = append(g.Nodes, NodeSpec{OpType: "GlobalAveragePool", Name: "avgpool", Attrs: map[string]int{}})
	g.Nodes = append(g.Nodes, NodeSpec{OpType: "Gemm", Name: "fc", Attrs: map[string]int{}})
	g.Initializers = append(g.Initializers,
		InitializerSpec{Name: "fc.weight", Dims: []int{cfg.NumClasses, w[3]}},
		InitializerSpec{Name: "fc.bias", Dims: []int{cfg.NumClasses}},
	)
	return g, nil
}

const magic = "DNNX\x01"

// Encode writes the container to w and returns the number of bytes written.
// Weight payloads are zero-filled: only the size matters for the memory
// objective. Export writes a trained model's actual weights in the same
// format (and therefore the same size).
func Encode(g GraphSpec, w io.Writer) (int64, error) {
	return encode(g, w, nil)
}

// Export serializes a trained model: initializer payloads whose names match
// a model parameter carry the trained values; BatchNorm running statistics
// are filled from the layers' running buffers.
func Export(m *resnet.Model, w io.Writer) (int64, error) {
	g, err := BuildGraphSpec(m.Config)
	if err != nil {
		return 0, err
	}
	values := make(map[string][]float32)
	for _, p := range m.Params() {
		values[p.Name] = p.Data.Data()
	}
	collectRunningStats(m.Stem, values)
	for _, b := range m.Stages {
		for _, bn := range []*nn.BatchNorm2d{b.BN1, b.BN2, b.DownBN} {
			if bn != nil {
				addRunningStats(bn, values)
			}
		}
	}
	collectRunningStats(m.Head, values)
	return encode(g, w, values)
}

func collectRunningStats(seq *nn.Sequential, values map[string][]float32) {
	for _, l := range seq.Layers {
		if bn, ok := l.(*nn.BatchNorm2d); ok {
			addRunningStats(bn, values)
		}
	}
}

func addRunningStats(bn *nn.BatchNorm2d, values map[string][]float32) {
	mean := make([]float32, len(bn.RunningMean))
	variance := make([]float32, len(bn.RunningVar))
	for i := range mean {
		mean[i] = float32(bn.RunningMean[i])
		variance[i] = float32(bn.RunningVar[i])
	}
	values[bn.Name()+".running_mean"] = mean
	values[bn.Name()+".running_var"] = variance
}

func encode(g GraphSpec, w io.Writer, values map[string][]float32) (int64, error) {
	cw := &countWriter{w: w}
	if err := writeAll(cw, []byte(magic)); err != nil {
		return cw.n, err
	}
	if err := writeString(cw, g.Name); err != nil {
		return cw.n, err
	}
	if err := writeUvarint(cw, uint64(len(g.Nodes))); err != nil {
		return cw.n, err
	}
	for _, node := range g.Nodes {
		if err := writeString(cw, node.OpType); err != nil {
			return cw.n, err
		}
		if err := writeString(cw, node.Name); err != nil {
			return cw.n, err
		}
		if err := writeUvarint(cw, uint64(len(node.Attrs))); err != nil {
			return cw.n, err
		}
		for _, key := range sortedAttrKeys(node.Attrs) {
			if err := writeString(cw, key); err != nil {
				return cw.n, err
			}
			if err := writeUvarint(cw, uint64(node.Attrs[key])); err != nil {
				return cw.n, err
			}
		}
	}
	if err := writeUvarint(cw, uint64(len(g.Initializers))); err != nil {
		return cw.n, err
	}
	zeros := make([]byte, 1<<16)
	for _, init := range g.Initializers {
		if err := writeString(cw, init.Name); err != nil {
			return cw.n, err
		}
		if err := writeUvarint(cw, uint64(len(init.Dims))); err != nil {
			return cw.n, err
		}
		for _, d := range init.Dims {
			if err := writeUvarint(cw, uint64(d)); err != nil {
				return cw.n, err
			}
		}
		payload := init.Numel() * 4
		if err := writeUvarint(cw, uint64(payload)); err != nil {
			return cw.n, err
		}
		if vals, ok := values[init.Name]; ok && len(vals) == init.Numel() {
			var buf [4]byte
			for _, v := range vals {
				binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
				if err := writeAll(cw, buf[:]); err != nil {
					return cw.n, err
				}
			}
			continue
		}
		for payload > 0 {
			chunk := payload
			if chunk > len(zeros) {
				chunk = len(zeros)
			}
			if err := writeAll(cw, zeros[:chunk]); err != nil {
				return cw.n, err
			}
			payload -= chunk
		}
	}
	return cw.n, nil
}

// SizeBytes returns the exact encoded size of the configuration's export
// without materializing the payload.
func SizeBytes(cfg resnet.Config) (int64, error) {
	g, err := BuildGraphSpec(cfg)
	if err != nil {
		return 0, err
	}
	n, err := Encode(g, io.Discard)
	return n, err
}

// SizeMB returns the export size in megabytes (10^6 bytes, the paper's
// unit).
func SizeMB(cfg resnet.Config) (float64, error) {
	b, err := SizeBytes(cfg)
	if err != nil {
		return 0, err
	}
	return float64(b) / 1e6, nil
}

// ParamCount returns the learnable parameter count implied by the graph
// spec, excluding BatchNorm running statistics (which are buffers, not
// parameters). It cross-checks resnet.Model.NumParams without building
// weights.
func ParamCount(cfg resnet.Config) (int, error) {
	g, err := BuildGraphSpec(cfg)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, init := range g.Initializers {
		if isRunningStat(init.Name) {
			continue
		}
		n += init.Numel()
	}
	return n, nil
}

func isRunningStat(name string) bool {
	const a, b = ".running_mean", ".running_var"
	return len(name) > len(a) && (name[len(name)-len(a):] == a ||
		(len(name) > len(b) && name[len(name)-len(b):] == b))
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeAll(w io.Writer, p []byte) error {
	_, err := w.Write(p)
	return err
}

func writeUvarint(w io.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	return writeAll(w, buf[:n])
}

func writeString(w io.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	return writeAll(w, []byte(s))
}

func sortedAttrKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
