package onnxsize

import (
	"bytes"
	"strings"
	"testing"

	"drainnas/internal/resnet"
	"drainnas/internal/tensor"
)

func TestDecodeRoundTripStructure(t *testing.T) {
	cfg := narrowConfig()
	g, err := BuildGraphSpec(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Encode(g, &buf); err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Graph.Name != g.Name {
		t.Fatalf("name %q vs %q", dec.Graph.Name, g.Name)
	}
	if len(dec.Graph.Nodes) != len(g.Nodes) {
		t.Fatalf("nodes %d vs %d", len(dec.Graph.Nodes), len(g.Nodes))
	}
	for i := range g.Nodes {
		if dec.Graph.Nodes[i].OpType != g.Nodes[i].OpType || dec.Graph.Nodes[i].Name != g.Nodes[i].Name {
			t.Fatalf("node %d mismatch: %+v vs %+v", i, dec.Graph.Nodes[i], g.Nodes[i])
		}
		for k, v := range g.Nodes[i].Attrs {
			if dec.Graph.Nodes[i].Attrs[k] != v {
				t.Fatalf("node %d attr %s: %d vs %d", i, k, dec.Graph.Nodes[i].Attrs[k], v)
			}
		}
	}
	if len(dec.Graph.Initializers) != len(g.Initializers) {
		t.Fatalf("initializers %d vs %d", len(dec.Graph.Initializers), len(g.Initializers))
	}
}

func TestDecodeRoundTripTrainedWeights(t *testing.T) {
	cfg := narrowConfig()
	m, err := resnet.New(cfg, tensor.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Export(m, &buf); err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Every model parameter must round-trip bit-exactly.
	for _, p := range m.Params() {
		got, ok := dec.Weights[p.Name]
		if !ok {
			t.Fatalf("parameter %s missing from decoded weights", p.Name)
		}
		want := p.Data.Data()
		if len(got) != len(want) {
			t.Fatalf("%s length %d vs %d", p.Name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s[%d]: %v vs %v", p.Name, i, got[i], want[i])
			}
		}
	}
	// Running stats present too.
	if _, ok := dec.Weights["bn1.running_mean"]; !ok {
		t.Fatal("running statistics missing")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	cfg := narrowConfig()
	g, _ := BuildGraphSpec(cfg)
	var buf bytes.Buffer
	if _, err := Encode(g, &buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Bad magic.
	bad := append([]byte{}, data...)
	bad[0] ^= 0xFF
	if _, err := Decode(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic not rejected: %v", err)
	}
	// Truncation.
	if _, err := Decode(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("truncated container not rejected")
	}
	// Trailing garbage.
	if _, err := Decode(bytes.NewReader(append(append([]byte{}, data...), 0x01))); err == nil {
		t.Fatal("trailing data not rejected")
	}
	// Empty input.
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input not rejected")
	}
}
